// Command dqreport regenerates every table and figure of the paper from
// the implemented system:
//
//	Table 1  — ISO/IEC 25012 characteristics      (internal/iso25012)
//	Table 2  — WebRE metamodel elements           (internal/webre)
//	Table 3  — DQ_WebRE stereotype specification  (internal/dqwebre)
//	Fig. 1   — extended metamodel                 (PlantUML + DOT)
//	Figs 2-5 — profile stereotype diagrams
//	Fig. 6   — EasyChair use-case diagram with DQ requirements
//	Fig. 7   — EasyChair activity diagram with DQ management
//
// Usage:
//
//	dqreport -all                  # print everything to stdout
//	dqreport -table 3              # one table
//	dqreport -figure 6             # one figure (PlantUML)
//	dqreport -figure 6 -format dot # one figure (Graphviz DOT)
//	dqreport -all -out artifacts/  # write files instead of stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/modeldriven/dqwebre/internal/diagram"
	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/webre"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-3)")
	figure := flag.Int("figure", 0, "regenerate one figure (1-7)")
	all := flag.Bool("all", false, "regenerate everything")
	format := flag.String("format", "plantuml", "figure format: plantuml or dot")
	out := flag.String("out", "", "write artifacts to this directory instead of stdout")
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	emit := func(name, content string) {
		if *out == "" {
			fmt.Printf("===== %s =====\n%s\n", name, content)
			return
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}

	tables := map[int]func() (string, string){
		1: func() (string, string) { return "table1_iso25012.txt", Table1() },
		2: func() (string, string) { return "table2_webre.txt", Table2() },
		3: func() (string, string) { return "table3_dqwebre_profile.txt", Table3() },
	}
	ext := ".puml"
	if *format == "dot" {
		ext = ".dot"
	}
	figures := map[int]func() (string, string){
		1: func() (string, string) { return "fig1_extended_metamodel" + ext, Figure1(*format) },
		2: func() (string, string) { return "fig2_usecase_stereotypes" + ext, FigureProfile(*format, 2) },
		3: func() (string, string) { return "fig3_activity_stereotype" + ext, FigureProfile(*format, 3) },
		4: func() (string, string) { return "fig4_class_stereotypes" + ext, FigureProfile(*format, 4) },
		5: func() (string, string) { return "fig5_requirement_stereotype" + ext, FigureProfile(*format, 5) },
		6: func() (string, string) { return "fig6_easychair_usecases" + ext, Figure6(*format) },
		7: func() (string, string) { return "fig7_easychair_activity" + ext, Figure7(*format) },
	}

	run := func(n int, m map[int]func() (string, string), kind string) {
		f, ok := m[n]
		if !ok {
			fatal(fmt.Errorf("no %s %d", kind, n))
		}
		name, content := f()
		emit(name, content)
	}

	switch {
	case *all:
		for i := 1; i <= 3; i++ {
			run(i, tables, "table")
		}
		for i := 1; i <= 7; i++ {
			run(i, figures, "figure")
		}
	case *table != 0:
		run(*table, tables, "table")
	case *figure != 0:
		run(*figure, figures, "figure")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dqreport:", err)
	os.Exit(1)
}

// Table1 renders the ISO/IEC 25012 catalog in the paper's Table 1 layout.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1  Data Quality characteristics proposed by the ISO/IEC 25012 standard\n\n")
	last := iso25012.Category(-1)
	for _, d := range iso25012.All() {
		if d.Category != last {
			fmt.Fprintf(&b, "%s\n", d.Category)
			last = d.Category
		}
		fmt.Fprintf(&b, "  %-18s %s\n", d.Name, d.Text)
	}
	return b.String()
}

// Table2 renders the WebRE element catalog in the paper's Table 2 layout.
func Table2() string {
	var b strings.Builder
	b.WriteString("Table 2  Elements of WebRE metamodel\n\n")
	for _, row := range webre.Table2() {
		fmt.Fprintf(&b, "  %-16s %s\n", row.Element, row.Description)
	}
	return b.String()
}

// Table3 renders the stereotype specification in the paper's Table 3
// layout, enriched with the machine-checked OCL of each constraint.
func Table3() string {
	p := dqwebre.Profile()
	var b strings.Builder
	b.WriteString("Table 3  Stereotype specification for DQ software requirements in DQ_WebRE profile\n\n")
	for _, row := range dqwebre.Table3() {
		fmt.Fprintf(&b, "«%s»\n", row.Name)
		fmt.Fprintf(&b, "  Base class:    %s\n", row.BaseClass)
		fmt.Fprintf(&b, "  Description:   %s\n", row.Description)
		cons := row.Constraints
		if cons == "" {
			cons = "(none)"
		}
		fmt.Fprintf(&b, "  Constraints:   %s\n", cons)
		fmt.Fprintf(&b, "  Tagged values: %s\n", row.TaggedValues)
		if s, ok := p.Stereotype(row.Name); ok {
			for _, c := range s.Constraints() {
				fmt.Fprintf(&b, "  OCL:           %s\n", c.OCL)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure1 renders the extended metamodel (paper Fig. 1).
func Figure1(format string) string {
	title := "Fig. 1 Extended metamodel with DQ elements"
	// The figure shows the DQ extension plus its WebRE/UML anchors; the
	// filter keeps the drawing readable as in the paper.
	filter := func(c *metamodel.Class) bool {
		switch c.Package().Name() {
		case "Behavior", "Structure":
			return true
		}
		return false
	}
	if format == "dot" {
		return diagram.MetamodelDOT(dqwebre.Metamodel(), title, filter)
	}
	return diagram.MetamodelPlantUML(dqwebre.Metamodel(), title, filter)
}

// FigureProfile renders the profile fragments of the paper's Figs. 2-5.
func FigureProfile(format string, fig int) string {
	p := dqwebre.Profile()
	var title string
	var names []string
	switch fig {
	case 2:
		title = "Fig. 2 New Use cases elements defined in DQ_WebRE profile"
		names = []string{dqwebre.MetaInformationCase, dqwebre.MetaDQRequirement}
	case 3:
		title = "Fig. 3 New Activity element defined in DQ_WebRE profile"
		names = []string{dqwebre.MetaAddDQMetadata}
	case 4:
		title = "Fig. 4 New Class elements defined in DQ_WebRE profile"
		names = []string{dqwebre.MetaDQMetadata, dqwebre.MetaDQValidator, dqwebre.MetaDQConstraint}
	case 5:
		title = "Fig. 5 New Requirement and Actor element defined in DQ_WebRE profile"
		names = []string{dqwebre.MetaDQReqSpecification}
	}
	if format == "dot" {
		return diagram.ProfileDOT(p, title, names...)
	}
	return diagram.ProfilePlantUML(p, title, names...)
}

// Figure6 renders the EasyChair use-case diagram (paper Fig. 6).
func Figure6(format string) string {
	e := easychair.MustBuildModel()
	title := "Fig. 6 Use case diagram specifying DQ requirements"
	if format == "dot" {
		return diagram.UseCaseDOT(e.Model.Model, title)
	}
	return diagram.UseCasePlantUML(e.Model.Model, title)
}

// Figure7 renders the EasyChair activity diagram (paper Fig. 7).
func Figure7(format string) string {
	e := easychair.MustBuildModel()
	title := "Fig. 7 Activity diagram with Data Quality management"
	if format == "dot" {
		return diagram.ActivityDOT(e.Model.Model, e.Activity, title)
	}
	return diagram.ActivityPlantUML(e.Model.Model, e.Activity, title)
}
