package main

import (
	"strings"
	"testing"
)

func TestTable1MatchesPaperLayout(t *testing.T) {
	out := Table1()
	for _, want := range []string{
		"Table 1", "Inherent", "Inherent and System dependent", "System dependent",
		"Accuracy", "Recoverability",
		"The degree to which data have attributes that provide an audit trail",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 lacks %q", want)
		}
	}
	// 15 characteristic rows.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  ") && strings.Contains(line, "The degree") {
			rows++
		}
	}
	if rows != 15 {
		t.Errorf("Table 1 rows = %d, want 15", rows)
	}
}

func TestTable2MatchesPaperLayout(t *testing.T) {
	out := Table2()
	for _, want := range []string{"WebUser", "Navigation", "WebProcess", "Browse", "Search", "UserTransaction", "Node", "Content", "WebUI"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 lacks %q", want)
		}
	}
}

func TestTable3IncludesOCL(t *testing.T) {
	out := Table3()
	for _, want := range []string{
		"«InformationCase»", "«DQConstraint»",
		"Base class:    UseCase",
		"Tagged values: DQConstraint: set (String). upper_bound: Integer. lower_bound: Integer",
		"OCL:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 lacks %q", want)
		}
	}
}

func TestFiguresRenderInBothFormats(t *testing.T) {
	figs := []struct {
		name string
		gen  func(string) string
		puml string
		dot  string
	}{
		{"fig1", Figure1, "class InformationCase", "digraph"},
		{"fig6", Figure6, "«InformationCase»", "digraph"},
		{"fig7", Figure7, "«Add_DQ_Metadata»", "subgraph cluster_0"},
	}
	for _, f := range figs {
		if out := f.gen("plantuml"); !strings.Contains(out, f.puml) {
			t.Errorf("%s plantuml lacks %q", f.name, f.puml)
		}
		if out := f.gen("dot"); !strings.Contains(out, f.dot) {
			t.Errorf("%s dot lacks %q", f.name, f.dot)
		}
	}
	for fig := 2; fig <= 5; fig++ {
		out := FigureProfile("plantuml", fig)
		if !strings.Contains(out, "<<stereotype>>") {
			t.Errorf("figure %d lacks stereotypes", fig)
		}
		if dot := FigureProfile("dot", fig); !strings.Contains(dot, "digraph") {
			t.Errorf("figure %d dot malformed", fig)
		}
	}
}
