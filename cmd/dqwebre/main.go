// Command dqwebre is the analyst CLI for DQ_WebRE models: validate models,
// render diagrams, run the DQR→DQSR (and onward design) transformations
// and generate code. Models travel as the library's XMI-flavoured XML (or
// JSON), produced by the `demo` subcommand or any program using the
// library.
//
// Usage:
//
//	dqwebre demo > easychair.xml           # emit the case-study model
//	dqwebre validate easychair.xml         # conformance + Table 3 constraints
//	dqwebre diagram -kind usecase easychair.xml
//	dqwebre diagram -kind activity easychair.xml
//	dqwebre transform easychair.xml        # DQR → DQSR summary
//	dqwebre transform -design easychair.xml
//	dqwebre codegen -kind sql easychair.xml
//	dqwebre stats easychair.xml
//	dqwebre trace easychair.xml            # traced pipeline run (span tree)
//	dqwebre trace -out trace.json easychair.xml  # Chrome trace artifact
//	dqwebre batch -model easychair.xml -in records.ndjson -report json
//	dqwebre batch -model easychair.xml -in orders.ndjson -unique id \
//	    -ref customers.ndjson -ref-key id -ref-field customer_id \
//	    -timeliness updated_at        # cross-record checks ride along
//	dqwebre serve -model easychair.xml -staging /var/lib/dqwebre \
//	    -addr :8081                   # resident validation service (job API)
//	dqwebre load -url http://localhost:8080      # drive a live server
//	dqwebre load -url http://localhost:8081 -jobs 32 -job-body records.ndjson
//	dqwebre watch -url http://localhost:8080     # live DQ score/trend table
package main

import (
	"fmt"
	"os"

	"github.com/modeldriven/dqwebre/internal/cli"
)

func main() {
	if err := cli.Run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dqwebre:", err)
		os.Exit(1)
	}
}
