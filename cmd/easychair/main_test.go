package main

import (
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/loadgen"
	"github.com/modeldriven/dqwebre/internal/webapp"
)

// startServer runs the full serving stack (run()) on an ephemeral port and
// returns its base URL, the cancel that simulates SIGTERM, and a channel
// carrying run's return value.
func startServer(t *testing.T, cfg config, hook func(*easychair.App)) (string, context.CancelFunc, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	testAppHook = hook
	t.Cleanup(func() { testAppHook = nil })

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	logger := log.New(io.Discard, "", 0)
	go func() { errc <- run(ctx, cfg, logger, ln) }()

	base := "http://" + ln.Addr().String()
	waitUntil(t, 5*time.Second, func() bool {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})
	return base, cancel, errc
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met before deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func defaultTestConfig() config {
	cfg, err := parseFlags(nil)
	if err != nil {
		panic(err)
	}
	cfg.drainTimeout = 5 * time.Second
	return cfg
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

// TestServerShedsUnderOverloadAndRecovers saturates a 2-slot server with
// slow requests driven by the load generator: the excess is shed with 503,
// the shedding is visible on /metrics (which stays reachable, being
// exempt), and once the overload passes a normal request succeeds again.
func TestServerShedsUnderOverloadAndRecovers(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.maxConcurrent = 2

	gate := make(chan struct{})
	var gateOnce sync.Once
	openGate := func() { gateOnce.Do(func() { close(gate) }) }
	defer openGate()

	base, cancel, errc := startServer(t, cfg, func(app *easychair.App) {
		app.Router.GET("/slow", func(c *webapp.Context) {
			<-gate
			c.Text(http.StatusOK, "slow done\n")
		})
	})
	defer cancel()

	var wg sync.WaitGroup
	results := make(chan int, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/slow")
			if err != nil {
				results <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}

	// 10 of the 12 must be shed while 2 hold the slots.
	var shed int
	waitUntil(t, 5*time.Second, func() bool {
		for {
			select {
			case s := <-results:
				if s != http.StatusServiceUnavailable {
					t.Fatalf("shed request got %d, want 503", s)
				}
				shed++
			default:
				return shed == 10
			}
		}
	})

	// /metrics stays reachable at saturation and shows the shed traffic.
	status, metrics := getBody(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics at saturation: %d", status)
	}
	if !strings.Contains(metrics, `http_requests_shed_total{reason="overload"} 10`) {
		t.Errorf("/metrics missing shed counter:\n%s", grepLines(metrics, "shed"))
	}
	if !strings.Contains(metrics, `http_requests_total{method="GET",route="/slow",status="503"} 10`) {
		t.Errorf("/metrics missing 503s in request counter:\n%s", grepLines(metrics, "http_requests_total"))
	}

	// Recovery: release the slow handlers, then the server serves again.
	openGate()
	wg.Wait()
	if s, _ := getBody(t, base+"/healthz"); s != http.StatusOK {
		t.Fatalf("health after overload: %d", s)
	}
	if s, body := getBody(t, base+"/slow"); s != http.StatusOK || !strings.Contains(body, "slow done") {
		t.Fatalf("server did not recover: %d %q", s, body)
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// TestServerRateLimitsPerClient drives one client hard against a tight
// per-client rate and expects 429s in both the responses and /metrics.
func TestServerRateLimitsPerClient(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.ratePerSec = 1
	cfg.rateBurst = 3

	base, cancel, errc := startServer(t, cfg, nil)
	defer cancel()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		URL: base, Paths: []string{"/dq/requirements"}, Concurrency: 4, Requests: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no 429s under a 1 req/s limit: %v", res.Status)
	}
	if res.Shed == 0 {
		t.Fatal("load report counts no shed traffic")
	}

	_, metrics := getBody(t, base+"/metrics")
	if !strings.Contains(metrics, `http_requests_shed_total{reason="rate_limit"}`) {
		t.Errorf("/metrics missing rate_limit shed counter:\n%s", grepLines(metrics, "shed"))
	}

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// TestGracefulShutdownDrainsInFlight starts a request that is mid-flight
// when the shutdown signal arrives and checks it completes with 200 while
// new connections are refused and run() exits cleanly within the drain
// deadline.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	cfg := defaultTestConfig()

	release := make(chan struct{})
	entered := make(chan struct{})
	var enterOnce sync.Once
	base, cancel, errc := startServer(t, cfg, func(app *easychair.App) {
		app.Router.GET("/slow", func(c *webapp.Context) {
			enterOnce.Do(func() { close(entered) })
			<-release
			c.Text(http.StatusOK, "drained fine\n")
		})
	})
	defer cancel()

	type result struct {
		status int
		body   string
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inflight <- result{status: resp.StatusCode, body: string(b)}
	}()

	<-entered
	cancel() // the SIGTERM path: signal.NotifyContext cancels this ctx

	// The listener closes promptly; give the handler its answer after the
	// drain has begun, then the in-flight request must still complete.
	time.Sleep(50 * time.Millisecond)
	close(release)

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request killed by shutdown: %v", r.err)
	}
	if r.status != http.StatusOK || !strings.Contains(r.body, "drained fine") {
		t.Fatalf("in-flight request: %d %q", r.status, r.body)
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want clean shutdown", err)
		}
	case <-time.After(cfg.drainTimeout + 2*time.Second):
		t.Fatal("run did not exit after drain")
	}

	// After shutdown the port no longer accepts connections.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

// TestDrainDeadlineForcesExit wedges a handler past the drain deadline and
// checks run() still exits (with an error) instead of hanging forever.
func TestDrainDeadlineForcesExit(t *testing.T) {
	cfg := defaultTestConfig()
	cfg.drainTimeout = 100 * time.Millisecond

	stuck := make(chan struct{})
	defer close(stuck)
	entered := make(chan struct{})
	var enterOnce sync.Once
	base, cancel, errc := startServer(t, cfg, func(app *easychair.App) {
		app.Router.GET("/stuck", func(c *webapp.Context) {
			enterOnce.Do(func() { close(entered) })
			<-stuck
		})
	})
	defer cancel()

	go func() {
		resp, err := http.Get(base + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	cancel()

	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "drain incomplete") {
			t.Fatalf("err = %v, want drain incomplete", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run hung past the drain deadline")
	}
}

// grepLines filters text to lines containing sub, for focused failures.
func grepLines(text, sub string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, sub) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
