// Command easychair runs the paper's case study as a live web application:
// a conference-management system whose review-submission flow enforces the
// four DQ requirements captured in the DQ_WebRE model (Completeness,
// Precision, Traceability, Confidentiality).
//
// Usage:
//
//	easychair [-addr :8080] [-pprof]
//
// Try it:
//
//	curl -c c.txt -d 'user=grace&role=pc&level=2' localhost:8080/login
//	curl -b c.txt -d 'title=On Computable Numbers' localhost:8080/papers
//	curl -b c.txt -d 'first_name=Grace&last_name=Hopper&email_address=g@h.io&overall_evaluation=2&reviewer_confidence=4' \
//	     localhost:8080/papers/1/reviews
//	curl -b c.txt localhost:8080/reviews/1
//	curl -b c.txt localhost:8080/reviews/1/audit
//	curl localhost:8080/dq/requirements
//
// Observability:
//
//	curl localhost:8080/metrics       # Prometheus text exposition
//	curl localhost:8080/healthz      # liveness probe (JSON)
//	curl localhost:8080/debug/spans  # recent request span trees
//
// With -pprof, the Go profiling endpoints are mounted under
// /debug/pprof/ on the same listener (CPU profile, heap, goroutines, ...).
package main

import (
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"

	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/webapp"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := log.New(os.Stderr, "easychair ", log.LstdFlags)
	app, err := easychair.NewApp()
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}
	// NewApp installed the Metrics middleware outermost; Recover and
	// Logging nest inside it so panics are counted with their real status.
	app.Router.Use(webapp.Recover(logger, app.Registry()), webapp.Logging(logger))

	handler := http.Handler(app.Router)
	if *enablePprof {
		// The profiling endpoints are opt-in: they expose stacks and heap
		// contents, which a production deployment may not want public.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", app.Router)
		handler = mux
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	sl := obs.Logger("easychair")
	sl.Info("DQ requirements in force", "count", len(app.Enforcer().Requirements()))
	for _, r := range app.Enforcer().Requirements() {
		logger.Printf("  DQSR-%d [%s/%s] %s", r.ID, r.Dimension, r.Mechanism, r.Title)
	}
	logger.Printf("listening on %s (metrics at /metrics, health at /healthz, spans at /debug/spans)", *addr)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		logger.Fatal(err)
	}
}
