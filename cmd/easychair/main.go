// Command easychair runs the paper's case study as a live web application:
// a conference-management system whose review-submission flow enforces the
// four DQ requirements captured in the DQ_WebRE model (Completeness,
// Precision, Traceability, Confidentiality).
//
// Usage:
//
//	easychair [-addr :8080]
//
// Try it:
//
//	curl -c c.txt -d 'user=grace&role=pc&level=2' localhost:8080/login
//	curl -b c.txt -d 'title=On Computable Numbers' localhost:8080/papers
//	curl -b c.txt -d 'first_name=Grace&last_name=Hopper&email_address=g@h.io&overall_evaluation=2&reviewer_confidence=4' \
//	     localhost:8080/papers/1/reviews
//	curl -b c.txt localhost:8080/reviews/1
//	curl -b c.txt localhost:8080/reviews/1/audit
//	curl localhost:8080/dq/requirements
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/webapp"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	logger := log.New(os.Stderr, "easychair ", log.LstdFlags)
	app, err := easychair.NewApp()
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}
	app.Router.Use(webapp.Recover(logger), webapp.Logging(logger))

	logger.Printf("DQ requirements in force:")
	for _, r := range app.Enforcer().Requirements() {
		logger.Printf("  DQSR-%d [%s/%s] %s", r.ID, r.Dimension, r.Mechanism, r.Title)
	}
	logger.Printf("listening on %s", *addr)
	if err := http.ListenAndServe(*addr, app.Router); err != nil {
		logger.Fatal(err)
	}
}
