// Command easychair runs the paper's case study as a live web application:
// a conference-management system whose review-submission flow enforces the
// four DQ requirements captured in the DQ_WebRE model (Completeness,
// Precision, Traceability, Confidentiality).
//
// Usage:
//
//	easychair [-addr :8080] [-pprof] [flags]
//
// Try it:
//
//	curl -c c.txt -d 'user=grace&role=pc&level=2' localhost:8080/login
//	curl -b c.txt -d 'title=On Computable Numbers' localhost:8080/papers
//	curl -b c.txt -d 'first_name=Grace&last_name=Hopper&email_address=g@h.io&overall_evaluation=2&reviewer_confidence=4' \
//	     localhost:8080/papers/1/reviews
//	curl -b c.txt localhost:8080/reviews/1
//	curl -b c.txt localhost:8080/reviews/1/audit
//	curl localhost:8080/dq/requirements
//
// Observability:
//
//	curl localhost:8080/metrics        # Prometheus text exposition, incl.
//	                                   # dq_score/dq_check_failures windows
//	curl localhost:8080/healthz        # liveness probe (JSON)
//	curl localhost:8080/debug/spans    # recent request span trees
//	curl localhost:8080/debug/quality  # windowed DQ score series + trends
//	dqwebre watch -url http://localhost:8080   # live score/trend table
//
// With -pprof, the Go profiling endpoints are mounted under
// /debug/pprof/ on the same listener (CPU profile, heap, goroutines, ...).
//
// Resilience: the server runs with read/write/idle timeouts and a header
// size cap, sheds load with 503 (concurrency bound) and 429 (per-client
// rate limit) once saturated, expires idle sessions, and drains in-flight
// requests on SIGINT/SIGTERM before exiting. Drive it with
// `dqwebre load -url http://localhost:8080` to watch the limiters work on
// /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/webapp"
)

// config collects every serving knob; flag defaults are production-lean.
type config struct {
	addr           string
	enablePprof    bool
	readTimeout    time.Duration
	writeTimeout   time.Duration
	idleTimeout    time.Duration
	maxHeaderBytes int
	drainTimeout   time.Duration

	maxConcurrent int
	ratePerSec    float64
	rateBurst     int

	sessionTTL   time.Duration
	sessionSweep time.Duration
	maxSessions  int
}

// testAppHook, when non-nil, lets tests adjust the app (e.g. register a
// deliberately slow route to hold requests in flight) before serving.
var testAppHook func(*easychair.App)

// parseFlags builds the config from args (without the program name).
func parseFlags(args []string) (config, error) {
	var cfg config
	fs := flag.NewFlagSet("easychair", flag.ContinueOnError)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.BoolVar(&cfg.enablePprof, "pprof", false, "mount net/http/pprof under /debug/pprof/")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "max time to read a request (slowloris guard)")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 30*time.Second, "max time to write a response")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	fs.IntVar(&cfg.maxHeaderBytes, "max-header-bytes", 1<<20, "request header size cap")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	fs.IntVar(&cfg.maxConcurrent, "max-concurrent", 256, "in-flight request bound; excess is shed with 503 (0 disables)")
	fs.Float64Var(&cfg.ratePerSec, "rate", 0, "per-client sustained requests/second; excess is shed with 429 (0 disables)")
	fs.IntVar(&cfg.rateBurst, "rate-burst", 32, "per-client burst headroom above -rate")
	fs.DurationVar(&cfg.sessionTTL, "session-ttl", 30*time.Minute, "idle session time-to-live (0 = never expire)")
	fs.DurationVar(&cfg.sessionSweep, "session-sweep", time.Minute, "expired-session sweep interval")
	fs.IntVar(&cfg.maxSessions, "max-sessions", 100000, "live session cap, oldest evicted first (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "easychair ", log.LstdFlags)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, logger, nil); err != nil {
		logger.Fatalf("serve: %v", err)
	}
}

// run builds the app and serves it until ctx is cancelled, then drains
// in-flight requests within cfg.drainTimeout. When ln is nil a listener is
// opened on cfg.addr; tests pass their own to learn the bound port.
func run(ctx context.Context, cfg config, logger *log.Logger, ln net.Listener) error {
	app, err := easychair.NewApp()
	if err != nil {
		return fmt.Errorf("startup: %w", err)
	}
	if testAppHook != nil {
		testAppHook(app)
	}
	installResilience(app, cfg, logger)

	// NewApp installed the Metrics middleware outermost; Recover and
	// Logging nest inside it so panics are counted with their real status.
	app.Router.Use(webapp.Recover(logger, app.Registry()), webapp.Logging(logger))

	sessions := app.Router.Sessions()
	sessions.SetTTL(cfg.sessionTTL)
	sessions.SetMaxSessions(cfg.maxSessions)
	sessions.Instrument(app.Registry())
	stopSweeper := sessions.StartSweeper(cfg.sessionSweep)
	defer stopSweeper()

	handler := http.Handler(app.Router)
	if cfg.enablePprof {
		// The profiling endpoints are opt-in: they expose stacks and heap
		// contents, which a production deployment may not want public.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", app.Router)
		handler = mux
		logger.Printf("pprof enabled at /debug/pprof/")
	}

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadTimeout:       cfg.readTimeout,
		ReadHeaderTimeout: cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
		MaxHeaderBytes:    cfg.maxHeaderBytes,
		ErrorLog:          logger,
		// Note: no BaseContext tied to ctx — in-flight requests must be
		// allowed to finish during the drain, not have their contexts
		// cancelled the moment the shutdown signal lands.
	}

	if ln == nil {
		ln, err = net.Listen("tcp", cfg.addr)
		if err != nil {
			return err
		}
	}

	sl := obs.Logger("easychair")
	sl.Info("DQ requirements in force", "count", len(app.Enforcer().Requirements()))
	for _, r := range app.Enforcer().Requirements() {
		logger.Printf("  DQSR-%d [%s/%s] %s", r.ID, r.Dimension, r.Mechanism, r.Title)
	}
	logger.Printf("listening on %s (metrics at /metrics, health at /healthz, spans at /debug/spans, quality at /debug/quality)", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve never returns nil; any return before a shutdown signal is
		// a real failure (port stolen, listener closed, ...).
		return err
	case <-ctx.Done():
	}

	logger.Printf("shutdown: draining in-flight requests (up to %s)", cfg.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain deadline exceeded: hard-close what remains rather than
		// hanging forever on a stuck handler.
		_ = srv.Close()
		<-errc // reap the Serve goroutine
		return fmt.Errorf("drain incomplete after %s: %w", cfg.drainTimeout, err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Printf("shutdown complete")
	return nil
}

// installResilience wires the load-shedding middleware into the app. The
// limiters sit inside the Metrics middleware (NewApp installed it first,
// outermost), so shed responses are recorded in http_requests_total with
// their 429/503 status as well as in http_requests_shed_total. Probes,
// metrics and debug endpoints are exempt: they must answer precisely when
// the server is saturated.
func installResilience(app *easychair.App, cfg config, logger *log.Logger) {
	exempt := []string{"/healthz", "/metrics", "/debug"}
	if cfg.maxConcurrent > 0 {
		cl := webapp.NewConcurrencyLimiter(cfg.maxConcurrent)
		cl.Instrument(app.Registry())
		app.Router.Use(cl.Middleware(exempt...))
		logger.Printf("load shedding: max %d concurrent requests (503 beyond)", cfg.maxConcurrent)
	}
	if cfg.ratePerSec > 0 {
		rl := webapp.NewRateLimiter(cfg.ratePerSec, cfg.rateBurst)
		rl.Instrument(app.Registry())
		app.Router.Use(rl.Middleware(exempt...))
		logger.Printf("load shedding: %.1f req/s per client, burst %d (429 beyond)", cfg.ratePerSec, cfg.rateBurst)
	}
}
