// Ablation benchmarks: measure the cost of the design choices DESIGN.md
// calls out — concurrent vs serial constraint evaluation, the price of the
// OCL profile-constraint pass relative to pure structural conformance, XML
// vs JSON interchange, and the heavyweight (metaclass) vs lightweight
// (stereotype query) element classification paths.
package dqwebre_test

import (
	"fmt"
	"testing"

	idq "github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/validate"
	"github.com/modeldriven/dqwebre/internal/webre"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

// newEngine assembles the full validation stack for a model.
func newEngine(rm *idq.RequirementsModel) *validate.Engine {
	eng := validate.New(rm.Model)
	for _, r := range idq.Rules() {
		eng.AddRules(validate.Rule{ID: r.ID, Class: r.Class, Expr: r.Expr, Doc: r.Doc})
	}
	eng.AddProfileConstraints(idq.Profile())
	return eng
}

// BenchmarkAblationValidationWorkers compares serial and concurrent rule
// evaluation on a mid-sized model.
func BenchmarkAblationValidationWorkers(b *testing.B) {
	rm := syntheticModel(b, 200)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := newEngine(rm).SetWorkers(workers).Run()
				if !rep.OK() {
					b.Fatal("model invalid")
				}
			}
		})
	}
}

// BenchmarkAblationValidationPasses isolates the three validation passes:
// structural conformance only, metamodel OCL rules only, and the full
// stack with profile constraints.
func BenchmarkAblationValidationPasses(b *testing.B) {
	rm := syntheticModel(b, 200)
	b.Run("conformance-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if vs := metamodel.CheckConformance(rm.Model.Model); len(vs) != 0 {
				b.Fatal("violations")
			}
		}
	})
	b.Run("metamodel-rules-only", func(b *testing.B) {
		eng := validate.New(rm.Model).SkipConformance()
		for _, r := range idq.Rules() {
			eng.AddRules(validate.Rule{ID: r.ID, Class: r.Class, Expr: r.Expr, Doc: r.Doc})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep := eng.Run(); !rep.OK() {
				b.Fatal("violations")
			}
		}
	})
	b.Run("full-stack", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rep := newEngine(rm).Run(); !rep.OK() {
				b.Fatal("violations")
			}
		}
	})
}

// BenchmarkAblationSerializationFormat compares the XML and JSON
// interchange forms on the same model.
func BenchmarkAblationSerializationFormat(b *testing.B) {
	rm := syntheticModel(b, 200)
	b.Run("xml", func(b *testing.B) {
		data, err := xmi.Marshal(rm.Model)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := xmi.Marshal(rm.Model)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xmi.Unmarshal(out, xmiOpts()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		data, err := xmi.MarshalJSON(rm.Model)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(data)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := xmi.MarshalJSON(rm.Model)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := xmi.UnmarshalJSON(out, xmiOpts()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func xmiOpts() xmi.Options {
	return xmi.Options{Profiles: []*uml.Profile{webre.Profile(), idq.Profile()}}
}

// BenchmarkAblationClassificationPath compares finding all DQ requirements
// via the heavyweight metaclass extent vs the lightweight stereotype scan.
func BenchmarkAblationClassificationPath(b *testing.B) {
	rm := syntheticModel(b, 200)
	b.Run("metaclass-extent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			objs, err := rm.Model.AllInstancesOf(idq.MetaDQRequirement)
			if err != nil || len(objs) == 0 {
				b.Fatal("no requirements")
			}
		}
	})
	b.Run("stereotype-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			objs := rm.Model.StereotypedBy(idq.MetaDQRequirement)
			if len(objs) == 0 {
				b.Fatal("no requirements")
			}
		}
	})
}
