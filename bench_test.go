// Benchmark harness: one benchmark per table and figure of the paper
// (artifact regeneration cost), plus the synthetic scaling experiments
// S1–S4 of DESIGN.md — the paper itself reports no measurements, so these
// characterize the engines built to reproduce it. EXPERIMENTS.md records
// the observed shapes.
package dqwebre_test

import (
	"fmt"
	"testing"

	"github.com/modeldriven/dqwebre"
	"github.com/modeldriven/dqwebre/internal/activity"
	"github.com/modeldriven/dqwebre/internal/diagram"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	idq "github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/webre"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

// ---- Tables 1–3: catalog regeneration ----

// BenchmarkTable1_ISO25012Catalog regenerates the Table 1 catalog rows.
func BenchmarkTable1_ISO25012Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		defs := iso25012.All()
		if len(defs) != 15 {
			b.Fatal("catalog size")
		}
		for _, cat := range []iso25012.Category{
			iso25012.Inherent, iso25012.InherentAndSystem, iso25012.SystemDependent,
		} {
			_ = iso25012.ByCategory(cat)
		}
	}
}

// BenchmarkTable2_WebREMetamodel regenerates Table 2 with metamodel
// introspection of each element.
func BenchmarkTable2_WebREMetamodel(b *testing.B) {
	webre.Metamodel()
	for i := 0; i < b.N; i++ {
		rows := webre.Table2()
		if len(rows) != 9 {
			b.Fatal("row count")
		}
		for _, row := range rows {
			c := webre.MustClass(row.Element)
			_ = c.AllProperties()
		}
	}
}

// BenchmarkTable3_ProfileIntrospection regenerates Table 3 by walking the
// profile's stereotypes, bases, tags and constraints.
func BenchmarkTable3_ProfileIntrospection(b *testing.B) {
	p := dqwebre.Profile()
	for i := 0; i < b.N; i++ {
		rows := idq.Table3()
		if len(rows) != 7 {
			b.Fatal("row count")
		}
		for _, row := range rows {
			s, _ := p.Stereotype(row.Name)
			_ = s.BaseNames()
			_ = s.Tags()
			_ = s.Constraints()
		}
	}
}

// ---- Figures 1–7: diagram regeneration ----

// BenchmarkFigure1_ExtendedMetamodel renders the Fig. 1 class diagram.
func BenchmarkFigure1_ExtendedMetamodel(b *testing.B) {
	mm := dqwebre.Metamodel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := diagram.MetamodelPlantUML(mm, "Fig. 1", nil)
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func benchProfileFigure(b *testing.B, names ...string) {
	b.Helper()
	p := dqwebre.Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := diagram.ProfilePlantUML(p, "fig", names...)
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2_UseCaseStereotypes renders Fig. 2.
func BenchmarkFigure2_UseCaseStereotypes(b *testing.B) {
	benchProfileFigure(b, idq.MetaInformationCase, idq.MetaDQRequirement)
}

// BenchmarkFigure3_ActivityStereotype renders Fig. 3.
func BenchmarkFigure3_ActivityStereotype(b *testing.B) {
	benchProfileFigure(b, idq.MetaAddDQMetadata)
}

// BenchmarkFigure4_ClassStereotypes renders Fig. 4.
func BenchmarkFigure4_ClassStereotypes(b *testing.B) {
	benchProfileFigure(b, idq.MetaDQMetadata, idq.MetaDQValidator, idq.MetaDQConstraint)
}

// BenchmarkFigure5_RequirementStereotype renders Fig. 5.
func BenchmarkFigure5_RequirementStereotype(b *testing.B) {
	benchProfileFigure(b, idq.MetaDQReqSpecification)
}

// BenchmarkFigure6_EasyChairUseCases builds and renders the Fig. 6
// use-case diagram of the case study.
func BenchmarkFigure6_EasyChairUseCases(b *testing.B) {
	e := easychair.MustBuildModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := diagram.UseCasePlantUML(e.Model.Model, "Fig. 6")
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure7_EasyChairActivity renders the Fig. 7 activity diagram.
func BenchmarkFigure7_EasyChairActivity(b *testing.B) {
	e := easychair.MustBuildModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := diagram.ActivityPlantUML(e.Model.Model, e.Activity, "Fig. 7")
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkCaseStudyModelBuild measures constructing the whole Section 4
// model from scratch.
func BenchmarkCaseStudyModelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e, err := easychair.BuildModel()
		if err != nil {
			b.Fatal(err)
		}
		_ = e
	}
}

// ---- S1: validation engine scaling ----

// syntheticModel builds a well-formed DQ_WebRE model with n web processes,
// each with an InformationCase managing one Content (3 fields) and two DQ
// requirements. Total elements grow linearly in n.
func syntheticModel(b testing.TB, n int) *dqwebre.RequirementsModel {
	b.Helper()
	rm := dqwebre.NewRequirementsModel(fmt.Sprintf("synthetic-%d", n))
	user := rm.WebUser("user")
	dims := []dqwebre.Characteristic{dqwebre.Completeness, dqwebre.Precision,
		dqwebre.Traceability, dqwebre.Confidentiality}
	for i := 0; i < n; i++ {
		proc := rm.WebProcess(fmt.Sprintf("process %d", i), user)
		content := rm.Content(fmt.Sprintf("content %d", i),
			"field_a", "field_b", "score_level")
		ic := rm.InformationCase(fmt.Sprintf("manage data %d", i), proc, content)
		for j := 0; j < 2; j++ {
			dim := dims[(i+j)%len(dims)]
			req := rm.DQRequirement(fmt.Sprintf("req %d.%d %s", i, j, dim), dim, ic)
			rm.Specify(req, int64(i*2+j+1), "synthetic requirement")
		}
	}
	if err := rm.Err(); err != nil {
		b.Fatal(err)
	}
	return rm
}

// BenchmarkValidationScaling runs the full validation stack (conformance +
// metamodel rules + Table 3 profile constraints) over growing models.
func BenchmarkValidationScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("processes=%d", n), func(b *testing.B) {
			rm := syntheticModel(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := rm.Validate()
				if !rep.OK() {
					b.Fatalf("synthetic model invalid: %v", rep.Errors()[0])
				}
			}
		})
	}
}

// BenchmarkModelConstructionScaling isolates builder cost from validation.
func BenchmarkModelConstructionScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("processes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = syntheticModel(b, n)
			}
		})
	}
}

// ---- S2: transformation scaling ----

// BenchmarkTransformScaling runs DQR→DQSR over growing requirement sets.
func BenchmarkTransformScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("processes=%d", n), func(b *testing.B) {
			rm := syntheticModel(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dqsr, trace, err := transform.RunDQR2DQSR(rm)
				if err != nil {
					b.Fatal(err)
				}
				if len(trace.Links) == 0 || dqsr.Len() == 0 {
					b.Fatal("empty transformation result")
				}
			}
		})
	}
}

// ---- S3: runtime DQ enforcement overhead ----

// BenchmarkRuntimeDQOverhead measures the per-record cost of input
// validation as the number of enabled checks grows from 0 to 15.
func BenchmarkRuntimeDQOverhead(b *testing.B) {
	record := dqruntime.Record{
		"first_name": "Grace", "last_name": "Hopper",
		"email_address": "g@h.io", "overall_evaluation": "2",
		"reviewer_confidence": "4",
	}
	for _, nChecks := range []int{0, 1, 5, 15} {
		b.Run(fmt.Sprintf("checks=%d", nChecks), func(b *testing.B) {
			v := dqruntime.NewValidator("bench")
			for i := 0; i < nChecks; i++ {
				switch i % 3 {
				case 0:
					v.Add(dqruntime.CompletenessCheck{Required: []string{"first_name", "last_name"}})
				case 1:
					v.Add(dqruntime.PrecisionCheck{Field: "overall_evaluation", Lower: -3, Upper: 3})
				case 2:
					v.Add(dqruntime.AccuracyCheck{Field: "email_address", Pattern: dqruntime.EmailPattern})
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := v.Validate(record)
				if !rep.Passed() {
					b.Fatal("record should pass")
				}
			}
		})
	}
}

// BenchmarkEnforcerPipeline measures assembling an enforcer from the case
// study's DQSR model (model → transformation → runtime wiring).
func BenchmarkEnforcerPipeline(b *testing.B) {
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enf, err := dqwebre.BuildEnforcer(dqsr)
		if err != nil {
			b.Fatal(err)
		}
		_ = enf
	}
}

// BenchmarkMetadataStore measures traceability capture plus an
// authorization decision, the per-request metadata cost.
func BenchmarkMetadataStore(b *testing.B) {
	s := dqruntime.NewMetadataStore()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("rec/%d", i%1024)
		s.RecordStore(key, "user", 2, nil)
		if !s.Authorize(key, "user", 3) {
			b.Fatal("authorize")
		}
	}
}

// ---- S4: serialization and diagram scaling ----

// BenchmarkXMIRoundTrip measures marshal+unmarshal over growing models.
func BenchmarkXMIRoundTrip(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("processes=%d", n), func(b *testing.B) {
			rm := syntheticModel(b, n)
			data, err := xmi.Marshal(rm.Model)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := xmi.Marshal(rm.Model)
				if err != nil {
					b.Fatal(err)
				}
				back, err := dqwebre.UnmarshalXMI(out)
				if err != nil {
					b.Fatal(err)
				}
				if back.Len() != rm.Len() {
					b.Fatal("round trip lost elements")
				}
			}
		})
	}
}

// BenchmarkDiagramScaling measures use-case diagram emission over growing
// models.
func BenchmarkDiagramScaling(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("processes=%d", n), func(b *testing.B) {
			rm := syntheticModel(b, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := diagram.UseCasePlantUML(rm.Model, "bench")
				if len(out) == 0 {
					b.Fatal("empty diagram")
				}
			}
		})
	}
}

// BenchmarkFig7Execution measures one full run of the paper's Fig. 7
// activity diagram through the interpreter (happy path, no retry loop).
func BenchmarkFig7Execution(b *testing.B) {
	e := easychair.MustBuildModel()
	hooks := activity.Hooks{
		Decide: func(n *metamodel.Object, guards []string) (int, error) {
			for i, g := range guards {
				if g == "yes" {
					return i, nil
				}
			}
			return 0, nil
		},
	}
	it, err := activity.New(e.Model.Model, e.Activity, hooks)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace, err := it.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(trace) != 12 {
			b.Fatalf("trace = %d steps", len(trace))
		}
	}
}

// ---- Observability overhead ----

// benchEnforcerCheck drives the enforcement hot path — CheckInput over the
// case study's review record — with or without metric instrumentation.
func benchEnforcerCheck(b *testing.B, instrumented bool) {
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		b.Fatal(err)
	}
	enf, err := dqwebre.BuildEnforcer(dqsr)
	if err != nil {
		b.Fatal(err)
	}
	if instrumented {
		enf.Instrument(obs.NewRegistry())
	}
	record := dqwebre.Record{
		"first_name": "Grace", "last_name": "Hopper",
		"email_address": "g@h.io", "overall_evaluation": "2",
		"reviewer_confidence": "4",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !enf.CheckInput(record).Passed() {
			b.Fatal("record should pass")
		}
	}
}

// BenchmarkEnforcerUninstrumented is the baseline enforcement cost.
func BenchmarkEnforcerUninstrumented(b *testing.B) { benchEnforcerCheck(b, false) }

// BenchmarkEnforcerInstrumented is the same path with dq_checks_total
// counters live; compare against the baseline to bound the observability
// tax on every form submission (it must stay within a few percent).
func BenchmarkEnforcerInstrumented(b *testing.B) { benchEnforcerCheck(b, true) }
