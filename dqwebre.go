// Package dqwebre is the public facade of the DQ_WebRE library: capturing
// Data Quality (DQ) requirements for web applications by means of an
// extended web-requirements metamodel and a UML profile, after
// Guerra-García, Caballero & Piattini.
//
// The library reproduces the paper's two artifacts and everything around
// them:
//
//   - Metamodel() — the WebRE metamodel extended with seven DQ metaclasses
//     (paper Fig. 1), built on a reflective metamodeling kernel.
//   - Profile() — the DQ_WebRE UML profile: stereotypes, tagged values and
//     machine-checked OCL constraints (paper Table 3, Figs. 2–5).
//   - NewRequirementsModel() — the analyst API for drawing DQ-aware
//     use-case and activity diagrams (paper Figs. 6–7).
//   - Validate — structural conformance + metamodel rules + profile
//     constraints, with diagnostics.
//   - TransformToDQSR / EnrichWithDQ — the QVT-style transformations the
//     paper names as future work.
//   - BuildEnforcer — turns a DQSR model into executable runtime checks
//     (completeness, precision, accuracy) and metadata capture
//     (traceability, confidentiality).
//
// A complete worked example — the paper's EasyChair case study — lives in
// internal/easychair, runnable via cmd/easychair; the paper's tables and
// figures regenerate via cmd/dqreport.
package dqwebre

import (
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	idqwebre "github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/validate"
	"github.com/modeldriven/dqwebre/internal/webre"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

// RequirementsModel is the analyst-facing model type; see the methods on
// the internal type for the full builder API.
type RequirementsModel = idqwebre.RequirementsModel

// RequirementInfo summarizes one captured DQ requirement.
type RequirementInfo = idqwebre.RequirementInfo

// Characteristic is an ISO/IEC 25012 data quality characteristic.
type Characteristic = iso25012.Characteristic

// The fifteen ISO/IEC 25012 characteristics (paper Table 1).
const (
	Accuracy          = iso25012.Accuracy
	Completeness      = iso25012.Completeness
	Consistency       = iso25012.Consistency
	Credibility       = iso25012.Credibility
	Currentness       = iso25012.Currentness
	Accessibility     = iso25012.Accessibility
	Compliance        = iso25012.Compliance
	Confidentiality   = iso25012.Confidentiality
	Efficiency        = iso25012.Efficiency
	Precision         = iso25012.Precision
	Traceability      = iso25012.Traceability
	Understandability = iso25012.Understandability
	Availability      = iso25012.Availability
	Portability       = iso25012.Portability
	Recoverability    = iso25012.Recoverability
)

// Record is one unit of user-entered data handed to runtime checks.
type Record = dqruntime.Record

// Enforcer executes DQ software requirements at application runtime.
type Enforcer = dqruntime.Enforcer

// Report is a validation report with diagnostics.
type Report = validate.Report

// Model is the profiled model type underlying RequirementsModel.
type Model = uml.Model

// Trace is the source→target mapping produced by a transformation run.
type Trace = transform.Trace

// NewRequirementsModel creates an empty DQ_WebRE requirements model with
// the profile applied.
func NewRequirementsModel(name string) *RequirementsModel {
	return idqwebre.NewRequirementsModel(name)
}

// Metamodel returns the DQ_WebRE extended metamodel (paper Fig. 1).
func Metamodel() *metamodel.Package { return idqwebre.Metamodel() }

// Profile returns the DQ_WebRE UML profile (paper Table 3).
func Profile() *uml.Profile { return idqwebre.Profile() }

// TransformToDQSR runs the DQR→DQSR transformation (paper §5) on a
// requirements model, returning the DQSR model and its trace.
func TransformToDQSR(rm *RequirementsModel) (*Model, *Trace, error) {
	return transform.RunDQR2DQSR(rm)
}

// EnrichWithDQ proactively adds an InformationCase (with one DQ requirement
// per characteristic) to every WebProcess lacking one; it returns the
// number of InformationCases added.
func EnrichWithDQ(rm *RequirementsModel, dims []Characteristic) (int, error) {
	return transform.EnrichWithDQ(rm, dims)
}

// BuildEnforcer assembles runtime DQ enforcement from a DQSR model.
func BuildEnforcer(dqsr *Model) (*Enforcer, error) {
	return dqruntime.BuildFromDQSR(dqsr)
}

// MarshalXMI serializes a model to the XMI-flavoured XML interchange form.
func MarshalXMI(m *Model) ([]byte, error) { return xmi.Marshal(m) }

// UnmarshalXMI reconstructs a DQ_WebRE model from its XMI form. The
// DQ_WebRE profile is supplied automatically.
func UnmarshalXMI(data []byte) (*Model, error) {
	return xmi.Unmarshal(data, xmi.Options{Profiles: []*uml.Profile{
		webre.Profile(), idqwebre.Profile(),
	}})
}
