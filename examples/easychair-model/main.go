// EasyChair: the paper's Section 4 case study end to end — build the
// model behind Figs. 6 and 7, validate it, render both diagrams, run the
// DQR→DQSR transformation and print the resulting software requirements.
//
//	go run ./examples/easychair-model
package main

import (
	"fmt"
	"log"

	"github.com/modeldriven/dqwebre"
	"github.com/modeldriven/dqwebre/internal/diagram"
	"github.com/modeldriven/dqwebre/internal/easychair"
)

func main() {
	e, err := easychair.BuildModel()
	if err != nil {
		log.Fatal(err)
	}

	report := e.Model.Validate()
	fmt.Printf("case-study model: %d elements, %d checks, well-formed=%v\n\n",
		e.Model.Len(), report.Checked, report.OK())

	fmt.Println("Captured DQ requirements (paper Fig. 6):")
	infos, err := e.Model.DQRequirements()
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		fmt.Printf("  %d. [%s] %s\n", info.SpecID, info.Dimension, info.Name)
	}

	fmt.Println("\n--- Fig. 6 (PlantUML) ---")
	fmt.Print(diagram.UseCasePlantUML(e.Model.Model, "Use case diagram specifying DQ requirements"))

	fmt.Println("\n--- Fig. 7 (PlantUML) ---")
	fmt.Print(diagram.ActivityPlantUML(e.Model.Model, e.Activity, "Activity diagram with Data Quality management"))

	dqsr, _, err := dqwebre.TransformToDQSR(e.Model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDerived DQ software requirements (DQR → DQSR):")
	reqs, _ := dqsr.AllInstancesOf("SoftwareRequirement")
	for _, r := range reqs {
		fmt.Printf("  DQSR-%d [%s] %s\n", r.GetInt("id"), r.GetString("dimension"), r.GetString("title"))
		for _, c := range r.GetRefs("realizedBy") {
			fmt.Printf("      realized by %s %q\n", c.GetString("kind"), c.GetString("name"))
		}
	}
}
