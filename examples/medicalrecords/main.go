// Medical records: a domain where the paper's metadata-driven DQ
// requirements carry real weight — Confidentiality (clearance levels per
// record) and Traceability (a full audit trail), plus Precision on dosage
// values. Demonstrates the access-control and audit machinery end to end.
//
//	go run ./examples/medicalrecords
package main

import (
	"fmt"
	"log"

	"github.com/modeldriven/dqwebre"
)

func main() {
	rm := dqwebre.NewRequirementsModel("clinic")
	physician := rm.WebUser("physician")
	prescribe := rm.WebProcess("Prescribe medication", physician)
	prescription := rm.Content("prescription",
		"patient_id", "drug_name", "dosage_level", "prescriber_notes")

	ic := rm.InformationCase("Store prescriptions", prescribe, prescription)

	conf := rm.DQRequirement("prescriptions visible to care team only",
		dqwebre.Confidentiality, ic)
	rm.Specify(conf, 1, "Only users with clinical clearance (level 3) or the prescribing physician read prescriptions.")

	trace := rm.DQRequirement("every prescription change is audited",
		dqwebre.Traceability, ic)
	rm.Specify(trace, 2, "Record who created and who last changed each prescription, with timestamps.")

	prec := rm.DQRequirement("dosage level within the formulary range",
		dqwebre.Precision, ic)
	rm.Specify(prec, 3, "Dosage levels are integers between 1 and 10 formulary units.")

	comp := rm.DQRequirement("prescriptions are complete",
		dqwebre.Completeness, ic)
	rm.Specify(comp, 4, "Patient, drug, dosage and notes must all be present.")

	ui := rm.WebUI("prescription form")
	validator := rm.DQValidator("prescription validator",
		[]string{"check_precision", "check_completeness"}, ui)
	rm.DQConstraint("formulary range", 1, 10,
		[]string{"dosage_level in [1,10]"}, validator)
	rm.DQMetadata("prescription audit metadata",
		[]string{"stored_by", "stored_date", "last_modified_by", "last_modified_date"},
		prescription)
	rm.DQMetadata("prescription access metadata",
		[]string{"security_level", "available_to"}, prescription)
	if err := rm.Err(); err != nil {
		log.Fatal(err)
	}

	if report := rm.Validate(); !report.OK() {
		log.Fatalf("model not well-formed: %v", report.Errors())
	}

	dqsr, _, err := dqwebre.TransformToDQSR(rm)
	if err != nil {
		log.Fatal(err)
	}
	enforcer, err := dqwebre.BuildEnforcer(dqsr)
	if err != nil {
		log.Fatal(err)
	}

	// Input validation.
	good := dqwebre.Record{
		"patient_id": "P-1001", "drug_name": "amoxicillin",
		"dosage_level": "3", "prescriber_notes": "twice daily",
	}
	overdose := dqwebre.Record{
		"patient_id": "P-1001", "drug_name": "amoxicillin",
		"dosage_level": "40", "prescriber_notes": "!!",
	}
	fmt.Printf("valid prescription accepted: %v\n", enforcer.CheckInput(good).Passed())
	rep := enforcer.CheckInput(overdose)
	fmt.Printf("overdose rejected: %v\n", !rep.Passed())
	for _, f := range rep.Failures() {
		fmt.Printf("  %s\n", f)
	}

	// Confidentiality: records stored at clearance level 3, readable by the
	// prescriber, the named nurse, and anyone with level >= 3.
	enforcer.OnStore("prescription/77", "dr-chen", 3, []string{"nurse-ortiz"})
	enforcer.OnModify("prescription/77", "dr-chen")
	for _, probe := range []struct {
		user  string
		level int
	}{
		{"dr-chen", 0},       // prescriber
		{"nurse-ortiz", 1},   // named on the record
		{"dr-patel", 3},      // clinical clearance
		{"billing-clerk", 1}, // neither: denied
	} {
		ok := enforcer.CanAccess("prescription/77", probe.user, probe.level)
		fmt.Printf("access %-14s (level %d): %v\n", probe.user, probe.level, ok)
	}

	// Traceability: the audit trail records everything, denials included.
	fmt.Println("\naudit trail for prescription/77:")
	for _, e := range enforcer.Store().Audit("prescription/77") {
		fmt.Printf("  %s %s by %s\n", e.Action, e.Key, e.User)
	}
}
