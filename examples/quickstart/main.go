// Quickstart: capture a DQ requirement, validate the model, transform it
// to software requirements, and enforce them on live input — the whole
// DQ_WebRE pipeline in one page.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/modeldriven/dqwebre"
)

func main() {
	// 1. Model the web functionality (a WebRE WebProcess) and the data it
	//    manages.
	rm := dqwebre.NewRequirementsModel("guestbook")
	visitor := rm.WebUser("visitor")
	sign := rm.WebProcess("Sign the guestbook", visitor)
	entry := rm.Content("guestbook entry", "author_name", "email_address", "message")

	// 2. Capture the DQ requirements on an «InformationCase» (paper Fig. 6).
	ic := rm.InformationCase("Store guestbook entries", sign, entry)
	complete := rm.DQRequirement("all entry fields are filled", dqwebre.Completeness, ic)
	rm.Specify(complete, 1, "Reject entries with blank author, email or message.")
	traced := rm.DQRequirement("entries are traceable", dqwebre.Traceability, ic)
	rm.Specify(traced, 2, "Record who stored each entry and when.")
	if err := rm.Err(); err != nil {
		log.Fatal(err)
	}

	// 3. Validate: structural conformance + Table 3 profile constraints.
	report := rm.Validate()
	fmt.Printf("validation: %d checks, OK=%v\n", report.Checked, report.OK())

	// 4. Transform DQR → DQSR (the paper's future-work QVT step).
	dqsr, trace, err := dqwebre.TransformToDQSR(rm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transformation: %d elements, %d trace links\n", dqsr.Len(), len(trace.Links))

	// 5. Enforce at runtime.
	enforcer, err := dqwebre.BuildEnforcer(dqsr)
	if err != nil {
		log.Fatal(err)
	}
	good := dqwebre.Record{"author_name": "Ada", "email_address": "ada@example.org", "message": "hi!"}
	bad := dqwebre.Record{"author_name": "Ada"}
	fmt.Printf("good entry passes: %v\n", enforcer.CheckInput(good).Passed())
	fmt.Printf("bad entry passes:  %v\n", enforcer.CheckInput(bad).Passed())
	for _, f := range enforcer.CheckInput(bad).Failures() {
		fmt.Printf("  %s\n", f)
	}

	// Traceability in action.
	enforcer.OnStore("entry/1", "ada", 0, nil)
	enforcer.OnModify("entry/1", "moderator")
	for _, e := range enforcer.Store().Audit("entry/1") {
		fmt.Println(" ", e)
	}

	// 6. Ship the model to teammates as XMI.
	data, err := dqwebre.MarshalXMI(rm.Model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XMI: %d bytes\n", len(data))
}
