// Navigation: the WebRE half the paper's case study leaves implicit — how
// a PC member *reaches* the review form. Builds the navigation view
// (Navigation, Browse, Search, Node per Table 2), validates it against the
// WebRE well-formedness rules and prints the navigation path.
//
//	go run ./examples/navigation
package main

import (
	"fmt"
	"log"

	"github.com/modeldriven/dqwebre/internal/easychair"
)

func main() {
	n, err := easychair.BuildNavigationModel()
	if err != nil {
		log.Fatal(err)
	}
	rep := n.Model.Validate()
	fmt.Printf("navigation model: %d elements, %d checks, well-formed=%v\n\n",
		n.Model.Len(), rep.Checked, rep.OK())

	fmt.Printf("«Navigation» %s\n", n.Navigation.GetString("name"))
	for i, b := range n.Navigation.GetRefs("browses") {
		kind := b.Class().Name()
		src := b.GetRef("source").GetString("name")
		dst := b.GetRef("target").GetString("name")
		fmt.Printf("  %d. «%s» %s: %s → %s\n", i+1, kind, b.GetString("name"), src, dst)
		if kind == "Search" {
			params := b.GetList("parameters")
			fmt.Printf("     parameters: %v, over «Content» %s\n",
				params, b.GetRef("queriedContent").GetString("name"))
		}
	}
	fmt.Printf("target node: %s\n", n.Navigation.GetRef("targetNode").GetString("name"))
	if ui := n.ReviewForm.GetRef("ui"); ui != nil {
		fmt.Printf("presented by «WebUI» %s\n", ui.GetString("name"))
	}
}
