// Workflow: executes the paper's Fig. 7 activity diagram as a live
// workflow. The model is not documentation — the interpreter walks the
// activity graph, the «UserTransaction» steps fill the review record, the
// «Add_DQ_Metadata» steps call into the runtime enforcer, and the decision
// node loops until the record passes every DQ check.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/modeldriven/dqwebre"
	"github.com/modeldriven/dqwebre/internal/activity"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/metamodel"
)

func main() {
	e := easychair.MustBuildModel()
	dqsr, _, err := dqwebre.TransformToDQSR(e.Model)
	if err != nil {
		log.Fatal(err)
	}
	enforcer, err := dqwebre.BuildEnforcer(dqsr)
	if err != nil {
		log.Fatal(err)
	}

	// The reviewer's two attempts: the first is incomplete with a bad
	// score; the [no: fix input] loop supplies the corrected one.
	attempts := []dqwebre.Record{
		{"first_name": "Grace", "overall_evaluation": "9"},
		{
			"first_name": "Grace", "last_name": "Hopper",
			"email_address":      "grace@navy.mil",
			"overall_evaluation": "2", "reviewer_confidence": "4",
		},
	}
	attempt := 0
	record := attempts[attempt]

	hooks := activity.Hooks{
		OnUserTransaction: func(n *metamodel.Object) error {
			fmt.Printf("  «UserTransaction» %s\n", n.GetString("name"))
			return nil
		},
		OnAddDQMetadata: func(n *metamodel.Object) error {
			fmt.Printf("  «Add_DQ_Metadata» %s\n", n.GetString("name"))
			if store := n.GetRef("metadata"); store != nil &&
				strings.Contains(store.GetString("name"), "traceability") {
				enforcer.OnStore("review/1", "grace", 2, []string{"chair"})
			}
			return nil
		},
		Decide: func(n *metamodel.Object, guards []string) (int, error) {
			rep := enforcer.CheckInput(record)
			fmt.Printf("  <decision> %s: passed=%v\n", n.GetString("name"), rep.Passed())
			for _, f := range rep.Failures() {
				fmt.Printf("      %s\n", f)
			}
			for i, g := range guards {
				if rep.Passed() && g == "yes" {
					return i, nil
				}
				if !rep.Passed() && strings.HasPrefix(g, "no") {
					attempt++
					record = attempts[attempt]
					fmt.Println("  → looping back with corrected input")
					return i, nil
				}
			}
			return 0, fmt.Errorf("no guard matched")
		},
	}

	it, err := activity.New(e.Model.Model, e.Activity, hooks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executing activity %q\n", e.Activity.GetString("name"))
	trace, err := it.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted in %d steps\n", len(trace))
	fmt.Println("\naudit trail captured during execution:")
	for _, entry := range enforcer.Store().Audit("review/1") {
		fmt.Printf("  %s\n", entry)
	}
}
