// E-commerce: DQ requirements for an online store's checkout — the kind of
// business-intelligence-feeding web application the paper's introduction
// motivates. Shows proactive enrichment (EnrichWithDQ), custom runtime
// checks (accuracy, consistency, currentness) and SQL schema generation.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/modeldriven/dqwebre"
	"github.com/modeldriven/dqwebre/internal/codegen"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
)

func main() {
	// A plain web requirements model: three WebProcesses, no DQ yet.
	rm := dqwebre.NewRequirementsModel("webshop")
	shopper := rm.WebUser("shopper")
	checkout := rm.WebProcess("Checkout order", shopper)
	rm.WebProcess("Track shipment", shopper)
	rm.WebProcess("Manage wishlist", shopper)

	order := rm.Content("order data",
		"customer_email", "shipping_address", "card_expiry", "item_count")
	ic := rm.InformationCase("Store order data", checkout, order)
	accuracy := rm.DQRequirement("customer email is syntactically valid", dqwebre.Accuracy, ic)
	rm.Specify(accuracy, 1, "Validate the email shape before accepting the order.")
	if err := rm.Err(); err != nil {
		log.Fatal(err)
	}

	// Proactive customization: every uncovered WebProcess gains an
	// InformationCase with Completeness + Currentness requirements.
	added, err := dqwebre.EnrichWithDQ(rm, []dqwebre.Characteristic{
		dqwebre.Completeness, dqwebre.Currentness,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enriched %d web processes with default DQ requirements\n", added)

	report := rm.Validate()
	fmt.Printf("validation: %d checks, OK=%v\n\n", report.Checked, report.OK())

	infos, _ := rm.DQRequirements()
	for _, info := range infos {
		fmt.Printf("  [%s] %s\n", info.Dimension, info.Name)
	}

	// Runtime: the generated enforcer plus handwritten domain checks.
	dqsr, _, err := dqwebre.TransformToDQSR(rm)
	if err != nil {
		log.Fatal(err)
	}
	enforcer, err := dqwebre.BuildEnforcer(dqsr)
	if err != nil {
		log.Fatal(err)
	}
	enforcer.Validator().Add(
		dqruntime.ConsistencyCheck{
			Rule: "an order with items needs a shipping address",
			Predicate: func(r dqruntime.Record) bool {
				return !(r["item_count"] != "" && r["item_count"] != "0" && r["shipping_address"] == "")
			},
		},
		dqruntime.CurrentnessCheck{
			Field:    "card_expiry",
			MaxAge:   0, // expiry must be in the future: age <= 0
			Optional: true,
		},
	)

	orders := []dqruntime.Record{
		{
			"customer_email":   "pat@example.com",
			"shipping_address": "1 Main St",
			"card_expiry":      time.Now().Add(24 * time.Hour).Format(time.RFC3339),
			"item_count":       "2",
		},
		{
			"customer_email": "not-an-email",
			"item_count":     "3",
		},
	}
	fmt.Println("\ncheckout validation:")
	for i, o := range orders {
		rep := enforcer.CheckInput(o)
		fmt.Printf("  order %d: passed=%v\n", i+1, rep.Passed())
		for _, f := range rep.Failures() {
			fmt.Printf("    %s\n", f)
		}
	}

	// Generate the storage schema with DQ metadata columns.
	ddl, err := codegen.SQLDDL(rm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated schema:")
	fmt.Print(ddl)
}
