package obs

import (
	"io"
	"log/slog"
	"sync"
)

// logState holds the process-wide structured-logging handler. Components
// derive their loggers from it via Logger, so one SetLogHandler (or
// SetLogOutput) call retargets every component at once.
var logState = struct {
	mu      sync.RWMutex
	handler slog.Handler
}{}

// SetLogHandler installs the handler behind all component loggers; nil
// restores the default (text to the slog default writer).
func SetLogHandler(h slog.Handler) {
	logState.mu.Lock()
	logState.handler = h
	logState.mu.Unlock()
}

// SetLogOutput is a convenience: a text handler writing to w at the given
// level.
func SetLogOutput(w io.Writer, level slog.Level) {
	SetLogHandler(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Logger returns a structured logger tagged with the given component name.
// Before any SetLogHandler call it uses slog's default handler.
func Logger(component string) *slog.Logger {
	logState.mu.RLock()
	h := logState.handler
	logState.mu.RUnlock()
	if h == nil {
		return slog.Default().With("component", component)
	}
	return slog.New(h).With("component", component)
}
