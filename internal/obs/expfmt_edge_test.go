package obs

import (
	"math"
	"strings"
	"testing"
)

// Edge cases of the exposition path that the golden test does not reach:
// hostile label values, non-finite histogram observations, and the
// first-caller-wins bucket contract. These pin behavior so a scraper-side
// parser (internal/loadgen) and the exposition agree on the corners.

func TestLabelEscapingEdgeCases(t *testing.T) {
	reg := NewRegistry()
	cases := []struct {
		value string
		want  string
	}{
		{`back\slash`, `path{p="back\\slash"} 1`},
		{`say "hi"`, `path{p="say \"hi\""} 1`},
		{"two\nlines", `path{p="two\nlines"} 1`},
		{`all\"of` + "\nthem", `path{p="all\\\"of\nthem"} 1`},
		{"tab\tand unicode é", "path{p=\"tab\tand unicode é\"} 1"}, // passed through verbatim
	}
	for _, c := range cases {
		reg.Counter("path", "", Labels{"p": c.value}).Inc()
	}
	text := reg.PrometheusText()
	for _, c := range cases {
		if !strings.Contains(text, c.want) {
			t.Errorf("exposition missing %q for raw value %q:\n%s", c.want, c.value, text)
		}
	}

	// Escaping must keep distinct raw values distinct: a literal backslash-n
	// and a real newline are different series.
	reg2 := NewRegistry()
	a := reg2.Counter("x", "", Labels{"v": `lit\n`})
	b := reg2.Counter("x", "", Labels{"v": "real\n"})
	if a == b {
		t.Error(`label values 'lit\n' and "real\n" collapsed into one series`)
	}
}

func TestHistogramObserveNonFinite(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{1, 2}, nil)

	h.Observe(math.Inf(1)) // lands in the implicit +Inf bucket
	if got := h.Count(); got != 1 {
		t.Fatalf("count after +Inf = %d, want 1", got)
	}
	text := reg.PrometheusText()
	if !strings.Contains(text, `lat_bucket{le="1"} 0`) ||
		!strings.Contains(text, `lat_bucket{le="+Inf"} 1`) {
		t.Errorf("+Inf observation not confined to the +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, "lat_sum +Inf") {
		t.Errorf("sum should render +Inf:\n%s", text)
	}

	h.Observe(math.Inf(-1)) // sorts below every bound: first bucket
	text = reg.PrometheusText()
	if !strings.Contains(text, `lat_bucket{le="1"} 1`) {
		t.Errorf("-Inf observation should land in the first bucket:\n%s", text)
	}
	// +Inf + -Inf = NaN; the exposition must render it, not panic or
	// produce invalid output.
	if !strings.Contains(text, "lat_sum NaN") {
		t.Errorf("sum of opposing infinities should render NaN:\n%s", text)
	}

	h2 := reg.Histogram("lat2", "", []float64{1, 2}, nil)
	h2.Observe(math.NaN()) // compares false against every bound: +Inf bucket
	text = reg.PrometheusText()
	if !strings.Contains(text, `lat2_bucket{le="2"} 0`) ||
		!strings.Contains(text, `lat2_bucket{le="+Inf"} 1`) {
		t.Errorf("NaN observation should land in the +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, "lat2_sum NaN") {
		t.Errorf("NaN observation should poison the sum to NaN:\n%s", text)
	}
	if !strings.Contains(text, "lat2_count 1") {
		t.Errorf("NaN observation must still be counted:\n%s", text)
	}
}

func TestHistogramFirstCallerBucketsWin(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("h", "", []float64{1, 2}, Labels{"k": "a"})
	// A later caller asking for different bounds gets the family's original
	// bounds — per-family bounds are fixed at first registration.
	h2 := reg.Histogram("h", "", []float64{5, 10, 20}, Labels{"k": "b"})
	h2.Observe(4)

	text := reg.PrometheusText()
	if strings.Contains(text, `le="5"`) || strings.Contains(text, `le="20"`) {
		t.Errorf("second caller's bucket bounds leaked into the family:\n%s", text)
	}
	if !strings.Contains(text, `h_bucket{k="b",le="2"} 0`) ||
		!strings.Contains(text, `h_bucket{k="b",le="+Inf"} 1`) {
		t.Errorf("observation not classified against first-caller bounds:\n%s", text)
	}

	// nil buckets mean DefBuckets, and the first-caller rule applies there
	// too.
	reg2 := NewRegistry()
	reg2.Histogram("d", "", nil, nil)
	got := reg2.Histogram("d", "", []float64{42}, Labels{"k": "x"})
	if len(got.upper) != len(DefBuckets) {
		t.Errorf("family registered with DefBuckets handed out %d bounds, want %d",
			len(got.upper), len(DefBuckets))
	}
}
