package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusExpositionGolden pins the exact text exposition output:
// family ordering, HELP/TYPE lines, label rendering, histogram bucket
// cumulativity and the _sum/_count samples.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last", "sorts last", nil).Add(7)
	r.Counter("requests_total", "requests served", Labels{"route": "/papers", "method": "GET"}).Add(3)
	r.Counter("requests_total", "requests served", Labels{"route": "/login", "method": "POST"}).Inc()
	r.Gauge("temperature", "current level", nil).Set(1.5)
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 0.5, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2) // lands in +Inf only

	want := strings.Join([]string{
		`# HELP latency_seconds request latency`,
		`# TYPE latency_seconds histogram`,
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="0.5"} 3`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="+Inf"} 4`,
		`latency_seconds_sum 2.4`,
		`latency_seconds_count 4`,
		`# HELP requests_total requests served`,
		`# TYPE requests_total counter`,
		`requests_total{method="GET",route="/papers"} 3`,
		`requests_total{method="POST",route="/login"} 1`,
		`# HELP temperature current level`,
		`# TYPE temperature gauge`,
		`temperature 1.5`,
		`# HELP zz_last sorts last`,
		`# TYPE zz_last counter`,
		`zz_last 7`,
		``,
	}, "\n")
	if got := r.PrometheusText(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", `help with \backslash
and newline`, Labels{"k": "quote\" backslash\\ newline\n end"}).Inc()
	got := r.PrometheusText()
	wantHelp := `# HELP m help with \\backslash\nand newline`
	wantSample := `m{k="quote\" backslash\\ newline\n end"} 1`
	if !strings.Contains(got, wantHelp) {
		t.Errorf("help not escaped: %q", got)
	}
	if !strings.Contains(got, wantSample) {
		t.Errorf("label value not escaped: %q", got)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	h := newHistogram([]float64{1, 2, 3})
	for _, v := range []float64{0.5, 1, 1.5, 2, 2.5, 3, 10} {
		h.Observe(v)
	}
	cum := h.cumulative()
	// le=1 catches 0.5 and 1 (bounds are inclusive); le=2 adds 1.5 and 2; ...
	want := []uint64{2, 4, 6, 7}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("bucket %d: got %d want %d", i, cum[i], want[i])
		}
	}
	if h.Count() != 7 {
		t.Errorf("count: got %d want 7", h.Count())
	}
	if math.Abs(h.Sum()-20.5) > 1e-9 {
		t.Errorf("sum: got %g want 20.5", h.Sum())
	}
}

// TestConcurrentUpdates hammers one counter, gauge and histogram from many
// goroutines; run with -race this verifies the atomic paths.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("c_total", "", Labels{"shard": "x"}).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h", "", []float64{0.5}, nil).Observe(0.25)
			}
		}()
	}
	wg.Wait()
	const want = goroutines * perG
	if got := r.Counter("c_total", "", Labels{"shard": "x"}).Value(); got != want {
		t.Errorf("counter: got %d want %d", got, want)
	}
	if got := r.Gauge("g", "", nil).Value(); got != want {
		t.Errorf("gauge: got %g want %d", got, want)
	}
	h := r.Histogram("h", "", nil, nil)
	if got := h.Count(); got != want {
		t.Errorf("histogram count: got %d want %d", got, want)
	}
	if got := h.Sum(); math.Abs(got-want*0.25) > 1e-6 {
		t.Errorf("histogram sum: got %g want %g", got, float64(want)*0.25)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("requesting a counter as a gauge should panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestGaugeSetAndAdd(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge: got %g want 1.5", got)
	}
}
