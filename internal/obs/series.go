package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// This file is the time dimension of the metrics layer: where Counter and
// Gauge answer "what is the level now?", a Series answers "how has it
// moved?". Each Series keeps a fixed-interval ring of aggregated windows
// (count, failure count, sum, min, max) and derives trends from them
// (Delta between the current and previous window, EWMA across the ring),
// so a dashboard can tell a degrading quality score from a noisy one
// without a time-series database. A SeriesSet groups Series by label set
// the way a metric family groups Counters, and can export its windows and
// trends into a Registry as gauges at scrape time.

// Window is the aggregated view of one fixed-length time window of a
// Series, exported for snapshots and JSON.
type Window struct {
	// Start is the window's inclusive start time.
	Start time.Time `json:"start"`
	// Count is the number of observations; Failures how many of them were
	// marked failed.
	Count    uint64 `json:"count"`
	Failures uint64 `json:"failures"`
	// Sum, Min and Max aggregate the observed values.
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Mean is Sum/Count, 0 for an empty window (kept explicit so the JSON
	// form needs no client-side arithmetic).
	Mean float64 `json:"mean"`
}

// bucket is one ring slot. idx is the window's ordinal (start time divided
// by the interval); -1 marks a slot that has never held a window.
type bucket struct {
	idx             int64
	count, failures uint64
	sum, min, max   float64
}

// Series is a fixed-interval windowed aggregate of one measured value,
// safe for concurrent writers and snapshot readers. Observations land in
// the window containing the current time; older windows stay frozen in
// the ring until capacity evicts them. Non-finite observations are
// dropped — one NaN must not poison a whole window.
type Series struct {
	interval time.Duration
	clock    func() time.Time

	mu   sync.Mutex
	ring []bucket
	head int // position of the newest window in ring
}

// NewSeries creates a series of `windows` ring slots, each `interval`
// long. interval <= 0 defaults to one minute; windows < 2 defaults to 2
// (Delta needs a current and a previous window to compare).
func NewSeries(interval time.Duration, windows int) *Series {
	if interval <= 0 {
		interval = time.Minute
	}
	if windows < 2 {
		windows = 2
	}
	s := &Series{interval: interval, clock: time.Now, ring: make([]bucket, windows)}
	for i := range s.ring {
		s.ring[i].idx = -1
	}
	return s
}

// Interval returns the window length.
func (s *Series) Interval() time.Duration { return s.interval }

// SetClock injects a deterministic clock for tests; nil restores time.Now.
func (s *Series) SetClock(clock func() time.Time) {
	if clock == nil {
		clock = time.Now
	}
	s.mu.Lock()
	s.clock = clock
	s.mu.Unlock()
}

// Observe records one successful observation of v.
func (s *Series) Observe(v float64) { s.add(1, 0, v, v, v) }

// ObserveOutcome records one observation of v, counting it as a failure
// when failed is true.
func (s *Series) ObserveOutcome(v float64, failed bool) {
	if failed {
		s.add(1, 1, v, v, v)
		return
	}
	s.add(1, 0, v, v, v)
}

// Merge folds a pre-aggregated block of observations into the current
// window — the bulk path for batch shards that aggregated locally and
// attribute their totals in one call instead of millions.
func (s *Series) Merge(count, failures uint64, sum, min, max float64) {
	if count == 0 {
		return
	}
	s.add(count, failures, sum, min, max)
}

func (s *Series) add(count, failures uint64, sum, min, max float64) {
	if math.IsNaN(sum) || math.IsInf(sum, 0) ||
		math.IsNaN(min) || math.IsInf(min, 0) ||
		math.IsNaN(max) || math.IsInf(max, 0) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.advance()
	first := b.count == 0
	b.count += count
	b.failures += failures
	b.sum += sum
	if first || min < b.min {
		b.min = min
	}
	if first || max > b.max {
		b.max = max
	}
}

// advance moves the ring head to the window containing now, zeroing the
// windows it steps over, and returns the current bucket. Callers hold
// s.mu. A clock that steps backwards folds into the newest window rather
// than resurrecting a frozen one.
func (s *Series) advance() *bucket {
	idx := s.clock().UnixNano() / int64(s.interval)
	cur := &s.ring[s.head]
	if cur.idx >= idx {
		return cur
	}
	if cur.idx < 0 {
		cur.idx = idx
		return cur
	}
	steps := idx - cur.idx
	if steps >= int64(len(s.ring)) {
		// The gap swallowed the whole ring; start over.
		for i := range s.ring {
			s.ring[i] = bucket{idx: -1}
		}
		s.head = 0
		s.ring[0].idx = idx
		return &s.ring[0]
	}
	last := cur.idx
	for i := int64(1); i <= steps; i++ {
		s.head = (s.head + 1) % len(s.ring)
		s.ring[s.head] = bucket{idx: last + i}
	}
	return &s.ring[s.head]
}

// window converts a bucket to its exported form.
func (s *Series) window(b *bucket) Window {
	w := Window{
		Start:    time.Unix(0, b.idx*int64(s.interval)),
		Count:    b.count,
		Failures: b.failures,
		Sum:      b.sum,
		Min:      b.min,
		Max:      b.max,
	}
	if b.count > 0 {
		w.Mean = b.sum / float64(b.count)
	}
	return w
}

// Snapshot returns the retained windows oldest first, including windows
// the series advanced through without observations (count 0). It is safe
// under concurrent writers: the returned slice is a copy.
func (s *Series) Snapshot() []Window {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.ring)
	out := make([]Window, 0, n)
	for i := 0; i < n; i++ {
		b := &s.ring[(s.head+1+i)%n]
		if b.idx < 0 {
			continue
		}
		out = append(out, s.window(b))
	}
	return out
}

// at returns the window with the given ordinal; ok is false when the ring
// no longer (or does not yet) hold it. Callers hold s.mu.
func (s *Series) at(idx int64) (Window, bool) {
	for i := range s.ring {
		if s.ring[i].idx == idx {
			return s.window(&s.ring[i]), true
		}
	}
	return Window{}, false
}

// Current returns the window containing now; ok is false when nothing has
// been observed (or advanced through) in it yet.
func (s *Series) Current() (Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.at(s.clock().UnixNano() / int64(s.interval))
}

// Previous returns the window immediately before the current one.
func (s *Series) Previous() (Window, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.at(s.clock().UnixNano()/int64(s.interval) - 1)
}

// Delta returns the change of the window mean from the previous window to
// the current one — the "is it degrading right now?" number. ok is false
// unless both windows hold observations.
func (s *Series) Delta() (delta float64, ok bool) {
	cur, okC := s.Current()
	prev, okP := s.Previous()
	if !okC || !okP || cur.Count == 0 || prev.Count == 0 {
		return 0, false
	}
	return cur.Mean - prev.Mean, true
}

// DefaultEWMAAlpha is the smoothing factor used when EWMA is called with
// an out-of-range alpha.
const DefaultEWMAAlpha = 0.3

// EWMA returns the exponentially weighted moving average of the window
// means, oldest window first, skipping empty windows — the smoothed trend
// that damps single-window noise. alpha outside (0, 1] defaults to
// DefaultEWMAAlpha. ok is false when no window holds observations.
func (s *Series) EWMA(alpha float64) (ewma float64, ok bool) {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	for _, w := range s.Snapshot() {
		if w.Count == 0 {
			continue
		}
		if !ok {
			ewma, ok = w.Mean, true
			continue
		}
		ewma = alpha*w.Mean + (1-alpha)*ewma
	}
	return ewma, ok
}

// SeriesSnapshot is the exported form of one labeled series with its
// derived trends, the unit of the /debug/quality payload.
type SeriesSnapshot struct {
	// Labels identify the series within its set.
	Labels Labels `json:"labels,omitempty"`
	// IntervalSeconds is the window length.
	IntervalSeconds float64 `json:"interval_seconds"`
	// Windows are the retained windows, oldest first.
	Windows []Window `json:"windows"`
	// Current is the window containing now, when it holds observations.
	Current *Window `json:"current,omitempty"`
	// Delta is mean(current) − mean(previous), when both windows have data.
	Delta *float64 `json:"delta,omitempty"`
	// EWMA is the smoothed trend across the retained windows.
	EWMA *float64 `json:"ewma,omitempty"`
}

// SeriesReport is the wire form of a whole SeriesSet: what a debug
// endpoint serves and `dqwebre watch` consumes.
type SeriesReport struct {
	// Name is the logical family name, e.g. "dq_score".
	Name string `json:"name"`
	// Series holds one snapshot per label set, sorted by label key.
	Series []SeriesSnapshot `json:"series"`
}

// seriesEntry pairs a Series with its label identity inside a set.
type seriesEntry struct {
	labels Labels
	key    string
	s      *Series
}

// SeriesSet groups Series by label set the way a metric family groups
// counters: one set is one logical windowed family (say, DQ check scores
// per characteristic × context). Safe for concurrent use; series are
// created on first touch and live for the life of the set.
type SeriesSet struct {
	interval time.Duration
	windows  int
	clock    func() time.Time

	mu     sync.RWMutex
	series map[string]*seriesEntry
}

// NewSeriesSet creates an empty set whose member series use the given
// window interval and ring capacity (same defaults as NewSeries).
func NewSeriesSet(interval time.Duration, windows int) *SeriesSet {
	return &SeriesSet{
		interval: interval,
		windows:  windows,
		clock:    time.Now,
		series:   make(map[string]*seriesEntry),
	}
}

// SetClock injects a deterministic clock into the set and every present
// and future member series; nil restores time.Now.
func (ss *SeriesSet) SetClock(clock func() time.Time) {
	if clock == nil {
		clock = time.Now
	}
	ss.mu.Lock()
	ss.clock = clock
	entries := make([]*seriesEntry, 0, len(ss.series))
	for _, e := range ss.series {
		entries = append(entries, e)
	}
	ss.mu.Unlock()
	for _, e := range entries {
		e.s.SetClock(clock)
	}
}

// Series returns the member series for the given labels, creating it on
// first use.
func (ss *SeriesSet) Series(labels Labels) *Series {
	key := labels.canonical()
	ss.mu.RLock()
	e, ok := ss.series[key]
	ss.mu.RUnlock()
	if ok {
		return e.s
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if e, ok := ss.series[key]; ok {
		return e.s
	}
	s := NewSeries(ss.interval, ss.windows)
	s.SetClock(ss.clock)
	ss.series[key] = &seriesEntry{labels: labels.clone(), key: key, s: s}
	return s
}

// entries returns the member entries sorted by label key.
func (ss *SeriesSet) entries() []*seriesEntry {
	ss.mu.RLock()
	out := make([]*seriesEntry, 0, len(ss.series))
	for _, e := range ss.series {
		out = append(out, e)
	}
	ss.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Report snapshots every member series with its trends into the wire
// form. alpha parameterizes the EWMA (see Series.EWMA).
func (ss *SeriesSet) Report(name string, alpha float64) SeriesReport {
	rep := SeriesReport{Name: name}
	for _, e := range ss.entries() {
		snap := SeriesSnapshot{
			Labels:          e.labels.clone(),
			IntervalSeconds: e.s.Interval().Seconds(),
			Windows:         e.s.Snapshot(),
		}
		if cur, ok := e.s.Current(); ok && cur.Count > 0 {
			snap.Current = &cur
		}
		if d, ok := e.s.Delta(); ok {
			snap.Delta = &d
		}
		if m, ok := e.s.EWMA(alpha); ok {
			snap.EWMA = &m
		}
		rep.Series = append(rep.Series, snap)
	}
	return rep
}

// Export mirrors the set into reg as gauge families, the bridge from the
// windowed layer to the Prometheus exposition: for every member series it
// sets
//
//	<name>{<labels>,window="current"|"previous"}  — window mean (NaN when
//	                                                the window is empty)
//	<failName>{<labels>,window=...}               — window failure count
//	<name>_trend{<labels>,stat="delta"|"ewma"}    — trend numbers (NaN
//	                                                when underived)
//
// Call it at scrape time, like metrics.Collector.Export: gauges are
// plain last-write-wins cells, so exporting just before rendering keeps
// them honest about windows that have since emptied.
func (ss *SeriesSet) Export(reg *Registry, name, help, failName, failHelp string) {
	for _, e := range ss.entries() {
		cur, okCur := e.s.Current()
		prev, okPrev := e.s.Previous()
		exportWindow(reg, name, help, failName, failHelp, e.labels, "current", cur, okCur)
		exportWindow(reg, name, help, failName, failHelp, e.labels, "previous", prev, okPrev)

		trendHelp := help + " (trend: delta = current minus previous window mean, ewma = smoothed window mean)"
		delta, okD := e.s.Delta()
		if !okD {
			delta = math.NaN()
		}
		reg.Gauge(name+"_trend", trendHelp, withLabel(e.labels, "stat", "delta")).Set(delta)
		ewma, okE := e.s.EWMA(0)
		if !okE {
			ewma = math.NaN()
		}
		reg.Gauge(name+"_trend", trendHelp, withLabel(e.labels, "stat", "ewma")).Set(ewma)
	}
}

// exportWindow sets the mean and failure gauges for one window position.
func exportWindow(reg *Registry, name, help, failName, failHelp string, labels Labels, window string, w Window, ok bool) {
	mean, fails := math.NaN(), 0.0
	if ok && w.Count > 0 {
		mean = w.Mean
	}
	if ok {
		fails = float64(w.Failures)
	}
	reg.Gauge(name, help, withLabel(labels, "window", window)).Set(mean)
	reg.Gauge(failName, failHelp, withLabel(labels, "window", window)).Set(fails)
}

// withLabel returns labels plus one extra pair, never mutating the input.
func withLabel(labels Labels, k, v string) Labels {
	out := make(Labels, len(labels)+1)
	for lk, lv := range labels {
		out[lk] = lv
	}
	out[k] = v
	return out
}
