package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes are
// legal there).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLE renders a bucket bound for the le label.
func formatLE(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleLine writes one `name{labels} value` line; labelFragment may be "".
func sampleLine(w io.Writer, name, labelFragment, value string) error {
	if labelFragment == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labelFragment, value)
	return err
}

// joinLabels appends extra to a canonical label fragment.
func joinLabels(fragment, extra string) string {
	if fragment == "" {
		return extra
	}
	return fragment + "," + extra
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each preceded by its
// # HELP and # TYPE lines, series sorted by label key. Histograms emit
// cumulative `_bucket` samples with le labels (ending at +Inf), plus
// `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		f.mu.RLock()
		ordered := append([]*series(nil), f.order...)
		f.mu.RUnlock()
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })

		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range ordered {
			switch m := s.metric.(type) {
			case *Counter:
				if err := sampleLine(w, f.name, s.key, strconv.FormatUint(m.Value(), 10)); err != nil {
					return err
				}
			case *Gauge:
				if err := sampleLine(w, f.name, s.key, formatFloat(m.Value())); err != nil {
					return err
				}
			case *Histogram:
				cum := m.cumulative()
				for i, upper := range m.upper {
					frag := joinLabels(s.key, `le="`+formatLE(upper)+`"`)
					if err := sampleLine(w, f.name+"_bucket", frag, strconv.FormatUint(cum[i], 10)); err != nil {
						return err
					}
				}
				frag := joinLabels(s.key, `le="+Inf"`)
				if err := sampleLine(w, f.name+"_bucket", frag, strconv.FormatUint(cum[len(cum)-1], 10)); err != nil {
					return err
				}
				if err := sampleLine(w, f.name+"_sum", s.key, formatFloat(m.Sum())); err != nil {
					return err
				}
				if err := sampleLine(w, f.name+"_count", s.key, strconv.FormatUint(cum[len(cum)-1], 10)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// PrometheusText renders the registry to a string; see WritePrometheus.
func (r *Registry) PrometheusText() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}
