package obs

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per call, making durations deterministic.
func fakeClock(step time.Duration) func() time.Time {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return base.Add(time.Duration(n) * step)
	}
}

func TestSpanTreeNestingAndExport(t *testing.T) {
	tr := NewTracer(8)
	tr.SetClock(fakeClock(time.Millisecond))

	ctx, root := tr.Start(context.Background(), "pipeline")
	root.SetAttr("model", "easychair")

	ctx2, child := StartSpan(ctx, "load")
	if child == nil {
		t.Fatal("StartSpan under an active span must create a child")
	}
	_, grand := StartSpan(ctx2, "parse")
	grand.Fail(errors.New("boom"))
	grand.End()
	child.End()

	_, sibling := StartSpan(ctx, "validate")
	sibling.End()
	root.End()

	tree := TreeString(root)
	for _, want := range []string{"pipeline", "{model=easychair}", "├─ load", "│  └─ parse", "ERROR: boom", "└─ validate"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}

	data, err := MarshalSpanJSON(root)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Name != "pipeline" || len(snap.Children) != 2 {
		t.Errorf("snapshot shape wrong: %+v", snap)
	}
	if snap.Children[0].Children[0].Error != "boom" {
		t.Errorf("grandchild error not exported: %+v", snap.Children[0])
	}
}

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatal("no active span in context must yield a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("context must pass through unchanged")
	}
	// All nil-span methods must be safe.
	s.SetAttr("k", 1)
	s.Fail(errors.New("x"))
	s.End()
	if s.Duration() != 0 || s.Name() != "" || s.Err() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.Start(context.Background(), "x")
	if s != nil || SpanFromContext(ctx) != nil {
		t.Fatal("nil tracer must not create spans")
	}
	if tr.Finished() != nil {
		t.Fatal("nil tracer has no finished spans")
	}
}

func TestRingBufferKeepsNewestRoots(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		_, s := tr.Start(context.Background(), string(rune('a'+i)))
		s.End()
	}
	fin := tr.Finished()
	if len(fin) != 3 {
		t.Fatalf("got %d finished spans, want 3", len(fin))
	}
	if fin[0].Name() != "e" || fin[1].Name() != "d" || fin[2].Name() != "c" {
		t.Errorf("wrong order/content: %s %s %s", fin[0].Name(), fin[1].Name(), fin[2].Name())
	}
}

func TestChildSpansAreNotRecordedAsRoots(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Start(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	if len(tr.Finished()) != 0 {
		t.Fatal("finished child must not enter the ring buffer")
	}
	root.End()
	if len(tr.Finished()) != 1 {
		t.Fatal("finished root must enter the ring buffer")
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Start(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, s := StartSpan(ctx, "child")
			s.SetAttr("i", 1)
			s.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Snapshot().Children); got != 32 {
		t.Errorf("got %d children, want 32", got)
	}
}
