package obs

import (
	"encoding/json"
	"io"
)

// Chrome trace-event export: renders span trees in the Trace Event JSON
// format that chrome://tracing, Perfetto and speedscope load, so a
// pipeline trace becomes a shareable artifact instead of terminal output.
// Only the small stable subset is emitted: complete events ("ph":"X")
// with microsecond timestamps and durations, one thread lane per root
// span.

// chromeEvent is one complete ("X") event of the Trace Event format.
type chromeEvent struct {
	Name string `json:"name"`
	// Phase is always "X": a complete event with an explicit duration.
	Phase string `json:"ph"`
	// TS and Dur are in microseconds, per the format.
	TS  float64 `json:"ts"`
	Dur float64 `json:"dur"`
	// PID/TID place the event in a process/thread lane; each root span
	// gets its own lane so overlapping requests don't interleave.
	PID int `json:"pid"`
	TID int `json:"tid"`
	// Args carries the span's attributes and error, if any.
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// appendChromeEvents flattens one span snapshot tree into events on lane
// tid.
func appendChromeEvents(events []chromeEvent, snap Snapshot, tid int) []chromeEvent {
	ev := chromeEvent{
		Name:  snap.Name,
		Phase: "X",
		TS:    float64(snap.Start.UnixNano()) / 1e3,
		Dur:   snap.DurationMS * 1e3,
		PID:   1,
		TID:   tid,
	}
	if len(snap.Attrs) > 0 || snap.Error != "" {
		ev.Args = make(map[string]string, len(snap.Attrs)+1)
		for _, a := range snap.Attrs {
			ev.Args[a.Key] = a.Value
		}
		if snap.Error != "" {
			ev.Args["error"] = snap.Error
		}
	}
	events = append(events, ev)
	for _, c := range snap.Children {
		events = appendChromeEvents(events, c, tid)
	}
	return events
}

// WriteChromeTrace renders the given span trees (typically
// Tracer.Finished()) as Chrome trace-event JSON. Nil spans are skipped;
// the output is indented so the artifact diffs readably.
func WriteChromeTrace(w io.Writer, spans []*Span) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	tid := 0
	for _, s := range spans {
		if s == nil {
			continue
		}
		tid++
		trace.TraceEvents = appendChromeEvents(trace.TraceEvents, s.Snapshot(), tid)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(trace)
}
