package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are stringified at
// set time so snapshots need no reflection.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation in a trace tree. Spans are created through a
// Tracer (or StartSpan) and must be finished with End. A nil *Span is a
// valid no-op: every method checks the receiver, so untraced code paths
// can call instrumentation unconditionally.
type Span struct {
	tracer *Tracer
	parent *Span

	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	err      error
	children []*Span
}

// Name returns the span's name, "" on nil.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr annotates the span; the value is rendered with %v.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: fmt.Sprintf("%v", value)})
	s.mu.Unlock()
}

// Fail marks the span as errored. Calling Fail after End is legal (the
// recover path of a panicking request does exactly that); the recorded
// tree shows the error either way.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// Err returns the recorded error, nil on nil.
func (s *Span) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// End finishes the span. Finished root spans are recorded in the tracer's
// ring buffer; double End keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	already := !s.end.IsZero()
	if !already {
		s.end = s.tracer.now()
	}
	s.mu.Unlock()
	if !already && s.parent == nil {
		s.tracer.record(s)
	}
}

// Duration returns the span's length; for an unfinished span, the time
// since it started.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return s.tracer.now().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// Snapshot is the exported, immutable form of a span tree, suitable for
// JSON encoding.
type Snapshot struct {
	// Name is the span name.
	Name string `json:"name"`
	// Start is the span's start time.
	Start time.Time `json:"start"`
	// DurationMS is the span length in milliseconds.
	DurationMS float64 `json:"duration_ms"`
	// Error is the failure message, "" on success.
	Error string `json:"error,omitempty"`
	// Attrs holds the annotations in set order.
	Attrs []Attr `json:"attrs,omitempty"`
	// Children are the nested spans in start order.
	Children []Snapshot `json:"children,omitempty"`
}

// Snapshot captures the span tree rooted here.
func (s *Span) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.mu.Lock()
	snap := Snapshot{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.durationLocked()) / float64(time.Millisecond),
		Attrs:      append([]Attr(nil), s.attrs...),
	}
	if s.err != nil {
		snap.Error = s.err.Error()
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// durationLocked computes the duration with s.mu already held.
func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return s.tracer.now().Sub(s.start)
	}
	return s.end.Sub(s.start)
}

// Tracer creates spans and keeps the most recent finished root spans in a
// fixed-size ring buffer. It is safe for concurrent use. A nil *Tracer is
// a valid no-op tracer: Start returns the context unchanged and a nil
// span.
type Tracer struct {
	clock func() time.Time

	mu     sync.Mutex
	ring   []*Span
	next   int
	filled bool
}

// NewTracer creates a tracer keeping the last capacity finished root
// spans; capacity < 1 defaults to 64.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 64
	}
	return &Tracer{ring: make([]*Span, capacity), clock: time.Now}
}

// SetClock injects a deterministic clock for tests; nil restores time.Now.
func (t *Tracer) SetClock(clock func() time.Time) {
	if clock == nil {
		clock = time.Now
	}
	t.clock = clock
}

func (t *Tracer) now() time.Time {
	if t == nil {
		return time.Now()
	}
	return t.clock()
}

func (t *Tracer) newSpan(name string, parent *Span) *Span {
	s := &Span{tracer: t, parent: parent, name: name, start: t.now()}
	if parent != nil {
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	}
	return s
}

// Start begins a span as a child of the context's active span (a root span
// when there is none) and returns the context carrying it. On a nil
// tracer it returns the inputs untouched.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := t.newSpan(name, SpanFromContext(ctx))
	return ContextWithSpan(ctx, s), s
}

func (t *Tracer) record(s *Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next, t.filled = 0, true
	}
	t.mu.Unlock()
}

// Finished returns the recorded root spans, newest first.
func (t *Tracer) Finished() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	for i := t.next - 1; i >= 0; i-- {
		out = append(out, t.ring[i])
	}
	if t.filled {
		for i := len(t.ring) - 1; i >= t.next; i-- {
			out = append(out, t.ring[i])
		}
	}
	return out
}

// WriteTree renders a span tree as indented text, one span per line:
//
//	name duration {attr=value ...}
//	├─ child duration
//	│  └─ grandchild duration ERROR: message
//	└─ child duration
func WriteTree(w io.Writer, s *Span) {
	writeTreeSnap(w, s.Snapshot(), "", "")
}

// TreeString renders a span tree to a string; see WriteTree.
func TreeString(s *Span) string {
	var b strings.Builder
	WriteTree(&b, s)
	return b.String()
}

func writeTreeSnap(w io.Writer, snap Snapshot, prefix, childPrefix string) {
	fmt.Fprintf(w, "%s%s %s", prefix, snap.Name, formatDurationMS(snap.DurationMS))
	if len(snap.Attrs) > 0 {
		parts := make([]string, len(snap.Attrs))
		for i, a := range snap.Attrs {
			parts[i] = a.Key + "=" + a.Value
		}
		fmt.Fprintf(w, " {%s}", strings.Join(parts, " "))
	}
	if snap.Error != "" {
		fmt.Fprintf(w, " ERROR: %s", snap.Error)
	}
	fmt.Fprintln(w)
	for i, c := range snap.Children {
		if i == len(snap.Children)-1 {
			writeTreeSnap(w, c, childPrefix+"└─ ", childPrefix+"   ")
		} else {
			writeTreeSnap(w, c, childPrefix+"├─ ", childPrefix+"│  ")
		}
	}
}

// formatDurationMS renders a millisecond duration compactly.
func formatDurationMS(ms float64) string {
	return time.Duration(ms * float64(time.Millisecond)).Round(time.Microsecond).String()
}

// MarshalSpanJSON renders a span tree as indented JSON via its Snapshot.
func MarshalSpanJSON(s *Span) ([]byte, error) {
	return json.MarshalIndent(s.Snapshot(), "", "  ")
}
