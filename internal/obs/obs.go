// Package obs is the system-observability kernel of the repository: where
// internal/metrics watches the quality of the *data* flowing through the
// pipeline, obs watches the *system* that moves it. It is dependency-free
// (standard library only, like the rest of the module) and provides three
// coordinated facilities:
//
//   - Tracing: a Tracer hands out nestable Spans (name, attributes,
//     start/duration, error) propagated through context.Context. Finished
//     root spans land in a fixed-size ring buffer and export as a text
//     span tree or JSON — `dqwebre trace` and /debug/spans render them.
//   - Metrics: atomic Counter, Gauge and fixed-bucket Histogram types in a
//     Registry that renders the Prometheus text exposition format, served
//     by the EasyChair webapp at /metrics.
//   - Logging: thin per-component *slog.Logger construction over one
//     process-wide handler.
//
// Library code (validate, transform, xmi, dqruntime) instruments itself
// against the package-level Default registry and whatever span is already
// in the incoming context, so uninstrumented callers pay almost nothing: a
// context lookup that misses yields a nil *Span whose methods are no-ops.
package obs

import (
	"context"
	"sync"
)

// defaultRegistry is the process-wide metric registry, in the spirit of
// Prometheus' default registerer: library code records into it, and any
// server can expose it. Tests needing isolation construct their own
// Registry.
var (
	defaultOnce     sync.Once
	defaultRegistry *Registry
)

// Default returns the process-wide metric registry.
func Default() *Registry {
	defaultOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// spanKey carries the active span through a context.
type spanKey struct{}

// ContextWithSpan returns a context carrying the given span; child spans
// started from it via StartSpan attach below the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil when the context carries
// none. A nil *Span is safe to use: all its methods are no-ops.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's active span. When the context
// carries no span — the caller opted out of tracing — it returns the
// context unchanged and a nil span, so instrumented library code costs one
// context lookup on the untraced path.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.tracer.newSpan(name, parent)
	return ContextWithSpan(ctx, child), child
}
