package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	tr.SetClock(fakeClock(time.Millisecond))

	ctx, root := tr.Start(context.Background(), "pipeline")
	root.SetAttr("model", "easychair")
	_, child := StartSpan(ctx, "validate")
	child.Fail(errors.New("boom"))
	child.End()
	root.End()

	_, other := tr.Start(context.Background(), "load")
	other.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Finished()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var trace struct {
		TraceEvents []struct {
			Name  string            `json:"name"`
			Phase string            `json:"ph"`
			TS    float64           `json:"ts"`
			Dur   float64           `json:"dur"`
			PID   int               `json:"pid"`
			TID   int               `json:"tid"`
			Args  map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if trace.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", trace.DisplayTimeUnit)
	}
	if len(trace.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(trace.TraceEvents))
	}

	byName := map[string]int{}
	for i, ev := range trace.TraceEvents {
		byName[ev.Name] = i
		if ev.Phase != "X" {
			t.Errorf("%s: ph = %q, want X", ev.Name, ev.Phase)
		}
		if ev.PID != 1 {
			t.Errorf("%s: pid = %d, want 1", ev.Name, ev.PID)
		}
		if ev.Dur <= 0 {
			t.Errorf("%s: dur = %g, want > 0", ev.Name, ev.Dur)
		}
	}
	pipeline := trace.TraceEvents[byName["pipeline"]]
	validate := trace.TraceEvents[byName["validate"]]
	load := trace.TraceEvents[byName["load"]]

	// Each root span tree gets its own thread lane; children share the
	// root's lane.
	if pipeline.TID != validate.TID {
		t.Errorf("child lane %d != root lane %d", validate.TID, pipeline.TID)
	}
	if load.TID == pipeline.TID {
		t.Error("separate roots must not share a lane")
	}
	if pipeline.Args["model"] != "easychair" {
		t.Errorf("attrs not carried: %v", pipeline.Args)
	}
	if validate.Args["error"] != "boom" {
		t.Errorf("error not carried: %v", validate.Args)
	}
	// The child starts within the parent's extent (ts in microseconds).
	if validate.TS < pipeline.TS {
		t.Errorf("child ts %g before parent ts %g", validate.TS, pipeline.TS)
	}
}

func TestWriteChromeTraceEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Span{nil, nil}); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// traceEvents must be [] (not null) so viewers accept the file.
	if string(trace["traceEvents"]) != "[]" {
		t.Errorf("traceEvents = %s, want []", trace["traceEvents"])
	}
}
