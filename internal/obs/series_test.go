package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// seriesClock is a deterministic, mutable clock for series tests.
type seriesClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *seriesClock {
	return &seriesClock{t: time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)}
}

func (c *seriesClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *seriesClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestSeriesWindowAggregation(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(time.Minute, 5)
	s.SetClock(clk.Now)

	s.Observe(1)
	s.ObserveOutcome(0.5, true)
	s.Observe(0.9)

	cur, ok := s.Current()
	if !ok {
		t.Fatal("current window missing")
	}
	if cur.Count != 3 || cur.Failures != 1 {
		t.Errorf("count/failures = %d/%d, want 3/1", cur.Count, cur.Failures)
	}
	if cur.Min != 0.5 || cur.Max != 1 {
		t.Errorf("min/max = %g/%g, want 0.5/1", cur.Min, cur.Max)
	}
	if want := 2.4 / 3; math.Abs(cur.Mean-want) > 1e-9 {
		t.Errorf("mean = %g, want %g", cur.Mean, want)
	}
	if _, ok := s.Previous(); ok {
		t.Error("previous window should not exist yet")
	}
}

func TestSeriesDeltaAndWindowAdvance(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(time.Minute, 5)
	s.SetClock(clk.Now)

	s.Observe(0.8)
	s.Observe(0.8)
	clk.Advance(time.Minute)
	s.Observe(0.9)

	delta, ok := s.Delta()
	if !ok {
		t.Fatal("delta should be derivable with two populated windows")
	}
	if math.Abs(delta-0.1) > 1e-9 {
		t.Errorf("delta = %g, want 0.1", delta)
	}
	prev, ok := s.Previous()
	if !ok || prev.Count != 2 {
		t.Errorf("previous = %+v ok=%v, want count 2", prev, ok)
	}

	// An empty current window (time moved on, nothing observed) kills both
	// Current and Delta.
	clk.Advance(time.Minute)
	if _, ok := s.Current(); ok {
		t.Error("current window should be missing after silent advance")
	}
	if _, ok := s.Delta(); ok {
		t.Error("delta should not be derivable without a current window")
	}
}

func TestSeriesRingEvictionAndBigJump(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(time.Minute, 3)
	s.SetClock(clk.Now)

	for i := 0; i < 5; i++ {
		s.Observe(float64(i))
		clk.Advance(time.Minute)
	}
	// 5 windows observed, capacity 3: the ring keeps the newest 3.
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d windows, want 3", len(snap))
	}
	if snap[0].Sum != 2 || snap[2].Sum != 4 {
		t.Errorf("oldest/newest sums = %g/%g, want 2/4", snap[0].Sum, snap[2].Sum)
	}
	for i := 1; i < len(snap); i++ {
		if !snap[i].Start.After(snap[i-1].Start) {
			t.Errorf("windows out of order: %v then %v", snap[i-1].Start, snap[i].Start)
		}
	}

	// A jump longer than the whole ring resets it.
	clk.Advance(time.Hour)
	s.Observe(7)
	snap = s.Snapshot()
	if len(snap) != 1 || snap[0].Sum != 7 {
		t.Fatalf("after big jump: snapshot = %+v, want single window sum 7", snap)
	}
}

func TestSeriesEWMA(t *testing.T) {
	clk := newFakeClock()
	s := NewSeries(time.Minute, 8)
	s.SetClock(clk.Now)

	if _, ok := s.EWMA(0.5); ok {
		t.Error("EWMA on an empty series should not be ok")
	}
	for _, mean := range []float64{1, 0.5, 0.25} {
		s.Observe(mean)
		clk.Advance(time.Minute)
	}
	got, ok := s.EWMA(0.5)
	if !ok {
		t.Fatal("EWMA should be derivable")
	}
	// Seeded with 1, then 0.5*0.5+0.5*1 = 0.75, then 0.5*0.25+0.5*0.75.
	if want := 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("EWMA = %g, want %g", got, want)
	}
	// Out-of-range alpha falls back to the default instead of misbehaving.
	if _, ok := s.EWMA(42); !ok {
		t.Error("EWMA with out-of-range alpha should still derive")
	}
}

func TestSeriesMergeAndNonFiniteDropped(t *testing.T) {
	s := NewSeries(time.Minute, 4)
	s.Merge(10, 2, 8.5, 0.1, 1)
	s.Merge(0, 5, 100, 0, 0) // count 0: dropped entirely
	s.Observe(math.NaN())
	s.Observe(math.Inf(1))
	cur, ok := s.Current()
	if !ok {
		t.Fatal("current window missing")
	}
	if cur.Count != 10 || cur.Failures != 2 || cur.Sum != 8.5 {
		t.Errorf("window = %+v, want count 10, failures 2, sum 8.5", cur)
	}
	if cur.Min != 0.1 || cur.Max != 1 {
		t.Errorf("min/max = %g/%g, want 0.1/1", cur.Min, cur.Max)
	}
}

func TestSeriesSetReportJSON(t *testing.T) {
	clk := newFakeClock()
	ss := NewSeriesSet(time.Minute, 4)
	ss.SetClock(clk.Now)

	ss.Series(Labels{"characteristic": "Completeness", "context": "reviewer"}).Observe(0.9)
	clk.Advance(time.Minute)
	ss.Series(Labels{"characteristic": "Completeness", "context": "reviewer"}).ObserveOutcome(0.7, true)
	ss.Series(Labels{"characteristic": "Precision", "context": "chair"}).Observe(1)

	rep := ss.Report("dq_score", 0)
	if rep.Name != "dq_score" || len(rep.Series) != 2 {
		t.Fatalf("report = %+v, want 2 series named dq_score", rep)
	}
	// Entries are sorted by canonical label key: Completeness first.
	first := rep.Series[0]
	if first.Labels["characteristic"] != "Completeness" {
		t.Errorf("first series = %v, want Completeness", first.Labels)
	}
	if first.Current == nil || first.Current.Failures != 1 {
		t.Errorf("current = %+v, want 1 failure", first.Current)
	}
	if first.Delta == nil || math.Abs(*first.Delta-(-0.2)) > 1e-9 {
		t.Errorf("delta = %v, want -0.2", first.Delta)
	}
	if first.EWMA == nil {
		t.Error("EWMA missing")
	}

	// The wire form must round-trip through JSON (no NaN poisoning).
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back SeriesReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back.Series) != 2 || back.Series[0].Labels["context"] != "reviewer" {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestSeriesSetExport(t *testing.T) {
	clk := newFakeClock()
	ss := NewSeriesSet(time.Minute, 4)
	ss.SetClock(clk.Now)
	labels := Labels{"characteristic": "Completeness", "context": "reviewer"}

	ss.Series(labels).ObserveOutcome(0.5, true)
	clk.Advance(time.Minute)
	ss.Series(labels).Observe(1)

	reg := NewRegistry()
	ss.Export(reg, "dq_score", "score", "dq_check_failures", "failures")
	text := reg.PrometheusText()

	for _, want := range []string{
		`dq_score{characteristic="Completeness",context="reviewer",window="current"} 1`,
		`dq_score{characteristic="Completeness",context="reviewer",window="previous"} 0.5`,
		`dq_check_failures{characteristic="Completeness",context="reviewer",window="current"} 0`,
		`dq_check_failures{characteristic="Completeness",context="reviewer",window="previous"} 1`,
		`dq_score_trend{characteristic="Completeness",context="reviewer",stat="delta"} 0.5`,
		`dq_score_trend{characteristic="Completeness",context="reviewer",stat="ewma"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// After a silent advance the stale "current" must become NaN, not keep
	// the last value.
	clk.Advance(time.Minute)
	ss.Export(reg, "dq_score", "score", "dq_check_failures", "failures")
	text = reg.PrometheusText()
	if !strings.Contains(text, `dq_score{characteristic="Completeness",context="reviewer",window="current"} NaN`) {
		t.Errorf("stale current window not NaN:\n%s", text)
	}
	if !strings.Contains(text, `dq_score{characteristic="Completeness",context="reviewer",window="previous"} 1`) {
		t.Errorf("previous window should hold the last populated mean:\n%s", text)
	}
}

// TestSeriesConcurrentWriters hammers one set from many goroutines while a
// reader snapshots; run under -race this verifies the locking story.
func TestSeriesConcurrentWriters(t *testing.T) {
	ss := NewSeriesSet(time.Minute, 4)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				ss.Report("x", 0)
				for _, e := range ss.entries() {
					e.s.Snapshot()
					e.s.Delta()
					e.s.EWMA(0)
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			labels := Labels{"shard": []string{"a", "b"}[g%2]}
			for i := 0; i < perG; i++ {
				ss.Series(labels).ObserveOutcome(0.5, i%3 == 0)
			}
		}(g)
	}
	wg.Wait()
	close(stop)

	var total uint64
	for _, e := range ss.entries() {
		if cur, ok := e.s.Current(); ok {
			total += cur.Count
		}
	}
	if total != goroutines*perG {
		t.Errorf("observations lost: %d, want %d", total, goroutines*perG)
	}
}

func TestSeriesDefaults(t *testing.T) {
	s := NewSeries(0, 0)
	if s.Interval() != time.Minute {
		t.Errorf("default interval = %v, want 1m", s.Interval())
	}
	if len(s.ring) != 2 {
		t.Errorf("default ring size = %d, want 2", len(s.ring))
	}
}
