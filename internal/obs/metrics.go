package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels name one time series within a metric family. A nil map is the
// unlabeled series.
type Labels map[string]string

// canonical renders labels as a stable series key and exposition fragment:
// `k1="v1",k2="v2"` with keys sorted and values escaped. Empty for nil.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// clone copies the labels so callers can reuse their map.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Counter is a monotonically increasing count, safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets, safe for concurrent
// use. Buckets are upper bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; the last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// DefBuckets are latency-oriented default bucket bounds in seconds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// cumulative returns the per-bucket cumulative counts, +Inf last.
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		out[i] = running
	}
	return out
}

// metric family types.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// series is one (labels, metric) pair of a family.
type series struct {
	labels Labels
	key    string
	metric any
}

// family groups all series of one metric name.
type family struct {
	name    string
	help    string
	typ     string
	buckets []float64 // histograms only
	mu      sync.RWMutex
	series  map[string]*series
	order   []*series // insertion order; sorted at render time
}

func (f *family) getOrCreate(labels Labels, create func() any) any {
	key := labels.canonical()
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s.metric
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s.metric
	}
	s = &series{labels: labels.clone(), key: key, metric: create()}
	f.series[key] = s
	f.order = append(f.order, s)
	return s.metric
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. It is safe for concurrent use; metrics are created on
// first touch and live for the life of the registry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string, buckets []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.families[name]; !ok {
			f = &family{
				name: name, help: help, typ: typ, buckets: buckets,
				series: make(map[string]*series),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// Counter returns the counter for the given family and labels, creating
// both on first use. Requesting an existing name as a different metric
// type panics: that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, typeCounter, nil)
	return f.getOrCreate(labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge for the given family and labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, typeGauge, nil)
	return f.getOrCreate(labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram for the given family and labels. The
// bucket bounds of the first call win for the whole family; nil buckets
// mean DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, typeHistogram, buckets)
	return f.getOrCreate(labels, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// snapshot returns the families sorted by name with their series sorted by
// canonical label key, for deterministic rendering.
func (r *Registry) snapshot() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
