package uml

import (
	"fmt"
	"sort"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// Profile is a lightweight UML extension: a named set of stereotypes.
// The DQ_WebRE profile of the paper is an instance of this type.
type Profile struct {
	name        string
	doc         string
	stereotypes []*Stereotype
	byName      map[string]*Stereotype
}

// NewProfile creates an empty profile.
func NewProfile(name string) *Profile {
	return &Profile{name: name, byName: make(map[string]*Stereotype)}
}

// Name returns the profile's name.
func (p *Profile) Name() string { return p.name }

// SetDoc attaches a description to the profile.
func (p *Profile) SetDoc(doc string) *Profile {
	p.doc = doc
	return p
}

// Doc returns the profile description.
func (p *Profile) Doc() string { return p.doc }

// AddStereotype defines a stereotype extending the given UML base
// metaclasses. At least one base is required; duplicates by name are
// programming errors and panic.
func (p *Profile) AddStereotype(name string, bases ...*metamodel.Class) *Stereotype {
	if name == "" {
		panic(fmt.Errorf("uml: empty stereotype name in profile %q", p.name))
	}
	if _, ok := p.byName[name]; ok {
		panic(fmt.Errorf("uml: stereotype %q already defined in profile %q", name, p.name))
	}
	if len(bases) == 0 {
		panic(fmt.Errorf("uml: stereotype %q needs at least one base metaclass", name))
	}
	s := &Stereotype{name: name, profile: p, bases: bases, tagsByName: make(map[string]*TagDef)}
	p.stereotypes = append(p.stereotypes, s)
	p.byName[name] = s
	return s
}

// Stereotypes returns the stereotypes in definition order.
func (p *Profile) Stereotypes() []*Stereotype {
	return append([]*Stereotype(nil), p.stereotypes...)
}

// Stereotype looks a stereotype up by name.
func (p *Profile) Stereotype(name string) (*Stereotype, bool) {
	s, ok := p.byName[name]
	return s, ok
}

// MustStereotype looks a stereotype up by name and panics if absent.
func (p *Profile) MustStereotype(name string) *Stereotype {
	s, ok := p.byName[name]
	if !ok {
		panic(fmt.Errorf("uml: profile %q has no stereotype %q", p.name, name))
	}
	return s
}

// Stereotype is a named extension of one or more UML metaclasses, optionally
// carrying tagged-value definitions and OCL well-formedness constraints.
type Stereotype struct {
	name       string
	profile    *Profile
	doc        string
	bases      []*metamodel.Class
	tags       []*TagDef
	tagsByName map[string]*TagDef
	constr     []Constraint
}

// Name returns the stereotype name (without guillemets).
func (s *Stereotype) Name() string { return s.name }

// Profile returns the owning profile.
func (s *Stereotype) Profile() *Profile { return s.profile }

// SetDoc attaches the stereotype's description (paper Table 3 "Description").
func (s *Stereotype) SetDoc(doc string) *Stereotype {
	s.doc = doc
	return s
}

// Doc returns the description.
func (s *Stereotype) Doc() string { return s.doc }

// Bases returns the extended metaclasses.
func (s *Stereotype) Bases() []*metamodel.Class {
	return append([]*metamodel.Class(nil), s.bases...)
}

// BaseNames returns the extended metaclass names, sorted.
func (s *Stereotype) BaseNames() []string {
	out := make([]string, len(s.bases))
	for i, b := range s.bases {
		out[i] = b.Name()
	}
	sort.Strings(out)
	return out
}

// AppliesTo reports whether the stereotype can be applied to an instance of
// the given metaclass.
func (s *Stereotype) AppliesTo(c *metamodel.Class) bool {
	for _, b := range s.bases {
		if c.ConformsTo(b) {
			return true
		}
	}
	return false
}

// AddTag defines a tagged value carried by applications of this stereotype.
// many selects a set-valued tag (e.g. the paper's "DQ_metadata: set(String)").
func (s *Stereotype) AddTag(name string, typ metamodel.Classifier, many bool) *TagDef {
	if _, ok := s.tagsByName[name]; ok {
		panic(fmt.Errorf("uml: tag %q already defined on stereotype %q", name, s.name))
	}
	t := &TagDef{Name: name, Type: typ, Many: many}
	s.tags = append(s.tags, t)
	s.tagsByName[name] = t
	return t
}

// Tags returns the tagged-value definitions in declaration order.
func (s *Stereotype) Tags() []*TagDef { return append([]*TagDef(nil), s.tags...) }

// Tag looks a tagged-value definition up by name.
func (s *Stereotype) Tag(name string) (*TagDef, bool) {
	t, ok := s.tagsByName[name]
	return t, ok
}

// AddConstraint attaches an OCL well-formedness constraint. The expression
// is evaluated by the validation engine with `self` bound to the stereotyped
// element.
func (s *Stereotype) AddConstraint(name, ocl, doc string) *Stereotype {
	s.constr = append(s.constr, Constraint{Name: name, OCL: ocl, Doc: doc})
	return s
}

// Constraints returns the attached constraints in declaration order.
func (s *Stereotype) Constraints() []Constraint {
	return append([]Constraint(nil), s.constr...)
}

// TagDef describes one tagged value of a stereotype.
type TagDef struct {
	// Name is the tag name, e.g. "upper_bound".
	Name string
	// Type is the tag's classifier (usually a UML primitive).
	Type metamodel.Classifier
	// Many selects a set-valued tag.
	Many bool
	// Doc describes the tag.
	Doc string
}

// SetDoc attaches a description and returns the definition for chaining.
func (t *TagDef) SetDoc(doc string) *TagDef {
	t.Doc = doc
	return t
}

// TypeString renders the tag type in the paper's Table 3 notation, e.g.
// "String", "Integer" or "set(String)".
func (t *TagDef) TypeString() string {
	base := t.Type.Name()
	if t.Many {
		return "set(" + base + ")"
	}
	return base
}

// Constraint is a named OCL well-formedness rule attached to a stereotype.
type Constraint struct {
	// Name identifies the constraint in diagnostics.
	Name string
	// OCL is the boolean OCL expression, with `self` bound to the element.
	OCL string
	// Doc is the prose reading of the constraint (paper Table 3 wording).
	Doc string
}

// Application records one stereotype applied to one model element together
// with its tagged values.
type Application struct {
	// Stereotype is the applied stereotype.
	Stereotype *Stereotype
	// Element is the stereotyped model element.
	Element *metamodel.Object
	tags    map[string]metamodel.Value
}

// SetTag assigns a tagged value, checking the tag is defined and the value
// kind matches the tag's type.
func (a *Application) SetTag(name string, v metamodel.Value) error {
	def, ok := a.Stereotype.Tag(name)
	if !ok {
		return fmt.Errorf("uml: stereotype %q has no tag %q", a.Stereotype.Name(), name)
	}
	if v == nil {
		delete(a.tags, name)
		return nil
	}
	if err := checkTagValue(def, v); err != nil {
		return err
	}
	if a.tags == nil {
		a.tags = make(map[string]metamodel.Value)
	}
	a.tags[name] = v
	return nil
}

// MustSetTag is SetTag that panics on error, for fixture construction.
func (a *Application) MustSetTag(name string, v metamodel.Value) *Application {
	if err := a.SetTag(name, v); err != nil {
		panic(err)
	}
	return a
}

// Tag returns the tagged value, if set.
func (a *Application) Tag(name string) (metamodel.Value, bool) {
	v, ok := a.tags[name]
	return v, ok
}

// TagNames returns the names of set tags in sorted order.
func (a *Application) TagNames() []string {
	out := make([]string, 0, len(a.tags))
	for k := range a.tags {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func checkTagValue(def *TagDef, v metamodel.Value) error {
	checkOne := func(item metamodel.Value) error {
		dt, ok := def.Type.(*metamodel.DataType)
		if !ok {
			// Enumeration- or class-typed tags: accept enum literals and refs.
			switch def.Type.(type) {
			case *metamodel.Enumeration:
				if item.Kind() != metamodel.VEnum {
					return fmt.Errorf("uml: tag %q expects enumeration %s, got %s",
						def.Name, def.Type.Name(), item.Kind())
				}
				return nil
			default:
				if item.Kind() != metamodel.VRef {
					return fmt.Errorf("uml: tag %q expects a reference, got %s",
						def.Name, item.Kind())
				}
				return nil
			}
		}
		want := map[metamodel.Primitive]metamodel.ValueKind{
			metamodel.PrimString:  metamodel.VString,
			metamodel.PrimInteger: metamodel.VInt,
			metamodel.PrimBoolean: metamodel.VBool,
			metamodel.PrimReal:    metamodel.VReal,
		}[dt.Base()]
		if item.Kind() != want {
			return fmt.Errorf("uml: tag %q expects %s, got %s", def.Name, want, item.Kind())
		}
		return nil
	}
	if def.Many {
		l, ok := v.(*metamodel.List)
		if !ok {
			return fmt.Errorf("uml: tag %q is set-valued; expected List, got %s", def.Name, v.Kind())
		}
		for _, item := range l.Items {
			if err := checkOne(item); err != nil {
				return err
			}
		}
		return nil
	}
	return checkOne(v)
}
