package uml

import (
	"fmt"
	"sync"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// Model wraps a kernel model with profile application: it tracks which
// stereotypes are applied to which elements and their tagged values. This is
// the object analysts manipulate when drawing the paper's use-case and
// activity diagrams.
type Model struct {
	*metamodel.Model

	mu       sync.RWMutex
	profiles []*Profile
	applied  map[*metamodel.Object][]*Application
}

// NewModel creates an empty profiled model over the given metamodel package.
func NewModel(name string, mm *metamodel.Package) *Model {
	return &Model{
		Model:   metamodel.NewModel(name, mm),
		applied: make(map[*metamodel.Object][]*Application),
	}
}

// ApplyProfile makes a profile's stereotypes available on this model.
// Reapplying a profile is a no-op.
func (m *Model) ApplyProfile(p *Profile) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, existing := range m.profiles {
		if existing == p {
			return
		}
	}
	m.profiles = append(m.profiles, p)
}

// Profiles returns the applied profiles in application order.
func (m *Model) Profiles() []*Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*Profile(nil), m.profiles...)
}

// ResolveStereotype finds a stereotype by name across the applied profiles.
func (m *Model) ResolveStereotype(name string) (*Stereotype, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, p := range m.profiles {
		if s, ok := p.Stereotype(name); ok {
			return s, true
		}
	}
	return nil, false
}

// Apply applies a stereotype to an element, enforcing the base-metaclass
// rule: the element's class must conform to one of the stereotype's bases.
// Applying the same stereotype twice returns the existing application.
func (m *Model) Apply(o *metamodel.Object, s *Stereotype) (*Application, error) {
	if o == nil || s == nil {
		return nil, fmt.Errorf("uml: Apply with nil element or stereotype")
	}
	if !s.AppliesTo(o.Class()) {
		return nil, fmt.Errorf("uml: stereotype %q extends %v; cannot apply to instance of %q",
			s.Name(), s.BaseNames(), o.Class().QualifiedName())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	registered := false
	for _, p := range m.profiles {
		if p == s.Profile() {
			registered = true
			break
		}
	}
	if !registered {
		return nil, fmt.Errorf("uml: profile %q not applied to model %q",
			s.Profile().Name(), m.Name())
	}
	for _, a := range m.applied[o] {
		if a.Stereotype == s {
			return a, nil
		}
	}
	a := &Application{Stereotype: s, Element: o}
	m.applied[o] = append(m.applied[o], a)
	return a, nil
}

// MustApply is Apply that panics on error, for fixture construction.
func (m *Model) MustApply(o *metamodel.Object, s *Stereotype) *Application {
	a, err := m.Apply(o, s)
	if err != nil {
		panic(err)
	}
	return a
}

// ApplyByName resolves the stereotype by name and applies it.
func (m *Model) ApplyByName(o *metamodel.Object, stereotype string) (*Application, error) {
	s, ok := m.ResolveStereotype(stereotype)
	if !ok {
		return nil, fmt.Errorf("uml: no applied profile defines stereotype %q", stereotype)
	}
	return m.Apply(o, s)
}

// Unapply removes a stereotype application from an element.
func (m *Model) Unapply(o *metamodel.Object, s *Stereotype) {
	m.mu.Lock()
	defer m.mu.Unlock()
	apps := m.applied[o]
	for i, a := range apps {
		if a.Stereotype == s {
			m.applied[o] = append(apps[:i], apps[i+1:]...)
			if len(m.applied[o]) == 0 {
				delete(m.applied, o)
			}
			return
		}
	}
}

// Applications returns the stereotype applications on an element, in
// application order.
func (m *Model) Applications(o *metamodel.Object) []*Application {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*Application(nil), m.applied[o]...)
}

// HasStereotype reports whether the element carries the named stereotype.
func (m *Model) HasStereotype(o *metamodel.Object, name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, a := range m.applied[o] {
		if a.Stereotype.Name() == name {
			return true
		}
	}
	return false
}

// Application returns the application of the named stereotype on o, if any.
func (m *Model) Application(o *metamodel.Object, name string) (*Application, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, a := range m.applied[o] {
		if a.Stereotype.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// StereotypedBy returns all model elements carrying the named stereotype,
// in model insertion order.
func (m *Model) StereotypedBy(name string) []*metamodel.Object {
	var out []*metamodel.Object
	for _, o := range m.Objects() {
		if m.HasStereotype(o, name) {
			out = append(out, o)
		}
	}
	return out
}

// StereotypeNames returns the stereotype names applied to o, in application
// order, for diagram labels («InformationCase» etc.).
func (m *Model) StereotypeNames(o *metamodel.Object) []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	apps := m.applied[o]
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Stereotype.Name()
	}
	return out
}
