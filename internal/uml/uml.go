// Package uml defines the UML 2.x subset the DQ_WebRE proposal builds on:
// use cases, activities, classes, requirements and comments, plus the
// profile machinery (stereotypes, tagged values, constraints) that lets the
// DQ_WebRE profile extend standard UML base classes exactly as the paper's
// Table 3 prescribes.
//
// The subset is expressed as data on the metamodel kernel: Metamodel()
// returns a metamodel.Package whose classes are UML metaclasses. Models are
// ordinary metamodel.Model graphs; the uml.Model wrapper adds profile
// application on top.
package uml

import (
	"fmt"
	"sync"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// Metaclass names exposed by the UML subset, used as stereotype base classes
// and by downstream metamodels (WebRE) as superclasses.
const (
	MetaElement           = "Element"
	MetaNamedElement      = "NamedElement"
	MetaComment           = "Comment"
	MetaClassifier        = "Classifier"
	MetaActor             = "Actor"
	MetaUseCase           = "UseCase"
	MetaInclude           = "Include"
	MetaExtend            = "Extend"
	MetaAssociation       = "Association"
	MetaClass             = "Class"
	MetaAttribute         = "Attribute"
	MetaOperation         = "Operation"
	MetaActivity          = "Activity"
	MetaActivityNode      = "ActivityNode"
	MetaAction            = "Action"
	MetaInitialNode       = "InitialNode"
	MetaActivityFinalNode = "ActivityFinalNode"
	MetaDecisionNode      = "DecisionNode"
	MetaMergeNode         = "MergeNode"
	MetaForkNode          = "ForkNode"
	MetaJoinNode          = "JoinNode"
	MetaObjectNode        = "ObjectNode"
	MetaControlFlow       = "ControlFlow"
	MetaActivityPartition = "ActivityPartition"
	MetaRequirement       = "Requirement"
)

var (
	metamodelOnce sync.Once
	metamodelPkg  *metamodel.Package
)

// Metamodel returns the process-wide UML subset metamodel. The package is
// built once and registered in the metamodel registry under the name "UML".
func Metamodel() *metamodel.Package {
	metamodelOnce.Do(func() {
		metamodelPkg = buildMetamodel()
		metamodel.MustRegister(metamodelPkg)
	})
	return metamodelPkg
}

func buildMetamodel() *metamodel.Package {
	u := metamodel.NewPackage("UML")
	str := u.AddDataType("String", metamodel.PrimString)
	intT := u.AddDataType("Integer", metamodel.PrimInteger)
	boolT := u.AddDataType("Boolean", metamodel.PrimBoolean)
	_ = intT
	_ = boolT

	element := u.AddAbstractClass(MetaElement).
		SetDoc("Root of the UML element hierarchy; everything in a model is an Element.")

	named := u.AddAbstractClass(MetaNamedElement).
		SetDoc("An Element with an optional name.")
	named.AddSuper(element)
	named.AddAttr("name", str).SetDoc("The element's name, shown in diagrams.")

	comment := u.AddClass(MetaComment).
		SetDoc("A note attached to one or more elements (used in the paper's Fig. 6 to list the data items of a Content).")
	comment.AddSuper(element)
	comment.AddAttr("body", str).SetDoc("The text of the note.")
	comment.AddRefs("annotatedElement", element).
		SetDoc("Elements this comment annotates.")

	classifier := u.AddAbstractClass(MetaClassifier).
		SetDoc("A NamedElement that classifies instances: actors, use cases, classes.")
	classifier.AddSuper(named)

	actor := u.AddClass(MetaActor).
		SetDoc("A role played by a user or external system interacting with the subject.")
	actor.AddSuper(classifier)

	usecase := u.AddClass(MetaUseCase).
		SetDoc("A unit of externally visible functionality provided by the subject.")
	usecase.AddSuper(classifier)

	include := u.AddClass(MetaInclude).
		SetDoc("An include relationship from a base use case to the use case whose behaviour it incorporates.")
	include.AddSuper(element)
	include.AddProperty("addition", usecase, 1, 1).
		SetDoc("The use case that is included.")
	usecase.AddRefs("include", include).SetComposite().
		SetDoc("Include relationships owned by this use case.")

	extend := u.AddClass(MetaExtend).
		SetDoc("An extend relationship from an extension use case to the use case it extends.")
	extend.AddSuper(element)
	extend.AddProperty("extendedCase", usecase, 1, 1).
		SetDoc("The use case that is extended.")
	usecase.AddRefs("extend", extend).SetComposite().
		SetDoc("Extend relationships owned by this use case.")

	assoc := u.AddClass(MetaAssociation).
		SetDoc("A binary association, used to connect actors to use cases in use-case diagrams.")
	assoc.AddSuper(named)
	assoc.AddProperty("memberEnd", classifier, 2, 2).
		SetDoc("The two classifiers the association connects.")

	attr := u.AddClass(MetaAttribute).
		SetDoc("A structural feature of a Class.")
	attr.AddSuper(named)
	attr.AddAttr("type", str).SetDoc("The attribute's type name, kept textual in this subset.")

	oper := u.AddClass(MetaOperation).
		SetDoc("A behavioural feature of a Class.")
	oper.AddSuper(named)
	oper.AddAttr("signature", str).SetDoc("Rendered parameter list and return type.")

	class := u.AddClass(MetaClass).
		SetDoc("A class in the structural model; DQ_WebRE stereotypes DQ_Metadata, DQ_Validator and DQConstraint extend it.")
	class.AddSuper(classifier)
	class.AddRefs("attributes", attr).SetComposite().
		SetDoc("Owned attributes in declaration order.")
	class.AddRefs("operations", oper).SetComposite().
		SetDoc("Owned operations in declaration order.")

	activity := u.AddClass(MetaActivity).
		SetDoc("A graph of nodes and control flows describing behaviour; the paper's Fig. 7 is an Activity.")
	activity.AddSuper(named)

	partition := u.AddClass(MetaActivityPartition).
		SetDoc("A swimlane grouping nodes by responsible element.")
	partition.AddSuper(named)
	activity.AddRefs("partitions", partition).SetComposite().
		SetDoc("Swimlanes of this activity.")

	node := u.AddAbstractClass(MetaActivityNode).
		SetDoc("Abstract node in an activity graph.")
	node.AddSuper(named)
	node.AddRef("inPartition", partition).
		SetDoc("The swimlane holding this node, if any.")
	activity.AddRefs("nodes", node).SetComposite().
		SetDoc("Nodes of this activity.")

	action := u.AddClass(MetaAction).
		SetDoc("An executable step; WebRE activities (Browse, Search, UserTransaction) specialize Action.")
	action.AddSuper(node)

	for _, spec := range []struct{ name, doc string }{
		{MetaInitialNode, "The activity's starting point."},
		{MetaActivityFinalNode, "Terminates the activity."},
		{MetaDecisionNode, "Routes the flow along one of several guarded edges."},
		{MetaMergeNode, "Brings alternative flows back together."},
		{MetaForkNode, "Splits the flow into concurrent branches."},
		{MetaJoinNode, "Synchronizes concurrent branches."},
	} {
		c := u.AddClass(spec.name).SetDoc(spec.doc)
		c.AddSuper(node)
	}

	objNode := u.AddClass(MetaObjectNode).
		SetDoc("A node holding an object flowing through the activity; typed by a Classifier.")
	objNode.AddSuper(node)
	objNode.AddRef("type", classifier).
		SetDoc("The classifier of the objects held by this node.")

	flow := u.AddClass(MetaControlFlow).
		SetDoc("A directed edge between two activity nodes.")
	flow.AddSuper(element)
	flow.AddProperty("source", node, 1, 1).SetDoc("The edge's source node.")
	flow.AddProperty("target", node, 1, 1).SetDoc("The edge's target node.")
	flow.AddAttr("guard", str).SetDoc("Optional guard condition shown in brackets.")
	activity.AddRefs("edges", flow).SetComposite().
		SetDoc("Control flows of this activity.")

	req := u.AddClass(MetaRequirement).
		SetDoc("A SysML-style requirement with an id and prose text; base class of DQ_Req_Specification.")
	req.AddSuper(named)
	req.AddAttr("id", intT).SetDoc("Numeric requirement identifier.")
	req.AddAttr("text", str).SetDoc("The requirement statement.")
	req.AddRefs("derivedFrom", req).
		SetDoc("Requirements this one was derived from.")
	req.AddRefs("tracedTo", named).
		SetDoc("Model elements satisfying or realizing this requirement.")

	return u
}

// MustClass resolves a metaclass of the UML subset by name, panicking if it
// does not exist — callers pass the Meta* constants, so a miss is a bug.
func MustClass(name string) *metamodel.Class {
	c, ok := Metamodel().FindClass(name)
	if !ok {
		panic(fmt.Errorf("uml: unknown metaclass %q", name))
	}
	return c
}

// StringType returns the UML String data type, for profile tag definitions.
func StringType() *metamodel.DataType {
	d, ok := Metamodel().DataType("String")
	if !ok {
		panic("uml: String data type missing")
	}
	return d
}

// IntegerType returns the UML Integer data type.
func IntegerType() *metamodel.DataType {
	d, ok := Metamodel().DataType("Integer")
	if !ok {
		panic("uml: Integer data type missing")
	}
	return d
}

// BooleanType returns the UML Boolean data type.
func BooleanType() *metamodel.DataType {
	d, ok := Metamodel().DataType("Boolean")
	if !ok {
		panic("uml: Boolean data type missing")
	}
	return d
}
