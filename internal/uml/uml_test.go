package uml

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

func TestMetamodelBuildsAndRegisters(t *testing.T) {
	mm := Metamodel()
	if mm.Name() != "UML" {
		t.Fatalf("metamodel name = %q", mm.Name())
	}
	if again := Metamodel(); again != mm {
		t.Fatal("Metamodel should memoize")
	}
	reg, ok := metamodel.Lookup("UML")
	if !ok || reg != mm {
		t.Fatal("UML not registered")
	}
}

func TestMetaclassHierarchy(t *testing.T) {
	useCase := MustClass(MetaUseCase)
	classifier := MustClass(MetaClassifier)
	named := MustClass(MetaNamedElement)
	element := MustClass(MetaElement)
	if !useCase.ConformsTo(classifier) || !useCase.ConformsTo(named) || !useCase.ConformsTo(element) {
		t.Fatal("UseCase should conform to Classifier, NamedElement, Element")
	}
	action := MustClass(MetaAction)
	node := MustClass(MetaActivityNode)
	if !action.ConformsTo(node) {
		t.Fatal("Action should conform to ActivityNode")
	}
	for _, name := range []string{
		MetaInitialNode, MetaActivityFinalNode, MetaDecisionNode,
		MetaMergeNode, MetaForkNode, MetaJoinNode, MetaObjectNode,
	} {
		if !MustClass(name).ConformsTo(node) {
			t.Errorf("%s should conform to ActivityNode", name)
		}
	}
}

func TestMustClassPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustClass("NoSuchMetaclass")
}

func TestPrimitiveAccessors(t *testing.T) {
	if StringType().Base() != metamodel.PrimString {
		t.Fatal("StringType wrong base")
	}
	if IntegerType().Base() != metamodel.PrimInteger {
		t.Fatal("IntegerType wrong base")
	}
	if BooleanType().Base() != metamodel.PrimBoolean {
		t.Fatal("BooleanType wrong base")
	}
}

func TestBuilderUseCaseDiagram(t *testing.T) {
	m := NewModel("ucd", Metamodel())
	b := NewBuilder(m)
	member := b.Actor("PC member")
	addReview := b.UseCase(MetaUseCase, "Add new review to submission")
	login := b.UseCase(MetaUseCase, "Log in")
	b.Associate(member, addReview)
	inc := b.Include(addReview, login)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if inc.GetRef("addition") != login {
		t.Fatal("include addition wrong")
	}
	incs := addReview.GetRefs("include")
	if len(incs) != 1 || incs[0] != inc {
		t.Fatal("include not owned by base use case")
	}
	if vs := metamodel.CheckConformance(m.Model); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestBuilderExtend(t *testing.T) {
	m := NewModel("ucd", Metamodel())
	b := NewBuilder(m)
	base := b.UseCase(MetaUseCase, "Browse submissions")
	ext := b.UseCase(MetaUseCase, "Filter by track")
	e := b.Extend(ext, base)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if e.GetRef("extendedCase") != base {
		t.Fatal("extendedCase wrong")
	}
}

func TestBuilderActivityGraph(t *testing.T) {
	m := NewModel("act", Metamodel())
	b := NewBuilder(m)
	act := b.Activity("Add new review")
	lane := b.Partition(act, "PC member")
	start := b.Node(act, MetaInitialNode, "", nil)
	fill := b.Node(act, MetaAction, "fill review form", lane)
	check := b.Node(act, MetaDecisionNode, "", nil)
	done := b.Node(act, MetaActivityFinalNode, "", nil)
	b.FlowChain(act, start, fill, check)
	b.Flow(act, check, fill, "incomplete")
	b.Flow(act, check, done, "complete")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if got := len(act.GetRefs("nodes")); got != 4 {
		t.Fatalf("nodes = %d, want 4", got)
	}
	if got := len(act.GetRefs("edges")); got != 4 {
		t.Fatalf("edges = %d, want 4", got)
	}
	if fill.GetRef("inPartition") != lane {
		t.Fatal("partition not set")
	}
	if vs := metamodel.CheckConformance(m.Model); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestBuilderClassWithFeatures(t *testing.T) {
	m := NewModel("cd", Metamodel())
	b := NewBuilder(m)
	c := b.Class(MetaClass, "ReviewMetadata")
	b.Attribute(c, "stored_by", "String")
	b.Attribute(c, "stored_date", "Date")
	b.Operation(c, "check_completeness", "(): Boolean")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	attrs := c.GetRefs("attributes")
	if len(attrs) != 2 || attrs[0].GetString("name") != "stored_by" {
		t.Fatalf("attrs = %v", attrs)
	}
	ops := c.GetRefs("operations")
	if len(ops) != 1 || ops[0].GetString("signature") != "(): Boolean" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestBuilderRequirementAndComment(t *testing.T) {
	m := NewModel("req", Metamodel())
	b := NewBuilder(m)
	r := b.Requirement(MetaRequirement, 7, "Completeness", "verify that all data have been completed by reviewer")
	uc := b.UseCase(MetaUseCase, "Add review")
	cm := b.Comment("first_name, last_name, email_address", uc)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if r.GetInt("id") != 7 || !strings.Contains(r.GetString("text"), "completed by reviewer") {
		t.Fatal("requirement slots wrong")
	}
	ann := cm.GetRefs("annotatedElement")
	if len(ann) != 1 || ann[0] != uc {
		t.Fatal("comment annotation wrong")
	}
}

func TestBuilderErrorSticksAndShortCircuits(t *testing.T) {
	m := NewModel("err", Metamodel())
	b := NewBuilder(m)
	b.UseCase("NoSuchClass", "x")
	if b.Err() == nil {
		t.Fatal("expected error")
	}
	before := b.Err()
	// Subsequent calls return nil and do not clobber the error.
	if b.Actor("a") != nil || b.Err() != before {
		t.Fatal("builder should short-circuit after error")
	}
}

func TestBuilderIncludeNilError(t *testing.T) {
	m := NewModel("err", Metamodel())
	b := NewBuilder(m)
	if b.Include(nil, nil); b.Err() == nil {
		t.Fatal("Include(nil,nil) should error")
	}
	b2 := NewBuilder(NewModel("err2", Metamodel()))
	if b2.Flow(b2.Activity("a"), nil, nil, ""); b2.Err() == nil {
		t.Fatal("Flow with nil nodes should error")
	}
}
