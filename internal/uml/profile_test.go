package uml

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// testProfile builds a tiny profile shaped like the paper's: one use-case
// stereotype with a constraint, one class stereotype with set-valued and
// bounded integer tags.
func testProfile(t testing.TB) *Profile {
	t.Helper()
	p := NewProfile("MiniDQ").SetDoc("test profile")
	ic := p.AddStereotype("InformationCase", MustClass(MetaUseCase))
	ic.SetDoc("manages data of a WebProcess")
	ic.AddConstraint("relatedToWebProcess",
		"self.include->size() >= 0", "placeholder constraint")

	meta := p.AddStereotype("DQ_Metadata", MustClass(MetaClass))
	meta.AddTag("DQ_metadata", StringType(), true).SetDoc("set of metadata names")
	meta.AddTag("upper_bound", IntegerType(), false)
	return p
}

func TestProfileDefinition(t *testing.T) {
	p := testProfile(t)
	if p.Name() != "MiniDQ" || p.Doc() != "test profile" {
		t.Fatal("profile identity wrong")
	}
	if len(p.Stereotypes()) != 2 {
		t.Fatalf("stereotypes = %d", len(p.Stereotypes()))
	}
	s, ok := p.Stereotype("InformationCase")
	if !ok || s.Name() != "InformationCase" {
		t.Fatal("stereotype lookup failed")
	}
	if s.Profile() != p {
		t.Fatal("owner not set")
	}
	if got := s.BaseNames(); len(got) != 1 || got[0] != "UseCase" {
		t.Fatalf("BaseNames = %v", got)
	}
	if len(s.Constraints()) != 1 || s.Constraints()[0].Name != "relatedToWebProcess" {
		t.Fatal("constraints lost")
	}
	if _, ok := p.Stereotype("Nope"); ok {
		t.Fatal("phantom stereotype")
	}
}

func TestMustStereotypePanics(t *testing.T) {
	p := testProfile(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.MustStereotype("Nope")
}

func TestDuplicateStereotypePanics(t *testing.T) {
	p := testProfile(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.AddStereotype("InformationCase", MustClass(MetaUseCase))
}

func TestStereotypeAppliesTo(t *testing.T) {
	p := testProfile(t)
	ic := p.MustStereotype("InformationCase")
	if !ic.AppliesTo(MustClass(MetaUseCase)) {
		t.Fatal("should apply to UseCase")
	}
	if ic.AppliesTo(MustClass(MetaClass)) {
		t.Fatal("should not apply to Class")
	}
}

func TestTagTypeString(t *testing.T) {
	p := testProfile(t)
	meta := p.MustStereotype("DQ_Metadata")
	tag, ok := meta.Tag("DQ_metadata")
	if !ok || tag.TypeString() != "set(String)" {
		t.Fatalf("TypeString = %q", tag.TypeString())
	}
	ub, _ := meta.Tag("upper_bound")
	if ub.TypeString() != "Integer" {
		t.Fatalf("TypeString = %q", ub.TypeString())
	}
}

func TestApplyAndTagValues(t *testing.T) {
	p := testProfile(t)
	m := NewModel("m", Metamodel())
	m.ApplyProfile(p)
	m.ApplyProfile(p) // idempotent
	if len(m.Profiles()) != 1 {
		t.Fatal("duplicate profile application")
	}

	b := NewBuilder(m)
	uc := b.UseCase(MetaUseCase, "Add all data as result of review")
	cls := b.Class(MetaClass, "ReviewMetadata")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}

	app, err := m.Apply(uc, p.MustStereotype("InformationCase"))
	if err != nil {
		t.Fatal(err)
	}
	if app.Element != uc {
		t.Fatal("application element wrong")
	}
	// Applying again returns the same application.
	app2 := m.MustApply(uc, p.MustStereotype("InformationCase"))
	if app2 != app {
		t.Fatal("re-application should be idempotent")
	}

	mapp := m.MustApply(cls, p.MustStereotype("DQ_Metadata"))
	if err := mapp.SetTag("DQ_metadata", metamodel.NewList(
		metamodel.String("stored_by"), metamodel.String("stored_date"))); err != nil {
		t.Fatal(err)
	}
	if err := mapp.SetTag("upper_bound", metamodel.Int(5)); err != nil {
		t.Fatal(err)
	}
	v, ok := mapp.Tag("DQ_metadata")
	if !ok || len(v.(*metamodel.List).Items) != 2 {
		t.Fatal("set-valued tag round trip failed")
	}
	names := mapp.TagNames()
	if len(names) != 2 || names[0] != "DQ_metadata" || names[1] != "upper_bound" {
		t.Fatalf("TagNames = %v", names)
	}
}

func TestTagValueTypeChecking(t *testing.T) {
	p := testProfile(t)
	m := NewModel("m", Metamodel())
	m.ApplyProfile(p)
	b := NewBuilder(m)
	cls := b.Class(MetaClass, "C")
	app := m.MustApply(cls, p.MustStereotype("DQ_Metadata"))

	if err := app.SetTag("upper_bound", metamodel.String("five")); err == nil {
		t.Fatal("string into Integer tag should fail")
	}
	if err := app.SetTag("DQ_metadata", metamodel.String("solo")); err == nil {
		t.Fatal("scalar into set-valued tag should fail")
	}
	if err := app.SetTag("DQ_metadata", metamodel.NewList(metamodel.Int(1))); err == nil {
		t.Fatal("Int element into set(String) should fail")
	}
	if err := app.SetTag("no_such_tag", metamodel.Int(1)); err == nil {
		t.Fatal("unknown tag should fail")
	}
	// Clearing a tag.
	app.MustSetTag("upper_bound", metamodel.Int(1))
	if err := app.SetTag("upper_bound", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := app.Tag("upper_bound"); ok {
		t.Fatal("tag should be cleared")
	}
}

func TestApplyBaseClassEnforced(t *testing.T) {
	p := testProfile(t)
	m := NewModel("m", Metamodel())
	m.ApplyProfile(p)
	b := NewBuilder(m)
	cls := b.Class(MetaClass, "C")
	_, err := m.Apply(cls, p.MustStereotype("InformationCase"))
	if err == nil || !strings.Contains(err.Error(), "cannot apply") {
		t.Fatalf("err = %v", err)
	}
}

func TestApplyRequiresProfileOnModel(t *testing.T) {
	p := testProfile(t)
	m := NewModel("m", Metamodel()) // profile NOT applied
	b := NewBuilder(m)
	uc := b.UseCase(MetaUseCase, "x")
	if _, err := m.Apply(uc, p.MustStereotype("InformationCase")); err == nil {
		t.Fatal("apply without profile should fail")
	}
	if _, err := m.Apply(nil, nil); err == nil {
		t.Fatal("nil apply should fail")
	}
}

func TestUnapplyAndQueries(t *testing.T) {
	p := testProfile(t)
	m := NewModel("m", Metamodel())
	m.ApplyProfile(p)
	b := NewBuilder(m)
	uc1 := b.UseCase(MetaUseCase, "one")
	uc2 := b.UseCase(MetaUseCase, "two")
	s := p.MustStereotype("InformationCase")
	m.MustApply(uc1, s)
	m.MustApply(uc2, s)

	if got := m.StereotypedBy("InformationCase"); len(got) != 2 {
		t.Fatalf("StereotypedBy = %d", len(got))
	}
	if !m.HasStereotype(uc1, "InformationCase") {
		t.Fatal("HasStereotype false negative")
	}
	if names := m.StereotypeNames(uc1); len(names) != 1 || names[0] != "InformationCase" {
		t.Fatalf("StereotypeNames = %v", names)
	}
	if _, ok := m.Application(uc1, "InformationCase"); !ok {
		t.Fatal("Application lookup failed")
	}
	m.Unapply(uc1, s)
	if m.HasStereotype(uc1, "InformationCase") {
		t.Fatal("Unapply did not remove")
	}
	if got := m.StereotypedBy("InformationCase"); len(got) != 1 || got[0] != uc2 {
		t.Fatalf("after unapply StereotypedBy = %v", got)
	}
	m.Unapply(uc1, s) // no-op
}

func TestApplyByName(t *testing.T) {
	p := testProfile(t)
	m := NewModel("m", Metamodel())
	m.ApplyProfile(p)
	b := NewBuilder(m)
	uc := b.UseCase(MetaUseCase, "x")
	if _, err := m.ApplyByName(uc, "InformationCase"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ApplyByName(uc, "Unknown"); err == nil {
		t.Fatal("unknown stereotype should fail")
	}
	// Builder.Apply path.
	b.Apply(uc, "InformationCase")
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	b.Apply(uc, "Unknown")
	if b.Err() == nil {
		t.Fatal("builder Apply with unknown stereotype should stick error")
	}
}

func TestBuilderGenericCreateAndFail(t *testing.T) {
	m := NewModel("g", Metamodel())
	b := NewBuilder(m)
	if b.Model() != m {
		t.Fatal("Model accessor wrong")
	}
	o := b.Create(MetaActor, "generic")
	if o == nil || o.GetString("name") != "generic" {
		t.Fatal("Create failed")
	}
	b.Fail(nil) // nil is ignored
	if b.Err() != nil {
		t.Fatal("Fail(nil) should not set error")
	}
	wantErr := errSentinel{}
	b.Fail(wantErr)
	if b.Err() != wantErr {
		t.Fatal("Fail lost error")
	}
	b.Fail(errSentinel2{}) // first error wins
	if b.Err() != wantErr {
		t.Fatal("Fail overwrote first error")
	}
	if b.Create(MetaActor, "after") != nil {
		t.Fatal("Create after Fail should short-circuit")
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

type errSentinel2 struct{}

func (errSentinel2) Error() string { return "sentinel2" }

func TestApplicationsAccessor(t *testing.T) {
	p := testProfile(t)
	m := NewModel("apps", Metamodel())
	m.ApplyProfile(p)
	b := NewBuilder(m)
	uc := b.UseCase(MetaUseCase, "x")
	app := m.MustApply(uc, p.MustStereotype("InformationCase"))
	apps := m.Applications(uc)
	if len(apps) != 1 || apps[0] != app {
		t.Fatalf("Applications = %v", apps)
	}
	if got := m.Applications(b.UseCase(MetaUseCase, "other")); len(got) != 0 {
		t.Fatal("phantom applications")
	}
}

func TestProfileAndStereotypeAccessors(t *testing.T) {
	p := testProfile(t)
	ic := p.MustStereotype("InformationCase")
	if ic.Doc() == "" {
		t.Fatal("Doc empty")
	}
	bases := ic.Bases()
	if len(bases) != 1 || bases[0] != MustClass(MetaUseCase) {
		t.Fatalf("Bases = %v", bases)
	}
	meta := p.MustStereotype("DQ_Metadata")
	if tags := meta.Tags(); len(tags) != 2 {
		t.Fatalf("Tags = %v", tags)
	}
	if _, ok := meta.Tag("ghost"); ok {
		t.Fatal("phantom tag")
	}
}

func TestStereotypeDefinitionPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewProfile("p").AddStereotype("", MustClass(MetaUseCase)) },
		func() { NewProfile("p").AddStereotype("NoBase") },
		func() {
			prof := NewProfile("p")
			s := prof.AddStereotype("S", MustClass(MetaUseCase))
			s.AddTag("t", StringType(), false)
			s.AddTag("t", StringType(), false)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
