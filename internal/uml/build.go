package uml

import (
	"fmt"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// Builder offers convenience constructors for the recurring shapes of the
// paper's diagrams: actors, use cases with include edges, activity graphs
// with control flows, and classes with attributes and operations. It wraps a
// Model and reports the first error encountered, so fixture code can chain
// calls and check once.
type Builder struct {
	m   *Model
	err error
}

// NewBuilder creates a builder over the given model.
func NewBuilder(m *Model) *Builder { return &Builder{m: m} }

// Err returns the first error encountered by the builder, if any.
func (b *Builder) Err() error { return b.err }

// Model returns the underlying model.
func (b *Builder) Model() *Model { return b.m }

func (b *Builder) create(class, name string) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	o, err := b.m.Create(class)
	if err != nil {
		b.err = err
		return nil
	}
	if name != "" {
		if err := o.SetString("name", name); err != nil {
			b.err = err
			return nil
		}
	}
	return o
}

// Fail records an error, short-circuiting all subsequent builder calls.
// The first recorded error wins.
func (b *Builder) Fail(err error) {
	if b.err == nil && err != nil {
		b.err = err
	}
}

// Create instantiates any metaclass with an optional name; it is the
// generic escape hatch the typed helpers below are built on.
func (b *Builder) Create(metaclass, name string) *metamodel.Object {
	return b.create(metaclass, name)
}

// Actor creates a named actor.
func (b *Builder) Actor(name string) *metamodel.Object { return b.create(MetaActor, name) }

// UseCase creates a named use case of the given metaclass (MetaUseCase or a
// subclass such as WebRE's "WebProcess").
func (b *Builder) UseCase(metaclass, name string) *metamodel.Object {
	return b.create(metaclass, name)
}

// Include records that base includes addition, creating the Include element.
func (b *Builder) Include(base, addition *metamodel.Object) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	if base == nil || addition == nil {
		b.err = fmt.Errorf("uml: Include with nil use case")
		return nil
	}
	inc := b.create(MetaInclude, "")
	if inc == nil {
		return nil
	}
	if err := inc.Set("addition", metamodel.Ref{Target: addition}); err != nil {
		b.err = err
		return nil
	}
	if err := base.Append("include", metamodel.Ref{Target: inc}); err != nil {
		b.err = err
		return nil
	}
	return inc
}

// Extend records that extension extends extended, creating the Extend element.
func (b *Builder) Extend(extension, extended *metamodel.Object) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	if extension == nil || extended == nil {
		b.err = fmt.Errorf("uml: Extend with nil use case")
		return nil
	}
	ext := b.create(MetaExtend, "")
	if ext == nil {
		return nil
	}
	if err := ext.Set("extendedCase", metamodel.Ref{Target: extended}); err != nil {
		b.err = err
		return nil
	}
	if err := extension.Append("extend", metamodel.Ref{Target: ext}); err != nil {
		b.err = err
		return nil
	}
	return ext
}

// Associate connects an actor (or any classifier) to a use case with a
// binary association.
func (b *Builder) Associate(a, c *metamodel.Object) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	assoc := b.create(MetaAssociation, "")
	if assoc == nil {
		return nil
	}
	if err := assoc.Set("memberEnd", metamodel.NewList(
		metamodel.Ref{Target: a}, metamodel.Ref{Target: c})); err != nil {
		b.err = err
		return nil
	}
	return assoc
}

// Comment attaches a note with the given body to the given elements.
func (b *Builder) Comment(body string, annotated ...*metamodel.Object) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	c := b.create(MetaComment, "")
	if c == nil {
		return nil
	}
	if err := c.SetString("body", body); err != nil {
		b.err = err
		return nil
	}
	for _, a := range annotated {
		if err := c.Append("annotatedElement", metamodel.Ref{Target: a}); err != nil {
			b.err = err
			return nil
		}
	}
	return c
}

// Class creates a named class of the given metaclass (MetaClass or a
// subclass such as WebRE's "Content").
func (b *Builder) Class(metaclass, name string) *metamodel.Object {
	return b.create(metaclass, name)
}

// Attribute adds a typed attribute to a class.
func (b *Builder) Attribute(class *metamodel.Object, name, typ string) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	a := b.create(MetaAttribute, name)
	if a == nil {
		return nil
	}
	if err := a.SetString("type", typ); err != nil {
		b.err = err
		return nil
	}
	if err := class.Append("attributes", metamodel.Ref{Target: a}); err != nil {
		b.err = err
		return nil
	}
	return a
}

// Operation adds an operation with a rendered signature to a class.
func (b *Builder) Operation(class *metamodel.Object, name, signature string) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	op := b.create(MetaOperation, name)
	if op == nil {
		return nil
	}
	if err := op.SetString("signature", signature); err != nil {
		b.err = err
		return nil
	}
	if err := class.Append("operations", metamodel.Ref{Target: op}); err != nil {
		b.err = err
		return nil
	}
	return op
}

// Activity creates a named activity.
func (b *Builder) Activity(name string) *metamodel.Object { return b.create(MetaActivity, name) }

// Partition adds a swimlane to an activity.
func (b *Builder) Partition(activity *metamodel.Object, name string) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	p := b.create(MetaActivityPartition, name)
	if p == nil {
		return nil
	}
	if err := activity.Append("partitions", metamodel.Ref{Target: p}); err != nil {
		b.err = err
		return nil
	}
	return p
}

// Node adds an activity node of the given metaclass (MetaAction, WebRE's
// "UserTransaction", MetaInitialNode, ...) to an activity, optionally inside
// a partition (pass nil for none).
func (b *Builder) Node(activity *metamodel.Object, metaclass, name string, partition *metamodel.Object) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	n := b.create(metaclass, name)
	if n == nil {
		return nil
	}
	if partition != nil {
		if err := n.Set("inPartition", metamodel.Ref{Target: partition}); err != nil {
			b.err = err
			return nil
		}
	}
	if err := activity.Append("nodes", metamodel.Ref{Target: n}); err != nil {
		b.err = err
		return nil
	}
	return n
}

// Flow adds a control flow between two nodes of an activity, with an
// optional guard ("" for none).
func (b *Builder) Flow(activity, source, target *metamodel.Object, guard string) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	if source == nil || target == nil {
		b.err = fmt.Errorf("uml: Flow with nil node")
		return nil
	}
	f := b.create(MetaControlFlow, "")
	if f == nil {
		return nil
	}
	if err := f.Set("source", metamodel.Ref{Target: source}); err != nil {
		b.err = err
		return nil
	}
	if err := f.Set("target", metamodel.Ref{Target: target}); err != nil {
		b.err = err
		return nil
	}
	if guard != "" {
		if err := f.SetString("guard", guard); err != nil {
			b.err = err
			return nil
		}
	}
	if err := activity.Append("edges", metamodel.Ref{Target: f}); err != nil {
		b.err = err
		return nil
	}
	return f
}

// FlowChain threads a linear control flow through the given nodes.
func (b *Builder) FlowChain(activity *metamodel.Object, nodes ...*metamodel.Object) {
	for i := 0; i+1 < len(nodes); i++ {
		b.Flow(activity, nodes[i], nodes[i+1], "")
	}
}

// Requirement creates a requirement with id and text.
func (b *Builder) Requirement(metaclass string, id int64, name, text string) *metamodel.Object {
	if b.err != nil {
		return nil
	}
	r := b.create(metaclass, name)
	if r == nil {
		return nil
	}
	if err := r.SetInt("id", id); err != nil {
		b.err = err
		return nil
	}
	if err := r.SetString("text", text); err != nil {
		b.err = err
		return nil
	}
	return r
}

// Apply applies a stereotype by name to an element.
func (b *Builder) Apply(o *metamodel.Object, stereotype string) *Application {
	if b.err != nil {
		return nil
	}
	a, err := b.m.ApplyByName(o, stereotype)
	if err != nil {
		b.err = err
		return nil
	}
	return a
}
