package easychair

import (
	"net/http"
	"net/url"
	"strings"
	"testing"
)

// TestLoginRejectsBadLevel: non-numeric and negative clearance levels must
// be rejected at the door, not silently coerced to 0.
func TestLoginRejectsBadLevel(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	for _, level := range []string{"abc", "2x", "-1", "1.5"} {
		status, body := c.post("/login", url.Values{
			"user": {"mallory"}, "role": {"pc"}, "level": {level},
		})
		if status != http.StatusBadRequest {
			t.Errorf("level %q: got %d %q, want 400", level, status, body)
		}
	}
	// A session that never passed validation must stay unauthenticated.
	if status, body := c.get("/"); status != http.StatusOK || !strings.Contains(body, "user= level=0") {
		t.Errorf("failed login left identity behind: %d %q", status, body)
	}
}

func TestLoginRejectsUnknownRole(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	status, body := c.post("/login", url.Values{
		"user": {"mallory"}, "role": {"superadmin"}, "level": {"2"},
	})
	if status != http.StatusBadRequest || !strings.Contains(body, "unknown role") {
		t.Errorf("got %d %q, want 400 unknown role", status, body)
	}
	// The known roles still work, including an empty role.
	for _, role := range []string{"author", "reviewer", "pc", "chair", ""} {
		status, body := c.post("/login", url.Values{
			"user": {"u"}, "role": {role}, "level": {"1"},
		})
		if status != http.StatusOK {
			t.Errorf("role %q: got %d %q, want 200", role, status, body)
		}
	}
}

func TestLoginDefaultsEmptyLevelToZero(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	if status, _ := c.post("/login", url.Values{"user": {"ada"}, "role": {"author"}}); status != http.StatusOK {
		t.Fatalf("login without level: %d", status)
	}
	if _, body := c.get("/"); !strings.Contains(body, "user=ada level=0") {
		t.Errorf("home = %q, want level=0", body)
	}
}

// TestTamperedSessionLevelUnauthenticates plants a corrupted level value
// directly in the session store — as an attacker with a session-fixation or
// a future storage bug might — and checks the identity is rejected rather
// than downgraded to a still-privileged level 0.
func TestTamperedSessionLevelUnauthenticates(t *testing.T) {
	app, srv := startApp(t)

	author := newClient(t, srv.URL)
	author.login("ada", "author", "0")
	author.post("/papers", url.Values{"title": {"T"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")
	if status, body := reviewer.post("/papers/1/reviews", goodReview()); status != http.StatusCreated {
		t.Fatalf("review: %d %q", status, body)
	}

	// Corrupt grace's stored clearance.
	tampered := false
	for _, u := range []*url.URL{mustParse(t, srv.URL)} {
		for _, ck := range reviewer.http.Jar.Cookies(u) {
			if s, ok := app.Router.Sessions().Lookup(ck.Value); ok {
				s.Set("level", "99zz")
				tampered = true
			}
		}
	}
	if !tampered {
		t.Fatal("could not locate reviewer session to tamper with")
	}

	// The tampered identity must be treated as not logged in (401), not as
	// a level-0 user (403) — and certainly not as level 2.
	if status, body := reviewer.get("/reviews/1"); status != http.StatusUnauthorized {
		t.Errorf("tampered session read review: %d %q, want 401", status, body)
	}
}

func mustParse(t *testing.T, raw string) *url.URL {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}
