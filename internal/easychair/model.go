// Package easychair reproduces the paper's case study (Section 4): the
// EasyChair conference system's "Add new review to submission" web process,
// modeled with DQ_WebRE. BuildModel constructs the use-case diagram of
// Fig. 6 and the activity diagram of Fig. 7; the runtime half of the package
// (app.go) implements the corresponding conference-management domain so the
// captured DQ software requirements can be executed against a live
// (simulated) web application.
package easychair

import (
	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// Elements bundles the named elements of the case-study model so tests and
// the diagram generators can address them directly.
type Elements struct {
	// Model is the underlying requirements model.
	Model *dqwebre.RequirementsModel

	// --- Fig. 6 (use-case view) ---

	// PCMember is the WebUser actor.
	PCMember *metamodel.Object
	// AddReview is the WebProcess "Add new review to submission".
	AddReview *metamodel.Object
	// ReviewerInfo and EvaluationScores are the Contents with the data items
	// the paper lists in its comment notes.
	ReviewerInfo     *metamodel.Object
	EvaluationScores *metamodel.Object
	// InfoCase is the «InformationCase» "Add all data as result of review".
	InfoCase *metamodel.Object
	// The four «DQ_Requirement» use cases of Section 4.
	ReqConfidentiality *metamodel.Object
	ReqCompleteness    *metamodel.Object
	ReqTraceability    *metamodel.Object
	ReqPrecision       *metamodel.Object

	// --- Fig. 7 (activity view) ---

	// Activity is the "Add new review to submission" activity.
	Activity *metamodel.Object
	// UserTransactions holds the five «UserTransaction» steps in Fig. 7
	// order.
	UserTransactions []*metamodel.Object
	// StoreTraceability and AddConfidentiality are the two
	// «Add_DQ_Metadata» activities.
	StoreTraceability  *metamodel.Object
	AddConfidentiality *metamodel.Object
	// VerifyPrecision and CheckCompleteness are the validation actions.
	VerifyPrecision   *metamodel.Object
	CheckCompleteness *metamodel.Object
	// TraceMetadata and ConfMetadata are the «DQ_Metadata» stores.
	TraceMetadata *metamodel.Object
	ConfMetadata  *metamodel.Object
	// Validator is the «DQ_Validator» carrying check_precision() and
	// check_completeness().
	Validator *metamodel.Object
	// ScoreConstraint is the «DQConstraint» bounding evaluation scores.
	ScoreConstraint *metamodel.Object
	// ReviewPage is the «WebUI» "webpage of New Review".
	ReviewPage *metamodel.Object
}

// The paper's data items (Section 4): fields of the two Contents.
var (
	// ReviewerInfoFields are the data of "information of reviewer".
	ReviewerInfoFields = []string{"first_name", "last_name", "email_address"}
	// EvaluationScoreFields are the data of "evaluation scores".
	EvaluationScoreFields = []string{"overall_evaluation", "reviewer_confidence"}
	// TraceabilityMetadata are the Traceability metadata of requirement 3.
	TraceabilityMetadata = []string{"stored_by", "stored_date", "last_modified_by", "last_modified_date"}
	// ConfidentialityMetadata are the Confidentiality metadata.
	ConfidentialityMetadata = []string{"security_level", "available_to"}
)

// BuildModel constructs the paper's Section 4 case study. The returned
// model validates cleanly against the DQ_WebRE metamodel rules and the
// Table 3 profile constraints.
func BuildModel() (*Elements, error) {
	rm := dqwebre.NewRequirementsModel("EasyChair")
	e := &Elements{Model: rm}

	// ---- Fig. 6: use-case diagram with DQ requirements ----

	e.PCMember = rm.WebUser("PC member")
	e.AddReview = rm.WebProcess("Add new review to submission", e.PCMember)
	e.ReviewerInfo = rm.Content("information of reviewer", ReviewerInfoFields...)
	e.EvaluationScores = rm.Content("evaluation scores", EvaluationScoreFields...)
	e.InfoCase = rm.InformationCase("Add all data as result of review",
		e.AddReview, e.ReviewerInfo, e.EvaluationScores)

	e.ReqConfidentiality = rm.DQRequirement(
		"check that data will be accessed only by authorized users",
		iso25012.Confidentiality, e.InfoCase)
	rm.Specify(e.ReqConfidentiality, 1,
		"Identify the piece of software responsible for capturing metadata ensuring the stored information is only accessed by users who meet the security level defined in the application.")

	e.ReqCompleteness = rm.DQRequirement(
		"verify that all data have been completed by reviewer",
		iso25012.Completeness, e.InfoCase)
	rm.Specify(e.ReqCompleteness, 2,
		"Ensure all the data entered by the reviewer are completed in every available field, via a check_completeness function implemented in a DQ_Validator class.")

	e.ReqTraceability = rm.DQRequirement(
		"check who is able to add or change a revision",
		iso25012.Traceability, e.InfoCase)
	rm.Specify(e.ReqTraceability, 3,
		"Add metadata keeping records about who stored the data (stored_by, last_modified_by) and when (stored_date, last_modified_date), stored in a DQ_Metadata class.")

	e.ReqPrecision = rm.DQRequirement(
		"validate the score assigned to each topic of revision",
		iso25012.Precision, e.InfoCase)
	rm.Specify(e.ReqPrecision, 4,
		"Validate that all fields related to Evaluation scores fulfill the precision requirement, via a check_precision function in a DQ_Validator class.")

	// ---- Structural elements shared by Fig. 7 ----

	e.ReviewPage = rm.WebUI("webpage of New Review")
	e.TraceMetadata = rm.DQMetadata("traceability metadata",
		TraceabilityMetadata, e.ReviewerInfo, e.EvaluationScores)
	e.ConfMetadata = rm.DQMetadata("confidentiality metadata",
		ConfidentialityMetadata, e.ReviewerInfo, e.EvaluationScores)
	e.Validator = rm.DQValidator("review DQ validator",
		[]string{"check_precision", "check_completeness"}, e.ReviewPage)
	e.ScoreConstraint = rm.DQConstraint("evaluation score range", -3, 3,
		[]string{"overall_evaluation in [-3,3]", "reviewer_confidence in [0,5]"},
		e.Validator)

	// ---- Fig. 7: activity diagram with DQ management ----

	e.Activity = rm.Activity("Add new review to submission")
	b := rm.Builder()
	lane := b.Partition(e.Activity, "PC member")
	sysLane := b.Partition(e.Activity, "EasyChair")

	start := b.Node(e.Activity, uml.MetaInitialNode, "", nil)

	txNames := []struct {
		name    string
		content *metamodel.Object
	}{
		{"add reviewer information", e.ReviewerInfo},
		{"add evaluation scores", e.EvaluationScores},
		{"add additional scores", e.EvaluationScores},
		{"add detailed information of review", e.ReviewerInfo},
		{"add comments for PC", e.ReviewerInfo},
	}
	var txs []*metamodel.Object
	for _, spec := range txNames {
		txs = append(txs, rm.UserTransaction(e.Activity, spec.name, lane, spec.content))
	}
	e.UserTransactions = txs

	e.StoreTraceability = rm.AddDQMetadataActivity(e.Activity,
		"store metadata of traceability", sysLane, e.TraceMetadata, nil, txs...)
	e.AddConfidentiality = rm.AddDQMetadataActivity(e.Activity,
		"add metadata about confidentiality", sysLane, e.ConfMetadata, nil, txs...)
	e.VerifyPrecision = rm.AddDQMetadataActivity(e.Activity,
		"Verify Precision of data", sysLane, nil, e.Validator)
	e.CheckCompleteness = rm.AddDQMetadataActivity(e.Activity,
		"Check Completeness of entered data", sysLane, nil, e.Validator)

	decision := b.Node(e.Activity, uml.MetaDecisionNode, "all checks pass?", nil)
	end := b.Node(e.Activity, uml.MetaActivityFinalNode, "", nil)

	// Control flow: start → the five transactions in sequence → the two
	// metadata captures → the two verifications → decision → end (or back
	// to the first transaction on failure).
	b.FlowChain(e.Activity, append([]*metamodel.Object{start}, txs...)...)
	b.FlowChain(e.Activity, txs[len(txs)-1],
		e.StoreTraceability, e.AddConfidentiality,
		e.VerifyPrecision, e.CheckCompleteness, decision)
	b.Flow(e.Activity, decision, end, "yes")
	b.Flow(e.Activity, decision, txs[0], "no: fix input")

	if err := rm.Err(); err != nil {
		return nil, err
	}
	return e, nil
}

// MustBuildModel is BuildModel that panics on error, for fixtures and
// benchmarks.
func MustBuildModel() *Elements {
	e, err := BuildModel()
	if err != nil {
		panic(err)
	}
	return e
}
