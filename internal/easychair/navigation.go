package easychair

import (
	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/webre"
)

// NavigationElements bundles the WebRE navigation view of EasyChair: how a
// PC member reaches the review form. The paper's case study concentrates
// on the WebProcess (Figs. 6-7); this model exercises the other half of
// WebRE — Navigation, Browse, Search, Node — against the same substrate,
// so the full Table 2 vocabulary is used somewhere real.
type NavigationElements struct {
	// Model is the underlying requirements model.
	Model *dqwebre.RequirementsModel
	// Navigation is the "Reach the review form" navigation use case.
	Navigation *metamodel.Object
	// Nodes of the navigation path, in order: login, submissions, review.
	Login, Submissions, ReviewForm *metamodel.Object
	// ToSubmissions and ToReview are the Browse steps.
	ToSubmissions, ToReview *metamodel.Object
	// FindSubmission is the Search refining the submissions browse.
	FindSubmission *metamodel.Object
	// Submissions content searched over.
	SubmissionsContent *metamodel.Object
}

// BuildNavigationModel constructs the navigation view: a WebUser navigates
// login → "my submissions" → the review form, with a parameterized Search
// (by title, by author) over the submissions content on the way.
func BuildNavigationModel() (*NavigationElements, error) {
	rm := dqwebre.NewRequirementsModel("EasyChair-navigation")
	n := &NavigationElements{Model: rm}
	b := rm.Builder()

	rm.WebUser("PC member")
	n.Login = rm.Node("login page")
	n.Submissions = rm.Node("assigned submissions")
	n.ReviewForm = rm.Node("new review form")
	n.SubmissionsContent = rm.Content("submissions", "title", "authors", "track")

	// The submissions node displays the submissions content; the review
	// form is presented by the WebUI of Figs. 6-7.
	if n.Submissions != nil {
		if err := n.Submissions.AppendRef("contents", n.SubmissionsContent); err != nil {
			b.Fail(err)
		}
	}
	ui := rm.WebUI("webpage of New Review")
	if n.ReviewForm != nil && ui != nil {
		if err := n.ReviewForm.Set("ui", metamodel.Ref{Target: ui}); err != nil {
			b.Fail(err)
		}
	}

	n.ToSubmissions = b.Create(webre.MetaBrowse, "browse to submissions")
	n.FindSubmission = b.Create(webre.MetaSearch, "search submissions")
	n.ToReview = b.Create(webre.MetaBrowse, "browse to review form")
	if err := b.Err(); err != nil {
		return nil, err
	}
	wire := func(browse, src, dst *metamodel.Object) {
		if err := browse.Set("source", metamodel.Ref{Target: src}); err != nil {
			b.Fail(err)
		}
		if err := browse.Set("target", metamodel.Ref{Target: dst}); err != nil {
			b.Fail(err)
		}
	}
	wire(n.ToSubmissions, n.Login, n.Submissions)
	wire(n.FindSubmission, n.Submissions, n.Submissions)
	wire(n.ToReview, n.Submissions, n.ReviewForm)
	// A Search browses "within" the submissions node but must still move
	// the user somewhere: its result list is the same node, which the
	// Browse well-formedness rule (source <> target) flags. Model it as
	// landing on the review form instead, as EasyChair's search does.
	wire(n.FindSubmission, n.Submissions, n.ReviewForm)
	for _, param := range []string{"title", "authors"} {
		if err := n.FindSubmission.Append("parameters", metamodel.String(param)); err != nil {
			b.Fail(err)
		}
	}
	if err := n.FindSubmission.Set("queriedContent", metamodel.Ref{Target: n.SubmissionsContent}); err != nil {
		b.Fail(err)
	}

	n.Navigation = b.Create(webre.MetaNavigation, "Reach the review form")
	if err := b.Err(); err != nil {
		return nil, err
	}
	for _, browse := range []*metamodel.Object{n.ToSubmissions, n.FindSubmission, n.ToReview} {
		if err := n.Navigation.AppendRef("browses", browse); err != nil {
			b.Fail(err)
		}
	}
	if err := n.Navigation.Set("targetNode", metamodel.Ref{Target: n.ReviewForm}); err != nil {
		b.Fail(err)
	}
	return n, b.Err()
}
