package easychair

import (
	"net/url"
	"strings"
	"testing"
)

// TestPrometheusEndpoint drives one full review submission and checks that
// /metrics renders valid Prometheus text exposition containing the request
// latency histogram, the status-aware request counter, the enforcer's
// per-characteristic DQ check counters and the exported DQ measure
// aggregates.
func TestPrometheusEndpoint(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	c.login("grace", "pc", "2")
	if status, body := c.post("/papers", url.Values{"title": {"T"}}); status != 201 {
		t.Fatalf("paper: %d %s", status, body)
	}
	if status, body := c.post("/papers/1/reviews", goodReview()); status != 201 {
		t.Fatalf("review: %d %s", status, body)
	}
	// One failing submission so both pass and fail counters exist.
	if status, _ := c.post("/papers/1/reviews", url.Values{"first_name": {"x"}}); status != 422 {
		t.Fatalf("incomplete review not rejected: %d", status)
	}

	status, body := c.get("/metrics")
	if status != 200 {
		t.Fatalf("/metrics: %d", status)
	}
	for _, want := range []string{
		"# TYPE http_request_duration_seconds histogram",
		`http_request_duration_seconds_bucket{route="/papers/:id/reviews",le="+Inf"}`,
		`http_requests_total{method="POST",route="/papers/:id/reviews",status="201"}`,
		`http_requests_total{method="POST",route="/papers/:id/reviews",status="422"}`,
		"# TYPE dq_checks_total counter",
		`dq_checks_total{characteristic="Completeness",check="check_completeness",result="pass"}`,
		`dq_checks_total{characteristic="Completeness",check="check_completeness",result="fail"}`,
		"# TYPE dq_measure_mean gauge",
		`characteristic="Precision"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	status, body := c.get("/healthz")
	if status != 200 {
		t.Fatalf("/healthz: %d", status)
	}
	if !strings.Contains(body, `"status":"ok"`) || !strings.Contains(body, `"requirements":4`) {
		t.Errorf("unexpected health body: %s", body)
	}
}

// TestDebugSpans checks the span trees of handled requests are served,
// including the enforcer child span nested under the request span.
func TestDebugSpans(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	c.login("grace", "pc", "2")
	c.post("/papers", url.Values{"title": {"T"}})
	c.post("/papers/1/reviews", goodReview())

	status, body := c.get("/debug/spans")
	if status != 200 {
		t.Fatalf("/debug/spans: %d", status)
	}
	if !strings.Contains(body, "POST /papers/:id/reviews") {
		t.Errorf("spans missing request span:\n%s", body)
	}
	if !strings.Contains(body, "enforcer.check_input") {
		t.Errorf("spans missing nested enforcer span:\n%s", body)
	}
}
