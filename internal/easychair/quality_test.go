package easychair

import (
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// submitReviews drives the full review flow once with a good review (as
// pc) and once with an invalid one, so the quality series have both
// outcomes to aggregate.
func submitReviews(t *testing.T, srvURL string) {
	t.Helper()
	author := newClient(t, srvURL)
	author.login("ada", "author", "0")
	if status, body := author.post("/papers", url.Values{"title": {"Paper"}, "authors": {"A"}}); status != http.StatusCreated {
		t.Fatalf("submit: %d %s", status, body)
	}
	chair := newClient(t, srvURL)
	chair.login("chair", "chair", "3")
	if status, body := chair.post("/papers/1/assign", url.Values{"reviewer": {"grace"}}); status != http.StatusCreated {
		t.Fatalf("assign: %d %s", status, body)
	}
	reviewer := newClient(t, srvURL)
	reviewer.login("grace", "pc", "2")
	if status, body := reviewer.post("/papers/1/reviews", goodReview()); status != http.StatusCreated {
		t.Fatalf("review: %d %s", status, body)
	}
	bad := goodReview()
	bad.Set("overall_evaluation", "9")
	if status, _ := reviewer.post("/papers/1/reviews", bad); status != http.StatusUnprocessableEntity {
		t.Fatalf("bad review status = %d, want 422", status)
	}
}

func TestDebugQualityEndpoint(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)

	// Before any validation the endpoint serves an empty, valid report.
	status, body := c.get("/debug/quality")
	if status != http.StatusOK {
		t.Fatalf("/debug/quality: %d %s", status, body)
	}
	var rep obs.SeriesReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, body)
	}
	if rep.Name != "dq_score" || len(rep.Series) != 0 {
		t.Fatalf("empty report = %+v, want dq_score with no series", rep)
	}

	submitReviews(t, srv.URL)

	_, body = c.get("/debug/quality")
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("invalid JSON after reviews: %v\n%s", err, body)
	}
	byChar := map[string]obs.SeriesSnapshot{}
	for _, s := range rep.Series {
		if s.Labels["context"] != "pc" {
			t.Errorf("context = %q, want pc (the submitting role)", s.Labels["context"])
		}
		byChar[s.Labels["characteristic"]] = s
	}
	prec, ok := byChar[string(iso25012.Precision)]
	if !ok || prec.Current == nil {
		t.Fatalf("no Precision series: %s", body)
	}
	// Two reviews × two precision checks; the bad one fails once.
	if prec.Current.Count != 4 || prec.Current.Failures != 1 {
		t.Errorf("Precision window = %+v, want 4 checks 1 failure", prec.Current)
	}
	if prec.EWMA == nil {
		t.Error("EWMA trend missing from a populated series")
	}
	if prec.IntervalSeconds != 60 {
		t.Errorf("interval = %g, want 60", prec.IntervalSeconds)
	}
}

func TestMetricsExposeQualitySeries(t *testing.T) {
	_, srv := startApp(t)
	submitReviews(t, srv.URL)

	c := newClient(t, srv.URL)
	status, body := c.get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	for _, want := range []string{
		`# TYPE dq_score gauge`,
		`dq_score{characteristic="Precision",context="pc",window="current"}`,
		`dq_score{characteristic="Completeness",context="pc",window="current"} 1`,
		`dq_check_failures{characteristic="Precision",context="pc",window="current"} 1`,
		`dq_score_trend{characteristic="Precision",context="pc",stat="ewma"}`,
		`dq_check_seconds_bucket{check="check_precision",le="+Inf"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// A window nobody populated renders NaN, not a stale number.
	if !strings.Contains(body, `window="previous"} NaN`) {
		t.Error(`/metrics should render empty previous windows as NaN`)
	}
}
