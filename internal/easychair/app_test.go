package easychair

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

// client is a test HTTP client with its own cookie jar (session identity).
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func newClient(t *testing.T, base string) *client {
	return &client{t: t, base: base, http: &http.Client{Jar: &jar{cookies: map[string][]*http.Cookie{}}}}
}

type jar struct {
	mu      sync.Mutex
	cookies map[string][]*http.Cookie
}

func (j *jar) SetCookies(u *url.URL, cs []*http.Cookie) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cookies[u.Host] = append(j.cookies[u.Host], cs...)
}

func (j *jar) Cookies(u *url.URL) []*http.Cookie {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cookies[u.Host]
}

func (c *client) post(path string, form url.Values) (int, string) {
	c.t.Helper()
	resp, err := c.http.PostForm(c.base+path, form)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func (c *client) get(path string) (int, string) {
	c.t.Helper()
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func (c *client) login(user, role, level string) {
	c.t.Helper()
	status, body := c.post("/login", url.Values{"user": {user}, "role": {role}, "level": {level}})
	if status != 200 {
		c.t.Fatalf("login failed: %d %s", status, body)
	}
}

func goodReview() url.Values {
	return url.Values{
		"first_name":          {"Grace"},
		"last_name":           {"Hopper"},
		"email_address":       {"grace@navy.mil"},
		"overall_evaluation":  {"2"},
		"reviewer_confidence": {"4"},
	}
}

func startApp(t *testing.T) (*App, *httptest.Server) {
	t.Helper()
	app, err := NewApp()
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(app.Router)
	t.Cleanup(srv.Close)
	return app, srv
}

func TestFullReviewFlow(t *testing.T) {
	_, srv := startApp(t)
	author := newClient(t, srv.URL)
	author.login("ada", "author", "0")
	status, body := author.post("/papers", url.Values{"title": {"On Computable Numbers"}, "authors": {"A. Turing"}})
	if status != http.StatusCreated {
		t.Fatalf("submit: %d %s", status, body)
	}

	chair := newClient(t, srv.URL)
	chair.login("chair", "chair", "3")
	status, body = chair.post("/papers/1/assign", url.Values{"reviewer": {"grace"}})
	if status != http.StatusCreated {
		t.Fatalf("assign: %d %s", status, body)
	}

	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")
	status, body = reviewer.post("/papers/1/reviews", goodReview())
	if status != http.StatusCreated {
		t.Fatalf("review: %d %s", status, body)
	}

	// The reviewer reads their review, with traceability metadata rendered.
	status, body = reviewer.get("/reviews/1")
	if status != 200 {
		t.Fatalf("read: %d %s", status, body)
	}
	for _, want := range []string{"first_name: Grace", "stored_by: grace", "last_modified_by: grace"} {
		if !strings.Contains(body, want) {
			t.Errorf("review body lacks %q:\n%s", want, body)
		}
	}
}

// TestCompletenessEnforced: the paper's requirement 2 — a review with
// missing fields is rejected.
func TestCompletenessEnforced(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	c.login("ada", "author", "0")
	c.post("/papers", url.Values{"title": {"P"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")

	form := goodReview()
	form.Del("last_name")
	status, body := reviewer.post("/papers/1/reviews", form)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("incomplete review: %d %s", status, body)
	}
	if !strings.Contains(body, "check_completeness") || !strings.Contains(body, "missing last_name") {
		t.Fatalf("body = %s", body)
	}
}

// TestPrecisionEnforced: the paper's requirement 4 — scores outside the
// DQConstraint ranges are rejected.
func TestPrecisionEnforced(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	c.login("ada", "author", "0")
	c.post("/papers", url.Values{"title": {"P"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")

	form := goodReview()
	form.Set("overall_evaluation", "7") // outside [-3,3]
	status, body := reviewer.post("/papers/1/reviews", form)
	if status != http.StatusUnprocessableEntity || !strings.Contains(body, "check_precision") {
		t.Fatalf("imprecise review: %d %s", status, body)
	}
}

// TestConfidentialityEnforced: the paper's requirement 1 — only authorized
// users read reviews.
func TestConfidentialityEnforced(t *testing.T) {
	_, srv := startApp(t)
	author := newClient(t, srv.URL)
	author.login("ada", "author", "0")
	author.post("/papers", url.Values{"title": {"P"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")
	reviewer.post("/papers/1/reviews", goodReview())

	// The submitting author (level 0, not chair, not owner) is denied.
	status, body := author.get("/reviews/1")
	if status != http.StatusForbidden {
		t.Fatalf("author read: %d %s", status, body)
	}
	// The chair (in available_to) is allowed regardless of level.
	chair := newClient(t, srv.URL)
	chair.login("chair", "chair", "0")
	status, _ = chair.get("/reviews/1")
	if status != 200 {
		t.Fatalf("chair read: %d", status)
	}
	// A PC member with clearance 2 is allowed.
	pc := newClient(t, srv.URL)
	pc.login("peer", "pc", "2")
	status, _ = pc.get("/reviews/1")
	if status != 200 {
		t.Fatalf("pc read: %d", status)
	}
}

// TestTraceabilityEnforced: the paper's requirement 3 — the audit trail
// records who stored and modified the review and who accessed it.
func TestTraceabilityEnforced(t *testing.T) {
	_, srv := startApp(t)
	author := newClient(t, srv.URL)
	author.login("ada", "author", "0")
	author.post("/papers", url.Values{"title": {"P"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")
	reviewer.post("/papers/1/reviews", goodReview())

	// Edit the review.
	form := url.Values{"overall_evaluation": {"3"}}
	status, body := reviewer.post("/reviews/1", form)
	if status != 200 {
		t.Fatalf("edit: %d %s", status, body)
	}

	status, body = reviewer.get("/reviews/1/audit")
	if status != 200 {
		t.Fatalf("audit: %d %s", status, body)
	}
	for _, want := range []string{"store review/1 by grace", "modify review/1 by grace"} {
		if !strings.Contains(body, want) {
			t.Errorf("audit lacks %q:\n%s", want, body)
		}
	}
	// Denied accesses are audited too.
	author.get("/reviews/1")
	_, body = reviewer.get("/reviews/1/audit")
	if !strings.Contains(body, "denied review/1 by ada") {
		t.Errorf("audit lacks denial:\n%s", body)
	}
}

func TestEditRejectsBadData(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	c.login("ada", "author", "0")
	c.post("/papers", url.Values{"title": {"P"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")
	reviewer.post("/papers/1/reviews", goodReview())

	status, body := reviewer.post("/reviews/1", url.Values{"overall_evaluation": {"99"}})
	if status != http.StatusUnprocessableEntity || !strings.Contains(body, "check_precision") {
		t.Fatalf("bad edit: %d %s", status, body)
	}
	// The stored review is unchanged.
	_, body = reviewer.get("/reviews/1")
	if !strings.Contains(body, "overall_evaluation: 2") {
		t.Fatalf("review mutated by rejected edit:\n%s", body)
	}
}

func TestDQEndpoints(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	status, body := c.get("/dq/requirements")
	if status != 200 {
		t.Fatalf("requirements: %d", status)
	}
	for _, want := range []string{"Confidentiality", "Completeness", "Traceability", "Precision"} {
		if !strings.Contains(body, want) {
			t.Errorf("requirements lack %s:\n%s", want, body)
		}
	}

	c.login("ada", "author", "0")
	c.post("/papers", url.Values{"title": {"P"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")
	reviewer.post("/papers/1/reviews", goodReview())

	status, body = c.get("/dq/assess/1")
	if status != 200 {
		t.Fatalf("assess: %d %s", status, body)
	}
	if strings.Contains(body, "FAIL") {
		t.Fatalf("good review assessed as failing:\n%s", body)
	}
	if got := strings.Count(body, "\n"); got != 4 {
		t.Fatalf("assessment lines = %d, want 4:\n%s", got, body)
	}
}

func TestAuthAndValidationGuards(t *testing.T) {
	_, srv := startApp(t)
	anon := newClient(t, srv.URL)

	if status, _ := anon.post("/papers", url.Values{"title": {"X"}}); status != http.StatusUnauthorized {
		t.Errorf("anonymous submit: %d", status)
	}
	if status, _ := anon.post("/papers/1/reviews", goodReview()); status != http.StatusUnauthorized {
		t.Errorf("anonymous review: %d", status)
	}
	if status, _ := anon.get("/reviews/1"); status != http.StatusUnauthorized {
		t.Errorf("anonymous read: %d", status)
	}
	if status, _ := anon.post("/login", url.Values{}); status != http.StatusBadRequest {
		t.Errorf("empty login: %d", status)
	}

	user := newClient(t, srv.URL)
	user.login("u", "author", "0")
	if status, _ := user.post("/papers", url.Values{}); status != http.StatusBadRequest {
		t.Errorf("untitled paper: %d", status)
	}
	if status, _ := user.post("/papers/999/reviews", goodReview()); status != http.StatusNotFound {
		t.Errorf("review of missing paper: %d", status)
	}
	if status, _ := user.post("/papers/abc/reviews", goodReview()); status != http.StatusBadRequest {
		t.Errorf("review of bad id: %d", status)
	}
	if status, _ := user.get("/reviews/999"); status != http.StatusNotFound {
		t.Errorf("missing review: %d", status)
	}
	if status, _ := user.post("/papers/1/assign", url.Values{"reviewer": {"x"}}); status != http.StatusForbidden {
		t.Errorf("non-chair assign: %d", status)
	}
}

func TestHomePage(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	status, body := c.get("/")
	if status != 200 || !strings.Contains(body, "EasyChair") {
		t.Fatalf("home: %d %s", status, body)
	}
}

// TestMetricsEndpoints: submitting reviews feeds the measurement collector;
// the metrics and violations endpoints expose the aggregates.
func TestMetricsEndpoints(t *testing.T) {
	_, srv := startApp(t)
	author := newClient(t, srv.URL)
	author.login("ada", "author", "0")
	author.post("/papers", url.Values{"title": {"P"}})
	reviewer := newClient(t, srv.URL)
	reviewer.login("grace", "pc", "2")

	// Two good reviews, one bad: completeness mean = 2/3-ish of records at
	// 1.0 plus one partial.
	reviewer.post("/papers/1/reviews", goodReview())
	reviewer.post("/papers/1/reviews", goodReview())
	bad := goodReview()
	bad.Del("last_name")
	bad.Del("email_address")
	reviewer.post("/papers/1/reviews", bad)

	status, body := reviewer.get("/dq/metrics")
	if status != 200 {
		t.Fatalf("metrics: %d", status)
	}
	for _, want := range []string{"dq/Completeness", "dq/Precision", "n=3"} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics lack %q:\n%s", want, body)
		}
	}

	status, body = reviewer.get("/dq/violations")
	if status != 200 {
		t.Fatalf("violations: %d", status)
	}
	// Completeness mean = (1 + 1 + 0.6)/3 ≈ 0.867 ≥ 0.8: no violation yet.
	if !strings.Contains(body, "all DQ thresholds satisfied") {
		t.Fatalf("unexpected violations:\n%s", body)
	}
	// Three more bad submissions push the mean below 0.8.
	for i := 0; i < 3; i++ {
		reviewer.post("/papers/1/reviews", bad)
	}
	_, body = reviewer.get("/dq/violations")
	if !strings.Contains(body, "dq/Completeness") || !strings.Contains(body, "below threshold") {
		t.Fatalf("violation not reported:\n%s", body)
	}
}

// TestGeneratedReviewForm: the review form served by the app is generated
// from the model, carrying the constraint ranges and required markers.
func TestGeneratedReviewForm(t *testing.T) {
	_, srv := startApp(t)
	c := newClient(t, srv.URL)
	status, body := c.get("/papers/1/reviews/new")
	if status != 200 {
		t.Fatalf("form: %d", status)
	}
	for _, want := range []string{
		`<input type="number" name="overall_evaluation" min="-3" max="3" required`,
		`<input type="number" name="reviewer_confidence" min="0" max="5" required`,
		`<input type="email" name="email_address" required`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("form lacks %q:\n%s", want, body)
		}
	}
	if status, _ := c.get("/papers/abc/reviews/new"); status != http.StatusBadRequest {
		t.Errorf("bad id form: %d", status)
	}
}
