package easychair

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/modeldriven/dqwebre/internal/codegen"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metrics"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/webapp"
)

// App is the runnable conference-management application of the case study.
// Its review-submission flow is guarded by a dqruntime.Enforcer assembled
// from the DQ_WebRE model via the DQR→DQSR transformation, so the four DQ
// requirements captured in Fig. 6 are enforced on every request:
//
//	Completeness    — incomplete review forms are rejected (422)
//	Precision       — scores outside their constraint ranges are rejected
//	Traceability    — stored_by/stored_date/last_modified_* captured; audit
//	                  trail served at /reviews/{id}/audit
//	Confidentiality — review reads require sufficient clearance
type App struct {
	// Router serves the application; mount it on any http.Server.
	Router *webapp.Router

	store     *webapp.Store
	enforcer  *dqruntime.Enforcer
	collector *metrics.Collector
	// reg and tracer are the app's operational observability: reg backs
	// /metrics (Prometheus text format), tracer backs /debug/spans.
	reg    *obs.Registry
	tracer *obs.Tracer
	// quality is the windowed DQ score series (one series per
	// characteristic × submitter role), fed by check-level attribution and
	// served as dq_score/dq_check_failures on /metrics and as JSON with
	// trends on /debug/quality.
	quality *obs.SeriesSet
	// reviewForm is the HTML form generated from the model at startup.
	reviewForm string
}

// ReviewFields lists the form fields of the "New Review" page, the union of
// the case study's two Contents.
var ReviewFields = []string{
	"first_name", "last_name", "email_address",
	"overall_evaluation", "reviewer_confidence",
}

// NewApp builds the full pipeline: case-study model → validation → DQSR →
// enforcer → HTTP application.
func NewApp() (*App, error) {
	elements, err := BuildModel()
	if err != nil {
		return nil, fmt.Errorf("easychair: building model: %w", err)
	}
	if rep := elements.Model.Validate(); !rep.OK() {
		return nil, fmt.Errorf("easychair: model not well-formed: %v", rep.Errors())
	}
	dqsr, _, err := transform.RunDQR2DQSR(elements.Model)
	if err != nil {
		return nil, fmt.Errorf("easychair: DQR2DQSR: %w", err)
	}
	enforcer, err := dqruntime.BuildFromDQSR(dqsr)
	if err != nil {
		return nil, fmt.Errorf("easychair: assembling enforcer: %w", err)
	}
	collector := metrics.NewCollector()
	var chs []iso25012.Characteristic
	for _, r := range enforcer.Requirements() {
		chs = append(chs, r.Dimension)
	}
	if err := collector.RegisterCharacteristics(chs...); err != nil {
		return nil, fmt.Errorf("easychair: registering measures: %w", err)
	}
	// Monitoring policy: mean per-characteristic scores must stay above 0.8
	// across submitted reviews (accepted or rejected).
	for _, ch := range chs {
		if err := collector.AddThreshold(metrics.Threshold{
			Measure: metrics.MeasureNameFor(ch), MinMean: 0.8,
		}); err != nil {
			return nil, err
		}
	}
	form, err := codegen.HTMLForm(elements.Model, "Add all data as result of review")
	if err != nil {
		return nil, fmt.Errorf("easychair: generating review form: %w", err)
	}
	// Operational observability: the process-wide registry (so library-
	// level counters from validate/transform/xmi surface on /metrics too)
	// plus an app-owned tracer whose ring buffer backs /debug/spans.
	reg := obs.Default()
	enforcer.Instrument(reg)
	// Windowed quality telemetry: one-minute windows, an hour of history.
	// The enforcer attributes every check execution (outcome, score,
	// latency, submitter role) into the set via the stock observer.
	quality := obs.NewSeriesSet(time.Minute, 60)
	enforcer.AttachObserver(dqruntime.NewSeriesObserver(quality, reg))
	app := &App{
		Router:     webapp.NewRouter(),
		store:      webapp.NewStore(),
		enforcer:   enforcer,
		collector:  collector,
		reg:        reg,
		tracer:     obs.NewTracer(256),
		quality:    quality,
		reviewForm: form,
	}
	// Metrics outermost so its bookkeeping observes the 500 that Recover
	// writes for panicking handlers.
	app.Router.Use(webapp.Metrics(reg, app.tracer))
	app.routes()
	return app, nil
}

// Collector exposes the DQ measurement collector (for tests and
// diagnostics).
func (a *App) Collector() *metrics.Collector { return a.collector }

// Registry exposes the operational metric registry backing /metrics.
func (a *App) Registry() *obs.Registry { return a.reg }

// Tracer exposes the request tracer backing /debug/spans.
func (a *App) Tracer() *obs.Tracer { return a.tracer }

// Quality exposes the windowed DQ score series backing /debug/quality
// (for tests and diagnostics).
func (a *App) Quality() *obs.SeriesSet { return a.quality }

// Enforcer exposes the DQ enforcer (for tests and diagnostics).
func (a *App) Enforcer() *dqruntime.Enforcer { return a.enforcer }

// Store exposes the data store (for tests).
func (a *App) Store() *webapp.Store { return a.store }

func (a *App) routes() {
	r := a.Router
	r.GET("/", a.handleHome)
	r.POST("/login", a.handleLogin)
	r.GET("/papers", a.handleListPapers)
	r.POST("/papers", a.handleSubmitPaper)
	r.POST("/papers/:id/assign", a.handleAssign)
	r.POST("/papers/:id/reviews", a.handleAddReview)
	r.GET("/reviews/:id", a.handleGetReview)
	r.POST("/reviews/:id", a.handleEditReview)
	r.GET("/reviews/:id/audit", a.handleAudit)
	r.GET("/dq/requirements", a.handleDQRequirements)
	r.GET("/dq/assess/:id", a.handleAssess)
	r.GET("/dq/metrics", a.handleMetrics)
	r.GET("/dq/violations", a.handleViolations)
	r.GET("/papers/:id/reviews/new", a.handleNewReviewForm)
	r.GET("/metrics", a.handlePrometheus)
	r.GET("/healthz", a.handleHealthz)
	r.GET("/debug/spans", a.handleSpans)
	r.GET("/debug/quality", a.handleQuality)
}

// observe records a validation report's scores into the measurement
// collector; measurement failures must not break the request path, so they
// are deliberately dropped (the collector only rejects non-finite values).
func (a *App) observe(rep *dqruntime.Report, entity string) {
	_ = a.collector.RecordReport(rep, entity)
}

// ValidRoles are the identities the case study recognises at login.
var ValidRoles = map[string]bool{"author": true, "reviewer": true, "pc": true, "chair": true}

// currentUser resolves the session's identity. A stored clearance level
// that does not parse means the session state was tampered with (login
// only ever stores validated integers), so the whole identity is rejected
// rather than silently downgraded to level 0 — which would still pass the
// user != "" checks and reach level-0 resources.
func (a *App) currentUser(c *webapp.Context) (user string, level int) {
	user = c.Session.Get("user")
	if user == "" {
		return "", 0
	}
	stored := c.Session.Get("level")
	if stored == "" {
		return user, 0
	}
	level, err := strconv.Atoi(stored)
	if err != nil || level < 0 {
		return "", 0
	}
	return user, level
}

func (a *App) handleHome(c *webapp.Context) {
	user, level := a.currentUser(c)
	c.Text(http.StatusOK, "EasyChair (DQ_WebRE case study)\nuser=%s level=%d\npapers=%d reviews=%d\n",
		user, level, a.store.Table("papers").Len(), a.store.Table("reviews").Len())
}

// handleLogin sets the session's user, role and clearance level. A real
// deployment would authenticate; the case study only needs identity for
// traceability and clearance for confidentiality.
func (a *App) handleLogin(c *webapp.Context) {
	user := strings.TrimSpace(c.FormValue("user"))
	if user == "" {
		c.Text(http.StatusBadRequest, "user is required\n")
		return
	}
	role := strings.TrimSpace(c.FormValue("role"))
	if role != "" && !ValidRoles[role] {
		c.Text(http.StatusBadRequest, "unknown role %q\n", role)
		return
	}
	level := 0
	if v := strings.TrimSpace(c.FormValue("level")); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			c.Text(http.StatusBadRequest, "level must be a non-negative integer\n")
			return
		}
		level = n
	}
	c.Session.Set("user", user)
	c.Session.Set("role", role)
	c.Session.Set("level", strconv.Itoa(level))
	c.Text(http.StatusOK, "logged in as %s\n", user)
}

func (a *App) handleSubmitPaper(c *webapp.Context) {
	user, _ := a.currentUser(c)
	if user == "" {
		c.Text(http.StatusUnauthorized, "log in first\n")
		return
	}
	title := strings.TrimSpace(c.FormValue("title"))
	if title == "" {
		c.Text(http.StatusBadRequest, "title is required\n")
		return
	}
	id := a.store.Table("papers").Insert(webapp.Row{
		"title":   title,
		"authors": c.FormValue("authors"),
		"by":      user,
	})
	c.Text(http.StatusCreated, "paper %d submitted\n", id)
}

func (a *App) handleListPapers(c *webapp.Context) {
	papers := a.store.Table("papers")
	var b strings.Builder
	for _, id := range papers.IDs() {
		row, _ := papers.Get(id)
		fmt.Fprintf(&b, "%d\t%s\t%s\n", id, row["title"], row["authors"])
	}
	c.Text(http.StatusOK, "%s", b.String())
}

func (a *App) handleAssign(c *webapp.Context) {
	user, _ := a.currentUser(c)
	if c.Session.Get("role") != "chair" {
		c.Text(http.StatusForbidden, "only the chair assigns reviewers\n")
		return
	}
	paperID, err := strconv.ParseInt(c.Param("id"), 10, 64)
	if err != nil {
		c.Text(http.StatusBadRequest, "bad paper id\n")
		return
	}
	if _, ok := a.store.Table("papers").Get(paperID); !ok {
		c.Text(http.StatusNotFound, "no such paper\n")
		return
	}
	reviewer := strings.TrimSpace(c.FormValue("reviewer"))
	if reviewer == "" {
		c.Text(http.StatusBadRequest, "reviewer is required\n")
		return
	}
	a.store.Table("assignments").Insert(webapp.Row{
		"paper":    c.Param("id"),
		"reviewer": reviewer,
		"by":       user,
	})
	c.Text(http.StatusCreated, "assigned %s to paper %d\n", reviewer, paperID)
}

// handleAddReview is the paper's "Add new review to submission" web process
// with DQ enforcement: input checks first (Completeness, Precision), then
// storage with metadata capture (Traceability, Confidentiality).
func (a *App) handleAddReview(c *webapp.Context) {
	user, _ := a.currentUser(c)
	if user == "" {
		c.Text(http.StatusUnauthorized, "log in first\n")
		return
	}
	paperID, err := strconv.ParseInt(c.Param("id"), 10, 64)
	if err != nil {
		c.Text(http.StatusBadRequest, "bad paper id\n")
		return
	}
	if _, ok := a.store.Table("papers").Get(paperID); !ok {
		c.Text(http.StatusNotFound, "no such paper\n")
		return
	}

	record := dqruntime.Record{}
	for _, f := range ReviewFields {
		record[f] = c.FormValue(f)
	}
	report := a.enforcer.CheckInputLabeled(c.R.Context(), record, roleLabel(c))
	a.observe(report, "papers/"+c.Param("id"))
	if !report.Passed() {
		var b strings.Builder
		b.WriteString("review rejected by DQ checks:\n")
		for _, f := range report.Failures() {
			fmt.Fprintf(&b, "  %s\n", f)
		}
		c.Text(http.StatusUnprocessableEntity, "%s", b.String())
		return
	}

	row := webapp.Row{"paper": c.Param("id")}
	for k, v := range record {
		row[k] = v
	}
	id := a.store.Table("reviews").Insert(row)
	// Reviews are confidential to the PC: clearance 2, plus the chair.
	a.enforcer.OnStore(reviewKey(id), user, 2, []string{"chair"})
	c.Text(http.StatusCreated, "review %d stored\n", id)
}

func (a *App) handleGetReview(c *webapp.Context) {
	user, level := a.currentUser(c)
	if user == "" {
		c.Text(http.StatusUnauthorized, "log in first\n")
		return
	}
	id, err := strconv.ParseInt(c.Param("id"), 10, 64)
	if err != nil {
		c.Text(http.StatusBadRequest, "bad review id\n")
		return
	}
	row, ok := a.store.Table("reviews").Get(id)
	if !ok {
		c.Text(http.StatusNotFound, "no such review\n")
		return
	}
	if !a.enforcer.CanAccess(reviewKey(id), user, level) {
		c.Text(http.StatusForbidden, "confidentiality: access denied (level %d insufficient)\n", level)
		return
	}
	var b strings.Builder
	for _, f := range ReviewFields {
		fmt.Fprintf(&b, "%s: %s\n", f, row[f])
	}
	if md, ok := a.enforcer.Store().Get(reviewKey(id)); ok {
		fmt.Fprintf(&b, "stored_by: %s\nstored_date: %s\nlast_modified_by: %s\nlast_modified_date: %s\n",
			md.StoredBy, md.StoredDate.Format("2006-01-02T15:04:05Z07:00"),
			md.LastModifiedBy, md.LastModifiedDate.Format("2006-01-02T15:04:05Z07:00"))
	}
	c.Text(http.StatusOK, "%s", b.String())
}

func (a *App) handleEditReview(c *webapp.Context) {
	user, level := a.currentUser(c)
	if user == "" {
		c.Text(http.StatusUnauthorized, "log in first\n")
		return
	}
	id, err := strconv.ParseInt(c.Param("id"), 10, 64)
	if err != nil {
		c.Text(http.StatusBadRequest, "bad review id\n")
		return
	}
	row, ok := a.store.Table("reviews").Get(id)
	if !ok {
		c.Text(http.StatusNotFound, "no such review\n")
		return
	}
	if !a.enforcer.CanAccess(reviewKey(id), user, level) {
		c.Text(http.StatusForbidden, "confidentiality: access denied\n")
		return
	}
	record := dqruntime.Record{}
	for _, f := range ReviewFields {
		v := c.FormValue(f)
		if v == "" {
			v = row[f] // partial edits keep existing values
		}
		record[f] = v
	}
	report := a.enforcer.CheckInputLabeled(c.R.Context(), record, roleLabel(c))
	a.observe(report, "reviews/"+c.Param("id"))
	if !report.Passed() {
		var b strings.Builder
		b.WriteString("edit rejected by DQ checks:\n")
		for _, f := range report.Failures() {
			fmt.Fprintf(&b, "  %s\n", f)
		}
		c.Text(http.StatusUnprocessableEntity, "%s", b.String())
		return
	}
	for k, v := range record {
		row[k] = v
	}
	a.store.Table("reviews").Update(id, row)
	a.enforcer.OnModify(reviewKey(id), user)
	c.Text(http.StatusOK, "review %d updated\n", id)
}

// handleAudit serves the Traceability requirement's audit trail.
func (a *App) handleAudit(c *webapp.Context) {
	user, level := a.currentUser(c)
	if user == "" {
		c.Text(http.StatusUnauthorized, "log in first\n")
		return
	}
	id, err := strconv.ParseInt(c.Param("id"), 10, 64)
	if err != nil {
		c.Text(http.StatusBadRequest, "bad review id\n")
		return
	}
	if !a.enforcer.CanAccess(reviewKey(id), user, level) {
		c.Text(http.StatusForbidden, "confidentiality: access denied\n")
		return
	}
	var b strings.Builder
	for _, e := range a.enforcer.Store().Audit(reviewKey(id)) {
		fmt.Fprintf(&b, "%s\n", e)
	}
	c.Text(http.StatusOK, "%s", b.String())
}

// handleDQRequirements reports the DQ software requirements in force.
func (a *App) handleDQRequirements(c *webapp.Context) {
	var b strings.Builder
	for _, r := range a.enforcer.Requirements() {
		fmt.Fprintf(&b, "DQSR-%d [%s/%s] %s\n", r.ID, r.Dimension, r.Mechanism, r.Title)
	}
	c.Text(http.StatusOK, "%s", b.String())
}

// handleAssess measures a stored review against the DQ model.
func (a *App) handleAssess(c *webapp.Context) {
	id, err := strconv.ParseInt(c.Param("id"), 10, 64)
	if err != nil {
		c.Text(http.StatusBadRequest, "bad review id\n")
		return
	}
	row, ok := a.store.Table("reviews").Get(id)
	if !ok {
		c.Text(http.StatusNotFound, "no such review\n")
		return
	}
	record := dqruntime.Record{}
	for _, f := range ReviewFields {
		record[f] = row[f]
	}
	var b strings.Builder
	for _, as := range a.enforcer.Assess(record) {
		fmt.Fprintf(&b, "%s\n", as)
	}
	c.Text(http.StatusOK, "%s", b.String())
}

// handleMetrics serves the measurement snapshot: per-characteristic score
// aggregates across all observed submissions.
func (a *App) handleMetrics(c *webapp.Context) {
	var b strings.Builder
	for _, line := range a.collector.Snapshot() {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	c.Text(http.StatusOK, "%s", b.String())
}

// handleViolations reports measures whose mean has fallen below the
// monitoring thresholds.
func (a *App) handleViolations(c *webapp.Context) {
	vs := a.collector.Violations(time.Time{})
	if len(vs) == 0 {
		c.Text(http.StatusOK, "all DQ thresholds satisfied\n")
		return
	}
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%s\n", v)
	}
	c.Text(http.StatusOK, "%s", b.String())
}

// handlePrometheus serves the operational metric registry in the
// Prometheus text exposition format: request latency histograms and
// status-aware counters from the webapp middleware, the enforcer's
// per-characteristic DQ check counters, library counters
// (validate/transform/xmi), and — exported at scrape time — the aggregates
// of the DQ measurement collector.
func (a *App) handlePrometheus(c *webapp.Context) {
	a.collector.Export(a.reg)
	a.quality.Export(a.reg,
		"dq_score", "Windowed mean DQ check score, by characteristic, context and window",
		"dq_check_failures", "Windowed DQ check failure count, by characteristic, context and window")
	c.W.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.W.WriteHeader(http.StatusOK)
	_ = a.reg.WritePrometheus(c.W)
}

// handleQuality serves the windowed quality series as JSON: for every
// characteristic × context one entry with its retained windows, the
// current window and the Delta/EWMA trends — the machine-readable answer
// to "is Completeness for reviewers degrading?", consumed by
// `dqwebre watch`.
func (a *App) handleQuality(c *webapp.Context) {
	data, err := json.MarshalIndent(a.quality.Report("dq_score", 0), "", "  ")
	if err != nil {
		c.Text(http.StatusInternalServerError, "quality report: %v\n", err)
		return
	}
	c.W.Header().Set("Content-Type", "application/json; charset=utf-8")
	c.W.WriteHeader(http.StatusOK)
	_, _ = c.W.Write(append(data, '\n'))
}

// roleLabel is the attribution context for quality series: the session's
// role, or "unspecified" for role-less logins, so every observation lands
// in a well-defined series.
func roleLabel(c *webapp.Context) string {
	if role := c.Session.Get("role"); role != "" {
		return role
	}
	return "unspecified"
}

// handleHealthz is a liveness/readiness probe: the pipeline assembled at
// startup (enforcer, collector, store) is the only state that can be
// unhealthy, so reaching this handler with all of it in place is "ok".
func (a *App) handleHealthz(c *webapp.Context) {
	c.W.Header().Set("Content-Type", "application/json; charset=utf-8")
	c.W.WriteHeader(http.StatusOK)
	fmt.Fprintf(c.W,
		`{"status":"ok","requirements":%d,"papers":%d,"reviews":%d}`+"\n",
		len(a.enforcer.Requirements()),
		a.store.Table("papers").Len(), a.store.Table("reviews").Len())
}

// handleSpans dumps the most recent request span trees from the tracer's
// ring buffer, newest first — a zero-dependency stand-in for a tracing
// backend.
func (a *App) handleSpans(c *webapp.Context) {
	spans := a.tracer.Finished()
	var b strings.Builder
	fmt.Fprintf(&b, "%d recent spans (newest first)\n\n", len(spans))
	for _, s := range spans {
		obs.WriteTree(&b, s)
		b.WriteByte('\n')
	}
	c.Text(http.StatusOK, "%s", b.String())
}

// handleNewReviewForm serves the review form generated from the model by
// the codegen layer: required fields and score ranges come straight from
// the captured DQ requirements, so the form and the server-side checks
// cannot drift apart.
func (a *App) handleNewReviewForm(c *webapp.Context) {
	if _, err := strconv.ParseInt(c.Param("id"), 10, 64); err != nil {
		c.Text(http.StatusBadRequest, "bad paper id\n")
		return
	}
	c.HTML(http.StatusOK, a.reviewForm)
}

func reviewKey(id int64) string { return fmt.Sprintf("review/%d", id) }
