package easychair

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/webre"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

func metamodelString(s string) metamodel.Value { return metamodel.String(s) }

func TestBuildModelValidates(t *testing.T) {
	e, err := BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	rep := e.Model.Validate()
	if !rep.OK() {
		for _, d := range rep.Diagnostics {
			t.Log(d)
		}
		t.Fatal("case study model must validate cleanly")
	}
}

// TestFig6Elements pins the element inventory of the paper's Fig. 6: one
// actor, one WebProcess, one InformationCase, four DQ_Requirements with the
// right dimensions, and the two Contents with the paper's data items.
func TestFig6Elements(t *testing.T) {
	e := MustBuildModel()
	m := e.Model

	if got := m.StereotypedBy(dqwebre.MetaInformationCase); len(got) != 1 {
		t.Fatalf("InformationCases = %d, want 1", len(got))
	}
	reqs := m.StereotypedBy(dqwebre.MetaDQRequirement)
	if len(reqs) != 4 {
		t.Fatalf("DQ_Requirements = %d, want 4", len(reqs))
	}

	infos, err := m.DQRequirements()
	if err != nil {
		t.Fatal(err)
	}
	wantDims := map[iso25012.Characteristic]bool{
		iso25012.Confidentiality: true,
		iso25012.Completeness:    true,
		iso25012.Traceability:    true,
		iso25012.Precision:       true,
	}
	for _, info := range infos {
		if !wantDims[info.Dimension] {
			t.Errorf("unexpected dimension %s", info.Dimension)
		}
		delete(wantDims, info.Dimension)
		if info.SpecText == "" || info.SpecID == 0 {
			t.Errorf("requirement %q lacks specification", info.Name)
		}
	}
	if len(wantDims) != 0 {
		t.Errorf("missing dimensions: %v", wantDims)
	}

	// The include chain of Fig. 6.
	incs := e.AddReview.GetRefs("include")
	if len(incs) != 1 || incs[0].GetRef("addition") != e.InfoCase {
		t.Error("WebProcess must include the InformationCase")
	}
	icIncs := e.InfoCase.GetRefs("include")
	if len(icIncs) != 4 {
		t.Errorf("InformationCase includes %d requirements, want 4", len(icIncs))
	}

	// The paper's data items.
	gotAttrs := []string{}
	for _, a := range e.ReviewerInfo.GetRefs("attributes") {
		gotAttrs = append(gotAttrs, a.GetString("name"))
	}
	if strings.Join(gotAttrs, ",") != strings.Join(ReviewerInfoFields, ",") {
		t.Errorf("reviewer info fields = %v", gotAttrs)
	}
}

// TestFig7Elements pins the activity diagram inventory: five
// UserTransactions, two metadata-capturing and two verification
// Add_DQ_Metadata activities, the metadata stores with the paper's
// attribute names, the validator operations and the score constraint.
func TestFig7Elements(t *testing.T) {
	e := MustBuildModel()
	m := e.Model

	if len(e.UserTransactions) != 5 {
		t.Fatalf("UserTransactions = %d, want 5", len(e.UserTransactions))
	}
	wantTx := []string{
		"add reviewer information", "add evaluation scores", "add additional scores",
		"add detailed information of review", "add comments for PC",
	}
	for i, tx := range e.UserTransactions {
		if tx.GetString("name") != wantTx[i] {
			t.Errorf("tx[%d] = %q, want %q", i, tx.GetString("name"), wantTx[i])
		}
		if !tx.IsA(webre.MustClass(webre.MetaUserTransaction)) {
			t.Errorf("tx[%d] wrong metaclass", i)
		}
	}

	addMetas := m.StereotypedBy(dqwebre.MetaAddDQMetadata)
	if len(addMetas) != 4 {
		t.Fatalf("Add_DQ_Metadata nodes = %d, want 4", len(addMetas))
	}

	// Traceability metadata names match the paper.
	md := e.TraceMetadata.GetList("dq_metadata")
	if len(md) != 4 {
		t.Fatalf("traceability metadata = %d items", len(md))
	}
	for i, want := range TraceabilityMetadata {
		if md[i] != metamodelString(want) {
			t.Errorf("metadata[%d] = %v, want %s", i, md[i], want)
		}
	}

	// Validator operations.
	ops := []string{}
	for _, op := range e.Validator.GetRefs("operations") {
		ops = append(ops, op.GetString("name"))
	}
	if strings.Join(ops, ",") != "check_precision,check_completeness" {
		t.Errorf("validator ops = %v", ops)
	}
	vals := e.Validator.GetRefs("validates")
	if len(vals) != 1 || vals[0] != e.ReviewPage {
		t.Error("validator must validate the review page")
	}

	// Score constraint bounds.
	if e.ScoreConstraint.GetInt("lower_bound") != -3 || e.ScoreConstraint.GetInt("upper_bound") != 3 {
		t.Error("score constraint bounds wrong")
	}
	cvals := e.ScoreConstraint.GetRefs("validator")
	if len(cvals) != 1 || cvals[0] != e.Validator {
		t.Error("constraint→validator link missing")
	}

	// Activity graph shape: 1 initial + 5 tx + 4 addmeta + 1 decision +
	// 1 final = 12 nodes; edges: 5 (start+tx chain) + 5 (tail chain) +
	// 2 (decision outcomes) = 12.
	nodes := e.Activity.GetRefs("nodes")
	if len(nodes) != 12 {
		t.Errorf("activity nodes = %d, want 12", len(nodes))
	}
	edges := e.Activity.GetRefs("edges")
	if len(edges) != 12 {
		t.Errorf("activity edges = %d, want 12", len(edges))
	}

	// Swimlanes.
	parts := e.Activity.GetRefs("partitions")
	if len(parts) != 2 {
		t.Fatalf("partitions = %d", len(parts))
	}
	if e.UserTransactions[0].GetRef("inPartition") != parts[0] {
		t.Error("transactions should sit in the PC member lane")
	}
	if e.StoreTraceability.GetRef("inPartition") != parts[1] {
		t.Error("metadata capture should sit in the EasyChair lane")
	}
}

func TestModelRoundTripsThroughXMI(t *testing.T) {
	e := MustBuildModel()
	data, err := xmi.Marshal(e.Model.Model)
	if err != nil {
		t.Fatal(err)
	}
	back, err := xmi.Unmarshal(data, xmi.Options{
		Profiles: []*uml.Profile{webre.Profile(), dqwebre.Profile()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, diff := xmi.Equivalent(e.Model.Model, back); !ok {
		t.Fatalf("round trip: %s", diff)
	}
}

func TestCaseStudyStats(t *testing.T) {
	e := MustBuildModel()
	stats := e.Model.Stats()
	byClass := map[string]int{}
	for _, s := range stats {
		byClass[s.Class] = s.Count
	}
	want := map[string]int{
		"WebUser":         1,
		"WebProcess":      1,
		"InformationCase": 1,
		"DQ_Requirement":  4,
		"UserTransaction": 5,
		"Add_DQ_Metadata": 4,
		"DQ_Metadata":     2,
		"DQ_Validator":    1,
		"DQConstraint":    1,
		"Content":         2,
		"WebUI":           1,
	}
	for class, n := range want {
		if byClass[class] != n {
			t.Errorf("%s = %d, want %d", class, byClass[class], n)
		}
	}
}

// TestNavigationModel exercises the WebRE navigation vocabulary
// (Navigation, Browse, Search, Node) on the case-study substrate and
// checks it against the WebRE well-formedness rules.
func TestNavigationModel(t *testing.T) {
	n, err := BuildNavigationModel()
	if err != nil {
		t.Fatal(err)
	}
	rep := n.Model.Validate()
	if !rep.OK() {
		for _, d := range rep.Diagnostics {
			t.Log(d)
		}
		t.Fatal("navigation model must validate")
	}
	// The navigation reaches its declared target via a browse.
	browses := n.Navigation.GetRefs("browses")
	if len(browses) != 3 {
		t.Fatalf("browses = %d, want 3", len(browses))
	}
	if n.Navigation.GetRef("targetNode") != n.ReviewForm {
		t.Fatal("target node wrong")
	}
	reached := false
	for _, b := range browses {
		if b.GetRef("target") == n.ReviewForm {
			reached = true
		}
	}
	if !reached {
		t.Fatal("no browse reaches the target node")
	}
	// The search is parameterized and queries the submissions content.
	params := n.FindSubmission.GetList("parameters")
	if len(params) != 2 {
		t.Fatalf("search params = %v", params)
	}
	if n.FindSubmission.GetRef("queriedContent") != n.SubmissionsContent {
		t.Fatal("search content wrong")
	}
	// The search is a Browse too (WebRE: Search specializes Browse).
	if !n.FindSubmission.IsA(webre.MustClass(webre.MetaBrowse)) {
		t.Fatal("Search must conform to Browse")
	}
	// Node→WebUI presentation link.
	if ui := n.ReviewForm.GetRef("ui"); ui == nil || ui.GetString("name") != "webpage of New Review" {
		t.Fatal("review form node lacks its WebUI")
	}
}
