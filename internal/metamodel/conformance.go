package metamodel

import (
	"fmt"
)

// Violation describes one way an object fails to conform to its metamodel.
type Violation struct {
	// Object is the non-conforming instance.
	Object *Object
	// Property is the offending property name, or "" for object-level issues.
	Property string
	// Rule identifies the conformance rule that failed.
	Rule ConformanceRule
	// Message is a human-readable description.
	Message string
}

// String renders the violation for logs and reports.
func (v Violation) String() string {
	loc := v.Object.Label()
	if v.Property != "" {
		loc += "." + v.Property
	}
	return fmt.Sprintf("%s: [%s] %s", loc, v.Rule, v.Message)
}

// ConformanceRule identifies a structural conformance rule.
type ConformanceRule string

// Structural conformance rules checked by CheckConformance.
const (
	// RuleLowerBound fires when a required slot is unset or underfilled.
	RuleLowerBound ConformanceRule = "lower-bound"
	// RuleUpperBound fires when a multi-valued slot exceeds its upper bound.
	RuleUpperBound ConformanceRule = "upper-bound"
	// RuleDangling fires when a reference targets an object outside the model.
	RuleDangling ConformanceRule = "dangling-reference"
	// RuleAbstract fires when an instance's class is abstract.
	RuleAbstract ConformanceRule = "abstract-class"
)

// CheckConformance verifies every object in the model against the structural
// rules of its class: multiplicities and referential integrity. Type
// conformance of slot values is enforced eagerly by Object.Set/Append, so it
// cannot be violated here.
func CheckConformance(m *Model) []Violation {
	var out []Violation
	objs := m.Objects()
	inModel := make(map[*Object]bool, len(objs))
	for _, o := range objs {
		inModel[o] = true
	}
	for _, o := range objs {
		out = append(out, checkObject(m, o, inModel)...)
	}
	return out
}

func checkObject(m *Model, o *Object, inModel map[*Object]bool) []Violation {
	var out []Violation
	if o.Class().IsAbstract() {
		out = append(out, Violation{
			Object: o,
			Rule:   RuleAbstract,
			Message: fmt.Sprintf("instance of abstract class %q",
				o.Class().QualifiedName()),
		})
	}
	for _, p := range o.Class().AllProperties() {
		if p.IsDerived() {
			continue
		}
		v, ok := o.Get(p.Name())
		n := 0
		if ok {
			if l, isList := v.(*List); isList {
				n = len(l.Items)
			} else {
				n = 1
			}
		}
		if n < p.Lower() {
			out = append(out, Violation{
				Object:   o,
				Property: p.Name(),
				Rule:     RuleLowerBound,
				Message: fmt.Sprintf("requires at least %d value(s), has %d",
					p.Lower(), n),
			})
		}
		if p.Upper() != Unbounded && n > p.Upper() {
			out = append(out, Violation{
				Object:   o,
				Property: p.Name(),
				Rule:     RuleUpperBound,
				Message: fmt.Sprintf("allows at most %d value(s), has %d",
					p.Upper(), n),
			})
		}
		if !ok {
			continue
		}
		for _, target := range refTargets(v) {
			if !inModel[target] {
				out = append(out, Violation{
					Object:   o,
					Property: p.Name(),
					Rule:     RuleDangling,
					Message: fmt.Sprintf("references %s which is not part of model %q",
						target.Label(), m.Name()),
				})
			}
		}
	}
	return out
}

func refTargets(v Value) []*Object {
	switch t := v.(type) {
	case Ref:
		if t.Target != nil {
			return []*Object{t.Target}
		}
	case *List:
		var out []*Object
		for _, item := range t.Items {
			if r, ok := item.(Ref); ok && r.Target != nil {
				out = append(out, r.Target)
			}
		}
		return out
	}
	return nil
}

// Conforms reports whether the model has no structural violations.
func Conforms(m *Model) bool { return len(CheckConformance(m)) == 0 }
