package metamodel

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps metamodel names to packages so tools (CLI, XMI reader) can
// resolve a model's metamodel by name. It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	packages map[string]*Package
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{packages: make(map[string]*Package)}
}

// Register adds a metamodel package under its own name. Re-registering the
// same package is a no-op; registering a different package under an existing
// name is an error.
func (r *Registry) Register(p *Package) error {
	if p == nil {
		return fmt.Errorf("metamodel: register nil package")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.packages[p.Name()]; ok {
		if existing == p {
			return nil
		}
		return fmt.Errorf("metamodel: metamodel %q already registered", p.Name())
	}
	r.packages[p.Name()] = p
	return nil
}

// Lookup returns the metamodel with the given name.
func (r *Registry) Lookup(name string) (*Package, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.packages[name]
	return p, ok
}

// Names returns the registered metamodel names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.packages))
	for name := range r.packages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// defaultRegistry is the process-wide registry used by the package-level
// functions below.
var defaultRegistry = NewRegistry()

// Register adds a metamodel to the process-wide registry.
func Register(p *Package) error { return defaultRegistry.Register(p) }

// MustRegister is Register that panics on error, for init-time registration.
func MustRegister(p *Package) {
	if err := defaultRegistry.Register(p); err != nil {
		panic(err)
	}
}

// Lookup resolves a metamodel by name in the process-wide registry.
func Lookup(name string) (*Package, bool) { return defaultRegistry.Lookup(name) }

// RegisteredNames lists the process-wide registry's metamodel names.
func RegisteredNames() []string { return defaultRegistry.Names() }
