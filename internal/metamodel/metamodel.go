// Package metamodel implements a small reflective metamodeling kernel in the
// spirit of OMG's MOF / Eclipse EMF. It is the substrate on which the UML
// subset, the WebRE metamodel and the DQ_WebRE extension are defined.
//
// The kernel is meta-circular in the practical sense: metamodels (packages of
// classes, properties, associations and enumerations) are plain Go values,
// and models are graphs of Objects whose slots are typed by those classes.
// Everything downstream — validation, OCL evaluation, XMI serialization,
// diagram emission and model transformation — works reflectively against
// this kernel and therefore applies to any registered metamodel.
package metamodel

import (
	"fmt"
	"sort"
	"strings"
)

// Named is implemented by every named metamodel element.
type Named interface {
	// Name returns the element's simple (unqualified) name.
	Name() string
	// QualifiedName returns the dotted path from the root package,
	// e.g. "WebRE.Behavior.WebProcess".
	QualifiedName() string
}

// Classifier is the common interface of everything that can type a Property:
// classes, enumerations and primitive data types.
type Classifier interface {
	Named
	// IsClassifier is a marker; it reports the concrete kind.
	ClassifierKind() Kind
}

// Kind discriminates the concrete classifier sorts.
type Kind int

// Classifier kinds.
const (
	KindClass Kind = iota
	KindEnumeration
	KindDataType
)

// String returns the human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindClass:
		return "Class"
	case KindEnumeration:
		return "Enumeration"
	case KindDataType:
		return "DataType"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Package groups classifiers and nested packages, mirroring UML packages.
type Package struct {
	name     string
	parent   *Package
	packages map[string]*Package
	classes  map[string]*Class
	enums    map[string]*Enumeration
	types    map[string]*DataType

	// order preserves insertion order for deterministic iteration.
	order []Named

	// imports are packages whose classifiers are visible to name resolution
	// in this package, mirroring UML package import. Lookup order is local
	// first, then imports in declaration order.
	imports []*Package
}

// NewPackage creates a root package with the given name.
func NewPackage(name string) *Package {
	return &Package{
		name:     name,
		packages: make(map[string]*Package),
		classes:  make(map[string]*Class),
		enums:    make(map[string]*Enumeration),
		types:    make(map[string]*DataType),
	}
}

// Name returns the package's simple name.
func (p *Package) Name() string { return p.name }

// QualifiedName returns the dotted path from the root package.
func (p *Package) QualifiedName() string {
	if p.parent == nil {
		return p.name
	}
	return p.parent.QualifiedName() + "." + p.name
}

// Parent returns the owning package, or nil for a root package.
func (p *Package) Parent() *Package { return p.parent }

// AddPackage creates (or returns an existing) nested package.
func (p *Package) AddPackage(name string) *Package {
	if sub, ok := p.packages[name]; ok {
		return sub
	}
	sub := NewPackage(name)
	sub.parent = p
	p.packages[name] = sub
	p.order = append(p.order, sub)
	return sub
}

// Packages returns the nested packages in insertion order.
func (p *Package) Packages() []*Package {
	var out []*Package
	for _, n := range p.order {
		if sub, ok := n.(*Package); ok {
			out = append(out, sub)
		}
	}
	return out
}

// Classes returns the classes owned directly by this package, in insertion
// order.
func (p *Package) Classes() []*Class {
	var out []*Class
	for _, n := range p.order {
		if c, ok := n.(*Class); ok {
			out = append(out, c)
		}
	}
	return out
}

// Enumerations returns the enumerations owned directly by this package.
func (p *Package) Enumerations() []*Enumeration {
	var out []*Enumeration
	for _, n := range p.order {
		if e, ok := n.(*Enumeration); ok {
			out = append(out, e)
		}
	}
	return out
}

// DataTypes returns the data types owned directly by this package.
func (p *Package) DataTypes() []*DataType {
	var out []*DataType
	for _, n := range p.order {
		if d, ok := n.(*DataType); ok {
			out = append(out, d)
		}
	}
	return out
}

// AddClass creates a class in this package. It panics if the name is already
// taken: metamodels are built by library code at init time, so a clash is a
// programming error, not a runtime condition.
func (p *Package) AddClass(name string) *Class {
	if err := p.checkFresh(name); err != nil {
		panic(err)
	}
	c := &Class{
		name:       name,
		pkg:        p,
		properties: make(map[string]*Property),
	}
	p.classes[name] = c
	p.order = append(p.order, c)
	return c
}

// AddAbstractClass creates an abstract class in this package.
func (p *Package) AddAbstractClass(name string) *Class {
	c := p.AddClass(name)
	c.abstract = true
	return c
}

// AddEnumeration creates an enumeration with the given literals.
func (p *Package) AddEnumeration(name string, literals ...string) *Enumeration {
	if err := p.checkFresh(name); err != nil {
		panic(err)
	}
	e := &Enumeration{name: name, pkg: p, literals: append([]string(nil), literals...)}
	p.enums[name] = e
	p.order = append(p.order, e)
	return e
}

// AddDataType creates a named primitive data type in this package.
func (p *Package) AddDataType(name string, base Primitive) *DataType {
	if err := p.checkFresh(name); err != nil {
		panic(err)
	}
	d := &DataType{name: name, pkg: p, base: base}
	p.types[name] = d
	p.order = append(p.order, d)
	return d
}

func (p *Package) checkFresh(name string) error {
	if name == "" {
		return fmt.Errorf("metamodel: empty classifier name in package %q", p.QualifiedName())
	}
	if _, ok := p.classes[name]; ok {
		return fmt.Errorf("metamodel: %q already defined in package %q", name, p.QualifiedName())
	}
	if _, ok := p.enums[name]; ok {
		return fmt.Errorf("metamodel: %q already defined in package %q", name, p.QualifiedName())
	}
	if _, ok := p.types[name]; ok {
		return fmt.Errorf("metamodel: %q already defined in package %q", name, p.QualifiedName())
	}
	if _, ok := p.packages[name]; ok {
		return fmt.Errorf("metamodel: %q already a subpackage of %q", name, p.QualifiedName())
	}
	return nil
}

// Class looks a class up by simple name in this package only.
func (p *Package) Class(name string) (*Class, bool) {
	c, ok := p.classes[name]
	return c, ok
}

// Enumeration looks an enumeration up by simple name in this package only.
func (p *Package) Enumeration(name string) (*Enumeration, bool) {
	e, ok := p.enums[name]
	return e, ok
}

// DataType looks a data type up by simple name in this package only.
func (p *Package) DataType(name string) (*DataType, bool) {
	d, ok := p.types[name]
	return d, ok
}

// Package looks a nested package up by simple name.
func (p *Package) Package(name string) (*Package, bool) {
	sub, ok := p.packages[name]
	return sub, ok
}

// FindClass resolves a class anywhere under this package by simple or dotted
// name ("WebProcess" or "Behavior.WebProcess"). Simple names are resolved by
// depth-first search; the first match in insertion order wins.
func (p *Package) FindClass(name string) (*Class, bool) {
	if strings.Contains(name, ".") {
		parts := strings.Split(name, ".")
		cur := p
		for _, part := range parts[:len(parts)-1] {
			sub, ok := cur.packages[part]
			if !ok {
				return nil, false
			}
			cur = sub
		}
		c, ok := cur.classes[parts[len(parts)-1]]
		return c, ok
	}
	if c, ok := p.classes[name]; ok {
		return c, true
	}
	for _, n := range p.order {
		if sub, ok := n.(*Package); ok {
			if c, ok := sub.FindClass(name); ok {
				return c, true
			}
		}
	}
	for _, imp := range p.imports {
		if c, ok := imp.FindClass(name); ok {
			return c, true
		}
	}
	return nil, false
}

// Import makes the classifiers of another package visible to name resolution
// in this package (UML package import). Self-imports and duplicates are
// ignored.
func (p *Package) Import(other *Package) *Package {
	if other == nil || other == p {
		return p
	}
	for _, imp := range p.imports {
		if imp == other {
			return p
		}
	}
	p.imports = append(p.imports, other)
	return p
}

// Imports returns the imported packages in declaration order.
func (p *Package) Imports() []*Package { return append([]*Package(nil), p.imports...) }

// FindClassifier resolves any classifier (class, enumeration or data type)
// under this package by simple or dotted name.
func (p *Package) FindClassifier(name string) (Classifier, bool) {
	if c, ok := p.FindClass(name); ok {
		return c, true
	}
	if e, ok := p.enums[name]; ok {
		return e, true
	}
	if d, ok := p.types[name]; ok {
		return d, true
	}
	for _, n := range p.order {
		if sub, ok := n.(*Package); ok {
			if c, ok := sub.FindClassifier(name); ok {
				return c, true
			}
		}
	}
	for _, imp := range p.imports {
		if c, ok := imp.FindClassifier(name); ok {
			return c, true
		}
	}
	return nil, false
}

// AllClasses returns every class under this package, depth first, in
// insertion order.
func (p *Package) AllClasses() []*Class {
	out := p.Classes()
	for _, sub := range p.Packages() {
		out = append(out, sub.AllClasses()...)
	}
	return out
}

// AllClassifiers returns every classifier under this package, depth first.
func (p *Package) AllClassifiers() []Classifier {
	var out []Classifier
	for _, n := range p.order {
		switch v := n.(type) {
		case *Class:
			out = append(out, v)
		case *Enumeration:
			out = append(out, v)
		case *DataType:
			out = append(out, v)
		case *Package:
			out = append(out, v.AllClassifiers()...)
		}
	}
	return out
}

// Class is a metaclass: a named, possibly abstract classifier with typed
// properties and zero or more superclasses.
type Class struct {
	name       string
	pkg        *Package
	abstract   bool
	supers     []*Class
	properties map[string]*Property
	propOrder  []*Property
	doc        string
}

// Name returns the class's simple name.
func (c *Class) Name() string { return c.name }

// QualifiedName returns the dotted path from the root package.
func (c *Class) QualifiedName() string { return c.pkg.QualifiedName() + "." + c.name }

// ClassifierKind reports KindClass.
func (c *Class) ClassifierKind() Kind { return KindClass }

// Package returns the owning package.
func (c *Class) Package() *Package { return c.pkg }

// IsAbstract reports whether the class can be instantiated.
func (c *Class) IsAbstract() bool { return c.abstract }

// SetAbstract marks the class abstract and returns it for chaining.
func (c *Class) SetAbstract() *Class {
	c.abstract = true
	return c
}

// SetDoc attaches a documentation string and returns the class for chaining.
func (c *Class) SetDoc(doc string) *Class {
	c.doc = doc
	return c
}

// Doc returns the documentation string attached with SetDoc.
func (c *Class) Doc() string { return c.doc }

// AddSuper declares sup as a superclass. Cycles are rejected with a panic,
// again because metamodels are constructed by library code at init time.
func (c *Class) AddSuper(sup *Class) *Class {
	if sup == nil {
		panic(fmt.Errorf("metamodel: nil superclass for %q", c.QualifiedName()))
	}
	if sup == c || sup.ConformsTo(c) {
		panic(fmt.Errorf("metamodel: inheritance cycle between %q and %q",
			c.QualifiedName(), sup.QualifiedName()))
	}
	c.supers = append(c.supers, sup)
	return c
}

// Supers returns the direct superclasses.
func (c *Class) Supers() []*Class { return append([]*Class(nil), c.supers...) }

// ConformsTo reports whether c is other or a (transitive) subclass of other.
func (c *Class) ConformsTo(other *Class) bool {
	if c == other {
		return true
	}
	for _, s := range c.supers {
		if s.ConformsTo(other) {
			return true
		}
	}
	return false
}

// AllSupers returns the transitive superclasses in linearized order
// (depth first, duplicates removed).
func (c *Class) AllSupers() []*Class {
	var out []*Class
	seen := map[*Class]bool{}
	var walk func(*Class)
	walk = func(k *Class) {
		for _, s := range k.supers {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
				walk(s)
			}
		}
	}
	walk(c)
	return out
}

// AddProperty declares a property with the given name, type and multiplicity.
// upper == Unbounded (-1) means "*".
func (c *Class) AddProperty(name string, typ Classifier, lower, upper int) *Property {
	if name == "" {
		panic(fmt.Errorf("metamodel: empty property name on %q", c.QualifiedName()))
	}
	if _, ok := c.properties[name]; ok {
		panic(fmt.Errorf("metamodel: property %q already defined on %q", name, c.QualifiedName()))
	}
	if typ == nil {
		panic(fmt.Errorf("metamodel: nil type for property %s.%s", c.QualifiedName(), name))
	}
	p := &Property{name: name, owner: c, typ: typ, lower: lower, upper: upper}
	c.properties[name] = p
	c.propOrder = append(c.propOrder, p)
	return p
}

// AddAttr declares a single-valued optional attribute (0..1) of a primitive
// or enumeration type. It is the common case for tagged values and metadata.
func (c *Class) AddAttr(name string, typ Classifier) *Property {
	return c.AddProperty(name, typ, 0, 1)
}

// AddRef declares an optional single-valued reference (0..1) to another class.
func (c *Class) AddRef(name string, typ *Class) *Property {
	return c.AddProperty(name, typ, 0, 1)
}

// AddRefs declares an unbounded multi-valued reference (0..*).
func (c *Class) AddRefs(name string, typ *Class) *Property {
	return c.AddProperty(name, typ, 0, Unbounded)
}

// Property returns the property with the given name, searching superclasses.
func (c *Class) Property(name string) (*Property, bool) {
	if p, ok := c.properties[name]; ok {
		return p, true
	}
	for _, s := range c.supers {
		if p, ok := s.Property(name); ok {
			return p, true
		}
	}
	return nil, false
}

// OwnProperties returns the properties declared directly on this class,
// in declaration order.
func (c *Class) OwnProperties() []*Property {
	return append([]*Property(nil), c.propOrder...)
}

// AllProperties returns inherited then own properties, deduplicated by name
// with the most-derived declaration winning, in a stable order.
func (c *Class) AllProperties() []*Property {
	byName := map[string]*Property{}
	var names []string
	var visit func(*Class)
	visit = func(k *Class) {
		for _, s := range k.supers {
			visit(s)
		}
		for _, p := range k.propOrder {
			if _, ok := byName[p.name]; !ok {
				names = append(names, p.name)
			}
			byName[p.name] = p
		}
	}
	visit(c)
	out := make([]*Property, 0, len(names))
	for _, n := range names {
		out = append(out, byName[n])
	}
	return out
}

// Unbounded is the upper multiplicity bound meaning "*".
const Unbounded = -1

// Property is a typed, multiplicity-bounded structural feature of a Class.
type Property struct {
	name      string
	owner     *Class
	typ       Classifier
	lower     int
	upper     int // Unbounded for *
	composite bool
	opposite  *Property
	derived   bool
	doc       string
	dflt      Value
}

// Name returns the property's name.
func (p *Property) Name() string { return p.name }

// QualifiedName returns Owner.QualifiedName() + "." + name.
func (p *Property) QualifiedName() string { return p.owner.QualifiedName() + "." + p.name }

// Owner returns the declaring class.
func (p *Property) Owner() *Class { return p.owner }

// Type returns the property's classifier type.
func (p *Property) Type() Classifier { return p.typ }

// Lower returns the lower multiplicity bound.
func (p *Property) Lower() int { return p.lower }

// Upper returns the upper multiplicity bound; Unbounded means "*".
func (p *Property) Upper() int { return p.upper }

// IsMany reports whether the property can hold more than one value.
func (p *Property) IsMany() bool { return p.upper == Unbounded || p.upper > 1 }

// IsRequired reports whether at least one value must be present.
func (p *Property) IsRequired() bool { return p.lower >= 1 }

// IsComposite reports whether the property owns its values (containment).
func (p *Property) IsComposite() bool { return p.composite }

// SetComposite marks the property as a containment reference.
func (p *Property) SetComposite() *Property {
	p.composite = true
	return p
}

// IsDerived reports whether the property is computed rather than stored.
func (p *Property) IsDerived() bool { return p.derived }

// SetDerived marks the property derived.
func (p *Property) SetDerived() *Property {
	p.derived = true
	return p
}

// SetDoc attaches a documentation string.
func (p *Property) SetDoc(doc string) *Property {
	p.doc = doc
	return p
}

// Doc returns the documentation string.
func (p *Property) Doc() string { return p.doc }

// SetDefault sets the default value used when a slot is unset.
func (p *Property) SetDefault(v Value) *Property {
	p.dflt = v
	return p
}

// Default returns the default value, which may be nil.
func (p *Property) Default() Value { return p.dflt }

// Opposite returns the other end of a bidirectional association, if any.
func (p *Property) Opposite() *Property { return p.opposite }

// MultiplicityString renders the multiplicity in UML notation, e.g. "0..1",
// "1", "0..*", "1..*".
func (p *Property) MultiplicityString() string {
	up := "*"
	if p.upper != Unbounded {
		up = fmt.Sprintf("%d", p.upper)
	}
	if p.upper != Unbounded && p.lower == p.upper {
		return up
	}
	return fmt.Sprintf("%d..%s", p.lower, up)
}

// Association links two properties as opposite ends of a bidirectional
// association. Either end may be nil-opposite beforehand; both are updated.
func Associate(a, b *Property) {
	a.opposite = b
	b.opposite = a
}

// Enumeration is a classifier whose values are drawn from a fixed literal set.
type Enumeration struct {
	name     string
	pkg      *Package
	literals []string
}

// Name returns the enumeration's simple name.
func (e *Enumeration) Name() string { return e.name }

// QualifiedName returns the dotted path from the root package.
func (e *Enumeration) QualifiedName() string { return e.pkg.QualifiedName() + "." + e.name }

// ClassifierKind reports KindEnumeration.
func (e *Enumeration) ClassifierKind() Kind { return KindEnumeration }

// Literals returns the literal names in declaration order.
func (e *Enumeration) Literals() []string { return append([]string(nil), e.literals...) }

// Has reports whether lit is one of the enumeration's literals.
func (e *Enumeration) Has(lit string) bool {
	for _, l := range e.literals {
		if l == lit {
			return true
		}
	}
	return false
}

// Primitive enumerates the built-in value kinds a DataType can be based on.
type Primitive int

// Built-in primitive kinds.
const (
	PrimString Primitive = iota
	PrimInteger
	PrimBoolean
	PrimReal
)

// String returns the OCL-style primitive name.
func (p Primitive) String() string {
	switch p {
	case PrimString:
		return "String"
	case PrimInteger:
		return "Integer"
	case PrimBoolean:
		return "Boolean"
	case PrimReal:
		return "Real"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// DataType is a named primitive type (e.g. "String" or a domain alias such
// as "EmailAddress" based on String).
type DataType struct {
	name string
	pkg  *Package
	base Primitive
}

// Name returns the data type's simple name.
func (d *DataType) Name() string { return d.name }

// QualifiedName returns the dotted path from the root package.
func (d *DataType) QualifiedName() string { return d.pkg.QualifiedName() + "." + d.name }

// ClassifierKind reports KindDataType.
func (d *DataType) ClassifierKind() Kind { return KindDataType }

// Base returns the underlying primitive kind.
func (d *DataType) Base() Primitive { return d.base }

// SortedNames is a helper used by deterministic emitters: it returns the
// keys of a string-keyed map in sorted order.
func SortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
