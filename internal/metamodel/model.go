package metamodel

import (
	"fmt"
	"sort"
	"sync"
)

// Model is a container for a graph of Objects conforming to one metamodel
// package. It tracks all objects (not just roots) so generic services —
// validation, serialization, diagram emission — can iterate the extent of a
// class without chasing references.
type Model struct {
	mu        sync.RWMutex
	name      string
	metamodel *Package
	objects   []*Object
	members   map[*Object]bool
	byXID     map[string]*Object
	// extents memoizes AllInstances per class, so repeated OCL
	// `T.allInstances()` scans are O(extent) instead of O(all objects) with
	// an IsA walk per object. Any membership change drops the whole map:
	// models are built once and read many times, so a coarse invalidation
	// keeps Add/Remove cheap while the steady state hits the cache.
	extents map[*Class][]*Object
}

// NewModel creates an empty model conforming to the given metamodel package.
func NewModel(name string, metamodel *Package) *Model {
	return &Model{
		name:      name,
		metamodel: metamodel,
		members:   make(map[*Object]bool),
		byXID:     make(map[string]*Object),
	}
}

// Name returns the model's name.
func (m *Model) Name() string { return m.name }

// Metamodel returns the package this model conforms to.
func (m *Model) Metamodel() *Package { return m.metamodel }

// Create instantiates the named class (resolved in the model's metamodel)
// and adds the instance to the model.
func (m *Model) Create(className string) (*Object, error) {
	c, ok := m.metamodel.FindClass(className)
	if !ok {
		return nil, fmt.Errorf("metamodel: model %q: unknown class %q in metamodel %q",
			m.name, className, m.metamodel.QualifiedName())
	}
	o, err := NewObject(c)
	if err != nil {
		return nil, err
	}
	m.Add(o)
	return o, nil
}

// MustCreate is Create that panics on error, for fixture construction.
func (m *Model) MustCreate(className string) *Object {
	o, err := m.Create(className)
	if err != nil {
		panic(err)
	}
	return o
}

// Add registers an externally created object with the model. Adding the same
// object twice is a no-op.
func (m *Model) Add(o *Object) {
	if o == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.members[o] {
		return
	}
	m.members[o] = true
	m.objects = append(m.objects, o)
	m.extents = nil
	if o.XID() != "" {
		m.byXID[o.XID()] = o
	}
}

// Remove deletes an object from the model (references from other objects are
// left to the caller to clean up; the validator reports dangling ones).
func (m *Model) Remove(o *Object) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.members[o] {
		return
	}
	delete(m.members, o)
	m.extents = nil
	for i, existing := range m.objects {
		if existing == o {
			m.objects = append(m.objects[:i], m.objects[i+1:]...)
			break
		}
	}
	if o.XID() != "" {
		delete(m.byXID, o.XID())
	}
}

// Objects returns a snapshot of all objects in insertion order.
func (m *Model) Objects() []*Object {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]*Object(nil), m.objects...)
}

// Len returns the number of objects in the model.
func (m *Model) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.objects)
}

// AllInstances returns all objects whose class conforms to the given class,
// in insertion order. It is the reflective backbone of OCL's allInstances().
// The extent is computed once per class and memoized until the model's
// membership changes; the returned slice is shared with the cache and must
// not be mutated by callers (it is clipped, so appends copy).
func (m *Model) AllInstances(c *Class) []*Object {
	m.mu.RLock()
	out, ok := m.extents[c]
	m.mu.RUnlock()
	if ok {
		return out
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if out, ok := m.extents[c]; ok {
		return out
	}
	for _, o := range m.objects {
		if o.IsA(c) {
			out = append(out, o)
		}
	}
	out = out[:len(out):len(out)]
	if m.extents == nil {
		m.extents = make(map[*Class][]*Object)
	}
	m.extents[c] = out
	return out
}

// AllInstancesOf resolves the class by name and returns its extent.
func (m *Model) AllInstancesOf(className string) ([]*Object, error) {
	c, ok := m.metamodel.FindClass(className)
	if !ok {
		return nil, fmt.Errorf("metamodel: unknown class %q in metamodel %q",
			className, m.metamodel.QualifiedName())
	}
	return m.AllInstances(c), nil
}

// ByXID returns the object with the given external id, if any.
func (m *Model) ByXID(id string) (*Object, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	o, ok := m.byXID[id]
	return o, ok
}

// AssignXIDs gives every object without an external id a deterministic one
// derived from its class name and position, so serialization is stable.
func (m *Model) AssignXIDs() {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Index ids assigned after Add (SetXID does not know about the model).
	for _, o := range m.objects {
		if o.XID() != "" {
			m.byXID[o.XID()] = o
		}
	}
	counters := map[string]int{}
	for _, o := range m.objects {
		if o.XID() != "" {
			continue
		}
		base := o.Class().Name()
		counters[base]++
		id := fmt.Sprintf("%s.%d", base, counters[base])
		for {
			if _, taken := m.byXID[id]; !taken {
				break
			}
			counters[base]++
			id = fmt.Sprintf("%s.%d", base, counters[base])
		}
		o.SetXID(id)
		m.byXID[id] = o
	}
}

// FindByName returns the first object of the given class (or subclass) whose
// "name" slot equals name.
func (m *Model) FindByName(className, name string) (*Object, bool) {
	objs, err := m.AllInstancesOf(className)
	if err != nil {
		return nil, false
	}
	for _, o := range objs {
		if o.GetString("name") == name {
			return o, true
		}
	}
	return nil, false
}

// Stats summarizes the model: instance counts per class, sorted by class name.
func (m *Model) Stats() []ClassCount {
	m.mu.RLock()
	defer m.mu.RUnlock()
	counts := map[string]int{}
	for _, o := range m.objects {
		counts[o.Class().Name()]++
	}
	out := make([]ClassCount, 0, len(counts))
	for name, n := range counts {
		out = append(out, ClassCount{Class: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// ClassCount pairs a class name with its instance count.
type ClassCount struct {
	// Class is the simple class name.
	Class string
	// Count is the number of (direct) instances in the model.
	Count int
}

// CrossReferences returns, for every object in the model, the objects it
// references through any slot. Used by generic deletion analysis and the
// dangling-reference check.
func (m *Model) CrossReferences(o *Object) []*Object {
	var out []*Object
	for _, prop := range o.SetProperties() {
		v, _ := o.Get(prop)
		switch t := v.(type) {
		case Ref:
			if t.Target != nil {
				out = append(out, t.Target)
			}
		case *List:
			for _, item := range t.Items {
				if r, ok := item.(Ref); ok && r.Target != nil {
					out = append(out, r.Target)
				}
			}
		}
	}
	return out
}

// Contains reports whether the object is part of this model.
func (m *Model) Contains(o *Object) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.members[o]
}
