package metamodel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// Value is the runtime representation of a slot value. The concrete types are
// String, Int, Bool, Real, EnumLit, Ref (a reference to another Object) and
// List (an ordered collection of Values).
type Value interface {
	// Kind reports the value's runtime sort.
	Kind() ValueKind
	// String renders the value for diagnostics and diagrams.
	String() string
	// Equal reports deep value equality.
	Equal(other Value) bool
}

// ValueKind discriminates the runtime value sorts.
type ValueKind int

// Runtime value sorts.
const (
	VString ValueKind = iota
	VInt
	VBool
	VReal
	VEnum
	VRef
	VList
)

// String returns the kind name.
func (k ValueKind) String() string {
	switch k {
	case VString:
		return "String"
	case VInt:
		return "Integer"
	case VBool:
		return "Boolean"
	case VReal:
		return "Real"
	case VEnum:
		return "EnumLiteral"
	case VRef:
		return "Reference"
	case VList:
		return "List"
	default:
		return fmt.Sprintf("ValueKind(%d)", int(k))
	}
}

// String is a string-valued slot value.
type String string

// Kind reports VString.
func (String) Kind() ValueKind { return VString }

// String renders the value quoted.
func (s String) String() string { return strconv.Quote(string(s)) }

// Equal reports equality with another String.
func (s String) Equal(o Value) bool { t, ok := o.(String); return ok && s == t }

// Int is an integer-valued slot value.
type Int int64

// Kind reports VInt.
func (Int) Kind() ValueKind { return VInt }

// String renders the integer in base 10.
func (i Int) String() string { return strconv.FormatInt(int64(i), 10) }

// Equal reports equality with another Int.
func (i Int) Equal(o Value) bool { t, ok := o.(Int); return ok && i == t }

// Bool is a boolean-valued slot value.
type Bool bool

// Kind reports VBool.
func (Bool) Kind() ValueKind { return VBool }

// String renders "true" or "false".
func (b Bool) String() string { return strconv.FormatBool(bool(b)) }

// Equal reports equality with another Bool.
func (b Bool) Equal(o Value) bool { t, ok := o.(Bool); return ok && b == t }

// Real is a floating-point slot value.
type Real float64

// Kind reports VReal.
func (Real) Kind() ValueKind { return VReal }

// String renders the float with minimal digits.
func (r Real) String() string { return strconv.FormatFloat(float64(r), 'g', -1, 64) }

// Equal reports equality with another Real.
func (r Real) Equal(o Value) bool { t, ok := o.(Real); return ok && r == t }

// EnumLit is an enumeration literal value.
type EnumLit struct {
	// Enum is the owning enumeration.
	Enum *Enumeration
	// Literal is the literal name; it must be one of Enum.Literals().
	Literal string
}

// Kind reports VEnum.
func (EnumLit) Kind() ValueKind { return VEnum }

// String renders Enum::Literal.
func (e EnumLit) String() string {
	if e.Enum == nil {
		return e.Literal
	}
	return e.Enum.Name() + "::" + e.Literal
}

// Equal reports equality of enumeration and literal.
func (e EnumLit) Equal(o Value) bool {
	t, ok := o.(EnumLit)
	return ok && e.Enum == t.Enum && e.Literal == t.Literal
}

// Ref is a reference to another model object.
type Ref struct {
	// Target is the referenced object; never nil in a well-formed model.
	Target *Object
}

// Kind reports VRef.
func (Ref) Kind() ValueKind { return VRef }

// String renders the target's class and id.
func (r Ref) String() string {
	if r.Target == nil {
		return "<nil-ref>"
	}
	return r.Target.Label()
}

// Equal reports identity of the referenced object.
func (r Ref) Equal(o Value) bool { t, ok := o.(Ref); return ok && r.Target == t.Target }

// List is an ordered collection of values, used for multi-valued slots.
type List struct {
	// Items holds the elements in order.
	Items []Value
}

// Kind reports VList.
func (*List) Kind() ValueKind { return VList }

// String renders the list as {a, b, c}.
func (l *List) String() string {
	parts := make([]string, len(l.Items))
	for i, v := range l.Items {
		parts[i] = v.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Equal reports elementwise equality.
func (l *List) Equal(o Value) bool {
	t, ok := o.(*List)
	if !ok || len(l.Items) != len(t.Items) {
		return false
	}
	for i := range l.Items {
		if !l.Items[i].Equal(t.Items[i]) {
			return false
		}
	}
	return true
}

// NewList builds a List from the given items.
func NewList(items ...Value) *List { return &List{Items: items} }

// objectSeq supplies process-unique object ids.
var objectSeq atomic.Uint64

// Object is an instance of a metamodel Class. Slots are keyed by property
// name; absent keys mean "unset". Objects carry a process-unique id and an
// optional stable external id used by XMI.
type Object struct {
	id    uint64
	xid   string // external (serialization) id; may be empty
	class *Class
	slots map[string]Value
}

// NewObject instantiates the given class. Instantiating an abstract class is
// rejected because no well-formed model may contain such an instance.
func NewObject(class *Class) (*Object, error) {
	if class == nil {
		return nil, fmt.Errorf("metamodel: NewObject with nil class")
	}
	if class.IsAbstract() {
		return nil, fmt.Errorf("metamodel: cannot instantiate abstract class %q", class.QualifiedName())
	}
	return &Object{
		id:    objectSeq.Add(1),
		class: class,
		slots: make(map[string]Value),
	}, nil
}

// MustNewObject is NewObject that panics on error, for model-construction
// code where the class is statically known to be concrete.
func MustNewObject(class *Class) *Object {
	o, err := NewObject(class)
	if err != nil {
		panic(err)
	}
	return o
}

// ID returns the process-unique numeric id.
func (o *Object) ID() uint64 { return o.id }

// XID returns the stable external id used for serialization, or "".
func (o *Object) XID() string { return o.xid }

// SetXID sets the stable external id used for serialization.
func (o *Object) SetXID(id string) { o.xid = id }

// Class returns the object's metaclass.
func (o *Object) Class() *Class { return o.class }

// IsA reports whether the object's class conforms to the given class.
func (o *Object) IsA(c *Class) bool { return o.class.ConformsTo(c) }

// Label renders a short human-readable identifier: the "name" slot if set,
// otherwise the class name and numeric id.
func (o *Object) Label() string {
	if v, ok := o.slots["name"]; ok {
		if s, ok := v.(String); ok && s != "" {
			return fmt.Sprintf("%s(%s)", o.class.Name(), string(s))
		}
	}
	return fmt.Sprintf("%s#%d", o.class.Name(), o.id)
}

// Set assigns a slot value after checking that the property exists on the
// object's class and that the value's kind conforms to the property's type
// and multiplicity.
func (o *Object) Set(property string, v Value) error {
	p, ok := o.class.Property(property)
	if !ok {
		return fmt.Errorf("metamodel: class %q has no property %q", o.class.QualifiedName(), property)
	}
	if v == nil {
		delete(o.slots, property)
		return nil
	}
	if err := checkAssignable(p, v); err != nil {
		return err
	}
	o.slots[property] = v
	return nil
}

// MustSet is Set that panics on error, for construction of statically-known
// well-typed models (e.g. the built-in metamodel fixtures).
func (o *Object) MustSet(property string, v Value) *Object {
	if err := o.Set(property, v); err != nil {
		panic(err)
	}
	return o
}

// SetString assigns a String slot.
func (o *Object) SetString(property, s string) error { return o.Set(property, String(s)) }

// SetInt assigns an Int slot.
func (o *Object) SetInt(property string, i int64) error { return o.Set(property, Int(i)) }

// SetBool assigns a Bool slot.
func (o *Object) SetBool(property string, b bool) error { return o.Set(property, Bool(b)) }

// Get returns the slot value, falling back to the property default; the
// boolean reports whether any value (set or default) was found.
func (o *Object) Get(property string) (Value, bool) {
	if v, ok := o.slots[property]; ok {
		return v, true
	}
	if p, ok := o.class.Property(property); ok && p.Default() != nil {
		return p.Default(), true
	}
	return nil, false
}

// GetString returns a string slot, or "" if unset or of another kind.
func (o *Object) GetString(property string) string {
	if v, ok := o.Get(property); ok {
		if s, ok := v.(String); ok {
			return string(s)
		}
	}
	return ""
}

// GetInt returns an integer slot, or 0 if unset or of another kind.
func (o *Object) GetInt(property string) int64 {
	if v, ok := o.Get(property); ok {
		if i, ok := v.(Int); ok {
			return int64(i)
		}
	}
	return 0
}

// GetBool returns a boolean slot, or false if unset or of another kind.
func (o *Object) GetBool(property string) bool {
	if v, ok := o.Get(property); ok {
		if b, ok := v.(Bool); ok {
			return bool(b)
		}
	}
	return false
}

// GetRef returns the object referenced by a single-valued reference slot,
// or nil if unset.
func (o *Object) GetRef(property string) *Object {
	if v, ok := o.Get(property); ok {
		if r, ok := v.(Ref); ok {
			return r.Target
		}
	}
	return nil
}

// GetList returns the items of a multi-valued slot, or nil if unset. The
// returned slice is the live backing slice; callers must not mutate it.
func (o *Object) GetList(property string) []Value {
	if v, ok := o.Get(property); ok {
		if l, ok := v.(*List); ok {
			return l.Items
		}
	}
	return nil
}

// GetRefs returns the objects referenced by a multi-valued reference slot.
func (o *Object) GetRefs(property string) []*Object {
	items := o.GetList(property)
	out := make([]*Object, 0, len(items))
	for _, v := range items {
		if r, ok := v.(Ref); ok && r.Target != nil {
			out = append(out, r.Target)
		}
	}
	return out
}

// Append adds a value to a multi-valued slot, creating the list on first use.
func (o *Object) Append(property string, v Value) error {
	p, ok := o.class.Property(property)
	if !ok {
		return fmt.Errorf("metamodel: class %q has no property %q", o.class.QualifiedName(), property)
	}
	if !p.IsMany() {
		return fmt.Errorf("metamodel: property %q is single-valued; use Set", p.QualifiedName())
	}
	if err := checkElementAssignable(p, v); err != nil {
		return err
	}
	cur, _ := o.slots[property].(*List)
	if cur == nil {
		cur = &List{}
		o.slots[property] = cur
	}
	if p.Upper() != Unbounded && len(cur.Items) >= p.Upper() {
		return fmt.Errorf("metamodel: property %q exceeds upper bound %d", p.QualifiedName(), p.Upper())
	}
	cur.Items = append(cur.Items, v)
	return nil
}

// MustAppend is Append that panics on error.
func (o *Object) MustAppend(property string, v Value) *Object {
	if err := o.Append(property, v); err != nil {
		panic(err)
	}
	return o
}

// AppendRef appends a reference to a multi-valued slot.
func (o *Object) AppendRef(property string, target *Object) error {
	return o.Append(property, Ref{Target: target})
}

// Unset removes a slot value.
func (o *Object) Unset(property string) { delete(o.slots, property) }

// IsSet reports whether the slot holds an explicit value (defaults excluded).
func (o *Object) IsSet(property string) bool {
	_, ok := o.slots[property]
	return ok
}

// SetProperties returns the names of explicitly set slots in sorted order.
func (o *Object) SetProperties() []string {
	out := make([]string, 0, len(o.slots))
	for k := range o.slots {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// checkAssignable verifies that v conforms to p's type and shape (single vs
// multi-valued).
func checkAssignable(p *Property, v Value) error {
	if p.IsMany() {
		l, ok := v.(*List)
		if !ok {
			return fmt.Errorf("metamodel: property %q is multi-valued; expected List, got %s",
				p.QualifiedName(), v.Kind())
		}
		if p.Upper() != Unbounded && len(l.Items) > p.Upper() {
			return fmt.Errorf("metamodel: property %q exceeds upper bound %d", p.QualifiedName(), p.Upper())
		}
		for _, item := range l.Items {
			if err := checkElementAssignable(p, item); err != nil {
				return err
			}
		}
		return nil
	}
	return checkElementAssignable(p, v)
}

// checkElementAssignable verifies a single element against p's type.
func checkElementAssignable(p *Property, v Value) error {
	if v == nil {
		return fmt.Errorf("metamodel: nil value for property %q", p.QualifiedName())
	}
	switch t := p.Type().(type) {
	case *Class:
		r, ok := v.(Ref)
		if !ok {
			return fmt.Errorf("metamodel: property %q expects a reference to %q, got %s",
				p.QualifiedName(), t.QualifiedName(), v.Kind())
		}
		if r.Target == nil {
			return fmt.Errorf("metamodel: nil reference for property %q", p.QualifiedName())
		}
		if !r.Target.IsA(t) {
			return fmt.Errorf("metamodel: property %q expects %q, got instance of %q",
				p.QualifiedName(), t.QualifiedName(), r.Target.Class().QualifiedName())
		}
	case *Enumeration:
		e, ok := v.(EnumLit)
		if !ok {
			return fmt.Errorf("metamodel: property %q expects enumeration %q, got %s",
				p.QualifiedName(), t.QualifiedName(), v.Kind())
		}
		if e.Enum != t {
			return fmt.Errorf("metamodel: property %q expects enumeration %q, got %q",
				p.QualifiedName(), t.QualifiedName(), e.String())
		}
		if !t.Has(e.Literal) {
			return fmt.Errorf("metamodel: %q is not a literal of enumeration %q",
				e.Literal, t.QualifiedName())
		}
	case *DataType:
		want := primKind(t.Base())
		if v.Kind() != want {
			return fmt.Errorf("metamodel: property %q expects %s, got %s",
				p.QualifiedName(), want, v.Kind())
		}
	default:
		return fmt.Errorf("metamodel: property %q has unsupported type kind", p.QualifiedName())
	}
	return nil
}

func primKind(p Primitive) ValueKind {
	switch p {
	case PrimString:
		return VString
	case PrimInteger:
		return VInt
	case PrimBoolean:
		return VBool
	case PrimReal:
		return VReal
	default:
		return VString
	}
}
