package metamodel

import (
	"testing"
	"testing/quick"
)

// TestQuickValueEqualReflexive checks that every primitive Value is equal to
// itself and renders a non-empty string.
func TestQuickValueEqualReflexive(t *testing.T) {
	f := func(s string, i int64, b bool, r float64) bool {
		vals := []Value{String(s), Int(i), Bool(b), Real(r)}
		for _, v := range vals {
			if !v.Equal(v) {
				return false
			}
			if v.String() == "" && v.Kind() != VString {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickValueEqualSymmetric checks a.Equal(b) == b.Equal(a) across kinds.
func TestQuickValueEqualSymmetric(t *testing.T) {
	f := func(a, b string, i, j int64) bool {
		vals := []Value{String(a), String(b), Int(i), Int(j)}
		for _, x := range vals {
			for _, y := range vals {
				if x.Equal(y) != y.Equal(x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStringSlotRoundTrip checks that arbitrary strings survive the
// slot set/get round trip unchanged.
func TestQuickStringSlotRoundTrip(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	f := func(s string) bool {
		o := MustNewObject(lion)
		if err := o.SetString("name", s); err != nil {
			return false
		}
		return o.GetString("name") == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickListAppendPreservesOrder checks that Append preserves insertion
// order for arbitrary string sequences.
func TestQuickListAppendPreservesOrder(t *testing.T) {
	p := NewPackage("Q")
	str := p.AddDataType("String", PrimString)
	c := p.AddClass("C")
	c.AddProperty("items", str, 0, Unbounded)
	f := func(items []string) bool {
		o := MustNewObject(c)
		for _, s := range items {
			if err := o.Append("items", String(s)); err != nil {
				return false
			}
		}
		got := o.GetList("items")
		if len(got) != len(items) {
			return false
		}
		for i, s := range items {
			if got[i] != String(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMultiplicityNeverViolatedByAPI checks that no sequence of Append
// calls can push a bounded slot past its upper bound: the kernel rejects the
// overflow instead.
func TestQuickMultiplicityNeverViolatedByAPI(t *testing.T) {
	p := NewPackage("Q")
	str := p.AddDataType("String", PrimString)
	c := p.AddClass("C")
	c.AddProperty("capped", str, 0, 3)
	m := NewModel("q", p)
	f := func(n uint8) bool {
		o := MustNewObject(c)
		m.Add(o)
		defer m.Remove(o)
		count := int(n%8) + 1
		okCount := 0
		for i := 0; i < count; i++ {
			if err := o.Append("capped", String("x")); err == nil {
				okCount++
			}
		}
		if okCount > 3 {
			return false
		}
		return len(checkObject(m, o, map[*Object]bool{o: true})) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickXIDAssignmentUnique checks that AssignXIDs never produces
// duplicate ids regardless of how many objects exist.
func TestQuickXIDAssignmentUnique(t *testing.T) {
	zoo, _, _ := fixture(t)
	f := func(nLions, nGazelles uint8) bool {
		m := NewModel("q", zoo)
		for i := 0; i < int(nLions%32); i++ {
			m.MustCreate("Lion")
		}
		for i := 0; i < int(nGazelles%32); i++ {
			m.MustCreate("Gazelle")
		}
		m.AssignXIDs()
		seen := map[string]bool{}
		for _, o := range m.Objects() {
			if o.XID() == "" || seen[o.XID()] {
				return false
			}
			seen[o.XID()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
