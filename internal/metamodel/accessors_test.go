package metamodel

import (
	"testing"
)

func TestPackageListingsAndLookups(t *testing.T) {
	zoo, str, intT := fixture(t)
	if got := zoo.Enumerations(); len(got) != 1 || got[0].Name() != "Diet" {
		t.Fatalf("Enumerations = %v", got)
	}
	if got := zoo.DataTypes(); len(got) != 2 || got[0] != str || got[1] != intT {
		t.Fatalf("DataTypes = %v", got)
	}
	if d, ok := zoo.DataType("String"); !ok || d != str {
		t.Fatal("DataType lookup failed")
	}
	if _, ok := zoo.DataType("Missing"); ok {
		t.Fatal("phantom data type")
	}
	sub := zoo.AddPackage("Sub")
	if got, ok := zoo.Package("Sub"); !ok || got != sub {
		t.Fatal("Package lookup failed")
	}
	if _, ok := zoo.Package("Missing"); ok {
		t.Fatal("phantom package")
	}
}

func TestFindClassifierAcrossKindsAndImports(t *testing.T) {
	zoo, str, _ := fixture(t)
	if c, ok := zoo.FindClassifier("Lion"); !ok || c.ClassifierKind() != KindClass {
		t.Fatal("class not found")
	}
	if c, ok := zoo.FindClassifier("Diet"); !ok || c.ClassifierKind() != KindEnumeration {
		t.Fatal("enum not found")
	}
	if c, ok := zoo.FindClassifier("String"); !ok || c != str {
		t.Fatal("data type not found")
	}
	if _, ok := zoo.FindClassifier("Ghost"); ok {
		t.Fatal("phantom classifier")
	}
	// Through a nested package.
	sub := zoo.AddPackage("Nested")
	nested := sub.AddClass("Inner")
	if c, ok := zoo.FindClassifier("Inner"); !ok || c != Classifier(nested) {
		t.Fatal("nested classifier not found")
	}
	// Through an import.
	other := NewPackage("Other")
	imported := other.AddClass("Imported")
	zoo.Import(other)
	zoo.Import(other) // duplicate import is a no-op
	zoo.Import(zoo)   // self-import is a no-op
	zoo.Import(nil)   // nil import is a no-op
	if got := zoo.Imports(); len(got) != 1 || got[0] != other {
		t.Fatalf("Imports = %v", got)
	}
	if c, ok := zoo.FindClass("Imported"); !ok || c != imported {
		t.Fatal("imported class not found")
	}
	if c, ok := zoo.FindClassifier("Imported"); !ok || c != Classifier(imported) {
		t.Fatal("imported classifier not found")
	}
}

func TestClassIntrospection(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	animal, _ := zoo.Class("Animal")
	if lion.Package() != zoo {
		t.Fatal("Package accessor wrong")
	}
	if supers := lion.Supers(); len(supers) != 1 || supers[0] != animal {
		t.Fatalf("Supers = %v", supers)
	}
	if all := lion.AllSupers(); len(all) != 1 || all[0] != animal {
		t.Fatalf("AllSupers = %v", all)
	}
	// Diamond: D -> B, C -> A yields A once.
	p := NewPackage("D")
	a := p.AddClass("A")
	b := p.AddClass("B")
	c := p.AddClass("C")
	b.AddSuper(a)
	c.AddSuper(a)
	d := p.AddClass("Dd")
	d.AddSuper(b)
	d.AddSuper(c)
	if all := d.AllSupers(); len(all) != 3 {
		t.Fatalf("diamond AllSupers = %v", all)
	}
	if own := lion.OwnProperties(); len(own) != 1 || own[0].Name() != "prey" {
		t.Fatalf("OwnProperties = %v", own)
	}
	// SetAbstract builder form.
	x := p.AddClass("X").SetAbstract()
	if !x.IsAbstract() {
		t.Fatal("SetAbstract failed")
	}
}

func TestPropertyIntrospection(t *testing.T) {
	zoo, str, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	prey, _ := lion.Property("prey")
	if prey.Owner() != lion {
		t.Fatal("Owner wrong")
	}
	if prey.QualifiedName() != "Zoo.Lion.prey" {
		t.Fatalf("QualifiedName = %q", prey.QualifiedName())
	}
	if prey.IsRequired() {
		t.Fatal("0..* should not be required")
	}
	req := lion.AddProperty("mandatory", str, 1, 1)
	if !req.IsRequired() {
		t.Fatal("1..1 should be required")
	}
	comp := lion.AddRefs("cubs", lion).SetComposite()
	if !comp.IsComposite() {
		t.Fatal("SetComposite failed")
	}
}

func TestEnumAndDataTypeIdentity(t *testing.T) {
	zoo, str, _ := fixture(t)
	diet, _ := zoo.Enumeration("Diet")
	if diet.QualifiedName() != "Zoo.Diet" {
		t.Fatalf("enum QualifiedName = %q", diet.QualifiedName())
	}
	if str.Name() != "String" || str.QualifiedName() != "Zoo.String" {
		t.Fatalf("datatype identity: %q %q", str.Name(), str.QualifiedName())
	}
}

func TestObjectAccessors(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	gazelle, _ := zoo.Class("Gazelle")
	l := MustNewObject(lion)
	g := MustNewObject(gazelle)
	if l.ID() == 0 || l.ID() == g.ID() {
		t.Fatal("IDs not unique")
	}
	g.MustSet("name", String("Gia"))
	l.MustAppend("prey", Ref{Target: g})
	// Single-valued ref accessor via a fresh property.
	encl, _ := zoo.Class("Enclosure")
	e := MustNewObject(encl)
	e.MustSet("name", String("Savanna"))
	e.MustAppend("occupants", Ref{Target: l})
	if got := e.GetRefs("occupants"); len(got) != 1 || got[0] != l {
		t.Fatal("GetRefs wrong")
	}
	// GetRef on unset and non-ref slots.
	node := zoo.AddClass("WithRef")
	node.AddRef("one", lion)
	o := MustNewObject(node)
	if o.GetRef("one") != nil {
		t.Fatal("unset GetRef should be nil")
	}
	o.MustSet("one", Ref{Target: l})
	if o.GetRef("one") != l {
		t.Fatal("GetRef wrong")
	}
	// SetBool round trip.
	p := NewPackage("B")
	boolT := p.AddDataType("Boolean", PrimBoolean)
	cls := p.AddClass("Flags")
	cls.AddAttr("on", boolT)
	fo := MustNewObject(cls)
	if err := fo.SetBool("on", true); err != nil {
		t.Fatal(err)
	}
	if !fo.GetBool("on") {
		t.Fatal("SetBool/GetBool round trip failed")
	}
}

func TestValueKindsAndEquality(t *testing.T) {
	zoo, _, _ := fixture(t)
	diet, _ := zoo.Enumeration("Diet")
	lion, _ := zoo.Class("Lion")
	l := MustNewObject(lion)

	if (Bool(true)).Kind() != VBool || (Real(1)).Kind() != VReal {
		t.Fatal("kinds wrong")
	}
	el := EnumLit{Enum: diet, Literal: "Carnivore"}
	if el.Kind() != VEnum || el.String() != "Diet::Carnivore" {
		t.Fatalf("enum lit rendering: %q", el.String())
	}
	bare := EnumLit{Literal: "Loose"}
	if bare.String() != "Loose" {
		t.Fatalf("bare literal rendering: %q", bare.String())
	}
	if !el.Equal(el) || el.Equal(EnumLit{Enum: diet, Literal: "Herbivore"}) || el.Equal(String("x")) {
		t.Fatal("enum equality wrong")
	}
	r := Ref{Target: l}
	if r.Kind() != VRef || !r.Equal(Ref{Target: l}) || r.Equal(Ref{}) || r.Equal(Int(1)) {
		t.Fatal("ref equality wrong")
	}
	if (&List{}).Kind() != VList {
		t.Fatal("list kind wrong")
	}
	if NewList(Int(1)).Equal(Int(1)) {
		t.Fatal("list vs scalar equality")
	}
}

func TestModelMetamodelAccessor(t *testing.T) {
	zoo, _, _ := fixture(t)
	m := NewModel("m", zoo)
	if m.Metamodel() != zoo {
		t.Fatal("Metamodel accessor wrong")
	}
}

func TestProcessWideRegistry(t *testing.T) {
	p := NewPackage("ProcessWideRegistryTest")
	if err := Register(p); err != nil {
		t.Fatal(err)
	}
	MustRegister(p) // re-registering the same package is fine
	got, ok := Lookup("ProcessWideRegistryTest")
	if !ok || got != p {
		t.Fatal("process-wide lookup failed")
	}
	found := false
	for _, name := range RegisteredNames() {
		if name == "ProcessWideRegistryTest" {
			found = true
		}
	}
	if !found {
		t.Fatal("name missing from RegisteredNames")
	}
	// MustRegister panics on conflict.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustRegister(NewPackage("ProcessWideRegistryTest"))
}

func TestSortedNames(t *testing.T) {
	got := SortedNames(map[string]int{"b": 1, "a": 2, "c": 3})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedNames = %v", got)
	}
}

func TestDuplicatePropertyAndEmptyNamePanics(t *testing.T) {
	zoo, str, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	for _, f := range []func(){
		func() { lion.AddProperty("prey", str, 0, 1) }, // duplicate
		func() { lion.AddProperty("", str, 0, 1) },     // empty
		func() { lion.AddProperty("nilType", nil, 0, 1) },
		func() { lion.AddSuper(nil) },
		func() { zoo.AddClass("") },
		func() { zoo.AddDataType("String", PrimString) }, // clash with existing
		func() { zoo.AddPackage("Lion"); zoo.AddClass("Lion") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
