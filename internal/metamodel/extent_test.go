package metamodel

import (
	"sync"
	"testing"
)

// TestExtentCacheInvalidation checks the memoized AllInstances extents:
// repeated queries return the cached slice, Add and Remove invalidate it,
// and results always reflect the current membership in insertion order.
func TestExtentCacheInvalidation(t *testing.T) {
	m, zoo := newZooModel(t)
	animal, _ := zoo.Class("Animal")

	l1 := m.MustCreate("Lion")
	l2 := m.MustCreate("Lion")
	got := m.AllInstances(animal)
	if len(got) != 2 || got[0] != l1 || got[1] != l2 {
		t.Fatalf("AllInstances = %v, want [l1 l2]", got)
	}

	// A hit must not rebuild: same backing array on the second call.
	again := m.AllInstances(animal)
	if &again[0] != &got[0] {
		t.Fatal("second AllInstances call rebuilt the extent instead of hitting the cache")
	}

	// Create (which Adds) invalidates; the new object appears, in order.
	g := m.MustCreate("Gazelle")
	got = m.AllInstances(animal)
	if len(got) != 3 || got[2] != g {
		t.Fatalf("after create: AllInstances = %v, want l1,l2,g", got)
	}

	// Remove invalidates too.
	m.Remove(l1)
	got = m.AllInstances(animal)
	if len(got) != 2 || got[0] != l2 || got[1] != g {
		t.Fatalf("after remove: AllInstances = %v, want l2,g", got)
	}

	// The cached slice is clipped: appending to it must not corrupt the
	// cache for the next caller.
	_ = append(m.AllInstances(animal), l1)
	got = m.AllInstances(animal)
	if len(got) != 2 {
		t.Fatalf("caller append corrupted the cached extent: %v", got)
	}
}

// TestExtentCacheConcurrentReads hammers AllInstances from many
// goroutines with interleaved writes; the race detector referees.
func TestExtentCacheConcurrentReads(t *testing.T) {
	m, zoo := newZooModel(t)
	animal, _ := zoo.Class("Animal")
	lion, _ := zoo.Class("Lion")
	for i := 0; i < 8; i++ {
		m.MustCreate("Lion")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if n := len(m.AllInstances(animal)); n < 8 {
					t.Errorf("extent shrank below seed size: %d", n)
					return
				}
				_ = m.AllInstances(lion)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			m.MustCreate("Gazelle")
		}
	}()
	wg.Wait()
}
