package metamodel

import (
	"strings"
	"testing"
)

func TestNewObjectRejectsAbstract(t *testing.T) {
	zoo, _, _ := fixture(t)
	animal, _ := zoo.Class("Animal")
	if _, err := NewObject(animal); err == nil {
		t.Fatal("instantiating abstract class should fail")
	}
	if _, err := NewObject(nil); err == nil {
		t.Fatal("instantiating nil class should fail")
	}
}

func TestSetGetPrimitiveSlots(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	o := MustNewObject(lion)
	if err := o.SetString("name", "Simba"); err != nil {
		t.Fatal(err)
	}
	if err := o.SetInt("age", 4); err != nil {
		t.Fatal(err)
	}
	if o.GetString("name") != "Simba" || o.GetInt("age") != 4 {
		t.Fatal("round trip failed")
	}
	if o.GetString("missing") != "" || o.GetInt("missing") != 0 || o.GetBool("missing") {
		t.Fatal("zero values for unset slots expected")
	}
}

func TestSetUnknownProperty(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	o := MustNewObject(lion)
	err := o.SetString("color", "golden")
	if err == nil || !strings.Contains(err.Error(), "no property") {
		t.Fatalf("err = %v, want unknown-property error", err)
	}
}

func TestSetWrongKind(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	o := MustNewObject(lion)
	if err := o.Set("name", Int(3)); err == nil {
		t.Fatal("Int into String slot should fail")
	}
	if err := o.Set("age", String("four")); err == nil {
		t.Fatal("String into Integer slot should fail")
	}
}

func TestEnumSlots(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	diet, _ := zoo.Enumeration("Diet")
	o := MustNewObject(lion)
	if err := o.Set("diet", EnumLit{Enum: diet, Literal: "Carnivore"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Set("diet", EnumLit{Enum: diet, Literal: "Vegan"}); err == nil {
		t.Fatal("unknown literal should fail")
	}
	other := NewPackage("X").AddEnumeration("Diet", "Carnivore")
	if err := o.Set("diet", EnumLit{Enum: other, Literal: "Carnivore"}); err == nil {
		t.Fatal("literal of foreign enumeration should fail")
	}
	if err := o.Set("diet", String("Carnivore")); err == nil {
		t.Fatal("string into enum slot should fail")
	}
}

func TestReferenceSlots(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	gazelle, _ := zoo.Class("Gazelle")
	encl, _ := zoo.Class("Enclosure")

	l := MustNewObject(lion)
	g := MustNewObject(gazelle)
	e := MustNewObject(encl)

	if err := l.AppendRef("prey", g); err != nil {
		t.Fatal(err)
	}
	// Lion conforms to Animal, so a lion can prey on a lion.
	if err := l.AppendRef("prey", l); err != nil {
		t.Fatal(err)
	}
	// An enclosure is not an Animal.
	if err := l.AppendRef("prey", e); err == nil {
		t.Fatal("Enclosure into Animal-typed slot should fail")
	}
	refs := l.GetRefs("prey")
	if len(refs) != 2 || refs[0] != g || refs[1] != l {
		t.Fatalf("GetRefs = %v", refs)
	}
}

func TestAppendOnSingleValuedFails(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	o := MustNewObject(lion)
	if err := o.Append("name", String("x")); err == nil {
		t.Fatal("Append on single-valued property should fail")
	}
}

func TestSetNilDeletes(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	o := MustNewObject(lion)
	o.MustSet("name", String("Simba"))
	if !o.IsSet("name") {
		t.Fatal("name should be set")
	}
	if err := o.Set("name", nil); err != nil {
		t.Fatal(err)
	}
	if o.IsSet("name") {
		t.Fatal("name should be unset after Set(nil)")
	}
}

func TestUpperBoundEnforced(t *testing.T) {
	p := NewPackage("M")
	str := p.AddDataType("String", PrimString)
	c := p.AddClass("C")
	c.AddProperty("pair", str, 0, 2)
	o := MustNewObject(c)
	if err := o.Append("pair", String("a")); err != nil {
		t.Fatal(err)
	}
	if err := o.Append("pair", String("b")); err != nil {
		t.Fatal(err)
	}
	if err := o.Append("pair", String("c")); err == nil {
		t.Fatal("third element should exceed upper bound 2")
	}
	// Set with oversized list also fails.
	if err := o.Set("pair", NewList(String("a"), String("b"), String("c"))); err == nil {
		t.Fatal("oversized list should fail")
	}
}

func TestDefaults(t *testing.T) {
	p := NewPackage("M")
	str := p.AddDataType("String", PrimString)
	c := p.AddClass("C")
	c.AddAttr("status", str).SetDefault(String("open"))
	o := MustNewObject(c)
	if got := o.GetString("status"); got != "open" {
		t.Fatalf("default = %q, want open", got)
	}
	o.MustSet("status", String("closed"))
	if got := o.GetString("status"); got != "closed" {
		t.Fatalf("after set = %q", got)
	}
	if o.IsSet("status") != true {
		t.Fatal("IsSet should be true after explicit set")
	}
	o.Unset("status")
	if got := o.GetString("status"); got != "open" {
		t.Fatalf("after unset = %q, want default open", got)
	}
}

func TestLabel(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	o := MustNewObject(lion)
	if !strings.HasPrefix(o.Label(), "Lion#") {
		t.Fatalf("unnamed label = %q", o.Label())
	}
	o.MustSet("name", String("Simba"))
	if o.Label() != "Lion(Simba)" {
		t.Fatalf("named label = %q", o.Label())
	}
}

func TestValueEqualAndString(t *testing.T) {
	cases := []struct {
		a, b  Value
		equal bool
	}{
		{String("x"), String("x"), true},
		{String("x"), String("y"), false},
		{String("x"), Int(1), false},
		{Int(1), Int(1), true},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Real(1.5), Real(1.5), true},
		{Real(1.5), Real(2.5), false},
		{NewList(Int(1), Int(2)), NewList(Int(1), Int(2)), true},
		{NewList(Int(1)), NewList(Int(1), Int(2)), false},
		{NewList(Int(1)), NewList(Int(2)), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("case %d: Equal = %v, want %v", i, got, c.equal)
		}
	}
	if NewList(Int(1), String("a")).String() != `{1, "a"}` {
		t.Fatalf("List.String = %q", NewList(Int(1), String("a")).String())
	}
	if (Ref{}).String() != "<nil-ref>" {
		t.Fatal("nil ref string")
	}
}

func TestValueKindStrings(t *testing.T) {
	kinds := map[ValueKind]string{
		VString: "String", VInt: "Integer", VBool: "Boolean",
		VReal: "Real", VEnum: "EnumLiteral", VRef: "Reference", VList: "List",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestSetPropertiesSorted(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	o := MustNewObject(lion)
	o.MustSet("name", String("a"))
	o.MustSet("age", Int(1))
	got := o.SetProperties()
	if len(got) != 2 || got[0] != "age" || got[1] != "name" {
		t.Fatalf("SetProperties = %v", got)
	}
}
