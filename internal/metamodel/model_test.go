package metamodel

import (
	"testing"
)

func newZooModel(t testing.TB) (*Model, *Package) {
	t.Helper()
	zoo, _, _ := fixture(t)
	return NewModel("zoo1", zoo), zoo
}

func TestModelCreateAndAllInstances(t *testing.T) {
	m, zoo := newZooModel(t)
	l := m.MustCreate("Lion")
	l.MustSet("name", String("Simba"))
	g := m.MustCreate("Gazelle")
	g.MustSet("name", String("Gia"))

	animal, _ := zoo.Class("Animal")
	if got := len(m.AllInstances(animal)); got != 2 {
		t.Fatalf("AllInstances(Animal) = %d, want 2", got)
	}
	lions, err := m.AllInstancesOf("Lion")
	if err != nil || len(lions) != 1 || lions[0] != l {
		t.Fatalf("AllInstancesOf(Lion) = %v, %v", lions, err)
	}
	if _, err := m.AllInstancesOf("Dragon"); err == nil {
		t.Fatal("unknown class should error")
	}
}

func TestModelCreateUnknownClass(t *testing.T) {
	m, _ := newZooModel(t)
	if _, err := m.Create("Dragon"); err == nil {
		t.Fatal("Create unknown class should fail")
	}
}

func TestModelCreateAbstractClass(t *testing.T) {
	m, _ := newZooModel(t)
	if _, err := m.Create("Animal"); err == nil {
		t.Fatal("Create abstract class should fail")
	}
}

func TestModelAddIdempotentAndRemove(t *testing.T) {
	m, _ := newZooModel(t)
	l := m.MustCreate("Lion")
	m.Add(l)
	if m.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add", m.Len())
	}
	m.Remove(l)
	if m.Len() != 0 {
		t.Fatalf("Len = %d after Remove", m.Len())
	}
	m.Remove(l) // removing absent object is a no-op
	m.Add(nil)  // adding nil is a no-op
	if m.Len() != 0 {
		t.Fatal("nil Add changed model")
	}
}

func TestModelFindByName(t *testing.T) {
	m, _ := newZooModel(t)
	l := m.MustCreate("Lion")
	l.MustSet("name", String("Simba"))
	got, ok := m.FindByName("Animal", "Simba")
	if !ok || got != l {
		t.Fatal("FindByName via superclass failed")
	}
	if _, ok := m.FindByName("Animal", "Nala"); ok {
		t.Fatal("FindByName should miss")
	}
	if _, ok := m.FindByName("Dragon", "Simba"); ok {
		t.Fatal("FindByName with unknown class should miss")
	}
}

func TestAssignXIDsDeterministicAndStable(t *testing.T) {
	m, _ := newZooModel(t)
	a := m.MustCreate("Lion")
	b := m.MustCreate("Lion")
	c := m.MustCreate("Gazelle")
	m.AssignXIDs()
	if a.XID() != "Lion.1" || b.XID() != "Lion.2" || c.XID() != "Gazelle.1" {
		t.Fatalf("XIDs = %q %q %q", a.XID(), b.XID(), c.XID())
	}
	// Pre-assigned ids survive; clashes are skipped.
	d := m.MustCreate("Lion")
	d.SetXID("Lion.3")
	m.Add(d)
	e := m.MustCreate("Lion")
	m.AssignXIDs()
	if e.XID() == "" || e.XID() == "Lion.3" {
		t.Fatalf("clash not avoided: %q", e.XID())
	}
	got, ok := m.ByXID("Lion.2")
	if !ok || got != b {
		t.Fatal("ByXID lookup failed")
	}
}

func TestModelStats(t *testing.T) {
	m, _ := newZooModel(t)
	m.MustCreate("Lion")
	m.MustCreate("Lion")
	m.MustCreate("Gazelle")
	stats := m.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %v", stats)
	}
	if stats[0].Class != "Gazelle" || stats[0].Count != 1 {
		t.Fatalf("stats[0] = %v", stats[0])
	}
	if stats[1].Class != "Lion" || stats[1].Count != 2 {
		t.Fatalf("stats[1] = %v", stats[1])
	}
}

func TestCrossReferences(t *testing.T) {
	m, _ := newZooModel(t)
	l := m.MustCreate("Lion")
	g := m.MustCreate("Gazelle")
	e := m.MustCreate("Enclosure")
	l.MustAppend("prey", Ref{Target: g})
	e.MustAppend("occupants", Ref{Target: l})
	e.MustAppend("occupants", Ref{Target: g})

	if refs := m.CrossReferences(l); len(refs) != 1 || refs[0] != g {
		t.Fatalf("lion refs = %v", refs)
	}
	if refs := m.CrossReferences(e); len(refs) != 2 {
		t.Fatalf("enclosure refs = %v", refs)
	}
	if refs := m.CrossReferences(g); len(refs) != 0 {
		t.Fatalf("gazelle refs = %v", refs)
	}
}

func TestContains(t *testing.T) {
	m, _ := newZooModel(t)
	l := m.MustCreate("Lion")
	other := MustNewObject(l.Class())
	if !m.Contains(l) || m.Contains(other) {
		t.Fatal("Contains misbehaves")
	}
}

func TestConformanceHappyPath(t *testing.T) {
	m, _ := newZooModel(t)
	l := m.MustCreate("Lion")
	l.MustSet("name", String("Simba"))
	e := m.MustCreate("Enclosure")
	e.MustSet("name", String("Savanna"))
	e.MustAppend("occupants", Ref{Target: l})
	if vs := CheckConformance(m); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
	if !Conforms(m) {
		t.Fatal("Conforms should be true")
	}
}

func TestConformanceLowerBound(t *testing.T) {
	m, _ := newZooModel(t)
	m.MustCreate("Lion") // name [1] unset
	vs := CheckConformance(m)
	if len(vs) != 1 || vs[0].Rule != RuleLowerBound || vs[0].Property != "name" {
		t.Fatalf("violations = %v", vs)
	}
	if vs[0].String() == "" {
		t.Fatal("violation String empty")
	}
}

func TestConformanceDanglingReference(t *testing.T) {
	m, _ := newZooModel(t)
	l := m.MustCreate("Lion")
	l.MustSet("name", String("Simba"))
	stray := MustNewObject(l.Class())
	stray.MustSet("name", String("Stray"))
	l.MustAppend("prey", Ref{Target: stray})
	vs := CheckConformance(m)
	if len(vs) != 1 || vs[0].Rule != RuleDangling {
		t.Fatalf("violations = %v", vs)
	}
}

func TestConformanceUpperBound(t *testing.T) {
	p := NewPackage("M")
	str := p.AddDataType("String", PrimString)
	c := p.AddClass("C")
	c.AddProperty("pair", str, 0, 2)
	m := NewModel("m", p)
	o := m.MustCreate("C")
	// Bypass Append's bound check by setting the slot map directly through a
	// legal route: Set validates too, so build the oversize list via two
	// appends then grow the live list (documented as not for callers, but the
	// validator must still catch models deserialized from hostile inputs).
	o.MustAppend("pair", String("a"))
	o.MustAppend("pair", String("b"))
	if l, ok := o.Get("pair"); ok {
		l.(*List).Items = append(l.(*List).Items, String("c"))
	}
	vs := CheckConformance(m)
	if len(vs) != 1 || vs[0].Rule != RuleUpperBound {
		t.Fatalf("violations = %v", vs)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	zoo, _, _ := fixture(t)
	if err := r.Register(zoo); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(zoo); err != nil {
		t.Fatalf("re-register same package should be nil, got %v", err)
	}
	other := NewPackage("Zoo")
	if err := r.Register(other); err == nil {
		t.Fatal("conflicting registration should fail")
	}
	if err := r.Register(nil); err == nil {
		t.Fatal("nil registration should fail")
	}
	got, ok := r.Lookup("Zoo")
	if !ok || got != zoo {
		t.Fatal("Lookup failed")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "Zoo" {
		t.Fatalf("Names = %v", names)
	}
}
