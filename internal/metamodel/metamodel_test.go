package metamodel

import (
	"strings"
	"testing"
)

// fixture builds a small metamodel used across the kernel tests:
//
//	package Zoo
//	  enum Diet { Herbivore, Carnivore, Omnivore }
//	  abstract class Animal { name: String[1]; age: Integer[0..1]; diet: Diet }
//	  class Lion extends Animal { prey: Animal[0..*] }
//	  class Gazelle extends Animal {}
//	  class Enclosure { name: String[1]; occupants: Animal[0..*]; keeper: String }
func fixture(t testing.TB) (*Package, *DataType, *DataType) {
	t.Helper()
	zoo := NewPackage("Zoo")
	str := zoo.AddDataType("String", PrimString)
	intT := zoo.AddDataType("Integer", PrimInteger)
	diet := zoo.AddEnumeration("Diet", "Herbivore", "Carnivore", "Omnivore")

	animal := zoo.AddAbstractClass("Animal")
	animal.AddProperty("name", str, 1, 1)
	animal.AddProperty("age", intT, 0, 1)
	animal.AddAttr("diet", diet)

	lion := zoo.AddClass("Lion")
	lion.AddSuper(animal)
	lion.AddRefs("prey", animal)

	gazelle := zoo.AddClass("Gazelle")
	gazelle.AddSuper(animal)

	encl := zoo.AddClass("Enclosure")
	encl.AddProperty("name", str, 1, 1)
	encl.AddRefs("occupants", animal)
	encl.AddAttr("keeper", str)
	return zoo, str, intT
}

func TestPackageQualifiedNames(t *testing.T) {
	root := NewPackage("WebRE")
	sub := root.AddPackage("Behavior")
	c := sub.AddClass("WebProcess")
	if got := c.QualifiedName(); got != "WebRE.Behavior.WebProcess" {
		t.Fatalf("QualifiedName = %q, want WebRE.Behavior.WebProcess", got)
	}
	if sub.Parent() != root {
		t.Fatal("Parent not set")
	}
	if root.QualifiedName() != "WebRE" {
		t.Fatalf("root QualifiedName = %q", root.QualifiedName())
	}
}

func TestAddPackageIdempotent(t *testing.T) {
	root := NewPackage("M")
	a := root.AddPackage("Sub")
	b := root.AddPackage("Sub")
	if a != b {
		t.Fatal("AddPackage should return the existing subpackage")
	}
	if len(root.Packages()) != 1 {
		t.Fatalf("Packages len = %d, want 1", len(root.Packages()))
	}
}

func TestDuplicateClassifierPanics(t *testing.T) {
	root := NewPackage("M")
	root.AddClass("A")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate classifier name")
		}
	}()
	root.AddEnumeration("A", "x")
}

func TestFindClassDottedAndSimple(t *testing.T) {
	root := NewPackage("M")
	sub := root.AddPackage("Inner")
	c := sub.AddClass("Thing")
	if got, ok := root.FindClass("Thing"); !ok || got != c {
		t.Fatal("simple-name lookup failed")
	}
	if got, ok := root.FindClass("Inner.Thing"); !ok || got != c {
		t.Fatal("dotted lookup failed")
	}
	if _, ok := root.FindClass("Inner.Missing"); ok {
		t.Fatal("lookup of missing class succeeded")
	}
	if _, ok := root.FindClass("Nope.Thing"); ok {
		t.Fatal("lookup through missing package succeeded")
	}
}

func TestInheritanceConformance(t *testing.T) {
	zoo, _, _ := fixture(t)
	animal, _ := zoo.Class("Animal")
	lion, _ := zoo.Class("Lion")
	gazelle, _ := zoo.Class("Gazelle")
	if !lion.ConformsTo(animal) {
		t.Fatal("Lion should conform to Animal")
	}
	if animal.ConformsTo(lion) {
		t.Fatal("Animal should not conform to Lion")
	}
	if lion.ConformsTo(gazelle) {
		t.Fatal("Lion should not conform to Gazelle")
	}
	if !lion.ConformsTo(lion) {
		t.Fatal("class should conform to itself")
	}
}

func TestInheritanceCyclePanics(t *testing.T) {
	p := NewPackage("M")
	a := p.AddClass("A")
	b := p.AddClass("B")
	b.AddSuper(a)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inheritance cycle")
		}
	}()
	a.AddSuper(b)
}

func TestPropertyInheritanceAndOverride(t *testing.T) {
	zoo, _, _ := fixture(t)
	lion, _ := zoo.Class("Lion")
	if _, ok := lion.Property("name"); !ok {
		t.Fatal("inherited property not found")
	}
	props := lion.AllProperties()
	var names []string
	for _, p := range props {
		names = append(names, p.Name())
	}
	joined := strings.Join(names, ",")
	if joined != "name,age,diet,prey" {
		t.Fatalf("AllProperties order = %q, want name,age,diet,prey", joined)
	}
}

func TestMultiplicityString(t *testing.T) {
	zoo, str, _ := fixture(t)
	animal, _ := zoo.Class("Animal")
	nameP, _ := animal.Property("name")
	ageP, _ := animal.Property("age")
	lion, _ := zoo.Class("Lion")
	preyP, _ := lion.Property("prey")

	cases := []struct {
		p    *Property
		want string
	}{
		{nameP, "1"},
		{ageP, "0..1"},
		{preyP, "0..*"},
	}
	for _, c := range cases {
		if got := c.p.MultiplicityString(); got != c.want {
			t.Errorf("%s multiplicity = %q, want %q", c.p.Name(), got, c.want)
		}
	}
	// 1..* case
	tmp := zoo.AddClass("Tmp")
	p := tmp.AddProperty("xs", str, 1, Unbounded)
	if got := p.MultiplicityString(); got != "1..*" {
		t.Fatalf("1..* rendered as %q", got)
	}
}

func TestEnumerationLiterals(t *testing.T) {
	zoo, _, _ := fixture(t)
	diet, ok := zoo.Enumeration("Diet")
	if !ok {
		t.Fatal("Diet not found")
	}
	if !diet.Has("Carnivore") || diet.Has("Vegan") {
		t.Fatal("Has misbehaves")
	}
	if len(diet.Literals()) != 3 {
		t.Fatalf("Literals len = %d", len(diet.Literals()))
	}
}

func TestAllClassesDepthFirst(t *testing.T) {
	root := NewPackage("M")
	root.AddClass("A")
	sub := root.AddPackage("S")
	sub.AddClass("B")
	all := root.AllClasses()
	if len(all) != 2 || all[0].Name() != "A" || all[1].Name() != "B" {
		t.Fatalf("AllClasses = %v", all)
	}
}

func TestAllClassifiersIncludesEnumsAndTypes(t *testing.T) {
	zoo, _, _ := fixture(t)
	kinds := map[Kind]int{}
	for _, c := range zoo.AllClassifiers() {
		kinds[c.ClassifierKind()]++
	}
	if kinds[KindClass] != 4 {
		t.Errorf("classes = %d, want 4", kinds[KindClass])
	}
	if kinds[KindEnumeration] != 1 {
		t.Errorf("enums = %d, want 1", kinds[KindEnumeration])
	}
	if kinds[KindDataType] != 2 {
		t.Errorf("datatypes = %d, want 2", kinds[KindDataType])
	}
}

func TestAssociateOpposites(t *testing.T) {
	p := NewPackage("M")
	a := p.AddClass("A")
	b := p.AddClass("B")
	ab := a.AddRefs("bs", b)
	ba := b.AddRef("a", a)
	Associate(ab, ba)
	if ab.Opposite() != ba || ba.Opposite() != ab {
		t.Fatal("opposites not linked")
	}
}

func TestKindAndPrimitiveStrings(t *testing.T) {
	if KindClass.String() != "Class" || KindEnumeration.String() != "Enumeration" || KindDataType.String() != "DataType" {
		t.Fatal("Kind.String wrong")
	}
	if PrimString.String() != "String" || PrimInteger.String() != "Integer" ||
		PrimBoolean.String() != "Boolean" || PrimReal.String() != "Real" {
		t.Fatal("Primitive.String wrong")
	}
}

func TestSetDocAndDerived(t *testing.T) {
	p := NewPackage("M")
	c := p.AddClass("C").SetDoc("a class")
	if c.Doc() != "a class" {
		t.Fatal("class doc lost")
	}
	str := p.AddDataType("String", PrimString)
	prop := c.AddAttr("x", str).SetDoc("an attr").SetDerived()
	if prop.Doc() != "an attr" || !prop.IsDerived() {
		t.Fatal("property doc/derived lost")
	}
}
