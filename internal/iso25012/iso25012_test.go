package iso25012

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogHasFifteenCharacteristics(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("len(All()) = %d, want 15", len(all))
	}
	seen := map[Characteristic]bool{}
	for _, d := range all {
		if seen[d.Name] {
			t.Errorf("duplicate characteristic %s", d.Name)
		}
		seen[d.Name] = true
		if d.Text == "" {
			t.Errorf("%s has empty definition", d.Name)
		}
		if !strings.HasPrefix(d.Text, "The degree to which") {
			t.Errorf("%s definition does not follow the standard's phrasing", d.Name)
		}
	}
}

// TestTable1Grouping pins the exact category membership of the paper's
// Table 1: 5 inherent, 7 inherent-and-system, 3 system-dependent.
func TestTable1Grouping(t *testing.T) {
	wantByCat := map[Category][]Characteristic{
		Inherent: {Accuracy, Completeness, Consistency, Credibility, Currentness},
		InherentAndSystem: {Accessibility, Compliance, Confidentiality, Efficiency,
			Precision, Traceability, Understandability},
		SystemDependent: {Availability, Portability, Recoverability},
	}
	for cat, want := range wantByCat {
		got := ByCategory(cat)
		if len(got) != len(want) {
			t.Fatalf("%s: %d characteristics, want %d", cat, len(got), len(want))
		}
		for i, d := range got {
			if d.Name != want[i] {
				t.Errorf("%s[%d] = %s, want %s", cat, i, d.Name, want[i])
			}
			if d.Category != cat {
				t.Errorf("%s filed under %s", d.Name, d.Category)
			}
		}
	}
}

func TestTable1Order(t *testing.T) {
	names := Names()
	want := []Characteristic{
		Accuracy, Completeness, Consistency, Credibility, Currentness,
		Accessibility, Compliance, Confidentiality, Efficiency, Precision,
		Traceability, Understandability,
		Availability, Portability, Recoverability,
	}
	if len(names) != len(want) {
		t.Fatalf("names = %d", len(names))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names()[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, name := range []string{"Completeness", "completeness", "COMPLETENESS"} {
		d, ok := Lookup(name)
		if !ok || d.Name != Completeness {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("Velocity"); ok {
		t.Error("Lookup of unknown characteristic succeeded")
	}
	if !IsValid("traceability") || IsValid("nope") {
		t.Error("IsValid misbehaves")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustLookup("Velocity")
}

func TestCategoryString(t *testing.T) {
	if Inherent.String() != "Inherent" {
		t.Error("Inherent string")
	}
	if InherentAndSystem.String() != "Inherent and System dependent" {
		t.Error("InherentAndSystem string")
	}
	if SystemDependent.String() != "System dependent" {
		t.Error("SystemDependent string")
	}
}

func TestDQModelRequireValidation(t *testing.T) {
	m := NewDQModel("review-dq")
	if err := m.Require(Completeness, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := m.Require("Velocity", 0.5); err == nil {
		t.Fatal("unknown characteristic accepted")
	}
	if err := m.Require(Precision, 1.5); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := m.Require(Precision, -0.1); err == nil {
		t.Fatal("negative level accepted")
	}
	if m.Name() != "review-dq" || m.Len() != 1 {
		t.Fatal("model state wrong")
	}
}

func TestDQModelCharacteristicsInCatalogOrder(t *testing.T) {
	m := NewDQModel("x").
		MustRequire(Traceability, 0.5).
		MustRequire(Completeness, 0.9).
		MustRequire(Confidentiality, 1.0)
	got := m.Characteristics()
	want := []Characteristic{Completeness, Confidentiality, Traceability}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if l, ok := m.Level(Completeness); !ok || l != 0.9 {
		t.Fatal("Level lookup failed")
	}
	if _, ok := m.Level(Accuracy); ok {
		t.Fatal("Level of unselected characteristic found")
	}
}

func TestAssess(t *testing.T) {
	m := NewDQModel("x").
		MustRequire(Completeness, 0.9).
		MustRequire(Precision, 0.8)
	scores := map[Characteristic]float64{
		Completeness: 0.95,
		Precision:    0.7,
	}
	as := m.Assess(scores)
	if len(as) != 2 {
		t.Fatalf("assessments = %d", len(as))
	}
	// Sorted by name: Completeness before Precision.
	if as[0].Characteristic != Completeness || !as[0].Satisfied {
		t.Errorf("completeness assessment wrong: %+v", as[0])
	}
	if as[1].Characteristic != Precision || as[1].Satisfied {
		t.Errorf("precision assessment wrong: %+v", as[1])
	}
	if m.Satisfied(scores) {
		t.Error("Satisfied should be false")
	}
	scores[Precision] = 0.85
	if !m.Satisfied(scores) {
		t.Error("Satisfied should be true")
	}
	// Missing score counts as zero.
	m2 := NewDQModel("y").MustRequire(Accuracy, 0.1)
	if m2.Satisfied(map[Characteristic]float64{}) {
		t.Error("missing score should fail")
	}
	if !strings.Contains(as[1].String(), "FAIL") {
		t.Error("assessment String should flag failures")
	}
	if !strings.Contains(as[0].String(), "ok") {
		t.Error("assessment String should mark passes")
	}
}

// TestQuickAssessConsistency: for random required/measured levels, Satisfied
// agrees with every individual assessment.
func TestQuickAssessConsistency(t *testing.T) {
	f := func(reqRaw, measRaw uint8, pick uint8) bool {
		c := catalog[int(pick)%len(catalog)].Name
		req := float64(reqRaw) / 255
		meas := float64(measRaw) / 255
		m := NewDQModel("q")
		if err := m.Require(c, req); err != nil {
			return false
		}
		scores := map[Characteristic]float64{c: meas}
		as := m.Assess(scores)
		if len(as) != 1 {
			return false
		}
		return as[0].Satisfied == (meas >= req) && m.Satisfied(scores) == as[0].Satisfied
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
