// Package iso25012 models the ISO/IEC 25012 data quality standard the paper
// builds on: fifteen data quality characteristics grouped into three
// categories (inherent, inherent-and-system-dependent, system-dependent),
// exactly as reproduced in the paper's Table 1.
//
// A DQModel is a user-selected subset of characteristics for a task at hand —
// the paper's "Data Quality Requirement" names characteristics from this
// catalog (the EasyChair case study uses Confidentiality, Completeness,
// Traceability and Precision).
package iso25012

import (
	"fmt"
	"sort"
	"strings"
)

// Category groups characteristics per ISO/IEC 25012.
type Category int

// The three ISO/IEC 25012 categories.
const (
	// Inherent quality is intrinsic to the data itself.
	Inherent Category = iota
	// InherentAndSystem quality depends on both the data and the system.
	InherentAndSystem
	// SystemDependent quality is obtained and preserved by the system.
	SystemDependent
)

// String renders the category as in the paper's Table 1 section headers.
func (c Category) String() string {
	switch c {
	case Inherent:
		return "Inherent"
	case InherentAndSystem:
		return "Inherent and System dependent"
	case SystemDependent:
		return "System dependent"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Characteristic identifies one of the fifteen ISO/IEC 25012 data quality
// characteristics.
type Characteristic string

// The fifteen ISO/IEC 25012 characteristics (paper Table 1).
const (
	Accuracy          Characteristic = "Accuracy"
	Completeness      Characteristic = "Completeness"
	Consistency       Characteristic = "Consistency"
	Credibility       Characteristic = "Credibility"
	Currentness       Characteristic = "Currentness"
	Accessibility     Characteristic = "Accessibility"
	Compliance        Characteristic = "Compliance"
	Confidentiality   Characteristic = "Confidentiality"
	Efficiency        Characteristic = "Efficiency"
	Precision         Characteristic = "Precision"
	Traceability      Characteristic = "Traceability"
	Understandability Characteristic = "Understandability"
	Availability      Characteristic = "Availability"
	Portability       Characteristic = "Portability"
	Recoverability    Characteristic = "Recoverability"
)

// Definition describes a characteristic: its category and the standard's
// definition text as quoted in the paper's Table 1.
type Definition struct {
	// Name is the characteristic.
	Name Characteristic
	// Category is its ISO/IEC 25012 grouping.
	Category Category
	// Text is the definition as given in Table 1.
	Text string
}

// catalog lists all fifteen characteristics in the paper's Table 1 order.
var catalog = []Definition{
	{Accuracy, Inherent, "The degree to which data have attributes that correctly represent the true value of the intended attribute of a concept or event in a specific context of use."},
	{Completeness, Inherent, "The degree to which subject data associated with an entity have values for all expected attributes and related entity instances in a specific context of use."},
	{Consistency, Inherent, "The degree to which data have attributes that are free from contradiction and are coherent with other data in a specific context of use."},
	{Credibility, Inherent, "The degree to which data have attributes that are regarded as true and believable by users in a specific context of use."},
	{Currentness, Inherent, "The degree to which data have attributes that are of the right age in a specific context of use."},
	{Accessibility, InherentAndSystem, "The degree to which data can be accessed in a specific context of use, particularly by people who need supporting technology or special configuration because of some disability."},
	{Compliance, InherentAndSystem, "The degree to which data have attributes that adhere to standards, conventions or regulations in force and similar rules relating to data quality in a specific context of use."},
	{Confidentiality, InherentAndSystem, "The degree to which data have attributes that ensure that they are only accessible and interpretable by authorized users in a specific context of use."},
	{Efficiency, InherentAndSystem, "The degree to which data have attributes that can be processed and provide the expected levels of performance by using the appropriate amounts and types of resources in a specific context of use."},
	{Precision, InherentAndSystem, "The degree to which data have attributes that are exact or that provide discrimination in a specific context of use."},
	{Traceability, InherentAndSystem, "The degree to which data have attributes that provide an audit trail of access to the data and of any changes made to the data in a specific context of use."},
	{Understandability, InherentAndSystem, "The degree to which data have attributes that enable it to be read and interpreted by users, and are expressed in appropriate languages, symbols and units in a specific context of use."},
	{Availability, SystemDependent, "The degree to which data have attributes that enable them to be retrieved by authorized users and/or applications in a specific context."},
	{Portability, SystemDependent, "The degree to which data have attributes that enable them to be installed, replaced or moved from one system to another while preserving the existing quality in a specific context of use."},
	{Recoverability, SystemDependent, "The degree to which data have attributes that enable them to maintain and preserve a specified level of operations and quality, even in the event of failure, in a specific context of use."},
}

var byName = func() map[Characteristic]Definition {
	m := make(map[Characteristic]Definition, len(catalog))
	for _, d := range catalog {
		m[d.Name] = d
	}
	return m
}()

// All returns the fifteen definitions in the standard's (and Table 1's)
// order: inherent first, then inherent-and-system, then system-dependent.
func All() []Definition { return append([]Definition(nil), catalog...) }

// Lookup returns the definition for a characteristic name, matching
// case-insensitively so user input like "completeness" resolves.
func Lookup(name string) (Definition, bool) {
	if d, ok := byName[Characteristic(name)]; ok {
		return d, true
	}
	for _, d := range catalog {
		if strings.EqualFold(string(d.Name), name) {
			return d, true
		}
	}
	return Definition{}, false
}

// MustLookup is Lookup that panics on unknown names, for fixture code.
func MustLookup(name string) Definition {
	d, ok := Lookup(name)
	if !ok {
		panic(fmt.Errorf("iso25012: unknown characteristic %q", name))
	}
	return d
}

// ByCategory returns the characteristics of one category in Table 1 order.
func ByCategory(c Category) []Definition {
	var out []Definition
	for _, d := range catalog {
		if d.Category == c {
			out = append(out, d)
		}
	}
	return out
}

// Names returns all characteristic names in Table 1 order.
func Names() []Characteristic {
	out := make([]Characteristic, len(catalog))
	for i, d := range catalog {
		out[i] = d.Name
	}
	return out
}

// IsValid reports whether name (case-insensitive) is a characteristic.
func IsValid(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// DQModel is a named selection of characteristics with per-characteristic
// minimum acceptable levels — the paper's "DQ Model": "the set of several
// data quality dimensions".
type DQModel struct {
	name   string
	levels map[Characteristic]float64
}

// NewDQModel creates an empty DQ model.
func NewDQModel(name string) *DQModel {
	return &DQModel{name: name, levels: make(map[Characteristic]float64)}
}

// Name returns the model's name.
func (m *DQModel) Name() string { return m.name }

// Require adds a characteristic with a minimum acceptable level in [0, 1].
func (m *DQModel) Require(c Characteristic, minLevel float64) error {
	if _, ok := byName[c]; !ok {
		return fmt.Errorf("iso25012: unknown characteristic %q", c)
	}
	if minLevel < 0 || minLevel > 1 {
		return fmt.Errorf("iso25012: level %v out of [0,1] for %s", minLevel, c)
	}
	m.levels[c] = minLevel
	return nil
}

// MustRequire is Require that panics on error.
func (m *DQModel) MustRequire(c Characteristic, minLevel float64) *DQModel {
	if err := m.Require(c, minLevel); err != nil {
		panic(err)
	}
	return m
}

// Level returns the required minimum level for a characteristic, if present.
func (m *DQModel) Level(c Characteristic) (float64, bool) {
	l, ok := m.levels[c]
	return l, ok
}

// Characteristics returns the selected characteristics in Table 1 order.
func (m *DQModel) Characteristics() []Characteristic {
	var out []Characteristic
	for _, d := range catalog {
		if _, ok := m.levels[d.Name]; ok {
			out = append(out, d.Name)
		}
	}
	return out
}

// Len returns the number of selected characteristics.
func (m *DQModel) Len() int { return len(m.levels) }

// Assess compares measured scores against the model's required levels and
// returns per-characteristic results sorted by characteristic name.
// Characteristics without a measured score fail with a score of 0.
func (m *DQModel) Assess(scores map[Characteristic]float64) []Assessment {
	out := make([]Assessment, 0, len(m.levels))
	for c, min := range m.levels {
		got := scores[c]
		out = append(out, Assessment{
			Characteristic: c,
			Required:       min,
			Measured:       got,
			Satisfied:      got >= min,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Characteristic < out[j].Characteristic
	})
	return out
}

// Satisfied reports whether all required levels are met by the scores.
func (m *DQModel) Satisfied(scores map[Characteristic]float64) bool {
	for _, a := range m.Assess(scores) {
		if !a.Satisfied {
			return false
		}
	}
	return true
}

// Assessment is one characteristic's required-vs-measured comparison.
type Assessment struct {
	// Characteristic under assessment.
	Characteristic Characteristic
	// Required minimum level from the DQ model.
	Required float64
	// Measured level from the runtime.
	Measured float64
	// Satisfied reports Measured >= Required.
	Satisfied bool
}

// String renders the assessment for reports.
func (a Assessment) String() string {
	verdict := "FAIL"
	if a.Satisfied {
		verdict = "ok"
	}
	return fmt.Sprintf("%-18s required %.2f measured %.2f  %s",
		a.Characteristic, a.Required, a.Measured, verdict)
}
