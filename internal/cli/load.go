package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/modeldriven/dqwebre/internal/loadgen"
)

// cmdLoad drives concurrent traffic at a running server (typically
// cmd/easychair) and reports throughput, latency percentiles and how much
// traffic the resilience layer shed — the operational counterpart of the
// library's micro-benchmarks.
func cmdLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "target base URL")
	paths := fs.String("paths", "/", "comma-separated request paths, hit round-robin")
	concurrency := fs.Int("c", 8, "concurrent workers")
	requests := fs.Int("n", 0, "total requests (0 = run for -d)")
	duration := fs.Duration("d", 0, "run duration (0 with -n 0 = 2048 requests)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	jobs := fs.Int("jobs", 0, "job-API mode: submit this many validation jobs to a `dqwebre serve` target")
	jobBody := fs.String("job-body", "", "records file POSTed per job (job-API mode)")
	model := fs.String("model", "", "model reference passed with each job (job-API mode; default: server default)")
	poll := fs.Duration("poll", 50*time.Millisecond, "job status poll interval (job-API mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("load takes no positional arguments")
	}
	if *jobs > 0 {
		return runJobLoad(out, *url, *jobBody, *model, *jobs, *concurrency, *poll, *timeout)
	}
	var pathList []string
	for _, p := range strings.Split(*paths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pathList = append(pathList, p)
		}
	}
	cfg := loadgen.Config{
		URL:         *url,
		Paths:       pathList,
		Concurrency: *concurrency,
		Requests:    *requests,
		Duration:    *duration,
		Timeout:     *timeout,
	}
	fmt.Fprintf(out, "load: %s %s, %d workers", *url, strings.Join(pathList, ","), cfg.Concurrency)
	if *requests > 0 {
		fmt.Fprintf(out, ", %d requests\n", *requests)
	} else if *duration > 0 {
		fmt.Fprintf(out, ", %s\n", *duration)
	} else {
		fmt.Fprintln(out, ", 2048 requests")
	}
	// Bracket the run with /metrics scrapes so the final report lines the
	// client-side view up with what the server says it shed and held. A
	// target without /metrics degrades gracefully: the section is skipped.
	ctx := context.Background()
	scrapeClient := &http.Client{Timeout: *timeout}
	metricsURL := strings.TrimSuffix(*url, "/") + "/metrics"
	before, scrapeErr := loadgen.ScrapeMetrics(ctx, scrapeClient, metricsURL)

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	res.WriteReport(out)
	if scrapeErr == nil {
		after, err := loadgen.ScrapeMetrics(ctx, scrapeClient, metricsURL)
		if err != nil {
			scrapeErr = err
		} else {
			loadgen.DiffServerMetrics(before, after).WriteReport(out)
		}
	}
	if scrapeErr != nil {
		fmt.Fprintf(out, "server:      telemetry unavailable (%v)\n", scrapeErr)
	}
	if res.Total == 0 && res.Errors > 0 {
		return fmt.Errorf("load: no request completed (%d transport errors) — is the server up?", res.Errors)
	}
	return nil
}

// runJobLoad is `dqwebre load -jobs N`: it drives the dqserve job API,
// submitting whole NDJSON bodies and following each job to a terminal
// state, so the report covers submit latency, end-to-end completion
// latency and how many submissions the admission valves shed.
func runJobLoad(out io.Writer, url, bodyPath, model string, jobs, concurrency int, poll, timeout time.Duration) error {
	if bodyPath == "" {
		return fmt.Errorf("load -jobs needs -job-body (the records file each job posts)")
	}
	body, err := os.ReadFile(bodyPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "load: %s job API, %d jobs, %d submitters\n", url, jobs, concurrency)
	ctx := context.Background()
	scrapeClient := &http.Client{Timeout: timeout}
	metricsURL := strings.TrimSuffix(url, "/") + "/metrics"
	before, scrapeErr := loadgen.ScrapeMetrics(ctx, scrapeClient, metricsURL)

	res, err := loadgen.RunJobs(ctx, loadgen.JobConfig{
		URL:         url,
		Body:        body,
		Model:       model,
		Jobs:        jobs,
		Concurrency: concurrency,
		PollEvery:   poll,
		Timeout:     timeout,
	})
	if err != nil {
		return err
	}
	res.WriteReport(out)
	if scrapeErr == nil {
		after, err := loadgen.ScrapeMetrics(ctx, scrapeClient, metricsURL)
		if err != nil {
			scrapeErr = err
		} else {
			loadgen.DiffServerMetrics(before, after).WriteReport(out)
		}
	}
	if scrapeErr != nil {
		fmt.Fprintf(out, "server:      telemetry unavailable (%v)\n", scrapeErr)
	}
	if res.Submitted == 0 && res.Errors > 0 {
		return fmt.Errorf("load: no job accepted (%d transport errors) — is the server up?", res.Errors)
	}
	return nil
}
