package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/modeldriven/dqwebre/internal/loadgen"
)

// cmdLoad drives concurrent traffic at a running server (typically
// cmd/easychair) and reports throughput, latency percentiles and how much
// traffic the resilience layer shed — the operational counterpart of the
// library's micro-benchmarks.
func cmdLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "target base URL")
	paths := fs.String("paths", "/", "comma-separated request paths, hit round-robin")
	concurrency := fs.Int("c", 8, "concurrent workers")
	requests := fs.Int("n", 0, "total requests (0 = run for -d)")
	duration := fs.Duration("d", 0, "run duration (0 with -n 0 = 2048 requests)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("load takes no positional arguments")
	}
	var pathList []string
	for _, p := range strings.Split(*paths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pathList = append(pathList, p)
		}
	}
	cfg := loadgen.Config{
		URL:         *url,
		Paths:       pathList,
		Concurrency: *concurrency,
		Requests:    *requests,
		Duration:    *duration,
		Timeout:     *timeout,
	}
	fmt.Fprintf(out, "load: %s %s, %d workers", *url, strings.Join(pathList, ","), cfg.Concurrency)
	if *requests > 0 {
		fmt.Fprintf(out, ", %d requests\n", *requests)
	} else if *duration > 0 {
		fmt.Fprintf(out, ", %s\n", *duration)
	} else {
		fmt.Fprintln(out, ", 2048 requests")
	}
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	res.WriteReport(out)
	if res.Total == 0 && res.Errors > 0 {
		return fmt.Errorf("load: no request completed (%d transport errors) — is the server up?", res.Errors)
	}
	return nil
}
