package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/modeldriven/dqwebre/internal/loadgen"
)

// cmdLoad drives concurrent traffic at a running server (typically
// cmd/easychair) and reports throughput, latency percentiles and how much
// traffic the resilience layer shed — the operational counterpart of the
// library's micro-benchmarks.
func cmdLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("load", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "target base URL")
	paths := fs.String("paths", "/", "comma-separated request paths, hit round-robin")
	concurrency := fs.Int("c", 8, "concurrent workers")
	requests := fs.Int("n", 0, "total requests (0 = run for -d)")
	duration := fs.Duration("d", 0, "run duration (0 with -n 0 = 2048 requests)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("load takes no positional arguments")
	}
	var pathList []string
	for _, p := range strings.Split(*paths, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pathList = append(pathList, p)
		}
	}
	cfg := loadgen.Config{
		URL:         *url,
		Paths:       pathList,
		Concurrency: *concurrency,
		Requests:    *requests,
		Duration:    *duration,
		Timeout:     *timeout,
	}
	fmt.Fprintf(out, "load: %s %s, %d workers", *url, strings.Join(pathList, ","), cfg.Concurrency)
	if *requests > 0 {
		fmt.Fprintf(out, ", %d requests\n", *requests)
	} else if *duration > 0 {
		fmt.Fprintf(out, ", %s\n", *duration)
	} else {
		fmt.Fprintln(out, ", 2048 requests")
	}
	// Bracket the run with /metrics scrapes so the final report lines the
	// client-side view up with what the server says it shed and held. A
	// target without /metrics degrades gracefully: the section is skipped.
	ctx := context.Background()
	scrapeClient := &http.Client{Timeout: *timeout}
	metricsURL := strings.TrimSuffix(*url, "/") + "/metrics"
	before, scrapeErr := loadgen.ScrapeMetrics(ctx, scrapeClient, metricsURL)

	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	res.WriteReport(out)
	if scrapeErr == nil {
		after, err := loadgen.ScrapeMetrics(ctx, scrapeClient, metricsURL)
		if err != nil {
			scrapeErr = err
		} else {
			loadgen.DiffServerMetrics(before, after).WriteReport(out)
		}
	}
	if scrapeErr != nil {
		fmt.Fprintf(out, "server:      telemetry unavailable (%v)\n", scrapeErr)
	}
	if res.Total == 0 && res.Errors > 0 {
		return fmt.Errorf("load: no request completed (%d transport errors) — is the server up?", res.Errors)
	}
	return nil
}
