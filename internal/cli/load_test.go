package cli

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// TestLoadCommandReportsAgainstLiveServer runs the load subcommand at a
// live server that sheds part of the traffic and checks the report carries
// throughput, latency percentiles and the shed count.
func TestLoadCommandReportsAgainstLiveServer(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%5 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	out, err := run(t, "load", "-url", srv.URL, "-c", "4", "-n", "60")
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	for _, want := range []string{"throughput:", "p50=", "p99=", "status 200:", "status 503:", "shed:"} {
		if !strings.Contains(out, want) {
			t.Errorf("load report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadCommandRejectsPositionalArgs(t *testing.T) {
	if _, err := run(t, "load", "extra"); err == nil {
		t.Fatal("positional args accepted")
	}
}

func TestLoadCommandFailsWhenServerDown(t *testing.T) {
	// A closed server: every request is a transport error.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	if _, err := run(t, "load", "-url", url, "-c", "2", "-n", "8"); err == nil {
		t.Fatal("load against a dead server should error")
	}
}
