package cli

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// TestLoadCommandReportsAgainstLiveServer runs the load subcommand at a
// live server that sheds part of the traffic and checks the report carries
// throughput, latency percentiles and the shed count.
func TestLoadCommandReportsAgainstLiveServer(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%5 == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	out, err := run(t, "load", "-url", srv.URL, "-c", "4", "-n", "60")
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	for _, want := range []string{"throughput:", "p50=", "p99=", "status 200:", "status 503:", "shed:"} {
		if !strings.Contains(out, want) {
			t.Errorf("load report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadCommandReportsServerDeltas pairs the client-side report with the
// server's own /metrics story: requests observed, shed counts and session
// churn across the run.
func TestLoadCommandReportsServerDeltas(t *testing.T) {
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			fmt.Fprintf(w, "http_requests_total %d\n", n.Load())
			fmt.Fprintf(w, "http_requests_shed_total{reason=\"rate\"} %d\n", n.Load()/4)
			fmt.Fprintln(w, "webapp_sessions_created_total 2")
			fmt.Fprintln(w, "webapp_sessions_active 1")
			fmt.Fprintln(w, "http_inflight_requests 0")
			return
		}
		n.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	out, err := run(t, "load", "-url", srv.URL, "-c", "2", "-n", "40")
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	for _, want := range []string{
		"server:      40 requests observed, 10 shed (rate 10)",
		"sessions:    0 created during the run, 1 active after",
		"inflight:    0 still in flight",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("load report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadCommandWithoutMetricsDegrades: a target with no /metrics still
// gets a full client-side report plus a note that telemetry was absent.
func TestLoadCommandWithoutMetricsDegrades(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	out, err := run(t, "load", "-url", srv.URL, "-c", "2", "-n", "16")
	if err != nil {
		t.Fatalf("load: %v\n%s", err, out)
	}
	if !strings.Contains(out, "throughput:") {
		t.Errorf("client report missing:\n%s", out)
	}
	if !strings.Contains(out, "telemetry unavailable") {
		t.Errorf("missing telemetry note:\n%s", out)
	}
}

func TestLoadCommandRejectsPositionalArgs(t *testing.T) {
	if _, err := run(t, "load", "extra"); err == nil {
		t.Fatal("positional args accepted")
	}
}

func TestLoadCommandFailsWhenServerDown(t *testing.T) {
	// A closed server: every request is a transport error.
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	if _, err := run(t, "load", "-url", url, "-c", "2", "-n", "8"); err == nil {
		t.Fatal("load against a dead server should error")
	}
}
