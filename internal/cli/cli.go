// Package cli implements the dqwebre command-line interface: model
// loading, validation, diagram rendering, transformation, code generation
// and statistics. It is separated from the main package so every command
// path is unit-testable against an io.Writer.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/modeldriven/dqwebre/internal/codegen"
	"github.com/modeldriven/dqwebre/internal/diagram"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	idq "github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/validate"
	"github.com/modeldriven/dqwebre/internal/webre"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

// Run dispatches one CLI invocation, writing output to out. args excludes
// the program name: e.g. Run([]string{"validate", "m.xml"}, os.Stdout).
func Run(args []string, out io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("no command given; %s", usageLine)
	}
	switch args[0] {
	case "demo":
		return cmdDemo(args[1:], out)
	case "validate":
		return cmdValidate(args[1:], out)
	case "diagram":
		return cmdDiagram(args[1:], out)
	case "transform":
		return cmdTransform(args[1:], out)
	case "codegen":
		return cmdCodegen(args[1:], out)
	case "stats":
		return cmdStats(args[1:], out)
	case "diff":
		return cmdDiff(args[1:], out)
	case "trace":
		return cmdTrace(args[1:], out)
	case "load":
		return cmdLoad(args[1:], out)
	case "batch":
		return cmdBatch(args[1:], out)
	case "serve":
		return cmdServe(args[1:], out)
	case "watch":
		return cmdWatch(args[1:], out)
	default:
		return fmt.Errorf("unknown command %q; %s", args[0], usageLine)
	}
}

// usageLine summarizes the commands for error messages.
const usageLine = "commands: demo, validate, diagram, transform, codegen, stats, diff, trace, load, batch, serve, watch"

// loadModel reads an XMI (or JSON) model with the DQ_WebRE profile
// available.
func loadModel(path string) (*uml.Model, error) {
	return loadModelContext(context.Background(), path)
}

// loadModelContext is loadModel under the context's active span, so the
// deserialization cost shows up in trace trees.
func loadModelContext(ctx context.Context, path string) (*uml.Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	opts := xmi.Options{Profiles: []*uml.Profile{webre.Profile(), idq.Profile()}}
	idq.Metamodel() // ensure registered
	if strings.HasPrefix(strings.TrimSpace(string(data)), "{") {
		return xmi.UnmarshalJSONContext(ctx, data, opts)
	}
	return xmi.UnmarshalContext(ctx, data, opts)
}

// asRequirements wraps a loaded model in the analyst API. Loaded models are
// always DQ_WebRE models, so this is a plain rewrap.
func asRequirements(m *uml.Model) *idq.RequirementsModel {
	return idq.WrapModel(m)
}

func cmdDemo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit JSON instead of XMI")
	if err := fs.Parse(args); err != nil {
		return err
	}
	e, err := easychair.BuildModel()
	if err != nil {
		return err
	}
	var data []byte
	if *asJSON {
		data, err = xmi.MarshalJSON(e.Model.Model)
	} else {
		data, err = xmi.Marshal(e.Model.Model)
	}
	if err != nil {
		return err
	}
	_, err = out.Write(append(data, '\n'))
	return err
}

func cmdValidate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("validate needs exactly one model file")
	}
	m, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	eng := validate.New(m)
	for _, r := range idq.Rules() {
		eng.AddRules(validate.Rule{ID: r.ID, Class: r.Class, Expr: r.Expr, Doc: r.Doc})
	}
	eng.AddProfileConstraints(idq.Profile())
	rep := eng.Run()
	for _, d := range rep.Diagnostics {
		fmt.Fprintln(out, d)
	}
	fmt.Fprintf(out, "%d checks, %d findings\n", rep.Checked, len(rep.Diagnostics))
	if !rep.OK() {
		return fmt.Errorf("model is not well-formed")
	}
	fmt.Fprintln(out, "model is well-formed")
	return nil
}

func cmdDiagram(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diagram", flag.ContinueOnError)
	kind := fs.String("kind", "usecase", "usecase, activity, metamodel or profile")
	format := fs.String("format", "plantuml", "plantuml or dot")
	title := fs.String("title", "", "diagram title")
	activity := fs.String("activity", "", "activity name (for -kind activity; default: first activity)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *kind {
	case "metamodel":
		if *format == "dot" {
			fmt.Fprint(out, diagram.MetamodelDOT(idq.Metamodel(), *title, nil))
		} else {
			fmt.Fprint(out, diagram.MetamodelPlantUML(idq.Metamodel(), *title, nil))
		}
		return nil
	case "profile":
		if *format == "dot" {
			fmt.Fprint(out, diagram.ProfileDOT(idq.Profile(), *title))
		} else {
			fmt.Fprint(out, diagram.ProfilePlantUML(idq.Profile(), *title))
		}
		return nil
	}

	if fs.NArg() != 1 {
		return fmt.Errorf("diagram -kind %s needs a model file", *kind)
	}
	m, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	switch *kind {
	case "usecase":
		if *format == "dot" {
			fmt.Fprint(out, diagram.UseCaseDOT(m, *title))
		} else {
			fmt.Fprint(out, diagram.UseCasePlantUML(m, *title))
		}
	case "activity":
		acts, err := m.AllInstancesOf(uml.MetaActivity)
		if err != nil || len(acts) == 0 {
			return fmt.Errorf("model has no activities")
		}
		target := acts[0]
		if *activity != "" {
			target = nil
			for _, a := range acts {
				if a.GetString("name") == *activity {
					target = a
				}
			}
			if target == nil {
				return fmt.Errorf("no activity named %q", *activity)
			}
		}
		if *format == "dot" {
			fmt.Fprint(out, diagram.ActivityDOT(m, target, *title))
		} else {
			fmt.Fprint(out, diagram.ActivityPlantUML(m, target, *title))
		}
	default:
		return fmt.Errorf("unknown diagram kind %q", *kind)
	}
	return nil
}

func cmdTransform(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("transform", flag.ContinueOnError)
	asXMI := fs.Bool("xmi", false, "emit the DQSR model as XMI instead of a summary")
	design := fs.Bool("design", false, "continue to the design model and emit its class diagram")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("transform needs exactly one model file")
	}
	m, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	dqsr, trace, err := transform.RunDQR2DQSR(asRequirements(m))
	if err != nil {
		return err
	}
	if *design {
		designModel, _, err := transform.RunDQSR2Design(dqsr)
		if err != nil {
			return err
		}
		fmt.Fprint(out, diagram.ClassDiagramPlantUML(designModel, "Design model derived from "+m.Name()))
		return nil
	}
	if *asXMI {
		data, err := xmi.Marshal(dqsr)
		if err != nil {
			return err
		}
		_, err = out.Write(append(data, '\n'))
		return err
	}
	reqs, _ := dqsr.AllInstancesOf("SoftwareRequirement")
	for _, r := range reqs {
		fmt.Fprintf(out, "DQSR-%d [%s] %s\n", r.GetInt("id"), r.GetString("dimension"), r.GetString("title"))
		fmt.Fprintf(out, "    %s\n", r.GetString("description"))
		for _, c := range r.GetRefs("realizedBy") {
			fmt.Fprintf(out, "    realized by %s %q\n", c.GetString("kind"), c.GetString("name"))
		}
		for _, c := range r.GetRefs("checks") {
			fmt.Fprintf(out, "    check: %s()\n", c.GetString("function"))
		}
	}
	fmt.Fprintf(out, "%d trace links\n", len(trace.Links))
	return nil
}

func cmdCodegen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("codegen", flag.ContinueOnError)
	kind := fs.String("kind", "sql", "sql, html or go")
	icName := fs.String("case", "", "InformationCase name (for -kind html)")
	pkg := fs.String("pkg", "dqchecks", "package name (for -kind go)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("codegen needs exactly one model file")
	}
	m, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	rm := asRequirements(m)
	switch *kind {
	case "sql":
		ddl, err := codegen.SQLDDL(rm)
		if err != nil {
			return err
		}
		fmt.Fprint(out, ddl)
	case "html":
		if *icName == "" {
			ics, _ := m.AllInstancesOf(idq.MetaInformationCase)
			if len(ics) == 0 {
				return fmt.Errorf("model has no InformationCase")
			}
			*icName = ics[0].GetString("name")
		}
		form, err := codegen.HTMLForm(rm, *icName)
		if err != nil {
			return err
		}
		fmt.Fprint(out, form)
	case "go":
		dqsr, _, err := transform.RunDQR2DQSR(rm)
		if err != nil {
			return err
		}
		src, err := codegen.GoValidator(dqsr, *pkg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, src)
	default:
		return fmt.Errorf("unknown codegen kind %q", *kind)
	}
	return nil
}

func cmdStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("stats needs exactly one model file")
	}
	m, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "model %q (metamodel %s): %d elements\n",
		m.Name(), m.Metamodel().Name(), m.Len())
	for _, s := range m.Stats() {
		fmt.Fprintf(out, "  %-20s %d\n", s.Class, s.Count)
	}
	var applied int
	for _, o := range m.Objects() {
		applied += len(m.StereotypeNames(o))
	}
	fmt.Fprintf(out, "  %-20s %d\n", "«applications»", applied)
	fmt.Fprintf(out, "registered metamodels: %s\n", strings.Join(metamodel.RegisteredNames(), ", "))
	return nil
}

// cmdTrace runs the full DQR→DQSR→design→enforcement pipeline on one model
// under a tracer and prints the resulting span tree with per-stage
// durations — the observability layer's answer to "where does the time
// go?". With -json the tree is emitted as JSON instead of text; with
// -out the trace is additionally written as Chrome trace-event JSON, a
// shareable artifact loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
func cmdTrace(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the span tree as JSON instead of text")
	outFile := fs.String("out", "", "also write the trace as Chrome trace-event JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace needs exactly one model file")
	}

	tracer := obs.NewTracer(16)
	ctx, root := tracer.Start(context.Background(), "pipeline")
	runErr := runTracedPipeline(ctx, fs.Arg(0))
	root.Fail(runErr)
	root.End()

	if *asJSON {
		data, err := obs.MarshalSpanJSON(root)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
	} else {
		obs.WriteTree(out, root)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		err = obs.WriteChromeTrace(f, tracer.Finished())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Chrome trace to %s (load it at ui.perfetto.dev)\n", *outFile)
	}
	return runErr
}

// runTracedPipeline executes load → validate → DQR2DQSR → DQSR2Design →
// enforcer assembly → a sample enforcement check, each stage under its own
// span in ctx.
func runTracedPipeline(ctx context.Context, path string) error {
	loadCtx, load := obs.StartSpan(ctx, "load")
	load.SetAttr("file", path)
	m, err := loadModelContext(loadCtx, path)
	if err != nil {
		load.Fail(err)
		load.End()
		return err
	}
	load.SetAttr("elements", m.Len())
	load.End()

	eng := validate.New(m)
	for _, r := range idq.Rules() {
		eng.AddRules(validate.Rule{ID: r.ID, Class: r.Class, Expr: r.Expr, Doc: r.Doc})
	}
	eng.AddProfileConstraints(idq.Profile())
	if rep := eng.RunContext(ctx); !rep.OK() {
		return fmt.Errorf("model is not well-formed: %d error(s)", len(rep.Errors()))
	}

	dqsr, _, err := transform.RunDQR2DQSRContext(ctx, asRequirements(m))
	if err != nil {
		return err
	}
	if _, _, err := transform.RunDQSR2DesignContext(ctx, dqsr); err != nil {
		return err
	}

	_, build := obs.StartSpan(ctx, "enforcer.build")
	enforcer, err := dqruntime.BuildFromDQSR(dqsr)
	if err != nil {
		build.Fail(err)
		build.End()
		return err
	}
	build.SetAttr("requirements", len(enforcer.Requirements()))
	build.SetAttr("checks", len(enforcer.Validator().Checks()))
	build.End()

	// Exercise the enforcement hot path once so the trace shows its cost;
	// an empty record drives every check.
	enforcer.CheckInputContext(ctx, dqruntime.Record{})
	return nil
}

// cmdDiff prints the structural differences between two model files.
func cmdDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two model files")
	}
	oldM, err := loadModel(fs.Arg(0))
	if err != nil {
		return err
	}
	newM, err := loadModel(fs.Arg(1))
	if err != nil {
		return err
	}
	ds := xmi.Diff(oldM, newM)
	for _, d := range ds {
		fmt.Fprintln(out, d)
	}
	fmt.Fprintf(out, "%d difference(s)\n", len(ds))
	return nil
}
