package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

// writeDemoModel marshals the case-study requirements model (a DQR model:
// the batch command must transform it before enforcing).
func writeDemoModel(t *testing.T, dir string) string {
	t.Helper()
	e, err := easychair.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	data, err := xmi.Marshal(e.Model.Model)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "easychair.xml")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdBatchNDJSONJSONReport(t *testing.T) {
	dir := t.TempDir()
	model := writeDemoModel(t, dir)
	records := filepath.Join(dir, "records.ndjson")
	ndjson := strings.Repeat(`{"first_name":"G","last_name":"H","email_address":"g@h.io","overall_evaluation":2,"reviewer_confidence":3}`+"\n", 40) +
		`{"first_name":"G","last_name":"H","email_address":"g@h.io","overall_evaluation":9,"reviewer_confidence":3}` + "\n" +
		"not json\n"
	if err := os.WriteFile(records, []byte(ndjson), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err := Run([]string{"batch", "-model", model, "-in", records, "-workers", "3", "-report", "json"}, &out)
	if err != nil {
		t.Fatalf("batch: %v\n%s", err, out.String())
	}
	var res struct {
		Records   int64 `json:"records"`
		Passed    int64 `json:"passed"`
		Failed    int64 `json:"failed"`
		Malformed int64 `json:"malformed"`
		Workers   int   `json:"workers"`
		Chars     []struct {
			Characteristic string `json:"characteristic"`
		} `json:"characteristics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if res.Records != 41 || res.Passed != 40 || res.Failed != 1 || res.Malformed != 1 {
		t.Fatalf("report = %+v", res)
	}
	if res.Workers != 3 || len(res.Chars) == 0 {
		t.Fatalf("report = %+v", res)
	}
}

func TestCmdBatchCSVTextReport(t *testing.T) {
	dir := t.TempDir()
	model := writeDemoModel(t, dir)
	records := filepath.Join(dir, "records.csv")
	csv := "first_name,last_name,email_address,overall_evaluation,reviewer_confidence\n" +
		"Grace,Hopper,grace@navy.mil,2,3\n" +
		"Alan,Turing,alan@bletchley.uk,9,3\n"
	if err := os.WriteFile(records, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := Run([]string{"batch", "-model", model, "-in", records}, &out); err != nil {
		t.Fatalf("batch: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"2 records", "passed 1, failed 1", "check_precision"} {
		if !strings.Contains(got, want) {
			t.Fatalf("text report missing %q:\n%s", want, got)
		}
	}
}

func TestCmdBatchFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := Run([]string{"batch"}, &out); err == nil {
		t.Fatal("missing -model/-in must error")
	}
	if err := Run([]string{"batch", "-model", "x", "-in", "y", "-report", "xml"}, &out); err == nil {
		t.Fatal("unknown report format must error")
	}
	if err := Run([]string{"batch", "-model", "x", "-in", "y", "-format", "tsv"}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown record format") {
		t.Fatalf("unknown record format: err = %v", err)
	}
}
