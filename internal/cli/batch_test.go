package cli

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

// writeDemoModel marshals the case-study requirements model (a DQR model:
// the batch command must transform it before enforcing).
func writeDemoModel(t *testing.T, dir string) string {
	t.Helper()
	e, err := easychair.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	data, err := xmi.Marshal(e.Model.Model)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "easychair.xml")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdBatchNDJSONJSONReport(t *testing.T) {
	dir := t.TempDir()
	model := writeDemoModel(t, dir)
	records := filepath.Join(dir, "records.ndjson")
	ndjson := strings.Repeat(`{"first_name":"G","last_name":"H","email_address":"g@h.io","overall_evaluation":2,"reviewer_confidence":3}`+"\n", 40) +
		`{"first_name":"G","last_name":"H","email_address":"g@h.io","overall_evaluation":9,"reviewer_confidence":3}` + "\n" +
		"not json\n"
	if err := os.WriteFile(records, []byte(ndjson), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err := Run([]string{"batch", "-model", model, "-in", records, "-workers", "3", "-report", "json"}, &out)
	if err != nil {
		t.Fatalf("batch: %v\n%s", err, out.String())
	}
	var res struct {
		Records   int64 `json:"records"`
		Passed    int64 `json:"passed"`
		Failed    int64 `json:"failed"`
		Malformed int64 `json:"malformed"`
		Workers   int   `json:"workers"`
		Chars     []struct {
			Characteristic string `json:"characteristic"`
		} `json:"characteristics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if res.Records != 41 || res.Passed != 40 || res.Failed != 1 || res.Malformed != 1 {
		t.Fatalf("report = %+v", res)
	}
	if res.Workers != 3 || len(res.Chars) == 0 {
		t.Fatalf("report = %+v", res)
	}
}

func TestCmdBatchCSVTextReport(t *testing.T) {
	dir := t.TempDir()
	model := writeDemoModel(t, dir)
	records := filepath.Join(dir, "records.csv")
	csv := "first_name,last_name,email_address,overall_evaluation,reviewer_confidence\n" +
		"Grace,Hopper,grace@navy.mil,2,3\n" +
		"Alan,Turing,alan@bletchley.uk,9,3\n"
	if err := os.WriteFile(records, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := Run([]string{"batch", "-model", model, "-in", records}, &out); err != nil {
		t.Fatalf("batch: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"2 records", "passed 1, failed 1", "check_precision"} {
		if !strings.Contains(got, want) {
			t.Fatalf("text report missing %q:\n%s", want, got)
		}
	}
}

func TestCmdBatchFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := Run([]string{"batch"}, &out); err == nil {
		t.Fatal("missing -model/-in must error")
	}
	if err := Run([]string{"batch", "-model", "x", "-in", "y", "-report", "xml"}, &out); err == nil {
		t.Fatal("unknown report format must error")
	}
	if err := Run([]string{"batch", "-model", "x", "-in", "y", "-format", "tsv"}, &out); err == nil ||
		!strings.Contains(err.Error(), "unknown record format") {
		t.Fatalf("unknown record format: err = %v", err)
	}
}

// TestCmdBatchCrossRecordChecks drives the cross-record flags end to end:
// -unique, the two-pass -ref/-ref-key/-ref-field referential check, and
// -timeliness, all surfaced in the JSON report's cross_records block.
func TestCmdBatchCrossRecordChecks(t *testing.T) {
	dir := t.TempDir()
	model := writeDemoModel(t, dir)
	records := filepath.Join(dir, "records.ndjson")
	ndjson := `{"first_name":"G","last_name":"H","email_address":"g@h.io","overall_evaluation":2,"reviewer_confidence":3,"id":"r1","track":"t1","submitted":"2026-01-01T00:00:00Z"}` + "\n" +
		`{"first_name":"A","last_name":"T","email_address":"a@t.io","overall_evaluation":1,"reviewer_confidence":2,"id":"r2","track":"t9","submitted":"1999-01-01T00:00:00Z"}` + "\n" +
		`{"first_name":"B","last_name":"L","email_address":"b@l.io","overall_evaluation":0,"reviewer_confidence":1,"id":"r1","track":"t2","submitted":"not-a-date"}` + "\n"
	if err := os.WriteFile(records, []byte(ndjson), 0o644); err != nil {
		t.Fatal(err)
	}
	ref := filepath.Join(dir, "tracks.ndjson")
	if err := os.WriteFile(ref, []byte(`{"id":"t1"}`+"\n"+`{"id":"t2"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	err := Run([]string{"batch", "-model", model, "-in", records, "-report", "json",
		"-unique", "id",
		"-ref", ref, "-ref-key", "id", "-ref-field", "track",
		// The clock is real here, so the bounds are generous: the 1999
		// record stays stale and the 2026 record stays within -max-age for
		// decades either way.
		"-timeliness", "submitted", "-windows", "720h,8760h", "-max-age", "175200h"}, &out)
	if err != nil {
		t.Fatalf("batch: %v\n%s", err, out.String())
	}
	var res struct {
		Records int64 `json:"records"`
		Cross   []struct {
			Check      string `json:"check"`
			Records    int64  `json:"records"`
			Violations int64  `json:"violations"`
			Passed     bool   `json:"passed"`
		} `json:"cross_records"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out.String())
	}
	if res.Records != 3 || len(res.Cross) != 3 {
		t.Fatalf("report = %+v", res)
	}
	// Duplicate id r1, dangling track t9, one stale + one unparsable
	// timestamp.
	for i, want := range []struct {
		check      string
		violations int64
	}{
		{"check_uniqueness", 1},
		{"check_referential", 1},
		{"check_timeliness", 2},
	} {
		got := res.Cross[i]
		if got.Check != want.check || got.Violations != want.violations || got.Passed {
			t.Fatalf("cross finding %d = %+v, want %s with %d violations", i, got, want.check, want.violations)
		}
	}

	// -ref without -ref-key is a usage error.
	if err := Run([]string{"batch", "-model", model, "-in", records, "-ref", ref}, &out); err == nil {
		t.Fatal("-ref without -ref-key accepted")
	}
}
