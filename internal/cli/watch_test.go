package cli

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/modeldriven/dqwebre/internal/obs"
)

// qualityServer serves a canned /debug/quality payload, counting polls.
func qualityServer(t *testing.T, rep obs.SeriesReport) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/quality" {
			http.NotFound(w, r)
			return
		}
		polls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rep)
	}))
	t.Cleanup(srv.Close)
	return srv, &polls
}

func TestWatchRendersQualityTable(t *testing.T) {
	cur := obs.Window{Count: 40, Failures: 2, Mean: 0.95}
	delta := -0.03
	ewma := 0.96
	srv, polls := qualityServer(t, obs.SeriesReport{
		Name: "dq_score",
		Series: []obs.SeriesSnapshot{
			{
				Labels:  obs.Labels{"characteristic": "Precision", "context": "pc"},
				Current: &cur, Delta: &delta, EWMA: &ewma,
			},
			{
				Labels: obs.Labels{"characteristic": "Completeness", "context": "chair"},
			},
		},
	})

	out, err := run(t, "watch", "-url", srv.URL, "-n", "2", "-every", "10ms", "-plain")
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, out)
	}
	if got := polls.Load(); got != 2 {
		t.Errorf("polled %d times, want 2 (-n 2)", got)
	}
	for _, want := range []string{
		"CHARACTERISTIC", "CONTEXT", "SCORE", "DELTA", "EWMA", "TREND",
		"Precision", "pc", "0.950", "-0.030", "0.960", "DOWN",
		"Completeness", "chair",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
	// The series without a current window renders placeholders, and the
	// table is sorted: Completeness before Precision.
	if strings.Index(out, "Completeness") > strings.Index(out, "Precision") {
		t.Errorf("table not sorted by characteristic:\n%s", out)
	}
	if strings.Contains(out, "\033[2J") {
		t.Errorf("-plain must not clear the screen:\n%q", out)
	}
}

func TestWatchEmptyReport(t *testing.T) {
	srv, _ := qualityServer(t, obs.SeriesReport{Name: "dq_score"})
	out, err := run(t, "watch", "-url", srv.URL, "-n", "1", "-plain")
	if err != nil {
		t.Fatalf("watch: %v\n%s", err, out)
	}
	if !strings.Contains(out, "no quality series yet") {
		t.Errorf("empty report should explain itself:\n%s", out)
	}
}

func TestWatchServerDown(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close()
	// One poll against a dead server: the error is printed and returned.
	out, err := run(t, "watch", "-url", url, "-n", "1", "-plain")
	if err == nil {
		t.Fatalf("watch against a dead server should error:\n%s", out)
	}
	if !strings.Contains(out, "watch:") {
		t.Errorf("error not surfaced in output:\n%s", out)
	}
}

func TestWatchFlagValidation(t *testing.T) {
	if _, err := run(t, "watch", "extra"); err == nil {
		t.Fatal("positional args accepted")
	}
	if _, err := run(t, "watch", "-every", "0s"); err == nil {
		t.Fatal("non-positive -every accepted")
	}
}

func TestTraceOutWritesChromeTrace(t *testing.T) {
	path := demoModelFile(t)
	outFile := filepath.Join(t.TempDir(), "trace.json")
	out, err := run(t, "trace", "-out", outFile, path)
	if err != nil {
		t.Fatalf("trace -out: %v\n%s", err, out)
	}
	if !strings.Contains(out, outFile) || !strings.Contains(out, "perfetto") {
		t.Errorf("trace -out should say where the artifact went:\n%s", out)
	}

	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			Dur   float64 `json:"dur"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("artifact is not valid trace JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		names[ev.Name] = true
		if ev.Phase != "X" {
			t.Errorf("event %s: ph = %q, want X", ev.Name, ev.Phase)
		}
	}
	for _, want := range []string{"pipeline", "load", "transform.DQR2DQSR", "enforcer.check_input"} {
		if !names[want] {
			t.Errorf("trace artifact missing span %q (has %v)", want, names)
		}
	}
}
