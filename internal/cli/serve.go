package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqserve"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// cmdServe runs the batch validator as a resident HTTP service — the
// dqserve job API. Clients POST record streams against a model and poll
// for the exact report `dqwebre batch` would have printed:
//
//	dqwebre serve -model demo.xml -staging /var/lib/dqwebre &
//	curl -X POST --data-binary @reviews.ndjson 'localhost:8081/v1/jobs?unique=email_address'
//	curl localhost:8081/v1/jobs/<id>
//	curl localhost:8081/v1/jobs/<id>/report
//
// The staging directory makes jobs durable: a restarted server re-admits
// the jobs it finds there and re-runs them from their staged input.
// SIGINT/SIGTERM drains — in-flight jobs finish (up to -drain-timeout),
// queued jobs stay staged for the next boot.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8081", "listen address")
	modelPath := fs.String("model", "", "default model file jobs validate against")
	modelDir := fs.String("model-dir", "", "directory job ?model= references resolve in (default: the -model file's directory)")
	staging := fs.String("staging", "", "job staging directory (default: a temporary directory — jobs do not survive restarts)")
	jobWorkers := fs.Int("job-workers", 1, "jobs validated concurrently")
	maxJobs := fs.Int("max-jobs", 32, "queued+running job bound; submissions beyond are shed with 503")
	rate := fs.Float64("rate", 0, "per-client sustained submissions/second; excess shed with 429 (0 disables)")
	rateBurst := fs.Int("rate-burst", 8, "per-client burst headroom above -rate")
	checkpointEvery := fs.Duration("checkpoint-every", 2*time.Second, "progress checkpoint interval for running jobs")
	retainFor := fs.Duration("retain", time.Hour, "how long finished jobs (and their staged files/reports) stay available; <0 keeps them forever")
	maxBody := fs.Int64("max-body", 4<<30, "submission body cap in bytes; larger uploads are rejected with 413 (<0 disables)")
	readTimeout := fs.Duration("read-timeout", 5*time.Minute, "max time to read one submission body")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "grace period for running jobs on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}
	if *modelPath == "" {
		return fmt.Errorf("serve needs -model (the default model jobs validate against)")
	}
	if *staging == "" {
		dir, err := os.MkdirTemp("", "dqserve-staging-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		*staging = dir
		fmt.Fprintf(out, "staging in temporary %s (pass -staging for durable jobs)\n", dir)
	}
	if *modelDir == "" {
		*modelDir = filepath.Dir(*modelPath)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := dqserve.Config{
		StagingDir:      *staging,
		LoadEnforcer:    LoadEnforcer,
		ModelDir:        *modelDir,
		DefaultModel:    *modelPath,
		JobWorkers:      *jobWorkers,
		MaxJobs:         *maxJobs,
		RatePerSec:      *rate,
		RateBurst:       *rateBurst,
		CheckpointEvery: *checkpointEvery,
		RetainFor:       *retainFor,
		MaxBodyBytes:    *maxBody,
	}
	return runServe(ctx, cfg, *addr, *readTimeout, *drainTimeout, nil, out)
}

// runServe builds the job server and serves it until ctx cancels, then
// drains: the HTTP front door closes first, then running jobs get up to
// drainTimeout to finish (queued jobs stay staged for the next boot's
// resume scan). When ln is nil a listener opens on addr; tests pass their
// own to learn the bound port.
func runServe(ctx context.Context, cfg dqserve.Config, addr string, readTimeout, drainTimeout time.Duration, ln net.Listener, out io.Writer) error {
	s, err := dqserve.NewServer(cfg)
	if err != nil {
		return err
	}
	s.Start()

	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadTimeout:       readTimeout,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
	if ln == nil {
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return err
		}
	}
	obs.Logger("dqserve").Info("validation service up",
		"addr", ln.Addr().String(), "model", cfg.DefaultModel, "staging", cfg.StagingDir)
	fmt.Fprintf(out, "listening on %s (submit jobs at /v1/jobs, metrics at /metrics, quality at /debug/quality)\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		// Serve never returns nil; any return before a shutdown signal is a
		// real failure (port stolen, listener closed, ...).
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(out, "shutdown: draining jobs (up to %s)\n", drainTimeout)
	deadline := time.Now().Add(drainTimeout)
	httpCtx, cancelHTTP := context.WithDeadline(context.Background(), deadline)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		_ = srv.Close()
	}
	<-errc // reap the Serve goroutine

	drainCtx, cancelDrain := context.WithDeadline(context.Background(), deadline)
	defer cancelDrain()
	if err := s.Drain(drainCtx); err != nil {
		return err
	}
	fmt.Fprintln(out, "shutdown complete")
	return nil
}
