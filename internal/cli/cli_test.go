package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// demoModelFile writes the case-study model to a temp file and returns its
// path.
func demoModelFile(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run([]string{"demo"}, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "easychair.xml")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func run(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := Run(args, &buf)
	return buf.String(), err
}

func TestRunDispatch(t *testing.T) {
	if _, err := run(t); err == nil {
		t.Fatal("no command should error")
	}
	if _, err := run(t, "bogus"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("bogus command: %v", err)
	}
}

func TestDemoEmitsXMIAndJSON(t *testing.T) {
	out, err := run(t, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `metamodel="DQ_WebRE"`) {
		t.Fatalf("demo output is not XMI:\n%.200s", out)
	}
	out, err = run(t, "demo", "-json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"metamodel": "DQ_WebRE"`) {
		t.Fatalf("demo -json output:\n%.200s", out)
	}
}

func TestValidateRoundTrip(t *testing.T) {
	path := demoModelFile(t)
	out, err := run(t, "validate", path)
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, out)
	}
	if !strings.Contains(out, "model is well-formed") {
		t.Fatalf("output:\n%s", out)
	}
	// Arg validation.
	if _, err := run(t, "validate"); err == nil {
		t.Fatal("missing file arg accepted")
	}
	if _, err := run(t, "validate", "/nonexistent.xml"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateJSONInput(t *testing.T) {
	var buf bytes.Buffer
	if err := Run([]string{"demo", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "validate", path)
	if err != nil {
		t.Fatalf("validate json: %v\n%s", err, out)
	}
}

func TestDiagramKinds(t *testing.T) {
	path := demoModelFile(t)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"diagram", "-kind", "usecase", path}, "«InformationCase»"},
		{[]string{"diagram", "-kind", "usecase", "-format", "dot", path}, "digraph"},
		{[]string{"diagram", "-kind", "activity", path}, "«UserTransaction»"},
		{[]string{"diagram", "-kind", "metamodel"}, "class InformationCase"},
		{[]string{"diagram", "-kind", "profile"}, "<<stereotype>>"},
		{[]string{"diagram", "-kind", "profile", "-format", "dot"}, "digraph"},
		{[]string{"diagram", "-kind", "metamodel", "-format", "dot"}, "digraph"},
		{[]string{"diagram", "-kind", "activity", "-format", "dot", path}, "subgraph cluster_0"},
		{[]string{"diagram", "-kind", "activity", "-activity", "Add new review to submission", path}, "state"},
	}
	for _, c := range cases {
		out, err := run(t, c.args...)
		if err != nil {
			t.Errorf("%v: %v", c.args, err)
			continue
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%v output lacks %q", c.args, c.want)
		}
	}
	// Errors.
	for _, bad := range [][]string{
		{"diagram", "-kind", "usecase"},
		{"diagram", "-kind", "nope", path},
		{"diagram", "-kind", "activity", "-activity", "ghost", path},
	} {
		if _, err := run(t, bad...); err == nil {
			t.Errorf("%v should fail", bad)
		}
	}
}

func TestTransformSummaryXMIAndDesign(t *testing.T) {
	path := demoModelFile(t)
	out, err := run(t, "transform", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DQSR-1", "[Completeness]", "realized by validator", "trace links"} {
		if !strings.Contains(out, want) {
			t.Errorf("transform summary lacks %q:\n%s", want, out)
		}
	}
	out, err = run(t, "transform", "-xmi", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `metamodel="DQSR"`) {
		t.Fatalf("transform -xmi output:\n%.200s", out)
	}
	out, err = run(t, "transform", "-design", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TraceabilityMetadata", "«satisfy»", "@startuml"} {
		if !strings.Contains(out, want) {
			t.Errorf("design output lacks %q", want)
		}
	}
	if _, err := run(t, "transform"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCodegenKinds(t *testing.T) {
	path := demoModelFile(t)
	out, err := run(t, "codegen", "-kind", "sql", path)
	if err != nil || !strings.Contains(out, "CREATE TABLE") {
		t.Fatalf("sql: %v\n%s", err, out)
	}
	out, err = run(t, "codegen", "-kind", "html", path)
	if err != nil || !strings.Contains(out, "<form") {
		t.Fatalf("html (default case): %v\n%s", err, out)
	}
	out, err = run(t, "codegen", "-kind", "html", "-case", "Add all data as result of review", path)
	if err != nil || !strings.Contains(out, "evaluation scores") {
		t.Fatalf("html (named case): %v\n%s", err, out)
	}
	out, err = run(t, "codegen", "-kind", "go", "-pkg", "checks", path)
	if err != nil || !strings.Contains(out, "package checks") {
		t.Fatalf("go: %v\n%s", err, out)
	}
	if _, err := run(t, "codegen", "-kind", "nope", path); err == nil {
		t.Fatal("bad kind accepted")
	}
	if _, err := run(t, "codegen"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestStats(t *testing.T) {
	path := demoModelFile(t)
	out, err := run(t, "stats", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DQ_Requirement", "«applications»", "registered metamodels"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats lack %q:\n%s", want, out)
		}
	}
	if _, err := run(t, "stats"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestValidateCatchesCorruption: a model mutated to violate Table 3 is
// rejected by the validate command.
func TestValidateCatchesCorruption(t *testing.T) {
	path := demoModelFile(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the include linking the WebProcess to the InformationCase: the
	// InformationCase then violates its Table 3 constraint.
	mutated := strings.Replace(string(data),
		`<slot name="include">`, `<slot name="extend">`, 1)
	bad := filepath.Join(t.TempDir(), "bad.xml")
	if err := os.WriteFile(bad, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "validate", bad)
	if err == nil {
		t.Fatalf("corrupted model validated:\n%s", out)
	}
}

func TestDiffCommand(t *testing.T) {
	path := demoModelFile(t)
	out, err := run(t, "diff", path, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0 difference(s)") {
		t.Fatalf("self-diff:\n%s", out)
	}
	// Mutate a copy: rename the web process.
	data, _ := os.ReadFile(path)
	mutated := strings.Replace(string(data),
		"Add new review to submission", "Add amended review", 1)
	other := filepath.Join(t.TempDir(), "other.xml")
	if err := os.WriteFile(other, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = run(t, "diff", path, other)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "slot-changed") || !strings.Contains(out, "Add amended review") {
		t.Fatalf("diff output:\n%s", out)
	}
	if _, err := run(t, "diff", path); err == nil {
		t.Fatal("single arg accepted")
	}
	if _, err := run(t, "diff", path, "/nope.xml"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := run(t, "diff", "/nope.xml", path); err == nil {
		t.Fatal("missing first file accepted")
	}
}

// TestTracePrintsSpanTree runs the traced pipeline on the demo model and
// checks the nested span tree covers every stage with durations.
func TestTracePrintsSpanTree(t *testing.T) {
	path := demoModelFile(t)
	out, err := run(t, "trace", path)
	if err != nil {
		t.Fatalf("trace: %v\n%s", err, out)
	}
	for _, want := range []string{
		"pipeline ",
		"├─ load ",
		"xmi.unmarshal",
		"validate.run",
		"transform.DQR2DQSR",
		"transform.DQSR2Design",
		"enforcer.build",
		"enforcer.check_input",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	// Every line carries a duration.
	if !strings.Contains(out, "µs") && !strings.Contains(out, "ms") {
		t.Errorf("trace output has no durations:\n%s", out)
	}
}

func TestTraceJSON(t *testing.T) {
	path := demoModelFile(t)
	out, err := run(t, "trace", "-json", path)
	if err != nil {
		t.Fatalf("trace -json: %v\n%s", err, out)
	}
	for _, want := range []string{`"name": "pipeline"`, `"duration_ms"`, `"children"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON trace missing %q:\n%s", want, out)
		}
	}
}

func TestTraceNeedsOneFile(t *testing.T) {
	if _, err := run(t, "trace"); err == nil {
		t.Fatal("trace with no file should error")
	}
}
