package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqserve"
)

func TestCmdServeRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := Run([]string{"serve"}, &out); err == nil || !strings.Contains(err.Error(), "-model") {
		t.Fatalf("serve without -model: %v", err)
	}
	if err := Run([]string{"serve", "-model", "m.xml", "extra"}, &out); err == nil ||
		!strings.Contains(err.Error(), "positional") {
		t.Fatalf("serve with positional args: %v", err)
	}
}

// TestRunServeLifecycle boots the service on an ephemeral port through the
// same path `dqwebre serve` uses, validates one job end to end over HTTP,
// then cancels the context and checks the drain completes.
func TestRunServeLifecycle(t *testing.T) {
	dir := t.TempDir()
	model := writeDemoModel(t, dir)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	cfg := dqserve.Config{
		StagingDir:   filepath.Join(dir, "staging"),
		LoadEnforcer: LoadEnforcer,
		DefaultModel: model,
		ModelDir:     dir,
	}
	var mu sync.Mutex
	var out strings.Builder
	lockedWrite := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return out.Write(p)
	})
	done := make(chan error, 1)
	go func() {
		done <- runServe(ctx, cfg, "", time.Minute, 10*time.Second, ln, lockedWrite)
	}()

	records := strings.Repeat(`{"first_name":"G","last_name":"H","email_address":"g@h.io","overall_evaluation":2,"reviewer_confidence":3}`+"\n", 25)
	resp, err := http.Post(base+"/v1/jobs", "application/x-ndjson", strings.NewReader(records))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var status struct {
			State   string `json:"state"`
			Records int64  `json:"records_read"`
		}
		if err := json.Unmarshal(body, &status); err != nil {
			t.Fatalf("status not JSON: %s", body)
		}
		if status.State == "done" {
			if status.Records != 25 {
				t.Fatalf("records_read = %d, want 25", status.Records)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", status.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runServe did not drain")
	}
	mu.Lock()
	defer mu.Unlock()
	for _, want := range []string{"listening on", "shutdown complete"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCmdLoadJobModeNeedsBody(t *testing.T) {
	var out strings.Builder
	err := Run([]string{"load", "-jobs", "4"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-job-body") {
		t.Fatalf("load -jobs without -job-body: %v", err)
	}
}

// TestCmdLoadJobMode drives the job-mode flags end to end against a stub
// job API (accept → poll → done) and checks the report.
func TestCmdLoadJobMode(t *testing.T) {
	var mu sync.Mutex
	polls := map[string]int{}
	next := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		mu.Lock()
		next++
		id := fmt.Sprintf("j%d", next)
		mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":%q}`, id)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		polls[r.PathValue("id")]++
		n := polls[r.PathValue("id")]
		mu.Unlock()
		state := "running"
		if n >= 2 {
			state = "done"
		}
		fmt.Fprintf(w, `{"state":%q}`, state)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	body := filepath.Join(t.TempDir(), "records.ndjson")
	if err := os.WriteFile(body, []byte(`{"a":"1"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = Run([]string{"load", "-url", "http://" + ln.Addr().String(),
		"-jobs", "4", "-job-body", body, "-c", "2", "-poll", "1ms"}, &out)
	if err != nil {
		t.Fatalf("load -jobs: %v\n%s", err, out.String())
	}
	for _, want := range []string{"4 submitted", "4 done", "shed:        0"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

// writerFunc adapts a function to io.Writer.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
