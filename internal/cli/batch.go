package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/transform"
)

// cmdBatch validates a whole record file against a model's DQ
// requirements: the dataset-scale counterpart of the per-form enforcement
// the EasyChair app performs. It accepts either a DQSR model directly or
// a DQ_WebRE requirements model (which it transforms first), streams
// NDJSON or CSV records through the dqbatch worker pool, and reports the
// merged per-characteristic statistics as text or JSON. Cross-record
// checks ride along: -unique enforces key uniqueness across the dataset,
// -ref/-ref-key runs the two-pass referential check (first pass builds
// the reference key set, second validates foreign keys against it), and
// -timeliness measures dataset freshness windows.
func cmdBatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	modelPath := fs.String("model", "", "DQSR (or DQ_WebRE requirements) model file")
	in := fs.String("in", "", "records file: NDJSON or CSV ('-' = stdin)")
	format := fs.String("format", "", "ndjson or csv (default: from the file extension)")
	workers := fs.Int("workers", 0, "validation workers (0 = GOMAXPROCS)")
	report := fs.String("report", "text", "report format: text or json")
	exemplars := fs.Int("exemplars", 3, "failure exemplars kept per characteristic (-1 = none)")
	rows := fs.Bool("rows", false, "force the per-record row path (disable vectorized evaluation)")
	decodeErrs := fs.Int("decode-errors", 10, "decode errors reported with line numbers (-1 = none)")
	unique := fs.String("unique", "", "comma-separated key fields that must be unique across the dataset")
	uniqueMaxExact := fs.Int("unique-max-exact", 0,
		"distinct keys tracked exactly before the uniqueness check degrades to a Bloom filter (0 = default, -1 = always exact)")
	ref := fs.String("ref", "", "reference records file for the referential check (NDJSON or CSV)")
	refKey := fs.String("ref-key", "", "comma-separated key fields in the reference file")
	refField := fs.String("ref-field", "", "comma-separated foreign-key fields in the validated records (default: -ref-key)")
	timeliness := fs.String("timeliness", "", "timestamp field for the dataset timeliness check")
	windows := fs.String("windows", "24h,168h", "comma-separated freshness windows for -timeliness")
	maxAge := fs.Duration("max-age", 0, "oldest acceptable age for -timeliness (0 = largest window)")
	maxSkew := fs.Duration("max-skew", 0, "future-timestamp tolerance for -timeliness (0 = 5m)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the batch run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file when the batch finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("batch takes no positional arguments")
	}
	if *modelPath == "" || *in == "" {
		return fmt.Errorf("batch needs -model and -in")
	}
	if *report != "text" && *report != "json" {
		return fmt.Errorf("unknown report format %q (text or json)", *report)
	}
	if *format != "" && *format != "ndjson" && *format != "csv" {
		return fmt.Errorf("unknown record format %q (ndjson or csv)", *format)
	}

	if (*ref == "") != (*refKey == "") {
		return fmt.Errorf("-ref and -ref-key go together")
	}

	// Profiling hooks: where batch time goes (ingest vs eval) is exactly
	// what the zero-copy work needs to verify, so the command can capture
	// it directly instead of requiring a test-harness run.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dqwebre: writing -memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dqwebre: writing -memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	enf, err := LoadEnforcer(*modelPath)
	if err != nil {
		return err
	}
	src, closeIn, err := openSource(*in, *format)
	if err != nil {
		return err
	}
	defer closeIn()

	// A batch over millions of records can run a while; Ctrl-C stops the
	// stream and still prints the partial report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var cross []dqruntime.StatefulCheck
	if *unique != "" {
		cross = append(cross, dqruntime.UniquenessCheck{
			Fields:   splitFields(*unique),
			MaxExact: *uniqueMaxExact,
		})
	}
	if *ref != "" {
		// First pass: stream the reference dataset into an exact key set.
		refSrc, closeRef, err := openSource(*ref, "")
		if err != nil {
			return err
		}
		keys, err := dqbatch.BuildKeySet(ctx, refSrc, splitFields(*refKey))
		closeRef()
		if err != nil {
			return fmt.Errorf("building reference key set from %s: %w", *ref, err)
		}
		fkFields := *refField
		if fkFields == "" {
			fkFields = *refKey
		}
		cross = append(cross, dqruntime.ReferentialCheck{
			Fields:  splitFields(fkFields),
			Ref:     keys,
			RefName: filepath.Base(*ref),
		})
	}
	if *timeliness != "" {
		var wins []time.Duration
		for _, w := range splitFields(*windows) {
			d, err := time.ParseDuration(w)
			if err != nil {
				return fmt.Errorf("bad -windows entry %q: %w", w, err)
			}
			wins = append(wins, d)
		}
		cross = append(cross, dqruntime.TimelinessCheck{
			Field:   *timeliness,
			Windows: wins,
			MaxAge:  *maxAge,
			MaxSkew: *maxSkew,
		})
	}

	res, runErr := dqbatch.Run(ctx, enf.Validator(), src, dqbatch.Options{
		Workers:         *workers,
		MaxExemplars:    *exemplars,
		ForceRows:       *rows,
		MaxDecodeErrors: *decodeErrs,
		CrossRecord:     cross,
	})
	// RenderReport is the single rendering path shared with the job server
	// (internal/dqserve): a SIGINT partial report here and a cancelled job's
	// report there come out byte-identical.
	if err := dqbatch.RenderReport(out, res, *report); err != nil {
		return err
	}
	return runErr
}

// LoadEnforcer loads a model file and assembles its runtime enforcer,
// running the DQR→DQSR transformation first when the file holds a
// requirements model rather than a DQSR model. The serve command injects
// it into the dqserve job server as its model loader.
func LoadEnforcer(path string) (*dqruntime.Enforcer, error) {
	m, err := loadModel(path)
	if err != nil {
		return nil, err
	}
	if _, ok := m.Metamodel().FindClass("SoftwareRequirement"); !ok {
		dqsr, _, err := transform.RunDQR2DQSR(asRequirements(m))
		if err != nil {
			return nil, err
		}
		m = dqsr
	}
	return dqruntime.BuildFromDQSR(m)
}

// splitFields splits a comma-separated field list, trimming whitespace and
// dropping empty entries.
func splitFields(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// openSource opens the record stream, picking the decoder from -format or
// the file extension (.csv → CSV, anything else → NDJSON). File paths go
// through dqbatch.OpenFileSource, which memory-maps regular files where
// the platform allows; stdin stays on the streaming decoders.
func openSource(path, format string) (dqbatch.Source, func() error, error) {
	if format != "" && format != "ndjson" && format != "csv" {
		return nil, nil, fmt.Errorf("unknown record format %q (ndjson or csv)", format)
	}
	if path == "-" {
		closeIn := func() error { return nil }
		if format == "csv" {
			return dqbatch.NewCSVSource(os.Stdin), closeIn, nil
		}
		return dqbatch.NewNDJSONSource(os.Stdin), closeIn, nil
	}
	return dqbatch.OpenFileSource(path, format)
}
