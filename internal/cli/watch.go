package cli

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"github.com/modeldriven/dqwebre/internal/obs"
)

// cmdWatch polls a live server's /debug/quality endpoint and renders a
// refreshing per-characteristic score/trend table — `top` for data
// quality. It is the operator-facing face of the windowed series layer:
// where /metrics feeds a scrape pipeline, watch answers "is Completeness
// for reviewers degrading right now?" straight in the terminal.
func cmdWatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	url := fs.String("url", "http://localhost:8080", "target base URL")
	every := fs.Duration("every", 2*time.Second, "poll interval")
	count := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
	plain := fs.Bool("plain", false, "no screen clearing between refreshes (for logs and pipes)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-poll request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("watch takes no positional arguments")
	}
	if *every <= 0 {
		return fmt.Errorf("-every must be positive")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &http.Client{Timeout: *timeout}
	endpoint := strings.TrimSuffix(*url, "/") + "/debug/quality"

	for i := 0; ; i++ {
		rep, err := fetchQuality(ctx, client, endpoint)
		if !*plain {
			fmt.Fprint(out, "\033[2J\033[H") // clear screen, home cursor
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			fmt.Fprintf(out, "watch: %v\n", err)
		} else {
			renderQuality(out, *url, rep)
		}
		if *count > 0 && i+1 >= *count {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*every):
		}
	}
}

// fetchQuality GETs and decodes one /debug/quality payload.
func fetchQuality(ctx context.Context, client *http.Client, endpoint string) (*obs.SeriesReport, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", endpoint, resp.Status)
	}
	var rep obs.SeriesReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", endpoint, err)
	}
	return &rep, nil
}

// renderQuality writes one refresh of the score/trend table.
func renderQuality(out io.Writer, url string, rep *obs.SeriesReport) {
	fmt.Fprintf(out, "%s — %s @ %s\n\n", rep.Name, url, time.Now().Format("15:04:05"))
	if len(rep.Series) == 0 {
		fmt.Fprintln(out, "no quality series yet — submit data to populate the windows")
		return
	}
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CHARACTERISTIC\tCONTEXT\tCHECKS\tFAIL\tSCORE\tDELTA\tEWMA\tTREND")
	for _, s := range sortedSeries(rep.Series) {
		checks, fails, score := "-", "-", "-"
		if s.Current != nil {
			checks = fmt.Sprintf("%d", s.Current.Count)
			fails = fmt.Sprintf("%d", s.Current.Failures)
			score = fmt.Sprintf("%.3f", s.Current.Mean)
		}
		delta, ewma := "-", "-"
		if s.Delta != nil {
			delta = fmt.Sprintf("%+.3f", *s.Delta)
		}
		if s.EWMA != nil {
			ewma = fmt.Sprintf("%.3f", *s.EWMA)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			s.Labels["characteristic"], s.Labels["context"],
			checks, fails, score, delta, ewma, trendArrow(s.Delta))
	}
	tw.Flush()
}

// sortedSeries orders by characteristic then context for a stable table.
func sortedSeries(series []obs.SeriesSnapshot) []obs.SeriesSnapshot {
	out := append([]obs.SeriesSnapshot(nil), series...)
	sort.Slice(out, func(i, j int) bool {
		if a, b := out[i].Labels["characteristic"], out[j].Labels["characteristic"]; a != b {
			return a < b
		}
		return out[i].Labels["context"] < out[j].Labels["context"]
	})
	return out
}

// trendArrow compresses the delta into a glance: improving, degrading, or
// flat (within ±0.005).
func trendArrow(delta *float64) string {
	switch {
	case delta == nil:
		return ""
	case *delta > 0.005:
		return "up"
	case *delta < -0.005:
		return "DOWN"
	default:
		return "flat"
	}
}
