package diagram

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
)

func TestMetamodelPlantUMLFig1(t *testing.T) {
	out := MetamodelPlantUML(dqwebre.Metamodel(), "Fig. 1 Extended metamodel with DQ elements", nil)
	for _, want := range []string{
		"@startuml", "@enduml",
		"class InformationCase", "class DQ_Requirement", "class DQ_Req_Specification",
		"class Add_DQ_Metadata", "class DQ_Metadata", "class DQ_Validator", "class DQConstraint",
		"enum DQDimension", "Completeness", "Traceability",
		`package "DQ_WebRE.Behavior"`, `package "DQ_WebRE.Structure"`,
		"UseCase <|-- InformationCase",
		"UseCase <|-- DQ_Requirement",
		"Requirement <|-- DQ_Req_Specification",
		"Action <|-- Add_DQ_Metadata",
		"Class <|-- DQ_Metadata",
		"Class <|-- DQ_Validator",
		"Class <|-- DQConstraint",
		"upper_bound : Integer",
		"lower_bound : Integer",
		"dq_metadata : String [0..*]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 1 PlantUML lacks %q", want)
		}
	}
}

func TestMetamodelDOTFig1(t *testing.T) {
	out := MetamodelDOT(dqwebre.Metamodel(), "Fig. 1", nil)
	for _, want := range []string{
		"digraph DQ_WebRE", "rankdir=BT",
		"DQ_WebRE_Behavior_InformationCase",
		"DQ_WebRE_Structure_DQConstraint",
		"arrowhead=empty",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 1 DOT lacks %q", want)
		}
	}
}

func TestMetamodelFilter(t *testing.T) {
	out := MetamodelPlantUML(dqwebre.Metamodel(), "", func(c *metamodel.Class) bool {
		return c.Name() == dqwebre.MetaDQValidator
	})
	if !strings.Contains(out, "class DQ_Validator") {
		t.Error("filtered class missing")
	}
	if strings.Contains(out, "class DQ_Metadata ") {
		t.Error("filter leaked other classes")
	}
}

func TestProfilePlantUMLFigs2to5(t *testing.T) {
	p := dqwebre.Profile()
	// Fig. 2: the use-case stereotypes.
	fig2 := ProfilePlantUML(p, "Fig. 2", dqwebre.MetaInformationCase, dqwebre.MetaDQRequirement)
	for _, want := range []string{
		"class InformationCase <<stereotype>>",
		"class DQ_Requirement <<stereotype>>",
		"class UseCase <<metaclass>>",
		"UseCase <|.. InformationCase",
		"Must be related to at least one element of \"WebProcess\" type.",
	} {
		if !strings.Contains(fig2, want) {
			t.Errorf("Fig. 2 lacks %q", want)
		}
	}
	if strings.Contains(fig2, "DQ_Metadata") {
		t.Error("Fig. 2 should not include class stereotypes")
	}

	// Fig. 3: the activity stereotype.
	fig3 := ProfilePlantUML(p, "Fig. 3", dqwebre.MetaAddDQMetadata)
	if !strings.Contains(fig3, "class Add_DQ_Metadata <<stereotype>>") {
		t.Error("Fig. 3 lacks Add_DQ_Metadata")
	}

	// Fig. 4: the class stereotypes with tagged values.
	fig4 := ProfilePlantUML(p, "Fig. 4",
		dqwebre.MetaDQMetadata, dqwebre.MetaDQValidator, dqwebre.MetaDQConstraint)
	for _, want := range []string{
		"DQ_metadata : set(String)",
		"upper_bound : Integer",
		"lower_bound : Integer",
		"class Class <<metaclass>>",
	} {
		if !strings.Contains(fig4, want) {
			t.Errorf("Fig. 4 lacks %q", want)
		}
	}

	// Fig. 5: the requirement stereotype.
	fig5 := ProfilePlantUML(p, "Fig. 5", dqwebre.MetaDQReqSpecification)
	for _, want := range []string{
		"class DQ_Req_Specification <<stereotype>>",
		"ID : Integer",
		"Text : String",
	} {
		if !strings.Contains(fig5, want) {
			t.Errorf("Fig. 5 lacks %q", want)
		}
	}
}

func TestProfileDOT(t *testing.T) {
	out := ProfileDOT(dqwebre.Profile(), "profile")
	for _, want := range []string{
		"digraph DQ_WebRE",
		"«stereotype»",
		"InformationCase",
		"style=dashed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profile DOT lacks %q", want)
		}
	}
}

func TestUseCaseDiagramFig6(t *testing.T) {
	e := easychair.MustBuildModel()
	out := UseCasePlantUML(e.Model.Model, "Fig. 6 Use case diagram specifying DQ requirements")
	for _, want := range []string{
		"actor \"«WebUser» PC member\"",
		"«WebProcess» Add new review to submission",
		"«InformationCase» Add all data as result of review",
		"«DQ_Requirement» check that data will be accessed only by authorized users",
		"«DQ_Requirement» verify that all data have been completed by reviewer",
		"«DQ_Requirement» check who is able to add or change a revision",
		"«DQ_Requirement» validate the score assigned to each topic of revision",
		"<<include>>",
		"first_name, last_name, email_address",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 6 lacks %q", want)
		}
	}
	// Exactly five include edges: process→IC plus IC→4 requirements.
	if got := strings.Count(out, "<<include>>"); got != 5 {
		t.Errorf("include edges = %d, want 5", got)
	}

	dot := UseCaseDOT(e.Model.Model, "Fig. 6")
	if !strings.Contains(dot, "shape=ellipse") || !strings.Contains(dot, "«include»") {
		t.Error("Fig. 6 DOT malformed")
	}
}

func TestActivityDiagramFig7(t *testing.T) {
	e := easychair.MustBuildModel()
	out := ActivityPlantUML(e.Model.Model, e.Activity, "Fig. 7 Activity diagram with Data Quality management")
	for _, want := range []string{
		"«UserTransaction» add reviewer information",
		"«UserTransaction» add evaluation scores",
		"«Add_DQ_Metadata» store metadata of traceability",
		"«Add_DQ_Metadata» add metadata about confidentiality",
		"«Add_DQ_Metadata» Verify Precision of data",
		"«Add_DQ_Metadata» Check Completeness of entered data",
		"«DQ_Metadata» traceability metadata",
		"«DQ_Validator» review DQ validator",
		"[*] -->",
		"--> [*]",
		"[yes]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig. 7 lacks %q", want)
		}
	}

	dot := ActivityDOT(e.Model.Model, e.Activity, "Fig. 7")
	for _, want := range []string{
		"subgraph cluster_0",
		"label=\"PC member\"",
		"label=\"EasyChair\"",
		"shape=diamond",
		"shape=doublecircle",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Fig. 7 DOT lacks %q", want)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	a := UseCasePlantUML(easychair.MustBuildModel().Model.Model, "t")
	b := UseCasePlantUML(easychair.MustBuildModel().Model.Model, "t")
	if a != b {
		t.Fatal("diagram output not deterministic across identical builds")
	}
}

func TestEscAndIdent(t *testing.T) {
	if esc(`a"b\c`+"\n") != `a\"b\\c\n` {
		t.Fatalf("esc = %q", esc(`a"b\c`+"\n"))
	}
	if ident("a b-c.1") != "a_b_c_1" {
		t.Fatalf("ident = %q", ident("a b-c.1"))
	}
	if ident("") != "_" {
		t.Fatal("empty ident")
	}
}

func TestStereoLabelFallsBackToMetaclass(t *testing.T) {
	m := uml.NewModel("t", dqwebre.Metamodel())
	// A heavyweight WebProcess with no stereotype applied still shows its
	// metaclass in guillemets.
	o := m.MustCreate("WebProcess")
	if got := stereoLabel(m, o); got != "«WebProcess» " {
		t.Fatalf("stereoLabel = %q", got)
	}
	uc := m.MustCreate("UseCase")
	if got := stereoLabel(m, uc); got != "" {
		t.Fatalf("plain UseCase label = %q", got)
	}
}

func TestClassDiagramForDesignModel(t *testing.T) {
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	design, _, err := transform.RunDQSR2Design(dqsr)
	if err != nil {
		t.Fatal(err)
	}
	out := ClassDiagramPlantUML(design, "Design model")
	for _, want := range []string{
		"TraceabilityMetadata",
		"ReviewDQValidator",
		"stored_by : String",
		"stored_date : Timestamp",
		"check_precision(record): Boolean",
		"«requirement»",
		"«satisfy»",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("design diagram lacks %q", want)
		}
	}
	dot := ClassDiagramDOT(design, "Design model")
	if !strings.Contains(dot, "shape=record") || !strings.Contains(dot, "«satisfy»") {
		t.Error("design DOT malformed")
	}
}
