// Package diagram renders metamodels, profiles and models as PlantUML and
// Graphviz DOT text, regenerating the paper's figures:
//
//	Fig. 1  — class diagram of the extended metamodel   (MetamodelPlantUML/DOT)
//	Figs 2-5 — profile stereotype diagrams               (ProfilePlantUML/DOT)
//	Fig. 6  — use-case diagram with DQ requirements      (UseCasePlantUML/DOT)
//	Fig. 7  — activity diagram with DQ management        (ActivityPlantUML/DOT)
//
// Output is deterministic for a given model construction order, so the
// figures are stable across runs and asserted byte-for-byte in tests.
package diagram

import (
	"fmt"
	"strings"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// esc escapes a label for DOT double-quoted strings.
func esc(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// ident produces a DOT/PlantUML-safe identifier from an xid or label.
func ident(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// MetamodelPlantUML renders a metamodel package (classes, inheritance,
// typed references, enumerations) as a PlantUML class diagram. filter, when
// non-nil, selects which classes to include; edges to excluded classes are
// still drawn as type annotations.
func MetamodelPlantUML(pkg *metamodel.Package, title string, filter func(*metamodel.Class) bool) string {
	var b strings.Builder
	b.WriteString("@startuml\n")
	if title != "" {
		fmt.Fprintf(&b, "title %s\n", title)
	}
	b.WriteString("skinparam classAttributeIconSize 0\n")

	var classes []*metamodel.Class
	for _, c := range pkg.AllClasses() {
		if filter == nil || filter(c) {
			classes = append(classes, c)
		}
	}
	included := map[*metamodel.Class]bool{}
	for _, c := range classes {
		included[c] = true
	}

	// Group classes by owning subpackage for package frames.
	byPkg := map[string][]*metamodel.Class{}
	var pkgOrder []string
	for _, c := range classes {
		key := c.Package().QualifiedName()
		if _, ok := byPkg[key]; !ok {
			pkgOrder = append(pkgOrder, key)
		}
		byPkg[key] = append(byPkg[key], c)
	}

	for _, key := range pkgOrder {
		fmt.Fprintf(&b, "package \"%s\" {\n", key)
		for _, c := range byPkg[key] {
			kw := "class"
			if c.IsAbstract() {
				kw = "abstract class"
			}
			fmt.Fprintf(&b, "  %s %s {\n", kw, c.Name())
			for _, p := range c.OwnProperties() {
				if _, isClass := p.Type().(*metamodel.Class); isClass {
					continue // drawn as an edge below
				}
				fmt.Fprintf(&b, "    %s : %s [%s]\n", p.Name(), p.Type().Name(), p.MultiplicityString())
			}
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}

	// Enumerations.
	for _, e := range allEnums(pkg) {
		fmt.Fprintf(&b, "enum %s {\n", e.Name())
		for _, l := range e.Literals() {
			fmt.Fprintf(&b, "  %s\n", l)
		}
		b.WriteString("}\n")
	}

	// Inheritance and reference edges.
	for _, c := range classes {
		for _, s := range c.Supers() {
			fmt.Fprintf(&b, "%s <|-- %s\n", s.Name(), c.Name())
		}
		for _, p := range c.OwnProperties() {
			if target, ok := p.Type().(*metamodel.Class); ok {
				if included[target] || true { // type edges always drawn
					fmt.Fprintf(&b, "%s --> \"%s\" %s : %s\n",
						c.Name(), p.MultiplicityString(), target.Name(), p.Name())
				}
			}
		}
	}
	b.WriteString("@enduml\n")
	return b.String()
}

// MetamodelDOT renders a metamodel package as a DOT digraph with
// record-shaped class nodes.
func MetamodelDOT(pkg *metamodel.Package, title string, filter func(*metamodel.Class) bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", ident(pkg.Name()))
	if title != "" {
		fmt.Fprintf(&b, "  label=\"%s\";\n", esc(title))
	}
	b.WriteString("  rankdir=BT;\n  node [shape=record, fontsize=10];\n")
	var classes []*metamodel.Class
	for _, c := range pkg.AllClasses() {
		if filter == nil || filter(c) {
			classes = append(classes, c)
		}
	}
	for _, c := range classes {
		var attrs []string
		for _, p := range c.OwnProperties() {
			if _, isClass := p.Type().(*metamodel.Class); isClass {
				continue
			}
			attrs = append(attrs, fmt.Sprintf("%s: %s [%s]", p.Name(), p.Type().Name(), p.MultiplicityString()))
		}
		label := c.Name()
		if c.IsAbstract() {
			label = "«abstract»\\n" + label
		}
		fmt.Fprintf(&b, "  %s [label=\"{%s|%s}\"];\n",
			ident(c.QualifiedName()), esc(label), esc(strings.Join(attrs, "\\l")))
	}
	for _, c := range classes {
		for _, s := range c.Supers() {
			fmt.Fprintf(&b, "  %s -> %s [arrowhead=empty];\n",
				ident(c.QualifiedName()), ident(s.QualifiedName()))
		}
		for _, p := range c.OwnProperties() {
			if target, ok := p.Type().(*metamodel.Class); ok {
				fmt.Fprintf(&b, "  %s -> %s [label=\"%s [%s]\", arrowhead=vee, style=solid];\n",
					ident(c.QualifiedName()), ident(target.QualifiedName()),
					esc(p.Name()), p.MultiplicityString())
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func allEnums(pkg *metamodel.Package) []*metamodel.Enumeration {
	var out []*metamodel.Enumeration
	out = append(out, pkg.Enumerations()...)
	for _, sub := range pkg.Packages() {
		out = append(out, allEnums(sub)...)
	}
	return out
}

// ProfilePlantUML renders profile stereotypes (optionally filtered by name)
// with their base-class extension arrows, tagged values and constraint
// notes — the shape of the paper's Figs. 2–5.
func ProfilePlantUML(p *uml.Profile, title string, names ...string) string {
	var b strings.Builder
	b.WriteString("@startuml\n")
	if title != "" {
		fmt.Fprintf(&b, "title %s\n", title)
	}
	b.WriteString("skinparam classAttributeIconSize 0\n")
	selected := selectStereotypes(p, names)

	baseSeen := map[string]bool{}
	for _, s := range selected {
		for _, base := range s.Bases() {
			if !baseSeen[base.Name()] {
				baseSeen[base.Name()] = true
				fmt.Fprintf(&b, "class %s <<metaclass>>\n", base.Name())
			}
		}
	}
	for _, s := range selected {
		fmt.Fprintf(&b, "class %s <<stereotype>> {\n", s.Name())
		for _, tag := range s.Tags() {
			fmt.Fprintf(&b, "  %s : %s\n", tag.Name, tag.TypeString())
		}
		b.WriteString("}\n")
		for _, base := range s.Bases() {
			fmt.Fprintf(&b, "%s <|.. %s : «extends»\n", base.Name(), s.Name())
		}
		for _, c := range s.Constraints() {
			fmt.Fprintf(&b, "note bottom of %s\n  {%s} %s\nend note\n", s.Name(), c.Name, c.Doc)
		}
	}
	b.WriteString("@enduml\n")
	return b.String()
}

// ProfileDOT renders profile stereotypes as a DOT digraph.
func ProfileDOT(p *uml.Profile, title string, names ...string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", ident(p.Name()))
	if title != "" {
		fmt.Fprintf(&b, "  label=\"%s\";\n", esc(title))
	}
	b.WriteString("  rankdir=BT;\n  node [shape=record, fontsize=10];\n")
	selected := selectStereotypes(p, names)
	baseSeen := map[string]bool{}
	for _, s := range selected {
		for _, base := range s.Bases() {
			if !baseSeen[base.Name()] {
				baseSeen[base.Name()] = true
				fmt.Fprintf(&b, "  %s [label=\"{«metaclass»\\n%s}\"];\n", ident(base.Name()), esc(base.Name()))
			}
		}
	}
	for _, s := range selected {
		var tags []string
		for _, tag := range s.Tags() {
			tags = append(tags, tag.Name+": "+tag.TypeString())
		}
		fmt.Fprintf(&b, "  %s [label=\"{«stereotype»\\n%s|%s}\"];\n",
			ident(s.Name()), esc(s.Name()), esc(strings.Join(tags, "\\l")))
		for _, base := range s.Bases() {
			fmt.Fprintf(&b, "  %s -> %s [arrowhead=empty, style=dashed];\n",
				ident(s.Name()), ident(base.Name()))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func selectStereotypes(p *uml.Profile, names []string) []*uml.Stereotype {
	if len(names) == 0 {
		return p.Stereotypes()
	}
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*uml.Stereotype
	for _, s := range p.Stereotypes() {
		if want[s.Name()] {
			out = append(out, s)
		}
	}
	return out
}

// stereoLabel renders «A» «B» prefixes for an element's applied stereotypes.
func stereoLabel(m *uml.Model, o *metamodel.Object) string {
	names := m.StereotypeNames(o)
	if len(names) == 0 {
		// Heavyweight instances of non-UML metaclasses display their
		// metaclass as a stereotype, as Enterprise Architect does.
		switch o.Class().Name() {
		case uml.MetaUseCase, uml.MetaActor, uml.MetaClass, uml.MetaAction,
			uml.MetaActivity, uml.MetaComment, uml.MetaRequirement:
			return ""
		default:
			return "«" + o.Class().Name() + "» "
		}
	}
	var b strings.Builder
	for _, n := range names {
		b.WriteString("«" + n + "» ")
	}
	return b.String()
}

// isKind reports whether the object's metaclass conforms to the named class
// in the model's metamodel.
func isKind(m *uml.Model, o *metamodel.Object, class string) bool {
	c, ok := m.Metamodel().FindClass(class)
	return ok && o.IsA(c)
}
