package diagram

import (
	"fmt"
	"strings"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// UseCasePlantUML renders the model's use-case view: actors, use cases with
// stereotype labels, actor-use-case associations, include/extend edges and
// comment notes — the shape of the paper's Fig. 6.
func UseCasePlantUML(m *uml.Model, title string) string {
	m.AssignXIDs()
	var b strings.Builder
	b.WriteString("@startuml\n")
	if title != "" {
		fmt.Fprintf(&b, "title %s\n", title)
	}
	b.WriteString("left to right direction\n")

	for _, o := range m.Objects() {
		switch {
		case isKind(m, o, uml.MetaActor):
			fmt.Fprintf(&b, "actor \"%s%s\" as %s\n",
				stereoLabel(m, o), o.GetString("name"), ident(o.XID()))
		case isKind(m, o, uml.MetaUseCase):
			fmt.Fprintf(&b, "usecase \"%s%s\" as %s\n",
				stereoLabel(m, o), o.GetString("name"), ident(o.XID()))
		case isKind(m, o, uml.MetaClass):
			fmt.Fprintf(&b, "rectangle \"%s%s\" as %s\n",
				stereoLabel(m, o), o.GetString("name"), ident(o.XID()))
		}
	}
	// Edges.
	for _, o := range m.Objects() {
		switch {
		case isKind(m, o, uml.MetaAssociation):
			ends := o.GetRefs("memberEnd")
			if len(ends) == 2 {
				fmt.Fprintf(&b, "%s -- %s\n", ident(ends[0].XID()), ident(ends[1].XID()))
			}
		case isKind(m, o, uml.MetaUseCase):
			for _, inc := range o.GetRefs("include") {
				if add := inc.GetRef("addition"); add != nil {
					fmt.Fprintf(&b, "%s ..> %s : <<include>>\n", ident(o.XID()), ident(add.XID()))
				}
			}
			for _, ext := range o.GetRefs("extend") {
				if ec := ext.GetRef("extendedCase"); ec != nil {
					fmt.Fprintf(&b, "%s ..> %s : <<extend>>\n", ident(o.XID()), ident(ec.XID()))
				}
			}
		case isKind(m, o, uml.MetaComment):
			fmt.Fprintf(&b, "note \"%s\" as %s\n", esc(o.GetString("body")), ident(o.XID()))
			for _, ann := range o.GetRefs("annotatedElement") {
				fmt.Fprintf(&b, "%s .. %s\n", ident(o.XID()), ident(ann.XID()))
			}
		}
	}
	b.WriteString("@enduml\n")
	return b.String()
}

// UseCaseDOT renders the use-case view as a DOT graph.
func UseCaseDOT(m *uml.Model, title string) string {
	m.AssignXIDs()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", ident(m.Name()))
	if title != "" {
		fmt.Fprintf(&b, "  label=\"%s\";\n", esc(title))
	}
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")
	for _, o := range m.Objects() {
		label := esc(stereoLabel(m, o) + o.GetString("name"))
		switch {
		case isKind(m, o, uml.MetaActor):
			fmt.Fprintf(&b, "  %s [shape=plaintext, label=\"%s\"];\n", ident(o.XID()), label)
		case isKind(m, o, uml.MetaUseCase):
			fmt.Fprintf(&b, "  %s [shape=ellipse, label=\"%s\"];\n", ident(o.XID()), label)
		case isKind(m, o, uml.MetaClass):
			fmt.Fprintf(&b, "  %s [shape=box, label=\"%s\"];\n", ident(o.XID()), label)
		case isKind(m, o, uml.MetaComment):
			fmt.Fprintf(&b, "  %s [shape=note, label=\"%s\"];\n", ident(o.XID()), esc(o.GetString("body")))
		}
	}
	for _, o := range m.Objects() {
		switch {
		case isKind(m, o, uml.MetaAssociation):
			ends := o.GetRefs("memberEnd")
			if len(ends) == 2 {
				fmt.Fprintf(&b, "  %s -> %s [dir=none];\n", ident(ends[0].XID()), ident(ends[1].XID()))
			}
		case isKind(m, o, uml.MetaUseCase):
			for _, inc := range o.GetRefs("include") {
				if add := inc.GetRef("addition"); add != nil {
					fmt.Fprintf(&b, "  %s -> %s [style=dashed, label=\"«include»\"];\n",
						ident(o.XID()), ident(add.XID()))
				}
			}
			for _, ext := range o.GetRefs("extend") {
				if ec := ext.GetRef("extendedCase"); ec != nil {
					fmt.Fprintf(&b, "  %s -> %s [style=dashed, label=\"«extend»\"];\n",
						ident(o.XID()), ident(ec.XID()))
				}
			}
		case isKind(m, o, uml.MetaComment):
			for _, ann := range o.GetRefs("annotatedElement") {
				fmt.Fprintf(&b, "  %s -> %s [style=dotted, dir=none];\n", ident(o.XID()), ident(ann.XID()))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ActivityPlantUML renders one activity's graph with swimlanes and
// stereotyped nodes — the shape of the paper's Fig. 7. Structural elements
// (DQ_Metadata, DQ_Validator, WebUI) referenced by nodes are rendered as
// linked rectangles.
func ActivityPlantUML(m *uml.Model, activity *metamodel.Object, title string) string {
	m.AssignXIDs()
	var b strings.Builder
	b.WriteString("@startuml\n")
	if title != "" {
		fmt.Fprintf(&b, "title %s\n", title)
	}

	nodes := activity.GetRefs("nodes")
	edges := activity.GetRefs("edges")

	// PlantUML's structured activity syntax cannot express arbitrary
	// graphs, so the graph form uses the state-diagram dialect, which can.
	for _, n := range nodes {
		switch n.Class().Name() {
		case uml.MetaInitialNode:
			// rendered implicitly via [*] edges
		case uml.MetaActivityFinalNode:
			// rendered implicitly via [*] edges
		default:
			label := stereoLabel(m, n) + n.GetString("name")
			fmt.Fprintf(&b, "state \"%s\" as %s\n", esc(label), ident(n.XID()))
		}
	}
	for _, e := range edges {
		src, dst := e.GetRef("source"), e.GetRef("target")
		if src == nil || dst == nil {
			continue
		}
		from, to := ident(src.XID()), ident(dst.XID())
		if src.Class().Name() == uml.MetaInitialNode {
			from = "[*]"
		}
		if dst.Class().Name() == uml.MetaActivityFinalNode {
			to = "[*]"
		}
		guard := e.GetString("guard")
		if guard != "" {
			fmt.Fprintf(&b, "%s --> %s : [%s]\n", from, to, esc(guard))
		} else {
			fmt.Fprintf(&b, "%s --> %s\n", from, to)
		}
	}
	// Structural elements wired to Add_DQ_Metadata nodes.
	for _, n := range nodes {
		for _, prop := range []string{"metadata", "validator"} {
			if _, ok := n.Class().Property(prop); !ok {
				continue
			}
			if target := n.GetRef(prop); target != nil {
				fmt.Fprintf(&b, "state \"%s\" as %s\n",
					esc(stereoLabel(m, target)+target.GetString("name")), ident(target.XID()))
				fmt.Fprintf(&b, "%s --> %s : %s\n", ident(n.XID()), ident(target.XID()), prop)
			}
		}
	}
	b.WriteString("@enduml\n")
	return b.String()
}

// ActivityDOT renders one activity's graph as DOT, with swimlane clusters.
func ActivityDOT(m *uml.Model, activity *metamodel.Object, title string) string {
	m.AssignXIDs()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", ident(activity.GetString("name")))
	if title != "" {
		fmt.Fprintf(&b, "  label=\"%s\";\n", esc(title))
	}
	b.WriteString("  rankdir=TB;\n  node [fontsize=10];\n")

	nodes := activity.GetRefs("nodes")
	edges := activity.GetRefs("edges")
	partitions := activity.GetRefs("partitions")

	byPartition := map[*metamodel.Object][]*metamodel.Object{}
	var unpartitioned []*metamodel.Object
	for _, n := range nodes {
		if p := n.GetRef("inPartition"); p != nil {
			byPartition[p] = append(byPartition[p], n)
		} else {
			unpartitioned = append(unpartitioned, n)
		}
	}
	emitNode := func(indent string, n *metamodel.Object) {
		label := esc(stereoLabel(m, n) + n.GetString("name"))
		switch n.Class().Name() {
		case uml.MetaInitialNode:
			fmt.Fprintf(&b, "%s%s [shape=circle, style=filled, fillcolor=black, label=\"\", width=0.2];\n", indent, ident(n.XID()))
		case uml.MetaActivityFinalNode:
			fmt.Fprintf(&b, "%s%s [shape=doublecircle, style=filled, fillcolor=black, label=\"\", width=0.15];\n", indent, ident(n.XID()))
		case uml.MetaDecisionNode, uml.MetaMergeNode:
			fmt.Fprintf(&b, "%s%s [shape=diamond, label=\"%s\"];\n", indent, ident(n.XID()), label)
		case uml.MetaForkNode, uml.MetaJoinNode:
			fmt.Fprintf(&b, "%s%s [shape=box, style=filled, fillcolor=black, label=\"\", height=0.08];\n", indent, ident(n.XID()))
		default:
			fmt.Fprintf(&b, "%s%s [shape=box, style=rounded, label=\"%s\"];\n", indent, ident(n.XID()), label)
		}
	}
	for i, p := range partitions {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=\"%s\";\n", i, esc(p.GetString("name")))
		for _, n := range byPartition[p] {
			emitNode("    ", n)
		}
		b.WriteString("  }\n")
	}
	for _, n := range unpartitioned {
		emitNode("  ", n)
	}
	for _, e := range edges {
		src, dst := e.GetRef("source"), e.GetRef("target")
		if src == nil || dst == nil {
			continue
		}
		guard := e.GetString("guard")
		if guard != "" {
			fmt.Fprintf(&b, "  %s -> %s [label=\"[%s]\"];\n", ident(src.XID()), ident(dst.XID()), esc(guard))
		} else {
			fmt.Fprintf(&b, "  %s -> %s;\n", ident(src.XID()), ident(dst.XID()))
		}
	}
	// Structural element links.
	emitted := map[string]bool{}
	for _, n := range nodes {
		for _, prop := range []string{"metadata", "validator"} {
			if _, ok := n.Class().Property(prop); !ok {
				continue
			}
			if target := n.GetRef(prop); target != nil {
				if !emitted[target.XID()] {
					emitted[target.XID()] = true
					fmt.Fprintf(&b, "  %s [shape=box, label=\"%s\"];\n",
						ident(target.XID()), esc(stereoLabel(m, target)+target.GetString("name")))
				}
				fmt.Fprintf(&b, "  %s -> %s [style=dashed, label=\"%s\"];\n",
					ident(n.XID()), ident(target.XID()), prop)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
