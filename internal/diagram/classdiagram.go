package diagram

import (
	"fmt"
	"strings"

	"github.com/modeldriven/dqwebre/internal/uml"
)

// ClassDiagramPlantUML renders the model's Class instances (with their
// attributes and operations) and Requirement instances (with their trace
// links) as a PlantUML class diagram — the design-view counterpart of the
// metamodel renderers, used for the output of the DQSR→Design
// transformation.
func ClassDiagramPlantUML(m *uml.Model, title string) string {
	m.AssignXIDs()
	var b strings.Builder
	b.WriteString("@startuml\n")
	if title != "" {
		fmt.Fprintf(&b, "title %s\n", title)
	}
	b.WriteString("skinparam classAttributeIconSize 0\n")

	for _, o := range m.Objects() {
		switch {
		case isKind(m, o, uml.MetaClass):
			fmt.Fprintf(&b, "class \"%s%s\" as %s {\n",
				stereoLabel(m, o), o.GetString("name"), ident(o.XID()))
			for _, a := range o.GetRefs("attributes") {
				fmt.Fprintf(&b, "  %s : %s\n", a.GetString("name"), a.GetString("type"))
			}
			for _, op := range o.GetRefs("operations") {
				fmt.Fprintf(&b, "  %s%s\n", op.GetString("name"), op.GetString("signature"))
			}
			b.WriteString("}\n")
		case isKind(m, o, uml.MetaRequirement):
			fmt.Fprintf(&b, "class \"«requirement» %s\" as %s {\n",
				o.GetString("name"), ident(o.XID()))
			fmt.Fprintf(&b, "  id = %d\n", o.GetInt("id"))
			b.WriteString("}\n")
		}
	}
	for _, o := range m.Objects() {
		if isKind(m, o, uml.MetaRequirement) {
			for _, target := range o.GetRefs("tracedTo") {
				fmt.Fprintf(&b, "%s ..> %s : «satisfy»\n", ident(target.XID()), ident(o.XID()))
			}
		}
	}
	b.WriteString("@enduml\n")
	return b.String()
}

// ClassDiagramDOT renders the same design view as DOT.
func ClassDiagramDOT(m *uml.Model, title string) string {
	m.AssignXIDs()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", ident(m.Name()))
	if title != "" {
		fmt.Fprintf(&b, "  label=\"%s\";\n", esc(title))
	}
	b.WriteString("  rankdir=BT;\n  node [shape=record, fontsize=10];\n")
	for _, o := range m.Objects() {
		switch {
		case isKind(m, o, uml.MetaClass):
			var attrs, ops []string
			for _, a := range o.GetRefs("attributes") {
				attrs = append(attrs, a.GetString("name")+": "+a.GetString("type"))
			}
			for _, op := range o.GetRefs("operations") {
				ops = append(ops, op.GetString("name")+op.GetString("signature"))
			}
			fmt.Fprintf(&b, "  %s [label=\"{%s|%s|%s}\"];\n",
				ident(o.XID()),
				esc(stereoLabel(m, o)+o.GetString("name")),
				esc(strings.Join(attrs, "\\l")),
				esc(strings.Join(ops, "\\l")))
		case isKind(m, o, uml.MetaRequirement):
			fmt.Fprintf(&b, "  %s [shape=note, label=\"%s\"];\n",
				ident(o.XID()), esc("«requirement» "+o.GetString("name")))
		}
	}
	for _, o := range m.Objects() {
		if isKind(m, o, uml.MetaRequirement) {
			for _, target := range o.GetRefs("tracedTo") {
				fmt.Fprintf(&b, "  %s -> %s [style=dashed, label=\"«satisfy»\"];\n",
					ident(target.XID()), ident(o.XID()))
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
