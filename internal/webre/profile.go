package webre

import (
	"sync"

	"github.com/modeldriven/dqwebre/internal/uml"
)

var (
	profileOnce sync.Once
	profilePtr  *uml.Profile
)

// Profile returns the WebRE UML profile of Escalona & Koch: the lightweight
// delivery of the metamodel, with one stereotype per Table 2 element
// extending the corresponding UML base class. Applying it to a plain UML
// model lets the DQ_WebRE profile's hasStereotype-based constraints work
// without any heavyweight metaclass — the pure-profile path the paper
// demonstrates with Enterprise Architect.
func Profile() *uml.Profile {
	profileOnce.Do(func() {
		profilePtr = buildProfile()
	})
	return profilePtr
}

func buildProfile() *uml.Profile {
	p := uml.NewProfile("WebRE").
		SetDoc("UML profile for Web Requirements Engineering (Escalona & Koch 2006).")

	add := func(name string, base string, doc string) *uml.Stereotype {
		s := p.AddStereotype(name, uml.MustClass(base))
		s.SetDoc(doc)
		return s
	}
	for _, row := range Table2() {
		switch row.Element {
		case MetaWebUser:
			add(row.Element, uml.MetaActor, row.Description)
		case MetaNavigation, MetaWebProcess:
			add(row.Element, uml.MetaUseCase, row.Description)
		case MetaBrowse, MetaSearch, MetaUserTransaction:
			add(row.Element, uml.MetaAction, row.Description)
		case MetaNode, MetaContent, MetaWebUI:
			add(row.Element, uml.MetaClass, row.Description)
		}
	}
	return p
}
