package webre

import (
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/ocl"
	"github.com/modeldriven/dqwebre/internal/uml"
)

func TestMetamodelStructure(t *testing.T) {
	w := Metamodel()
	if w.Name() != "WebRE" {
		t.Fatalf("name = %q", w.Name())
	}
	behavior, ok := w.Package("Behavior")
	if !ok {
		t.Fatal("Behavior package missing")
	}
	structure, ok := w.Package("Structure")
	if !ok {
		t.Fatal("Structure package missing")
	}
	for _, name := range []string{MetaWebUser, MetaNavigation, MetaWebProcess, MetaBrowse, MetaSearch, MetaUserTransaction} {
		if _, ok := behavior.Class(name); !ok {
			t.Errorf("%s not in Behavior", name)
		}
	}
	for _, name := range []string{MetaNode, MetaContent, MetaWebUI} {
		if _, ok := structure.Class(name); !ok {
			t.Errorf("%s not in Structure", name)
		}
	}
	if reg, ok := metamodel.Lookup("WebRE"); !ok || reg != w {
		t.Fatal("WebRE not registered")
	}
}

// TestSpecializationOfUML pins the UML base class of each WebRE metaclass,
// which is what lets WebRE models be treated as UML models (and lets the
// DQ_WebRE profile apply to them).
func TestSpecializationOfUML(t *testing.T) {
	cases := []struct {
		sub, super string
	}{
		{MetaWebUser, uml.MetaActor},
		{MetaNavigation, uml.MetaUseCase},
		{MetaWebProcess, uml.MetaUseCase},
		{MetaBrowse, uml.MetaAction},
		{MetaSearch, MetaBrowse},
		{MetaSearch, uml.MetaAction},
		{MetaUserTransaction, uml.MetaAction},
		{MetaNode, uml.MetaClass},
		{MetaContent, uml.MetaClass},
		{MetaWebUI, uml.MetaClass},
	}
	for _, c := range cases {
		sub := MustClass(c.sub)
		super := MustClass(c.super)
		if !sub.ConformsTo(super) {
			t.Errorf("%s should conform to %s", c.sub, c.super)
		}
	}
}

func TestUMLImportResolvesInWebREModels(t *testing.T) {
	m := uml.NewModel("test", Metamodel())
	b := uml.NewBuilder(m)
	actor := b.Actor("plain UML actor") // resolved via package import
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	wu := m.MustCreate(MetaWebUser)
	wu.MustSet("name", metamodel.String("reviewer"))
	if !actor.IsA(uml.MustClass(uml.MetaActor)) {
		t.Fatal("actor class wrong")
	}
	if !wu.IsA(uml.MustClass(uml.MetaActor)) {
		t.Fatal("WebUser should be an Actor")
	}
}

func TestTable2MatchesMetamodelDocs(t *testing.T) {
	rows := Table2()
	if len(rows) != 9 {
		t.Fatalf("Table 2 rows = %d, want 9", len(rows))
	}
	order := []string{MetaWebUser, MetaNavigation, MetaWebProcess, MetaBrowse,
		MetaSearch, MetaUserTransaction, MetaNode, MetaContent, MetaWebUI}
	for i, row := range rows {
		if row.Element != order[i] {
			t.Errorf("row %d = %s, want %s", i, row.Element, order[i])
		}
		if row.Description == "" {
			t.Errorf("row %s has empty description", row.Element)
		}
		// Every Table 2 element exists in the metamodel and is documented.
		c := MustClass(row.Element)
		if c.Doc() == "" {
			t.Errorf("metaclass %s lacks documentation", row.Element)
		}
	}
}

func TestBrowseSourceTargetRequired(t *testing.T) {
	m := uml.NewModel("t", Metamodel())
	browse := m.MustCreate(MetaBrowse)
	browse.MustSet("name", metamodel.String("go home"))
	vs := metamodel.CheckConformance(m.Model)
	// source and target are both [1]; missing both.
	if len(vs) != 2 {
		t.Fatalf("violations = %v", vs)
	}
	node1 := m.MustCreate(MetaNode)
	node1.MustSet("name", metamodel.String("home"))
	node2 := m.MustCreate(MetaNode)
	node2.MustSet("name", metamodel.String("reviews"))
	browse.MustSet("source", metamodel.Ref{Target: node1})
	browse.MustSet("target", metamodel.Ref{Target: node2})
	if vs := metamodel.CheckConformance(m.Model); len(vs) != 0 {
		t.Fatalf("violations after fix = %v", vs)
	}
}

// TestRulesEvaluate runs every WebRE OCL rule against conforming and
// violating instances.
func TestRulesEvaluate(t *testing.T) {
	m := uml.NewModel("t", Metamodel())
	n1 := m.MustCreate(MetaNode)
	n2 := m.MustCreate(MetaNode)
	good := m.MustCreate(MetaBrowse)
	good.MustSet("source", metamodel.Ref{Target: n1})
	good.MustSet("target", metamodel.Ref{Target: n2})
	bad := m.MustCreate(MetaBrowse)
	bad.MustSet("source", metamodel.Ref{Target: n1})
	bad.MustSet("target", metamodel.Ref{Target: n1}) // same node: violates rule

	nav := m.MustCreate(MetaNavigation)
	nav.MustAppend("browses", metamodel.Ref{Target: good})
	emptyNav := m.MustCreate(MetaNavigation) // violates navigation-has-browse

	rules := map[string]WellFormednessRule{}
	for _, r := range Rules() {
		rules[r.ID] = r
	}

	check := func(ruleID string, self *metamodel.Object, want bool) {
		t.Helper()
		r, ok := rules[ruleID]
		if !ok {
			t.Fatalf("rule %q missing", ruleID)
		}
		env := &ocl.Env{Model: m.Model, Vars: map[string]any{"self": self}}
		got, err := ocl.EvalBool(r.Expr, env)
		if err != nil {
			t.Fatalf("rule %s: %v", ruleID, err)
		}
		if got != want {
			t.Errorf("rule %s on %s = %v, want %v", ruleID, self.Label(), got, want)
		}
	}

	check("webre-browse-distinct-nodes", good, true)
	check("webre-browse-distinct-nodes", bad, false)
	check("webre-navigation-has-browse", nav, true)
	check("webre-navigation-has-browse", emptyNav, false)
}

func TestSearchRule(t *testing.T) {
	m := uml.NewModel("t", Metamodel())
	n1 := m.MustCreate(MetaNode)
	n2 := m.MustCreate(MetaNode)
	s := m.MustCreate(MetaSearch)
	s.MustSet("source", metamodel.Ref{Target: n1})
	s.MustSet("target", metamodel.Ref{Target: n2})
	s.MustAppend("parameters", metamodel.String("title"))

	var rule WellFormednessRule
	for _, r := range Rules() {
		if r.ID == "webre-search-has-parameters" {
			rule = r
		}
	}
	env := &ocl.Env{Model: m.Model, Vars: map[string]any{"self": s}}
	got, err := ocl.EvalBool(rule.Expr, env)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("parameterized search without content should violate")
	}
	content := m.MustCreate(MetaContent)
	s.MustSet("queriedContent", metamodel.Ref{Target: content})
	got, err = ocl.EvalBool(rule.Expr, env)
	if err != nil || !got {
		t.Fatalf("after content: %v, %v", got, err)
	}
}

func TestNavigationTargetRule(t *testing.T) {
	m := uml.NewModel("t", Metamodel())
	n1 := m.MustCreate(MetaNode)
	n2 := m.MustCreate(MetaNode)
	b := m.MustCreate(MetaBrowse)
	b.MustSet("source", metamodel.Ref{Target: n1})
	b.MustSet("target", metamodel.Ref{Target: n2})
	nav := m.MustCreate(MetaNavigation)
	nav.MustAppend("browses", metamodel.Ref{Target: b})

	var rule WellFormednessRule
	for _, r := range Rules() {
		if r.ID == "webre-navigation-target-reached" {
			rule = r
		}
	}
	env := &ocl.Env{Model: m.Model, Vars: map[string]any{"self": nav}}
	// No target node declared: rule holds vacuously.
	if got, err := ocl.EvalBool(rule.Expr, env); err != nil || !got {
		t.Fatalf("no-target case: %v, %v", got, err)
	}
	nav.MustSet("targetNode", metamodel.Ref{Target: n2})
	if got, err := ocl.EvalBool(rule.Expr, env); err != nil || !got {
		t.Fatalf("reached-target case: %v, %v", got, err)
	}
	nav.MustSet("targetNode", metamodel.Ref{Target: n1})
	if got, err := ocl.EvalBool(rule.Expr, env); err != nil || got {
		t.Fatalf("unreached-target case: %v, %v", got, err)
	}
}

func TestMustClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustClass("Nonexistent")
}

func TestRuleIDsUniqueAndParseable(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if seen[r.ID] {
			t.Errorf("duplicate rule id %s", r.ID)
		}
		seen[r.ID] = true
		if _, err := ocl.Parse(r.Expr); err != nil {
			t.Errorf("rule %s does not parse: %v", r.ID, err)
		}
		if _, ok := Metamodel().FindClass(r.Class); !ok {
			t.Errorf("rule %s targets unknown class %q", r.ID, r.Class)
		}
	}
}

func TestWebREProfileCoversTable2(t *testing.T) {
	p := Profile()
	rows := Table2()
	if got := len(p.Stereotypes()); got != len(rows) {
		t.Fatalf("stereotypes = %d, want %d", got, len(rows))
	}
	for _, row := range rows {
		s, ok := p.Stereotype(row.Element)
		if !ok {
			t.Errorf("stereotype %s missing", row.Element)
			continue
		}
		if s.Doc() != row.Description {
			t.Errorf("%s doc out of sync with Table 2", row.Element)
		}
		// The lightweight base matches the heavyweight superclass.
		heavy := MustClass(row.Element)
		base := s.Bases()[0]
		if !heavy.ConformsTo(base) {
			t.Errorf("%s: heavyweight class does not conform to profile base %s",
				row.Element, base.Name())
		}
	}
}

// TestPureProfilePath builds a model out of NOTHING but plain UML elements
// with WebRE + DQ_WebRE stereotypes — the Enterprise Architect path the
// paper demonstrates — and shows the Table 3 constraints hold through the
// hasStereotype machinery alone.
func TestPureProfilePath(t *testing.T) {
	m := uml.NewModel("pure-profile", uml.Metamodel())
	m.ApplyProfile(Profile())
	b := uml.NewBuilder(m)

	process := b.UseCase(uml.MetaUseCase, "Add new review to submission")
	ic := b.UseCase(uml.MetaUseCase, "Add all data as result of review")
	req := b.UseCase(uml.MetaUseCase, "verify completeness")
	b.Include(process, ic)
	b.Include(ic, req)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	b.Apply(process, MetaWebProcess)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if !m.HasStereotype(process, MetaWebProcess) {
		t.Fatal("WebProcess stereotype missing")
	}

	// The DQ_WebRE constraints reference 'WebProcess'/'InformationCase'
	// stereotypes; with only UML + the two profiles, the OCL must hold.
	env := func(self *metamodel.Object) *ocl.Env {
		return &ocl.Env{
			Model: m.Model,
			Vars:  map[string]any{"self": self},
			Stereotypes: func(o *metamodel.Object) []string {
				return m.StereotypeNames(o)
			},
		}
	}
	// The InformationCase constraint from DQ_WebRE's Table 3 (lightweight
	// clause): some «WebProcess» use case includes self.
	icConstraint := "UseCase.allInstances()->exists(w | w.hasStereotype('WebProcess') and w.include->exists(i | i.addition = self))"
	ok, err := ocl.EvalBool(icConstraint, env(ic))
	if err != nil || !ok {
		t.Fatalf("IC constraint = %v, %v", ok, err)
	}
	// The requirement is NOT included by a stereotyped InformationCase yet.
	reqConstraint := "UseCase.allInstances()->exists(c | c.hasStereotype('InformationCase') and c.include->exists(i | i.addition = self))"
	ok, err = ocl.EvalBool(reqConstraint, env(req))
	if err != nil || ok {
		t.Fatalf("req constraint before stereotype = %v, %v", ok, err)
	}
	b.Apply(ic, "Content") // wrong stereotype on purpose: UseCase vs Class base
	if b.Err() == nil {
		t.Fatal("Content stereotype should not apply to a use case")
	}
}
