// Package webre implements the WebRE metamodel of Escalona & Koch (2006),
// the web requirements engineering metamodel the paper extends. Its nine
// key concepts (paper Table 2) are split over two packages, mirroring the
// original:
//
//	WebRE.Behavior:  WebUser, Navigation, WebProcess, Browse, Search,
//	                 UserTransaction
//	WebRE.Structure: Node, Content, WebUI
//
// Each WebRE metaclass specializes a UML metaclass (use cases specialize
// UseCase, activities specialize Action, structural elements specialize
// Class), so WebRE models are ordinary UML models and profiles apply to
// them unchanged.
package webre

import (
	"fmt"
	"sync"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// Metaclass names introduced by WebRE.
const (
	MetaWebUser         = "WebUser"
	MetaNavigation      = "Navigation"
	MetaWebProcess      = "WebProcess"
	MetaBrowse          = "Browse"
	MetaSearch          = "Search"
	MetaUserTransaction = "UserTransaction"
	MetaNode            = "Node"
	MetaContent         = "Content"
	MetaWebUI           = "WebUI"
)

var (
	once sync.Once
	pkg  *metamodel.Package
)

// Metamodel returns the WebRE metamodel package. It is built once, imports
// the UML subset (so plain UML elements resolve inside WebRE models) and is
// registered in the metamodel registry under "WebRE".
func Metamodel() *metamodel.Package {
	once.Do(func() {
		pkg = build()
		metamodel.MustRegister(pkg)
	})
	return pkg
}

func build() *metamodel.Package {
	u := uml.Metamodel()
	w := metamodel.NewPackage("WebRE")
	w.Import(u)

	str, _ := u.DataType("String")

	behavior := w.AddPackage("Behavior")
	structure := w.AddPackage("Structure")

	// ---- Structure package (paper Table 2, bottom three rows) ----

	node := structure.AddClass(MetaNode).
		SetDoc("A point of navigation at which the user can find information. Each Browse starts in a source node and finishes in a target node. Nodes are shown to the users as pages.")
	node.AddSuper(uml.MustClass(uml.MetaClass))

	content := structure.AddClass(MetaContent).
		SetDoc("Represents where the different pieces of information are stored.")
	content.AddSuper(uml.MustClass(uml.MetaClass))

	webUI := structure.AddClass(MetaWebUI).
		SetDoc("Represents the concept of Web page.")
	webUI.AddSuper(uml.MustClass(uml.MetaClass))

	node.AddRef("ui", webUI).
		SetDoc("The web page presenting this node, if modeled.")
	node.AddRefs("contents", content).
		SetDoc("Contents displayed at this node.")

	// ---- Behavior package (paper Table 2, top six rows) ----

	webUser := behavior.AddClass(MetaWebUser).
		SetDoc("Represents any user who interacts with the Web application.")
	webUser.AddSuper(uml.MustClass(uml.MetaActor))

	browse := behavior.AddClass(MetaBrowse).
		SetDoc("A normal browse activity in the system; it can be improved by a Search activity. Each instance starts in a node (source) and finishes in another node (target).")
	browse.AddSuper(uml.MustClass(uml.MetaAction))
	browse.AddProperty("source", node, 1, 1).
		SetDoc("The node the browse starts from.")
	browse.AddProperty("target", node, 1, 1).
		SetDoc("The node the browse arrives at.")

	search := behavior.AddClass(MetaSearch).
		SetDoc("Has a set of parameters which define queries on the data storage in Content; the results are shown in the target node.")
	search.AddSuper(browse)
	search.AddProperty("parameters", str, 0, metamodel.Unbounded).
		SetDoc("Query parameter names.")
	search.AddRef("queriedContent", content).
		SetDoc("The content the query runs against.")

	userTx := behavior.AddClass(MetaUserTransaction).
		SetDoc("Represents complex activities that can be expressed in terms of transactions initiated by users.")
	userTx.AddSuper(uml.MustClass(uml.MetaAction))
	userTx.AddRefs("data", content).
		SetDoc("Contents read or written by the transaction.")

	navigation := behavior.AddClass(MetaNavigation).
		SetDoc("A specific use case comprising a set of Browse activities the WebUser performs to reach a target node.")
	navigation.AddSuper(uml.MustClass(uml.MetaUseCase))
	navigation.AddRefs("browses", browse).
		SetDoc("The browse activities of this navigation.")
	navigation.AddRef("targetNode", node).
		SetDoc("The node the navigation ultimately reaches.")

	webProcess := behavior.AddClass(MetaWebProcess).
		SetDoc("Models a main functionality (normally a business process) of the Web application; refined by Browse, Search and UserTransaction activities.")
	webProcess.AddSuper(uml.MustClass(uml.MetaUseCase))
	webProcess.AddRefs("activities", uml.MustClass(uml.MetaAction)).
		SetDoc("The activities refining this process.")

	return w
}

// MustClass resolves a WebRE (or imported UML) metaclass by name.
func MustClass(name string) *metamodel.Class {
	c, ok := Metamodel().FindClass(name)
	if !ok {
		panic(fmt.Errorf("webre: unknown metaclass %q", name))
	}
	return c
}

// TableRow is one row of the paper's Table 2: a WebRE element with its
// published description.
type TableRow struct {
	// Element is the WebRE metaclass name.
	Element string
	// Description is the Table 2 text.
	Description string
}

// Table2 returns the paper's Table 2 verbatim, in the paper's row order.
// The descriptions here are the published ones; Metamodel() carries the same
// text as class documentation, and the tests assert both stay in sync.
func Table2() []TableRow {
	return []TableRow{
		{MetaWebUser, "Represents any user who interacts with the Web application."},
		{MetaNavigation, "Represents a specific use case which includes a set of \"Browse\" type activities that the WebUser will be able to perform to reach a target node."},
		{MetaWebProcess, "Models the main functionalities (normally business process) of the Web application. It represents another use case which can be refined by different Browse, Search and UserTransaction type activities."},
		{MetaBrowse, "Represents a normal browse activity in the system; it can be improved by a Search activity."},
		{MetaSearch, "It has a set of parameters, which allow us to define queries on the data storage in \"Content\" metaclass. The results will be shown in the target node."},
		{MetaUserTransaction, "Represents complex activities that can be expressed in terms of transactions initiated by users."},
		{MetaNode, "Represents a point of navigation at which the user can find information. Each instance of a Browse activity starts in a node (source) and finishes in another node (target). The Nodes are shown to the users as pages."},
		{MetaContent, "Represents where the different pieces of information are stored."},
		{MetaWebUI, "Represents the concept of Web page."},
	}
}

// WellFormednessRule is an OCL constraint scoped to one WebRE metaclass.
// The validation engine evaluates Expr with `self` bound to each instance.
type WellFormednessRule struct {
	// ID names the rule in diagnostics.
	ID string
	// Class is the metaclass whose instances the rule constrains.
	Class string
	// Expr is the boolean OCL expression.
	Expr string
	// Doc is the prose reading.
	Doc string
}

// Rules returns the WebRE well-formedness rules beyond plain multiplicities.
func Rules() []WellFormednessRule {
	return []WellFormednessRule{
		{
			ID:    "webre-navigation-has-browse",
			Class: MetaNavigation,
			Expr:  "self.browses->notEmpty()",
			Doc:   "A Navigation includes at least one Browse activity.",
		},
		{
			ID:    "webre-browse-distinct-nodes",
			Class: MetaBrowse,
			Expr:  "self.source <> self.target",
			Doc:   "A Browse starts in a node and finishes in another node.",
		},
		{
			ID:    "webre-search-has-parameters",
			Class: MetaSearch,
			Expr:  "self.parameters->notEmpty() implies self.queriedContent->notEmpty()",
			Doc:   "A parameterized Search queries some Content.",
		},
		{
			ID:    "webre-webprocess-named",
			Class: MetaWebProcess,
			Expr:  "not self.name.oclIsUndefined() and self.name.size() > 0",
			Doc:   "A WebProcess carries a meaningful name.",
		},
		{
			ID:    "webre-navigation-target-reached",
			Class: MetaNavigation,
			Expr:  "self.targetNode.oclIsUndefined() or self.browses->exists(b | b.target = self.targetNode)",
			Doc:   "If a Navigation declares a target node, some Browse reaches it.",
		},
	}
}
