// Package transform implements a small QVT-style model-to-model
// transformation engine and the two transformations the paper calls for:
//
//   - DQR2DQSR (paper §5, future work): translate captured Data Quality
//     Requirements into Data Quality Software Requirements — concrete
//     component and check specifications a design model can realize.
//   - EnrichWebRE: proactively extend a plain WebRE requirements model with
//     DQ_WebRE elements (an InformationCase per WebProcess), the paper's
//     "customization of the Information System".
//
// The engine follows QVT operational semantics in miniature: rules match
// source elements by class and guard, instantiate target elements, and a
// trace model links source to target so later rules (and end users) can
// resolve mappings.
package transform

import (
	"context"
	"fmt"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/ocl"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// Rule maps instances of one source class to instances of one target class.
type Rule struct {
	// Name identifies the rule in traces and errors.
	Name string
	// From is the source metaclass name (instances of subclasses match too).
	From string
	// GuardOCL, when non-empty, is an OCL boolean filter with `self` bound
	// to the candidate source element.
	GuardOCL string
	// Guard, when non-nil, is a Go-side filter applied after GuardOCL.
	Guard func(src *metamodel.Object) bool
	// To is the target metaclass name; one instance is created per match.
	To string
	// Bind populates the target element. It runs in a second phase, after
	// every rule has created its targets, so Resolve can see all trace
	// links regardless of rule order.
	Bind func(t *Trace, src, dst *metamodel.Object) error
}

// Transformation is an ordered set of rules plus an optional final pass.
type Transformation struct {
	// Name identifies the transformation.
	Name string
	// Rules run in order; a source element may match several rules.
	Rules []Rule
	// Finalize, when non-nil, runs after all binds with the complete trace.
	Finalize func(t *Trace) error
}

// Trace records which target element each (source element, rule) pair
// produced, plus the participating models.
type Trace struct {
	// Source and Target are the models of the run.
	Source, Target *uml.Model
	links          map[*metamodel.Object]map[string]*metamodel.Object
	// Links is the flat list of trace links in creation order.
	Links []Link
}

// Link is one trace entry.
type Link struct {
	// Rule is the producing rule's name.
	Rule string
	// Src and Dst are the mapped elements.
	Src, Dst *metamodel.Object
}

func newTrace(src, dst *uml.Model) *Trace {
	return &Trace{
		Source: src,
		Target: dst,
		links:  make(map[*metamodel.Object]map[string]*metamodel.Object),
	}
}

func (t *Trace) record(rule string, src, dst *metamodel.Object) {
	m, ok := t.links[src]
	if !ok {
		m = make(map[string]*metamodel.Object)
		t.links[src] = m
	}
	m[rule] = dst
	t.Links = append(t.Links, Link{Rule: rule, Src: src, Dst: dst})
}

// Resolve returns the target element a source element was mapped to by any
// rule (the first rule in declaration order wins when several mapped it).
func (t *Trace) Resolve(src *metamodel.Object) (*metamodel.Object, bool) {
	m, ok := t.links[src]
	if !ok || len(m) == 0 {
		return nil, false
	}
	// Prefer deterministic order: scan Links, which preserves rule order.
	for _, l := range t.Links {
		if l.Src == src {
			return l.Dst, true
		}
	}
	return nil, false
}

// ResolveIn returns the target produced for src by one specific rule.
func (t *Trace) ResolveIn(rule string, src *metamodel.Object) (*metamodel.Object, bool) {
	m, ok := t.links[src]
	if !ok {
		return nil, false
	}
	dst, ok := m[rule]
	return dst, ok
}

// TargetsOf returns every target created by the named rule, in creation
// order.
func (t *Trace) TargetsOf(rule string) []*metamodel.Object {
	var out []*metamodel.Object
	for _, l := range t.Links {
		if l.Rule == rule {
			out = append(out, l.Dst)
		}
	}
	return out
}

// Run executes the transformation: phase 1 instantiates targets for every
// rule match; phase 2 binds them; phase 3 finalizes.
func (tr *Transformation) Run(src *uml.Model, targetMeta *metamodel.Package, targetName string) (*uml.Model, *Trace, error) {
	return tr.RunContext(context.Background(), src, targetMeta, targetName)
}

// RunContext is Run with observability: under an active span in ctx the
// engine nests "transform.<name>" with one child span per phase (match,
// bind, finalize) carrying match and trace-link counts, and the
// process-wide registry counts runs and produced links per transformation.
func (tr *Transformation) RunContext(ctx context.Context, src *uml.Model, targetMeta *metamodel.Package, targetName string) (*uml.Model, *Trace, error) {
	ctx, span := obs.StartSpan(ctx, "transform."+tr.Name)
	span.SetAttr("source", src.Name())
	dst, t, err := tr.run(ctx, src, targetMeta, targetName)
	if err != nil {
		span.Fail(err)
	} else {
		span.SetAttr("links", len(t.Links))
	}
	span.End()

	reg := obs.Default()
	labels := obs.Labels{"transformation": tr.Name}
	reg.Counter("transform_runs_total", "model-to-model transformation runs", labels).Inc()
	if err == nil {
		reg.Counter("transform_links_total", "trace links produced by transformations", labels).
			Add(uint64(len(t.Links)))
	}
	return dst, t, err
}

func (tr *Transformation) run(ctx context.Context, src *uml.Model, targetMeta *metamodel.Package, targetName string) (*uml.Model, *Trace, error) {
	dst := uml.NewModel(targetName, targetMeta)
	t := newTrace(src, dst)

	type pending struct {
		rule     *Rule
		src, dst *metamodel.Object
	}
	var binds []pending

	_, mspan := obs.StartSpan(ctx, "match")
	for i := range tr.Rules {
		rule := &tr.Rules[i]
		cls, ok := src.Metamodel().FindClass(rule.From)
		if !ok {
			mspan.End()
			return nil, nil, fmt.Errorf("transform %s: rule %s: unknown source class %q",
				tr.Name, rule.Name, rule.From)
		}
		instances := src.Model.AllInstances(cls)
		// Compile the guard once per rule, not once per source instance,
		// and share one Env across the whole extent; self rides in the
		// compiled program's frame. Compilation is deferred until the rule
		// matches at least one instance so an empty extent never trips over
		// a malformed guard.
		var guard *ocl.Program
		var genv *ocl.Env
		if rule.GuardOCL != "" && len(instances) > 0 {
			var err error
			guard, err = ocl.CompileString(rule.GuardOCL,
				ocl.CompileOptions{Meta: src.Metamodel()})
			if err != nil {
				mspan.End()
				return nil, nil, fmt.Errorf("transform %s: rule %s guard: %w",
					tr.Name, rule.Name, err)
			}
			genv = &ocl.Env{
				Model: src.Model,
				Stereotypes: func(o *metamodel.Object) []string {
					return src.StereotypeNames(o)
				},
			}
		}
		for _, s := range instances {
			if guard != nil {
				ok, err := guard.EvalBoolSelf(s, genv)
				if err != nil {
					mspan.End()
					return nil, nil, fmt.Errorf("transform %s: rule %s guard: %w",
						tr.Name, rule.Name, err)
				}
				if !ok {
					continue
				}
			}
			if rule.Guard != nil && !rule.Guard(s) {
				continue
			}
			d, err := dst.Create(rule.To)
			if err != nil {
				mspan.End()
				return nil, nil, fmt.Errorf("transform %s: rule %s: %w", tr.Name, rule.Name, err)
			}
			t.record(rule.Name, s, d)
			binds = append(binds, pending{rule: rule, src: s, dst: d})
		}
	}
	mspan.SetAttr("rules", len(tr.Rules))
	mspan.SetAttr("matches", len(binds))
	mspan.End()

	_, bspan := obs.StartSpan(ctx, "bind")
	for _, p := range binds {
		if p.rule.Bind == nil {
			continue
		}
		if err := p.rule.Bind(t, p.src, p.dst); err != nil {
			bspan.End()
			return nil, nil, fmt.Errorf("transform %s: rule %s bind: %w", tr.Name, p.rule.Name, err)
		}
	}
	bspan.End()
	if tr.Finalize != nil {
		_, fspan := obs.StartSpan(ctx, "finalize")
		err := tr.Finalize(t)
		fspan.Fail(err)
		fspan.End()
		if err != nil {
			return nil, nil, fmt.Errorf("transform %s: finalize: %w", tr.Name, err)
		}
	}
	return dst, t, nil
}
