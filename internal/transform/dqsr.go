package transform

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// DQSR target metamodel class names.
const (
	MetaSoftwareRequirement = "SoftwareRequirement"
	MetaComponentSpec       = "ComponentSpec"
	MetaCheckSpec           = "CheckSpec"
)

// Component kinds produced by the DQR2DQSR transformation.
const (
	KindMetadataStore = "metadata-store"
	KindValidator     = "validator"
	KindConstraint    = "constraint"
)

var (
	dqsrOnce sync.Once
	dqsrPkg  *metamodel.Package
)

// DQSRMetamodel returns the target metamodel of the DQR→DQSR transformation:
// design-level software requirement and component specifications.
func DQSRMetamodel() *metamodel.Package {
	dqsrOnce.Do(func() {
		p := metamodel.NewPackage("DQSR")
		str := p.AddDataType("String", metamodel.PrimString)
		intT := p.AddDataType("Integer", metamodel.PrimInteger)

		comp := p.AddClass(MetaComponentSpec).
			SetDoc("A concrete software component realizing DQ behaviour: a metadata store, a validator or a constraint holder.")
		comp.AddProperty("name", str, 1, 1)
		comp.AddProperty("kind", str, 1, 1).
			SetDoc("One of metadata-store, validator, constraint.")
		comp.AddProperty("attributes", str, 0, metamodel.Unbounded).
			SetDoc("Attributes the component must persist (metadata names, bounds).")
		comp.AddProperty("operations", str, 0, metamodel.Unbounded).
			SetDoc("Operations the component must expose (check functions).")

		check := p.AddClass(MetaCheckSpec).
			SetDoc("One executable DQ check: the function a validator must implement for one characteristic.")
		check.AddProperty("name", str, 1, 1)
		check.AddProperty("characteristic", str, 1, 1)
		check.AddAttr("function", str).
			SetDoc("Suggested function name, e.g. check_completeness.")

		req := p.AddClass(MetaSoftwareRequirement).
			SetDoc("A Data Quality Software Requirement: the functional requirement a DQR translates into.")
		req.AddAttr("id", intT)
		req.AddProperty("title", str, 1, 1)
		req.AddProperty("dimension", str, 1, 1).
			SetDoc("The ISO/IEC 25012 characteristic driving this requirement.")
		req.AddAttr("description", str)
		req.AddProperty("fields", str, 0, metamodel.Unbounded).
			SetDoc("The data fields in scope: the attributes of the Contents managed by the InformationCase that includes the source DQ_Requirement.")
		req.AddRefs("realizedBy", comp).
			SetDoc("Components that together satisfy the requirement.")
		req.AddRefs("checks", check).
			SetDoc("Executable checks derived from the requirement.")

		metamodel.MustRegister(p)
		dqsrPkg = p
	})
	return dqsrPkg
}

// checkFunctionFor names the validator function for a characteristic,
// matching the paper's examples (check_completeness, check_precision).
func checkFunctionFor(c iso25012.Characteristic) string {
	return "check_" + strings.ToLower(string(c))
}

// metadataDriven lists the characteristics realized by capturing metadata
// (the paper's Traceability and Confidentiality requirements) rather than
// by validation functions.
var metadataDriven = map[iso25012.Characteristic]bool{
	iso25012.Traceability:    true,
	iso25012.Confidentiality: true,
	iso25012.Availability:    true,
	iso25012.Recoverability:  true,
}

// DQR2DQSR builds the transformation from a DQ_WebRE requirements model to
// a DQSR model:
//
//	DQ_Requirement → SoftwareRequirement (id/text from its specification)
//	DQ_Metadata    → ComponentSpec(kind=metadata-store, attributes=dq_metadata)
//	DQ_Validator   → ComponentSpec(kind=validator, operations=class ops)
//	DQConstraint   → ComponentSpec(kind=constraint, attributes=bounds+payload)
//
// and wires realizedBy: metadata-driven dimensions (Traceability,
// Confidentiality, ...) to the metadata stores; validation-driven dimensions
// to the validators, with constraints riding along; every requirement gains
// a CheckSpec naming its check function.
func DQR2DQSR() *Transformation {
	return &Transformation{
		Name: "DQR2DQSR",
		Rules: []Rule{
			{
				Name: "requirement2software",
				From: dqwebre.MetaDQRequirement,
				To:   MetaSoftwareRequirement,
				Bind: func(t *Trace, src, dst *metamodel.Object) error {
					if err := dst.SetString("title", src.GetString("name")); err != nil {
						return err
					}
					dim := ""
					if v, ok := src.Get("dimension"); ok {
						if lit, ok := v.(metamodel.EnumLit); ok {
							dim = lit.Literal
						}
					}
					if dim == "" {
						return fmt.Errorf("DQ_Requirement %q lacks a dimension", src.GetString("name"))
					}
					if err := dst.SetString("dimension", dim); err != nil {
						return err
					}
					if spec := src.GetRef("specification"); spec != nil {
						if err := dst.SetInt("id", spec.GetInt("id")); err != nil {
							return err
						}
						if err := dst.SetString("description", spec.GetString("text")); err != nil {
							return err
						}
					}
					// The fields in scope: attributes of the Contents
					// managed by the InformationCase(s) including src.
					for _, f := range fieldsInScope(t.Source, src) {
						if err := dst.Append("fields", metamodel.String(f)); err != nil {
							return err
						}
					}
					// The executable check.
					chk, err := t.Target.Create(MetaCheckSpec)
					if err != nil {
						return err
					}
					if err := chk.SetString("name", dim+" check"); err != nil {
						return err
					}
					if err := chk.SetString("characteristic", dim); err != nil {
						return err
					}
					if err := chk.SetString("function", checkFunctionFor(iso25012.Characteristic(dim))); err != nil {
						return err
					}
					return dst.AppendRef("checks", chk)
				},
			},
			{
				Name: "metadata2component",
				From: dqwebre.MetaDQMetadata,
				To:   MetaComponentSpec,
				Bind: func(t *Trace, src, dst *metamodel.Object) error {
					if err := dst.SetString("name", src.GetString("name")); err != nil {
						return err
					}
					if err := dst.SetString("kind", KindMetadataStore); err != nil {
						return err
					}
					for _, v := range src.GetList("dq_metadata") {
						if err := dst.Append("attributes", v); err != nil {
							return err
						}
					}
					return nil
				},
			},
			{
				Name: "validator2component",
				From: dqwebre.MetaDQValidator,
				To:   MetaComponentSpec,
				Bind: func(t *Trace, src, dst *metamodel.Object) error {
					if err := dst.SetString("name", src.GetString("name")); err != nil {
						return err
					}
					if err := dst.SetString("kind", KindValidator); err != nil {
						return err
					}
					for _, op := range src.GetRefs("operations") {
						if err := dst.Append("operations", metamodel.String(op.GetString("name"))); err != nil {
							return err
						}
					}
					return nil
				},
			},
			{
				Name: "constraint2component",
				From: dqwebre.MetaDQConstraint,
				To:   MetaComponentSpec,
				Bind: func(t *Trace, src, dst *metamodel.Object) error {
					if err := dst.SetString("name", src.GetString("name")); err != nil {
						return err
					}
					if err := dst.SetString("kind", KindConstraint); err != nil {
						return err
					}
					if src.IsSet("lower_bound") {
						if err := dst.Append("attributes",
							metamodel.String(fmt.Sprintf("lower_bound=%d", src.GetInt("lower_bound")))); err != nil {
							return err
						}
					}
					if src.IsSet("upper_bound") {
						if err := dst.Append("attributes",
							metamodel.String(fmt.Sprintf("upper_bound=%d", src.GetInt("upper_bound")))); err != nil {
							return err
						}
					}
					for _, v := range src.GetList("constraintData") {
						if err := dst.Append("attributes", v); err != nil {
							return err
						}
					}
					return nil
				},
			},
		},
		Finalize: wireRealizations,
	}
}

// fieldsInScope returns the attribute names of the Contents managed by the
// InformationCases that include the given DQ_Requirement, deduplicated in
// first-seen order.
func fieldsInScope(src *uml.Model, req *metamodel.Object) []string {
	icClass, ok := src.Metamodel().FindClass(dqwebre.MetaInformationCase)
	if !ok {
		return nil
	}
	var out []string
	seen := map[string]bool{}
	for _, ic := range src.Model.AllInstances(icClass) {
		includes := false
		for _, inc := range ic.GetRefs("include") {
			if inc.GetRef("addition") == req {
				includes = true
				break
			}
		}
		if !includes {
			continue
		}
		for _, content := range ic.GetRefs("manages") {
			for _, attr := range content.GetRefs("attributes") {
				name := attr.GetString("name")
				if name != "" && !seen[name] {
					seen[name] = true
					out = append(out, name)
				}
			}
		}
	}
	return out
}

// wireRealizations links every SoftwareRequirement to the components that
// realize it, per the dimension policy, and lets constraints ride with
// their validators.
func wireRealizations(t *Trace) error {
	stores := t.TargetsOf("metadata2component")
	validators := t.TargetsOf("validator2component")
	constraints := t.TargetsOf("constraint2component")

	// Constraints attach to the components of the validators they reference
	// in the source model.
	constraintByValidator := map[*metamodel.Object][]*metamodel.Object{}
	for _, l := range t.Links {
		if l.Rule != "constraint2component" {
			continue
		}
		for _, v := range l.Src.GetRefs("validator") {
			if comp, ok := t.ResolveIn("validator2component", v); ok {
				constraintByValidator[comp] = append(constraintByValidator[comp], l.Dst)
			}
		}
	}
	_ = constraints

	for _, req := range t.TargetsOf("requirement2software") {
		dim := iso25012.Characteristic(req.GetString("dimension"))
		if metadataDriven[dim] {
			for _, s := range stores {
				if err := req.AppendRef("realizedBy", s); err != nil {
					return err
				}
			}
			continue
		}
		for _, v := range validators {
			if err := req.AppendRef("realizedBy", v); err != nil {
				return err
			}
			for _, c := range constraintByValidator[v] {
				if err := req.AppendRef("realizedBy", c); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunDQR2DQSR is a convenience wrapper: transform a requirements model and
// return the DQSR model with its trace.
func RunDQR2DQSR(rm *dqwebre.RequirementsModel) (*uml.Model, *Trace, error) {
	return RunDQR2DQSRContext(context.Background(), rm)
}

// RunDQR2DQSRContext is RunDQR2DQSR under the context's active span, so
// the transformation's phases appear in the caller's trace.
func RunDQR2DQSRContext(ctx context.Context, rm *dqwebre.RequirementsModel) (*uml.Model, *Trace, error) {
	return DQR2DQSR().RunContext(ctx, rm.Model, DQSRMetamodel(), rm.Name()+"-DQSR")
}
