package transform_test

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	. "github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// caseStudyDesign runs the full MDA chain on the case study:
// requirements → DQSR → design.
func caseStudyDesign(t testing.TB) (*uml.Model, *Trace) {
	t.Helper()
	e := easychair.MustBuildModel()
	dqsr, _, err := RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	design, trace, err := RunDQSR2Design(dqsr)
	if err != nil {
		t.Fatal(err)
	}
	return design, trace
}

func TestDQSR2DesignClassInventory(t *testing.T) {
	design, _ := caseStudyDesign(t)
	classes, _ := design.AllInstancesOf(uml.MetaClass)
	if len(classes) != 4 {
		t.Fatalf("design classes = %d, want 4", len(classes))
	}
	byName := map[string]*metamodel.Object{}
	for _, c := range classes {
		byName[c.GetString("name")] = c
	}
	for _, want := range []string{
		"TraceabilityMetadata", "ConfidentialityMetadata",
		"ReviewDQValidator", "EvaluationScoreRange",
	} {
		if byName[want] == nil {
			t.Fatalf("missing design class %q (have %v)", want, keys(byName))
		}
	}

	// The metadata-store class carries the metadata attributes plus the
	// record key and lifecycle operations.
	tm := byName["TraceabilityMetadata"]
	attrNames := names(tm.GetRefs("attributes"))
	for _, want := range []string{"record_key", "stored_by", "stored_date", "last_modified_by", "last_modified_date"} {
		if !contains(attrNames, want) {
			t.Errorf("TraceabilityMetadata lacks attribute %s (has %v)", want, attrNames)
		}
	}
	opNames := names(tm.GetRefs("operations"))
	if !contains(opNames, "recordStore") || !contains(opNames, "recordModify") {
		t.Errorf("TraceabilityMetadata ops = %v", opNames)
	}

	// Timestamp typing for date attributes.
	for _, a := range tm.GetRefs("attributes") {
		if strings.Contains(a.GetString("name"), "date") && a.GetString("type") != "Timestamp" {
			t.Errorf("attribute %s type = %s", a.GetString("name"), a.GetString("type"))
		}
	}

	// The validator class exposes the check operations.
	v := byName["ReviewDQValidator"]
	vOps := names(v.GetRefs("operations"))
	if !contains(vOps, "check_precision") || !contains(vOps, "check_completeness") {
		t.Errorf("validator ops = %v", vOps)
	}

	// The constraint class carries bounds as defaulted attributes.
	cc := byName["EvaluationScoreRange"]
	ccAttrs := names(cc.GetRefs("attributes"))
	if !contains(ccAttrs, "lower_bound") || !contains(ccAttrs, "upper_bound") {
		t.Errorf("constraint attrs = %v", ccAttrs)
	}
	if ops := names(cc.GetRefs("operations")); !contains(ops, "holds") {
		t.Errorf("constraint ops = %v", ops)
	}
}

func TestDQSR2DesignRequirementTraces(t *testing.T) {
	design, _ := caseStudyDesign(t)
	reqs, _ := design.AllInstancesOf(uml.MetaRequirement)
	if len(reqs) != 4 {
		t.Fatalf("design requirements = %d, want 4", len(reqs))
	}
	for _, r := range reqs {
		traced := r.GetRefs("tracedTo")
		if len(traced) == 0 {
			t.Errorf("requirement %q traces to nothing", r.GetString("name"))
		}
		for _, target := range traced {
			if !target.IsA(uml.MustClass(uml.MetaClass)) {
				t.Errorf("trace target %s is not a Class", target.Label())
			}
		}
		if r.GetString("text") == "" || r.GetInt("id") == 0 {
			t.Errorf("requirement %q lacks id/text", r.GetString("name"))
		}
	}
	// The design model conforms to plain UML.
	if vs := metamodel.CheckConformance(design.Model); len(vs) != 0 {
		t.Fatalf("design conformance: %v", vs)
	}
}

func TestClassNameFor(t *testing.T) {
	cases := map[string]string{
		"traceability metadata":  "TraceabilityMetadata",
		"review DQ validator":    "ReviewDQValidator",
		"evaluation score range": "EvaluationScoreRange",
		"a-b_c d":                "ABCD",
		"":                       "Component",
	}
	for in, want := range cases {
		if got := ClassNameForTest(in); got != want {
			t.Errorf("classNameFor(%q) = %q, want %q", in, got, want)
		}
	}
}

func names(objs []*metamodel.Object) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.GetString("name")
	}
	return out
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func keys(m map[string]*metamodel.Object) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
