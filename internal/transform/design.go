package transform

import (
	"context"
	"fmt"
	"strings"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// DQSR2Design builds the transformation from a DQSR model to a UML design
// model — the paper's stated goal of translating "the DQ requirements into
// the corresponding design elements ... to design models and produce code
// in a semiautomatic manner":
//
//	ComponentSpec(metadata-store) → Class with one attribute per metadata
//	                                name plus record_key, and store/modify
//	                                operations
//	ComponentSpec(validator)      → Class with one Boolean operation per
//	                                check function
//	ComponentSpec(constraint)     → Class with the bound attributes
//	SoftwareRequirement           → Requirement traced to the classes
//	                                realizing it
//
// The target is the plain UML metamodel, so the result renders as an
// ordinary class diagram and serializes as ordinary XMI.
func DQSR2Design() *Transformation {
	return &Transformation{
		Name: "DQSR2Design",
		Rules: []Rule{
			{
				Name: "component2class",
				From: MetaComponentSpec,
				To:   uml.MetaClass,
				Bind: bindComponentClass,
			},
			{
				Name: "requirement2requirement",
				From: MetaSoftwareRequirement,
				To:   uml.MetaRequirement,
				Bind: func(t *Trace, src, dst *metamodel.Object) error {
					if err := dst.SetString("name", src.GetString("title")); err != nil {
						return err
					}
					if err := dst.SetInt("id", src.GetInt("id")); err != nil {
						return err
					}
					text := src.GetString("description")
					if text == "" {
						text = src.GetString("title")
					}
					if err := dst.SetString("text", text); err != nil {
						return err
					}
					for _, comp := range src.GetRefs("realizedBy") {
						cls, ok := t.ResolveIn("component2class", comp)
						if !ok {
							return fmt.Errorf("component %q not mapped", comp.GetString("name"))
						}
						if err := dst.AppendRef("tracedTo", cls); err != nil {
							return err
						}
					}
					return nil
				},
			},
		},
	}
}

func bindComponentClass(t *Trace, src, dst *metamodel.Object) error {
	name := classNameFor(src.GetString("name"))
	if err := dst.SetString("name", name); err != nil {
		return err
	}
	addAttr := func(attrName, typ string) error {
		a, err := t.Target.Create(uml.MetaAttribute)
		if err != nil {
			return err
		}
		if err := a.SetString("name", attrName); err != nil {
			return err
		}
		if err := a.SetString("type", typ); err != nil {
			return err
		}
		return dst.AppendRef("attributes", a)
	}
	addOp := func(opName, sig string) error {
		o, err := t.Target.Create(uml.MetaOperation)
		if err != nil {
			return err
		}
		if err := o.SetString("name", opName); err != nil {
			return err
		}
		if err := o.SetString("signature", sig); err != nil {
			return err
		}
		return dst.AppendRef("operations", o)
	}

	switch src.GetString("kind") {
	case KindMetadataStore:
		if err := addAttr("record_key", "String"); err != nil {
			return err
		}
		for _, v := range src.GetList("attributes") {
			mdName := string(v.(metamodel.String))
			typ := "String"
			if strings.Contains(mdName, "date") {
				typ = "Timestamp"
			}
			if strings.Contains(mdName, "level") {
				typ = "Integer"
			}
			if err := addAttr(mdName, typ); err != nil {
				return err
			}
		}
		if err := addOp("recordStore", "(key: String, user: String): void"); err != nil {
			return err
		}
		if err := addOp("recordModify", "(key: String, user: String): void"); err != nil {
			return err
		}
	case KindValidator:
		for _, v := range src.GetList("operations") {
			if err := addOp(string(v.(metamodel.String)), "(record): Boolean"); err != nil {
				return err
			}
		}
	case KindConstraint:
		for _, v := range src.GetList("attributes") {
			raw := string(v.(metamodel.String))
			if attr, val, ok := strings.Cut(raw, "="); ok && !strings.Contains(raw, " in [") {
				if err := addAttr(attr, "Integer = "+val); err != nil {
					return err
				}
				continue
			}
			if err := addAttr(raw, "Range"); err != nil {
				return err
			}
		}
		if err := addOp("holds", "(value: Integer): Boolean"); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown component kind %q", src.GetString("kind"))
	}
	return nil
}

// classNameFor converts a component name to UpperCamelCase.
func classNameFor(name string) string {
	parts := strings.FieldsFunc(name, func(r rune) bool {
		return r == ' ' || r == '-' || r == '_'
	})
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(strings.ToUpper(p[:1]) + p[1:])
	}
	if b.Len() == 0 {
		return "Component"
	}
	return b.String()
}

// RunDQSR2Design transforms a DQSR model into a UML design model.
func RunDQSR2Design(dqsr *uml.Model) (*uml.Model, *Trace, error) {
	return RunDQSR2DesignContext(context.Background(), dqsr)
}

// RunDQSR2DesignContext is RunDQSR2Design under the context's active span.
func RunDQSR2DesignContext(ctx context.Context, dqsr *uml.Model) (*uml.Model, *Trace, error) {
	return DQSR2Design().RunContext(ctx, dqsr, uml.Metamodel(), dqsr.Name()+"-design")
}
