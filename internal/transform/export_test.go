package transform

// ClassNameForTest exposes classNameFor for the external test package.
func ClassNameForTest(name string) string { return classNameFor(name) }
