package transform_test

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	. "github.com/modeldriven/dqwebre/internal/transform"
	"github.com/modeldriven/dqwebre/internal/uml"
)

func TestEngineBasicMapping(t *testing.T) {
	// Map every named UseCase to a SoftwareRequirement titled after it.
	src := uml.NewModel("src", uml.Metamodel())
	b := uml.NewBuilder(src)
	b.UseCase(uml.MetaUseCase, "alpha")
	b.UseCase(uml.MetaUseCase, "beta")
	anon := b.UseCase(uml.MetaUseCase, "")
	anon.Unset("name")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	tr := &Transformation{
		Name: "uc2req",
		Rules: []Rule{{
			Name:     "map",
			From:     uml.MetaUseCase,
			GuardOCL: "not self.name.oclIsUndefined()",
			To:       MetaSoftwareRequirement,
			Bind: func(tc *Trace, s, d *metamodel.Object) error {
				if err := d.SetString("title", s.GetString("name")); err != nil {
					return err
				}
				return d.SetString("dimension", "Accuracy")
			},
		}},
	}
	dst, trace, err := tr.Run(src, DQSRMetamodel(), "dst")
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 2 {
		t.Fatalf("targets = %d, want 2 (guard must exclude anonymous)", dst.Len())
	}
	if len(trace.Links) != 2 {
		t.Fatalf("trace links = %d", len(trace.Links))
	}
	if _, ok := trace.Resolve(anon); ok {
		t.Fatal("anonymous use case should not be traced")
	}
}

func TestEngineGoGuard(t *testing.T) {
	src := uml.NewModel("src", uml.Metamodel())
	b := uml.NewBuilder(src)
	keep := b.UseCase(uml.MetaUseCase, "keep")
	b.UseCase(uml.MetaUseCase, "drop")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	tr := &Transformation{
		Name: "guarded",
		Rules: []Rule{{
			Name:  "map",
			From:  uml.MetaUseCase,
			Guard: func(s *metamodel.Object) bool { return s.GetString("name") == "keep" },
			To:    MetaComponentSpec,
			Bind: func(tc *Trace, s, d *metamodel.Object) error {
				if err := d.SetString("name", s.GetString("name")); err != nil {
					return err
				}
				return d.SetString("kind", KindValidator)
			},
		}},
	}
	dst, trace, err := tr.Run(src, DQSRMetamodel(), "dst")
	if err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 1 {
		t.Fatalf("targets = %d", dst.Len())
	}
	if _, ok := trace.Resolve(keep); !ok {
		t.Fatal("kept element not traced")
	}
}

func TestEngineErrors(t *testing.T) {
	src := uml.NewModel("src", uml.Metamodel())
	// Unknown source class.
	tr := &Transformation{Name: "bad", Rules: []Rule{{Name: "r", From: "Ghost", To: MetaCheckSpec}}}
	if _, _, err := tr.Run(src, DQSRMetamodel(), "d"); err == nil {
		t.Fatal("unknown source class accepted")
	}
	// Unknown target class.
	b := uml.NewBuilder(src)
	b.UseCase(uml.MetaUseCase, "x")
	tr = &Transformation{Name: "bad2", Rules: []Rule{{Name: "r", From: uml.MetaUseCase, To: "Ghost"}}}
	if _, _, err := tr.Run(src, DQSRMetamodel(), "d"); err == nil {
		t.Fatal("unknown target class accepted")
	}
	// Broken guard.
	tr = &Transformation{Name: "bad3", Rules: []Rule{{
		Name: "r", From: uml.MetaUseCase, GuardOCL: "self.nope", To: MetaCheckSpec,
	}}}
	if _, _, err := tr.Run(src, DQSRMetamodel(), "d"); err == nil {
		t.Fatal("broken guard accepted")
	}
}

func TestDQR2DQSROnCaseStudy(t *testing.T) {
	e := easychair.MustBuildModel()
	dst, trace, err := RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}

	reqs, _ := dst.AllInstancesOf(MetaSoftwareRequirement)
	if len(reqs) != 4 {
		t.Fatalf("software requirements = %d, want 4", len(reqs))
	}
	comps, _ := dst.AllInstancesOf(MetaComponentSpec)
	// 2 metadata stores + 1 validator + 1 constraint.
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	checks, _ := dst.AllInstancesOf(MetaCheckSpec)
	if len(checks) != 4 {
		t.Fatalf("checks = %d, want 4", len(checks))
	}

	byDim := map[string]*metamodel.Object{}
	for _, r := range reqs {
		byDim[r.GetString("dimension")] = r
	}
	for _, dim := range []string{"Confidentiality", "Completeness", "Traceability", "Precision"} {
		if byDim[dim] == nil {
			t.Fatalf("missing requirement for %s", dim)
		}
	}

	// Metadata-driven requirements realized by the two stores.
	trac := byDim["Traceability"]
	real := trac.GetRefs("realizedBy")
	if len(real) != 2 {
		t.Fatalf("traceability realizedBy = %d, want 2 stores", len(real))
	}
	for _, c := range real {
		if c.GetString("kind") != KindMetadataStore {
			t.Errorf("traceability realized by %s", c.GetString("kind"))
		}
	}

	// Validation-driven requirements realized by validator + its constraint.
	prec := byDim["Precision"]
	real = prec.GetRefs("realizedBy")
	if len(real) != 2 {
		t.Fatalf("precision realizedBy = %d, want validator+constraint", len(real))
	}
	kinds := map[string]bool{}
	for _, c := range real {
		kinds[c.GetString("kind")] = true
	}
	if !kinds[KindValidator] || !kinds[KindConstraint] {
		t.Errorf("precision realized by kinds %v", kinds)
	}

	// Check functions follow the paper's naming.
	chk := byDim["Completeness"].GetRefs("checks")
	if len(chk) != 1 || chk[0].GetString("function") != "check_completeness" {
		t.Fatalf("completeness check = %v", chk)
	}

	// The validator component carries the modeled operations.
	var validator *metamodel.Object
	for _, c := range comps {
		if c.GetString("kind") == KindValidator {
			validator = c
		}
	}
	ops := validator.GetList("operations")
	if len(ops) != 2 {
		t.Fatalf("validator ops = %v", ops)
	}

	// The metadata stores carry the paper's metadata names.
	var storeAttrs []string
	for _, c := range comps {
		if c.GetString("kind") == KindMetadataStore {
			for _, a := range c.GetList("attributes") {
				storeAttrs = append(storeAttrs, string(a.(metamodel.String)))
			}
		}
	}
	joined := strings.Join(storeAttrs, ",")
	for _, want := range []string{"stored_by", "stored_date", "last_modified_by", "last_modified_date", "security_level", "available_to"} {
		if !strings.Contains(joined, want) {
			t.Errorf("store attributes lack %s", want)
		}
	}

	// The constraint component carries bounds.
	var constraint *metamodel.Object
	for _, c := range comps {
		if c.GetString("kind") == KindConstraint {
			constraint = c
		}
	}
	attrs := constraint.GetList("attributes")
	if len(attrs) < 2 {
		t.Fatalf("constraint attrs = %v", attrs)
	}
	if attrs[0] != metamodel.String("lower_bound=-3") || attrs[1] != metamodel.String("upper_bound=3") {
		t.Errorf("bounds = %v", attrs[:2])
	}

	// The target model conforms to its metamodel.
	if vs := metamodel.CheckConformance(dst.Model); len(vs) != 0 {
		t.Fatalf("DQSR conformance: %v", vs)
	}

	// Trace resolves source requirements to targets.
	if got, ok := trace.ResolveIn("requirement2software", e.ReqPrecision); !ok || got != prec {
		t.Fatal("trace resolution failed")
	}
}

func TestDQR2DQSRRequiresDimension(t *testing.T) {
	rm := dqwebre.NewRequirementsModel("broken")
	// A DQ_Requirement created raw, without a dimension.
	req := rm.Builder().UseCase(dqwebre.MetaDQRequirement, "no dimension")
	_ = req
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunDQR2DQSR(rm); err == nil {
		t.Fatal("missing dimension should fail the transformation")
	}
}

func TestEnrichWithDQ(t *testing.T) {
	rm := dqwebre.NewRequirementsModel("plain")
	u := rm.WebUser("visitor")
	rm.WebProcess("Submit paper", u)
	rm.WebProcess("Register account", u)
	// One process already has an InformationCase: it must be skipped.
	covered := rm.WebProcess("Browse program", u)
	rm.InformationCase("existing IC", covered)
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}

	added, err := EnrichWithDQ(rm, []iso25012.Characteristic{
		iso25012.Completeness, iso25012.Accuracy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	ics := rm.StereotypedBy(dqwebre.MetaInformationCase)
	if len(ics) != 3 {
		t.Fatalf("InformationCases = %d, want 3", len(ics))
	}
	reqs, _ := rm.DQRequirements()
	if len(reqs) != 4 {
		t.Fatalf("DQ requirements = %d, want 4", len(reqs))
	}
	// Spec ids are unique and sequential.
	seen := map[int64]bool{}
	for _, r := range reqs {
		if r.SpecID == 0 || seen[r.SpecID] {
			t.Errorf("bad spec id %d", r.SpecID)
		}
		seen[r.SpecID] = true
		if r.SpecText == "" {
			t.Error("empty spec text")
		}
	}
	// The enriched model validates (ICs are included by processes,
	// requirements by ICs).
	rep := rm.Validate()
	if !rep.OK() {
		for _, d := range rep.Diagnostics {
			t.Log(d)
		}
		t.Fatal("enriched model must validate")
	}
	// Idempotency: nothing more to add.
	added, err = EnrichWithDQ(rm, []iso25012.Characteristic{iso25012.Completeness})
	if err != nil || added != 0 {
		t.Fatalf("second run added %d, err %v", added, err)
	}
}

func TestEnrichValidation(t *testing.T) {
	rm := dqwebre.NewRequirementsModel("x")
	if _, err := EnrichWithDQ(rm, nil); err == nil {
		t.Fatal("empty dims accepted")
	}
	if _, err := EnrichWithDQ(rm, []iso25012.Characteristic{"Velocity"}); err == nil {
		t.Fatal("unknown dim accepted")
	}
}

func TestTraceQueries(t *testing.T) {
	e := easychair.MustBuildModel()
	_, trace, err := RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(trace.TargetsOf("metadata2component")); got != 2 {
		t.Fatalf("TargetsOf stores = %d", got)
	}
	if got := len(trace.TargetsOf("nonexistent-rule")); got != 0 {
		t.Fatalf("TargetsOf ghost rule = %d", got)
	}
	if _, ok := trace.Resolve(e.PCMember); ok {
		t.Fatal("unmapped element resolved")
	}
	if _, ok := trace.ResolveIn("metadata2component", e.PCMember); ok {
		t.Fatal("unmapped element resolved by rule")
	}
}
