package transform

import (
	"context"
	"fmt"

	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// EnrichWithDQ performs the paper's proactive customization step on an
// existing requirements model: every WebProcess that does not yet include
// an InformationCase gains one ("Manage data of <process>"), and each new
// InformationCase gains one DQ_Requirement per requested characteristic,
// with an auto-numbered specification. It returns the number of
// InformationCases added.
//
// This is an in-place (update) transformation, complementing the
// model-to-model DQR2DQSR; together they realize the pipeline the paper
// sketches: plain web requirements → DQ-aware requirements → DQ software
// requirements.
func EnrichWithDQ(rm *dqwebre.RequirementsModel, dims []iso25012.Characteristic) (int, error) {
	return EnrichWithDQContext(context.Background(), rm, dims)
}

// EnrichWithDQContext is EnrichWithDQ under the context's active span: a
// "transform.EnrichWithDQ" span records the number of InformationCases
// added, and the process-wide registry counts enrichment runs.
func EnrichWithDQContext(ctx context.Context, rm *dqwebre.RequirementsModel, dims []iso25012.Characteristic) (int, error) {
	_, span := obs.StartSpan(ctx, "transform.EnrichWithDQ")
	added, err := enrichWithDQ(rm, dims)
	span.SetAttr("added", added)
	span.Fail(err)
	span.End()
	obs.Default().Counter("transform_runs_total", "model-to-model transformation runs",
		obs.Labels{"transformation": "EnrichWithDQ"}).Inc()
	return added, err
}

func enrichWithDQ(rm *dqwebre.RequirementsModel, dims []iso25012.Characteristic) (int, error) {
	if len(dims) == 0 {
		return 0, fmt.Errorf("transform: EnrichWithDQ needs at least one characteristic")
	}
	for _, d := range dims {
		if !iso25012.IsValid(string(d)) {
			return 0, fmt.Errorf("transform: unknown characteristic %q", d)
		}
	}
	icClass := dqwebre.MustClass(dqwebre.MetaInformationCase)
	processes, err := rm.Model.AllInstancesOf("WebProcess")
	if err != nil {
		return 0, err
	}
	specs, err := rm.Model.AllInstancesOf(dqwebre.MetaDQReqSpecification)
	if err != nil {
		return 0, err
	}
	nextID := int64(1)
	for _, s := range specs {
		if id := s.GetInt("id"); id >= nextID {
			nextID = id + 1
		}
	}

	added := 0
	for _, proc := range processes {
		if hasIncludedInformationCase(proc, icClass) {
			continue
		}
		ic := rm.InformationCase("Manage data of "+proc.GetString("name"), proc)
		if ic == nil {
			return added, rm.Err()
		}
		for _, dim := range dims {
			req := rm.DQRequirement(
				fmt.Sprintf("ensure %s of data in %s", dim, proc.GetString("name")),
				dim, ic)
			if req == nil {
				return added, rm.Err()
			}
			def := iso25012.MustLookup(string(dim))
			rm.Specify(req, nextID, def.Text)
			nextID++
		}
		added++
	}
	return added, rm.Err()
}

func hasIncludedInformationCase(proc *metamodel.Object, icClass *metamodel.Class) bool {
	for _, inc := range proc.GetRefs("include") {
		if add := inc.GetRef("addition"); add != nil && add.IsA(icClass) {
			return true
		}
	}
	return false
}
