package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
)

func tick(start time.Time) func() time.Time {
	var mu sync.Mutex
	t := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Second)
		return t
	}
}

func completenessMeasure() Measure {
	return Measure{
		Name:           "dq/Completeness",
		Characteristic: iso25012.Completeness,
		Scale:          Ratio,
		Unit:           "fraction",
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewCollector()
	if err := c.Register(Measure{Name: "", Characteristic: iso25012.Accuracy}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := c.Register(Measure{Name: "x", Characteristic: "Velocity"}); err == nil {
		t.Fatal("bad characteristic accepted")
	}
	m := completenessMeasure()
	if err := c.Register(m); err != nil {
		t.Fatal(err)
	}
	// Idempotent re-registration.
	if err := c.Register(m); err != nil {
		t.Fatal(err)
	}
	// Conflicting redefinition rejected.
	m2 := m
	m2.Unit = "percent"
	if err := c.Register(m2); err == nil {
		t.Fatal("conflicting redefinition accepted")
	}
	if got := c.Measures(); len(got) != 1 || got[0].Name != "dq/Completeness" {
		t.Fatalf("measures = %v", got)
	}
}

func TestRecordAndSeries(t *testing.T) {
	c := NewCollector()
	c.SetClock(tick(time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)))
	if err := c.Register(completenessMeasure()); err != nil {
		t.Fatal(err)
	}
	if err := c.Record("dq/Completeness", "reviews", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Record("dq/Completeness", "reviews", 1.0); err != nil {
		t.Fatal(err)
	}
	if err := c.Record("unregistered", "reviews", 1.0); err == nil {
		t.Fatal("unregistered measure accepted")
	}
	if err := c.Record("dq/Completeness", "reviews", mathNaN()); err == nil {
		t.Fatal("NaN accepted")
	}

	s := c.Series("dq/Completeness", "reviews")
	if len(s) != 2 || s[0].Value != 0.5 || s[1].Value != 1.0 {
		t.Fatalf("series = %v", s)
	}
	if !s[1].At.After(s[0].At) {
		t.Fatal("timestamps not monotonic")
	}
	latest, ok := c.Latest("dq/Completeness", "reviews")
	if !ok || latest.Value != 1.0 {
		t.Fatalf("latest = %v", latest)
	}
	if _, ok := c.Latest("dq/Completeness", "ghost"); ok {
		t.Fatal("phantom series")
	}
}

func mathNaN() float64 {
	var zero float64
	return zero / zero
}

func TestSeriesLimit(t *testing.T) {
	c := NewCollector()
	if err := c.SetSeriesLimit(0); err == nil {
		t.Fatal("zero limit accepted")
	}
	if err := c.SetSeriesLimit(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(completenessMeasure()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.Record("dq/Completeness", "e", float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Series("dq/Completeness", "e")
	if len(s) != 3 || s[0].Value != 7 || s[2].Value != 9 {
		t.Fatalf("series after limit = %v", s)
	}
}

func TestAggregateAndWindow(t *testing.T) {
	c := NewCollector()
	start := time.Date(2026, 7, 5, 0, 0, 0, 0, time.UTC)
	c.SetClock(tick(start))
	if err := c.Register(completenessMeasure()); err != nil {
		t.Fatal(err)
	}
	// Across two entities.
	for i, v := range []float64{0.2, 0.4, 0.6, 0.8} {
		entity := "a"
		if i%2 == 1 {
			entity = "b"
		}
		if err := c.Record("dq/Completeness", entity, v); err != nil {
			t.Fatal(err)
		}
	}
	all := c.Aggregate("dq/Completeness", time.Time{})
	if all.Count != 4 || all.Min != 0.2 || all.Max != 0.8 {
		t.Fatalf("aggregate = %+v", all)
	}
	if all.Mean < 0.49 || all.Mean > 0.51 {
		t.Fatalf("mean = %v", all.Mean)
	}
	// Window: only the last two measurements (t=start+3s, +4s).
	recent := c.Aggregate("dq/Completeness", start.Add(3*time.Second))
	if recent.Count != 2 || recent.Min != 0.6 {
		t.Fatalf("windowed = %+v", recent)
	}
	// Empty aggregate.
	if got := c.Aggregate("dq/Completeness", start.Add(time.Hour)); got.Count != 0 {
		t.Fatalf("future window = %+v", got)
	}
}

func TestThresholdsAndViolations(t *testing.T) {
	c := NewCollector()
	if err := c.Register(completenessMeasure()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddThreshold(Threshold{Measure: "ghost", MinMean: 0.5}); err == nil {
		t.Fatal("threshold on unregistered measure accepted")
	}
	if err := c.AddThreshold(Threshold{Measure: "dq/Completeness", MinMean: 0.9}); err != nil {
		t.Fatal(err)
	}
	// No data: no violation.
	if vs := c.Violations(time.Time{}); len(vs) != 0 {
		t.Fatalf("violations with no data = %v", vs)
	}
	if err := c.Record("dq/Completeness", "e", 0.5); err != nil {
		t.Fatal(err)
	}
	vs := c.Violations(time.Time{})
	if len(vs) != 1 {
		t.Fatalf("violations = %v", vs)
	}
	if !strings.Contains(vs[0].String(), "below threshold") {
		t.Fatalf("violation string = %q", vs[0])
	}
	if err := c.Record("dq/Completeness", "e", 1.0); err != nil {
		t.Fatal(err)
	}
	c.Record("dq/Completeness", "e", 1.0)
	c.Record("dq/Completeness", "e", 1.0)
	c.Record("dq/Completeness", "e", 1.0)
	if vs := c.Violations(time.Time{}); len(vs) != 0 {
		t.Fatalf("violations after recovery = %v", vs)
	}
}

func TestRecordReportIntegration(t *testing.T) {
	c := NewCollector()
	v := dqruntime.NewValidator("r",
		dqruntime.CompletenessCheck{Required: []string{"a", "b"}},
		dqruntime.PrecisionCheck{Field: "n", Lower: 0, Upper: 5},
	)
	rep := v.Validate(dqruntime.Record{"a": "1", "n": "3"})
	if err := c.RecordReport(rep, "rec/1"); err != nil {
		t.Fatal(err)
	}
	comp, ok := c.Latest(MeasureNameFor(iso25012.Completeness), "rec/1")
	if !ok || comp.Value != 0.5 {
		t.Fatalf("completeness = %v", comp)
	}
	prec, ok := c.Latest(MeasureNameFor(iso25012.Precision), "rec/1")
	if !ok || prec.Value != 1 {
		t.Fatalf("precision = %v", prec)
	}
	snap := c.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	for _, line := range snap {
		if !strings.Contains(line, "n=1") {
			t.Errorf("snapshot line %q lacks count", line)
		}
	}
}

func TestScaleString(t *testing.T) {
	for s, want := range map[Scale]string{Ratio: "ratio", Interval: "interval", Ordinal: "ordinal", Nominal: "nominal"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector()
	if err := c.RegisterCharacteristics(iso25012.Completeness, iso25012.Precision); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = c.Record(MeasureNameFor(iso25012.Completeness), "e", float64(j)/50)
				c.Aggregate(MeasureNameFor(iso25012.Completeness), time.Time{})
			}
		}(i)
	}
	wg.Wait()
	if got := c.Aggregate(MeasureNameFor(iso25012.Completeness), time.Time{}); got.Count != 800 {
		t.Fatalf("count = %d, want 800", got.Count)
	}
}

// TestQuickSummaryInvariants: for random value sets, Min <= P50 <= Max and
// Min <= Mean <= Max.
func TestQuickSummaryInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		values := make([]float64, len(raw))
		for i, r := range raw {
			values[i] = float64(r) / 65535
		}
		s := summarize(values)
		if s.Count != len(values) {
			return false
		}
		if s.Count == 0 {
			return s.Mean == 0 && s.Min == 0 && s.Max == 0
		}
		return s.Min <= s.P50 && s.P50 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
