// Package metrics implements a data quality measurement and monitoring
// substrate in the spirit of the measurement information model of ISO/IEC
// 15939 that the paper's research line builds on (Caballero et al. 2007)
// and of the assessment-and-monitoring frameworks it cites (Batini et al.
// 2007): measures bound to ISO/IEC 25012 characteristics, time series of
// measurements per entity, windowed aggregation, and threshold-based
// monitoring. The EasyChair application feeds it from every validation
// report, so the DQ level of the data flowing through the system is
// observable over time — the "continuous process of living" the paper
// contrasts with one-shot data cleansing.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// Scale classifies a measure's scale per ISO/IEC 15939.
type Scale int

// Measurement scales.
const (
	// Ratio scales have a true zero (all [0,1] DQ scores are ratio).
	Ratio Scale = iota
	// Interval scales have meaningful differences but arbitrary zero.
	Interval
	// Ordinal scales are ordered categories.
	Ordinal
	// Nominal scales are unordered categories.
	Nominal
)

// String renders the scale name.
func (s Scale) String() string {
	switch s {
	case Ratio:
		return "ratio"
	case Interval:
		return "interval"
	case Ordinal:
		return "ordinal"
	case Nominal:
		return "nominal"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Measure is a named way of quantifying one DQ characteristic.
type Measure struct {
	// Name identifies the measure, e.g. "review completeness ratio".
	Name string
	// Characteristic is the ISO/IEC 25012 characteristic measured.
	Characteristic iso25012.Characteristic
	// Scale classifies the measure.
	Scale Scale
	// Unit describes the value unit, e.g. "fraction" or "violations/day".
	Unit string
	// Doc describes the measurement method.
	Doc string
}

// Measurement is one recorded value of a measure for one entity.
type Measurement struct {
	// Measure is the measure's name.
	Measure string
	// Entity identifies the measured thing, e.g. "review/42" or "reviews".
	Entity string
	// Value is the measured value.
	Value float64
	// At is the measurement timestamp.
	At time.Time
}

// Summary aggregates a set of measurements.
type Summary struct {
	// Count is the number of measurements aggregated.
	Count int
	// Mean, Min and Max summarize the values; zero when Count is 0.
	Mean, Min, Max float64
	// P50 is the median value.
	P50 float64
}

// Threshold declares the minimum acceptable aggregate level of a measure.
type Threshold struct {
	// Measure is the constrained measure's name.
	Measure string
	// MinMean is the minimum acceptable mean over the evaluation window.
	MinMean float64
}

// Violation reports a threshold not met.
type Violation struct {
	// Threshold violated.
	Threshold Threshold
	// Observed is the aggregate that failed.
	Observed Summary
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("measure %q: mean %.3f below threshold %.3f (n=%d)",
		v.Threshold.Measure, v.Observed.Mean, v.Threshold.MinMean, v.Observed.Count)
}

type seriesKey struct{ measure, entity string }

// Collector registers measures and stores their measurement series. It is
// safe for concurrent use.
type Collector struct {
	mu         sync.RWMutex
	measures   map[string]Measure
	series     map[seriesKey][]Measurement
	thresholds []Threshold
	clock      func() time.Time
	// maxPerSeries bounds memory: older measurements are dropped FIFO.
	maxPerSeries int
}

// NewCollector creates an empty collector keeping at most 4096 measurements
// per (measure, entity) series.
func NewCollector() *Collector {
	return &Collector{
		measures:     make(map[string]Measure),
		series:       make(map[seriesKey][]Measurement),
		clock:        time.Now,
		maxPerSeries: 4096,
	}
}

// SetClock injects a deterministic clock for tests; nil restores time.Now.
func (c *Collector) SetClock(clock func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if clock == nil {
		clock = time.Now
	}
	c.clock = clock
}

// SetSeriesLimit bounds each series' length; n < 1 is rejected.
func (c *Collector) SetSeriesLimit(n int) error {
	if n < 1 {
		return fmt.Errorf("metrics: series limit must be positive, got %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxPerSeries = n
	return nil
}

// Register declares a measure. Re-registering the same name with different
// content is an error.
func (c *Collector) Register(m Measure) error {
	if m.Name == "" {
		return fmt.Errorf("metrics: measure needs a name")
	}
	if !iso25012.IsValid(string(m.Characteristic)) {
		return fmt.Errorf("metrics: measure %q has unknown characteristic %q", m.Name, m.Characteristic)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.measures[m.Name]; ok {
		if existing != m {
			return fmt.Errorf("metrics: measure %q already registered with different definition", m.Name)
		}
		return nil
	}
	c.measures[m.Name] = m
	return nil
}

// Measures returns the registered measures sorted by name.
func (c *Collector) Measures() []Measure {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Measure, 0, len(c.measures))
	for _, m := range c.measures {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Record stores one measurement; the measure must be registered.
func (c *Collector) Record(measure, entity string, value float64) error {
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return fmt.Errorf("metrics: non-finite value for %q", measure)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.measures[measure]; !ok {
		return fmt.Errorf("metrics: unregistered measure %q", measure)
	}
	k := seriesKey{measure, entity}
	s := append(c.series[k], Measurement{
		Measure: measure, Entity: entity, Value: value, At: c.clock(),
	})
	if len(s) > c.maxPerSeries {
		s = s[len(s)-c.maxPerSeries:]
	}
	c.series[k] = s
	return nil
}

// Latest returns the most recent measurement of a series.
func (c *Collector) Latest(measure, entity string) (Measurement, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.series[seriesKey{measure, entity}]
	if len(s) == 0 {
		return Measurement{}, false
	}
	return s[len(s)-1], true
}

// Series returns a copy of one series, oldest first.
func (c *Collector) Series(measure, entity string) []Measurement {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Measurement(nil), c.series[seriesKey{measure, entity}]...)
}

// Aggregate summarizes every measurement of one measure (across entities)
// newer than since. A zero since aggregates everything.
func (c *Collector) Aggregate(measure string, since time.Time) Summary {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var values []float64
	for k, s := range c.series {
		if k.measure != measure {
			continue
		}
		for _, m := range s {
			if since.IsZero() || !m.At.Before(since) {
				values = append(values, m.Value)
			}
		}
	}
	return summarize(values)
}

func summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   sorted[len(sorted)/2],
	}
}

// AddThreshold installs a minimum-mean threshold for a measure.
func (c *Collector) AddThreshold(t Threshold) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.measures[t.Measure]; !ok {
		return fmt.Errorf("metrics: threshold on unregistered measure %q", t.Measure)
	}
	c.thresholds = append(c.thresholds, t)
	return nil
}

// Violations evaluates every threshold against the aggregate since the
// given time; measures with no data do not violate (nothing to judge).
func (c *Collector) Violations(since time.Time) []Violation {
	c.mu.RLock()
	thresholds := append([]Threshold(nil), c.thresholds...)
	c.mu.RUnlock()
	var out []Violation
	for _, t := range thresholds {
		s := c.Aggregate(t.Measure, since)
		if s.Count > 0 && s.Mean < t.MinMean {
			out = append(out, Violation{Threshold: t, Observed: s})
		}
	}
	return out
}

// MeasureNameFor names the standard per-characteristic score measure used
// by RecordReport.
func MeasureNameFor(ch iso25012.Characteristic) string {
	return "dq/" + string(ch)
}

// RegisterCharacteristics registers the standard [0,1] score measure for
// each given characteristic.
func (c *Collector) RegisterCharacteristics(chs ...iso25012.Characteristic) error {
	for _, ch := range chs {
		err := c.Register(Measure{
			Name:           MeasureNameFor(ch),
			Characteristic: ch,
			Scale:          Ratio,
			Unit:           "fraction",
			Doc:            "per-record " + string(ch) + " score from the runtime validator",
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RecordReport records every per-characteristic score of a validation
// report against the given entity. Unregistered characteristics are
// registered on first use.
func (c *Collector) RecordReport(rep *dqruntime.Report, entity string) error {
	for ch, score := range rep.Scores() {
		if err := c.RegisterCharacteristics(ch); err != nil {
			return err
		}
		if err := c.Record(MeasureNameFor(ch), entity, score); err != nil {
			return err
		}
	}
	return nil
}

// Export publishes every measure's overall aggregate into an operational
// metric registry as gauges (dq_measure_mean, dq_measure_min,
// dq_measure_max, dq_measure_observations), labeled by measure and
// ISO/IEC 25012 characteristic. It is a call-time snapshot: servers invoke
// it right before rendering /metrics, so the Prometheus view of data
// quality tracks this collector without the collector depending on scrape
// cadence.
func (c *Collector) Export(reg *obs.Registry) {
	for _, m := range c.Measures() {
		s := c.Aggregate(m.Name, time.Time{})
		labels := obs.Labels{
			"measure":        m.Name,
			"characteristic": string(m.Characteristic),
		}
		reg.Gauge("dq_measure_mean",
			"mean of all recorded values of a DQ measure", labels).Set(s.Mean)
		reg.Gauge("dq_measure_min",
			"minimum recorded value of a DQ measure", labels).Set(s.Min)
		reg.Gauge("dq_measure_max",
			"maximum recorded value of a DQ measure", labels).Set(s.Max)
		reg.Gauge("dq_measure_observations",
			"number of recorded values of a DQ measure", labels).Set(float64(s.Count))
	}
	reg.Gauge("dq_threshold_violations",
		"DQ measures currently below their monitoring threshold", nil).
		Set(float64(len(c.Violations(time.Time{}))))
}

// Snapshot renders a sorted, human-readable view of all measures' overall
// aggregates, for diagnostics endpoints.
func (c *Collector) Snapshot() []string {
	var out []string
	for _, m := range c.Measures() {
		s := c.Aggregate(m.Name, time.Time{})
		out = append(out, fmt.Sprintf("%-28s [%s/%s] n=%d mean=%.3f min=%.3f max=%.3f",
			m.Name, m.Characteristic, m.Scale, s.Count, s.Mean, s.Min, s.Max))
	}
	return out
}
