package webapp

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
)

func TestRouterPathParams(t *testing.T) {
	r := NewRouter()
	r.GET("/reviews/:id/edit", func(c *Context) {
		c.Text(http.StatusOK, "edit %s", c.Param("id"))
	})
	srv := httptest.NewServer(r)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/reviews/42/edit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "edit 42" {
		t.Fatalf("status=%d body=%q", resp.StatusCode, body)
	}
}

func TestRouterNotFoundAndMethodNotAllowed(t *testing.T) {
	r := NewRouter()
	r.GET("/only-get", func(c *Context) { c.Text(200, "ok") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	resp, _ := http.Get(srv.URL + "/missing")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing path: %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, _ = http.Post(srv.URL+"/only-get", "text/plain", strings.NewReader(""))
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method: %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Fatalf("Allow = %q", allow)
	}
	resp.Body.Close()
}

func TestRouterLiteralVsParamSegments(t *testing.T) {
	r := NewRouter()
	r.GET("/a/b", func(c *Context) { c.Text(200, "literal") })
	r.GET("/a/:x", func(c *Context) { c.Text(200, "param %s", c.Param("x")) })
	srv := httptest.NewServer(r)
	defer srv.Close()

	get := func(p string) string {
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if got := get("/a/b"); got != "literal" {
		t.Fatalf("literal route = %q", got)
	}
	if got := get("/a/zzz"); got != "param zzz" {
		t.Fatalf("param route = %q", got)
	}
}

func TestSessionsPersistAcrossRequests(t *testing.T) {
	r := NewRouter()
	r.GET("/set", func(c *Context) {
		c.Session.Set("user", "alice")
		c.Text(200, "set")
	})
	r.GET("/get", func(c *Context) {
		c.Text(200, "user=%s", c.Session.Get("user"))
	})
	srv := httptest.NewServer(r)
	defer srv.Close()

	jar := newCookieJar(t)
	client := &http.Client{Jar: jar}
	resp, err := client.Get(srv.URL + "/set")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = client.Get(srv.URL + "/get")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "user=alice" {
		t.Fatalf("session lost: %q", body)
	}
	if r.Sessions().Len() != 1 {
		t.Fatalf("sessions = %d", r.Sessions().Len())
	}
}

func newCookieJar(t *testing.T) http.CookieJar {
	t.Helper()
	jar, err := newJar()
	if err != nil {
		t.Fatal(err)
	}
	return jar
}

// newJar builds a minimal in-memory cookie jar (net/http/cookiejar without
// the public suffix list).
func newJar() (http.CookieJar, error) {
	return &memJar{cookies: map[string][]*http.Cookie{}}, nil
}

type memJar struct {
	mu      sync.Mutex
	cookies map[string][]*http.Cookie
}

func (j *memJar) SetCookies(u *url.URL, cookies []*http.Cookie) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cookies[u.Host] = append(j.cookies[u.Host], cookies...)
}

func (j *memJar) Cookies(u *url.URL) []*http.Cookie {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cookies[u.Host]
}

func TestSessionValueOps(t *testing.T) {
	s := &Session{ID: "x", values: map[string]string{}}
	s.Set("k", "v")
	if s.Get("k") != "v" {
		t.Fatal("get")
	}
	s.Delete("k")
	if s.Get("k") != "" {
		t.Fatal("delete")
	}
}

func TestSessionManagerLookup(t *testing.T) {
	m := NewSessionManager("c")
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	s := m.Get(rec, req)
	got, ok := m.Lookup(s.ID)
	if !ok || got != s {
		t.Fatal("lookup failed")
	}
	if _, ok := m.Lookup("ghost"); ok {
		t.Fatal("phantom session")
	}
	// Unknown cookie value creates a fresh session.
	req2 := httptest.NewRequest("GET", "/", nil)
	req2.AddCookie(&http.Cookie{Name: "c", Value: "stale"})
	s2 := m.Get(httptest.NewRecorder(), req2)
	if s2.ID == "stale" {
		t.Fatal("stale session resurrected")
	}
}

func TestMiddlewareOrderAndRecover(t *testing.T) {
	r := NewRouter()
	var order []string
	mk := func(name string) Middleware {
		return func(next HandlerFunc) HandlerFunc {
			return func(c *Context) {
				order = append(order, name)
				next(c)
			}
		}
	}
	r.Use(mk("outer"), mk("inner"))
	r.GET("/ok", func(c *Context) { c.Text(200, "ok") })
	r.Use(Recover(log.New(io.Discard, "", 0), nil))
	r.GET("/boom", func(c *Context) { panic("kaboom") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	resp, _ := http.Get(srv.URL + "/ok")
	resp.Body.Close()
	if strings.Join(order, ",") != "outer,inner" {
		t.Fatalf("order = %v", order)
	}
	resp, _ = http.Get(srv.URL + "/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestRequireLogin(t *testing.T) {
	r := NewRouter()
	protected := RequireLogin("/login")
	r.GET("/private", protected(func(c *Context) { c.Text(200, "secret") }))
	r.GET("/login", func(c *Context) { c.Text(200, "login page") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	client := &http.Client{
		CheckRedirect: func(req *http.Request, via []*http.Request) error {
			return http.ErrUseLastResponse
		},
	}
	resp, _ := client.Get(srv.URL + "/private")
	if resp.StatusCode != http.StatusSeeOther || resp.Header.Get("Location") != "/login" {
		t.Fatalf("redirect: %d %q", resp.StatusCode, resp.Header.Get("Location"))
	}
	resp.Body.Close()
}

func TestTableCRUD(t *testing.T) {
	tab := NewTable()
	id1 := tab.Insert(Row{"a": "1"})
	id2 := tab.Insert(Row{"a": "2"})
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}
	r, ok := tab.Get(id1)
	if !ok || r["a"] != "1" {
		t.Fatal("get")
	}
	// Mutating the returned row must not affect the store.
	r["a"] = "mutated"
	r2, _ := tab.Get(id1)
	if r2["a"] != "1" {
		t.Fatal("Get leaked internal row")
	}
	if !tab.Update(id1, Row{"a": "9"}) {
		t.Fatal("update")
	}
	if tab.Update(999, Row{}) {
		t.Fatal("update of missing row succeeded")
	}
	r3, _ := tab.Get(id1)
	if r3["a"] != "9" {
		t.Fatal("update lost")
	}
	sel := tab.Select(func(id int64, r Row) bool { return r["a"] == "9" })
	if len(sel) != 1 {
		t.Fatalf("select = %v", sel)
	}
	if ids := tab.IDs(); len(ids) != 2 || ids[0] != 1 {
		t.Fatalf("ids = %v", ids)
	}
	if !tab.Delete(id2) || tab.Delete(id2) {
		t.Fatal("delete semantics")
	}
	if tab.Len() != 1 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestStoreTables(t *testing.T) {
	s := NewStore()
	a := s.Table("reviews")
	b := s.Table("reviews")
	if a != b {
		t.Fatal("table identity")
	}
	s.Table("papers")
	names := s.Names()
	if len(names) != 2 || names[0] != "papers" || names[1] != "reviews" {
		t.Fatalf("names = %v", names)
	}
}

func TestTableConcurrentInserts(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			tab.Insert(Row{"n": fmt.Sprint(n)})
		}(i)
	}
	wg.Wait()
	if tab.Len() != 32 {
		t.Fatalf("len = %d", tab.Len())
	}
	ids := tab.IDs()
	seen := map[int64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id")
		}
		seen[id] = true
	}
}
