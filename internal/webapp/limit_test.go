package webapp

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/modeldriven/dqwebre/internal/obs"
)

// TestConcurrencyLimiterShedsAtSaturation floods a limiter of capacity 2
// whose admitted handlers block on a gate: every admitted request must
// eventually get 200, every shed request must get 503 promptly, and none
// may hang.
func TestConcurrencyLimiterShedsAtSaturation(t *testing.T) {
	const capacity = 2
	const clients = 20

	reg := obs.NewRegistry()
	cl := NewConcurrencyLimiter(capacity)
	cl.Instrument(reg)

	gate := make(chan struct{})
	var admitted atomic.Int32
	r := NewRouter()
	r.Use(cl.Middleware())
	r.GET("/work", func(c *Context) {
		admitted.Add(1)
		<-gate
		c.Text(http.StatusOK, "done")
	})
	srv := httptest.NewServer(r)
	defer srv.Close()

	statuses := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Get(srv.URL + "/work")
			if err != nil {
				statuses <- -1
				return
			}
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}

	// Wait for the limiter to fill, then count the shed responses: all but
	// the admitted two must already be answerable without the gate opening.
	deadline := time.After(5 * time.Second)
	for admitted.Load() < capacity {
		select {
		case <-deadline:
			t.Fatalf("limiter never admitted %d requests", capacity)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	var got503 int
	for i := 0; i < clients-capacity; i++ {
		select {
		case s := <-statuses:
			if s != http.StatusServiceUnavailable {
				t.Fatalf("shed request got %d, want 503", s)
			}
			got503++
		case <-deadline:
			t.Fatalf("shed request hung (got %d of %d 503s)", got503, clients-capacity)
		}
	}

	close(gate)
	for i := 0; i < capacity; i++ {
		select {
		case s := <-statuses:
			if s != http.StatusOK {
				t.Fatalf("admitted request got %d, want 200", s)
			}
		case <-deadline:
			t.Fatal("admitted request hung after gate opened")
		}
	}

	text := reg.PrometheusText()
	if !strings.Contains(text, `http_requests_shed_total{reason="overload"} 18`) {
		t.Errorf("shed counter missing or wrong:\n%s", text)
	}
	if cl.InFlight() != 0 {
		t.Errorf("in-flight after drain = %d", cl.InFlight())
	}
}

// TestConcurrencyLimiterRecovers verifies the valve reopens once load
// passes: after a saturated burst, a fresh request succeeds.
func TestConcurrencyLimiterRecovers(t *testing.T) {
	cl := NewConcurrencyLimiter(1)
	r := NewRouter()
	r.Use(cl.Middleware())
	r.GET("/ping", func(c *Context) { c.Text(http.StatusOK, "pong") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	if !cl.TryAcquire() {
		t.Fatal("fresh limiter refused")
	}
	resp, err := http.Get(srv.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated: got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	cl.Release()
	resp, err = http.Get(srv.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered: got %d, want 200", resp.StatusCode)
	}
}

// TestConcurrencyLimiterExemptPaths keeps probes reachable at saturation.
func TestConcurrencyLimiterExemptPaths(t *testing.T) {
	cl := NewConcurrencyLimiter(1)
	r := NewRouter()
	r.Use(cl.Middleware("/healthz", "/debug"))
	r.GET("/healthz", func(c *Context) { c.Text(http.StatusOK, "ok") })
	r.GET("/debug/spans", func(c *Context) { c.Text(http.StatusOK, "spans") })
	r.GET("/work", func(c *Context) { c.Text(http.StatusOK, "work") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	if !cl.TryAcquire() { // saturate
		t.Fatal("acquire")
	}
	defer cl.Release()
	for path, want := range map[string]int{
		"/healthz":     http.StatusOK,
		"/debug/spans": http.StatusOK,
		"/work":        http.StatusServiceUnavailable,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s: got %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestConcurrencyLimiterRace hammers TryAcquire/Release from many
// goroutines; run under -race this is the limiter's memory-safety proof.
func TestConcurrencyLimiterRace(t *testing.T) {
	reg := obs.NewRegistry()
	cl := NewConcurrencyLimiter(4)
	cl.Instrument(reg)
	var wg sync.WaitGroup
	var served atomic.Int64
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if cl.TryAcquire() {
					served.Add(1)
					cl.Release()
				}
			}
		}()
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("nothing admitted")
	}
	if cl.InFlight() != 0 {
		t.Fatalf("in-flight = %d after all released", cl.InFlight())
	}
}

// TestRateLimiterTokenBucket drives the bucket with a fake clock: burst is
// honored, then refill at the configured rate.
func TestRateLimiterTokenBucket(t *testing.T) {
	rl := NewRateLimiter(2, 3) // 2 tokens/s, burst 3
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !rl.Allow("alice") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if rl.Allow("alice") {
		t.Fatal("request beyond burst allowed")
	}
	if !rl.Allow("bob") {
		t.Fatal("independent client denied")
	}
	now = now.Add(500 * time.Millisecond) // 1 token accrues
	if !rl.Allow("alice") {
		t.Fatal("refilled token denied")
	}
	if rl.Allow("alice") {
		t.Fatal("second request after single refill allowed")
	}
	now = now.Add(time.Hour) // refill clamps at burst
	for i := 0; i < 3; i++ {
		if !rl.Allow("alice") {
			t.Fatalf("post-idle burst request %d denied", i)
		}
	}
	if rl.Allow("alice") {
		t.Fatal("bucket exceeded burst after idle")
	}
}

// TestRateLimiterMiddleware checks the 429 path end to end, including the
// Retry-After hint and per-client keying by IP.
func TestRateLimiterMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	rl := NewRateLimiter(0.5, 2)
	rl.Instrument(reg)
	r := NewRouter()
	r.Use(rl.Middleware("/metrics"))
	r.GET("/api", func(c *Context) { c.Text(http.StatusOK, "ok") })
	r.GET("/metrics", func(c *Context) { c.Text(http.StatusOK, "metrics") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	get := func(path string) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if s := get("/api").StatusCode; s != http.StatusOK {
		t.Fatalf("first: %d", s)
	}
	if s := get("/api").StatusCode; s != http.StatusOK {
		t.Fatalf("second (burst): %d", s)
	}
	third := get("/api")
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third: got %d, want 429", third.StatusCode)
	}
	if third.Header.Get("Retry-After") != "2" {
		t.Errorf("Retry-After = %q, want 2 (1/rate)", third.Header.Get("Retry-After"))
	}
	if s := get("/metrics").StatusCode; s != http.StatusOK {
		t.Fatalf("exempt path limited: %d", s)
	}
	if !strings.Contains(reg.PrometheusText(), `http_requests_shed_total{reason="rate_limit"} 1`) {
		t.Errorf("rate_limit shed counter missing:\n%s", reg.PrometheusText())
	}
}

// TestRateLimiterRace exercises concurrent Allow across many keys,
// including map growth and pruning, under -race.
func TestRateLimiterRace(t *testing.T) {
	rl := NewRateLimiter(1000, 10)
	rl.maxClients = 32 // force pruning churn
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				rl.Allow(fmt.Sprintf("client-%d-%d", g, i%64))
			}
		}(g)
	}
	wg.Wait()
	if rl.Clients() == 0 {
		t.Fatal("no clients tracked")
	}
}

// TestRateLimiterDisabled: rate 0 admits everything.
func TestRateLimiterDisabled(t *testing.T) {
	rl := NewRateLimiter(0, 1)
	for i := 0; i < 100; i++ {
		if !rl.Allow("k") {
			t.Fatal("disabled limiter denied a request")
		}
	}
	if rl.Clients() != 0 {
		t.Fatal("disabled limiter tracked clients")
	}
}
