package webapp

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// hijackableRecorder simulates net/http's real writer, which implements
// http.Hijacker and io.ReaderFrom; httptest.ResponseRecorder implements
// neither, which is exactly the capability loss the passthroughs prevent.
type hijackableRecorder struct {
	*httptest.ResponseRecorder
	hijacked bool
	conn     net.Conn
	readFrom int64
}

func (h *hijackableRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h.hijacked = true
	server, client := net.Pipe()
	h.conn = client
	go func() { _, _ = io.Copy(io.Discard, server) }()
	return h.conn, bufio.NewReadWriter(bufio.NewReader(h.conn), bufio.NewWriter(h.conn)), nil
}

func (h *hijackableRecorder) ReadFrom(src io.Reader) (int64, error) {
	n, err := io.Copy(h.ResponseRecorder, src)
	h.readFrom += n
	return n, err
}

func TestResponseRecorderHijackPassthrough(t *testing.T) {
	inner := &hijackableRecorder{ResponseRecorder: httptest.NewRecorder()}
	rr := NewResponseRecorder(inner)

	hj, ok := http.ResponseWriter(rr).(http.Hijacker)
	if !ok {
		t.Fatal("recorder does not expose http.Hijacker")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		t.Fatalf("Hijack: %v", err)
	}
	defer conn.Close()
	if !inner.hijacked {
		t.Fatal("hijack not forwarded to the wrapped writer")
	}
}

func TestResponseRecorderHijackUnsupported(t *testing.T) {
	rr := NewResponseRecorder(httptest.NewRecorder())
	if _, _, err := rr.Hijack(); err == nil {
		t.Fatal("Hijack on a non-hijackable writer must error")
	}
}

func TestResponseRecorderReadFromFastPath(t *testing.T) {
	inner := &hijackableRecorder{ResponseRecorder: httptest.NewRecorder()}
	rr := NewResponseRecorder(inner)

	// Wrap the reader so io.Copy cannot take src's WriterTo shortcut; the
	// copy must go through rr.ReadFrom, which net/http uses for sendfile.
	n, err := io.Copy(rr, struct{ io.Reader }{strings.NewReader("sendfile body")})
	if err != nil || n != 13 {
		t.Fatalf("copy: n=%d err=%v", n, err)
	}
	if inner.readFrom != 13 {
		t.Fatalf("fast path bypassed: inner ReadFrom saw %d bytes", inner.readFrom)
	}
	if rr.Bytes() != 13 {
		t.Fatalf("recorder counted %d bytes, want 13", rr.Bytes())
	}
	if rr.Status() != http.StatusOK {
		t.Fatalf("status = %d", rr.Status())
	}
	if inner.Body.String() != "sendfile body" {
		t.Fatalf("body = %q", inner.Body.String())
	}
}

func TestResponseRecorderReadFromFallback(t *testing.T) {
	inner := httptest.NewRecorder() // no io.ReaderFrom
	rr := NewResponseRecorder(inner)
	n, err := rr.ReadFrom(strings.NewReader("plain copy"))
	if err != nil || n != 10 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if rr.Bytes() != 10 || inner.Body.String() != "plain copy" {
		t.Fatalf("bytes=%d body=%q", rr.Bytes(), inner.Body.String())
	}
}

func TestResponseRecorderUnwrap(t *testing.T) {
	inner := httptest.NewRecorder()
	rr := NewResponseRecorder(inner)
	if rr.Unwrap() != http.ResponseWriter(inner) {
		t.Fatal("Unwrap did not return the wrapped writer")
	}
}

// TestHijackThroughMiddleware proves the original bug is fixed end to end:
// a handler behind Logging+Metrics can still hijack the connection.
func TestHijackThroughMiddleware(t *testing.T) {
	r := NewRouter()
	r.Use(Logging(nil))
	r.GET("/upgrade", func(c *Context) {
		hj, ok := c.W.(http.Hijacker)
		if !ok {
			c.Text(http.StatusInternalServerError, "no hijacker")
			return
		}
		conn, buf, err := hj.Hijack()
		if err != nil {
			return
		}
		defer conn.Close()
		buf.WriteString("HTTP/1.1 101 Switching Protocols\r\n\r\nhello")
		buf.Flush()
	})
	srv := httptest.NewServer(r)
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /upgrade HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "101 Switching Protocols") {
		t.Fatalf("hijacked response = %q", raw)
	}
}
