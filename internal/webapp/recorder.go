package webapp

import "net/http"

// ResponseRecorder wraps an http.ResponseWriter to capture the status code
// and body size actually sent, which the raw writer never exposes. The
// Logging and Metrics middleware install it so log lines and metrics can
// report the response outcome.
type ResponseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// NewResponseRecorder wraps w; when w is already a recorder it is returned
// unchanged, so stacked middleware share one recorder.
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	if rr, ok := w.(*ResponseRecorder); ok {
		return rr
	}
	return &ResponseRecorder{ResponseWriter: w}
}

// WriteHeader records the first explicit status code and forwards it.
func (r *ResponseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes, defaulting the status to 200 like net/http.
func (r *ResponseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Status returns the response status; 200 when the handler wrote neither a
// header nor a body (net/http sends 200 on its behalf).
func (r *ResponseRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// Bytes returns the number of body bytes written.
func (r *ResponseRecorder) Bytes() int64 { return r.bytes }

// Flush forwards to the underlying writer when it supports flushing.
func (r *ResponseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
