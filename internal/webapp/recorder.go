package webapp

import (
	"bufio"
	"io"
	"net"
	"net/http"
)

// ResponseRecorder wraps an http.ResponseWriter to capture the status code
// and body size actually sent, which the raw writer never exposes. The
// Logging and Metrics middleware install it so log lines and metrics can
// report the response outcome.
type ResponseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// NewResponseRecorder wraps w; when w is already a recorder it is returned
// unchanged, so stacked middleware share one recorder.
func NewResponseRecorder(w http.ResponseWriter) *ResponseRecorder {
	if rr, ok := w.(*ResponseRecorder); ok {
		return rr
	}
	return &ResponseRecorder{ResponseWriter: w}
}

// WriteHeader records the first explicit status code and forwards it.
func (r *ResponseRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write counts body bytes, defaulting the status to 200 like net/http.
func (r *ResponseRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Status returns the response status; 200 when the handler wrote neither a
// header nor a body (net/http sends 200 on its behalf).
func (r *ResponseRecorder) Status() int {
	if r.status == 0 {
		return http.StatusOK
	}
	return r.status
}

// Bytes returns the number of body bytes written.
func (r *ResponseRecorder) Bytes() int64 { return r.bytes }

// Flush forwards to the underlying writer when it supports flushing.
func (r *ResponseRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Hijack forwards to the underlying writer so handlers can take over the
// connection (WebSocket upgrades and the like) through the middleware
// stack. Without this passthrough the wrapper would hide the capability
// net/http's writer provides.
func (r *ResponseRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if hj, ok := r.ResponseWriter.(http.Hijacker); ok {
		return hj.Hijack()
	}
	return nil, nil, http.ErrNotSupported
}

// ReadFrom preserves the underlying writer's io.ReaderFrom fast path
// (net/http uses it for sendfile-style copies), still counting the bytes
// and defaulting the status like Write. When the underlying writer lacks
// it, a plain copy through Write keeps the semantics identical.
func (r *ResponseRecorder) ReadFrom(src io.Reader) (int64, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		n, err := rf.ReadFrom(src)
		r.bytes += n
		return n, err
	}
	n, err := io.Copy(r.ResponseWriter, src)
	r.bytes += n
	return n, err
}

// Unwrap exposes the wrapped writer to http.ResponseController, which
// discovers capabilities (deadlines, flushing, hijacking) by unwrapping.
func (r *ResponseRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }
