package webapp

import (
	"sort"
	"sync"
)

// Row is one stored record: field name → value.
type Row map[string]string

// clone returns an independent copy of the row.
func cloneRow(r Row) Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Table is a thread-safe in-memory table with auto-incrementing ids.
type Table struct {
	mu   sync.RWMutex
	rows map[int64]Row
	seq  int64
}

// NewTable creates an empty table.
func NewTable() *Table {
	return &Table{rows: make(map[int64]Row)}
}

// Insert stores a copy of the row and returns its new id.
func (t *Table) Insert(r Row) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.rows[t.seq] = cloneRow(r)
	return t.seq
}

// Get returns a copy of the row with the given id.
func (t *Table) Get(id int64) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[id]
	if !ok {
		return nil, false
	}
	return cloneRow(r), true
}

// Update replaces the row with the given id; it reports whether it existed.
func (t *Table) Update(id int64, r Row) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[id]; !ok {
		return false
	}
	t.rows[id] = cloneRow(r)
	return true
}

// Delete removes a row; it reports whether it existed.
func (t *Table) Delete(id int64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.rows[id]; !ok {
		return false
	}
	delete(t.rows, id)
	return true
}

// IDs returns all row ids in ascending order.
func (t *Table) IDs() []int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]int64, 0, len(t.rows))
	for id := range t.rows {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Select returns copies of the rows satisfying the predicate, in id order.
func (t *Table) Select(pred func(id int64, r Row) bool) map[int64]Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := map[int64]Row{}
	for id, r := range t.rows {
		if pred == nil || pred(id, r) {
			out[id] = cloneRow(r)
		}
	}
	return out
}

// Store is a named collection of tables.
type Store struct {
	mu     sync.Mutex
	tables map[string]*Table
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{tables: make(map[string]*Table)}
}

// Table returns (creating on first use) the named table.
func (s *Store) Table(name string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[name]
	if !ok {
		t = NewTable()
		s.tables[name] = t
	}
	return t
}

// Names returns the table names in sorted order.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
