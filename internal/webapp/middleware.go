package webapp

import (
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"github.com/modeldriven/dqwebre/internal/obs"
)

// Recover converts handler panics into 500 responses instead of tearing
// down the connection, logging the panic value. When reg is non-nil it
// also counts the panic (webapp_panics_total, labeled by route) and marks
// the request's active span — installed by the Metrics middleware — as
// errored.
func Recover(logger *log.Logger, reg *obs.Registry) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			defer func() {
				if v := recover(); v != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v", c.R.Method, c.R.URL.Path, v)
					}
					if reg != nil {
						reg.Counter("webapp_panics_total",
							"handler panics recovered by the webapp substrate",
							obs.Labels{"route": routeLabel(c)}).Inc()
					}
					obs.SpanFromContext(c.R.Context()).Fail(fmt.Errorf("panic: %v", v))
					http.Error(c.W, "internal server error", http.StatusInternalServerError)
				}
			}()
			next(c)
		}
	}
}

// Logging writes one line per request with method, path, response status,
// body bytes and duration. The response writer is wrapped in a
// ResponseRecorder so the status code — invisible on the raw writer — is
// observable.
func Logging(logger *log.Logger) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			rec := NewResponseRecorder(c.W)
			c.W = rec
			start := time.Now()
			next(c)
			if logger != nil {
				logger.Printf("%s %s %d %dB (%s)",
					c.R.Method, c.R.URL.Path, rec.Status(), rec.Bytes(), time.Since(start))
			}
		}
	}
}

// Metrics instruments every request: a latency histogram per route
// (http_request_duration_seconds), a status-aware request counter
// (http_requests_total) and a response-size counter, all in reg; when
// tracer is non-nil each request also runs under a span named
// "METHOD pattern" carried in the request context, so handlers and the
// layers below them can attach child spans via obs.StartSpan.
//
// Install it outermost (before Recover): its deferred bookkeeping then
// runs after Recover has written the 500, so panicking requests are
// recorded with their real status and an errored span.
func Metrics(reg *obs.Registry, tracer *obs.Tracer) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			rec := NewResponseRecorder(c.W)
			c.W = rec
			route := routeLabel(c)

			var span *obs.Span
			if tracer != nil {
				var ctx = c.R.Context()
				ctx, span = tracer.Start(ctx, c.R.Method+" "+route)
				c.R = c.R.WithContext(ctx)
			}

			start := time.Now()
			defer func() {
				elapsed := time.Since(start)
				status := strconv.Itoa(rec.Status())
				if reg != nil {
					reg.Counter("http_requests_total",
						"HTTP requests served, by method, route and status",
						obs.Labels{"method": c.R.Method, "route": route, "status": status}).Inc()
					reg.Histogram("http_request_duration_seconds",
						"HTTP request latency in seconds, by route",
						nil, obs.Labels{"route": route}).Observe(elapsed.Seconds())
					reg.Counter("http_response_bytes_total",
						"HTTP response body bytes sent, by route",
						obs.Labels{"route": route}).Add(uint64(rec.Bytes()))
				}
				span.SetAttr("status", status)
				span.End()
			}()
			next(c)
		}
	}
}

// routeLabel returns the matched route pattern, or the raw path when the
// router provided none (custom handlers constructed outside the router).
func routeLabel(c *Context) string {
	if c.Pattern != "" {
		return c.Pattern
	}
	return c.R.URL.Path
}

// RequireLogin redirects to the given path unless the session carries a
// "user" value.
func RequireLogin(loginPath string) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			if c.Session == nil || c.Session.Get("user") == "" {
				c.Redirect(loginPath)
				return
			}
			next(c)
		}
	}
}
