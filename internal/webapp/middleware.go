package webapp

import (
	"log"
	"net/http"
	"time"
)

// Recover converts handler panics into 500 responses instead of tearing
// down the connection, logging the panic value.
func Recover(logger *log.Logger) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			defer func() {
				if v := recover(); v != nil {
					if logger != nil {
						logger.Printf("panic serving %s %s: %v", c.R.Method, c.R.URL.Path, v)
					}
					http.Error(c.W, "internal server error", http.StatusInternalServerError)
				}
			}()
			next(c)
		}
	}
}

// Logging writes one line per request with method, path and duration.
func Logging(logger *log.Logger) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			start := time.Now()
			next(c)
			if logger != nil {
				logger.Printf("%s %s (%s)", c.R.Method, c.R.URL.Path, time.Since(start))
			}
		}
	}
}

// RequireLogin redirects to the given path unless the session carries a
// "user" value.
func RequireLogin(loginPath string) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			if c.Session == nil || c.Session.Get("user") == "" {
				c.Redirect(loginPath)
				return
			}
			next(c)
		}
	}
}
