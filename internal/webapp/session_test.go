package webapp

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/modeldriven/dqwebre/internal/obs"
)

// fakeClock is a mutex-guarded clock for deterministic TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func sessionRequest(m *SessionManager, cookieValue string) (*Session, *httptest.ResponseRecorder) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/", nil)
	if cookieValue != "" {
		req.AddCookie(&http.Cookie{Name: "c", Value: cookieValue})
	}
	return m.Get(rec, req), rec
}

func TestSessionCookieSameSiteLax(t *testing.T) {
	m := NewSessionManager("c")
	_, rec := sessionRequest(m, "")
	cs := rec.Result().Cookies()
	if len(cs) != 1 {
		t.Fatalf("cookies = %d", len(cs))
	}
	if cs[0].SameSite != http.SameSiteLaxMode {
		t.Errorf("SameSite = %v, want Lax", cs[0].SameSite)
	}
	if !cs[0].HttpOnly {
		t.Error("cookie not HttpOnly")
	}
}

func TestSessionTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	m := NewSessionManager("c")
	m.now = clk.Now
	m.SetTTL(time.Minute)

	s, _ := sessionRequest(m, "")
	s.Set("user", "ada")

	// Within the TTL the session survives and each access renews it.
	clk.Advance(45 * time.Second)
	if got, _ := sessionRequest(m, s.ID); got != s {
		t.Fatal("session lost before TTL")
	}
	clk.Advance(45 * time.Second) // 90s since creation, 45s since access
	if got, _ := sessionRequest(m, s.ID); got != s {
		t.Fatal("access did not renew the TTL")
	}

	// Past the TTL the cookie resolves to a fresh session.
	clk.Advance(2 * time.Minute)
	got, rec := sessionRequest(m, s.ID)
	if got == s {
		t.Fatal("expired session resurrected")
	}
	if got.Get("user") != "" {
		t.Fatal("expired session leaked values")
	}
	if len(rec.Result().Cookies()) != 1 {
		t.Fatal("replacement session did not set a cookie")
	}
	if _, ok := m.Lookup(s.ID); ok {
		t.Fatal("Lookup returned an expired session")
	}
}

func TestSessionSweepReclaimsExpired(t *testing.T) {
	clk := newFakeClock()
	reg := obs.NewRegistry()
	m := NewSessionManager("c")
	m.now = clk.Now
	m.SetTTL(time.Minute)
	m.Instrument(reg)

	for i := 0; i < 5; i++ {
		sessionRequest(m, "")
	}
	clk.Advance(30 * time.Second)
	keep, _ := sessionRequest(m, "") // fresh, survives the sweep
	clk.Advance(45 * time.Second)    // first 5 now 75s idle, keep 45s idle

	if n := m.Sweep(); n != 5 {
		t.Fatalf("swept %d, want 5", n)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d after sweep", m.Len())
	}
	if _, ok := m.Lookup(keep.ID); !ok {
		t.Fatal("sweep removed a live session")
	}
	text := reg.PrometheusText()
	if !strings.Contains(text, `webapp_sessions_removed_total{reason="expired"} 5`) {
		t.Errorf("expired counter missing:\n%s", text)
	}
	if !strings.Contains(text, "webapp_sessions_active 1") {
		t.Errorf("active gauge wrong:\n%s", text)
	}
}

func TestSessionMaxSessionsEvictsOldest(t *testing.T) {
	clk := newFakeClock()
	m := NewSessionManager("c")
	m.now = clk.Now
	m.SetMaxSessions(3)

	var ids []string
	for i := 0; i < 3; i++ {
		s, _ := sessionRequest(m, "")
		ids = append(ids, s.ID)
		clk.Advance(time.Second)
	}
	// Touch the first session so the second becomes the LRU victim.
	if _, ok := m.Lookup(ids[0]); !ok {
		t.Fatal("lookup")
	}
	clk.Advance(time.Second)

	s4, _ := sessionRequest(m, "")
	if m.Len() != 3 {
		t.Fatalf("len = %d, want 3 (cap)", m.Len())
	}
	if _, ok := m.Lookup(ids[1]); ok {
		t.Fatal("least recently used session not evicted")
	}
	for _, id := range []string{ids[0], ids[2], s4.ID} {
		if _, ok := m.Lookup(id); !ok {
			t.Fatalf("session %s wrongly evicted", id)
		}
	}
}

func TestSessionSweeperBackground(t *testing.T) {
	m := NewSessionManager("c")
	m.SetTTL(time.Nanosecond)
	sessionRequest(m, "")
	stop := m.StartSweeper(time.Millisecond)
	defer stop()
	deadline := time.After(5 * time.Second)
	for m.Len() != 0 {
		select {
		case <-deadline:
			t.Fatal("sweeper never reclaimed the expired session")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	stop()
	stop() // idempotent
}

// TestSessionManagerConcurrency races creation, cookie resolution, value
// access, lookups, sweeps and capacity eviction; -race is the assertion.
func TestSessionManagerConcurrency(t *testing.T) {
	m := NewSessionManager("c")
	m.SetTTL(500 * time.Microsecond)
	m.SetMaxSessions(64)
	m.Instrument(obs.NewRegistry())

	stop := m.StartSweeper(time.Millisecond)
	defer stop()

	var wg sync.WaitGroup
	var ids sync.Map
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s, _ := sessionRequest(m, "")
				s.Set("n", fmt.Sprint(i))
				_ = s.Get("n")
				ids.Store(s.ID, struct{}{})
				// Re-resolve an arbitrary known id through cookie and Lookup.
				ids.Range(func(k, _ any) bool {
					m.Lookup(k.(string))
					sessionRequest(m, k.(string))
					return false // just one
				})
				if i%50 == 0 {
					m.Sweep()
					_ = m.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() > 64 {
		t.Fatalf("cap breached: %d sessions", m.Len())
	}
}
