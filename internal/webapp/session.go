package webapp

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
)

// Session is a per-visitor key-value bag, safe for concurrent use.
type Session struct {
	// ID is the opaque session identifier stored in the cookie.
	ID string

	mu     sync.RWMutex
	values map[string]string
}

// Get returns a session value, "" when unset.
func (s *Session) Get(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.values[key]
}

// Set assigns a session value.
func (s *Session) Set(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values[key] = value
}

// Delete removes a session value.
func (s *Session) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.values, key)
}

// SessionManager issues and resolves cookie-backed in-memory sessions.
type SessionManager struct {
	cookie string

	mu       sync.RWMutex
	sessions map[string]*Session
}

// NewSessionManager creates a manager using the given cookie name.
func NewSessionManager(cookieName string) *SessionManager {
	return &SessionManager{cookie: cookieName, sessions: make(map[string]*Session)}
}

// Get resolves the request's session, creating one (and setting the cookie)
// when absent or unknown.
func (m *SessionManager) Get(w http.ResponseWriter, r *http.Request) *Session {
	if c, err := r.Cookie(m.cookie); err == nil {
		m.mu.RLock()
		s, ok := m.sessions[c.Value]
		m.mu.RUnlock()
		if ok {
			return s
		}
	}
	s := &Session{ID: newSessionID(), values: make(map[string]string)}
	m.mu.Lock()
	m.sessions[s.ID] = s
	m.mu.Unlock()
	http.SetCookie(w, &http.Cookie{
		Name:     m.cookie,
		Value:    s.ID,
		Path:     "/",
		HttpOnly: true,
	})
	return s
}

// Lookup returns a session by id without creating one.
func (m *SessionManager) Lookup(id string) (*Session, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Len returns the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id would
		// still be functional, just predictable, so panic loudly instead.
		panic("webapp: crypto/rand failure: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
