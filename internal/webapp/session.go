package webapp

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"

	"github.com/modeldriven/dqwebre/internal/obs"
)

// Session is a per-visitor key-value bag, safe for concurrent use.
type Session struct {
	// ID is the opaque session identifier stored in the cookie.
	ID string

	mu         sync.RWMutex
	values     map[string]string
	lastAccess time.Time
}

// Get returns a session value, "" when unset.
func (s *Session) Get(key string) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.values[key]
}

// Set assigns a session value.
func (s *Session) Set(key, value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values[key] = value
}

// Delete removes a session value.
func (s *Session) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.values, key)
}

// touch records an access at t.
func (s *Session) touch(t time.Time) {
	s.mu.Lock()
	s.lastAccess = t
	s.mu.Unlock()
}

// LastAccess returns the time of the most recent resolution through the
// manager (creation counts as an access).
func (s *Session) LastAccess() time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastAccess
}

// SessionManager issues and resolves cookie-backed in-memory sessions.
//
// Sessions have a lifecycle: an optional idle TTL (sessions unreferenced
// for longer are expired), an optional cap on live sessions (creation
// beyond the cap evicts the least recently accessed session first), and a
// background sweeper that reclaims expired sessions so the map cannot grow
// without bound between requests.
type SessionManager struct {
	cookie string

	mu          sync.RWMutex
	sessions    map[string]*Session
	ttl         time.Duration // 0 = sessions never expire
	maxSessions int           // 0 = unbounded
	now         func() time.Time

	// lifecycle metrics; nil until Instrument.
	active  *obs.Gauge
	created *obs.Counter
	expired *obs.Counter
	evicted *obs.Counter
}

// NewSessionManager creates a manager using the given cookie name, with no
// TTL and no session cap (configure via SetTTL / SetMaxSessions).
func NewSessionManager(cookieName string) *SessionManager {
	return &SessionManager{
		cookie:   cookieName,
		sessions: make(map[string]*Session),
		now:      time.Now,
	}
}

// SetTTL sets the idle time-to-live. Sessions not resolved through Get or
// Lookup for longer than d are expired: invisible to lookups and reclaimed
// by Sweep. d <= 0 disables expiry.
func (m *SessionManager) SetTTL(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if d < 0 {
		d = 0
	}
	m.ttl = d
}

// TTL returns the configured idle time-to-live (0 = never expire).
func (m *SessionManager) TTL() time.Duration {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ttl
}

// SetMaxSessions caps the number of live sessions. When a new session
// would exceed the cap, the least recently accessed session is evicted
// first. n <= 0 removes the cap.
func (m *SessionManager) SetMaxSessions(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 {
		n = 0
	}
	m.maxSessions = n
}

// Instrument registers lifecycle metrics in reg: webapp_sessions_active,
// webapp_sessions_created_total and webapp_sessions_removed_total (labeled
// by reason: expired or capacity).
func (m *SessionManager) Instrument(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.active = reg.Gauge("webapp_sessions_active", "live sessions held by the session manager", nil)
	m.created = reg.Counter("webapp_sessions_created_total", "sessions created", nil)
	m.expired = reg.Counter("webapp_sessions_removed_total", "sessions removed, by reason",
		obs.Labels{"reason": "expired"})
	m.evicted = reg.Counter("webapp_sessions_removed_total", "sessions removed, by reason",
		obs.Labels{"reason": "capacity"})
	m.active.Set(float64(len(m.sessions)))
}

// Get resolves the request's session, creating one (and setting the cookie)
// when absent, unknown or expired. Resolution counts as an access for TTL
// purposes.
func (m *SessionManager) Get(w http.ResponseWriter, r *http.Request) *Session {
	if c, err := r.Cookie(m.cookie); err == nil {
		if s, ok := m.Lookup(c.Value); ok {
			return s
		}
	}
	s := m.create()
	http.SetCookie(w, m.newCookie(s.ID))
	return s
}

// newCookie builds the session cookie. SameSite=Lax keeps the cookie off
// cross-site subrequests and cross-site POSTs, so the state-changing
// routes are not trivially CSRF-able; top-level navigations still carry it.
func (m *SessionManager) newCookie(id string) *http.Cookie {
	c := &http.Cookie{
		Name:     m.cookie,
		Value:    id,
		Path:     "/",
		HttpOnly: true,
		SameSite: http.SameSiteLaxMode,
	}
	if ttl := m.TTL(); ttl > 0 {
		c.MaxAge = int(ttl.Seconds())
	}
	return c
}

// create inserts a fresh session, evicting the least recently accessed one
// when the cap is reached.
func (m *SessionManager) create() *Session {
	now := m.now()
	s := &Session{ID: newSessionID(), values: make(map[string]string), lastAccess: now}
	m.mu.Lock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		m.evictOldestLocked()
	}
	m.sessions[s.ID] = s
	active, created := m.active, m.created
	n := len(m.sessions)
	m.mu.Unlock()
	if created != nil {
		created.Inc()
	}
	if active != nil {
		active.Set(float64(n))
	}
	return s
}

// evictOldestLocked removes the least recently accessed session. Callers
// hold m.mu. The linear scan is fine at realistic caps (tens of
// thousands); the cap exists to bound memory, not to be hit continuously.
func (m *SessionManager) evictOldestLocked() {
	var oldestID string
	var oldest time.Time
	for id, s := range m.sessions {
		if at := s.LastAccess(); oldestID == "" || at.Before(oldest) {
			oldestID, oldest = id, at
		}
	}
	if oldestID != "" {
		delete(m.sessions, oldestID)
		if m.evicted != nil {
			m.evicted.Inc()
		}
	}
}

// Lookup returns a live session by id without creating one. Expired
// sessions are invisible (and reclaimed in place). A hit counts as an
// access for TTL purposes.
func (m *SessionManager) Lookup(id string) (*Session, bool) {
	now := m.now()
	m.mu.RLock()
	s, ok := m.sessions[id]
	ttl := m.ttl
	m.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if ttl > 0 && now.Sub(s.LastAccess()) > ttl {
		m.remove(id, s)
		return nil, false
	}
	s.touch(now)
	return s, true
}

// remove deletes id if it still maps to s, counting it as expired.
func (m *SessionManager) remove(id string, s *Session) {
	m.mu.Lock()
	cur, ok := m.sessions[id]
	if ok && cur == s {
		delete(m.sessions, id)
	}
	active, expired := m.active, m.expired
	n := len(m.sessions)
	m.mu.Unlock()
	if ok && cur == s {
		if expired != nil {
			expired.Inc()
		}
		if active != nil {
			active.Set(float64(n))
		}
	}
}

// Sweep removes every expired session and returns how many it reclaimed.
// A no-op when no TTL is configured.
func (m *SessionManager) Sweep() int {
	now := m.now()
	m.mu.Lock()
	ttl := m.ttl
	if ttl <= 0 {
		m.mu.Unlock()
		return 0
	}
	var removed int
	for id, s := range m.sessions {
		if now.Sub(s.LastAccess()) > ttl {
			delete(m.sessions, id)
			removed++
		}
	}
	active, expired := m.active, m.expired
	n := len(m.sessions)
	m.mu.Unlock()
	if removed > 0 {
		if expired != nil {
			expired.Add(uint64(removed))
		}
		if active != nil {
			active.Set(float64(n))
		}
	}
	return removed
}

// StartSweeper runs Sweep every interval on a background goroutine until
// the returned stop function is called. Stop is idempotent and waits for
// an in-flight sweep to finish.
func (m *SessionManager) StartSweeper(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.Sweep()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// Len returns the number of live sessions (including not-yet-swept expired
// ones).
func (m *SessionManager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.sessions)
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero id would
		// still be functional, just predictable, so panic loudly instead.
		panic("webapp: crypto/rand failure: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
