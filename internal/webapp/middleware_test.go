package webapp

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/obs"
)

func TestLoggingCapturesStatusAndBytes(t *testing.T) {
	var buf bytes.Buffer
	r := NewRouter()
	r.Use(Logging(log.New(&buf, "", 0)))
	r.GET("/teapot", func(c *Context) { c.Text(http.StatusTeapot, "short and stout") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/teapot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	line := buf.String()
	if !strings.Contains(line, " 418 ") {
		t.Errorf("log line missing status 418: %q", line)
	}
	if !strings.Contains(line, "15B") {
		t.Errorf("log line missing byte count: %q", line)
	}
}

func TestMetricsMiddlewareRecordsPerRoute(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(8)
	r := NewRouter()
	r.Use(Metrics(reg, tracer))
	r.GET("/reviews/:id", func(c *Context) { c.Text(http.StatusOK, "review %s", c.Param("id")) })
	srv := httptest.NewServer(r)
	defer srv.Close()

	for _, id := range []string{"1", "2", "3"} {
		resp, err := http.Get(srv.URL + "/reviews/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	got := reg.PrometheusText()
	if !strings.Contains(got, `http_requests_total{method="GET",route="/reviews/:id",status="200"} 3`) {
		t.Errorf("request counter missing or mislabeled:\n%s", got)
	}
	if !strings.Contains(got, `http_request_duration_seconds_count{route="/reviews/:id"} 3`) {
		t.Errorf("latency histogram missing:\n%s", got)
	}
	fin := tracer.Finished()
	if len(fin) != 3 || fin[0].Name() != "GET /reviews/:id" {
		t.Errorf("spans not recorded per request: %d", len(fin))
	}
}

func TestRecoverCountsPanicsAndFailsSpan(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(8)
	r := NewRouter()
	r.Use(Metrics(reg, tracer), Recover(log.New(io.Discard, "", 0), reg))
	r.GET("/boom", func(c *Context) { panic("kaboom") })
	srv := httptest.NewServer(r)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	got := reg.PrometheusText()
	if !strings.Contains(got, `webapp_panics_total{route="/boom"} 1`) {
		t.Errorf("panic counter missing:\n%s", got)
	}
	// Metrics (outermost) must see the 500 Recover wrote.
	if !strings.Contains(got, `http_requests_total{method="GET",route="/boom",status="500"} 1`) {
		t.Errorf("panicking request not recorded with status 500:\n%s", got)
	}
	fin := tracer.Finished()
	if len(fin) != 1 || fin[0].Err() == nil {
		t.Fatalf("span not recorded as errored: %+v", fin)
	}
}

func TestResponseRecorderDefaultsAndNoDoubleWrap(t *testing.T) {
	rec := httptest.NewRecorder()
	rr := NewResponseRecorder(rec)
	if NewResponseRecorder(rr) != rr {
		t.Fatal("wrapping a recorder must return it unchanged")
	}
	if rr.Status() != http.StatusOK {
		t.Fatalf("default status = %d", rr.Status())
	}
	rr.WriteHeader(http.StatusCreated)
	rr.WriteHeader(http.StatusAccepted) // first write wins
	if _, err := rr.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if rr.Status() != http.StatusCreated || rr.Bytes() != 5 {
		t.Fatalf("status=%d bytes=%d", rr.Status(), rr.Bytes())
	}
}
