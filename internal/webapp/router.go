// Package webapp is a minimal web application substrate built on net/http:
// a method-aware router with path parameters, cookie sessions, an in-memory
// table store and composable middleware. It exists so the case-study
// application (cmd/easychair) can run the paper's DQ software requirements
// end to end without any dependency outside the standard library.
package webapp

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// Context carries one request through a handler: the response writer, the
// request, extracted path parameters and the session.
type Context struct {
	// W and R are the raw response writer and request.
	W http.ResponseWriter
	R *http.Request
	// Params holds path parameters, e.g. {"id": "42"} for /reviews/:id.
	Params map[string]string
	// Pattern is the registered route pattern that matched, e.g.
	// "/reviews/:id/edit"; "" for the NotFound handler. Middleware uses it
	// as a bounded-cardinality route label.
	Pattern string
	// Session is the request's session; never nil when the router has a
	// session manager.
	Session *Session
}

// Param returns a path parameter by name, "" when absent.
func (c *Context) Param(name string) string { return c.Params[name] }

// FormValue returns a POST/query form value.
func (c *Context) FormValue(name string) string { return c.R.FormValue(name) }

// Text writes a plain-text response with the given status.
func (c *Context) Text(status int, format string, args ...any) {
	c.W.Header().Set("Content-Type", "text/plain; charset=utf-8")
	c.W.WriteHeader(status)
	fmt.Fprintf(c.W, format, args...)
}

// HTML writes an HTML response with the given status.
func (c *Context) HTML(status int, html string) {
	c.W.Header().Set("Content-Type", "text/html; charset=utf-8")
	c.W.WriteHeader(status)
	fmt.Fprint(c.W, html)
}

// Redirect sends a 303 See Other.
func (c *Context) Redirect(location string) {
	http.Redirect(c.W, c.R, location, http.StatusSeeOther)
}

// HandlerFunc handles one request.
type HandlerFunc func(*Context)

// Middleware wraps a handler with cross-cutting behaviour.
type Middleware func(HandlerFunc) HandlerFunc

// route is one registered pattern.
type route struct {
	method   string
	pattern  string
	segments []string // literal or ":param"
	handler  HandlerFunc
}

// Router dispatches requests by method and path pattern. Patterns use
// ":name" segments for parameters: "/reviews/:id/edit".
type Router struct {
	routes   []route
	mws      []Middleware
	sessions *SessionManager
	// NotFound handles unmatched paths; defaults to a plain 404.
	NotFound HandlerFunc
}

// NewRouter creates an empty router with its own session manager.
func NewRouter() *Router {
	return &Router{
		sessions: NewSessionManager("webapp_session"),
		NotFound: func(c *Context) { c.Text(http.StatusNotFound, "not found\n") },
	}
}

// Sessions returns the router's session manager.
func (r *Router) Sessions() *SessionManager { return r.sessions }

// Use appends middleware applied to every handler, outermost first.
func (r *Router) Use(mw ...Middleware) { r.mws = append(r.mws, mw...) }

// Handle registers a handler for a method and pattern.
func (r *Router) Handle(method, pattern string, h HandlerFunc) {
	segs := splitPath(pattern)
	r.routes = append(r.routes, route{method: method, pattern: pattern, segments: segs, handler: h})
}

// GET registers a GET handler.
func (r *Router) GET(pattern string, h HandlerFunc) { r.Handle(http.MethodGet, pattern, h) }

// POST registers a POST handler.
func (r *Router) POST(pattern string, h HandlerFunc) { r.Handle(http.MethodPost, pattern, h) }

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	segs := splitPath(req.URL.Path)
	var allowed []string
	for _, rt := range r.routes {
		params, ok := match(rt.segments, segs)
		if !ok {
			continue
		}
		if rt.method != req.Method {
			allowed = append(allowed, rt.method)
			continue
		}
		c := &Context{W: w, R: req, Params: params, Pattern: rt.pattern}
		c.Session = r.sessions.Get(w, req)
		h := rt.handler
		for i := len(r.mws) - 1; i >= 0; i-- {
			h = r.mws[i](h)
		}
		h(c)
		return
	}
	if len(allowed) > 0 {
		sort.Strings(allowed)
		w.Header().Set("Allow", strings.Join(allowed, ", "))
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	c := &Context{W: w, R: req, Params: map[string]string{}}
	c.Session = r.sessions.Get(w, req)
	r.NotFound(c)
}

func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

func match(pattern, path []string) (map[string]string, bool) {
	if len(pattern) != len(path) {
		return nil, false
	}
	params := map[string]string{}
	for i, seg := range pattern {
		if strings.HasPrefix(seg, ":") {
			params[seg[1:]] = path[i]
			continue
		}
		if seg != path[i] {
			return nil, false
		}
	}
	return params, true
}
