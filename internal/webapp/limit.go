package webapp

import (
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/modeldriven/dqwebre/internal/obs"
)

// ConcurrencyLimiter bounds the number of requests in flight at once. It is
// the serving stack's overload valve: when the server is saturated, excess
// requests are shed immediately with 503 Service Unavailable instead of
// queueing until timeouts tear everything down.
type ConcurrencyLimiter struct {
	sem chan struct{}

	// metrics; nil until Instrument.
	inflight *obs.Gauge
	shed     *obs.Counter
	admitted *obs.Counter
}

// NewConcurrencyLimiter admits at most max concurrent requests; max <= 0
// defaults to 1.
func NewConcurrencyLimiter(max int) *ConcurrencyLimiter {
	if max <= 0 {
		max = 1
	}
	return &ConcurrencyLimiter{sem: make(chan struct{}, max)}
}

// Cap returns the configured concurrency bound.
func (l *ConcurrencyLimiter) Cap() int { return cap(l.sem) }

// Instrument registers the limiter's metrics in reg: the
// http_inflight_requests gauge, the http_requests_shed_total{reason}
// counter and an admitted counter.
func (l *ConcurrencyLimiter) Instrument(reg *obs.Registry) {
	l.inflight = reg.Gauge("http_inflight_requests",
		"requests currently being served", nil)
	l.shed = reg.Counter("http_requests_shed_total",
		"requests rejected by the load-shedding middleware, by reason",
		obs.Labels{"reason": "overload"})
	l.admitted = reg.Counter("http_requests_admitted_total",
		"requests admitted by the concurrency limiter", nil)
}

// TryAcquire claims a slot without blocking; callers that get true must
// Release.
func (l *ConcurrencyLimiter) TryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		if l.inflight != nil {
			l.inflight.Add(1)
		}
		if l.admitted != nil {
			l.admitted.Inc()
		}
		return true
	default:
		if l.shed != nil {
			l.shed.Inc()
		}
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (l *ConcurrencyLimiter) Release() {
	<-l.sem
	if l.inflight != nil {
		l.inflight.Add(-1)
	}
}

// InFlight returns the number of currently admitted requests.
func (l *ConcurrencyLimiter) InFlight() int { return len(l.sem) }

// Middleware sheds requests with 503 when the limiter is saturated.
// Paths matching exempt (exact, or as a "/"-delimited prefix) bypass the
// limiter entirely — probes and the metrics scrape must stay reachable
// precisely when the server is overloaded.
func (l *ConcurrencyLimiter) Middleware(exempt ...string) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			if pathExempt(c.R.URL.Path, exempt) {
				next(c)
				return
			}
			if !l.TryAcquire() {
				c.W.Header().Set("Retry-After", "1")
				c.Text(http.StatusServiceUnavailable, "server overloaded, retry later\n")
				return
			}
			defer l.Release()
			next(c)
		}
	}
}

// RateLimiter applies a per-client token bucket: each client key accrues
// rate tokens per second up to burst, and every request spends one. It
// protects the server from a single hot client the way the concurrency
// limiter protects it from aggregate overload.
type RateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket

	// maxClients bounds the bucket map; stale buckets are pruned when it
	// is exceeded.
	maxClients int

	// metrics; nil until Instrument.
	shed    *obs.Counter
	clients *obs.Gauge
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewRateLimiter allows ratePerSec sustained requests per client with the
// given burst headroom. ratePerSec <= 0 disables limiting (Allow always
// returns true); burst < 1 defaults to 1.
func NewRateLimiter(ratePerSec float64, burst int) *RateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:       ratePerSec,
		burst:      float64(burst),
		now:        time.Now,
		buckets:    make(map[string]*bucket),
		maxClients: 16384,
	}
}

// Instrument registers the limiter's metrics in reg.
func (l *RateLimiter) Instrument(reg *obs.Registry) {
	l.shed = reg.Counter("http_requests_shed_total",
		"requests rejected by the load-shedding middleware, by reason",
		obs.Labels{"reason": "rate_limit"})
	l.clients = reg.Gauge("http_rate_limiter_clients",
		"distinct clients tracked by the rate limiter", nil)
}

// Allow reports whether the client identified by key may proceed, spending
// one token when it may.
func (l *RateLimiter) Allow(key string) bool {
	if l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= l.maxClients {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	allowed := b.tokens >= 1
	if allowed {
		b.tokens--
	}
	clients, n := l.clients, len(l.buckets)
	l.mu.Unlock()
	if clients != nil {
		clients.Set(float64(n))
	}
	if !allowed && l.shed != nil {
		l.shed.Inc()
	}
	return allowed
}

// pruneLocked drops buckets that have been idle long enough to be full
// again — forgetting them loses no information. Callers hold l.mu.
func (l *RateLimiter) pruneLocked(now time.Time) {
	idle := time.Duration(l.burst/l.rate*float64(time.Second)) + time.Second
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
}

// Clients returns the number of tracked client buckets.
func (l *RateLimiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Middleware sheds requests with 429 when the client's bucket is empty.
// Clients are keyed by remote IP (the port varies per connection). Paths
// matching exempt bypass the limiter.
func (l *RateLimiter) Middleware(exempt ...string) Middleware {
	return func(next HandlerFunc) HandlerFunc {
		return func(c *Context) {
			if pathExempt(c.R.URL.Path, exempt) {
				next(c)
				return
			}
			if !l.Allow(ClientKey(c.R)) {
				c.W.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(l.rate)))
				c.Text(http.StatusTooManyRequests, "rate limit exceeded, retry later\n")
				return
			}
			next(c)
		}
	}
}

// retryAfterSeconds suggests how long until one token accrues, at least 1s.
func retryAfterSeconds(rate float64) int {
	if rate <= 0 {
		return 1
	}
	s := int(1 / rate)
	if s < 1 {
		s = 1
	}
	return s
}

// ClientKey identifies the requesting client: the remote IP without the
// ephemeral port, falling back to the whole RemoteAddr. It is the key the
// rate-limit middleware buckets by, exported so servers that apply the
// limiters by hand (the dqserve job API) shed by the same identity.
func ClientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// pathExempt reports whether path equals one of the exempt entries or sits
// beneath one ("/debug" exempts "/debug/pprof/...").
func pathExempt(path string, exempt []string) bool {
	for _, e := range exempt {
		if e == "" {
			continue
		}
		if path == e || strings.HasPrefix(path, strings.TrimSuffix(e, "/")+"/") {
			return true
		}
	}
	return false
}
