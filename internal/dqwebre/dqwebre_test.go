package dqwebre

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/ocl"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/webre"
)

func TestMetamodelPackages(t *testing.T) {
	d := Metamodel()
	if d.Name() != "DQ_WebRE" {
		t.Fatalf("name = %q", d.Name())
	}
	behavior, ok := d.Package("Behavior")
	if !ok {
		t.Fatal("Behavior missing")
	}
	structure, ok := d.Package("Structure")
	if !ok {
		t.Fatal("Structure missing")
	}
	// Paper Fig. 1: four behavior metaclasses, three structure metaclasses.
	for _, n := range []string{MetaInformationCase, MetaDQRequirement, MetaDQReqSpecification, MetaAddDQMetadata} {
		if _, ok := behavior.Class(n); !ok {
			t.Errorf("%s not in Behavior package", n)
		}
	}
	for _, n := range []string{MetaDQMetadata, MetaDQValidator, MetaDQConstraint} {
		if _, ok := structure.Class(n); !ok {
			t.Errorf("%s not in Structure package", n)
		}
	}
	if reg, ok := metamodel.Lookup("DQ_WebRE"); !ok || reg != d {
		t.Fatal("DQ_WebRE not registered")
	}
}

// TestExtensionBaseClasses pins the superclass of every DQ metaclass: the
// heavyweight counterpart of Table 3's base classes.
func TestExtensionBaseClasses(t *testing.T) {
	cases := []struct{ sub, super string }{
		{MetaInformationCase, uml.MetaUseCase},
		{MetaDQRequirement, uml.MetaUseCase},
		{MetaDQReqSpecification, uml.MetaRequirement},
		{MetaDQReqSpecification, uml.MetaElement},
		{MetaAddDQMetadata, uml.MetaAction},
		{MetaDQMetadata, uml.MetaClass},
		{MetaDQValidator, uml.MetaClass},
		{MetaDQConstraint, uml.MetaClass},
	}
	for _, c := range cases {
		if !MustClass(c.sub).ConformsTo(MustClass(c.super)) {
			t.Errorf("%s should conform to %s", c.sub, c.super)
		}
	}
}

func TestDQDimensionEnumerationMatchesISO25012(t *testing.T) {
	e := Dimension()
	lits := e.Literals()
	defs := iso25012.All()
	if len(lits) != len(defs) {
		t.Fatalf("literals = %d, want %d", len(lits), len(defs))
	}
	for i, d := range defs {
		if lits[i] != string(d.Name) {
			t.Errorf("literal[%d] = %s, want %s", i, lits[i], d.Name)
		}
	}
	lit := MustDimensionLit(iso25012.Completeness)
	if lit.Literal != "Completeness" || lit.Enum != e {
		t.Fatal("MustDimensionLit wrong")
	}
	if _, err := DimensionLit("Velocity"); err == nil {
		t.Fatal("unknown dimension accepted")
	}
}

func TestMustDimensionLitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustDimensionLit("Velocity")
}

func TestProfileMatchesTable3(t *testing.T) {
	p := Profile()
	rows := Table3()
	if len(rows) != 7 {
		t.Fatalf("Table 3 rows = %d, want 7", len(rows))
	}
	if got := len(p.Stereotypes()); got != 7 {
		t.Fatalf("profile stereotypes = %d, want 7", got)
	}
	names := StereotypeNames()
	for i, row := range rows {
		if row.Name != names[i] {
			t.Errorf("row %d name = %s, want %s", i, row.Name, names[i])
		}
		s, ok := p.Stereotype(row.Name)
		if !ok {
			t.Errorf("stereotype %s missing from profile", row.Name)
			continue
		}
		// The profile's primary base class must match the paper's column.
		// (DQ_Req_Specification: the paper prints the root metaclass
		// "Element"; the profile extends Requirement, which IS an Element —
		// checked via conformance. Add_DQ_Metadata: the paper prints
		// "Activity"; the profile extends Action and Activity.)
		base := s.Bases()[0]
		switch row.Name {
		case MetaDQReqSpecification:
			if base.Name() != uml.MetaRequirement {
				t.Errorf("%s primary base = %s", row.Name, base.Name())
			}
			if !base.ConformsTo(uml.MustClass(uml.MetaElement)) {
				t.Errorf("%s base does not conform to Element", row.Name)
			}
		case MetaAddDQMetadata:
			found := false
			for _, b := range s.Bases() {
				if b.Name() == uml.MetaActivity || b.Name() == uml.MetaAction {
					found = true
				}
			}
			if !found {
				t.Errorf("%s lacks Activity/Action base", row.Name)
			}
		default:
			if base.Name() != row.BaseClass {
				t.Errorf("%s base = %s, want %s", row.Name, base.Name(), row.BaseClass)
			}
		}
		// Description column matches the stereotype doc.
		if s.Doc() != row.Description {
			t.Errorf("%s description out of sync with Table 3", row.Name)
		}
		// Constraint column: a non-trivial constraint implies an attached
		// machine-checkable OCL constraint, and vice versa.
		hasPaperConstraint := row.Constraints != "" && row.Constraints != "Not mandatory."
		if hasPaperConstraint != (len(s.Constraints()) > 0) {
			t.Errorf("%s constraint presence mismatch: paper=%v profile=%d",
				row.Name, hasPaperConstraint, len(s.Constraints()))
		}
		for _, c := range s.Constraints() {
			if _, err := ocl.Parse(c.OCL); err != nil {
				t.Errorf("%s constraint %s does not parse: %v", row.Name, c.Name, err)
			}
		}
	}
}

func TestTable3TaggedValues(t *testing.T) {
	p := Profile()
	spec := p.MustStereotype(MetaDQReqSpecification)
	if tag, ok := spec.Tag("ID"); !ok || tag.TypeString() != "Integer" {
		t.Error("DQ_Req_Specification ID tag wrong")
	}
	if tag, ok := spec.Tag("Text"); !ok || tag.TypeString() != "String" {
		t.Error("DQ_Req_Specification Text tag wrong")
	}
	meta := p.MustStereotype(MetaDQMetadata)
	if tag, ok := meta.Tag("DQ_metadata"); !ok || tag.TypeString() != "set(String)" {
		t.Error("DQ_Metadata tag wrong")
	}
	con := p.MustStereotype(MetaDQConstraint)
	if tag, ok := con.Tag("DQConstraint"); !ok || tag.TypeString() != "set(String)" {
		t.Error("DQConstraint set tag wrong")
	}
	if tag, ok := con.Tag("upper_bound"); !ok || tag.TypeString() != "Integer" {
		t.Error("upper_bound tag wrong")
	}
	if tag, ok := con.Tag("lower_bound"); !ok || tag.TypeString() != "Integer" {
		t.Error("lower_bound tag wrong")
	}
	// Stereotypes the paper gives no tags: none defined.
	for _, name := range []string{MetaInformationCase, MetaDQRequirement, MetaAddDQMetadata, MetaDQValidator} {
		if n := len(p.MustStereotype(name).Tags()); n != 0 {
			t.Errorf("%s should have no tags, has %d", name, n)
		}
	}
}

func TestRulesParseAndTargetKnownClasses(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Rules() {
		if seen[r.ID] {
			t.Errorf("duplicate rule %s", r.ID)
		}
		seen[r.ID] = true
		if _, err := ocl.Parse(r.Expr); err != nil {
			t.Errorf("rule %s: %v", r.ID, err)
		}
		if _, ok := Metamodel().FindClass(r.Class); !ok {
			t.Errorf("rule %s targets unknown class %q", r.ID, r.Class)
		}
	}
	// The DQ rules plus the inherited WebRE rules.
	if len(seen) < 10 {
		t.Errorf("expected at least 10 rules, got %d", len(seen))
	}
}

func TestRequirementsModelHappyPath(t *testing.T) {
	rm := NewRequirementsModel("easychair-lite")
	member := rm.WebUser("PC member")
	process := rm.WebProcess("Add new review to submission", member)
	reviewerInfo := rm.Content("information of reviewer",
		"first_name", "last_name", "email_address")
	scores := rm.Content("evaluation scores",
		"overall_evaluation", "reviewer_confidence")
	ic := rm.InformationCase("Add all data as result of review", process, reviewerInfo, scores)
	req := rm.DQRequirement("check that data will be accessed only by authorized users",
		iso25012.Confidentiality, ic)
	rm.Specify(req, 1, "check that data will be accessed only by authorized users")
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}

	// Stereotypes applied.
	if !rm.HasStereotype(ic, MetaInformationCase) {
		t.Error("InformationCase stereotype missing")
	}
	if !rm.HasStereotype(req, MetaDQRequirement) {
		t.Error("DQ_Requirement stereotype missing")
	}

	// Include chain: process includes ic, ic includes req.
	incs := process.GetRefs("include")
	if len(incs) != 1 || incs[0].GetRef("addition") != ic {
		t.Error("process→ic include missing")
	}
	incs = ic.GetRefs("include")
	if len(incs) != 1 || incs[0].GetRef("addition") != req {
		t.Error("ic→req include missing")
	}

	// Requirement info extraction.
	infos, err := rm.DQRequirements()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("DQRequirements = %d", len(infos))
	}
	if infos[0].Dimension != iso25012.Confidentiality || infos[0].SpecID != 1 {
		t.Errorf("info = %+v", infos[0])
	}
	if !strings.Contains(infos[0].String(), "Confidentiality") {
		t.Error("info String lacks dimension")
	}

	// The whole model validates cleanly.
	rep := rm.Validate()
	if !rep.OK() {
		for _, d := range rep.Diagnostics {
			t.Log(d)
		}
		t.Fatal("validation failed on well-formed model")
	}
}

func TestValidateCatchesUnrelatedInformationCase(t *testing.T) {
	rm := NewRequirementsModel("broken")
	rm.InformationCase("orphan", nil) // no WebProcess includes it
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	rep := rm.Validate()
	if rep.OK() {
		t.Fatal("orphan InformationCase should fail validation")
	}
	found := false
	for _, d := range rep.Errors() {
		if strings.Contains(d.Rule, "informationcase") || strings.Contains(d.Rule, "InformationCase") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no InformationCase diagnostics in %v", rep.Errors())
	}
}

func TestValidateCatchesDQRequirementWithoutInclude(t *testing.T) {
	rm := NewRequirementsModel("broken2")
	member := rm.WebUser("user")
	process := rm.WebProcess("proc", member)
	rm.InformationCase("ic", process)
	rm.DQRequirement("floating requirement", iso25012.Accuracy, nil) // not included by any IC
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	rep := rm.Validate()
	if rep.OK() {
		t.Fatal("floating DQ_Requirement should fail validation")
	}
}

func TestValidateCatchesConstraintWithoutValidator(t *testing.T) {
	rm := NewRequirementsModel("broken3")
	rm.DQConstraint("range", 0, 10, []string{"score in [0,10]"}) // no validator
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	rep := rm.Validate()
	if rep.OK() {
		t.Fatal("DQConstraint without validator should fail validation")
	}
}

func TestValidateCatchesInvertedBounds(t *testing.T) {
	rm := NewRequirementsModel("broken4")
	ui := rm.WebUI("page")
	v := rm.DQValidator("v", []string{"check_precision"}, ui)
	rm.DQConstraint("range", 10, 0, nil, v) // lower > upper
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	rep := rm.Validate()
	if rep.OK() {
		t.Fatal("inverted bounds should fail validation")
	}
	if len(rep.ByRule("dq-constraint-bounds-ordered")) == 0 {
		t.Fatal("bounds rule not reported")
	}
}

func TestActivityDiagramConstruction(t *testing.T) {
	rm := NewRequirementsModel("fig7-lite")
	scores := rm.Content("evaluation scores", "overall_evaluation")
	store := rm.DQMetadata("metadata of traceability",
		[]string{"stored_by", "stored_date", "last_modified_by", "last_modified_date"}, scores)
	page := rm.WebUI("webpage of New Review")
	val := rm.DQValidator("review validator", []string{"check_precision", "check_completeness"}, page)

	act := rm.Activity("Add new review to submission")
	lane := rm.Builder().Partition(act, "PC member")
	start := rm.Builder().Node(act, uml.MetaInitialNode, "", nil)
	tx := rm.UserTransaction(act, "add evaluation scores", lane, scores)
	add := rm.AddDQMetadataActivity(act, "store metadata of traceability", lane, store, nil, tx)
	verify := rm.Builder().Node(act, uml.MetaAction, "Verify Precision of data", lane)
	end := rm.Builder().Node(act, uml.MetaActivityFinalNode, "", nil)
	rm.Builder().FlowChain(act, start, tx, add, verify, end)
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	if add.GetRef("metadata") != store {
		t.Error("Add_DQ_Metadata store link missing")
	}
	if got := add.GetRefs("transactions"); len(got) != 1 || got[0] != tx {
		t.Error("Add_DQ_Metadata transactions link missing")
	}
	if !rm.HasStereotype(add, MetaAddDQMetadata) {
		t.Error("Add_DQ_Metadata stereotype missing")
	}
	if got := len(act.GetRefs("nodes")); got != 5 {
		t.Errorf("activity nodes = %d, want 5", got)
	}
	if got := len(act.GetRefs("edges")); got != 4 {
		t.Errorf("activity edges = %d, want 4", got)
	}
	if got := val.GetRefs("validates"); len(got) != 1 || got[0] != page {
		t.Error("validator→WebUI link missing")
	}

	rep := rm.Validate()
	if !rep.OK() {
		for _, d := range rep.Diagnostics {
			t.Log(d)
		}
		t.Fatal("fig7-lite should validate")
	}
}

func TestDQMetadataTaggedValues(t *testing.T) {
	rm := NewRequirementsModel("tags")
	store := rm.DQMetadata("m", []string{"a", "b"})
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	app, ok := rm.Application(store, MetaDQMetadata)
	if !ok {
		t.Fatal("application missing")
	}
	v, ok := app.Tag("DQ_metadata")
	if !ok {
		t.Fatal("tag missing")
	}
	l := v.(*metamodel.List)
	if len(l.Items) != 2 || l.Items[0] != metamodel.String("a") {
		t.Fatalf("tag items = %v", l.Items)
	}
	// Slot mirrors the tag.
	if got := store.GetList("dq_metadata"); len(got) != 2 {
		t.Fatalf("slot items = %v", got)
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	rm := NewRequirementsModel("err")
	rm.DQRequirement("r", "Velocity", nil) // bad dimension
	if rm.Err() == nil {
		t.Fatal("bad dimension should record an error")
	}
	// All later calls are no-ops returning nil.
	if rm.WebUser("u") != nil {
		t.Fatal("builder should short-circuit")
	}
}

func TestWebREElementsUsableInDQModels(t *testing.T) {
	rm := NewRequirementsModel("mixed")
	n1 := rm.Node("home")
	n2 := rm.Node("reviews")
	b := rm.Builder().Create(webre.MetaBrowse, "to reviews")
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	b.MustSet("source", metamodel.Ref{Target: n1})
	b.MustSet("target", metamodel.Ref{Target: n2})
	rep := rm.Validate()
	if !rep.OK() {
		for _, d := range rep.Diagnostics {
			t.Log(d)
		}
		t.Fatal("mixed WebRE model should validate")
	}
}
