package dqwebre

import (
	"sync"

	"github.com/modeldriven/dqwebre/internal/uml"
)

var (
	profileOnce sync.Once
	profilePtr  *uml.Profile
)

// Profile returns the DQ_WebRE UML profile: the seven stereotypes of the
// paper's Table 3, with their base classes, tagged values and constraints.
// Constraints are OCL expressions using the hasStereotype extension, so they
// apply to plain (WebRE) UML models with the profile applied — the
// lightweight path. The heavyweight path uses Rules() instead.
func Profile() *uml.Profile {
	profileOnce.Do(func() {
		profilePtr = buildProfile()
	})
	return profilePtr
}

func buildProfile() *uml.Profile {
	p := uml.NewProfile("DQ_WebRE").
		SetDoc("UML profile for the management of Data Quality software requirements in Web applications (Guerra-García, Caballero & Piattini).")

	ic := p.AddStereotype(MetaInformationCase, uml.MustClass(uml.MetaUseCase))
	ic.SetDoc("The IC, unlike normal use cases, has the main function of representing use cases that manage and store the data involved with the functionalities of the \"WebProcess\" type. These data will be subject to the specific requirements of data quality (DQ_Requirement) that are associated with them; we consider that the best way to link them is through a relationship of the \"include\" type, thus allowing them satisfy such DQ requirements.")
	ic.AddConstraint("related-to-webprocess",
		"UseCase.allInstances()->exists(w | w.hasStereotype('WebProcess') and w.include->exists(i | i.addition = self)) or WebProcess.allInstances()->exists(w | w.include->exists(i | i.addition = self))",
		"Must be related to at least one element of \"WebProcess\" type.")

	dqr := p.AddStereotype(MetaDQRequirement, uml.MustClass(uml.MetaUseCase))
	dqr.SetDoc("This represents a specific use case which is necessary to model the DQ requirements (DQ dimensions) that are related to the \"InformationCase\" use cases.")
	dqr.AddConstraint("related-to-informationcase",
		"UseCase.allInstances()->exists(ic | ic.hasStereotype('InformationCase') and ic.include->exists(i | i.addition = self)) or self.include->exists(i | i.addition.hasStereotype('InformationCase'))",
		"Must be related to (\"include\") at least one element of type \"Information Case\".")

	spec := p.AddStereotype(MetaDQReqSpecification, uml.MustClass(uml.MetaRequirement), uml.MustClass(uml.MetaNamedElement))
	spec.SetDoc("Abstract class that represents a particular element (\"Requirement\" type). It will be used to specify each of the DQ requirements added through requirements diagrams in detail.")
	spec.AddTag("ID", uml.IntegerType(), false).SetDoc("Numeric identifier of the specification.")
	spec.AddTag("Text", uml.StringType(), false).SetDoc("The detailed requirement statement.")

	addMeta := p.AddStereotype(MetaAddDQMetadata, uml.MustClass(uml.MetaAction), uml.MustClass(uml.MetaActivity))
	addMeta.SetDoc("This represents a particular activity which is related to the different \"UserTransaction\" activities. This metaclass is responsible for validating and adding the operations and information associated with each of the attributes (DQ_metadata) belonging to the \"DQ_Metadata\" or \"DQ_Validator\" metaclasses.")

	meta := p.AddStereotype(MetaDQMetadata, uml.MustClass(uml.MetaClass))
	meta.SetDoc("This represents a structural element of a Web application, and the DQ metadata will be managed and stored here. These sets of metadata are associated with Content elements. It will thus be possible to specify various DQ requirements (DQ dimensions) directly linked to data stored in the elements of the \"Content\" type.")
	meta.AddTag("DQ_metadata", uml.StringType(), true).SetDoc("The set of metadata attribute names.")

	validator := p.AddStereotype(MetaDQValidator, uml.MustClass(uml.MetaClass))
	validator.SetDoc("This represents a structural element. This metaclass will be responsible for managing different DQ operations in order to validate or restrict WebUI elements.")

	constraint := p.AddStereotype(MetaDQConstraint, uml.MustClass(uml.MetaClass))
	constraint.SetDoc("This represents a structural element of a Web application. In this element are stored the specific data of the different constraints, which will be related to elements of type DQ_Validator. Besides its corresponding bounds (e.g. \"upper_bound\" and \"lower_bound\").")
	constraint.AddTag("DQConstraint", uml.StringType(), true).SetDoc("The set of constraint payloads.")
	constraint.AddTag("upper_bound", uml.IntegerType(), false).SetDoc("Inclusive upper bound.")
	constraint.AddTag("lower_bound", uml.IntegerType(), false).SetDoc("Inclusive lower bound.")
	constraint.AddConstraint("related-to-validator",
		"Association.allInstances()->exists(a | a.memberEnd->includes(self) and a.memberEnd->exists(e | e.hasStereotype('DQ_Validator'))) or (self.oclIsKindOf(DQConstraint) and self.validator->notEmpty())",
		"Must be related to at least one element of type \"DQ_Validator\".")

	return p
}

// StereotypeNames returns the seven stereotype names in Table 3 order.
func StereotypeNames() []string {
	return []string{
		MetaInformationCase,
		MetaDQRequirement,
		MetaDQReqSpecification,
		MetaAddDQMetadata,
		MetaDQMetadata,
		MetaDQValidator,
		MetaDQConstraint,
	}
}
