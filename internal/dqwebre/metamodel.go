// Package dqwebre implements the paper's contribution: the WebRE metamodel
// extended with data quality concerns, and the DQ_WebRE UML profile.
//
// The extension adds seven metaclasses (paper Fig. 1):
//
//	Behavior:  InformationCase, DQ_Requirement, DQ_Req_Specification,
//	           Add_DQ_Metadata
//	Structure: DQ_Metadata, DQ_Validator, DQConstraint
//
// and the DQDimension enumeration whose literals are the fifteen ISO/IEC
// 25012 characteristics, so a DQ_Requirement can name the dimension it
// constrains.
//
// Both delivery mechanisms of the paper are provided: Metamodel() returns
// the heavyweight extension (DQ metaclasses specializing WebRE/UML
// metaclasses), and Profile() returns the lightweight UML profile whose
// stereotypes, tagged values and constraints reproduce Table 3.
package dqwebre

import (
	"fmt"
	"sync"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/webre"
)

// Metaclass and stereotype names introduced by DQ_WebRE.
const (
	MetaInformationCase    = "InformationCase"
	MetaDQRequirement      = "DQ_Requirement"
	MetaDQReqSpecification = "DQ_Req_Specification"
	MetaAddDQMetadata      = "Add_DQ_Metadata"
	MetaDQMetadata         = "DQ_Metadata"
	MetaDQValidator        = "DQ_Validator"
	MetaDQConstraint       = "DQConstraint"

	// EnumDQDimension is the enumeration of ISO/IEC 25012 characteristics.
	EnumDQDimension = "DQDimension"
)

var (
	once sync.Once
	pkg  *metamodel.Package
)

// Metamodel returns the DQ_WebRE extended metamodel (paper Fig. 1). It
// imports WebRE (and, transitively, the UML subset), is built once, and is
// registered under "DQ_WebRE".
func Metamodel() *metamodel.Package {
	once.Do(func() {
		pkg = build()
		metamodel.MustRegister(pkg)
	})
	return pkg
}

func build() *metamodel.Package {
	w := webre.Metamodel()
	u := uml.Metamodel()
	d := metamodel.NewPackage("DQ_WebRE")
	d.Import(w)

	str, _ := u.DataType("String")
	intT, _ := u.DataType("Integer")

	behavior := d.AddPackage("Behavior")
	structure := d.AddPackage("Structure")

	// The DQ dimension enumeration: one literal per ISO/IEC 25012
	// characteristic, in Table 1 order.
	litNames := make([]string, 0, 15)
	for _, def := range iso25012.All() {
		litNames = append(litNames, string(def.Name))
	}
	dim := behavior.AddEnumeration(EnumDQDimension, litNames...)

	// ---- Structure package extensions (paper Fig. 4) ----

	dqMeta := structure.AddClass(MetaDQMetadata).
		SetDoc("A structural element of the Web application where DQ metadata is managed and stored. The metadata sets are associated with Content elements, letting DQ requirements link directly to stored data.")
	dqMeta.AddSuper(uml.MustClass(uml.MetaClass))
	dqMeta.AddProperty("dq_metadata", str, 0, metamodel.Unbounded).
		SetDoc("The metadata attribute names, e.g. stored_by, stored_date, last_modified_by, last_modified_date, security_level, available_to.")
	dqMeta.AddRefs("contents", webre.MustClass(webre.MetaContent)).
		SetDoc("The Content elements this metadata describes.")

	dqValidator := structure.AddClass(MetaDQValidator).
		SetDoc("A structural element responsible for managing the DQ operations that validate or restrict WebUI elements (e.g. check_completeness(), check_precision()).")
	dqValidator.AddSuper(uml.MustClass(uml.MetaClass))
	dqValidator.AddRefs("validates", webre.MustClass(webre.MetaWebUI)).
		SetDoc("The WebUI elements this validator checks.")

	dqConstraint := structure.AddClass(MetaDQConstraint).
		SetDoc("A structural element storing the specific data of constraints related to DQ_Validator elements, with its bounds (upper_bound, lower_bound).")
	dqConstraint.AddSuper(uml.MustClass(uml.MetaClass))
	dqConstraint.AddProperty("constraintData", str, 0, metamodel.Unbounded).
		SetDoc("The constraint payload, e.g. the per-field valid score ranges.")
	dqConstraint.AddAttr("upper_bound", intT).
		SetDoc("Inclusive upper bound of the constrained value.")
	dqConstraint.AddAttr("lower_bound", intT).
		SetDoc("Inclusive lower bound of the constrained value.")
	dqConstraint.AddRefs("validator", dqValidator).
		SetDoc("The validators enforcing this constraint; at least one is required (Table 3).")

	// ---- Behavior package extensions (paper Figs. 2, 3, 5) ----

	infoCase := behavior.AddClass(MetaInformationCase).
		SetDoc("Unlike normal use cases, an InformationCase represents the use case that manages and stores the data involved with WebProcess functionalities; the data are subject to the DQ requirements associated with it.")
	infoCase.AddSuper(uml.MustClass(uml.MetaUseCase))
	infoCase.AddRefs("manages", webre.MustClass(webre.MetaContent)).
		SetDoc("The Content elements whose data this case manages.")

	reqSpec := behavior.AddClass(MetaDQReqSpecification).
		SetDoc("An element of Requirement type used to specify each DQ requirement in detail through requirements diagrams; carries ID and Text.")
	reqSpec.AddSuper(uml.MustClass(uml.MetaRequirement))

	dqReq := behavior.AddClass(MetaDQRequirement).
		SetDoc("A specific use case modeling the DQ requirements (DQ dimensions) related to InformationCase use cases; linked to them through include relationships.")
	dqReq.AddSuper(uml.MustClass(uml.MetaUseCase))
	dqReq.AddAttr("dimension", dim).
		SetDoc("The ISO/IEC 25012 characteristic this requirement constrains.")
	dqReq.AddRef("specification", reqSpec).
		SetDoc("The detailed DQ_Req_Specification, if drawn.")

	addMeta := behavior.AddClass(MetaAddDQMetadata).
		SetDoc("A particular activity, related to UserTransaction activities, responsible for validating and adding the operations and information associated with the attributes of DQ_Metadata or DQ_Validator.")
	addMeta.AddSuper(uml.MustClass(uml.MetaAction))
	addMeta.AddRef("metadata", dqMeta).
		SetDoc("The DQ_Metadata instance receiving the captured metadata.")
	addMeta.AddRef("validator", dqValidator).
		SetDoc("The DQ_Validator whose operations this activity wires in.")
	addMeta.AddRefs("transactions", webre.MustClass(webre.MetaUserTransaction)).
		SetDoc("The user transactions whose data this activity decorates.")

	return d
}

// MustClass resolves a DQ_WebRE (or imported WebRE/UML) metaclass by name.
func MustClass(name string) *metamodel.Class {
	c, ok := Metamodel().FindClass(name)
	if !ok {
		panic(fmt.Errorf("dqwebre: unknown metaclass %q", name))
	}
	return c
}

// Dimension returns the DQDimension enumeration.
func Dimension() *metamodel.Enumeration {
	behavior, _ := Metamodel().Package("Behavior")
	e, ok := behavior.Enumeration(EnumDQDimension)
	if !ok {
		panic("dqwebre: DQDimension enumeration missing")
	}
	return e
}

// DimensionLit builds an enumeration literal value for an ISO/IEC 25012
// characteristic name.
func DimensionLit(name iso25012.Characteristic) (metamodel.EnumLit, error) {
	e := Dimension()
	if !e.Has(string(name)) {
		return metamodel.EnumLit{}, fmt.Errorf("dqwebre: %q is not a DQ dimension", name)
	}
	return metamodel.EnumLit{Enum: e, Literal: string(name)}, nil
}

// MustDimensionLit is DimensionLit that panics on unknown names.
func MustDimensionLit(name iso25012.Characteristic) metamodel.EnumLit {
	l, err := DimensionLit(name)
	if err != nil {
		panic(err)
	}
	return l
}

// Rules returns the well-formedness rules of the extended metamodel: the
// Table 3 constraints restated over the heavyweight metaclasses (where the
// profile uses hasStereotype, the metamodel uses oclIsKindOf), plus the
// WebRE rules the extension inherits.
func Rules() []webre.WellFormednessRule {
	rules := []webre.WellFormednessRule{
		{
			ID:    "dq-informationcase-related-to-webprocess",
			Class: MetaInformationCase,
			Expr:  "WebProcess.allInstances()->exists(w | w.include->exists(i | i.addition = self))",
			Doc:   "An InformationCase must be related to at least one element of WebProcess type (via include).",
		},
		{
			ID:    "dq-requirement-includes-informationcase",
			Class: MetaDQRequirement,
			Expr:  "InformationCase.allInstances()->exists(ic | ic.include->exists(i | i.addition = self)) or self.include->exists(i | i.addition.oclIsKindOf(InformationCase))",
			Doc:   "A DQ_Requirement must be related to (include) at least one element of type InformationCase.",
		},
		{
			ID:    "dq-constraint-has-validator",
			Class: MetaDQConstraint,
			Expr:  "self.validator->notEmpty()",
			Doc:   "A DQConstraint must be related to at least one element of type DQ_Validator.",
		},
		{
			ID:    "dq-constraint-bounds-ordered",
			Class: MetaDQConstraint,
			Expr:  "self.lower_bound.oclIsUndefined() or self.upper_bound.oclIsUndefined() or self.lower_bound <= self.upper_bound",
			Doc:   "When both bounds are set, lower_bound must not exceed upper_bound.",
		},
		{
			ID:    "dq-requirement-has-dimension",
			Class: MetaDQRequirement,
			Expr:  "not self.dimension.oclIsUndefined()",
			Doc:   "A DQ_Requirement names the ISO/IEC 25012 dimension it constrains.",
		},
		{
			ID:    "dq-reqspec-has-text",
			Class: MetaDQReqSpecification,
			Expr:  "not self.text.oclIsUndefined() and self.text.size() > 0",
			Doc:   "A DQ_Req_Specification carries a non-empty requirement text.",
		},
	}
	return append(rules, webre.Rules()...)
}
