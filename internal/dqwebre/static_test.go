package dqwebre

import (
	"testing"

	"github.com/modeldriven/dqwebre/internal/validate"
)

// TestShippedRulesStaticallyCheck runs the OCL static checker over every
// metamodel rule and Table 3 profile constraint the library ships: a
// misspelled property in a rule definition fails this test rather than
// surfacing as a runtime diagnostic.
func TestShippedRulesStaticallyCheck(t *testing.T) {
	rm := NewRequirementsModel("static-check")
	eng := validate.New(rm.Model)
	for _, r := range Rules() {
		eng.AddRules(validate.Rule{ID: r.ID, Class: r.Class, Expr: r.Expr, Doc: r.Doc})
	}
	eng.AddProfileConstraints(Profile())
	for _, err := range eng.CheckRules() {
		t.Error(err)
	}
}

// TestCheckRulesCatchesBrokenRule proves the static pass actually fires.
func TestCheckRulesCatchesBrokenRule(t *testing.T) {
	rm := NewRequirementsModel("broken-rule")
	eng := validate.New(rm.Model)
	eng.AddRules(
		validate.Rule{ID: "typo", Class: MetaDQConstraint, Expr: "self.validatr->notEmpty()"},
		validate.Rule{ID: "ghost-class", Class: "Ghost", Expr: "true"},
		validate.Rule{ID: "ghost-stereo", Class: "@stereotype:Ghost", Expr: "true"},
	)
	errs := eng.CheckRules()
	if len(errs) != 3 {
		t.Fatalf("errors = %v", errs)
	}
}
