package dqwebre

// Table3Row is one row of the paper's Table 3: the specification of one
// DQ_WebRE stereotype.
type Table3Row struct {
	// Name is the stereotype name.
	Name string
	// BaseClass is the UML base class as printed in the paper.
	BaseClass string
	// Description is the paper's description column.
	Description string
	// Constraints is the paper's constraints column.
	Constraints string
	// TaggedValues is the paper's tagged-values column.
	TaggedValues string
}

// Table3 returns the paper's Table 3 verbatim, in row order. The profile
// built by Profile() carries the same stereotypes; the tests assert the two
// stay consistent (names, base classes, tags, constraint presence).
func Table3() []Table3Row {
	return []Table3Row{
		{
			Name:         MetaInformationCase,
			BaseClass:    "UseCase",
			Description:  "The IC, unlike normal use cases, has the main function of representing use cases that manage and store the data involved with the functionalities of the \"WebProcess\" type. These data will be subject to the specific requirements of data quality (DQ_Requirement) that are associated with them; we consider that the best way to link them is through a relationship of the \"include\" type, thus allowing them satisfy such DQ requirements.",
			Constraints:  "Must be related to at least one element of \"WebProcess\" type.",
			TaggedValues: "None.",
		},
		{
			Name:         MetaDQRequirement,
			BaseClass:    "UseCase",
			Description:  "This represents a specific use case which is necessary to model the DQ requirements (DQ dimensions) that are related to the \"InformationCase\" use cases.",
			Constraints:  "Must be related to (\"include\") at least one element of type \"Information Case\".",
			TaggedValues: "None.",
		},
		{
			Name:         MetaDQReqSpecification,
			BaseClass:    "Element",
			Description:  "Abstract class that represents a particular element (\"Requirement\" type). It will be used to specify each of the DQ requirements added through requirements diagrams in detail.",
			Constraints:  "",
			TaggedValues: "ID: Integer. Text: String.",
		},
		{
			Name:         MetaAddDQMetadata,
			BaseClass:    "Activity",
			Description:  "This represents a particular activity which is related to the different \"UserTransaction\" activities. This metaclass is responsible for validating and adding the operations and information associated with each of the attributes (DQ_metadata) belonging to the \"DQ_Metadata\" or \"DQ_Validator\" metaclasses.",
			Constraints:  "Not mandatory.",
			TaggedValues: "None.",
		},
		{
			Name:         MetaDQMetadata,
			BaseClass:    "Class",
			Description:  "This represents a structural element of a Web application, and the DQ metadata will be managed and stored here. These sets of metadata are associated with Content elements. It will thus be possible to specify various DQ requirements (DQ dimensions) directly linked to data stored in the elements of the \"Content\" type.",
			Constraints:  "Not mandatory.",
			TaggedValues: "DQ_metadata: set(String)",
		},
		{
			Name:         MetaDQValidator,
			BaseClass:    "Class",
			Description:  "This represents a structural element. This metaclass will be responsible for managing different DQ operations in order to validate or restrict WebUI elements.",
			Constraints:  "Not mandatory.",
			TaggedValues: "None.",
		},
		{
			Name:         MetaDQConstraint,
			BaseClass:    "Class",
			Description:  "This represents a structural element of a Web application. In this element are stored the specific data of the different constraints, which will be related to elements of type DQ_Validator. Besides its corresponding bounds (e.g. \"upper_bound\" and \"lower_bound\").",
			Constraints:  "Must be related to at least one element of type \"DQ_Validator\".",
			TaggedValues: "DQConstraint: set (String). upper_bound: Integer. lower_bound: Integer",
		},
	}
}
