package dqwebre

import (
	"fmt"

	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
	"github.com/modeldriven/dqwebre/internal/validate"
	"github.com/modeldriven/dqwebre/internal/webre"
)

// RequirementsModel is the analyst-facing API for building DQ-aware web
// requirements models: the use-case diagrams (paper Fig. 6) and activity
// diagrams (paper Fig. 7). Elements are heavyweight instances of the
// DQ_WebRE metamodel AND carry the matching profile stereotype, mirroring
// the paper's dual delivery (extended metamodel + UML profile).
type RequirementsModel struct {
	*uml.Model
	b *uml.Builder
}

// NewRequirementsModel creates an empty model over the DQ_WebRE metamodel
// with the DQ_WebRE profile applied.
func NewRequirementsModel(name string) *RequirementsModel {
	m := uml.NewModel(name, Metamodel())
	m.ApplyProfile(webre.Profile())
	m.ApplyProfile(Profile())
	return &RequirementsModel{Model: m, b: uml.NewBuilder(m)}
}

// WrapModel wraps an existing DQ_WebRE model (e.g. one loaded from XMI) in
// the analyst API. The DQ_WebRE profile is applied if it is not already.
func WrapModel(m *uml.Model) *RequirementsModel {
	m.ApplyProfile(webre.Profile())
	m.ApplyProfile(Profile())
	return &RequirementsModel{Model: m, b: uml.NewBuilder(m)}
}

// Err returns the first construction error, if any. All builder methods
// short-circuit once an error occurred.
func (rm *RequirementsModel) Err() error { return rm.b.Err() }

// Builder exposes the underlying low-level UML builder.
func (rm *RequirementsModel) Builder() *uml.Builder { return rm.b }

// WebUser creates a WebRE WebUser actor (e.g. "PC member").
func (rm *RequirementsModel) WebUser(name string) *metamodel.Object {
	return rm.b.Create(webre.MetaWebUser, name)
}

// WebProcess creates a WebRE WebProcess use case and associates the given
// actors with it.
func (rm *RequirementsModel) WebProcess(name string, actors ...*metamodel.Object) *metamodel.Object {
	uc := rm.b.UseCase(webre.MetaWebProcess, name)
	for _, a := range actors {
		rm.b.Associate(a, uc)
	}
	return uc
}

// InformationCase creates an «InformationCase» use case managing the given
// contents, and links it to the web process with an include relationship,
// satisfying the Table 3 constraint.
func (rm *RequirementsModel) InformationCase(name string, process *metamodel.Object, contents ...*metamodel.Object) *metamodel.Object {
	ic := rm.b.UseCase(MetaInformationCase, name)
	if ic == nil {
		return nil
	}
	for _, c := range contents {
		if err := ic.AppendRef("manages", c); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	if process != nil {
		rm.b.Include(process, ic)
	}
	rm.b.Apply(ic, MetaInformationCase)
	return ic
}

// DQRequirement creates a «DQ_Requirement» use case for one ISO/IEC 25012
// dimension and links it to the information case with an include
// relationship (Table 3: DQ_Requirement must be included by an
// InformationCase).
func (rm *RequirementsModel) DQRequirement(name string, dim iso25012.Characteristic, infoCase *metamodel.Object) *metamodel.Object {
	req := rm.b.UseCase(MetaDQRequirement, name)
	if req == nil {
		return nil
	}
	lit, err := DimensionLit(dim)
	if err != nil {
		rm.b.Fail(err)
		return nil
	}
	if err := req.Set("dimension", lit); err != nil {
		rm.b.Fail(err)
		return nil
	}
	if infoCase != nil {
		rm.b.Include(infoCase, req)
	}
	rm.b.Apply(req, MetaDQRequirement)
	return req
}

// Specify attaches a detailed «DQ_Req_Specification» to a DQ requirement,
// carrying the Table 3 tagged values ID and Text.
func (rm *RequirementsModel) Specify(req *metamodel.Object, id int64, text string) *metamodel.Object {
	spec := rm.b.Requirement(MetaDQReqSpecification, id, req.GetString("name"), text)
	if spec == nil {
		return nil
	}
	if err := req.Set("specification", metamodel.Ref{Target: spec}); err != nil {
		rm.b.Fail(err)
		return nil
	}
	if app := rm.b.Apply(spec, MetaDQReqSpecification); app != nil {
		app.MustSetTag("ID", metamodel.Int(id))
		app.MustSetTag("Text", metamodel.String(text))
	}
	return spec
}

// Content creates a WebRE Content element; fields, when given, are attached
// both as class attributes and as a comment note, matching the paper's
// Fig. 6 presentation.
func (rm *RequirementsModel) Content(name string, fields ...string) *metamodel.Object {
	c := rm.b.Class(webre.MetaContent, name)
	if c == nil {
		return nil
	}
	for _, f := range fields {
		rm.b.Attribute(c, f, "String")
	}
	if len(fields) > 0 {
		body := ""
		for i, f := range fields {
			if i > 0 {
				body += ", "
			}
			body += f
		}
		rm.b.Comment(body, c)
	}
	return c
}

// Node creates a WebRE Node.
func (rm *RequirementsModel) Node(name string) *metamodel.Object {
	return rm.b.Class(webre.MetaNode, name)
}

// WebUI creates a WebRE WebUI (a web page) element.
func (rm *RequirementsModel) WebUI(name string) *metamodel.Object {
	return rm.b.Class(webre.MetaWebUI, name)
}

// DQMetadata creates a «DQ_Metadata» class holding the given metadata
// attribute names, associated with the given contents.
func (rm *RequirementsModel) DQMetadata(name string, metadata []string, contents ...*metamodel.Object) *metamodel.Object {
	c := rm.b.Class(MetaDQMetadata, name)
	if c == nil {
		return nil
	}
	for _, md := range metadata {
		if err := c.Append("dq_metadata", metamodel.String(md)); err != nil {
			rm.b.Fail(err)
			return nil
		}
		rm.b.Attribute(c, md, "String")
	}
	for _, ct := range contents {
		if err := c.AppendRef("contents", ct); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	if app := rm.b.Apply(c, MetaDQMetadata); app != nil {
		items := make([]metamodel.Value, len(metadata))
		for i, md := range metadata {
			items[i] = metamodel.String(md)
		}
		app.MustSetTag("DQ_metadata", &metamodel.List{Items: items})
	}
	return c
}

// DQValidator creates a «DQ_Validator» class with the given check
// operations (e.g. "check_completeness", "check_precision"), validating the
// given WebUI elements.
func (rm *RequirementsModel) DQValidator(name string, operations []string, uis ...*metamodel.Object) *metamodel.Object {
	c := rm.b.Class(MetaDQValidator, name)
	if c == nil {
		return nil
	}
	for _, op := range operations {
		rm.b.Operation(c, op, "(): Boolean")
	}
	for _, ui := range uis {
		if err := c.AppendRef("validates", ui); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	rm.b.Apply(c, MetaDQValidator)
	return c
}

// DQConstraint creates a «DQConstraint» class with bounds and payload,
// related to the given validators (Table 3 requires at least one).
func (rm *RequirementsModel) DQConstraint(name string, lower, upper int64, data []string, validators ...*metamodel.Object) *metamodel.Object {
	c := rm.b.Class(MetaDQConstraint, name)
	if c == nil {
		return nil
	}
	if err := c.SetInt("lower_bound", lower); err != nil {
		rm.b.Fail(err)
		return nil
	}
	if err := c.SetInt("upper_bound", upper); err != nil {
		rm.b.Fail(err)
		return nil
	}
	for _, dt := range data {
		if err := c.Append("constraintData", metamodel.String(dt)); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	for _, v := range validators {
		if err := c.AppendRef("validator", v); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	if app := rm.b.Apply(c, MetaDQConstraint); app != nil {
		items := make([]metamodel.Value, len(data))
		for i, dt := range data {
			items[i] = metamodel.String(dt)
		}
		app.MustSetTag("DQConstraint", &metamodel.List{Items: items})
		app.MustSetTag("lower_bound", metamodel.Int(lower))
		app.MustSetTag("upper_bound", metamodel.Int(upper))
	}
	return c
}

// Activity creates a UML activity (the canvas of the paper's Fig. 7).
func (rm *RequirementsModel) Activity(name string) *metamodel.Object {
	return rm.b.Activity(name)
}

// UserTransaction adds a WebRE UserTransaction node to an activity,
// touching the given contents.
func (rm *RequirementsModel) UserTransaction(activity *metamodel.Object, name string, partition *metamodel.Object, contents ...*metamodel.Object) *metamodel.Object {
	n := rm.b.Node(activity, webre.MetaUserTransaction, name, partition)
	if n == nil {
		return nil
	}
	for _, c := range contents {
		if err := n.AppendRef("data", c); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	return n
}

// AddDQMetadataActivity adds an «Add_DQ_Metadata» node to an activity,
// wired to a DQ_Metadata store and/or DQ_Validator and covering the given
// user transactions.
func (rm *RequirementsModel) AddDQMetadataActivity(activity *metamodel.Object, name string, partition, store, validator *metamodel.Object, transactions ...*metamodel.Object) *metamodel.Object {
	n := rm.b.Node(activity, MetaAddDQMetadata, name, partition)
	if n == nil {
		return nil
	}
	if store != nil {
		if err := n.Set("metadata", metamodel.Ref{Target: store}); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	if validator != nil {
		if err := n.Set("validator", metamodel.Ref{Target: validator}); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	for _, tx := range transactions {
		if err := n.AppendRef("transactions", tx); err != nil {
			rm.b.Fail(err)
			return nil
		}
	}
	rm.b.Apply(n, MetaAddDQMetadata)
	return n
}

// Validate runs the full validation stack on the model: structural
// conformance, the DQ_WebRE metamodel well-formedness rules and the
// profile's Table 3 constraints.
func (rm *RequirementsModel) Validate() *validate.Report {
	eng := validate.New(rm.Model)
	for _, r := range Rules() {
		eng.AddRules(validate.Rule{
			ID:    r.ID,
			Class: r.Class,
			Expr:  r.Expr,
			Doc:   r.Doc,
		})
	}
	eng.AddProfileConstraints(Profile())
	return eng.Run()
}

// DQRequirements returns the model's DQ_Requirement elements with their
// dimensions, in creation order — the input to the DQR→DQSR transformation.
func (rm *RequirementsModel) DQRequirements() ([]RequirementInfo, error) {
	objs, err := rm.Model.AllInstancesOf(MetaDQRequirement)
	if err != nil {
		return nil, err
	}
	out := make([]RequirementInfo, 0, len(objs))
	for _, o := range objs {
		info := RequirementInfo{Element: o, Name: o.GetString("name")}
		if v, ok := o.Get("dimension"); ok {
			if lit, ok := v.(metamodel.EnumLit); ok {
				info.Dimension = iso25012.Characteristic(lit.Literal)
			}
		}
		if spec := o.GetRef("specification"); spec != nil {
			info.SpecID = spec.GetInt("id")
			info.SpecText = spec.GetString("text")
		}
		out = append(out, info)
	}
	return out, nil
}

// RequirementInfo summarizes one DQ_Requirement for reporting and
// transformation.
type RequirementInfo struct {
	// Element is the underlying model element.
	Element *metamodel.Object
	// Name is the requirement's name.
	Name string
	// Dimension is the ISO/IEC 25012 characteristic, "" if unset.
	Dimension iso25012.Characteristic
	// SpecID and SpecText come from the attached DQ_Req_Specification.
	SpecID   int64
	SpecText string
}

// String renders the requirement for reports.
func (ri RequirementInfo) String() string {
	return fmt.Sprintf("«DQ_Requirement» %s [%s] — %s", ri.Name, ri.Dimension, ri.SpecText)
}
