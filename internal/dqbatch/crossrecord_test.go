// Golden parity for cross-record checks: the same input must produce
// byte-identical reports — JSON and text — at Workers:1 and Workers:8, on
// the row path and the vectorized path, duplicates, dangling keys and
// freshness findings included. The fixtures keep per-record failures under
// the exemplar cap so the whole report (not just the cross-record block)
// compares byte-for-byte across worker counts.
package dqbatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// crossNDJSON builds records with duplicate ids, foreign keys that dangle
// past the reference set, a timestamp mix (fresh, stale, future) and a
// couple of malformed lines; exactly two records miss the required field.
func crossNDJSON() string {
	var b strings.Builder
	for i := 0; i < 900; i++ {
		switch {
		case i%173 == 0:
			b.WriteString("{bad json\n")
		case i == 150 || i == 600:
			fmt.Fprintf(&b, `{"id": "gap-%d", "customer_id": "c1", "ts": "2026-08-08T06:00:00Z"}`+"\n", i)
		default:
			id := fmt.Sprintf("id-%d", i%800) // i and i+800 collide below 100
			cust := fmt.Sprintf("c%d", i%45)  // reference set holds c0..c39
			var ts string
			switch i % 7 {
			case 0:
				ts = "2025-01-01T00:00:00Z" // stale
			case 1:
				ts = "2026-09-01T00:00:00Z" // future-dated
			default:
				ts = fmt.Sprintf("2026-08-0%dT10:00:00Z", i%7)
			}
			fmt.Fprintf(&b, `{"a": "x%d", "id": %q, "customer_id": %q, "ts": %q}`+"\n", i, id, cust, ts)
		}
	}
	return b.String()
}

// refNDJSON is the reference dataset for the two-pass referential check;
// the malformed line must be skipped by BuildKeySet.
func refNDJSON() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, `{"id": "c%d"}`+"\n", i)
	}
	b.WriteString("{bad json\n")
	return b.String()
}

// crossChecks assembles the three stateful checks the tentpole ships, with
// the referential reference set built by the real first pass.
func crossChecks(t *testing.T, maxExact int) []dqruntime.StatefulCheck {
	t.Helper()
	keys, err := BuildKeySet(context.Background(),
		NewNDJSONSource(strings.NewReader(refNDJSON())), []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 40 {
		t.Fatalf("reference key set has %d keys, want 40", len(keys))
	}
	asOf := func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC) }
	return []dqruntime.StatefulCheck{
		dqruntime.UniquenessCheck{Fields: []string{"id"}, MaxExact: maxExact, BloomBits: 1 << 14},
		dqruntime.ReferentialCheck{Fields: []string{"customer_id"}, Ref: keys, RefName: "customers"},
		dqruntime.TimelinessCheck{Field: "ts",
			Windows: []time.Duration{24 * time.Hour, 7 * 24 * time.Hour}, Now: asOf},
	}
}

// runCross executes one configuration and normalizes everything that may
// legitimately differ between configurations (timing, worker count, path).
func runCross(t *testing.T, doc string, checks []dqruntime.StatefulCheck, workers int, forceRows bool) *Result {
	t.Helper()
	v := dqruntime.NewValidator("cross", dqruntime.CompletenessCheck{Required: []string{"a"}})
	res, err := Run(context.Background(), v, NewNDJSONSource(strings.NewReader(doc)), Options{
		Workers: workers, ChunkSize: 32, ForceRows: forceRows,
		Registry: obs.NewRegistry(), CrossRecord: checks,
	})
	if err != nil {
		t.Fatal(err)
	}
	normalize(res)
	res.Workers = 0
	return res
}

// TestCrossRecordGoldenParity is the acceptance criterion: uniqueness +
// two-pass referential + timeliness report byte-identically across
// Workers:1 vs Workers:8 and row vs vectorized path.
func TestCrossRecordGoldenParity(t *testing.T) {
	doc := crossNDJSON()
	checks := crossChecks(t, 0)

	base := runCross(t, doc, checks, 1, true)
	if len(base.CrossRecords) != 3 {
		t.Fatalf("cross findings = %d, want 3", len(base.CrossRecords))
	}
	for _, f := range base.CrossRecords {
		if f.Records == 0 || f.Violations == 0 || f.Passed {
			t.Fatalf("degenerate fixture for %s: %+v", f.Check, f)
		}
		if f.Approximate {
			t.Fatalf("%s went approximate with default MaxExact: %+v", f.Check, f)
		}
		if len(f.Details) == 0 {
			t.Fatalf("%s has no details: %+v", f.Check, f)
		}
	}

	baseJSON, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var baseText bytes.Buffer
	base.WriteText(&baseText)

	for _, workers := range []int{1, 8} {
		for _, forceRows := range []bool{true, false} {
			if workers == 1 && forceRows {
				continue // the baseline itself
			}
			res := runCross(t, doc, checks, workers, forceRows)
			gotJSON, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(baseJSON, gotJSON) {
				t.Fatalf("workers=%d forceRows=%v JSON diverged from baseline:\nbase:\n%s\ngot:\n%s",
					workers, forceRows, baseJSON, gotJSON)
			}
			var gotText bytes.Buffer
			res.WriteText(&gotText)
			if !bytes.Equal(baseText.Bytes(), gotText.Bytes()) {
				t.Fatalf("workers=%d forceRows=%v text diverged:\nbase:\n%s\ngot:\n%s",
					workers, forceRows, baseText.String(), gotText.String())
			}
		}
	}
}

// TestCrossRecordBloomParity repeats the 4-way byte identity with the
// uniqueness check forced into approximate mode.
func TestCrossRecordBloomParity(t *testing.T) {
	doc := crossNDJSON()
	checks := crossChecks(t, 16)

	base := runCross(t, doc, checks, 1, true)
	if !base.CrossRecords[0].Approximate {
		t.Fatalf("uniqueness stayed exact at MaxExact=16: %+v", base.CrossRecords[0])
	}
	baseJSON, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		for _, forceRows := range []bool{true, false} {
			res := runCross(t, doc, checks, workers, forceRows)
			gotJSON, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(baseJSON, gotJSON) {
				t.Fatalf("workers=%d forceRows=%v Bloom report diverged:\nbase:\n%s\ngot:\n%s",
					workers, forceRows, baseJSON, gotJSON)
			}
		}
	}
}

// TestCrossFindingsAttributeQuality checks each finding lands in the
// windowed quality series as one dataset-level measurement of its
// characteristic.
func TestCrossFindingsAttributeQuality(t *testing.T) {
	quality := obs.NewSeriesSet(time.Minute, 4)
	v := dqruntime.NewValidator("cross", dqruntime.CompletenessCheck{Required: []string{"a"}})
	res, err := Run(context.Background(), v,
		NewNDJSONSource(strings.NewReader(crossNDJSON())), Options{
			Workers: 4, Registry: obs.NewRegistry(), Quality: quality, Context: "nightly",
			CrossRecord: crossChecks(t, 0),
		})
	if err != nil {
		t.Fatal(err)
	}
	rep := quality.Report("dq_score", 0)
	byChar := map[string]obs.SeriesSnapshot{}
	for _, s := range rep.Series {
		byChar[s.Labels["characteristic"]] = s
	}
	// Uniqueness + referential merge into consistency (2 measurements),
	// timeliness into currentness (1); neither characteristic has
	// per-record checks in this validator, so the counts are exactly the
	// finding counts.
	cons, ok := byChar["Consistency"]
	if !ok || cons.Current == nil || cons.Current.Count != 2 || cons.Current.Failures != 2 {
		t.Fatalf("consistency series = %+v", cons)
	}
	curr, ok := byChar["Currentness"]
	if !ok || curr.Current == nil || curr.Current.Count != 1 {
		t.Fatalf("currentness series = %+v", curr)
	}
	if want := res.CrossRecords[2].Score; curr.Current.Min != want || curr.Current.Max != want {
		t.Fatalf("currentness min/max = %g/%g, want finding score %g",
			curr.Current.Min, curr.Current.Max, want)
	}
}

// TestCSVDecodeErrorFileLines pins the line-number fix: quoted multi-line
// fields advance file lines without advancing record counts, and decode
// errors must point at true file lines on both paths.
func TestCSVDecodeErrorFileLines(t *testing.T) {
	doc := "a,b\n" + // line 1: header
		"\"x\ny\",2\n" + // lines 2-3: one record with an embedded newline
		"only-one-field\n" + // line 4: field-count mismatch
		"p,q\n" + // line 5: ok
		"1,2,3\n" + // line 6: field-count mismatch
		"\"z\nw\",9\n" + // lines 7-8: ok
		"ab\"cd,x\n" // line 9: bare-quote parse error
	v := dqruntime.NewValidator("csv", dqruntime.CompletenessCheck{Required: []string{"a"}})
	for _, forceRows := range []bool{true, false} {
		res, err := Run(context.Background(), v, NewCSVSource(strings.NewReader(doc)),
			Options{Workers: 1, ForceRows: forceRows, Registry: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Records != 3 || res.Malformed != 3 {
			t.Fatalf("forceRows=%v: records=%d malformed=%d, want 3/3", forceRows, res.Records, res.Malformed)
		}
		var lines []int64
		for _, de := range res.DecodeErrors {
			lines = append(lines, de.Line)
		}
		if len(lines) != 3 || lines[0] != 4 || lines[1] != 6 || lines[2] != 9 {
			t.Fatalf("forceRows=%v: decode error lines = %v, want [4 6 9]", forceRows, lines)
		}
	}
}
