// Golden parity for the vectorized pipeline: running the same input
// through Run with ForceRows and with the columnar path (Workers:1) must
// produce byte-identical reports — same counts, scores, exemplar order
// and detail text, same decode errors with the same line numbers — for
// both NDJSON and CSV, malformed lines included. Timing fields are zeroed
// before comparison; everything else must match exactly.
package dqbatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
)

func parityValidator(t testing.TB) *dqruntime.Validator {
	t.Helper()
	oclChk, err := dqruntime.NewOCLCheck(iso25012.Consistency,
		"n.oclIsUndefined() or opt.oclIsUndefined() or n <= opt")
	if err != nil {
		t.Fatal(err)
	}
	fixedNow := func() time.Time {
		return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	}
	return dqruntime.NewValidator("parity",
		dqruntime.CompletenessCheck{Required: []string{"a", "b"}},
		dqruntime.PrecisionCheck{Field: "n", Lower: -3, Upper: 3},
		dqruntime.AccuracyCheck{Field: "email", Pattern: dqruntime.EmailPattern},
		dqruntime.CurrentnessCheck{Field: "ts", MaxAge: 365 * 24 * time.Hour, Now: fixedNow},
		// No vectorized path: exercises the RowView fallback inside the
		// otherwise-columnar pipeline.
		dqruntime.ConsistencyCheck{Rule: "a differs from b", Predicate: func(r dqruntime.Record) bool {
			return r["a"] != r["b"] || r["a"] == ""
		}},
		oclChk,
	)
}

// parityNDJSON builds an NDJSON document with passing rows, failing rows,
// blank lines and malformed lines (bad JSON, null values, nested values).
func parityNDJSON() string {
	var b strings.Builder
	for i := 0; i < 700; i++ {
		switch {
		case i%97 == 0:
			b.WriteString("{bad json\n") // undecodable line
		case i%61 == 0:
			b.WriteString(`{"a": "x", "n": null}` + "\n") // null field value
		case i%53 == 0:
			b.WriteString(`{"a": {"nested": 1}}` + "\n") // non-scalar field
		case i%31 == 0:
			b.WriteString("\n") // blank line, skipped silently
		default:
			fmt.Fprintf(&b, `{"a": "v%d", "b": "w%d", "n": "%d", "opt": "%d", "email": "u%d@example.org", "ts": "2026-0%d-01T00:00:00Z"}`+"\n",
				i, i%7, i%9-4, i%6, i, i%9+1)
		}
	}
	return b.String()
}

// parityCSV builds a CSV document with a header, valid rows and rows with
// the wrong field count.
func parityCSV() string {
	var b strings.Builder
	b.WriteString("a,b,n,opt,email,ts\n")
	for i := 0; i < 500; i++ {
		switch {
		case i%89 == 0:
			fmt.Fprintf(&b, "only,three,fields\n") // field-count mismatch
		default:
			fmt.Fprintf(&b, "v%d,w%d,%d,%d,u%d@example.org,2026-0%d-01T00:00:00Z\n",
				i, i%7, i%9-4, i%6, i, i%9+1)
		}
	}
	return b.String()
}

// normalize zeroes the timing-dependent fields so reports compare on
// content alone.
func normalize(r *Result) {
	r.Seconds = 0
	r.RecordsPerSec = 0
	r.LatencyP50 = 0
	r.LatencyP99 = 0
	r.Duration = 0
	r.Vectorized = false
	r.Pipelined = false
}

// runParity runs both paths over the same input and returns the
// normalized results.
func runParity(t *testing.T, mkSource func() Source) (row, vec *Result) {
	t.Helper()
	v := parityValidator(t)
	opts := Options{Workers: 1, ChunkSize: 64, Registry: obs.NewRegistry()}

	opts.ForceRows = true
	row, err := Run(context.Background(), v, mkSource(), opts)
	if err != nil {
		t.Fatalf("row path: %v", err)
	}
	if row.Vectorized {
		t.Fatal("ForceRows ran the vectorized path")
	}

	opts.ForceRows = false
	vec, err = Run(context.Background(), v, mkSource(), opts)
	if err != nil {
		t.Fatalf("vectorized path: %v", err)
	}
	if !vec.Vectorized {
		t.Fatal("vectorized path did not engage")
	}
	normalize(row)
	normalize(vec)
	return row, vec
}

func assertIdenticalReports(t *testing.T, row, vec *Result) {
	t.Helper()
	rowJSON, err := json.MarshalIndent(row, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	vecJSON, err := json.MarshalIndent(vec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rowJSON, vecJSON) {
		t.Fatalf("JSON reports diverged\nrow path:\n%s\nvectorized:\n%s", rowJSON, vecJSON)
	}
	var rowText, vecText bytes.Buffer
	row.WriteText(&rowText)
	vec.WriteText(&vecText)
	if !bytes.Equal(rowText.Bytes(), vecText.Bytes()) {
		t.Fatalf("text reports diverged\nrow path:\n%s\nvectorized:\n%s", rowText.String(), vecText.String())
	}
}

func TestRunParityNDJSON(t *testing.T) {
	doc := parityNDJSON()
	row, vec := runParity(t, func() Source { return NewNDJSONSource(strings.NewReader(doc)) })
	if row.Records == 0 || row.Failed == 0 || row.Malformed == 0 {
		t.Fatalf("degenerate fixture: %+v", row)
	}
	if len(row.DecodeErrors) == 0 {
		t.Fatal("fixture produced no decode errors")
	}
	assertIdenticalReports(t, row, vec)
}

func TestRunParityCSV(t *testing.T) {
	doc := parityCSV()
	row, vec := runParity(t, func() Source { return NewCSVSource(strings.NewReader(doc)) })
	if row.Records == 0 || row.Malformed == 0 {
		t.Fatalf("degenerate fixture: %+v", row)
	}
	assertIdenticalReports(t, row, vec)
}

func TestRunParityColumnSource(t *testing.T) {
	recs := make([]dqruntime.Record, 0, 200)
	for i := 0; i < 200; i++ {
		recs = append(recs, dqruntime.Record{
			"a": fmt.Sprintf("v%d", i), "b": fmt.Sprintf("w%d", i%5),
			"n": fmt.Sprintf("%d", i%9-4), "opt": fmt.Sprintf("%d", i%6),
			"email": "u@example.org", "ts": "2026-01-01T00:00:00Z",
		})
	}
	row, vec := runParity(t, func() Source { return NewColumnSource(recs) })
	assertIdenticalReports(t, row, vec)
}

// TestDecodeErrorLines pins the decode-error capture: line numbers point
// at the malformed input lines, the cap applies, and Malformed counts
// every skipped record regardless.
func TestDecodeErrorLines(t *testing.T) {
	doc := "{\"a\": \"1\"}\n{bad\n\n{\"a\": null}\n{worse\n"
	for _, forceRows := range []bool{true, false} {
		res, err := Run(context.Background(), parityValidator(t),
			NewNDJSONSource(strings.NewReader(doc)),
			Options{Workers: 1, ForceRows: forceRows, MaxDecodeErrors: 2, Registry: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		if res.Records != 1 || res.Malformed != 3 {
			t.Fatalf("forceRows=%v: records=%d malformed=%d, want 1/3", forceRows, res.Records, res.Malformed)
		}
		if len(res.DecodeErrors) != 2 {
			t.Fatalf("forceRows=%v: %d decode errors retained, want 2 (cap)", forceRows, len(res.DecodeErrors))
		}
		if res.DecodeErrors[0].Line != 2 || res.DecodeErrors[1].Line != 4 {
			t.Fatalf("forceRows=%v: decode error lines %d,%d, want 2,4",
				forceRows, res.DecodeErrors[0].Line, res.DecodeErrors[1].Line)
		}
		if res.DecodeErrors[0].Error == "" {
			t.Fatalf("forceRows=%v: empty decode error text", forceRows)
		}
	}
	// Negative cap retains nothing but still counts.
	res, err := Run(context.Background(), parityValidator(t),
		NewNDJSONSource(strings.NewReader(doc)),
		Options{Workers: 1, MaxDecodeErrors: -1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Malformed != 3 || len(res.DecodeErrors) != 0 {
		t.Fatalf("negative cap: malformed=%d retained=%d", res.Malformed, len(res.DecodeErrors))
	}
}

// TestRunCancelledKeepsPartialReport checks a cancelled run still returns
// the partial result (the SIGINT path the CLI prints), with the context
// error alongside.
func TestRunCancelledKeepsPartialReport(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, parityValidator(t),
		NewNDJSONSource(strings.NewReader(parityNDJSON())),
		Options{Workers: 2, Registry: obs.NewRegistry()})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
}

// TestRunVectorizedWorkers runs the columnar path with several workers
// under load: exact counters must match the sequential row path even
// though chunk assignment is nondeterministic.
func TestRunVectorizedWorkers(t *testing.T) {
	doc := parityNDJSON()
	v := parityValidator(t)
	seq, err := Run(context.Background(), v, NewNDJSONSource(strings.NewReader(doc)),
		Options{Workers: 1, ForceRows: true, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), v, NewNDJSONSource(strings.NewReader(doc)),
		Options{Workers: 4, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if !par.Vectorized {
		t.Fatal("vectorized path did not engage")
	}
	if par.Records != seq.Records || par.Passed != seq.Passed ||
		par.Failed != seq.Failed || par.Malformed != seq.Malformed {
		t.Fatalf("counters diverged: seq %+v, par %+v", seq, par)
	}
	if len(par.Characteristics) != len(seq.Characteristics) {
		t.Fatalf("characteristics: %d vs %d", len(par.Characteristics), len(seq.Characteristics))
	}
	for i := range par.Characteristics {
		p, s := par.Characteristics[i], seq.Characteristics[i]
		if p.Characteristic != s.Characteristic || p.Checks != s.Checks || p.Passed != s.Passed ||
			p.MinScore != s.MinScore || p.MaxScore != s.MaxScore {
			t.Fatalf("characteristic %d diverged: %+v vs %+v", i, p, s)
		}
	}
}
