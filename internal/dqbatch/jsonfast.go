package dqbatch

import (
	"encoding/json"
	"fmt"
	"strconv"
	"unicode/utf8"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
)

// Fast NDJSON decoding: the mmap ingest path parses the common record
// shape — a flat JSON object of unescaped strings, numbers and booleans —
// straight out of the mapped bytes, skipping encoding/json's reflection
// and intermediate map[string]any entirely. Anything unusual (escape
// sequences, invalid UTF-8, null or nested values, duplicate keys, any
// syntax the scanner is not certain about) bails out to the exact
// json.Unmarshal + scalarString path the row decoder uses, so the
// accept/reject decision and every error text stay byte-identical to the
// bufio sources. The golden parity suite pins that equivalence.

// fastDecodeLine decodes one line into dst as the current row. It returns
// false — after rolling back any partially appended cells — when the line
// needs the slow path; true means the row was appended (EndRow called).
// names is a reused scratch of this row's key slices for duplicate-key
// detection; the slices alias raw and die with the call.
func fastDecodeLine(raw []byte, dst *dqruntime.ColumnBatch, names *[][]byte) bool {
	i, n := 0, len(raw)
	skipWS := func() {
		for i < n && asciiSpace(raw[i]) {
			i++
		}
	}
	bail := func() bool {
		dst.AbortRow()
		return false
	}
	*names = (*names)[:0]
	skipWS()
	if i >= n || raw[i] != '{' {
		return bail()
	}
	i++
	skipWS()
	if i < n && raw[i] == '}' {
		// Empty object: a record with no fields, same as the row path's
		// empty map.
		i++
		skipWS()
		if i != n {
			return bail()
		}
		dst.EndRow()
		return true
	}
	for {
		skipWS()
		if i >= n || raw[i] != '"' {
			return bail()
		}
		i++
		keyStart := i
		for i < n && raw[i] != '"' {
			// Escaped, control or non-ASCII key bytes: let encoding/json
			// decode (and validate) them.
			if raw[i] == '\\' || raw[i] < 0x20 || raw[i] >= utf8.RuneSelf {
				return bail()
			}
			i++
		}
		if i >= n {
			return bail()
		}
		key := raw[keyStart:i]
		i++
		for _, seen := range *names {
			if string(seen) == string(key) {
				// Duplicate key: map semantics keep the last value; only the
				// slow path reproduces that.
				return bail()
			}
		}
		*names = append(*names, key)
		skipWS()
		if i >= n || raw[i] != ':' {
			return bail()
		}
		i++
		skipWS()
		if i >= n {
			return bail()
		}
		var val string
		switch c := raw[i]; {
		case c == '"':
			i++
			start := i
			ascii := true
			for i < n && raw[i] != '"' {
				if raw[i] == '\\' || raw[i] < 0x20 {
					return bail()
				}
				if raw[i] >= utf8.RuneSelf {
					ascii = false
				}
				i++
			}
			if i >= n {
				return bail()
			}
			vb := raw[start:i]
			i++
			// encoding/json coerces invalid UTF-8 to U+FFFD; bail so the
			// slow path applies the same coercion.
			if !ascii && !utf8.Valid(vb) {
				return bail()
			}
			val = string(vb)
		case c == 't':
			if n-i < 4 || string(raw[i:i+4]) != "true" {
				return bail()
			}
			val = "true"
			i += 4
		case c == 'f':
			if n-i < 5 || string(raw[i:i+5]) != "false" {
				return bail()
			}
			val = "false"
			i += 5
		case c == '-' || (c >= '0' && c <= '9'):
			tok, rest, ok := scanJSONNumber(raw[i:])
			if !ok {
				return bail()
			}
			i = n - len(rest)
			val, ok = renderNumber(tok)
			if !ok {
				return bail()
			}
		default:
			// null, nested objects/arrays, or garbage: the slow path either
			// produces the canonical "unsupported value type" record error
			// or the canonical decode error.
			return bail()
		}
		dst.SetFieldBytes(key, val)
		skipWS()
		if i >= n {
			return bail()
		}
		if raw[i] == ',' {
			i++
			continue
		}
		if raw[i] != '}' {
			return bail()
		}
		i++
		skipWS()
		if i != n {
			return bail()
		}
		dst.EndRow()
		return true
	}
}

// scanJSONNumber consumes one JSON number token (strict JSON grammar: no
// leading zeros, no bare '.', exponent needs digits) and returns the token
// plus the remaining bytes.
func scanJSONNumber(b []byte) (tok, rest []byte, ok bool) {
	i := 0
	if i < len(b) && b[i] == '-' {
		i++
	}
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, nil, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, nil, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return nil, nil, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	return b[:i], b[i:], true
}

// renderNumber produces the string a JSON number lands in a record as —
// exactly scalarString's FormatFloat(ParseFloat(tok)) round trip. Small
// integer tokens short-circuit: they are their own shortest float64
// rendering, so the token bytes become the cell directly.
func renderNumber(tok []byte) (string, bool) {
	digits := tok
	if len(digits) > 0 && digits[0] == '-' {
		digits = digits[1:]
	}
	plain := true
	for _, c := range digits {
		if c < '0' || c > '9' {
			plain = false
			break
		}
	}
	// Up to 15 digits every integer is exactly representable in float64 and
	// FormatFloat('f', -1) prints it back verbatim (JSON already forbids
	// leading zeros). "-0" is the one token where the round trip and the
	// verbatim bytes agree too ("-0" formats as "-0").
	if plain && len(digits) <= 15 {
		return string(tok), true
	}
	f, err := strconv.ParseFloat(string(tok), 64)
	if err != nil {
		return "", false
	}
	return strconv.FormatFloat(f, 'f', -1, 64), true
}

// slowDecodeLine is the canonical per-line decode the fast path defers to:
// the same json.Unmarshal + scalarString sequence as NDJSONSource.Next,
// appending the row to dst on success and reporting the decode error
// through bad otherwise. Returns 1 when a row was appended.
func slowDecodeLine(raw []byte, line int64, dst *dqruntime.ColumnBatch, bad func(line int64, err error)) int {
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		bad(line, err)
		return 0
	}
	for k, v := range obj {
		str, err := scalarString(v)
		if err != nil {
			bad(line, fmt.Errorf("field %q: %w", k, err))
			dst.AbortRow()
			return 0
		}
		dst.SetField(k, str)
	}
	dst.EndRow()
	return 1
}
