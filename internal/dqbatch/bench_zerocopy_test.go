// Benchmarks for the zero-copy ingest path: decode-only mmap-vs-bufio,
// end-to-end engine runs over a real file through both sources, and the
// uniqueness key handling before/after the hashed-table rewrite.
// scripts/bench.sh parses them into BENCH_batch.json speedup keys
// (mmap_vs_bufio, file_mmap_vs_bufio, uniqueness_key_allocs_reduction).
package dqbatch

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// benchNDJSONDoc serializes the benchmark dataset as NDJSON with a fixed
// field order, so both sources parse identical bytes.
func benchNDJSONDoc() []byte {
	recs := benchDataset()
	var b bytes.Buffer
	for _, r := range recs {
		fmt.Fprintf(&b,
			`{"first_name":%q,"last_name":%q,"email_address":%q,"overall_evaluation":%q,"reviewer_confidence":%q}`+"\n",
			r["first_name"], r["last_name"], r["email_address"],
			r["overall_evaluation"], r["reviewer_confidence"])
	}
	return b.Bytes()
}

// benchDecode drains NextBatch over the benchmark document — decoding
// only, no validation — so the mmap/bufio pair isolates the ingest cost.
func benchDecode(b *testing.B, mk func() BatchSource) {
	var batch dqruntime.ColumnBatch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := mk()
		rows := 0
		for {
			batch.Reset()
			n, err := src.NextBatch(&batch, 256, func(int64, error) {
				b.Fatal("malformed line in benchmark document")
			})
			rows += n
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if rows != benchRecords {
			b.Fatalf("decoded %d rows, want %d", rows, benchRecords)
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
}

// BenchmarkDecodeBufio is the scanner + encoding/json decode baseline.
func BenchmarkDecodeBufio(b *testing.B) {
	doc := string(benchNDJSONDoc())
	benchDecode(b, func() BatchSource { return NewNDJSONSource(strings.NewReader(doc)) })
}

// BenchmarkDecodeMmap slices records out of an in-memory mapping through
// the fast flat-JSON parser — compare with BenchmarkDecodeBufio for the
// zero-copy ingest speedup.
func BenchmarkDecodeMmap(b *testing.B) {
	doc := benchNDJSONDoc()
	benchDecode(b, func() BatchSource { return NewMmapNDJSONSource(doc) })
}

// benchFile runs the full engine over a real on-disk file through the
// given opener — the end-to-end number the zero-copy work moves.
func benchFile(b *testing.B, open func(path string) (Source, func() error, error)) {
	v := benchValidator(b)
	path := filepath.Join(b.TempDir(), "bench.ndjson")
	if err := os.WriteFile(path, benchNDJSONDoc(), 0o644); err != nil {
		b.Fatal(err)
	}
	opts := Options{Workers: 2, Registry: obs.NewRegistry()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, closer, err := open(path)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(context.Background(), v, src, opts)
		if cerr := closer(); cerr != nil {
			b.Fatal(cerr)
		}
		if err != nil {
			b.Fatal(err)
		}
		if res.Records != benchRecords || res.Failed != benchRecords/10 {
			b.Fatalf("result = %+v", res)
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
}

// BenchmarkBatchFileBufio reads the file through os.Open + the scanner
// source: the pre-mmap ingest path.
func BenchmarkBatchFileBufio(b *testing.B) {
	benchFile(b, func(path string) (Source, func() error, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return NewNDJSONSource(f), f.Close, nil
	})
}

// BenchmarkBatchFileMmap reads the same file through OpenFileSource — the
// mmap source plus the pipelined decode stage when the platform allows.
func BenchmarkBatchFileMmap(b *testing.B) {
	benchFile(b, func(path string) (Source, func() error, error) {
		return OpenFileSource(path, "ndjson")
	})
}

// benchKeyRecords is a high-duplication two-field key dataset: repeat
// observations dominate, which is where key materialization cost shows.
const benchKeyDistinct = 2500

func benchKeyBatch() *dqruntime.ColumnBatch {
	recs := make([]dqruntime.Record, benchRecords)
	for i := range recs {
		recs[i] = dqruntime.Record{
			"k1": "tenant-" + strconv.Itoa(i%50),
			"k2": "user-" + strconv.Itoa(i%benchKeyDistinct),
		}
	}
	batch := &dqruntime.ColumnBatch{}
	batch.Columnarize(recs)
	return batch
}

// BenchmarkBatchUniquenessKeysBaseline is the pre-rewrite key handling:
// one key string concatenated per record, counted in a map — the
// per-record allocation the hashed table eliminates.
func BenchmarkBatchUniquenessKeysBaseline(b *testing.B) {
	batch := benchKeyBatch()
	k1, k2 := batch.Col("k1"), batch.Col("k2")
	rows := batch.Rows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := make(map[string]int64, 1<<10)
		for r := 0; r < rows; r++ {
			var sb strings.Builder
			sb.WriteString(k1.Raw[r])
			sb.WriteString("\x1f")
			sb.WriteString(k2.Raw[r])
			keys[sb.String()]++
		}
		if len(keys) != benchKeyDistinct {
			b.Fatalf("distinct = %d, want %d", len(keys), benchKeyDistinct)
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
}

// BenchmarkBatchUniquenessKeysHashed drives the production uniqueness
// state over the same batch: scratch-buffer keys, 64-bit hash probing,
// strings materialized only on first insertion.
func BenchmarkBatchUniquenessKeysHashed(b *testing.B) {
	batch := benchKeyBatch()
	check := dqruntime.UniquenessCheck{Fields: []string{"k1", "k2"}, MaxExact: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := check.NewStates(1, 3)[0]
		st.ObserveBatch(1, batch)
		f := st.Finding()
		if f.Violations != benchRecords-benchKeyDistinct {
			b.Fatalf("violations = %d, want %d", f.Violations, benchRecords-benchKeyDistinct)
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
}
