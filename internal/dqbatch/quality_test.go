package dqbatch_test

import (
	"context"
	"math"
	"testing"
	"time"

	. "github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// TestRunAttributesQualitySeries checks the bridge from batch aggregation
// into the windowed series layer: one Merge per characteristic after the
// shard merge, carrying exact counts and the un-rounded score sum.
func TestRunAttributesQualitySeries(t *testing.T) {
	v := buildValidator(t)
	var recs []dqruntime.Record
	for i := 0; i < 500; i++ {
		if i%10 == 0 {
			recs = append(recs, badRecord())
		} else {
			recs = append(recs, goodRecord())
		}
	}
	quality := obs.NewSeriesSet(time.Minute, 4)
	res, err := Run(context.Background(), v, NewSliceSource(recs), Options{
		Workers: 4, ChunkSize: 16, Quality: quality, Context: "nightly",
	})
	if err != nil {
		t.Fatal(err)
	}

	rep := quality.Report("dq_score", 0)
	if len(rep.Series) != len(res.Characteristics) {
		t.Fatalf("series = %d, want one per characteristic (%d)",
			len(rep.Series), len(res.Characteristics))
	}
	byChar := map[string]*obs.SeriesSnapshot{}
	for i := range rep.Series {
		s := &rep.Series[i]
		if s.Labels["context"] != "nightly" {
			t.Errorf("context label = %q, want nightly", s.Labels["context"])
		}
		byChar[s.Labels["characteristic"]] = s
	}
	for _, cs := range res.Characteristics {
		s := byChar[string(cs.Characteristic)]
		if s == nil || s.Current == nil {
			t.Fatalf("no series window for %s", cs.Characteristic)
		}
		w := s.Current
		if w.Count != uint64(cs.Checks) || w.Failures != uint64(cs.Checks-cs.Passed) {
			t.Errorf("%s window count/failures = %d/%d, want %d/%d",
				cs.Characteristic, w.Count, w.Failures, cs.Checks, cs.Checks-cs.Passed)
		}
		if w.Min != cs.MinScore || w.Max != cs.MaxScore {
			t.Errorf("%s window min/max = %g/%g, want %g/%g",
				cs.Characteristic, w.Min, w.Max, cs.MinScore, cs.MaxScore)
		}
		// The window mean must come from the exact sum, agreeing with the
		// (rounded) reported mean to its rounding precision.
		if math.Abs(w.Mean-cs.MeanScore) > 1e-4 {
			t.Errorf("%s window mean = %g, reported mean %g", cs.Characteristic, w.Mean, cs.MeanScore)
		}
	}

	// Exact failure math on the known mix: 50 bad records fail one of the
	// two precision checks each.
	prec := byChar[string(iso25012.Precision)]
	if prec.Current.Count != 1000 || prec.Current.Failures != 50 {
		t.Errorf("precision window = %+v, want 1000 checks 50 failures", prec.Current)
	}

	// A second run in the same window accumulates rather than replaces.
	if _, err := Run(context.Background(), v, NewSliceSource(recs[:100]), Options{
		Workers: 2, Quality: quality, Context: "nightly",
	}); err != nil {
		t.Fatal(err)
	}
	rep = quality.Report("dq_score", 0)
	for i := range rep.Series {
		if rep.Series[i].Labels["characteristic"] == string(iso25012.Precision) {
			if got := rep.Series[i].Current.Count; got != 1200 {
				t.Errorf("precision checks after second run = %d, want 1200", got)
			}
		}
	}
}

// TestRunQualityContextDefaults pins the fallback context label.
func TestRunQualityContextDefaults(t *testing.T) {
	v := buildValidator(t)
	quality := obs.NewSeriesSet(time.Minute, 4)
	if _, err := Run(context.Background(), v, NewSliceSource([]dqruntime.Record{goodRecord()}), Options{
		Quality: quality,
	}); err != nil {
		t.Fatal(err)
	}
	for _, s := range quality.Report("dq_score", 0).Series {
		if s.Labels["context"] != "batch" {
			t.Errorf("default context = %q, want batch", s.Labels["context"])
		}
	}
}

// TestRunWithoutQualityUnchanged guards the uninstrumented path: no
// Quality set, no series anywhere, identical results.
func TestRunWithoutQualityUnchanged(t *testing.T) {
	v := buildValidator(t)
	recs := []dqruntime.Record{goodRecord(), badRecord()}
	res, err := Run(context.Background(), v, NewSliceSource(recs), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.Passed != 1 || res.Failed != 1 {
		t.Fatalf("results changed: %+v", res)
	}
}
