// Benchmarks for the batch engine: a single-threaded ValidateInto loop as
// the honest baseline, then the worker pool at 2/4/8 workers over the
// same dataset. Each reports records/sec plus stride-sampled per-record
// latency percentiles; scripts/bench.sh parses them into BENCH_batch.json
// so the throughput trajectory has data points.
package dqbatch

import (
	"context"
	"sort"
	"strconv"
	"testing"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/transform"
)

// benchRecords is the per-iteration dataset size: big enough that chunk
// handoff amortizes to noise, small enough for quick -benchtime runs.
const benchRecords = 50000

func benchValidator(b *testing.B) *dqruntime.Validator {
	b.Helper()
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		b.Fatal(err)
	}
	enf, err := dqruntime.BuildFromDQSR(dqsr)
	if err != nil {
		b.Fatal(err)
	}
	return enf.Validator()
}

// benchDataset mixes ~10% failing records into the case-study shape so
// the failure path (detail allocation, exemplar capture) is exercised.
func benchDataset() []dqruntime.Record {
	recs := make([]dqruntime.Record, benchRecords)
	for i := range recs {
		eval := "2"
		if i%10 == 0 {
			eval = "9"
		}
		recs[i] = dqruntime.Record{
			"first_name":          "Grace",
			"last_name":           "Hopper",
			"email_address":       "grace@navy.mil",
			"overall_evaluation":  eval,
			"reviewer_confidence": "3",
		}
	}
	return recs
}

// BenchmarkBatchSequential is the baseline: one goroutine, one reused
// Report, no engine machinery.
func BenchmarkBatchSequential(b *testing.B) {
	v := benchValidator(b)
	recs := benchDataset()
	rep := &dqruntime.Report{}
	var samples []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, r := range recs {
			if j%64 == 0 {
				t0 := time.Now()
				v.ValidateInto(r, rep)
				samples = append(samples, time.Since(t0).Seconds())
			} else {
				v.ValidateInto(r, rep)
			}
			if rep.Passed() && j%10 == 0 {
				b.Fatal("failing record passed")
			}
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
	sort.Float64s(samples)
	b.ReportMetric(percentile(samples, 50)*1e9, "p50_ns")
	b.ReportMetric(percentile(samples, 99)*1e9, "p99_ns")
}

// benchOCLValidator builds a validator whose checks are compiled OCL
// programs (one per case-study field constraint).
func benchOCLValidator(b *testing.B) *dqruntime.Validator {
	b.Helper()
	exprs := []string{
		"not first_name.oclIsUndefined() and not last_name.oclIsUndefined()",
		"not email_address.oclIsUndefined()",
		"overall_evaluation.oclIsUndefined() or (-3 <= overall_evaluation and overall_evaluation <= 3)",
		"reviewer_confidence.oclIsUndefined() or (0 <= reviewer_confidence and reviewer_confidence <= 5)",
	}
	v := dqruntime.NewValidator("compiled bench")
	for _, e := range exprs {
		chk, err := dqruntime.NewOCLCheck(iso25012.Consistency, e)
		if err != nil {
			b.Fatal(err)
		}
		v.Add(chk)
	}
	return v
}

// benchVectorized drives an engine-less single-goroutine ValidateBatch
// loop over pre-columnarized chunk views — the columnar mirror of
// BenchmarkBatchSequential's pre-decoded map loop.
func benchVectorized(b *testing.B, v *dqruntime.Validator) {
	batch := &dqruntime.ColumnBatch{}
	batch.Columnarize(benchDataset())
	batch.WarmOCLValues()
	view := &dqruntime.ColumnBatch{}
	rep := &dqruntime.BatchReport{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < benchRecords; lo += 256 {
			hi := min(lo+256, benchRecords)
			batch.SliceInto(view, lo, hi)
			v.ValidateBatch(view, rep)
			for r := 0; r < rep.Rows(); r++ {
				if rep.RowPassed(r) == ((lo+r)%10 == 0) {
					b.Fatalf("record %d: passed = %v", lo+r, rep.RowPassed(r))
				}
			}
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
}

// BenchmarkBatchCompiled runs the dataset through the compiled-OCL
// validator on the vectorized path: expressions compile once, then
// Program.EvalBoolBatch sweeps each column batch with a single reused
// frame and per-batch boxed columns.
func BenchmarkBatchCompiled(b *testing.B) {
	benchVectorized(b, benchOCLValidator(b))
}

// BenchmarkBatchCompiledRows is the row-path baseline for
// BenchmarkBatchCompiled: the same compiled-OCL validator fed one record
// map at a time.
func BenchmarkBatchCompiledRows(b *testing.B) {
	v := benchOCLValidator(b)
	recs := benchDataset()
	rep := &dqruntime.Report{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, r := range recs {
			v.ValidateInto(r, rep)
			if rep.Passed() == (j%10 == 0) {
				b.Fatalf("record %d: passed = %v", j, rep.Passed())
			}
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
}

// BenchmarkBatchVectorized is the stock case-study validator on the
// engine-less vectorized path — compare with BenchmarkBatchSequential for
// the columnar-vs-row speedup.
func BenchmarkBatchVectorized(b *testing.B) {
	benchVectorized(b, benchValidator(b))
}

// BenchmarkBatchVectorized8 runs the full engine on the vectorized path:
// a pre-columnarized ColumnSource streaming zero-copy chunk views through
// 8 workers, each scoring whole columns per chunk.
func BenchmarkBatchVectorized8(b *testing.B) {
	v := benchValidator(b)
	src := NewColumnSource(benchDataset())
	opts := Options{Workers: 8, Registry: obs.NewRegistry()}
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Rewind()
		res, err := Run(context.Background(), v, src, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Vectorized {
			b.Fatal("vectorized path did not engage")
		}
		if res.Records != benchRecords || res.Failed != benchRecords/10 {
			b.Fatalf("result = %+v", res)
		}
		last = res
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
	b.ReportMetric(last.LatencyP50*1e9, "p50_ns")
	b.ReportMetric(last.LatencyP99*1e9, "p99_ns")
}

func BenchmarkBatchParallel2(b *testing.B) { benchParallel(b, 2) }
func BenchmarkBatchParallel4(b *testing.B) { benchParallel(b, 4) }
func BenchmarkBatchParallel8(b *testing.B) { benchParallel(b, 8) }

// BenchmarkBatchAttributed8 is BenchmarkBatchParallel8 with quality
// attribution switched on: the merged per-characteristic stats also land
// in a windowed SeriesSet after the shard merge. scripts/bench.sh compares
// the two into BENCH_obs.json — attribution happens once per
// characteristic per run, not per record, so the overhead should be noise.
func BenchmarkBatchAttributed8(b *testing.B) {
	quality := obs.NewSeriesSet(time.Minute, 60)
	benchParallelOpts(b, Options{Workers: 8, Quality: quality, Context: "bench"})
}

func benchParallel(b *testing.B, workers int) {
	benchParallelOpts(b, Options{Workers: workers})
}

func benchParallelOpts(b *testing.B, opts Options) {
	v := benchValidator(b)
	recs := benchDataset()
	opts.Registry = obs.NewRegistry()
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), v, NewSliceSource(recs), opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Records != benchRecords || res.Failed != benchRecords/10 {
			b.Fatalf("result = %+v", res)
		}
		last = res
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
	b.ReportMetric(last.LatencyP50*1e9, "p50_ns")
	b.ReportMetric(last.LatencyP99*1e9, "p99_ns")
}

// benchUniquenessDataset is benchDataset plus an id column with ~10%
// duplicate keys, so the uniqueness state's hot insert path sees both the
// new-key and the repeat-key branch.
func benchUniquenessDataset() []dqruntime.Record {
	recs := benchDataset()
	distinct := benchRecords * 9 / 10
	for i, r := range recs {
		r["id"] = "id-" + strconv.Itoa(i%distinct)
	}
	return recs
}

// benchUniqueness runs the full engine with a uniqueness cross-record
// check riding along; maxExact -1 keeps the exact sets, a small positive
// cap forces the Bloom mode from the first chunks.
func benchUniqueness(b *testing.B, workers, maxExact int) {
	v := benchValidator(b)
	recs := benchUniquenessDataset()
	opts := Options{
		Workers:  workers,
		Registry: obs.NewRegistry(),
		CrossRecord: []dqruntime.StatefulCheck{
			dqruntime.UniquenessCheck{Fields: []string{"id"}, MaxExact: maxExact, BloomBits: 1 << 20},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), v, NewSliceSource(recs), opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.CrossRecords) != 1 || res.CrossRecords[0].Violations == 0 {
			b.Fatalf("cross findings = %+v", res.CrossRecords)
		}
	}
	b.StopTimer()
	reportThroughput(b, int64(b.N)*benchRecords)
}

func BenchmarkBatchUniqueness1(b *testing.B)      { benchUniqueness(b, 1, -1) }
func BenchmarkBatchUniqueness8(b *testing.B)      { benchUniqueness(b, 8, -1) }
func BenchmarkBatchUniquenessBloom1(b *testing.B) { benchUniqueness(b, 1, 1024) }
func BenchmarkBatchUniquenessBloom8(b *testing.B) { benchUniqueness(b, 8, 1024) }

// reportThroughput attaches records/sec over the timed section.
func reportThroughput(b *testing.B, records int64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(records)/s, "records/sec")
	}
}
