package dqbatch

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
)

// BatchSource is a Source that can also deliver records in columnar form:
// NextBatch decodes up to max records directly into dst (which the engine
// Resets beforehand), classifying every cell once instead of building one
// map per record. Malformed records are reported through bad (with their
// 1-based input line) and skipped, mirroring the row path's *RecordError
// handling. NextBatch returns the number of rows decoded; io.EOF (possibly
// alongside a final partial count) ends the stream, and any other error
// aborts the batch. The engine prefers this interface whenever both the
// source and the validator support columnar evaluation.
type BatchSource interface {
	Source
	NextBatch(dst *dqruntime.ColumnBatch, max int, bad func(line int64, err error)) (int, error)
}

// NextBatch decodes up to max NDJSON records into dst. A line that fails
// JSON decoding, or carries a non-scalar field value, is reported through
// bad and contributes no row (partially appended cells are rolled back).
func (s *NDJSONSource) NextBatch(dst *dqruntime.ColumnBatch, max int, bad func(line int64, err error)) (int, error) {
	n := 0
	for n < max && s.sc.Scan() {
		s.line++
		raw := s.sc.Bytes()
		s.offset += int64(len(raw)) + 1
		if len(trimSpaceBytes(raw)) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			bad(s.line, err)
			continue
		}
		ok := true
		for k, v := range obj {
			str, err := scalarString(v)
			if err != nil {
				bad(s.line, fmt.Errorf("field %q: %w", k, err))
				dst.AbortRow()
				ok = false
				break
			}
			dst.SetField(k, str)
		}
		if !ok {
			continue
		}
		dst.EndRow()
		n++
	}
	if n > 0 {
		return n, nil
	}
	if err := s.sc.Err(); err != nil {
		return 0, fmt.Errorf("dqbatch: reading line %d: %w", s.line+1, err)
	}
	return 0, io.EOF
}

// NextBatch decodes up to max CSV data rows into dst. Rows with the wrong
// field count and unparsable rows are reported through bad and skipped,
// exactly as Next reports them.
func (s *CSVSource) NextBatch(dst *dqruntime.ColumnBatch, max int, bad func(line int64, err error)) (int, error) {
	n := 0
	for n < max {
		row, err := s.r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if pe, ok := err.(*csv.ParseError); ok {
				bad(int64(pe.StartLine), err)
				continue
			}
			return n, fmt.Errorf("dqbatch: reading CSV after line %d: %w", s.line, err)
		}
		line, _ := s.r.FieldPos(0)
		s.line = int64(line)
		if s.header == nil {
			s.header = append([]string(nil), row...)
			s.dupHeader = hasDuplicates(s.header)
			continue
		}
		if len(row) != len(s.header) {
			bad(s.line, fmt.Errorf("row has %d fields, header has %d", len(row), len(s.header)))
			continue
		}
		if s.dupHeader {
			// Duplicate header names: the row path's map semantics keep the
			// last value per name, so round-trip through a scratch map.
			if s.scratch == nil {
				s.scratch = make(dqruntime.Record, len(s.header))
			}
			clear(s.scratch)
			for i, v := range row {
				s.scratch[s.header[i]] = v
			}
			for k, v := range s.scratch {
				dst.SetField(k, v)
			}
		} else {
			for i, v := range row {
				dst.SetField(s.header[i], v)
			}
		}
		dst.EndRow()
		n++
	}
	if n > 0 {
		return n, nil
	}
	return 0, io.EOF
}

func hasDuplicates(names []string) bool {
	seen := make(map[string]struct{}, len(names))
	for _, n := range names {
		if _, ok := seen[n]; ok {
			return true
		}
		seen[n] = struct{}{}
	}
	return false
}

// ColumnSource serves an in-memory record set that was columnarized (and
// its OCL values boxed) once, up front. NextBatch hands out zero-copy
// chunk views, so a benchmark or repeated run pays decoding exactly once —
// the columnar analogue of SliceSource. Next still serves the original
// records for the row path.
type ColumnSource struct {
	recs  []dqruntime.Record
	batch dqruntime.ColumnBatch
	next  int
}

// NewColumnSource columnarizes records eagerly; the slice is read, not
// copied, and must not be mutated while any batch built on it runs.
func NewColumnSource(records []dqruntime.Record) *ColumnSource {
	s := &ColumnSource{recs: records}
	s.batch.Columnarize(records)
	s.batch.WarmOCLValues()
	return s
}

// Rewind restarts the stream from the first record, keeping the columnar
// form, so one source can feed repeated runs.
func (s *ColumnSource) Rewind() { s.next = 0 }

// Next returns the next record as-is (row-path fallback).
func (s *ColumnSource) Next(dqruntime.Record) (dqruntime.Record, error) {
	if s.next >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.next]
	s.next++
	return r, nil
}

// NextBatch slices the next chunk view out of the pre-built batch.
func (s *ColumnSource) NextBatch(dst *dqruntime.ColumnBatch, max int, _ func(line int64, err error)) (int, error) {
	rows := s.batch.Rows()
	if s.next >= rows {
		return 0, io.EOF
	}
	hi := s.next + max
	if hi > rows {
		hi = rows
	}
	s.batch.SliceInto(dst, s.next, hi)
	n := hi - s.next
	s.next = hi
	return n, nil
}
