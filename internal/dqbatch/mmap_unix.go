//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package dqbatch

import (
	"os"
	"syscall"
)

// mmapAvailable reports whether this platform can memory-map input files;
// OpenFileSource consults it before preferring the zero-copy source.
const mmapAvailable = true

// mmapFile maps f read-only into memory and returns the mapping plus the
// unmap function. The caller owns the mapping's lifetime: every string
// handed out of it is copied before the unmap (Go string conversions
// copy), so unmapping after the batch drains is safe. Empty files cannot
// be mapped (EINVAL) and must take the bufio fallback; the caller checks
// the size first.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	// Advise the kernel the scan is sequential so readahead stays ahead of
	// the newline scanner; failure is harmless, the mapping still works.
	_ = madviseSequential(data)
	return data, func() error { return syscall.Munmap(data) }, nil
}

// madviseSequential hints sequential access on platforms that support it.
func madviseSequential(data []byte) error {
	return syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
}
