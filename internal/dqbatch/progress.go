package dqbatch

import (
	"sync/atomic"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
)

// Offsetter is a source that knows its record-aligned input byte offset.
// NDJSONSource and CSVSource implement it; the offset advances only on
// whole consumed records, which makes it a valid checkpoint position.
type Offsetter interface {
	ByteOffset() int64
}

// Progress publishes a running batch's input-side position for concurrent
// readers: the records delivered to the engine and, when the source is an
// Offsetter, the byte offset those records end at. The engine's reader
// goroutine writes through a CountSource wrapper; any goroutine (a job
// server's status endpoint, a checkpoint ticker) may read at any time.
type Progress struct {
	records atomic.Int64
	bytes   atomic.Int64
}

// Records returns how many records the source has delivered so far
// (decoded records on the row path, decoded rows on the columnar path;
// malformed skipped records are not counted).
func (p *Progress) Records() int64 { return p.records.Load() }

// Bytes returns the input byte offset the delivered records end at; 0
// when the wrapped source is not an Offsetter.
func (p *Progress) Bytes() int64 { return p.bytes.Load() }

// CountSource wraps src so every delivered record (and the source's byte
// offset, when available) is published through p. The wrapper preserves
// the source's columnar capability: wrapping a BatchSource yields a
// BatchSource, so the engine's vectorized path stays eligible.
func CountSource(src Source, p *Progress) Source {
	cs := &countingSource{src: src, p: p}
	if off, ok := src.(Offsetter); ok {
		cs.off = off
	}
	if ssrc, ok := src.(SpanSource); ok {
		return &countingSpanSource{
			countingBatchSource: countingBatchSource{countingSource: cs, bsrc: ssrc},
			ssrc:                ssrc,
		}
	}
	if bsrc, ok := src.(BatchSource); ok {
		return &countingBatchSource{countingSource: cs, bsrc: bsrc}
	}
	return cs
}

type countingSource struct {
	src Source
	off Offsetter
	p   *Progress
}

func (c *countingSource) Next(rec dqruntime.Record) (dqruntime.Record, error) {
	got, err := c.src.Next(rec)
	if err == nil {
		c.p.records.Add(1)
	}
	// Publish the offset even on malformed records: the source consumed
	// them, so the checkpoint may move past them.
	if c.off != nil {
		c.p.bytes.Store(c.off.ByteOffset())
	}
	return got, err
}

type countingBatchSource struct {
	*countingSource
	bsrc BatchSource
}

func (c *countingBatchSource) NextBatch(dst *dqruntime.ColumnBatch, max int, bad func(line int64, err error)) (int, error) {
	n, err := c.bsrc.NextBatch(dst, max, bad)
	if n > 0 {
		c.p.records.Add(int64(n))
	}
	if c.off != nil {
		c.p.bytes.Store(c.off.ByteOffset())
	}
	return n, err
}

// countingSpanSource keeps a SpanSource's pipelined eligibility: the byte
// offset is published from the scanner side (NextSpan advances the cursor,
// so progress runs slightly ahead of decoded records), while record counts
// are added from the concurrent decode stage — Progress's counters are
// atomic, so any goroutine may write.
type countingSpanSource struct {
	countingBatchSource
	ssrc SpanSource
}

func (c *countingSpanSource) NextSpan(maxLines int) (Span, error) {
	sp, err := c.ssrc.NextSpan(maxLines)
	if c.off != nil {
		c.p.bytes.Store(c.off.ByteOffset())
	}
	return sp, err
}

func (c *countingSpanSource) DecodeSpan(sp Span, dst *dqruntime.ColumnBatch, bad func(line int64, err error)) int {
	n := c.ssrc.DecodeSpan(sp, dst, bad)
	if n > 0 {
		c.p.records.Add(int64(n))
	}
	return n
}
