// Package dqbatch validates whole datasets against a DQSR-derived
// validator: where internal/dqruntime checks one web-form record at a
// time, dqbatch streams millions of records from NDJSON or CSV sources
// through a pool of workers and merges per-characteristic statistics
// through sharded aggregators, so neither the input side nor the reduce
// side becomes the bottleneck. It is the dataset-scale counterpart of the
// paper's per-form enforcement loop.
package dqbatch

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
)

// Source yields records one at a time. The engine offers a recycled map
// rec; streaming decoders clear and fill it (overwriting every prior key)
// and return it, while in-memory sources may ignore it and return their
// own record, skipping the copy — the engine only reads returned records.
// Next returns io.EOF at end of input. A *RecordError marks one malformed
// record the engine counts and skips; any other error aborts the batch.
type Source interface {
	Next(rec dqruntime.Record) (dqruntime.Record, error)
}

// RecordError is a recoverable per-record input problem (a malformed
// NDJSON line, a CSV row with the wrong field count). The engine counts
// it under outcome="error" and moves on.
type RecordError struct {
	// Line is the 1-based input file line where the offending record
	// starts (CSV records with quoted multi-line fields span several file
	// lines; the count is file lines, not records).
	Line int64
	// Err is the underlying decode error.
	Err error
}

// Error renders the line and cause.
func (e *RecordError) Error() string { return fmt.Sprintf("record %d: %v", e.Line, e.Err) }

// Unwrap exposes the cause.
func (e *RecordError) Unwrap() error { return e.Err }

// maxLineBytes bounds one NDJSON line; lines beyond it are a hard error
// (bounded memory is part of the contract).
const maxLineBytes = 1 << 20

// NDJSONSource streams newline-delimited JSON objects. Values may be
// strings, numbers, booleans or null; scalars are rendered to the string
// form a web form would deliver (null and nested values are rejected —
// records are flat field→string maps by construction). Memory use is one
// line plus the scanner buffer, regardless of input size.
type NDJSONSource struct {
	sc   *bufio.Scanner
	line int64
	// offset counts input bytes consumed through the end of the last
	// scanned line, assuming LF terminators (see ByteOffset).
	offset int64
}

// NewNDJSONSource wraps a reader of NDJSON records.
func NewNDJSONSource(r io.Reader) *NDJSONSource {
	return NewNDJSONSourceAt(r, 0, 0)
}

// NewNDJSONSourceAt wraps a reader positioned mid-file: the first line read
// is numbered startLine+1 and ByteOffset starts at startOffset, so decode
// errors and checkpoints from a tail read carry true whole-file positions.
// The caller seeks r; the source only continues the numbering.
func NewNDJSONSourceAt(r io.Reader, startLine, startOffset int64) *NDJSONSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	return &NDJSONSource{sc: sc, line: startLine, offset: startOffset}
}

// ByteOffset returns the input bytes consumed through the end of the most
// recently scanned line. Offsets assume LF line terminators (the scanner
// strips CR, so CRLF input under-counts one byte per line); they exist for
// progress checkpoints, where a record-aligned resume point matters more
// than terminator-exact arithmetic. Not safe for concurrent use with Next;
// a Progress wrapper (CountSource) publishes it across goroutines.
func (s *NDJSONSource) ByteOffset() int64 { return s.offset }

// Next decodes the next non-blank line into rec.
func (s *NDJSONSource) Next(rec dqruntime.Record) (dqruntime.Record, error) {
	for s.sc.Scan() {
		s.line++
		raw := s.sc.Bytes()
		s.offset += int64(len(raw)) + 1
		if len(trimSpaceBytes(raw)) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			return nil, &RecordError{Line: s.line, Err: err}
		}
		clear(rec)
		for k, v := range obj {
			str, err := scalarString(v)
			if err != nil {
				return nil, &RecordError{Line: s.line, Err: fmt.Errorf("field %q: %w", k, err)}
			}
			rec[k] = str
		}
		return rec, nil
	}
	if err := s.sc.Err(); err != nil {
		return nil, fmt.Errorf("dqbatch: reading line %d: %w", s.line+1, err)
	}
	return nil, io.EOF
}

// scalarString renders one JSON value as the string a form field would
// carry.
func scalarString(v any) (string, error) {
	switch t := v.(type) {
	case string:
		return t, nil
	case float64:
		return strconv.FormatFloat(t, 'f', -1, 64), nil
	case bool:
		return strconv.FormatBool(t), nil
	default:
		return "", fmt.Errorf("unsupported value type %T", v)
	}
}

// trimSpaceBytes trims ASCII whitespace without allocating.
func trimSpaceBytes(b []byte) []byte {
	for len(b) > 0 && asciiSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && asciiSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func asciiSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// CSVSource streams CSV rows, taking field names from the header row.
// It reuses the csv.Reader's record storage, so memory stays bounded by
// one row.
type CSVSource struct {
	r      *csv.Reader
	header []string
	// line is the 1-based file line where the most recent record starts —
	// a true file line from csv.Reader.FieldPos, not a record count, so
	// quoted multi-line fields don't skew later diagnostics.
	line int64
	// dupHeader and scratch support NextBatch when header names repeat
	// (map semantics: last value per name wins).
	dupHeader bool
	scratch   dqruntime.Record
}

// NewCSVSource wraps a reader of CSV records whose first row names the
// fields.
func NewCSVSource(r io.Reader) *CSVSource {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1 // field-count mismatches are per-record errors
	return &CSVSource{r: cr}
}

// ByteOffset returns the input bytes consumed through the most recently
// read record (csv.Reader.InputOffset, so quoting and CRLF are exact). Not
// safe for concurrent use with Next; a Progress wrapper (CountSource)
// publishes it across goroutines.
func (s *CSVSource) ByteOffset() int64 { return s.r.InputOffset() }

// Next decodes the next data row into rec.
func (s *CSVSource) Next(rec dqruntime.Record) (dqruntime.Record, error) {
	for {
		row, err := s.r.Read()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			if pe, ok := err.(*csv.ParseError); ok {
				return nil, &RecordError{Line: int64(pe.StartLine), Err: err}
			}
			return nil, fmt.Errorf("dqbatch: reading CSV after line %d: %w", s.line, err)
		}
		line, _ := s.r.FieldPos(0)
		s.line = int64(line)
		if s.header == nil {
			s.header = append([]string(nil), row...)
			s.dupHeader = hasDuplicates(s.header)
			continue
		}
		if len(row) != len(s.header) {
			return nil, &RecordError{Line: s.line,
				Err: fmt.Errorf("row has %d fields, header has %d", len(row), len(s.header))}
		}
		clear(rec)
		for i, v := range row {
			rec[s.header[i]] = v
		}
		return rec, nil
	}
}

// SliceSource yields an in-memory record slice — the zero-I/O source the
// benchmarks and tests drive the engine with. It returns its records
// directly (no copy), so callers must not mutate them while the batch
// runs.
type SliceSource struct {
	records []dqruntime.Record
	next    int
}

// NewSliceSource wraps the given records; the slice is read, not copied.
func NewSliceSource(records []dqruntime.Record) *SliceSource {
	return &SliceSource{records: records}
}

// Next returns the next record as-is.
func (s *SliceSource) Next(dqruntime.Record) (dqruntime.Record, error) {
	if s.next >= len(s.records) {
		return nil, io.EOF
	}
	r := s.records[s.next]
	s.next++
	return r, nil
}
