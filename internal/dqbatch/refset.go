package dqbatch

import (
	"context"
	"io"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
)

// BuildKeySet streams src once and collects its distinct keys over the
// given fields — the first pass of the two-pass referential mode. The
// returned set plugs directly into dqruntime.ReferentialCheck.Ref for the
// validation pass. Malformed records are skipped (a reference dataset's
// decode errors surface when that dataset is itself validated); any other
// source error aborts. The set is exact and unbounded: a reference
// dataset is assumed to fit in memory, unlike the validated stream.
func BuildKeySet(ctx context.Context, src Source, fields []string) (map[string]struct{}, error) {
	set := make(map[string]struct{})
	rec := make(dqruntime.Record, 8)
	for {
		if err := ctx.Err(); err != nil {
			return set, err
		}
		got, err := src.Next(rec)
		if err == io.EOF {
			return set, nil
		}
		if err != nil {
			if _, ok := err.(*RecordError); ok {
				continue
			}
			return set, err
		}
		set[dqruntime.KeyOf(fields, got)] = struct{}{}
	}
}
