package dqbatch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
)

// MmapNDJSONSource streams newline-delimited JSON straight out of a
// read-only byte slice — normally a memory-mapped file. Records are sliced
// out of the mapping with bytes.IndexByte newline scans, so no line buffer
// is filled and no chunk bytes are copied; only the decoded cell strings
// are materialized. It is a drop-in for NDJSONSource: same record
// semantics, same error texts, same maxLineBytes bound (the golden parity
// suite pins report-level byte equality between the two). It additionally
// implements SpanSource, letting the pipelined engine decode disjoint
// regions of the mapping concurrently.
type MmapNDJSONSource struct {
	data []byte
	pos  int
	// line is the 1-based number of the most recently consumed line.
	line int64
	// names is NextBatch's duplicate-key scratch for the fast decoder.
	names [][]byte
}

// NewMmapNDJSONSource wraps an in-memory NDJSON byte slice. The slice is
// read, not copied; the caller keeps it alive (and mapped) until the
// source is drained.
func NewMmapNDJSONSource(data []byte) *MmapNDJSONSource {
	return &MmapNDJSONSource{data: data}
}

// ByteOffset returns the bytes consumed through the end of the most
// recently consumed line — here an exact position in the backing slice.
// Not safe for concurrent use with Next/NextBatch; a Progress wrapper
// (CountSource) publishes it across goroutines.
func (s *MmapNDJSONSource) ByteOffset() int64 { return int64(s.pos) }

// scanLine consumes the next line (CR-stripped, like bufio.ScanLines) from
// the mapping. ok is false at end of input. A line longer than
// maxLineBytes is a hard error and is not consumed, mirroring
// bufio.Scanner's ErrTooLong at the same line number.
func (s *MmapNDJSONSource) scanLine() (raw []byte, ok bool, err error) {
	if s.pos >= len(s.data) {
		return nil, false, nil
	}
	rest := s.data[s.pos:]
	end := bytes.IndexByte(rest, '\n')
	adv := end + 1
	if end < 0 {
		end = len(rest)
		adv = end
	}
	if end > maxLineBytes {
		return nil, false, fmt.Errorf("dqbatch: reading line %d: %w", s.line+1, bufio.ErrTooLong)
	}
	raw = rest[:end]
	if len(raw) > 0 && raw[len(raw)-1] == '\r' {
		raw = raw[:len(raw)-1]
	}
	s.pos += adv
	s.line++
	return raw, true, nil
}

// Next decodes the next non-blank line into rec, exactly as
// NDJSONSource.Next does (same decode, same *RecordError shape).
func (s *MmapNDJSONSource) Next(rec dqruntime.Record) (dqruntime.Record, error) {
	for {
		raw, ok, err := s.scanLine()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, io.EOF
		}
		if len(trimSpaceBytes(raw)) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			return nil, &RecordError{Line: s.line, Err: err}
		}
		clear(rec)
		for k, v := range obj {
			str, err := scalarString(v)
			if err != nil {
				return nil, &RecordError{Line: s.line, Err: fmt.Errorf("field %q: %w", k, err)}
			}
			rec[k] = str
		}
		return rec, nil
	}
}

// NextBatch decodes up to max records into dst through the fast flat-JSON
// parser (bailing to the canonical slow path per line when needed). Chunk
// shapes match the bufio source exactly — max good rows per call — so the
// two sources produce identical chunk streams.
func (s *MmapNDJSONSource) NextBatch(dst *dqruntime.ColumnBatch, max int, bad func(line int64, err error)) (int, error) {
	n := 0
	for n < max {
		raw, ok, err := s.scanLine()
		if err != nil {
			if n > 0 {
				// The oversized line was not consumed; surface the error on
				// the next call, as the scanner-backed source does.
				return n, nil
			}
			return 0, err
		}
		if !ok {
			break
		}
		if len(trimSpaceBytes(raw)) == 0 {
			continue
		}
		if fastDecodeLine(raw, dst, &s.names) {
			n++
			continue
		}
		n += slowDecodeLine(raw, s.line, dst, bad)
	}
	if n > 0 {
		return n, nil
	}
	return 0, io.EOF
}

// Span is a run of whole input lines sliced out of a source's backing
// store, ready for concurrent decoding. Data covers the lines including
// their newline terminators (the final line of the input may lack one);
// FirstLine is the 1-based input line number of the first line in Data.
type Span struct {
	Data      []byte
	FirstLine int64
}

// SpanSource is a BatchSource whose input can be cut into raw spans
// cheaply and decoded out of order: NextSpan is scanner-side (sequential,
// called by one goroutine), while DecodeSpan touches no source state and
// may run on any number of goroutines at once. The pipelined engine uses
// the pair to overlap decoding with evaluation.
type SpanSource interface {
	BatchSource
	// NextSpan consumes up to maxLines whole lines and returns them as one
	// span; io.EOF ends the stream and any other error aborts the batch.
	NextSpan(maxLines int) (Span, error)
	// DecodeSpan decodes one span into dst, reporting malformed lines
	// through bad in line order, and returns the rows appended.
	DecodeSpan(sp Span, dst *dqruntime.ColumnBatch, bad func(line int64, err error)) int
}

// NextSpan cuts up to maxLines lines out of the mapping — pure newline
// arithmetic, no decoding, so the scanner stage stays far ahead of the
// decode workers.
func (s *MmapNDJSONSource) NextSpan(maxLines int) (Span, error) {
	if s.pos >= len(s.data) {
		return Span{}, io.EOF
	}
	start := s.pos
	first := s.line + 1
	for lines := 0; lines < maxLines && s.pos < len(s.data); lines++ {
		rest := s.data[s.pos:]
		end := bytes.IndexByte(rest, '\n')
		adv := end + 1
		if end < 0 {
			end = len(rest)
			adv = end
		}
		if end > maxLineBytes {
			if s.pos > start {
				// Emit the lines gathered so far; the next call reports the
				// oversized line at its true number.
				break
			}
			return Span{}, fmt.Errorf("dqbatch: reading line %d: %w", s.line+1, bufio.ErrTooLong)
		}
		s.pos += adv
		s.line++
	}
	return Span{Data: s.data[start:s.pos], FirstLine: first}, nil
}

// DecodeSpan decodes one span into dst. Safe for concurrent use across
// spans: it reads only the span's bytes, never the source's cursor.
func (s *MmapNDJSONSource) DecodeSpan(sp Span, dst *dqruntime.ColumnBatch, bad func(line int64, err error)) int {
	return decodeNDJSONSpan(sp, dst, bad)
}

// decodeNDJSONSpan decodes every line of sp into dst — fast path first,
// canonical slow path on bail — reporting malformed lines through bad in
// line order. Oversized lines cannot appear here: NextSpan never puts one
// in a span.
func decodeNDJSONSpan(sp Span, dst *dqruntime.ColumnBatch, bad func(line int64, err error)) int {
	data := sp.Data
	line := sp.FirstLine - 1
	n := 0
	var names [][]byte
	for len(data) > 0 {
		var raw []byte
		if j := bytes.IndexByte(data, '\n'); j >= 0 {
			raw, data = data[:j], data[j+1:]
		} else {
			raw, data = data, nil
		}
		line++
		if len(raw) > 0 && raw[len(raw)-1] == '\r' {
			raw = raw[:len(raw)-1]
		}
		if len(trimSpaceBytes(raw)) == 0 {
			continue
		}
		if fastDecodeLine(raw, dst, &names) {
			n++
			continue
		}
		n += slowDecodeLine(raw, line, dst, bad)
	}
	return n
}

// OpenFileSource opens path and returns the fastest Source this platform
// offers for it, plus a closer releasing the file and any mapping. Regular
// non-empty files are memory-mapped when the platform allows: NDJSON gets
// the zero-copy MmapNDJSONSource, CSV a csv.Reader over the mapping
// (quoted newlines rule out raw line splitting, but the read side still
// skips the file-read copies). Pipes, devices, empty files and platforms
// without mmap fall back to the portable bufio sources — behaviour, not
// just output, is identical either way. format is "csv" or "ndjson"; ""
// selects CSV for a .csv extension and NDJSON otherwise, matching the CLI.
func OpenFileSource(path, format string) (Source, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	if format == "" {
		if strings.EqualFold(filepath.Ext(path), ".csv") {
			format = "csv"
		} else {
			format = "ndjson"
		}
	}
	src, closer, err := fileSource(f, format)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return src, closer, nil
}

// fileSource builds the best source for an open file: mmap when f is a
// regular, non-empty, address-space-sized file on an mmap-capable
// platform; bufio otherwise. The returned closer owns f.
func fileSource(f *os.File, format string) (Source, func() error, error) {
	if mmapAvailable {
		if st, err := f.Stat(); err == nil &&
			st.Mode().IsRegular() && st.Size() > 0 && int64(int(st.Size())) == st.Size() {
			if data, unmap, err := mmapFile(f, st.Size()); err == nil {
				closer := func() error {
					err := unmap()
					if cerr := f.Close(); err == nil {
						err = cerr
					}
					return err
				}
				if format == "csv" {
					return NewCSVSource(bytes.NewReader(data)), closer, nil
				}
				return NewMmapNDJSONSource(data), closer, nil
			}
			// Mapping failed (exotic filesystem, address space): the bufio
			// path reads the same bytes.
		}
	}
	if format == "csv" {
		return NewCSVSource(f), f.Close, nil
	}
	return NewNDJSONSource(f), f.Close, nil
}
