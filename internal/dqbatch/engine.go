package dqbatch

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// Validating is the per-record validation dependency: anything with the
// allocation-cheap ValidateInto path. *dqruntime.Validator implements it;
// an Enforcer's Validator() is the usual way to obtain one. The engine
// calls it concurrently from every worker, so implementations must be
// safe for concurrent reads (the stock checks are value types).
type Validating interface {
	ValidateInto(r dqruntime.Record, rep *dqruntime.Report)
}

// BatchValidating is the columnar validation dependency: one call scores a
// whole ColumnBatch. *dqruntime.Validator implements it. When both the
// source (BatchSource) and the validator support it, Run takes the
// vectorized path unless Options.ForceRows says otherwise; the verdicts
// are identical to the row path either way.
type BatchValidating interface {
	ValidateBatch(b *dqruntime.ColumnBatch, rep *dqruntime.BatchReport)
}

// Options tunes a batch run. The zero value is ready to use.
type Options struct {
	// Workers is the validation goroutine count; 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is how many records travel per work item; chunking
	// amortizes channel handoff to nothing per record. 0 means 256.
	ChunkSize int
	// MaxExemplars caps retained failures per characteristic; 0 means 3,
	// negative means none.
	MaxExemplars int
	// SampleEvery is the per-record latency sampling stride (every n-th
	// record per worker is timed); 0 means 64, negative disables sampling.
	// On the vectorized path one amortized sample is taken per chunk
	// instead (batch duration / rows); negative disables that too.
	SampleEvery int
	// ForceRows disables the vectorized path even when the source and
	// validator both support it — the escape hatch for differential
	// debugging, and how the parity tests drive both paths.
	ForceRows bool
	// DecodeWorkers caps the decode stage on the pipelined path (SpanSource
	// inputs, e.g. memory-mapped NDJSON): one scanner cuts raw spans, this
	// many goroutines decode them into column batches, and the eval workers
	// score the results — parsing overlaps evaluation. 0 or negative means
	// half the eval workers, rounded up.
	DecodeWorkers int
	// ForceSequential disables the pipelined decode stage even when the
	// source supports spans, keeping the single reader-decodes shape — the
	// pipelined counterpart of ForceRows, for differential testing.
	ForceSequential bool
	// MaxDecodeErrors caps the decode errors retained (with line numbers)
	// in Result.DecodeErrors; 0 means 10, negative means none. Malformed
	// counts every skipped record regardless of the cap.
	MaxDecodeErrors int
	// Registry receives dqbatch_records_total{outcome} and
	// dqbatch_batch_seconds; nil means obs.Default().
	Registry *obs.Registry
	// Quality, when non-nil, receives the batch's merged per-characteristic
	// attribution: after the shards reduce, each characteristic's exact
	// count/failure/sum/min/max block is folded into the series labeled
	// {characteristic, context} in one Merge call. The shards never touch
	// the shared set, so the hot path is unchanged and the race-tested
	// exact aggregation stays exact.
	Quality *obs.SeriesSet
	// Context labels the Quality series (dataset, tenant, pipeline stage);
	// empty means "batch".
	Context string
	// CrossRecord are dataset-level stateful checks (uniqueness,
	// referential consistency, timeliness). Each check mints one private
	// state per worker; the engine merges them after the pool drains — the
	// same shard-then-reduce shape as the per-characteristic statistics —
	// and appends one CrossFinding per check to Result.CrossRecords.
	CrossRecord []dqruntime.StatefulCheck
}

// DecodeError is one retained malformed-input diagnostic.
type DecodeError struct {
	// Line is the 1-based input file line where the offending record
	// starts.
	Line int64 `json:"line"`
	// Error is the decode failure text.
	Error string `json:"error"`
}

// Result summarizes one batch run. All scores and latencies are merged
// across workers; Characteristics is sorted by characteristic name.
type Result struct {
	// Records counts successfully decoded records; Passed/Failed split
	// them by overall validation outcome. Malformed counts input records
	// that failed to decode and were skipped.
	Records   int64 `json:"records"`
	Passed    int64 `json:"passed"`
	Failed    int64 `json:"failed"`
	Malformed int64 `json:"malformed"`
	// DecodeErrors detail the first malformed records (line numbers and
	// causes), capped by Options.MaxDecodeErrors. On cancellation the
	// partial result keeps whatever was captured so far.
	DecodeErrors []DecodeError `json:"decode_errors,omitempty"`
	// Workers is the pool size the batch ran with.
	Workers int `json:"workers"`
	// Seconds is the wall-clock batch duration; RecordsPerSec the
	// resulting throughput.
	Seconds       float64 `json:"seconds"`
	RecordsPerSec float64 `json:"records_per_sec"`
	// LatencyP50/LatencyP99 are per-record validation latency percentiles
	// in seconds, from a bounded stride-sampled reservoir; 0 when
	// sampling was disabled or no record was validated.
	LatencyP50 float64 `json:"latency_p50_seconds"`
	LatencyP99 float64 `json:"latency_p99_seconds"`
	// Characteristics is the per-characteristic roll-up.
	Characteristics []CharacteristicStats `json:"characteristics"`
	// CrossRecords are the dataset-level findings of Options.CrossRecord,
	// in check declaration order.
	CrossRecords []dqruntime.CrossFinding `json:"cross_records,omitempty"`
	// Duration is Seconds as a time.Duration, for callers doing math.
	Duration time.Duration `json:"-"`
	// Vectorized reports whether the columnar path ran. Excluded from the
	// serialized forms so both paths produce identical reports.
	Vectorized bool `json:"-"`
	// Pipelined reports whether the decode stage ran as its own worker pool
	// (SpanSource input). Excluded from the serialized forms for the same
	// reason as Vectorized.
	Pipelined bool `json:"-"`
}

// chunk is one unit of work on the row path: a recycled block of records.
// Only the first n entries of recs are valid; base is the 1-based ordinal
// of the first one. scratch holds the recycled maps offered to the source —
// a streaming decoder fills and returns them (recs[i] == scratch[i]), an
// in-memory source returns its own records and the scratch maps idle.
type chunk struct {
	base    int64
	n       int
	recs    []dqruntime.Record
	scratch []dqruntime.Record
}

// colChunk is one unit of work on the vectorized path: a recycled
// columnar batch of up to ChunkSize rows. On the pipelined path idx is the
// chunk's span sequence number (the sequencer restores input order from
// it) and bads buffers the span's malformed-line diagnostics until the
// sequencer replays them in line order.
type colChunk struct {
	base  int64
	n     int
	batch *dqruntime.ColumnBatch
	idx   int64
	bads  []lineErr
}

// lineErr is one malformed line captured during concurrent span decoding,
// held until the sequencer replays it single-threaded.
type lineErr struct {
	line int64
	err  error
}

// chunkPool and colChunkPool recycle chunks (and the record maps / column
// buffers inside them) across Runs, so repeated batches — benchmark
// iterations, a server validating dataset after dataset — stop paying the
// pool-priming allocations every time.
var (
	chunkPool    sync.Pool
	colChunkPool sync.Pool
)

func getChunk(chunkSize int) *chunk {
	c, _ := chunkPool.Get().(*chunk)
	if c == nil || cap(c.recs) < chunkSize {
		return &chunk{
			recs:    make([]dqruntime.Record, chunkSize),
			scratch: make([]dqruntime.Record, chunkSize),
		}
	}
	c.recs = c.recs[:chunkSize]
	c.scratch = c.scratch[:chunkSize]
	return c
}

func getColChunk() *colChunk {
	c, _ := colChunkPool.Get().(*colChunk)
	if c == nil {
		return &colChunk{batch: &dqruntime.ColumnBatch{}}
	}
	return c
}

// sampleCap bounds each worker's latency reservoir.
const sampleCap = 4096

// batchBuckets are dqbatch_batch_seconds bounds: batches run longer than
// request latencies, so the tail extends into minutes.
var batchBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Run streams records from src through a worker pool, validating each
// with v and merging per-characteristic statistics. When src implements
// BatchSource and v implements BatchValidating (and ForceRows is off),
// records travel as columnar batches and each worker scores whole columns
// at once; otherwise every record is validated through the per-record row
// path. Both paths produce identical results. Run honors ctx: on
// cancellation the stream stops, workers drain, and the partial Result
// comes back with ctx's error. Memory is bounded by the pool geometry
// (roughly 2×workers chunks of ChunkSize records), never by input size.
func Run(ctx context.Context, v Validating, src Source, opts Options) (*Result, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = 256
	}
	maxExemplars := opts.MaxExemplars
	if maxExemplars == 0 {
		maxExemplars = 3
	} else if maxExemplars < 0 {
		maxExemplars = 0
	}
	stride := opts.SampleEvery
	if stride == 0 {
		stride = 64
	}
	maxDecode := opts.MaxDecodeErrors
	if maxDecode == 0 {
		maxDecode = 10
	} else if maxDecode < 0 {
		maxDecode = 0
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.Default()
	}
	const recordsHelp = "Batch-validated records, by outcome (pass, fail, error=malformed input)"
	passC := reg.Counter("dqbatch_records_total", recordsHelp, obs.Labels{"outcome": "pass"})
	failC := reg.Counter("dqbatch_records_total", recordsHelp, obs.Labels{"outcome": "fail"})
	errC := reg.Counter("dqbatch_records_total", recordsHelp, obs.Labels{"outcome": "error"})
	batchH := reg.Histogram("dqbatch_batch_seconds", "Wall-clock batch validation duration", batchBuckets, nil)

	bsrc, srcOK := src.(BatchSource)
	bval, valOK := v.(BatchValidating)
	vectorized := srcOK && valOK && !opts.ForceRows

	_, span := obs.StartSpan(ctx, "dqbatch.run")
	start := time.Now()

	var malformed int64
	var decodeErrs []DecodeError
	var readErr error
	// onBad runs on exactly one goroutine — the reader, or on the pipelined
	// path the sequencer (which replays buffered diagnostics in line order);
	// <-readerDone below is the happens-before edge that publishes its
	// writes to the epilogue.
	onBad := func(line int64, err error) {
		malformed++
		errC.Inc()
		if len(decodeErrs) < maxDecode {
			decodeErrs = append(decodeErrs, DecodeError{Line: line, Error: err.Error()})
		}
	}

	shards := make([]*shard, workers)
	for i := range shards {
		shards[i] = newShard()
	}
	// crossStates[c][w] is check c's private state for worker w; workers
	// write only their own column, and the reduce below folds each row
	// single-threaded, so cross-record checks ride the existing
	// shard-then-merge discipline without new synchronization.
	crossStates := make([][]dqruntime.CheckState, len(opts.CrossRecord))
	for i, sc := range opts.CrossRecord {
		crossStates[i] = sc.NewStates(workers, maxExemplars)
	}
	readerDone := make(chan struct{})
	var wg sync.WaitGroup

	ssrc, spanOK := src.(SpanSource)
	pipelined := vectorized && spanOK && !opts.ForceSequential
	decodeWorkers := opts.DecodeWorkers
	if decodeWorkers <= 0 {
		decodeWorkers = (workers + 1) / 2
	}

	if vectorized {
		// The free list is the memory bound: every batch in flight came
		// from here, so at most cap(free) column batches exist (the
		// pipelined path holds extras in its decode stage).
		freeCap := 2*workers + 2
		if pipelined {
			freeCap += 2 * decodeWorkers
		}
		free := make(chan *colChunk, freeCap)
		for i := 0; i < cap(free); i++ {
			free <- getColChunk()
		}
		work := make(chan *colChunk, workers)
		var scanDone chan struct{}

		if pipelined {
			// Three stages: a scanner cuts raw spans off the source (pure
			// newline arithmetic), decode workers parse spans into column
			// batches concurrently, and a sequencer restores span order —
			// assigning record ordinals and replaying malformed-line
			// diagnostics exactly as the single-reader path would — before
			// handing chunks to the eval workers. Reports stay byte-identical
			// because ordinals, decode-error order and per-worker chunk order
			// (ascending base) all match the sequential reader.
			scanDone = make(chan struct{})
			type spanItem struct {
				idx int64
				sp  Span
			}
			spans := make(chan spanItem, decodeWorkers)
			seqCh := make(chan *colChunk, decodeWorkers+workers)

			go func() { // scanner: owns readErr, published via scanDone
				defer close(scanDone)
				defer close(spans)
				var idx int64
				for {
					sp, err := ssrc.NextSpan(chunkSize)
					if err != nil {
						if err != io.EOF {
							readErr = err
						}
						return
					}
					select {
					case spans <- spanItem{idx: idx, sp: sp}:
					case <-ctx.Done():
						return
					}
					idx++
				}
			}()

			var decWg sync.WaitGroup
			for i := 0; i < decodeWorkers; i++ {
				decWg.Add(1)
				go func() {
					defer decWg.Done()
					for it := range spans {
						var c *colChunk
						select {
						case c = <-free:
						case <-ctx.Done():
							return
						}
						c.batch.Reset()
						c.idx = it.idx
						c.bads = c.bads[:0]
						c.n = ssrc.DecodeSpan(it.sp, c.batch, func(line int64, err error) {
							c.bads = append(c.bads, lineErr{line: line, err: err})
						})
						select {
						case seqCh <- c:
						case <-ctx.Done():
							return
						}
					}
				}()
			}
			go func() {
				decWg.Wait()
				close(seqCh)
			}()

			go func() { // sequencer: owns onBad state, published via readerDone
				defer close(readerDone)
				defer close(work)
				pending := make(map[int64]*colChunk, decodeWorkers+workers)
				var next, ordinal int64
				for c := range seqCh {
					pending[c.idx] = c
					for {
						pc, ok := pending[next]
						if !ok {
							break
						}
						delete(pending, next)
						next++
						for _, b := range pc.bads {
							onBad(b.line, b.err)
						}
						pc.bads = pc.bads[:0]
						if pc.n == 0 {
							select {
							case free <- pc:
							default:
							}
							continue
						}
						pc.base = ordinal + 1
						ordinal += int64(pc.n)
						select {
						case work <- pc:
						case <-ctx.Done():
							return
						}
					}
				}
			}()
		} else {
			go func() {
				defer close(readerDone)
				defer close(work)
				var ordinal int64
				for {
					var c *colChunk
					select {
					case c = <-free:
					case <-ctx.Done():
						return
					}
					c.batch.Reset()
					n, err := bsrc.NextBatch(c.batch, chunkSize, onBad)
					c.base = ordinal + 1
					c.n = n
					ordinal += int64(n)
					if n > 0 {
						select {
						case work <- c:
						case <-ctx.Done():
							return
						}
					}
					if err != nil {
						if err != io.EOF {
							readErr = err
						}
						return
					}
				}
			}()
		}

		for i := 0; i < workers; i++ {
			sh := shards[i]
			wi := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep := &dqruntime.BatchReport{}
				for c := range work {
					if ctx.Err() != nil {
						return
					}
					if stride > 0 {
						t0 := time.Now()
						bval.ValidateBatch(c.batch, rep)
						sh.sample(time.Since(t0).Seconds()/float64(c.n), sampleCap)
					} else {
						bval.ValidateBatch(c.batch, rep)
					}
					for _, states := range crossStates {
						states[wi].ObserveBatch(c.base, c.batch)
					}
					pass, fail := sh.observeBatch(c.base, rep, maxExemplars)
					passC.Add(pass)
					failC.Add(fail)
					select {
					case free <- c:
					default: // reader gone; chunk retires
					}
				}
			}()
		}
		wg.Wait()
		<-readerDone
		if scanDone != nil {
			// Pipelined: readErr is the scanner's; wait for its publication
			// edge too (the sequencer can finish first on cancellation).
			<-scanDone
		}
		drainColChunks(free)
	} else {
		free := make(chan *chunk, 2*workers+2)
		for i := 0; i < cap(free); i++ {
			free <- getChunk(chunkSize)
		}
		work := make(chan *chunk, workers)

		go func() {
			defer close(readerDone)
			defer close(work)
			var ordinal int64
		read:
			for {
				var c *chunk
				select {
				case c = <-free:
				case <-ctx.Done():
					return
				}
				c.base = ordinal + 1
				c.n = 0
				for c.n < chunkSize {
					rec := c.scratch[c.n]
					if rec == nil {
						rec = make(dqruntime.Record, 8)
						c.scratch[c.n] = rec
					}
					got, err := src.Next(rec)
					if err == nil {
						c.recs[c.n] = got
						ordinal++
						c.n++
						continue
					}
					if re, ok := err.(*RecordError); ok {
						onBad(re.Line, re.Err)
						continue
					}
					if err != io.EOF {
						readErr = err
					}
					if c.n > 0 {
						select {
						case work <- c:
						case <-ctx.Done():
						}
					}
					break read
				}
				select {
				case work <- c:
				case <-ctx.Done():
					return
				}
			}
		}()

		for i := 0; i < workers; i++ {
			sh := shards[i]
			wi := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep := &dqruntime.Report{}
				var seen int64
				for c := range work {
					if ctx.Err() != nil {
						return
					}
					var pass, fail uint64
					for j := 0; j < c.n; j++ {
						rec := c.recs[j]
						if stride > 0 && seen%int64(stride) == 0 {
							t0 := time.Now()
							v.ValidateInto(rec, rep)
							sh.sample(time.Since(t0).Seconds(), sampleCap)
						} else {
							v.ValidateInto(rec, rep)
						}
						seen++
						for _, states := range crossStates {
							states[wi].Observe(c.base+int64(j), rec)
						}
						if sh.observe(c.base+int64(j), rep, maxExemplars) {
							pass++
						} else {
							fail++
						}
					}
					passC.Add(pass)
					failC.Add(fail)
					select {
					case free <- c:
					default: // reader gone; chunk retires
					}
				}
			}()
		}
		wg.Wait()
		// The reader exits on EOF, source error, or ctx cancellation (every
		// blocking point selects ctx.Done); waiting for it establishes the
		// happens-before edge for malformed, decodeErrs and readErr.
		<-readerDone
		drainChunks(free)
	}

	dur := time.Since(start)
	batchH.Observe(dur.Seconds())

	res := &Result{
		Malformed:    malformed,
		DecodeErrors: decodeErrs,
		Workers:      workers,
		Seconds:      dur.Seconds(),
		Duration:     dur,
		Vectorized:   vectorized,
		Pipelined:    pipelined,
	}
	var samples []float64
	res.Characteristics, samples = mergeShards(shards, maxExemplars)
	for _, sh := range shards {
		res.Records += sh.records
		res.Passed += sh.passed
		res.Failed += sh.failed
	}
	if res.Seconds > 0 {
		res.RecordsPerSec = float64(res.Records) / res.Seconds
	}
	sort.Float64s(samples)
	res.LatencyP50 = percentile(samples, 50)
	res.LatencyP99 = percentile(samples, 99)

	// Reduce the cross-record states in worker-index order. Each state's
	// Merge is order-independent in effect, so any worker count and any
	// chunk assignment produce the same findings.
	for _, states := range crossStates {
		merged := states[0]
		for _, o := range states[1:] {
			merged.Merge(o)
		}
		res.CrossRecords = append(res.CrossRecords, merged.Finding())
	}

	if opts.Quality != nil {
		ctxLabel := opts.Context
		if ctxLabel == "" {
			ctxLabel = "batch"
		}
		for _, cs := range res.Characteristics {
			opts.Quality.Series(obs.Labels{
				"characteristic": string(cs.Characteristic),
				"context":        ctxLabel,
			}).Merge(uint64(cs.Checks), uint64(cs.Checks-cs.Passed),
				cs.SumScore, cs.MinScore, cs.MaxScore)
		}
		// Each cross-record finding is one dataset-level measurement of its
		// characteristic: one check execution with the finding's score.
		for _, f := range res.CrossRecords {
			var failed uint64
			if !f.Passed {
				failed = 1
			}
			opts.Quality.Series(obs.Labels{
				"characteristic": string(f.Characteristic),
				"context":        ctxLabel,
			}).Merge(1, failed, f.Score, f.Score, f.Score)
		}
	}

	span.SetAttr("records", int(res.Records))
	span.SetAttr("workers", workers)
	if vectorized {
		span.SetAttr("vectorized", 1)
	}
	if res.Failed > 0 {
		span.SetAttr("failed", int(res.Failed))
	}
	span.End()

	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, readErr
}

// drainChunks returns every idle chunk to the cross-run pool. Chunks
// stranded in the work channel after a cancellation simply retire.
func drainChunks(free chan *chunk) {
	for {
		select {
		case c := <-free:
			chunkPool.Put(c)
		default:
			return
		}
	}
}

func drainColChunks(free chan *colChunk) {
	for {
		select {
		case c := <-free:
			colChunkPool.Put(c)
		default:
			return
		}
	}
}

// percentile returns the p-th percentile of an ascending sample set; 0
// when empty.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WriteText renders the result as a human-readable report.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "batch: %d records in %s (%.0f records/sec, %d workers)\n",
		r.Records, r.Duration.Round(time.Millisecond), r.RecordsPerSec, r.Workers)
	fmt.Fprintf(w, "  passed %d, failed %d, malformed %d\n", r.Passed, r.Failed, r.Malformed)
	if len(r.DecodeErrors) > 0 {
		fmt.Fprintf(w, "  decode errors (%d of %d malformed):\n", len(r.DecodeErrors), r.Malformed)
		for _, de := range r.DecodeErrors {
			fmt.Fprintf(w, "      line %d: %s\n", de.Line, de.Error)
		}
	}
	if r.LatencyP50 > 0 {
		fmt.Fprintf(w, "  per-record latency p50 %s, p99 %s\n",
			time.Duration(r.LatencyP50*float64(time.Second)).Round(time.Nanosecond),
			time.Duration(r.LatencyP99*float64(time.Second)).Round(time.Nanosecond))
	}
	for _, cs := range r.Characteristics {
		fmt.Fprintf(w, "  %-18s %d/%d checks passed, min %.2f, mean %.3f\n",
			cs.Characteristic, cs.Passed, cs.Checks, cs.MinScore, cs.MeanScore)
		for _, ex := range cs.Exemplars {
			fmt.Fprintf(w, "      record %d: %s", ex.Record, ex.Check)
			for _, d := range ex.Details {
				fmt.Fprintf(w, " — %s", d)
			}
			fmt.Fprintln(w)
		}
	}
	for _, f := range r.CrossRecords {
		verdict := "passed"
		if !f.Passed {
			verdict = fmt.Sprintf("%d violations", f.Violations)
		}
		approx := ""
		if f.Approximate {
			approx = " (approximate)"
		}
		fmt.Fprintf(w, "  %-18s %s: %s over %d records, score %.3f%s\n",
			f.Characteristic, f.Check, verdict, f.Records, f.Score, approx)
		for _, d := range f.Details {
			fmt.Fprintf(w, "      %s\n", d)
		}
	}
}
