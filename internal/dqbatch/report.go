package dqbatch

import (
	"encoding/json"
	"fmt"
	"io"
)

// RenderReport writes res to w in the named format: "json" is the indented
// JSON document ending in a newline, "text" the human-readable report of
// WriteText. It is the single rendering path shared by `dqwebre batch`
// (including its SIGINT partial report) and the job server's /report and
// cancel endpoints, so a report produced anywhere in the system is
// byte-identical everywhere for the same Result.
func RenderReport(w io.Writer, res *Result, format string) error {
	switch format {
	case "json":
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, string(data))
		return err
	case "text":
		res.WriteText(w)
		return nil
	default:
		return fmt.Errorf("unknown report format %q (text or json)", format)
	}
}
