package dqbatch

import (
	"sort"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/iso25012"
)

// shard accumulates statistics for one worker. Each worker owns exactly
// one shard and touches it without synchronization; the engine merges the
// shards single-threaded after the pool drains, so the reduce step never
// contends with the map phase.
type shard struct {
	records int64
	passed  int64
	failed  int64
	chars   map[iso25012.Characteristic]*charAgg
	// byIdx memoizes the charAgg for each result position: a validator's
	// check order is fixed, so after the first record the hot loop is a
	// slice index instead of a map lookup per check. byChar mirrors the
	// memoized characteristics to detect a shape change and fall back.
	byIdx  []*charAgg
	byChar []iso25012.Characteristic
	// latency reservoir: stride-sampled per-record validation seconds,
	// overwritten cyclically once full so memory stays bounded.
	samples   []float64
	sampleIdx int
	// pad keeps adjacent shards' hot counters on separate cache lines when
	// the allocator places them contiguously.
	_ [64]byte
}

// charAgg is one characteristic's running statistics inside a shard.
type charAgg struct {
	checks    int64
	passed    int64
	minScore  float64
	maxScore  float64
	sumScore  float64
	exemplars []Exemplar
}

// Exemplar is one retained failure, capped per characteristic so a batch
// with a million failures reports a handful of concrete ones instead of
// drowning the caller.
type Exemplar struct {
	// Record is the 1-based ordinal of the failing record in the input.
	Record int64 `json:"record"`
	// Check names the failing check.
	Check string `json:"check"`
	// Details are the check's diagnostic messages.
	Details []string `json:"details,omitempty"`
}

func newShard() *shard {
	return &shard{chars: make(map[iso25012.Characteristic]*charAgg)}
}

// agg resolves the charAgg for result position i, memoized so that after
// the first record the hot loop is a slice index instead of a map lookup.
func (s *shard) agg(i int, ch iso25012.Characteristic) *charAgg {
	if i < len(s.byIdx) && s.byChar[i] == ch {
		return s.byIdx[i]
	}
	ca := s.chars[ch]
	if ca == nil {
		ca = &charAgg{minScore: 1}
		s.chars[ch] = ca
	}
	if i == len(s.byIdx) {
		s.byIdx = append(s.byIdx, ca)
		s.byChar = append(s.byChar, ch)
	}
	return ca
}

// observe folds one record's validation report into the shard. ordinal is
// the record's 1-based position in the input; maxExemplars caps retained
// failures per characteristic.
func (s *shard) observe(ordinal int64, rep *dqruntime.Report, maxExemplars int) (passed bool) {
	s.records++
	passed = true
	for i := range rep.Results {
		res := &rep.Results[i]
		ca := s.agg(i, res.Characteristic)
		ca.checks++
		ca.sumScore += res.Score
		if res.Score < ca.minScore {
			ca.minScore = res.Score
		}
		if res.Score > ca.maxScore {
			ca.maxScore = res.Score
		}
		if res.Passed {
			ca.passed++
			continue
		}
		passed = false
		if len(ca.exemplars) < maxExemplars {
			ca.exemplars = append(ca.exemplars, Exemplar{
				Record:  ordinal,
				Check:   res.Check,
				Details: append([]string(nil), res.Details...),
			})
		}
	}
	if passed {
		s.passed++
	} else {
		s.failed++
	}
	return passed
}

// observeBatch folds one columnar batch report into the shard. The fold is
// row-outer — for each row, across checks — reproducing the row path's
// exact float addition order and exemplar capture order, so a vectorized
// run's merged statistics are bit-identical to a sequential row run's.
func (s *shard) observeBatch(base int64, rep *dqruntime.BatchReport, maxExemplars int) (pass, fail uint64) {
	rows := rep.Rows()
	nres := len(rep.Results)
	for r := 0; r < rows; r++ {
		s.records++
		rowPassed := true
		for i := 0; i < nres; i++ {
			res := &rep.Results[i]
			ca := s.agg(i, res.Characteristic)
			ca.checks++
			score := res.Score[r]
			ca.sumScore += score
			if score < ca.minScore {
				ca.minScore = score
			}
			if score > ca.maxScore {
				ca.maxScore = score
			}
			if res.Passed[r] {
				ca.passed++
				continue
			}
			rowPassed = false
			if len(ca.exemplars) < maxExemplars {
				ca.exemplars = append(ca.exemplars, Exemplar{
					Record:  base + int64(r),
					Check:   res.Check,
					Details: append([]string(nil), res.Details[r]...),
				})
			}
		}
		if rowPassed {
			s.passed++
			pass++
		} else {
			s.failed++
			fail++
		}
	}
	return pass, fail
}

// sample records one per-record validation latency into the reservoir.
func (s *shard) sample(seconds float64, cap int) {
	if len(s.samples) < cap {
		s.samples = append(s.samples, seconds)
		return
	}
	s.samples[s.sampleIdx%cap] = seconds
	s.sampleIdx++
}

// CharacteristicStats is the merged view of one ISO/IEC 25012
// characteristic across the whole batch.
type CharacteristicStats struct {
	// Characteristic is the measured ISO/IEC 25012 characteristic.
	Characteristic iso25012.Characteristic `json:"characteristic"`
	// Checks counts check executions; Passed counts the passing ones.
	Checks int64 `json:"checks"`
	Passed int64 `json:"passed"`
	// MinScore/MaxScore bound the scores seen; MeanScore is the average.
	MinScore  float64 `json:"min_score"`
	MaxScore  float64 `json:"max_score"`
	MeanScore float64 `json:"mean_score"`
	// SumScore is the raw score total behind MeanScore, kept so downstream
	// aggregation (the windowed quality series) merges exactly instead of
	// re-multiplying a rounded mean.
	SumScore float64 `json:"-"`
	// Exemplars are retained failures, capped per characteristic.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// mergeShards folds the per-worker shards into sorted per-characteristic
// statistics plus the pooled latency reservoir.
func mergeShards(shards []*shard, maxExemplars int) (stats []CharacteristicStats, samples []float64) {
	merged := map[iso25012.Characteristic]*charAgg{}
	for _, s := range shards {
		for ch, ca := range s.chars {
			m := merged[ch]
			if m == nil {
				m = &charAgg{minScore: 1}
				merged[ch] = m
			}
			m.checks += ca.checks
			m.passed += ca.passed
			m.sumScore += ca.sumScore
			if ca.minScore < m.minScore {
				m.minScore = ca.minScore
			}
			if ca.maxScore > m.maxScore {
				m.maxScore = ca.maxScore
			}
			// Pool every shard's exemplars; the cap is applied after the
			// global sort below, so the retained set is the first failures
			// by record ordinal regardless of which worker saw them —
			// reports stay byte-identical across worker counts and runs.
			m.exemplars = append(m.exemplars, ca.exemplars...)
		}
		samples = append(samples, s.samples...)
	}
	for ch, m := range merged {
		cs := CharacteristicStats{
			Characteristic: ch,
			Checks:         m.checks,
			Passed:         m.passed,
			MinScore:       m.minScore,
			MaxScore:       m.maxScore,
			SumScore:       m.sumScore,
			Exemplars:      m.exemplars,
		}
		if m.checks > 0 {
			cs.MeanScore = m.sumScore / float64(m.checks)
		}
		sort.Slice(cs.Exemplars, func(i, j int) bool { return cs.Exemplars[i].Record < cs.Exemplars[j].Record })
		if len(cs.Exemplars) > maxExemplars {
			cs.Exemplars = cs.Exemplars[:maxExemplars]
		}
		stats = append(stats, cs)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Characteristic < stats[j].Characteristic })
	return stats, samples
}
