//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package dqbatch

import (
	"errors"
	"os"
)

// mmapAvailable gates OpenFileSource's zero-copy path: on platforms
// without a memory-mapping syscall the portable bufio sources serve every
// input.
const mmapAvailable = false

// mmapFile always fails here; OpenFileSource falls back to bufio.
func mmapFile(*os.File, int64) ([]byte, func() error, error) {
	return nil, nil, errors.New("dqbatch: mmap not supported on this platform")
}
