package dqbatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"testing"

	. "github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
)

func TestNDJSONByteOffsetTracksConsumedLines(t *testing.T) {
	input := `{"a":"1"}` + "\n" + `{"a":"2"}` + "\n"
	src := NewNDJSONSource(strings.NewReader(input))
	if got := src.ByteOffset(); got != 0 {
		t.Fatalf("initial offset = %d, want 0", got)
	}
	rec := dqruntime.Record{}
	if _, err := src.Next(rec); err != nil {
		t.Fatal(err)
	}
	if got, want := src.ByteOffset(), int64(10); got != want {
		t.Fatalf("offset after first record = %d, want %d", got, want)
	}
	if _, err := src.Next(rec); err != nil {
		t.Fatal(err)
	}
	if got, want := src.ByteOffset(), int64(len(input)); got != want {
		t.Fatalf("offset after second record = %d, want %d", got, want)
	}
	if _, err := src.Next(rec); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestNDJSONByteOffsetAdvancesPastMalformedLines(t *testing.T) {
	input := "not json\n" + `{"a":"1"}` + "\n"
	src := NewNDJSONSource(strings.NewReader(input))
	rec := dqruntime.Record{}
	if _, err := src.Next(rec); err == nil {
		t.Fatal("malformed line decoded")
	}
	// The malformed line was consumed; a checkpoint may move past it.
	if got, want := src.ByteOffset(), int64(9); got != want {
		t.Fatalf("offset after malformed record = %d, want %d", got, want)
	}
}

func TestNDJSONSourceAtContinuesNumbering(t *testing.T) {
	src := NewNDJSONSourceAt(strings.NewReader("bad\n"), 41, 1000)
	if _, err := src.Next(dqruntime.Record{}); err == nil {
		t.Fatal("malformed line decoded")
	} else if !strings.Contains(err.Error(), "record 42") {
		t.Fatalf("err = %v, want line 42", err)
	}
	if got, want := src.ByteOffset(), int64(1004); got != want {
		t.Fatalf("offset = %d, want %d", got, want)
	}
}

func TestCSVByteOffsetIsExact(t *testing.T) {
	input := "a,b\n1,2\n3,4\n"
	src := NewCSVSource(strings.NewReader(input))
	rec := dqruntime.Record{}
	if _, err := src.Next(rec); err != nil {
		t.Fatal(err)
	}
	if got, want := src.ByteOffset(), int64(8); got != want {
		t.Fatalf("offset after first data row = %d, want %d", got, want)
	}
	if _, err := src.Next(rec); err != nil {
		t.Fatal(err)
	}
	if got, want := src.ByteOffset(), int64(len(input)); got != want {
		t.Fatalf("offset after second data row = %d, want %d", got, want)
	}
}

// TestCountSourcePublishesProgress drives a real batch through a counted
// NDJSON source and checks the progress's final position matches the
// input, on both the row and the vectorized path (CountSource must
// preserve the BatchSource capability).
func TestCountSourcePublishesProgress(t *testing.T) {
	v := buildValidator(t)
	var b strings.Builder
	for i := 0; i < 500; i++ {
		b.WriteString(`{"first_name":"G","last_name":"H","email_address":"g@h.io","overall_evaluation":2,"reviewer_confidence":3}` + "\n")
	}
	input := b.String()

	for _, rows := range []bool{true, false} {
		var p Progress
		src := CountSource(NewNDJSONSource(strings.NewReader(input)), &p)
		if _, isBatch := src.(BatchSource); !isBatch {
			t.Fatal("CountSource dropped the BatchSource capability")
		}
		res, err := Run(context.Background(), v, src, Options{
			Workers: 4, ChunkSize: 64, ForceRows: rows, Registry: obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Vectorized == rows {
			t.Fatalf("ForceRows=%v but Vectorized=%v", rows, res.Vectorized)
		}
		if got := p.Records(); got != 500 {
			t.Fatalf("rows=%v: progress records = %d, want 500", rows, got)
		}
		if got, want := p.Bytes(), int64(len(input)); got != want {
			t.Fatalf("rows=%v: progress bytes = %d, want %d", rows, got, want)
		}
	}
}

func TestRenderReportMatchesLegacyRendering(t *testing.T) {
	v := buildValidator(t)
	res, err := Run(context.Background(), v,
		NewSliceSource([]dqruntime.Record{goodRecord(), badRecord()}),
		Options{Workers: 1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	if err := RenderReport(&got, res, "json"); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if want := string(data) + "\n"; got.String() != want {
		t.Fatalf("json rendering diverged:\n got: %s\nwant: %s", got.String(), want)
	}

	got.Reset()
	if err := RenderReport(&got, res, "text"); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	res.WriteText(&want)
	if got.String() != want.String() {
		t.Fatalf("text rendering diverged:\n got: %s\nwant: %s", got.String(), want.String())
	}

	if err := RenderReport(io.Discard, res, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
