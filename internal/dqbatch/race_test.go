// Race and lifecycle tests for the batch engine: the sharded aggregators
// must hold up under many workers (run these with -race, as
// scripts/check.sh does), and cancellation mid-stream must tear the whole
// pool down without leaking goroutines.
package dqbatch_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	. "github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// generatorSource produces synthetic records forever (or until limit),
// counting how many it has emitted. It never blocks, so the engine's
// cancellation path is what stops the stream.
type generatorSource struct {
	emitted atomic.Int64
	limit   int64 // <= 0 means unbounded
}

func (g *generatorSource) Next(rec dqruntime.Record) (dqruntime.Record, error) {
	n := g.emitted.Add(1)
	if g.limit > 0 && n > g.limit {
		return nil, io.EOF
	}
	clear(rec)
	rec["first_name"] = "A"
	rec["last_name"] = "B"
	rec["email_address"] = "a@b.co"
	rec["overall_evaluation"] = fmt.Sprintf("%d", n%9-4) // -4..4: some out of [-3,3]
	rec["reviewer_confidence"] = "3"
	return rec, nil
}

func TestRunManyWorkersAggregatesExactly(t *testing.T) {
	v := buildValidator(t)
	const n = 20000
	src := &generatorSource{limit: n}
	res, err := Run(context.Background(), v, src, Options{
		Workers: 16, ChunkSize: 64, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != n {
		t.Fatalf("records = %d, want %d", res.Records, n)
	}
	if res.Passed+res.Failed != n {
		t.Fatalf("passed %d + failed %d != %d", res.Passed, res.Failed, n)
	}
	if res.Failed == 0 {
		t.Fatal("generator emits out-of-range evaluations; some records must fail")
	}
	// Whatever the split, the sharded aggregators must not lose a check.
	var checks int64
	for _, cs := range res.Characteristics {
		checks += cs.Checks
	}
	if checks != 3*n { // completeness + 2 precision checks per record
		t.Fatalf("total checks = %d, want %d", checks, 3*n)
	}
}

func TestRunCancellationMidStreamStopsAndReportsPartial(t *testing.T) {
	v := buildValidator(t)
	src := &generatorSource{} // unbounded
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the pool get going, then pull the plug.
		for src.emitted.Load() < 10000 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	res, err := Run(ctx, v, src, Options{Workers: 8, Registry: obs.NewRegistry()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Records == 0 {
		t.Fatalf("partial result = %+v", res)
	}
	if res.Records > src.emitted.Load() {
		t.Fatalf("validated %d records but only %d were emitted", res.Records, src.emitted.Load())
	}
}

func TestRunCancellationLeaksNoGoroutines(t *testing.T) {
	v := buildValidator(t)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		src := &generatorSource{}
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			for src.emitted.Load() < 2000 {
				time.Sleep(50 * time.Microsecond)
			}
			cancel()
		}()
		if _, err := Run(ctx, v, src, Options{Workers: 8, Registry: obs.NewRegistry()}); !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v", i, err)
		}
		cancel()
	}
	// The pool goroutines exit before Run returns; allow the canceller
	// goroutines a moment to notice and die.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d > %d+2 after cancellations\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunSourceErrorAbortsWithPartial(t *testing.T) {
	v := buildValidator(t)
	// 20 good lines, then a scanner-level failure (line too long).
	var b strings.Builder
	for i := 0; i < 20; i++ {
		b.WriteString(`{"first_name":"A","last_name":"B","email_address":"a@b.co","overall_evaluation":"1","reviewer_confidence":"3"}` + "\n")
	}
	b.WriteString(strings.Repeat("x", 2<<20) + "\n")
	res, err := Run(context.Background(), v, NewNDJSONSource(strings.NewReader(b.String())), Options{
		Workers: 4, Registry: obs.NewRegistry(),
	})
	if err == nil {
		t.Fatal("want a source error")
	}
	if res.Records != 20 {
		t.Fatalf("partial records = %d, want 20", res.Records)
	}
}
