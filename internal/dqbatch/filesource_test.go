// Golden parity for the zero-copy ingest path: the memory-mapped NDJSON
// source (fast flat-JSON parser, pipelined decode) must produce reports
// byte-identical to the bufio source on the same bytes — JSON and text, at
// 1 and 8 workers — and OpenFileSource must route every input shape to the
// right implementation (regular files to mmap, pipes and empty files to
// the portable fallback).
package dqbatch

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// trickyNDJSON extends the parity fixture with every shape that makes the
// fast flat-JSON parser bail to the canonical slow path: escapes, unicode,
// exotic numbers, duplicate keys, invalid UTF-8, structural junk. The
// mmap-vs-bufio comparison over it pins that the bail-out heuristics never
// change a decode outcome or an error text.
func trickyNDJSON() string {
	var b strings.Builder
	b.WriteString(parityNDJSON())
	lines := []string{
		`{}`,
		`{ "a" : "spaced" , "b" : "v" }`,
		`{"a": "quote \" inside", "b": "w"}`,
		`{"a": "escé", "b": "raw café"}`,
		`{"café": "non-ascii key", "a": "x"}`,
		`{"a": "tab\tand\nnewline"}`,
		"{\"a\": \"bad utf8 \xff\xfe\"}",
		`{"n": 0}`,
		`{"n": -0}`,
		`{"n": 0.125}`,
		`{"n": 1e3}`,
		`{"n": -2.5E-2}`,
		`{"n": 123456789012345678901234567890}`,
		`{"n": 999999999999999999}`,
		`{"n": 3.141592653589793}`,
		`{"a": true, "b": false}`,
		`{"a": 1, "a": 2}`,
		`{"a": null}`,
		`{"a": [1, 2]}`,
		`{"a": {"nested": true}}`,
		`{"a": "x",}`,
		`{"n": 01}`,
		`{"a": "x"} trailing`,
		`not json at all`,
		`{"a": "unterminated`,
		"   ",
		`{"b": "only-b"}`,
	}
	for i, l := range lines {
		b.WriteString(l)
		if i%5 == 4 {
			b.WriteString("\r\n")
		} else {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// runPair runs the same options over two sources and asserts byte-identical
// reports.
func runPair(t *testing.T, opts Options, mkA, mkB func() Source) (a, b *Result) {
	t.Helper()
	v := parityValidator(t)
	opts.Registry = obs.NewRegistry()
	a, err := Run(context.Background(), v, mkA(), opts)
	if err != nil {
		t.Fatalf("source A: %v", err)
	}
	b, err = Run(context.Background(), v, mkB(), opts)
	if err != nil {
		t.Fatalf("source B: %v", err)
	}
	normalize(a)
	normalize(b)
	assertIdenticalReports(t, a, b)
	return a, b
}

func TestMmapBufioGoldenParity(t *testing.T) {
	doc := trickyNDJSON()
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			opts := Options{Workers: workers, ChunkSize: 64,
				CrossRecord: []dqruntime.StatefulCheck{
					UniquenessCheckForTest(),
				}}
			bufio, mm := runPair(t, opts,
				func() Source { return NewNDJSONSource(strings.NewReader(doc)) },
				func() Source { return NewMmapNDJSONSource([]byte(doc)) })
			if bufio.Records == 0 || bufio.Malformed == 0 || bufio.Failed == 0 {
				t.Fatalf("degenerate fixture: %+v", bufio)
			}
			_ = mm
		})
	}
}

// UniquenessCheckForTest keys the parity runs' cross-record state on two
// fields, so the multi-field scratch-buffer path runs under -race in the
// pipelined engine.
func UniquenessCheckForTest() dqruntime.StatefulCheck {
	return dqruntime.UniquenessCheck{Fields: []string{"a", "b"}}
}

// TestPipelinedSequentialParity pins the pipelined decode stage against
// the single-reader columnar path on the same mmap source: span cutting,
// concurrent decoding and the sequencer's ordinal/diagnostic replay must
// not change a byte of the report.
func TestPipelinedSequentialParity(t *testing.T) {
	doc := trickyNDJSON()
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			v := parityValidator(t)
			opts := Options{Workers: workers, ChunkSize: 64, Registry: obs.NewRegistry()}
			opts.ForceSequential = true
			seq, err := Run(context.Background(), v, NewMmapNDJSONSource([]byte(doc)), opts)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Pipelined {
				t.Fatal("ForceSequential ran the pipelined path")
			}
			opts.ForceSequential = false
			opts.DecodeWorkers = 3
			pipe, err := Run(context.Background(), v, NewMmapNDJSONSource([]byte(doc)), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !pipe.Pipelined {
				t.Fatal("pipelined path did not engage for a SpanSource")
			}
			normalize(seq)
			normalize(pipe)
			assertIdenticalReports(t, seq, pipe)
		})
	}
}

// TestMmapSourceRowPath drains both sources through Next and compares
// record-for-record, error-for-error.
func TestMmapSourceRowPath(t *testing.T) {
	doc := trickyNDJSON()
	bufio := NewNDJSONSource(strings.NewReader(doc))
	mm := NewMmapNDJSONSource([]byte(doc))
	recA := make(dqruntime.Record, 8)
	recB := make(dqruntime.Record, 8)
	for i := 0; ; i++ {
		a, errA := bufio.Next(recA)
		b, errB := mm.Next(recB)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("record %d: errors diverged: bufio %v, mmap %v", i, errA, errB)
		}
		if errA != nil {
			var reA, reB *RecordError
			if errors.As(errA, &reA) != errors.As(errB, &reB) {
				t.Fatalf("record %d: error kinds diverged: %v vs %v", i, errA, errB)
			}
			if reA != nil {
				if reA.Line != reB.Line || reA.Error() != reB.Error() {
					t.Fatalf("record %d: record errors diverged: %v vs %v", i, reA, reB)
				}
				continue
			}
			if errA == io.EOF && errB == io.EOF {
				break
			}
			t.Fatalf("record %d: terminal errors: %v vs %v", i, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d diverged:\nbufio: %v\nmmap:  %v", i, a, b)
		}
		if bufio.ByteOffset() != mm.ByteOffset() {
			// Offsets agree on LF input; the fixture's CRLF lines are the
			// documented divergence (the scanner strips CR before counting),
			// so only require the mmap offset — an exact position — to be at
			// least the scanner's estimate.
			if mm.ByteOffset() < bufio.ByteOffset() {
				t.Fatalf("record %d: mmap offset %d behind scanner estimate %d",
					i, mm.ByteOffset(), bufio.ByteOffset())
			}
		}
	}
}

// TestMmapTooLongLine pins the bounded-memory contract on the zero-copy
// path: a line over maxLineBytes is a hard error naming the right line,
// on Next, NextBatch and NextSpan alike.
func TestMmapTooLongLine(t *testing.T) {
	doc := "{\"a\": \"ok\"}\n{\"a\": \"" + strings.Repeat("x", maxLineBytes) + "\"}\n"
	src := NewMmapNDJSONSource([]byte(doc))
	rec := make(dqruntime.Record, 2)
	if _, err := src.Next(rec); err != nil {
		t.Fatalf("first line: %v", err)
	}
	_, err := src.Next(rec)
	if err == nil || !strings.Contains(err.Error(), "token too long") {
		t.Fatalf("oversized line error = %v, want token too long", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("oversized line error names wrong line: %v", err)
	}

	src = NewMmapNDJSONSource([]byte(doc))
	var batch dqruntime.ColumnBatch
	n, err := src.NextBatch(&batch, 16, func(int64, error) {})
	if n != 1 || err != nil {
		t.Fatalf("NextBatch before oversized line: n=%d err=%v", n, err)
	}
	batch.Reset()
	if _, err = src.NextBatch(&batch, 16, func(int64, error) {}); err == nil {
		t.Fatal("NextBatch swallowed the oversized line")
	}

	src = NewMmapNDJSONSource([]byte(doc))
	sp, err := src.NextSpan(16)
	if err != nil || sp.FirstLine != 1 {
		t.Fatalf("NextSpan before oversized line: %+v, %v", sp, err)
	}
	if _, err = src.NextSpan(16); err == nil {
		t.Fatal("NextSpan swallowed the oversized line")
	}
}

func TestOpenFileSourceRouting(t *testing.T) {
	dir := t.TempDir()

	ndjson := filepath.Join(dir, "records.ndjson")
	if err := os.WriteFile(ndjson, []byte(`{"a": "1"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, closer, err := OpenFileSource(ndjson, "")
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	if mmapAvailable {
		if _, ok := src.(*MmapNDJSONSource); !ok {
			t.Fatalf("regular NDJSON file routed to %T, want *MmapNDJSONSource", src)
		}
	} else if _, ok := src.(*NDJSONSource); !ok {
		t.Fatalf("no-mmap platform routed to %T, want *NDJSONSource", src)
	}
	rec, err := src.Next(make(dqruntime.Record, 2))
	if err != nil || rec["a"] != "1" {
		t.Fatalf("mmap-backed Next: %v, %v", rec, err)
	}

	// Extension picks CSV; the mapped bytes feed the CSV decoder.
	csvPath := filepath.Join(dir, "records.csv")
	if err := os.WriteFile(csvPath, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	csvSrc, csvClose, err := OpenFileSource(csvPath, "")
	if err != nil {
		t.Fatal(err)
	}
	defer csvClose()
	if _, ok := csvSrc.(*CSVSource); !ok {
		t.Fatalf("CSV file routed to %T, want *CSVSource", csvSrc)
	}
	rec, err = csvSrc.Next(make(dqruntime.Record, 2))
	if err != nil || rec["a"] != "1" || rec["b"] != "2" {
		t.Fatalf("CSV Next: %v, %v", rec, err)
	}

	// Zero-length input cannot be mapped and must fall back.
	empty := filepath.Join(dir, "empty.ndjson")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	emptySrc, emptyClose, err := OpenFileSource(empty, "")
	if err != nil {
		t.Fatal(err)
	}
	defer emptyClose()
	if _, ok := emptySrc.(*NDJSONSource); !ok {
		t.Fatalf("empty file routed to %T, want *NDJSONSource fallback", emptySrc)
	}
	if _, err := emptySrc.Next(make(dqruntime.Record, 1)); err != io.EOF {
		t.Fatalf("empty file Next = %v, want io.EOF", err)
	}

	if _, _, err := OpenFileSource(filepath.Join(dir, "missing.ndjson"), ""); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestFileSourcePipeFallsBack routes a non-regular file (a pipe — the
// stdin shape) to the streaming decoder: pipes cannot be mapped.
func TestFileSourcePipeFallsBack(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		w.WriteString(`{"a": "piped"}` + "\n")
		w.Close()
	}()
	src, closer, err := fileSource(r, "ndjson")
	if err != nil {
		t.Fatal(err)
	}
	defer closer()
	if _, ok := src.(*NDJSONSource); !ok {
		t.Fatalf("pipe routed to %T, want *NDJSONSource fallback", src)
	}
	rec, err := src.Next(make(dqruntime.Record, 1))
	if err != nil || rec["a"] != "piped" {
		t.Fatalf("pipe Next: %v, %v", rec, err)
	}
}

// TestCountSourcePreservesSpans pins that the progress wrapper keeps a
// SpanSource's pipelined eligibility and still counts decoded records.
func TestCountSourcePreservesSpans(t *testing.T) {
	doc := `{"a": "1"}` + "\n" + `{"a": "2"}` + "\n"
	var p Progress
	src := CountSource(NewMmapNDJSONSource([]byte(doc)), &p)
	ssrc, ok := src.(SpanSource)
	if !ok {
		t.Fatalf("CountSource dropped SpanSource: %T", src)
	}
	sp, err := ssrc.NextSpan(16)
	if err != nil {
		t.Fatal(err)
	}
	var batch dqruntime.ColumnBatch
	if n := ssrc.DecodeSpan(sp, &batch, func(int64, error) {}); n != 2 {
		t.Fatalf("DecodeSpan n = %d, want 2", n)
	}
	if p.Records() != 2 {
		t.Fatalf("progress records = %d, want 2", p.Records())
	}
	if p.Bytes() != int64(len(doc)) {
		t.Fatalf("progress bytes = %d, want %d", p.Bytes(), len(doc))
	}
}

// TestSpanCoverage pins span arithmetic: spans tile the input exactly,
// first lines are correct, and decode agrees with NextBatch.
func TestSpanCoverage(t *testing.T) {
	doc := trickyNDJSON()
	src := NewMmapNDJSONSource([]byte(doc))
	var total int
	var lastEnd int64
	line := int64(0)
	for {
		sp, err := src.NextSpan(7)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if sp.FirstLine != line+1 {
			t.Fatalf("span first line %d, want %d", sp.FirstLine, line+1)
		}
		line += int64(strings.Count(string(sp.Data), "\n"))
		if len(sp.Data) > 0 && sp.Data[len(sp.Data)-1] != '\n' {
			line++ // final unterminated line
		}
		var batch dqruntime.ColumnBatch
		total += decodeNDJSONSpan(sp, &batch, func(int64, error) {})
		lastEnd += int64(len(sp.Data))
	}
	if lastEnd != int64(len(doc)) {
		t.Fatalf("spans covered %d bytes of %d", lastEnd, len(doc))
	}

	other := NewMmapNDJSONSource([]byte(doc))
	var n int
	for {
		var batch dqruntime.ColumnBatch
		got, err := other.NextBatch(&batch, 64, func(int64, error) {})
		n += got
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != n {
		t.Fatalf("span decode produced %d rows, NextBatch %d", total, n)
	}
}
