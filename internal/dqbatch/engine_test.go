package dqbatch_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	. "github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/iso25012"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/transform"
)

// buildValidator assembles the case-study enforcer's validator: one
// completeness check over five fields plus two bounded precision checks.
func buildValidator(t testing.TB) *dqruntime.Validator {
	t.Helper()
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	enf, err := dqruntime.BuildFromDQSR(dqsr)
	if err != nil {
		t.Fatal(err)
	}
	return enf.Validator()
}

// goodRecord is a record every case-study check passes.
func goodRecord() dqruntime.Record {
	return dqruntime.Record{
		"first_name":          "Grace",
		"last_name":           "Hopper",
		"email_address":       "grace@navy.mil",
		"overall_evaluation":  "2",
		"reviewer_confidence": "3",
	}
}

// badRecord fails precision (evaluation outside [-3,3]).
func badRecord() dqruntime.Record {
	r := goodRecord()
	r["overall_evaluation"] = "7"
	return r
}

func TestRunOverSliceSource(t *testing.T) {
	v := buildValidator(t)
	var recs []dqruntime.Record
	for i := 0; i < 1000; i++ {
		if i%10 == 0 {
			recs = append(recs, badRecord())
		} else {
			recs = append(recs, goodRecord())
		}
	}
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), v, NewSliceSource(recs), Options{
		Workers: 4, ChunkSize: 32, MaxExemplars: 2, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 1000 || res.Passed != 900 || res.Failed != 100 {
		t.Fatalf("records/passed/failed = %d/%d/%d, want 1000/900/100",
			res.Records, res.Passed, res.Failed)
	}
	if res.Malformed != 0 {
		t.Fatalf("malformed = %d", res.Malformed)
	}
	if res.RecordsPerSec <= 0 || res.Seconds <= 0 {
		t.Fatalf("throughput not computed: %+v", res)
	}

	byChar := map[iso25012.Characteristic]CharacteristicStats{}
	for _, cs := range res.Characteristics {
		byChar[cs.Characteristic] = cs
	}
	comp, ok := byChar[iso25012.Completeness]
	if !ok || comp.Checks != 1000 || comp.Passed != 1000 || comp.MinScore != 1 {
		t.Fatalf("completeness stats = %+v", comp)
	}
	prec, ok := byChar[iso25012.Precision]
	if !ok {
		t.Fatal("no precision stats")
	}
	// Two precision checks per record; only the overall_evaluation one
	// fails on bad records.
	if prec.Checks != 2000 || prec.Passed != 1900 || prec.MinScore != 0 {
		t.Fatalf("precision stats = %+v", prec)
	}
	if prec.MeanScore <= 0.9 || prec.MeanScore >= 1 {
		t.Fatalf("precision mean = %v", prec.MeanScore)
	}
	if len(prec.Exemplars) != 2 {
		t.Fatalf("exemplars = %+v, want cap 2", prec.Exemplars)
	}
	for _, ex := range prec.Exemplars {
		if ex.Check != "check_precision" || len(ex.Details) == 0 {
			t.Fatalf("exemplar = %+v", ex)
		}
		if ex.Record < 1 || ex.Record > 1000 || (ex.Record-1)%10 != 0 {
			t.Fatalf("exemplar points at record %d, not a bad one", ex.Record)
		}
	}

	// Progress counters landed in the registry.
	if got := reg.Counter("dqbatch_records_total", "", obs.Labels{"outcome": "pass"}).Value(); got != 900 {
		t.Fatalf("pass counter = %d", got)
	}
	if got := reg.Counter("dqbatch_records_total", "", obs.Labels{"outcome": "fail"}).Value(); got != 100 {
		t.Fatalf("fail counter = %d", got)
	}
	if got := reg.Histogram("dqbatch_batch_seconds", "", nil, nil).Count(); got != 1 {
		t.Fatalf("batch histogram count = %d", got)
	}
}

func TestRunNDJSONSourceCountsMalformed(t *testing.T) {
	v := buildValidator(t)
	var b strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&b, `{"first_name":"A","last_name":"B","email_address":"a@b.co","overall_evaluation":%d,"reviewer_confidence":3}`+"\n", i%3-1)
	}
	b.WriteString("this is not json\n")
	b.WriteString("\n") // blank lines are skipped, not malformed
	b.WriteString(`{"first_name":"A","nested":{"x":1}}` + "\n")
	reg := obs.NewRegistry()
	res, err := Run(context.Background(), v, NewNDJSONSource(strings.NewReader(b.String())), Options{
		Workers: 2, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 50 || res.Passed != 50 {
		t.Fatalf("records/passed = %d/%d, want 50/50", res.Records, res.Passed)
	}
	if res.Malformed != 2 {
		t.Fatalf("malformed = %d, want 2", res.Malformed)
	}
	if got := reg.Counter("dqbatch_records_total", "", obs.Labels{"outcome": "error"}).Value(); got != 2 {
		t.Fatalf("error counter = %d", got)
	}
}

func TestRunNDJSONScalarRendering(t *testing.T) {
	// Numbers and booleans arrive as the string a form would deliver.
	src := NewNDJSONSource(strings.NewReader(
		`{"score":-2,"ratio":1.5,"flag":true,"name":"x"}` + "\n"))
	rec := dqruntime.Record{"stale": "gone"}
	rec, err := src.Next(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := dqruntime.Record{"score": "-2", "ratio": "1.5", "flag": "true", "name": "x"}
	if len(rec) != len(want) {
		t.Fatalf("rec = %v (stale keys must be cleared)", rec)
	}
	for k, v := range want {
		if rec[k] != v {
			t.Fatalf("rec[%q] = %q, want %q", k, rec[k], v)
		}
	}
}

func TestRunCSVSource(t *testing.T) {
	v := buildValidator(t)
	csv := "first_name,last_name,email_address,overall_evaluation,reviewer_confidence\n" +
		"Grace,Hopper,grace@navy.mil,2,3\n" +
		"Alan,Turing,alan@bletchley.uk,9,3\n" + // precision failure
		"short,row\n" + // malformed: wrong field count
		"Ada,Lovelace,ada@analytical.engine,-1,5\n"
	res, err := Run(context.Background(), v, NewCSVSource(strings.NewReader(csv)), Options{
		Workers: 2, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 3 || res.Passed != 2 || res.Failed != 1 || res.Malformed != 1 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunEmptyInput(t *testing.T) {
	v := buildValidator(t)
	res, err := Run(context.Background(), v, NewNDJSONSource(strings.NewReader("")), Options{
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || len(res.Characteristics) != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestResultWriteTextAndJSONShape(t *testing.T) {
	v := buildValidator(t)
	res, err := Run(context.Background(), v,
		NewSliceSource([]dqruntime.Record{goodRecord(), badRecord()}),
		Options{Workers: 1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	res.WriteText(&b)
	out := b.String()
	for _, want := range []string{"2 records", "passed 1, failed 1", "Precision", "check_precision"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}
