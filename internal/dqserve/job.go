package dqserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
)

// Job lifecycle states. A job moves queued → running → one of the three
// terminal states; a server restart moves an interrupted running job back
// to queued (resume) because its input is staged and validation is
// deterministic.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobOptions are the per-job engine knobs, mirroring `dqwebre batch`
// flags one for one so the served report can be byte-identical to the
// CLI's. Durations travel as strings ("24h") and are validated at submit.
type JobOptions struct {
	Workers        int      `json:"workers,omitempty"`
	Exemplars      int      `json:"exemplars,omitempty"`
	Rows           bool     `json:"rows,omitempty"`
	DecodeErrors   int      `json:"decode_errors,omitempty"`
	Context        string   `json:"context,omitempty"`
	Unique         []string `json:"unique,omitempty"`
	UniqueMaxExact int      `json:"unique_max_exact,omitempty"`
	Timeliness     string   `json:"timeliness,omitempty"`
	Windows        []string `json:"windows,omitempty"`
	MaxAge         string   `json:"max_age,omitempty"`
	MaxSkew        string   `json:"max_skew,omitempty"`
}

// crossChecks assembles the dataset-level stateful checks the options ask
// for — the same construction cmdBatch performs from its flags.
func (o *JobOptions) crossChecks() ([]dqruntime.StatefulCheck, error) {
	var cross []dqruntime.StatefulCheck
	if len(o.Unique) > 0 {
		cross = append(cross, dqruntime.UniquenessCheck{
			Fields:   o.Unique,
			MaxExact: o.UniqueMaxExact,
		})
	}
	if o.Timeliness != "" {
		windows := o.Windows
		if len(windows) == 0 {
			windows = []string{"24h", "168h"}
		}
		var wins []time.Duration
		for _, w := range windows {
			d, err := time.ParseDuration(w)
			if err != nil {
				return nil, fmt.Errorf("bad windows entry %q: %w", w, err)
			}
			wins = append(wins, d)
		}
		var maxAge, maxSkew time.Duration
		var err error
		if o.MaxAge != "" {
			if maxAge, err = time.ParseDuration(o.MaxAge); err != nil {
				return nil, fmt.Errorf("bad max_age %q: %w", o.MaxAge, err)
			}
		}
		if o.MaxSkew != "" {
			if maxSkew, err = time.ParseDuration(o.MaxSkew); err != nil {
				return nil, fmt.Errorf("bad max_skew %q: %w", o.MaxSkew, err)
			}
		}
		cross = append(cross, dqruntime.TimelinessCheck{
			Field:   o.Timeliness,
			Windows: wins,
			MaxAge:  maxAge,
			MaxSkew: maxSkew,
		})
	}
	return cross, nil
}

// Job is one validation job: a staged input stream plus the model and
// options it runs under. All mutable fields are guarded by mu; progress is
// written by the engine's reader goroutine and read by anyone.
type Job struct {
	ID         string
	ModelRef   string // user-facing reference ("inline" for staged models)
	ModelPath  string // resolved file the enforcer loads
	Format     string // "ndjson" or "csv"
	Opts       JobOptions
	InputPath  string
	InputBytes int64
	Created    time.Time

	progress dqbatch.Progress
	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu         sync.Mutex
	state      string
	errMsg     string
	started    time.Time
	finished   time.Time
	result     *dqbatch.Result
	reportJSON []byte
	cancelRun  context.CancelFunc
	slotHeld   bool
	// inQueue is true while the job occupies a space in the queue channel.
	// A job cancelled while queued keeps its admission slot until a worker
	// drains its ghost, so freed capacity can never outrun channel space.
	inQueue  bool
	terminal bool
	// crashed marks an abort()-simulated kill: the runner must leave the
	// on-disk state untouched, as a SIGKILL would.
	crashed bool
}

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's (possibly partial) result; nil before the
// engine produced one.
func (j *Job) Result() *dqbatch.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Records returns how many input records the job has validated so far.
func (j *Job) Records() int64 { return j.progress.Records() }

// statusDoc is the GET /v1/jobs/{id} body.
type statusDoc struct {
	ID          string     `json:"id"`
	Model       string     `json:"model"`
	Format      string     `json:"format"`
	State       string     `json:"state"`
	Error       string     `json:"error,omitempty"`
	InputBytes  int64      `json:"input_bytes"`
	RecordsRead int64      `json:"records_read"`
	ByteOffset  int64      `json:"byte_offset"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
}

// status snapshots the job for the API.
func (j *Job) status() statusDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := statusDoc{
		ID:          j.ID,
		Model:       j.ModelRef,
		Format:      j.Format,
		State:       j.state,
		Error:       j.errMsg,
		InputBytes:  j.InputBytes,
		RecordsRead: j.progress.Records(),
		ByteOffset:  j.progress.Bytes(),
		Created:     j.Created,
	}
	if !j.started.IsZero() {
		t := j.started
		doc.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		doc.Finished = &t
	}
	return doc
}

// Per-job staging files, all named <id><suffix> inside StagingDir.
const (
	manifestSuffix   = ".job"
	inputSuffix      = ".input"
	modelSuffix      = ".model"
	checkpointSuffix = ".ckpt"
	reportSuffix     = ".report.json"
)

// modelRefInline is the user-facing model reference of a job that shipped
// its own model in the multipart body. Inline model files are per-job, so
// their enforcers are never cached.
const modelRefInline = "inline"

func stagingPath(dir, id, suffix string) string {
	return filepath.Join(dir, id+suffix)
}

// manifest is the persisted form of a Job.
type manifest struct {
	ID         string     `json:"id"`
	ModelRef   string     `json:"model"`
	ModelPath  string     `json:"model_path"`
	Format     string     `json:"format"`
	Options    JobOptions `json:"options"`
	State      string     `json:"state"`
	Error      string     `json:"error,omitempty"`
	InputBytes int64      `json:"input_bytes"`
	Created    time.Time  `json:"created"`
	Started    time.Time  `json:"started"`
	Finished   time.Time  `json:"finished"`
}

// checkpoint is the persisted progress of a job: how much input is durably
// staged (advanced chunk by chunk during the upload) and how far
// validation has read (advanced on the checkpoint interval while the job
// runs). Offsets are record-aligned — they come from the sources'
// ByteOffset, not raw reader position.
type checkpoint struct {
	StagedBytes    int64 `json:"staged_bytes"`
	StagedComplete bool  `json:"staged_complete"`
	Records        int64 `json:"records_read"`
	ByteOffset     int64 `json:"byte_offset"`
}

// writeJSONAtomic persists v at path via tmp+fsync+rename, then syncs the
// directory, so readers (and the resume scan after a crash or power loss)
// never observe a torn, empty or missing document — the same durability
// the staged input itself gets from stageTo.
func writeJSONAtomic(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

func saveManifest(dir string, j *Job) error {
	j.mu.Lock()
	m := manifest{
		ID:         j.ID,
		ModelRef:   j.ModelRef,
		ModelPath:  j.ModelPath,
		Format:     j.Format,
		Options:    j.Opts,
		State:      j.state,
		Error:      j.errMsg,
		InputBytes: j.InputBytes,
		Created:    j.Created,
		Started:    j.started,
		Finished:   j.finished,
	}
	j.mu.Unlock()
	return writeJSONAtomic(stagingPath(dir, j.ID, manifestSuffix), m)
}

func saveCheckpoint(dir, id string, ck checkpoint) error {
	return writeJSONAtomic(stagingPath(dir, id, checkpointSuffix), ck)
}

func loadCheckpoint(dir, id string) (checkpoint, error) {
	var ck checkpoint
	data, err := os.ReadFile(stagingPath(dir, id, checkpointSuffix))
	if err != nil {
		return ck, err
	}
	return ck, json.Unmarshal(data, &ck)
}

// loadJob reconstructs a job from its staged manifest (and report, when
// one was persisted).
func loadJob(dir, id string) (*Job, error) {
	data, err := os.ReadFile(stagingPath(dir, id, manifestSuffix))
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest %s: %w", id, err)
	}
	j := &Job{
		ID:         m.ID,
		ModelRef:   m.ModelRef,
		ModelPath:  m.ModelPath,
		Format:     m.Format,
		Opts:       m.Options,
		InputPath:  stagingPath(dir, id, inputSuffix),
		InputBytes: m.InputBytes,
		Created:    m.Created,
		done:       make(chan struct{}),
		state:      m.State,
		errMsg:     m.Error,
		started:    m.Started,
		finished:   m.Finished,
	}
	if m.State == StateDone || m.State == StateFailed || m.State == StateCancelled {
		j.terminal = true
		close(j.done)
	}
	if report, err := os.ReadFile(stagingPath(dir, id, reportSuffix)); err == nil {
		j.reportJSON = report
		var res dqbatch.Result
		if err := json.Unmarshal(report, &res); err == nil {
			// Duration is excluded from the JSON contract; rebuild it so a
			// restored job's text rendering still shows the wall clock.
			res.Duration = time.Duration(res.Seconds * float64(time.Second))
			j.result = &res
		}
	}
	return j, nil
}

// storageError marks a server-side staging fault (creating, writing or
// syncing staging files) as distinct from a request-side failure, so the
// submit handler can answer 5xx instead of blaming the client.
type storageError struct{ err error }

func (e storageError) Error() string { return e.err.Error() }
func (e storageError) Unwrap() error { return e.err }

// stageTo copies r to path, calling onChunk with the durable offset every
// chunkBytes of staged input (the file is synced first, so the offset
// never overstates what a crash would preserve). Only a clean io.EOF ends
// the copy successfully: net/http yields io.ErrUnexpectedEOF when a
// client disconnects mid-body on a Content-Length request (multipart does
// the same for a truncated part), and that MUST fail the submission — a
// truncated upload can never be sealed and validated as if it were
// complete. File-side faults come back wrapped in storageError; reader
// errors propagate as-is. Returns the bytes staged.
func stageTo(path string, r io.Reader, chunkBytes int, onChunk func(offset int64) error) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, storageError{err}
	}
	buf := make([]byte, chunkBytes)
	var off, sinceSync int64
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if _, werr := f.Write(buf[:n]); werr != nil {
				f.Close()
				return off, storageError{werr}
			}
			off += int64(n)
			sinceSync += int64(n)
			if onChunk != nil && sinceSync >= int64(chunkBytes) {
				sinceSync = 0
				if serr := f.Sync(); serr != nil {
					f.Close()
					return off, storageError{serr}
				}
				if cerr := onChunk(off); cerr != nil {
					f.Close()
					return off, cerr
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return off, rerr
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return off, storageError{err}
	}
	if err := f.Close(); err != nil {
		return off, storageError{err}
	}
	return off, nil
}

// runJob executes one dequeued job end to end: load the (cached)
// enforcer, stream the staged input through the batch engine with
// progress checkpoints, and land the job in a terminal state with its
// report rendered through the same dqbatch.RenderReport path the CLI
// uses.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.state = StateRunning
	j.started = time.Now()
	j.cancelRun = cancel
	j.mu.Unlock()
	defer cancel()
	if err := saveManifest(s.cfg.StagingDir, j); err != nil {
		obs.Logger("dqserve").Warn("persisting running state", "id", j.ID, "err", err)
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	if s.beforeRun != nil {
		s.beforeRun(j)
	}

	ctx, span := obs.StartSpan(ctx, "dqserve.job")
	span.SetAttr("job", j.ID)
	span.SetAttr("model", j.ModelRef)
	defer span.End()

	enf, err := s.enforcer(j.ModelPath, j.ModelRef != modelRefInline)
	if err != nil {
		span.Fail(err)
		s.finishJob(j, StateFailed, nil, nil, fmt.Errorf("loading model: %w", err))
		return
	}
	cross, err := j.Opts.crossChecks()
	if err != nil {
		span.Fail(err)
		s.finishJob(j, StateFailed, nil, nil, err)
		return
	}
	// Staged inputs are always regular files, so submissions and resumes
	// alike pick up the memory-mapped fast path (and its exact byte-offset
	// progress) from the shared constructor; non-mmap platforms fall back
	// to the streaming decoders inside OpenFileSource.
	src, closeIn, err := dqbatch.OpenFileSource(j.InputPath, j.Format)
	if err != nil {
		span.Fail(err)
		s.finishJob(j, StateFailed, nil, nil, fmt.Errorf("opening staged input: %w", err))
		return
	}
	defer closeIn()
	src = dqbatch.CountSource(src, &j.progress)

	// Progress checkpoints: the job's record/offset position lands on disk
	// every interval, so a status probe after a crash-restart can say how
	// far the dead run got before the resume re-runs it.
	stopCk := make(chan struct{})
	ckDone := make(chan struct{})
	go func() {
		defer close(ckDone)
		t := time.NewTicker(s.cfg.CheckpointEvery)
		defer t.Stop()
		for {
			select {
			case <-stopCk:
				return
			case <-t.C:
				_ = saveCheckpoint(s.cfg.StagingDir, j.ID, checkpoint{
					StagedBytes:    j.InputBytes,
					StagedComplete: true,
					Records:        j.progress.Records(),
					ByteOffset:     j.progress.Bytes(),
				})
			}
		}
	}()

	qualityCtx := j.Opts.Context
	if qualityCtx == "" {
		base := filepath.Base(j.ModelPath)
		qualityCtx = strings.TrimSuffix(base, filepath.Ext(base))
	}
	res, runErr := dqbatch.Run(ctx, enf.Validator(), src, dqbatch.Options{
		Workers:         j.Opts.Workers,
		ChunkSize:       s.cfg.BatchChunkSize,
		MaxExemplars:    j.Opts.Exemplars,
		ForceRows:       j.Opts.Rows,
		MaxDecodeErrors: j.Opts.DecodeErrors,
		Registry:        s.reg,
		Quality:         s.quality,
		Context:         qualityCtx,
		CrossRecord:     cross,
	})
	close(stopCk)
	<-ckDone

	j.mu.Lock()
	crashed := j.crashed
	j.mu.Unlock()
	if crashed {
		// Simulated kill: leave the on-disk state mid-flight, as a real
		// crash would, so the restart tests exercise the resume path.
		return
	}

	span.SetAttr("records", int(res.Records))
	switch {
	case runErr == nil:
		s.finishJob(j, StateDone, res, nil, nil)
	case errors.Is(runErr, context.Canceled):
		// The partial report is first-class: rendered and persisted exactly
		// like the CLI's SIGINT partial report.
		s.finishJob(j, StateCancelled, res, nil, runErr)
	default:
		span.Fail(runErr)
		s.finishJob(j, StateFailed, res, nil, runErr)
	}
}

// finishJob lands j in a terminal state exactly once: renders and persists
// the report (when a result exists), persists the manifest and final
// checkpoint, releases the admission slot and closes Done.
func (s *Server) finishJob(j *Job, state string, res *dqbatch.Result, reportJSON []byte, cause error) {
	j.mu.Lock()
	if j.terminal {
		j.mu.Unlock()
		return
	}
	j.terminal = true
	j.state = state
	j.finished = time.Now()
	if cause != nil && !errors.Is(cause, context.Canceled) {
		j.errMsg = cause.Error()
	}
	if res != nil {
		j.result = res
		if reportJSON == nil {
			var buf bytes.Buffer
			if err := dqbatch.RenderReport(&buf, res, "json"); err == nil {
				reportJSON = buf.Bytes()
			}
		}
		j.reportJSON = reportJSON
	}
	var release bool
	if j.slotHeld && !j.inQueue {
		// A job still sitting in the queue channel keeps its slot: freeing
		// it now would admit a replacement submission whose enqueue could
		// block on the channel space the ghost still occupies. The worker
		// releases the slot when it drains the ghost (Server.dequeued).
		j.slotHeld = false
		release = true
	}
	j.mu.Unlock()

	if reportJSON != nil {
		if err := os.WriteFile(stagingPath(s.cfg.StagingDir, j.ID, reportSuffix), reportJSON, 0o644); err != nil {
			obs.Logger("dqserve").Warn("persisting report", "id", j.ID, "err", err)
		}
	}
	if res != nil {
		_ = saveCheckpoint(s.cfg.StagingDir, j.ID, checkpoint{
			StagedBytes:    j.InputBytes,
			StagedComplete: true,
			Records:        j.progress.Records(),
			ByteOffset:     j.progress.Bytes(),
		})
	}
	if err := saveManifest(s.cfg.StagingDir, j); err != nil {
		obs.Logger("dqserve").Warn("persisting terminal state", "id", j.ID, "err", err)
	}
	switch state {
	case StateDone:
		s.jobsCompleted.Inc()
	case StateFailed:
		s.jobsFailed.Inc()
	case StateCancelled:
		s.jobsCancelled.Inc()
	}
	if release {
		s.slots.Release()
	}
	close(j.done)
}
