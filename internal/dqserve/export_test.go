package dqserve

import "time"

// Test-only access to the white-box hooks, so the behavioural tests can
// live in package dqserve_test (which may import internal/cli without a
// cycle) and still saturate the pool and simulate crashes.

// SetBeforeRun installs the worker-side hook that runs after a job is
// dequeued and marked running, before the engine starts. Install before
// Start.
func (s *Server) SetBeforeRun(f func(*Job)) { s.beforeRun = f }

// Abort simulates a SIGKILL: workers stop without any terminal state
// reaching disk, leaving manifests saying "running"/"queued" for the
// restart tests.
func (s *Server) Abort() { s.abort() }

// GCTerminal runs one retention sweep with the given cutoff and returns
// how many terminal jobs it reaped.
func (s *Server) GCTerminal(cutoff time.Time) int { return s.gcTerminal(cutoff) }

// EnforcerCacheSize reports how many model enforcers are cached.
func (s *Server) EnforcerCacheSize() int {
	s.enfMu.Lock()
	defer s.enfMu.Unlock()
	return len(s.enfCache)
}
