// Package dqserve turns the one-shot batch validator into a resident
// validation service: an HTTP job API over the internal/dqbatch engine.
// Clients POST a record stream (NDJSON or CSV) against a model reference
// (or an inline model) and get back a job id; the server spills the input
// to disk, runs it through a bounded worker pool, and serves the exact
// report `dqwebre batch` would have produced — byte-identical, including
// cross-record findings and decode errors, because both render through
// dqbatch.RenderReport over the same engine.
//
// The serving-layer discipline comes from internal/webapp: a per-client
// token bucket sheds hot submitters with 429, a concurrency limiter bounds
// queued-plus-running jobs and sheds the excess with 503, and both export
// their shed counters through internal/obs. Durability comes from the
// staging directory: every job's input is staged with chunk-offset
// checkpoints before it runs, so a server restart re-admits interrupted
// jobs and re-runs them from their staged input — validation is
// deterministic at any worker count, so the resumed report equals an
// uninterrupted run's.
package dqserve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqruntime"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/webapp"
)

// Config assembles a Server. StagingDir and LoadEnforcer are required;
// every other field has a serving-grade default.
type Config struct {
	// StagingDir holds per-job state: staged inputs, manifests, chunk
	// checkpoints and reports. A server restarted against the same
	// directory resumes the jobs it finds there.
	StagingDir string
	// LoadEnforcer loads a model file and assembles its runtime enforcer
	// (the CLI injects its loader, which auto-transforms DQR models to
	// DQSR). Enforcers are cached per model path across jobs.
	LoadEnforcer func(path string) (*dqruntime.Enforcer, error)
	// ModelDir is the directory job-supplied model references resolve in;
	// "" restricts jobs to DefaultModel or inline models.
	ModelDir string
	// DefaultModel is the model path used when a job names none.
	DefaultModel string
	// JobWorkers is the number of jobs validated concurrently; default 1.
	// Each job additionally fans out over its own batch worker pool.
	JobWorkers int
	// MaxJobs bounds queued-plus-running jobs; submissions beyond it are
	// shed with 503. Default 32.
	MaxJobs int
	// RatePerSec/RateBurst apply the per-client token bucket to job
	// submissions (429 beyond); RatePerSec 0 disables it.
	RatePerSec float64
	RateBurst  int
	// CheckpointEvery is the progress-checkpoint interval while a job
	// runs; default 2s.
	CheckpointEvery time.Duration
	// StageChunkBytes is the staging copy granularity: the durable-offset
	// checkpoint advances once per chunk. Default 1 MiB.
	StageChunkBytes int
	// BatchChunkSize overrides the engine's records-per-work-item size
	// (dqbatch.Options.ChunkSize); 0 keeps the engine default.
	BatchChunkSize int
	// RetainFor bounds how long a terminal job — its staging files and its
	// API entry — outlives completion; a janitor sweeps older jobs so a
	// long-running server's disk and job table stay bounded. Default 1h;
	// negative retains terminal jobs forever.
	RetainFor time.Duration
	// MaxBodyBytes caps a submission's request body; larger uploads are
	// rejected with 413 before they can fill the staging disk. Default
	// 4 GiB; negative disables the cap.
	MaxBodyBytes int64
	// Registry receives the server's metrics; nil means obs.Default().
	Registry *obs.Registry
	// Quality receives per-characteristic attribution from every job,
	// served on /debug/quality and exported as dq_score on /metrics; nil
	// builds a fresh 1-minute × 60-window set.
	Quality *obs.SeriesSet
}

// Server is the resident validation service. Create with NewServer, wire
// Handler into an http.Server, call Start, and Drain on shutdown.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	quality *obs.SeriesSet

	// slots bounds queued+running jobs (the admission valve); rate is the
	// per-client token bucket. Both are the webapp limiters, so their shed
	// and in-flight metrics keep the serving-layer names.
	slots *webapp.ConcurrencyLimiter
	rate  *webapp.RateLimiter

	queue    chan *Job
	quit     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool

	mu   sync.Mutex
	jobs map[string]*Job

	enfMu    sync.Mutex
	enfCache map[string]*dqruntime.Enforcer

	jobsSubmitted *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsCancelled *obs.Counter
	jobsResumed   *obs.Counter
	shedQueue     *obs.Counter
	shedRate      *obs.Counter
	queueDepth    *obs.Gauge
	running       *obs.Gauge

	// beforeRun, when non-nil, runs on the worker goroutine after a job is
	// dequeued and before the engine starts — the tests' synchronization
	// point for holding the pool busy deterministically.
	beforeRun func(*Job)
}

// NewServer validates cfg, prepares the staging directory and re-admits
// any resumable jobs found in it. Call Start to begin executing jobs.
func NewServer(cfg Config) (*Server, error) {
	if cfg.StagingDir == "" {
		return nil, fmt.Errorf("dqserve: Config.StagingDir is required")
	}
	if cfg.LoadEnforcer == nil {
		return nil, fmt.Errorf("dqserve: Config.LoadEnforcer is required")
	}
	if err := os.MkdirAll(cfg.StagingDir, 0o755); err != nil {
		return nil, fmt.Errorf("dqserve: staging dir: %w", err)
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 32
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 2 * time.Second
	}
	if cfg.StageChunkBytes <= 0 {
		cfg.StageChunkBytes = 1 << 20
	}
	if cfg.RetainFor == 0 {
		cfg.RetainFor = time.Hour
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 4 << 30
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	quality := cfg.Quality
	if quality == nil {
		quality = obs.NewSeriesSet(time.Minute, 60)
	}

	s := &Server{
		cfg:      cfg,
		reg:      reg,
		quality:  quality,
		slots:    webapp.NewConcurrencyLimiter(cfg.MaxJobs),
		queue:    make(chan *Job, cfg.MaxJobs),
		quit:     make(chan struct{}),
		jobs:     make(map[string]*Job),
		enfCache: make(map[string]*dqruntime.Enforcer),
	}
	s.slots.Instrument(reg)
	if cfg.RatePerSec > 0 {
		s.rate = webapp.NewRateLimiter(cfg.RatePerSec, cfg.RateBurst)
		s.rate.Instrument(reg)
	}

	const jobsHelp = "Validation jobs by lifecycle state transition"
	s.jobsSubmitted = reg.Counter("dqserve_jobs_total", jobsHelp, obs.Labels{"state": "submitted"})
	s.jobsCompleted = reg.Counter("dqserve_jobs_total", jobsHelp, obs.Labels{"state": "completed"})
	s.jobsFailed = reg.Counter("dqserve_jobs_total", jobsHelp, obs.Labels{"state": "failed"})
	s.jobsCancelled = reg.Counter("dqserve_jobs_total", jobsHelp, obs.Labels{"state": "cancelled"})
	s.jobsResumed = reg.Counter("dqserve_jobs_total", jobsHelp, obs.Labels{"state": "resumed"})
	s.shedQueue = reg.Counter("dqserve_jobs_total", jobsHelp, obs.Labels{"state": "shed_queue"})
	s.shedRate = reg.Counter("dqserve_jobs_total", jobsHelp, obs.Labels{"state": "shed_rate"})
	s.queueDepth = reg.Gauge("dqserve_queue_depth", "Jobs waiting for a worker", nil)
	s.running = reg.Gauge("dqserve_jobs_running", "Jobs currently validating", nil)

	if err := s.resumeScan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Start launches the job workers and the retention janitor.
func (s *Server) Start() {
	for i := 0; i < s.cfg.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.cfg.RetainFor > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
}

// janitor periodically reaps terminal jobs older than RetainFor. Without
// it every finished job would pin its staged input, model, checkpoint and
// report on disk (and its entry in the job table) for the life of the
// process.
func (s *Server) janitor() {
	defer s.wg.Done()
	every := s.cfg.RetainFor / 4
	if every > time.Minute {
		every = time.Minute
	}
	if every < 10*time.Millisecond {
		every = 10 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-t.C:
			s.gcTerminal(time.Now().Add(-s.cfg.RetainFor))
		}
	}
}

// gcTerminal drops every terminal job finished before cutoff from the job
// table and removes its staging files. Returns how many jobs it reaped.
func (s *Server) gcTerminal(cutoff time.Time) int {
	s.mu.Lock()
	var reap []*Job
	for id, j := range s.jobs {
		j.mu.Lock()
		if j.terminal && !j.finished.IsZero() && j.finished.Before(cutoff) {
			reap = append(reap, j)
			delete(s.jobs, id)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	for _, j := range reap {
		s.discardStaging(j.ID)
	}
	return len(reap)
}

// Drain stops accepting submissions, lets running jobs finish, and leaves
// queued jobs staged on disk for the next boot to resume. When ctx expires
// first, the remaining running jobs are cancelled (their partial state is
// checkpointed, so they too resume after restart). Drain returns nil when
// every in-flight job completed within the deadline.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	close(s.quit)
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	// Deadline passed with jobs still validating: pull their plugs. The
	// engine drains its pool on cancellation, so the workers still exit
	// cleanly — just with partial, checkpointed results.
	s.cancelRunning()
	<-done
	return fmt.Errorf("dqserve: drain deadline exceeded; running jobs cancelled")
}

// cancelRunning cancels the context of every running job.
func (s *Server) cancelRunning() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == StateRunning && j.cancelRun != nil {
			j.cancelRun()
		}
		j.mu.Unlock()
	}
}

// abort simulates a crash for the restart tests: it cancels every running
// job and stops the workers WITHOUT moving any job to a terminal state on
// disk — manifests keep saying "running"/"queued", exactly what a killed
// process leaves behind.
func (s *Server) abort() {
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		j.crashed = true
		if j.cancelRun != nil {
			j.cancelRun()
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
}

// Registry returns the metric registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Quality returns the windowed quality series backing /debug/quality.
func (s *Server) Quality() *obs.SeriesSet { return s.quality }

// Job returns a job by id, nil when unknown.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// newJobID mints a 12-hex-character job id.
func newJobID() (string, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// resolveModel maps a job's model reference to a readable file path:
// "" means the configured default model, anything else must be a local
// (traversal-free) path under ModelDir.
func (s *Server) resolveModel(ref string) (string, error) {
	if ref == "" {
		if s.cfg.DefaultModel == "" {
			return "", fmt.Errorf("no model given and no default model configured")
		}
		return s.cfg.DefaultModel, nil
	}
	if s.cfg.ModelDir == "" {
		return "", fmt.Errorf("model references are disabled (no model directory configured)")
	}
	if !filepath.IsLocal(ref) {
		return "", fmt.Errorf("model reference %q escapes the model directory", ref)
	}
	path := filepath.Join(s.cfg.ModelDir, ref)
	if _, err := os.Stat(path); err != nil {
		return "", fmt.Errorf("model %q: %w", ref, err)
	}
	return path, nil
}

// enforcer returns the enforcer for a model path, caching it across jobs
// when cache is true. Validators are safe for concurrent use across jobs.
// Inline models are per-job files, so caching their enforcers would add
// one permanently-dead cache entry per submission — callers pass
// cache=false for those and the enforcer dies with the job.
func (s *Server) enforcer(path string, cache bool) (*dqruntime.Enforcer, error) {
	if !cache {
		return s.cfg.LoadEnforcer(path)
	}
	s.enfMu.Lock()
	defer s.enfMu.Unlock()
	if enf, ok := s.enfCache[path]; ok {
		return enf, nil
	}
	enf, err := s.cfg.LoadEnforcer(path)
	if err != nil {
		return nil, err
	}
	s.enfCache[path] = enf
	return enf, nil
}

// enqueue registers the job and hands it to the worker pool. The queue
// channel's capacity equals the slot limiter's, and every channel space is
// matched by a held slot until the worker dequeues (even for jobs
// cancelled while queued — see Server.dequeued), so a send after a
// successful TryAcquire never blocks.
func (s *Server) enqueue(j *Job) {
	s.mu.Lock()
	s.jobs[j.ID] = j
	s.mu.Unlock()
	j.mu.Lock()
	j.inQueue = true
	j.mu.Unlock()
	s.queueDepth.Add(1)
	s.queue <- j
}

// dequeued marks j out of the queue channel and reports whether it still
// needs to run. A job cancelled while queued kept its admission slot so
// freed capacity could never outrun the channel space its ghost occupied;
// that slot is released here, once the ghost has actually left the
// channel.
func (s *Server) dequeued(j *Job) bool {
	j.mu.Lock()
	j.inQueue = false
	if !j.terminal {
		j.mu.Unlock()
		return true
	}
	release := j.slotHeld
	j.slotHeld = false
	j.mu.Unlock()
	if release {
		s.slots.Release()
	}
	return false
}

// worker executes queued jobs until the server drains. The quit check
// comes first so a draining server leaves queued jobs staged for the next
// boot instead of racing to start them.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.queueDepth.Add(-1)
			if s.dequeued(j) {
				s.runJob(j)
			}
		}
	}
}

// resumeScan reloads the staging directory: finished jobs become servable
// again (their reports are on disk), interrupted jobs with fully staged
// input are re-queued, and jobs whose upload the crash cut short are
// failed with their staged byte count — the chunk checkpoint tells us
// exactly how much input survived.
func (s *Server) resumeScan() error {
	entries, err := os.ReadDir(s.cfg.StagingDir)
	if err != nil {
		return fmt.Errorf("dqserve: scanning staging dir: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, manifestSuffix) {
			ids = append(ids, strings.TrimSuffix(name, manifestSuffix))
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		j, err := loadJob(s.cfg.StagingDir, id)
		if err != nil {
			// A torn manifest write (crash mid-rename is excluded by the
			// tmp+rename discipline, but a full disk is not) loses one job,
			// not the server.
			obs.Logger("dqserve").Warn("skipping unreadable job manifest", "id", id, "err", err)
			continue
		}
		switch j.state {
		case StateDone, StateFailed, StateCancelled:
			// loadJob already marked it terminal; it is servable as-is.
			s.mu.Lock()
			s.jobs[j.ID] = j
			s.mu.Unlock()
		case StateQueued, StateRunning:
			ck, err := loadCheckpoint(s.cfg.StagingDir, id)
			if err != nil || !ck.StagedComplete {
				// The upload itself was interrupted: keep what the chunk
				// checkpoint guarantees is durable and fail the job — we
				// cannot validate input we never fully received.
				if err == nil {
					_ = os.Truncate(j.InputPath, ck.StagedBytes)
				}
				s.mu.Lock()
				s.jobs[j.ID] = j
				s.mu.Unlock()
				s.finishJob(j, StateFailed, nil, nil,
					fmt.Errorf("input staging interrupted by server restart (%d bytes staged)", ck.StagedBytes))
				continue
			}
			if !s.slots.TryAcquire() {
				s.mu.Lock()
				s.jobs[j.ID] = j
				s.mu.Unlock()
				s.finishJob(j, StateFailed, nil, nil,
					fmt.Errorf("job capacity exhausted while resuming after restart"))
				continue
			}
			j.slotHeld = true
			j.state = StateQueued
			if err := saveManifest(s.cfg.StagingDir, j); err != nil {
				obs.Logger("dqserve").Warn("persisting resumed job", "id", id, "err", err)
			}
			s.jobsResumed.Inc()
			s.enqueue(j)
		}
	}
	return nil
}
