// Behavioural tests for the dqserve job API. They live in the external
// test package so they can drive the server through internal/cli's model
// loader (the same wiring `dqwebre serve` uses) and compare its reports
// against `dqwebre batch` — the golden-parity contract.
package dqserve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"context"

	"github.com/modeldriven/dqwebre/internal/cli"
	"github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/dqserve"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/xmi"
)

// writeDemoModel marshals the case-study requirements model to dir.
func writeDemoModel(t *testing.T, dir string) string {
	t.Helper()
	e, err := easychair.BuildModel()
	if err != nil {
		t.Fatal(err)
	}
	data, err := xmi.Marshal(e.Model.Model)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "easychair.xml")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// makeNDJSON builds n review records: evaluations span -4..4 so some fail
// the [-3,3] precision check, every 11th repeats an email address (for
// the uniqueness check), and every 97th line is malformed.
func makeNDJSON(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i%97 == 96 {
			b.WriteString("not json\n")
			continue
		}
		email := fmt.Sprintf("r%d@conf.org", i)
		if i%11 == 10 {
			email = "dup@conf.org"
		}
		fmt.Fprintf(&b,
			`{"first_name":"R%d","last_name":"Vee","email_address":"%s","overall_evaluation":%d,"reviewer_confidence":%d}`+"\n",
			i, email, i%9-4, i%5+1)
	}
	return b.String()
}

// testConfig returns a server config against a fresh staging dir and the
// demo model, with fast checkpoints for the restart tests.
func testConfig(t *testing.T) dqserve.Config {
	t.Helper()
	dir := t.TempDir()
	model := writeDemoModel(t, dir)
	return dqserve.Config{
		StagingDir:      filepath.Join(dir, "staging"),
		LoadEnforcer:    cli.LoadEnforcer,
		DefaultModel:    model,
		ModelDir:        filepath.Dir(model),
		CheckpointEvery: 10 * time.Millisecond,
		Registry:        obs.NewRegistry(),
		Quality:         obs.NewSeriesSet(time.Minute, 4),
	}
}

// startServer builds, starts and exposes a server over httptest.
func startServer(t *testing.T, cfg dqserve.Config) (*dqserve.Server, *httptest.Server) {
	t.Helper()
	s, err := dqserve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit POSTs body and returns the response and decoded id (when 202).
func submit(t *testing.T, ts *httptest.Server, query, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs"+query, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return resp.StatusCode, ""
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &acc); err != nil || acc.ID == "" {
		t.Fatalf("submit response not a job: %s", data)
	}
	return resp.StatusCode, acc.ID
}

// get fetches a path and returns status + body.
func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, data
}

// waitDone blocks until the job terminates.
func waitDone(t *testing.T, s *dqserve.Server, id string) *dqserve.Job {
	t.Helper()
	j := s.Job(id)
	if j == nil {
		t.Fatalf("job %s not registered", id)
	}
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not terminate", id)
	}
	return j
}

// normalizeReport parses a report and re-renders it with timing fields
// zeroed, so two runs compare on content alone.
func normalizeReport(t *testing.T, data []byte) string {
	t.Helper()
	var res dqbatch.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("report is not a Result: %v\n%s", err, data)
	}
	res.Seconds, res.RecordsPerSec, res.LatencyP50, res.LatencyP99 = 0, 0, 0, 0
	var buf bytes.Buffer
	if err := dqbatch.RenderReport(&buf, &res, "json"); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServerCLIReportParity is the golden-parity contract: the same
// records validated through the job API and through `dqwebre batch` yield
// byte-identical JSON reports (after zeroing timing), across worker
// counts and both evaluation paths, cross-record findings and decode
// errors included.
func TestServerCLIReportParity(t *testing.T) {
	cfg := testConfig(t)
	s, ts := startServer(t, cfg)
	records := makeNDJSON(2000)
	recFile := filepath.Join(t.TempDir(), "records.ndjson")
	if err := os.WriteFile(recFile, []byte(records), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		for _, rows := range []bool{false, true} {
			name := fmt.Sprintf("workers=%d rows=%v", workers, rows)

			query := fmt.Sprintf("?workers=%d&unique=email_address", workers)
			cliArgs := []string{"batch", "-model", cfg.DefaultModel, "-in", recFile,
				"-workers", fmt.Sprint(workers), "-unique", "email_address", "-report", "json"}
			if rows {
				query += "&rows=1"
				cliArgs = append(cliArgs, "-rows")
			}
			code, id := submit(t, ts, query, records)
			if code != http.StatusAccepted {
				t.Fatalf("%s: submit = %d", name, code)
			}
			j := waitDone(t, s, id)
			if j.State() != dqserve.StateDone {
				t.Fatalf("%s: state = %s", name, j.State())
			}
			status, serverReport := get(t, ts, "/v1/jobs/"+id+"/report")
			if status != http.StatusOK {
				t.Fatalf("%s: report = %d: %s", name, status, serverReport)
			}

			var cliOut strings.Builder
			if err := cli.Run(cliArgs, &cliOut); err != nil {
				t.Fatalf("%s: cli batch: %v", name, err)
			}

			serverNorm := normalizeReport(t, serverReport)
			cliNorm := normalizeReport(t, []byte(cliOut.String()))
			if serverNorm != cliNorm {
				t.Fatalf("%s: server and CLI reports diverge:\nserver: %s\ncli: %s",
					name, serverNorm, cliNorm)
			}
			// The reports must carry real content, not agree on emptiness.
			var res dqbatch.Result
			if err := json.Unmarshal(serverReport, &res); err != nil {
				t.Fatal(err)
			}
			if res.Records == 0 || res.Failed == 0 || res.Malformed == 0 ||
				len(res.DecodeErrors) == 0 || len(res.CrossRecords) == 0 {
				t.Fatalf("%s: report lacks expected content: %+v", name, res)
			}
		}
	}

	// The whole run's quality attribution is visible on the obs surface.
	status, metrics := get(t, ts, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics = %d", status)
	}
	for _, want := range []string{
		`dqserve_jobs_total{state="submitted"} 4`,
		`dqserve_jobs_total{state="completed"} 4`,
		"dq_score{",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	status, quality := get(t, ts, "/debug/quality")
	if status != http.StatusOK || !strings.Contains(string(quality), "characteristic") {
		t.Fatalf("/debug/quality = %d: %s", status, quality)
	}
}

// TestInlineModelSubmission validates the multipart path: a job shipping
// its own model file produces the same report as one referencing the
// server-side copy.
func TestInlineModelSubmission(t *testing.T) {
	cfg := testConfig(t)
	s, ts := startServer(t, cfg)
	records := makeNDJSON(300)

	modelData, err := os.ReadFile(cfg.DefaultModel)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	mp, _ := mw.CreateFormFile("model", "easychair.xml")
	mp.Write(modelData)
	rp, _ := mw.CreateFormFile("records", "records.ndjson")
	rp.Write([]byte(records))
	mw.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("multipart submit = %d: %s", resp.StatusCode, data)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &acc); err != nil {
		t.Fatal(err)
	}
	j := waitDone(t, s, acc.ID)
	if j.State() != dqserve.StateDone {
		t.Fatalf("state = %s", j.State())
	}
	_, inlineReport := get(t, ts, "/v1/jobs/"+acc.ID+"/report")

	code, refID := submit(t, ts, "", records)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", code)
	}
	waitDone(t, s, refID)
	_, refReport := get(t, ts, "/v1/jobs/"+refID+"/report")
	if normalizeReport(t, inlineReport) != normalizeReport(t, refReport) {
		t.Fatal("inline-model report diverges from server-model report")
	}
	// Only the reference job's server-side model is cached: an inline
	// model is a per-job file, and caching its enforcer would leak one
	// dead entry per submission.
	if n := s.EnforcerCacheSize(); n != 1 {
		t.Fatalf("enforcer cache size = %d, want 1 (inline models must not be cached)", n)
	}
}

// TestQueueBoundSheds503 saturates the admission valve: with one worker
// held busy and the queued+running bound at 2, a third submission is shed
// with 503 and counted on /metrics.
func TestQueueBoundSheds503(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxJobs = 2
	cfg.JobWorkers = 1
	s, err := dqserve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	s.SetBeforeRun(func(*dqserve.Job) {
		startedOnce.Do(func() { close(started) })
		<-release
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	records := makeNDJSON(50)
	code, idA := submit(t, ts, "", records)
	if code != http.StatusAccepted {
		t.Fatalf("submit A = %d", code)
	}
	<-started // A is on the worker, holding it
	code, idB := submit(t, ts, "", records)
	if code != http.StatusAccepted {
		t.Fatalf("submit B = %d", code)
	}
	code, _ = submit(t, ts, "", records)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit C = %d, want 503", code)
	}
	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(string(metrics), `dqserve_jobs_total{state="shed_queue"} 1`) {
		t.Fatalf("/metrics missing shed_queue count:\n%s", metrics)
	}

	close(release)
	for _, id := range []string{idA, idB} {
		if j := waitDone(t, s, id); j.State() != dqserve.StateDone {
			t.Fatalf("job %s state = %s", id, j.State())
		}
	}
}

// TestRateLimitSheds429 exercises the per-client token bucket on the
// submit path.
func TestRateLimitSheds429(t *testing.T) {
	cfg := testConfig(t)
	cfg.RatePerSec = 0.001
	cfg.RateBurst = 1
	s, ts := startServer(t, cfg)
	records := makeNDJSON(20)

	code, id := submit(t, ts, "", records)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	code, _ = submit(t, ts, "", records)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", code)
	}
	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(string(metrics), `dqserve_jobs_total{state="shed_rate"} 1`) {
		t.Fatalf("/metrics missing shed_rate count:\n%s", metrics)
	}
	waitDone(t, s, id)
}

// TestCancelRunningJobYieldsPartialReport cancels a job mid-stream and
// checks the partial report is well-formed, marked cancelled, and
// rendered through the shared dqbatch.RenderReport path — the same bytes
// the CLI's SIGINT partial rendering would produce for this Result.
func TestCancelRunningJobYieldsPartialReport(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	s, ts := startServer(t, cfg)

	const total = 300000
	records := makeNDJSON(total)
	code, id := submit(t, ts, "?workers=1&unique=email_address", records)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	// Wait until the engine is demonstrably mid-stream.
	deadline := time.Now().Add(20 * time.Second)
	for s.Job(id).Records() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started reading")
		}
		time.Sleep(200 * time.Microsecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}

	j := waitDone(t, s, id)
	if j.State() != dqserve.StateCancelled {
		t.Fatalf("state = %s, want cancelled", j.State())
	}
	status, report := get(t, ts, "/v1/jobs/"+id+"/report")
	if status != http.StatusOK {
		t.Fatalf("report = %d: %s", status, report)
	}
	var res dqbatch.Result
	if err := json.Unmarshal(report, &res); err != nil {
		t.Fatalf("partial report is not a Result: %v", err)
	}
	if res.Records == 0 || res.Records >= total {
		t.Fatalf("partial records = %d, want mid-stream (0 < n < %d)", res.Records, total)
	}
	if len(res.Characteristics) == 0 {
		t.Fatal("partial report lost its characteristics")
	}

	// Pin the served bytes to the shared renderer over the job's Result:
	// this is exactly what internal/cli/batch.go does with its partial
	// result on SIGINT.
	var want bytes.Buffer
	if err := dqbatch.RenderReport(&want, j.Result(), "json"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(report, want.Bytes()) {
		t.Fatal("served partial report diverges from RenderReport over the job's Result")
	}
	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(string(metrics), `dqserve_jobs_total{state="cancelled"} 1`) {
		t.Fatalf("/metrics missing cancelled count:\n%s", metrics)
	}
}

// TestRestartResumesInterruptedJob kills the server mid-validation and
// restarts it on the same staging dir: the job is re-admitted, re-run
// from its staged input, and its report equals an uninterrupted run's.
func TestRestartResumesInterruptedJob(t *testing.T) {
	cfg := testConfig(t)
	cfg.JobWorkers = 1
	s1, err := dqserve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())

	const total = 300000
	records := makeNDJSON(total)
	code, id := submit(t, ts1, "?workers=1&unique=email_address", records)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	deadline := time.Now().Add(20 * time.Second)
	for s1.Job(id).Records() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never started reading")
		}
		time.Sleep(200 * time.Microsecond)
	}
	s1.Abort() // simulated SIGKILL: on-disk state stays mid-flight
	ts1.Close()

	// The dead run's progress checkpoints are record-aligned positions a
	// status probe can report after restart.
	if j := s1.Job(id); j.State() != dqserve.StateRunning {
		t.Fatalf("aborted in-memory state = %s, want running", j.State())
	}

	s2, ts2 := startServer(t, cfg)
	j2 := s2.Job(id)
	if j2 == nil {
		t.Fatal("restarted server lost the job")
	}
	j := waitDone(t, s2, id)
	if j.State() != dqserve.StateDone {
		t.Fatalf("resumed state = %s", j.State())
	}
	_, resumedReport := get(t, ts2, "/v1/jobs/"+id+"/report")

	_, metrics := get(t, ts2, "/metrics")
	if !strings.Contains(string(metrics), `dqserve_jobs_total{state="resumed"} 1`) {
		t.Fatalf("/metrics missing resumed count:\n%s", metrics)
	}

	// Uninterrupted reference run on the restarted server.
	code, refID := submit(t, ts2, "?workers=1&unique=email_address", records)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", code)
	}
	waitDone(t, s2, refID)
	_, refReport := get(t, ts2, "/v1/jobs/"+refID+"/report")
	if normalizeReport(t, resumedReport) != normalizeReport(t, refReport) {
		t.Fatal("resumed report diverges from uninterrupted run")
	}
}

// TestRestartFailsJobWithInterruptedStaging fabricates what a crash
// mid-upload leaves behind: a queued manifest whose checkpoint never
// sealed. The restart scan must fail the job (we cannot validate input we
// never fully received) and truncate the input to the durable bytes.
func TestRestartFailsJobWithInterruptedStaging(t *testing.T) {
	cfg := testConfig(t)
	if err := os.MkdirAll(cfg.StagingDir, 0o755); err != nil {
		t.Fatal(err)
	}
	id := "deadbeef0000"
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(cfg.StagingDir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(id+".input", "{\"a\":\"1\"}\n{\"a\":")
	writeFile(id+".ckpt", `{"staged_bytes":10,"staged_complete":false}`)
	manifest := fmt.Sprintf(
		`{"id":%q,"model":"default","model_path":%q,"format":"ndjson","state":"queued","created":"2026-01-01T00:00:00Z"}`,
		id, cfg.DefaultModel)
	writeFile(id+".job", manifest)

	s, ts := startServer(t, cfg)
	j := s.Job(id)
	if j == nil {
		t.Fatal("interrupted job not registered")
	}
	if j.State() != dqserve.StateFailed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	status, body := get(t, ts, "/v1/jobs/"+id)
	if status != http.StatusOK || !strings.Contains(string(body), "staging interrupted") {
		t.Fatalf("status doc = %d: %s", status, body)
	}
	info, err := os.Stat(filepath.Join(cfg.StagingDir, id+".input"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 10 {
		t.Fatalf("input truncated to %d bytes, want 10", info.Size())
	}
}

// TestRestartServesFinishedReports checks terminal jobs survive restarts
// byte-for-byte: the persisted report is what the new process serves.
func TestRestartServesFinishedReports(t *testing.T) {
	cfg := testConfig(t)
	s1, ts1 := startServer(t, cfg)
	code, id := submit(t, ts1, "", makeNDJSON(200))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, s1, id)
	_, before := get(t, ts1, "/v1/jobs/"+id+"/report")
	ts1.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, ts2 := startServer(t, cfg)
	status, after := get(t, ts2, "/v1/jobs/"+id+"/report")
	if status != http.StatusOK {
		t.Fatalf("restarted report = %d", status)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("restart changed the served report bytes")
	}
	// Text rendering still works on the restored Result.
	status, text := get(t, ts2, "/v1/jobs/"+id+"/report?format=text")
	if status != http.StatusOK || !strings.Contains(string(text), "records") {
		t.Fatalf("text report = %d: %s", status, text)
	}
}

// errReader yields err on every Read — the tail of a truncated upload.
type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// TestTruncatedUploadRejected drives the submit handler with a body that
// ends in io.ErrUnexpectedEOF — what net/http yields when a client
// disconnects mid-body on a Content-Length request. The submission must
// fail with a client error (a truncated upload must never be sealed,
// validated and served as a confident report over partial data), leave no
// staging files behind, and release its admission slot.
func TestTruncatedUploadRejected(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxJobs = 1
	s, _ := startServer(t, cfg)

	body := io.MultiReader(
		strings.NewReader(makeNDJSON(50)),
		errReader{err: io.ErrUnexpectedEOF},
	)
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", body)
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("truncated submit = %d, want 400: %s", rec.Code, rec.Body)
	}
	entries, err := os.ReadDir(cfg.StagingDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("truncated submission left staging files: %v", entries)
	}
	// The slot came back: with MaxJobs=1 a good submission still fits.
	rec2 := httptest.NewRecorder()
	req2 := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(makeNDJSON(20)))
	s.Handler().ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusAccepted {
		t.Fatalf("follow-up submit = %d, want 202: %s", rec2.Code, rec2.Body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec2.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, acc.ID)
}

// TestCancelQueuedJobDoesNotWedgeSubmit reproduces the cancelled-ghost
// overflow: cancelling queued jobs and resubmitting used to fill the
// queue channel with cancelled ghosts until `s.queue <- j` blocked the
// submit handler. A cancelled-but-queued job now keeps its admission slot
// (followers shed with an immediate 503 instead of blocking) and the slot
// frees only when a worker drains the ghost.
func TestCancelQueuedJobDoesNotWedgeSubmit(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxJobs = 2
	cfg.JobWorkers = 1
	s, err := dqserve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	started := make(chan struct{})
	var startedOnce sync.Once
	s.SetBeforeRun(func(*dqserve.Job) {
		startedOnce.Do(func() { close(started) })
		<-release
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The timeout is the regression detector: with the old behaviour the
	// submit handler blocks forever on the ghost-filled channel.
	client := &http.Client{Timeout: 10 * time.Second}
	post := func() (int, string) {
		t.Helper()
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/x-ndjson",
			strings.NewReader(makeNDJSON(30)))
		if err != nil {
			t.Fatalf("submit blocked: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var acc struct {
			ID string `json:"id"`
		}
		_ = json.Unmarshal(data, &acc)
		return resp.StatusCode, acc.ID
	}
	cancel := func(id string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %s = %d", id, resp.StatusCode)
		}
	}

	code, runID := post()
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	<-started // the worker is now held mid-job

	// Repeatedly cancel whatever queues and resubmit: each round used to
	// leave a ghost in the channel, overflowing its capacity (2) on the
	// third round and wedging the handler.
	for round := 0; round < 4; round++ {
		code, id := post()
		switch code {
		case http.StatusAccepted:
			if j := s.Job(id); j.State() != dqserve.StateQueued {
				t.Fatalf("round %d: state = %s, want queued", round, j.State())
			}
			cancel(id)
		case http.StatusServiceUnavailable:
			// A previous ghost still holds its slot — the admission valve
			// says no instead of letting the enqueue block.
		default:
			t.Fatalf("round %d: submit = %d", round, code)
		}
	}

	close(release)
	if j := waitDone(t, s, runID); j.State() != dqserve.StateDone {
		t.Fatalf("running job state = %s", j.State())
	}
	// With the worker free the ghosts drain and their slots return: a new
	// submission is admitted and completes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, id := post()
		if code == http.StatusAccepted {
			if j := waitDone(t, s, id); j.State() != dqserve.StateDone {
				t.Fatalf("post-drain job state = %s", j.State())
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slots never freed after ghosts drained: submit = %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBodySizeCapSheds413 checks the submission body cap: an upload past
// MaxBodyBytes is rejected with 413 (before it can fill the staging
// disk), its slot comes back, and a small job still runs.
func TestBodySizeCapSheds413(t *testing.T) {
	cfg := testConfig(t)
	cfg.MaxBodyBytes = 512
	s, ts := startServer(t, cfg)

	code, _ := submit(t, ts, "", makeNDJSON(200))
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit = %d, want 413", code)
	}
	code, id := submit(t, ts, "", `{"first_name":"A","last_name":"B","email_address":"a@b.c"}`+"\n")
	if code != http.StatusAccepted {
		t.Fatalf("small submit = %d, want 202", code)
	}
	waitDone(t, s, id)
}

// TestTerminalJobGC checks the retention sweep: a terminal job older than
// the cutoff disappears from the API and its staging files (input,
// checkpoint, report, manifest) are removed; fresher jobs survive.
func TestTerminalJobGC(t *testing.T) {
	cfg := testConfig(t)
	s, ts := startServer(t, cfg)
	code, id := submit(t, ts, "", makeNDJSON(100))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, s, id)

	if n := s.GCTerminal(time.Now().Add(-time.Hour)); n != 0 {
		t.Fatalf("sweep reaped %d fresh jobs, want 0", n)
	}
	if n := s.GCTerminal(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("sweep reaped %d jobs, want 1", n)
	}
	if status, _ := get(t, ts, "/v1/jobs/"+id); status != http.StatusNotFound {
		t.Fatalf("reaped job still addressable: %d", status)
	}
	entries, err := os.ReadDir(cfg.StagingDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), id) {
			t.Fatalf("staging file survived GC: %s", e.Name())
		}
	}
}

// TestDrainCompletesJobsAndLeaksNoGoroutines submits work, drains, and
// checks the worker pool (and the engine pools under it) disappear.
func TestDrainCompletesJobsAndLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig(t)
	cfg.JobWorkers = 2
	s, ts := startServer(t, cfg)
	var ids []string
	for i := 0; i < 3; i++ {
		code, id := submit(t, ts, "", makeNDJSON(500))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if j := waitDone(t, s, id); j.State() != dqserve.StateDone {
			t.Fatalf("job %s state = %s", id, j.State())
		}
	}
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines %d > %d+2 after drain\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
