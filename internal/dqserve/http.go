package dqserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/modeldriven/dqwebre/internal/dqbatch"
	"github.com/modeldriven/dqwebre/internal/webapp"
)

// Handler returns the job API:
//
//	POST   /v1/jobs            submit a record stream; 202 + job id
//	GET    /v1/jobs/{id}        status and progress
//	GET    /v1/jobs/{id}/report the finished (or partial) report
//	DELETE /v1/jobs/{id}        cancel; the partial report stays available
//	GET    /healthz             liveness probe
//	GET    /metrics             Prometheus exposition (incl. dqserve_jobs_total)
//	GET    /debug/quality       windowed DQ score series across jobs
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/quality", s.handleQuality)
	return mux
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// apiError sends a JSON error body.
func apiError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseOptions builds JobOptions from the submit query parameters,
// validating everything that can fail later so a bad job is rejected at
// the door, not at run time.
func parseOptions(r *http.Request) (JobOptions, error) {
	q := r.URL.Query()
	var o JobOptions
	var err error
	intParam := func(name string) (int, error) {
		v := q.Get(name)
		if v == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q", name, v)
		}
		return n, nil
	}
	if o.Workers, err = intParam("workers"); err != nil {
		return o, err
	}
	if o.Exemplars, err = intParam("exemplars"); err != nil {
		return o, err
	}
	if o.DecodeErrors, err = intParam("decode_errors"); err != nil {
		return o, err
	}
	if o.UniqueMaxExact, err = intParam("unique_max_exact"); err != nil {
		return o, err
	}
	o.Rows = q.Get("rows") == "1" || q.Get("rows") == "true"
	o.Context = q.Get("context")
	o.Unique = splitList(q.Get("unique"))
	o.Timeliness = q.Get("timeliness")
	o.Windows = splitList(q.Get("windows"))
	o.MaxAge = q.Get("max_age")
	o.MaxSkew = q.Get("max_skew")
	if _, err := o.crossChecks(); err != nil {
		return o, err
	}
	return o, nil
}

// splitList splits a comma-separated list, trimming whitespace and
// dropping empties.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// recordFormat picks the job's record format: explicit param first, then
// the Content-Type, then NDJSON.
func recordFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "ndjson", "csv":
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("unknown record format %q (ndjson or csv)", f)
	}
	if mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type")); err == nil && mt == "text/csv" {
		return "csv", nil
	}
	return "ndjson", nil
}

// handleSubmit admits one job: rate limit, then the queued+running bound,
// then spill the body to the staging dir with chunk-offset checkpoints,
// persist the manifest and enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.rate != nil && !s.rate.Allow(webapp.ClientKey(r)) {
		s.shedRate.Inc()
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusTooManyRequests, "rate limit exceeded, retry later")
		return
	}
	opts, err := parseOptions(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	format, err := recordFormat(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The admission valve: beyond MaxJobs queued+running jobs the
	// submission is shed immediately — before any staging I/O — so an
	// overloaded server stays cheap to say no to.
	if !s.slots.TryAcquire() {
		s.shedQueue.Inc()
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusServiceUnavailable, "job queue full, retry later")
		return
	}

	id, err := newJobID()
	if err != nil {
		s.slots.Release()
		apiError(w, http.StatusInternalServerError, "minting job id: %v", err)
		return
	}
	j := &Job{
		ID:        id,
		Format:    format,
		Opts:      opts,
		InputPath: stagingPath(s.cfg.StagingDir, id, inputSuffix),
		Created:   time.Now(),
		done:      make(chan struct{}),
		state:     StateQueued,
		slotHeld:  true,
	}

	if s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	if err := s.stageSubmission(j, r); err != nil {
		s.slots.Release()
		s.discardStaging(id)
		var maxErr *http.MaxBytesError
		var stErr storageError
		switch {
		case errors.As(err, &maxErr):
			apiError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte submission cap", maxErr.Limit)
		case errors.As(err, &stErr):
			// Server-side staging fault (disk, fsync, checkpoint write):
			// the submission itself was fine and a retry may succeed, so
			// never blame the client with a 4xx.
			apiError(w, http.StatusInternalServerError, "%v", err)
		default:
			apiError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if err := saveManifest(s.cfg.StagingDir, j); err != nil {
		s.slots.Release()
		s.discardStaging(id)
		apiError(w, http.StatusInternalServerError, "persisting job: %v", err)
		return
	}
	s.jobsSubmitted.Inc()
	s.enqueue(j)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":     j.ID,
		"state":  StateQueued,
		"status": "/v1/jobs/" + j.ID,
		"report": "/v1/jobs/" + j.ID + "/report",
	})
}

// stageSubmission resolves the job's model and spills its record stream to
// disk. A multipart body carries an inline model ("model" part) alongside
// the records ("records" part); any other body is the record stream
// itself, with the model named by the ?model= reference (or the server's
// default model).
func (s *Server) stageSubmission(j *Job, r *http.Request) error {
	mt, params, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if strings.HasPrefix(mt, "multipart/") {
		return s.stageMultipart(j, r, params["boundary"])
	}
	modelPath, err := s.resolveModel(r.URL.Query().Get("model"))
	if err != nil {
		return err
	}
	j.ModelPath = modelPath
	j.ModelRef = r.URL.Query().Get("model")
	if j.ModelRef == "" {
		j.ModelRef = "default"
	}
	return s.stageInput(j, r.Body)
}

// stageMultipart stages an inline-model submission: the "model" part is
// written beside the input and becomes the job's model file.
func (s *Server) stageMultipart(j *Job, r *http.Request, boundary string) error {
	if boundary == "" {
		return fmt.Errorf("multipart submission without boundary")
	}
	mr := multipart.NewReader(r.Body, boundary)
	var haveModel, haveRecords bool
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A truncated multipart body (client disconnect mid-upload)
			// surfaces here or from the part reader below; either way the
			// submission fails rather than validating partial input.
			return fmt.Errorf("reading multipart submission: %w", err)
		}
		switch part.FormName() {
		case "model":
			modelPath := stagingPath(s.cfg.StagingDir, j.ID, modelSuffix)
			if _, err := stageTo(modelPath, part, s.cfg.StageChunkBytes, nil); err != nil {
				return fmt.Errorf("staging inline model: %w", err)
			}
			j.ModelPath = modelPath
			j.ModelRef = modelRefInline
			haveModel = true
		case "records":
			if !haveModel {
				return fmt.Errorf(`multipart submission must carry the "model" part before "records"`)
			}
			if err := s.stageInput(j, part); err != nil {
				return err
			}
			haveRecords = true
		default:
			return fmt.Errorf("unknown multipart part %q (want model, records)", part.FormName())
		}
	}
	if !haveModel || !haveRecords {
		return fmt.Errorf(`multipart submission needs both a "model" and a "records" part`)
	}
	return nil
}

// stageInput spills the record stream to the job's input file, advancing
// the chunk-offset checkpoint as each chunk becomes durable and sealing it
// with StagedComplete once the whole body is down. A job whose checkpoint
// never sealed cannot resume — the restart scan fails it with the staged
// byte count.
func (s *Server) stageInput(j *Job, body io.Reader) error {
	dir := s.cfg.StagingDir
	n, err := stageTo(j.InputPath, body, s.cfg.StageChunkBytes, func(off int64) error {
		if err := saveCheckpoint(dir, j.ID, checkpoint{StagedBytes: off}); err != nil {
			return storageError{err}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("staging input: %w", err)
	}
	j.InputBytes = n
	if err := saveCheckpoint(dir, j.ID, checkpoint{StagedBytes: n, StagedComplete: true}); err != nil {
		return storageError{err}
	}
	return nil
}

// discardStaging removes a job's staging files (failed submissions and
// retention-reaped terminal jobs alike).
func (s *Server) discardStaging(id string) {
	for _, suffix := range []string{inputSuffix, modelSuffix, checkpointSuffix, reportSuffix, manifestSuffix} {
		_ = os.Remove(stagingPath(s.cfg.StagingDir, id, suffix))
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleReport serves the job's report — JSON by default (the persisted
// bytes, so restarts serve identical documents) or ?format=text rendered
// through the same dqbatch.RenderReport path as the CLI.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "no such job")
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "text" {
		apiError(w, http.StatusBadRequest, "unknown report format %q (text or json)", format)
		return
	}
	j.mu.Lock()
	terminal := j.terminal
	state := j.state
	errMsg := j.errMsg
	report := j.reportJSON
	res := j.result
	j.mu.Unlock()
	if !terminal {
		apiError(w, http.StatusConflict, "job is %s; report not ready", state)
		return
	}
	if res == nil || report == nil {
		apiError(w, http.StatusConflict, "job %s without a report: %s", state, errMsg)
		return
	}
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = dqbatch.RenderReport(w, res, "text")
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(report)
}

// handleCancel cancels a job. A queued job is cancelled outright; a
// running one has its context pulled and the handler waits for the engine
// to drain and the partial report to land before answering. Cancelling a
// finished job is a no-op that reports its state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		apiError(w, http.StatusNotFound, "no such job")
		return
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.mu.Unlock()
		s.finishJob(j, StateCancelled, nil, nil, nil)
	case StateRunning:
		cancel := j.cancelRun
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		select {
		case <-j.done:
		case <-r.Context().Done():
			apiError(w, http.StatusGatewayTimeout, "cancellation still draining")
			return
		}
	default:
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"jobs":    jobs,
		"queued":  len(s.queue),
		"running": int(s.running.Value()),
	})
}

// handleMetrics serves the registry in the Prometheus text exposition,
// mirroring the dq_score window export the easychair server does so one
// scrape config covers both.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.quality.Export(s.reg,
		"dq_score", "Windowed mean DQ check score, by characteristic, context and window",
		"dq_check_failures", "Windowed DQ check failure count, by characteristic, context and window")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	data, err := json.MarshalIndent(s.quality.Report("dq_score", 0), "", "  ")
	if err != nil {
		apiError(w, http.StatusInternalServerError, "quality report: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(append(data, '\n'))
}
