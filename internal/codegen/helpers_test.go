package codegen

import "testing"

func TestHelpers(t *testing.T) {
	if sqlIdent("Information of Reviewer!") != "information_of_reviewer" {
		t.Fatalf("sqlIdent = %q", sqlIdent("Information of Reviewer!"))
	}
	if sqlIdent("___") != "t" {
		t.Fatalf("sqlIdent empty = %q", sqlIdent("___"))
	}
	if goIdent("check-precision") != "check_precision" {
		t.Fatalf("goIdent = %q", goIdent("check-precision"))
	}
	if goIdent("") != "check" {
		t.Fatal("goIdent empty")
	}
	if quoteList([]string{"a", "b"}) != `"a", "b"` {
		t.Fatalf("quoteList = %q", quoteList([]string{"a", "b"}))
	}
}
