package codegen_test

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	. "github.com/modeldriven/dqwebre/internal/codegen"
	"github.com/modeldriven/dqwebre/internal/dqwebre"
	"github.com/modeldriven/dqwebre/internal/easychair"
	"github.com/modeldriven/dqwebre/internal/transform"
)

func TestSQLDDLForCaseStudy(t *testing.T) {
	e := easychair.MustBuildModel()
	ddl, err := SQLDDL(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CREATE TABLE information_of_reviewer",
		"CREATE TABLE evaluation_scores",
		"first_name TEXT NOT NULL",
		"email_address TEXT NOT NULL",
		"overall_evaluation INTEGER CHECK (overall_evaluation BETWEEN -3 AND 3)",
		"reviewer_confidence INTEGER CHECK (reviewer_confidence BETWEEN 0 AND 5)",
		"stored_by TEXT, -- DQ metadata",
		"stored_date TIMESTAMP, -- DQ metadata",
		"security_level INTEGER, -- DQ metadata",
		"CREATE TABLE dq_audit",
		"action TEXT NOT NULL CHECK (action IN ('store', 'modify', 'read', 'denied'))",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL lacks %q\n%s", want, ddl)
		}
	}
}

func TestSQLDDLWithoutTraceabilityOmitsAudit(t *testing.T) {
	// A model whose metadata does not include stored_by gets no audit table.
	rm := dqwebre.NewRequirementsModel("minimal")
	content := rm.Content("profiles", "nickname")
	rm.DQMetadata("confidentiality metadata", []string{"security_level"}, content)
	if err := rm.Err(); err != nil {
		t.Fatal(err)
	}
	ddl, err := SQLDDL(rm)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ddl, "dq_audit") {
		t.Fatal("audit table generated without traceability metadata")
	}
	if !strings.Contains(ddl, "security_level INTEGER -- DQ metadata") {
		t.Fatalf("metadata column missing:\n%s", ddl)
	}
}

func TestHTMLFormForCaseStudy(t *testing.T) {
	e := easychair.MustBuildModel()
	form, err := HTMLForm(e.Model, "Add all data as result of review")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<form method=\"post\"",
		"<legend>information of reviewer</legend>",
		"<legend>evaluation scores</legend>",
		`<input type="text" name="first_name" required`,
		`<input type="email" name="email_address" required`,
		`<input type="number" name="overall_evaluation" min="-3" max="3" required`,
		`<input type="number" name="reviewer_confidence" min="0" max="5" required`,
	} {
		if !strings.Contains(form, want) {
			t.Errorf("form lacks %q\n%s", want, form)
		}
	}
}

func TestHTMLFormUnknownCase(t *testing.T) {
	e := easychair.MustBuildModel()
	if _, err := HTMLForm(e.Model, "nope"); err == nil {
		t.Fatal("unknown InformationCase accepted")
	}
}

func TestGoValidatorCompilesAndCovers(t *testing.T) {
	e := easychair.MustBuildModel()
	dqsr, _, err := transform.RunDQR2DQSR(e.Model)
	if err != nil {
		t.Fatal(err)
	}
	src, err := GoValidator(dqsr, "reviewchecks")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package reviewchecks",
		"func check_completeness(r Record) bool",
		"func check_precision(r Record, field string, lo, hi int64) bool",
		`"first_name"`,
		`"overall_evaluation"`,
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source lacks %q\n%s", want, src)
		}
	}
	// The generated file must parse as valid Go.
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "gen.go", src, 0); err != nil {
		t.Fatalf("generated source does not parse: %v\n%s", err, src)
	}
}
