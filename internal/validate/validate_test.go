package validate

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/uml"
)

func newUseCaseModel(t testing.TB) (*uml.Model, *uml.Builder) {
	t.Helper()
	m := uml.NewModel("t", uml.Metamodel())
	return m, uml.NewBuilder(m)
}

func TestConformancePassIncluded(t *testing.T) {
	m, _ := newUseCaseModel(t)
	// An Include without its mandatory addition violates conformance.
	m.MustCreate(uml.MetaInclude)
	rep := New(m).Run()
	if rep.OK() {
		t.Fatal("should report conformance violation")
	}
	if len(rep.ByRule("conformance/lower-bound")) != 1 {
		t.Fatalf("diagnostics = %v", rep.Diagnostics)
	}
	// SkipConformance suppresses it.
	rep = New(m).SkipConformance().Run()
	if !rep.OK() {
		t.Fatal("SkipConformance should hide the structural violation")
	}
}

func TestRulePassAndFail(t *testing.T) {
	m, b := newUseCaseModel(t)
	b.UseCase(uml.MetaUseCase, "named")
	anon := b.UseCase(uml.MetaUseCase, "")
	anon.Unset("name")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	rep := New(m).AddRules(Rule{
		ID:    "usecase-named",
		Class: uml.MetaUseCase,
		Expr:  "not self.name.oclIsUndefined() and self.name.size() > 0",
		Doc:   "Use cases carry names.",
	}).Run()
	if rep.OK() {
		t.Fatal("anonymous use case should fail")
	}
	ds := rep.ByRule("usecase-named")
	if len(ds) != 1 || ds[0].Element != anon {
		t.Fatalf("diagnostics = %v", ds)
	}
	if ds[0].Message != "Use cases carry names." {
		t.Fatalf("message = %q", ds[0].Message)
	}
	if rep.Checked < 2 {
		t.Fatalf("Checked = %d", rep.Checked)
	}
}

func TestRuleUnknownClass(t *testing.T) {
	m, _ := newUseCaseModel(t)
	rep := New(m).AddRules(Rule{ID: "r", Class: "Ghost", Expr: "true"}).Run()
	if rep.OK() {
		t.Fatal("unknown class should produce a diagnostic")
	}
	if !strings.Contains(rep.Diagnostics[0].Message, "unknown class") {
		t.Fatalf("message = %q", rep.Diagnostics[0].Message)
	}
}

func TestRuleEvalErrorSurfacesAsDiagnostic(t *testing.T) {
	m, b := newUseCaseModel(t)
	b.UseCase(uml.MetaUseCase, "x")
	rep := New(m).AddRules(Rule{
		ID:    "broken",
		Class: uml.MetaUseCase,
		Expr:  "self.nonexistent > 1",
	}).Run()
	if rep.OK() {
		t.Fatal("broken rule should produce a diagnostic")
	}
	if !strings.Contains(rep.Diagnostics[0].Message, "rule evaluation failed") {
		t.Fatalf("message = %q", rep.Diagnostics[0].Message)
	}
}

func TestWarningSeverityDoesNotFailReport(t *testing.T) {
	m, b := newUseCaseModel(t)
	b.UseCase(uml.MetaUseCase, "x")
	rep := New(m).AddRules(Rule{
		ID:       "style",
		Class:    uml.MetaUseCase,
		Expr:     "self.name.size() > 10",
		Doc:      "names should be descriptive",
		Severity: Warning,
	}).Run()
	if !rep.OK() {
		t.Fatal("warnings must not fail the report")
	}
	if len(rep.Diagnostics) != 1 || rep.Diagnostics[0].Severity != Warning {
		t.Fatalf("diagnostics = %v", rep.Diagnostics)
	}
	if len(rep.Errors()) != 0 {
		t.Fatal("Errors() should be empty")
	}
}

func TestProfileConstraints(t *testing.T) {
	p := uml.NewProfile("P")
	s := p.AddStereotype("Tagged", uml.MustClass(uml.MetaUseCase))
	s.AddConstraint("self-named", "not self.name.oclIsUndefined()", "tagged elements are named")

	m, b := newUseCaseModel(t)
	m.ApplyProfile(p)
	good := b.UseCase(uml.MetaUseCase, "ok")
	bad := b.UseCase(uml.MetaUseCase, "")
	bad.Unset("name")
	plain := b.UseCase(uml.MetaUseCase, "") // not stereotyped: rule must not fire
	plain.Unset("name")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	m.MustApply(good, s)
	m.MustApply(bad, s)

	rep := New(m).AddProfileConstraints(p).Run()
	if rep.OK() {
		t.Fatal("stereotyped anonymous element should fail")
	}
	ds := rep.ByRule("P::Tagged::self-named")
	if len(ds) != 1 || ds[0].Element != bad {
		t.Fatalf("diagnostics = %v", ds)
	}
}

func TestHasStereotypeAvailableInRules(t *testing.T) {
	p := uml.NewProfile("P")
	a := p.AddStereotype("A", uml.MustClass(uml.MetaUseCase))
	bStereo := p.AddStereotype("B", uml.MustClass(uml.MetaUseCase))
	// Every «A» use case must include a «B» use case.
	a.AddConstraint("includes-b",
		"self.include->exists(i | i.addition.hasStereotype('B'))",
		"«A» includes a «B»")

	m, b := newUseCaseModel(t)
	m.ApplyProfile(p)
	base := b.UseCase(uml.MetaUseCase, "base")
	target := b.UseCase(uml.MetaUseCase, "target")
	b.Include(base, target)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	m.MustApply(base, a)

	rep := New(m).AddProfileConstraints(p).Run()
	if rep.OK() {
		t.Fatal("target lacks «B»; constraint must fail")
	}
	m.MustApply(target, bStereo)
	rep = New(m).AddProfileConstraints(p).Run()
	if !rep.OK() {
		for _, d := range rep.Diagnostics {
			t.Log(d)
		}
		t.Fatal("after stereotyping target, constraint must hold")
	}
}

func TestTaggedValueAvailableInRules(t *testing.T) {
	p := uml.NewProfile("P")
	s := p.AddStereotype("Bounded", uml.MustClass(uml.MetaClass))
	s.AddTag("upper_bound", uml.IntegerType(), false)
	s.AddConstraint("bound-positive",
		"self.taggedValue('upper_bound').oclIsUndefined() or self.taggedValue('upper_bound') > 0",
		"upper_bound must be positive when set")

	m, b := newUseCaseModel(t)
	m.ApplyProfile(p)
	c := b.Class(uml.MetaClass, "C")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	app := m.MustApply(c, s)
	app.MustSetTag("upper_bound", metamodel.Int(-1))
	rep := New(m).AddProfileConstraints(p).Run()
	if rep.OK() {
		t.Fatal("negative bound should fail")
	}
	app.MustSetTag("upper_bound", metamodel.Int(5))
	rep = New(m).AddProfileConstraints(p).Run()
	if !rep.OK() {
		t.Fatal("positive bound should pass")
	}
}

func TestDiagnosticOrderingDeterministic(t *testing.T) {
	m, b := newUseCaseModel(t)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		uc := b.UseCase(uml.MetaUseCase, n)
		_ = uc
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	rule := Rule{ID: "always-fail", Class: uml.MetaUseCase, Expr: "false", Doc: "nope"}
	rep1 := New(m).AddRules(rule).Run()
	rep2 := New(m).AddRules(rule).SetWorkers(1).Run()
	if len(rep1.Diagnostics) != 3 || len(rep2.Diagnostics) != 3 {
		t.Fatalf("diagnostics = %d / %d", len(rep1.Diagnostics), len(rep2.Diagnostics))
	}
	for i := range rep1.Diagnostics {
		if rep1.Diagnostics[i].Element != rep2.Diagnostics[i].Element {
			t.Fatal("ordering differs between concurrent and serial runs")
		}
	}
	// Sorted by element label.
	labels := []string{}
	for _, d := range rep1.Diagnostics {
		labels = append(labels, d.Element.GetString("name"))
	}
	if labels[0] != "alpha" || labels[1] != "mid" || labels[2] != "zeta" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestSeverityString(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" || Info.String() != "info" {
		t.Fatal("severity strings wrong")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: Error, Rule: "r", Message: "m"}
	if !strings.Contains(d.String(), "<model>") {
		t.Fatalf("String = %q", d.String())
	}
}

func TestRulesOverSubclassExtent(t *testing.T) {
	// A rule on Classifier fires for Actors and UseCases alike.
	m, b := newUseCaseModel(t)
	b.Actor("a")
	b.UseCase(uml.MetaUseCase, "u")
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	rep := New(m).AddRules(Rule{
		ID:    "classifier-named",
		Class: uml.MetaClassifier,
		Expr:  "not self.name.oclIsUndefined()",
	}).Run()
	if !rep.OK() {
		t.Fatal("both named")
	}
	// 2 jobs evaluated.
	if rep.Checked != 2 {
		t.Fatalf("Checked = %d, want 2", rep.Checked)
	}
}

func TestCheckRulesStaticPass(t *testing.T) {
	m, _ := newUseCaseModel(t)
	eng := New(m).AddRules(
		Rule{ID: "good", Class: uml.MetaUseCase, Expr: "not self.name.oclIsUndefined()"},
		Rule{ID: "typo", Class: uml.MetaUseCase, Expr: "self.nmae.size() > 0"},
		Rule{ID: "ghost", Class: "Ghost", Expr: "true"},
	)
	errs := eng.CheckRules()
	if len(errs) != 2 {
		t.Fatalf("errors = %v", errs)
	}
	for _, err := range errs {
		msg := err.Error()
		if !strings.Contains(msg, "typo") && !strings.Contains(msg, "ghost") {
			t.Errorf("unexpected error %v", err)
		}
	}
}

func TestCheckRulesStereotypeContexts(t *testing.T) {
	p := uml.NewProfile("SC")
	s := p.AddStereotype("Marked", uml.MustClass(uml.MetaUseCase))
	s.AddConstraint("ok", "self.include->isEmpty()", "no includes")
	s.AddConstraint("bad", "self.nonexistent", "broken")
	m, _ := newUseCaseModel(t)
	m.ApplyProfile(p)
	eng := New(m).AddProfileConstraints(p)
	errs := eng.CheckRules()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "bad") {
		t.Fatalf("errors = %v", errs)
	}
	// A rule scoped to a stereotype from an unapplied profile.
	eng2 := New(uml.NewModel("x", uml.Metamodel())).AddRules(
		Rule{ID: "r", Class: "@stereotype:Marked", Expr: "true"})
	if errs := eng2.CheckRules(); len(errs) != 1 {
		t.Fatalf("unapplied profile errors = %v", errs)
	}
}

func TestRunReportsUnparseableRule(t *testing.T) {
	m, b := newUseCaseModel(t)
	b.UseCase(uml.MetaUseCase, "x")
	rep := New(m).AddRules(Rule{ID: "syntax", Class: uml.MetaUseCase, Expr: "self.("}).Run()
	if rep.OK() {
		t.Fatal("unparseable rule should fail the report")
	}
	if !strings.Contains(rep.Diagnostics[0].Message, "does not parse") {
		t.Fatalf("message = %q", rep.Diagnostics[0].Message)
	}
}
