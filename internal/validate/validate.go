// Package validate is the model validation engine: it checks a model
// against (1) the structural conformance rules of its metamodel
// (multiplicities, referential integrity), (2) metamodel well-formedness
// rules expressed in OCL, and (3) the constraints of any applied UML
// profiles (the paper's Table 3 constraints), producing a flat list of
// diagnostics rather than failing on the first problem — an analyst fixes a
// requirements model iteratively.
package validate

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/modeldriven/dqwebre/internal/metamodel"
	"github.com/modeldriven/dqwebre/internal/obs"
	"github.com/modeldriven/dqwebre/internal/ocl"
	"github.com/modeldriven/dqwebre/internal/uml"
)

// Severity grades a diagnostic.
type Severity int

// Diagnostic severities.
const (
	// Error marks a violated constraint: the model is not well-formed.
	Error Severity = iota
	// Warning marks a questionable but legal construct.
	Warning
	// Info marks a neutral observation.
	Info
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Info:
		return "info"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Rule is an OCL well-formedness rule scoped to instances of one class.
type Rule struct {
	// ID names the rule in diagnostics.
	ID string
	// Class is the (simple or dotted) name of the constrained metaclass.
	Class string
	// Expr is the boolean OCL expression with `self` bound per instance.
	Expr string
	// Doc is the prose reading of the rule.
	Doc string
	// Severity of a violation; Error when zero-valued.
	Severity Severity
}

// Diagnostic is one validation finding.
type Diagnostic struct {
	// Severity grades the finding.
	Severity Severity
	// Rule identifies the violated rule ("conformance" rules come from the
	// metamodel kernel; others carry the Rule.ID or stereotype constraint).
	Rule string
	// Element is the offending model element (nil for model-level findings).
	Element *metamodel.Object
	// Message describes the finding.
	Message string
	// Doc is the prose reading of the violated rule, when available.
	Doc string
}

// String renders the diagnostic for reports.
func (d Diagnostic) String() string {
	loc := "<model>"
	if d.Element != nil {
		loc = d.Element.Label()
	}
	return fmt.Sprintf("%s: %s: [%s] %s", d.Severity, loc, d.Rule, d.Message)
}

// Report is the outcome of a validation run.
type Report struct {
	// Diagnostics holds all findings, errors first, in deterministic order.
	Diagnostics []Diagnostic
	// Checked is the number of (element, rule) pairs evaluated.
	Checked int
}

// OK reports whether the run produced no Error-severity diagnostics.
func (r *Report) OK() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return false
		}
	}
	return true
}

// Errors returns only the Error-severity diagnostics.
func (r *Report) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			out = append(out, d)
		}
	}
	return out
}

// ByRule returns the diagnostics for one rule id.
func (r *Report) ByRule(id string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Rule == id {
			out = append(out, d)
		}
	}
	return out
}

// Engine validates one model. Construct with New, add rule sources, Run.
type Engine struct {
	model *uml.Model
	rules []Rule
	// skipConformance disables the kernel structural pass (used by callers
	// that already ran it).
	skipConformance bool
	// workers bounds rule-evaluation concurrency; defaults to GOMAXPROCS.
	workers int
}

// New creates an engine for the given profiled model.
func New(m *uml.Model) *Engine {
	return &Engine{model: m}
}

// AddRules appends metamodel well-formedness rules.
func (e *Engine) AddRules(rules ...Rule) *Engine {
	e.rules = append(e.rules, rules...)
	return e
}

// AddProfileConstraints converts the constraints of every stereotype of the
// given profile into rules evaluated on the elements carrying the
// stereotype.
func (e *Engine) AddProfileConstraints(p *uml.Profile) *Engine {
	for _, s := range p.Stereotypes() {
		for _, c := range s.Constraints() {
			e.rules = append(e.rules, Rule{
				ID:       fmt.Sprintf("%s::%s::%s", p.Name(), s.Name(), c.Name),
				Class:    "@stereotype:" + s.Name(),
				Expr:     c.OCL,
				Doc:      c.Doc,
				Severity: Error,
			})
		}
	}
	return e
}

// SkipConformance disables the structural pass.
func (e *Engine) SkipConformance() *Engine {
	e.skipConformance = true
	return e
}

// SetWorkers bounds concurrency; n < 1 resets to the default.
func (e *Engine) SetWorkers(n int) *Engine {
	e.workers = n
	return e
}

// CheckRules statically checks every registered rule's OCL against the
// metamodel: rules must parse and navigate only existing properties of
// their context class. Stereotype-scoped rules are checked against each of
// the stereotype's base metaclasses. It returns one error per broken rule.
func (e *Engine) CheckRules() []error {
	var out []error
	mm := e.model.Metamodel()
	for _, r := range e.rules {
		var contexts []*metamodel.Class
		if sName, ok := stereotypeTarget(r.Class); ok {
			s, found := e.model.ResolveStereotype(sName)
			if !found {
				out = append(out, fmt.Errorf("rule %s: stereotype %q not in any applied profile", r.ID, sName))
				continue
			}
			contexts = s.Bases()
			// The heavyweight counterpart: a metaclass named after the
			// stereotype, when the metamodel defines one. Constraints often
			// navigate its features behind an oclIsKindOf guard.
			if c, found := mm.FindClass(sName); found {
				contexts = append(contexts, c)
			}
		} else {
			c, found := mm.FindClass(r.Class)
			if !found {
				out = append(out, fmt.Errorf("rule %s: unknown class %q", r.ID, r.Class))
				continue
			}
			contexts = []*metamodel.Class{c}
		}
		// A rule is statically sound if it checks against at least one of
		// its context classes (a stereotype may extend several bases with
		// different features).
		var firstErr error
		ok := false
		for _, ctx := range contexts {
			if _, err := ocl.CheckContext(r.Expr, ctx, mm); err == nil {
				ok = true
				break
			} else if firstErr == nil {
				firstErr = err
			}
		}
		if !ok {
			out = append(out, fmt.Errorf("rule %s: %w", r.ID, firstErr))
		}
	}
	return out
}

// Run executes all passes and returns the report. OCL evaluation errors
// (e.g. a rule navigating a property the element lacks) surface as
// diagnostics, not Go errors: a broken rule must not hide other findings.
func (e *Engine) Run() *Report { return e.RunContext(context.Background()) }

// RunContext is Run with observability: when the context carries an active
// span the engine nests "validate.run" with per-pass child spans
// (conformance, rules) and annotates job and worker counts; run and
// finding totals are always counted on the process-wide metric registry.
func (e *Engine) RunContext(ctx context.Context) *Report {
	ctx, span := obs.StartSpan(ctx, "validate.run")
	span.SetAttr("model", e.model.Name())
	rep := e.run(ctx)
	span.SetAttr("checked", rep.Checked)
	span.SetAttr("findings", len(rep.Diagnostics))
	span.End()

	reg := obs.Default()
	reg.Counter("validate_runs_total", "model validation runs", nil).Inc()
	for _, d := range rep.Diagnostics {
		reg.Counter("validate_findings_total", "validation diagnostics produced, by severity",
			obs.Labels{"severity": d.Severity.String()}).Inc()
	}
	return rep
}

func (e *Engine) run(ctx context.Context) *Report {
	rep := &Report{}

	// Memoize class extents for the duration of the run: the model is not
	// mutated while validating, and global rules (allInstances) otherwise
	// rescan it per element.
	var extentMu sync.Mutex
	extents := map[*metamodel.Class][]*metamodel.Object{}
	extent := func(c *metamodel.Class) []*metamodel.Object {
		extentMu.Lock()
		defer extentMu.Unlock()
		if objs, ok := extents[c]; ok {
			return objs
		}
		objs := e.model.Model.AllInstances(c)
		extents[c] = objs
		return objs
	}

	if !e.skipConformance {
		_, cspan := obs.StartSpan(ctx, "conformance")
		violations := 0
		for _, v := range metamodel.CheckConformance(e.model.Model) {
			rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
				Severity: Error,
				Rule:     "conformance/" + string(v.Rule),
				Element:  v.Object,
				Message:  v.Message,
			})
			rep.Checked++
			violations++
		}
		cspan.SetAttr("violations", violations)
		cspan.End()
	}

	// One immutable Env is shared by every worker: variable bindings travel
	// through compiled-program frames, not per-job Vars maps.
	env := &ocl.Env{
		Model:  e.model.Model,
		Extent: extent,
		Stereotypes: func(obj *metamodel.Object) []string {
			return e.model.StereotypeNames(obj)
		},
		TaggedValue: func(obj *metamodel.Object, name string) metamodel.Value {
			for _, a := range e.model.Applications(obj) {
				if v, ok := a.Tag(name); ok {
					return v
				}
			}
			return nil
		},
	}

	// Build the work list: (element, rule) pairs.
	type job struct {
		obj  *metamodel.Object
		rule Rule
		prog *ocl.Program
	}
	compileOpts := ocl.CompileOptions{Meta: e.model.Metamodel()}
	var jobs []job
	for _, r := range e.rules {
		// Compile each rule once through the shared program cache;
		// per-element re-parsing (or even re-walking the AST) dominates
		// large runs.
		prog, parseErr := ocl.CompileString(r.Expr, compileOpts)
		if parseErr != nil {
			rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
				Severity: Error,
				Rule:     r.ID,
				Message:  fmt.Sprintf("rule does not parse: %v", parseErr),
				Doc:      r.Doc,
			})
			continue
		}
		var targets []*metamodel.Object
		if sName, ok := stereotypeTarget(r.Class); ok {
			targets = e.model.StereotypedBy(sName)
		} else {
			c, found := e.model.Metamodel().FindClass(r.Class)
			if !found {
				rep.Diagnostics = append(rep.Diagnostics, Diagnostic{
					Severity: Error,
					Rule:     r.ID,
					Message:  fmt.Sprintf("rule targets unknown class %q", r.Class),
					Doc:      r.Doc,
				})
				continue
			}
			targets = e.model.Model.AllInstances(c)
		}
		for _, o := range targets {
			jobs = append(jobs, job{obj: o, rule: r, prog: prog})
		}
	}
	rep.Checked += len(jobs)

	_, rspan := obs.StartSpan(ctx, "rules")
	rspan.SetAttr("jobs", len(jobs))

	workers := e.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([][]Diagnostic, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = evalJob(jobs[i].obj, jobs[i].rule, jobs[i].prog, env)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	rspan.SetAttr("workers", workers)
	rspan.End()

	for _, ds := range results {
		rep.Diagnostics = append(rep.Diagnostics, ds...)
	}
	sortDiagnostics(rep.Diagnostics)
	return rep
}

// evalJob checks one element against one compiled rule. The Env is shared
// and read-only; self rides in the program's pooled frame.
func evalJob(o *metamodel.Object, r Rule, prog *ocl.Program, env *ocl.Env) []Diagnostic {
	ok, err := prog.EvalBoolSelf(o, env)
	if err != nil {
		return []Diagnostic{{
			Severity: Error,
			Rule:     r.ID,
			Element:  o,
			Message:  fmt.Sprintf("rule evaluation failed: %v", err),
			Doc:      r.Doc,
		}}
	}
	if !ok {
		msg := r.Doc
		if msg == "" {
			msg = fmt.Sprintf("constraint %q violated", r.Expr)
		}
		return []Diagnostic{{
			Severity: r.Severity,
			Rule:     r.ID,
			Element:  o,
			Message:  msg,
			Doc:      r.Doc,
		}}
	}
	return nil
}

func stereotypeTarget(class string) (string, bool) {
	const prefix = "@stereotype:"
	if len(class) > len(prefix) && class[:len(prefix)] == prefix {
		return class[len(prefix):], true
	}
	return "", false
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Severity != ds[j].Severity {
			return ds[i].Severity < ds[j].Severity
		}
		if ds[i].Rule != ds[j].Rule {
			return ds[i].Rule < ds[j].Rule
		}
		li, lj := "", ""
		if ds[i].Element != nil {
			li = ds[i].Element.Label()
		}
		if ds[j].Element != nil {
			lj = ds[j].Element.Label()
		}
		return li < lj
	})
}
