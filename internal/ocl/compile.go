package ocl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// This file lowers a parsed AST into a tree of Go closures for
// compile-once/execute-many evaluation. The tree-walking interpreter in
// eval.go stays the reference semantics ("the oracle"); compiled Programs
// reuse the same shared helpers (dispatchCall, evalArrowOp, runIterator,
// navigateValue, ...) so the two paths cannot drift, and a differential
// harness replays the fuzz corpus through both to prove it.
//
// What compilation buys over interpretation:
//   - no per-call map[string]any copy: variables live in slot-indexed
//     frames, so binding self or an iterator item is one array write;
//   - closure dispatch instead of an AST type-switch per node;
//   - type names in oclIsKindOf/allInstances and enum literals resolved
//     once at compile time against CompileOptions.Meta;
//   - constant folding with boolean short-circuit specialization;
//   - a per-Program sync.Pool of frames, so steady-state evaluation is
//     allocation-free.

// code is a compiled expression: it evaluates against a Frame.
type code func(fr *Frame) (any, error)

// CompileOptions configures compilation.
type CompileOptions struct {
	// Meta, when non-nil, resolves type names and enum literals at compile
	// time. Expressions compiled without Meta resolve them at run time
	// against the Env, exactly like the interpreter.
	Meta *metamodel.Package
	// Vars declares the external variables the program may read (beyond
	// "self", which is always declared). Declared variables get fixed frame
	// slots; undeclared names fall back to Env.Vars lookups at run time.
	Vars []string
	// AssumeBound promises that every declared variable is bound before
	// each evaluation (as OCLCheck and EvalBatch callers do). The compiler
	// then treats declared variable reads as total — they cannot fall into
	// the type-name error path — which unlocks cost-ordered conjunction
	// reordering over them. Evaluating an AssumeBound program with a
	// declared variable unbound is a contract violation: results stay
	// correct for the values supplied, but errors may surface in a
	// different order than the interpreter's.
	AssumeBound bool
}

// Program is a compiled OCL expression, safe for concurrent use: all
// evaluation state lives in per-call Frames.
type Program struct {
	run     code
	src     string
	nslots  int
	externs []string
	extSlot map[string]int
	ncse    int
	// spare is a one-item frame cache in front of pool. sync.Pool
	// deliberately drops items at random when the race detector is on,
	// which would make "zero allocations in steady state" unprovable
	// under -race; the atomic spare slot keeps the common
	// acquire/release cycle deterministic (and saves the pool's
	// pin/unpin on the hot path).
	spare atomic.Pointer[Frame]
	pool  sync.Pool
}

// Frame holds the variable slots for one evaluation of a Program. Frames
// are pooled; use NewFrame/Release, or the Eval* helpers which manage the
// frame for you.
type Frame struct {
	prog  *Program
	env   *Env
	slots []any
	bound []bool
	// gen is the evaluation generation: every Eval* entry point bumps it,
	// invalidating the CSE cache below in O(1). It is monotonic over the
	// frame's pooled lifetime — never reset — so a recycled frame can never
	// see a stale cache hit.
	gen    uint64
	cseGen []uint64
	cseVal []any
	cseErr []error
}

// binding is a compile-time scope entry for a let/iterator variable.
type binding struct {
	name string
	slot int
	// condSelf marks the implicit-iterator "self" alias, which defers to an
	// already-bound outer self at run time.
	condSelf bool
	// isConst propagates a constant let-initializer into the body so
	// `let k = 2 in k * k` folds all the way down.
	isConst  bool
	constVal any
}

type compiler struct {
	meta        *metamodel.Package
	externs     []string
	extSlot     map[string]int
	scope       []binding
	nslots      int
	assumeBound bool
	// cseCand holds the cacheable subexpression keys from analyzeCSE;
	// cseIdx assigns each key its cache slot on first cacheable compile.
	cseCand map[string]bool
	cseIdx  map[string]int
	ncse    int
}

// Compile lowers a parsed expression with default options: no compile-time
// metamodel and "self" as the only declared variable. The returned error is
// currently always nil — compilation is total over parseable input, and
// semantic problems (unknown operations, type errors) surface at run time
// with the interpreter's exact error strings — but callers should check it;
// future passes may reject statically.
func Compile(expr Expr) (*Program, error) {
	return CompileWith(expr, CompileOptions{})
}

// CompileWith lowers a parsed expression with explicit options.
func CompileWith(expr Expr, opts CompileOptions) (*Program, error) {
	c := &compiler{
		meta:        opts.Meta,
		extSlot:     make(map[string]int),
		assumeBound: opts.AssumeBound,
		cseCand:     analyzeCSE(expr),
	}
	// "self" always occupies slot 0 so EvalSelf is valid for every Program;
	// remaining declared variables get slots in sorted order.
	declared := append([]string{"self"}, opts.Vars...)
	sort.Strings(declared[1:])
	for _, name := range declared {
		if _, dup := c.extSlot[name]; dup || name == "" {
			continue
		}
		c.extSlot[name] = c.nslots
		c.externs = append(c.externs, name)
		c.nslots++
	}
	cc := c.compile(expr)
	p := &Program{
		run:     cc.run,
		src:     expr.String(),
		nslots:  c.nslots,
		externs: c.externs,
		extSlot: c.extSlot,
		ncse:    c.ncse,
	}
	p.pool.New = func() any {
		fr := &Frame{
			prog:  p,
			slots: make([]any, p.nslots),
			bound: make([]bool, len(p.externs)),
		}
		if p.ncse > 0 {
			fr.cseGen = make([]uint64, p.ncse)
			fr.cseVal = make([]any, p.ncse)
			fr.cseErr = make([]error, p.ncse)
		}
		return fr
	}
	return p, nil
}

// CompileString parses and compiles src through a process-wide cache, so
// hot paths that meet the same (source, metamodel, vars) triple repeatedly
// — validation rules, batch checks, transform guards — compile exactly
// once.
func CompileString(src string, opts CompileOptions) (*Program, error) {
	key := cacheKey{src: src, meta: opts.Meta, vars: strings.Join(opts.Vars, "\x00"), bound: opts.AssumeBound}
	if v, ok := progCache.Load(key); ok {
		return v.(*Program), nil
	}
	expr, err := Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := CompileWith(expr, opts)
	if err != nil {
		return nil, err
	}
	// Bounded insert: past the cap we still compile, we just stop caching.
	if progCacheSize.Load() < progCacheCap {
		if _, loaded := progCache.LoadOrStore(key, p); !loaded {
			progCacheSize.Add(1)
		}
	}
	return p, nil
}

type cacheKey struct {
	src   string
	meta  *metamodel.Package
	vars  string
	bound bool
}

var (
	progCache     sync.Map
	progCacheSize atomic.Int64
)

const progCacheCap = 4096

// Source returns the normalized source of the compiled expression.
func (p *Program) Source() string { return p.src }

// Slot returns the frame slot of a declared variable.
func (p *Program) Slot(name string) (int, bool) {
	i, ok := p.extSlot[name]
	return i, ok
}

// NewFrame takes a frame from the pool and binds it to env. The caller must
// Release it.
func (p *Program) NewFrame(env *Env) *Frame {
	fr := p.spare.Swap(nil)
	if fr == nil {
		fr = p.pool.Get().(*Frame)
	}
	fr.env = env
	for i := range fr.bound {
		fr.bound[i] = false
	}
	return fr
}

// Release clears the frame (so pooled frames don't pin objects) and returns
// it to the pool.
func (fr *Frame) Release() {
	for i := range fr.slots {
		fr.slots[i] = nil
	}
	// Drop cached values so pooled frames pin no objects; the generation
	// counter stays monotonic, which is what keeps stale entries dead.
	for i := range fr.cseVal {
		fr.cseVal[i] = nil
		fr.cseErr[i] = nil
	}
	fr.env = nil
	if fr.prog.spare.CompareAndSwap(nil, fr) {
		return
	}
	fr.prog.pool.Put(fr)
}

// SetSlot binds a variable by slot index.
func (fr *Frame) SetSlot(i int, v any) {
	fr.slots[i] = v
	if i < len(fr.bound) {
		fr.bound[i] = true
	}
}

// SetVar binds a declared variable by name, reporting whether the name was
// declared at compile time.
func (fr *Frame) SetVar(name string, v any) bool {
	i, ok := fr.prog.extSlot[name]
	if !ok {
		return false
	}
	fr.SetSlot(i, v)
	return true
}

// Eval runs the program against the frame's current bindings.
func (fr *Frame) Eval() (any, error) {
	fr.gen++
	return fr.prog.run(fr)
}

// EvalBool runs the program and coerces to constraint semantics (null is
// false).
func (fr *Frame) EvalBool() (bool, error) {
	fr.gen++
	v, err := fr.prog.run(fr)
	if err != nil {
		return false, err
	}
	return coerceBool(fr.prog.src, v)
}

// Eval evaluates the program with variables taken from env.Vars — the
// drop-in replacement for ocl.Eval on a pre-parsed expression.
func (p *Program) Eval(env *Env) (any, error) {
	if env == nil {
		env = &Env{}
	}
	fr := p.NewFrame(env)
	defer fr.Release()
	if len(env.Vars) > 0 {
		for i, name := range p.externs {
			if v, ok := env.Vars[name]; ok {
				fr.slots[i] = v
				fr.bound[i] = true
			}
		}
	}
	fr.gen++
	return p.run(fr)
}

// EvalSelf evaluates the program with self bound, without touching any
// maps: the constraint-checking hot path.
func (p *Program) EvalSelf(self any, env *Env) (any, error) {
	if env == nil {
		env = &Env{}
	}
	fr := p.NewFrame(env)
	defer fr.Release()
	fr.slots[0] = self
	fr.bound[0] = true
	if len(env.Vars) > 0 {
		for i, name := range p.externs {
			if i == 0 {
				continue
			}
			if v, ok := env.Vars[name]; ok {
				fr.slots[i] = v
				fr.bound[i] = true
			}
		}
	}
	fr.gen++
	return p.run(fr)
}

// EvalBoolSelf evaluates with self bound and coerces to constraint
// semantics (null is false), mirroring ocl.EvalBool.
func (p *Program) EvalBoolSelf(self any, env *Env) (bool, error) {
	v, err := p.EvalSelf(self, env)
	if err != nil {
		return false, err
	}
	return coerceBool(p.src, v)
}

func coerceBool(src string, v any) (bool, error) {
	switch t := v.(type) {
	case bool:
		return t, nil
	case nil:
		return false, nil
	default:
		return false, fmt.Errorf("ocl: expression %q yields %T, not Boolean", src, v)
	}
}

// --- compilation ---

// compiled carries the closure plus compile-time constness, so parent nodes
// can fold.
type compiled struct {
	run     code
	isConst bool
	val     any // meaningful when isConst && err == nil
	err     error
}

func constVal(v any) compiled {
	return compiled{run: func(*Frame) (any, error) { return v, nil }, isConst: true, val: v}
}

// constErr is an expression known at compile time to always fail — the
// failure still happens at RUN time so short-circuiting parents can skip it,
// exactly like the interpreter skips evaluating `1/0` in `false and (1/0)`.
func constErr(err error) compiled {
	return compiled{run: func(*Frame) (any, error) { return nil, err }, isConst: true, err: err}
}

func dyn(f code) compiled { return compiled{run: f} }

// foldableScalar reports whether a value may be baked into the closure tree
// as a constant. Collections are excluded: a folded []any would be shared
// across evaluations and goroutines.
func foldableScalar(v any) bool {
	switch v.(type) {
	case nil, bool, int64, float64, string, metamodel.EnumLit:
		return true
	}
	return false
}

// pureCallOps are dot operations that depend only on their receiver and
// arguments, so constant operands fold at compile time. Profile hooks
// (hasStereotype, taggedValue) and model-dependent operations stay out.
var pureCallOps = map[string]bool{
	"oclIsUndefined": true,
	"size":           true,
	"toUpper":        true, "toUpperCase": true,
	"toLower": true, "toLowerCase": true,
	"concat": true, "substring": true, "indexOf": true,
	"contains": true, "startsWith": true,
	"abs": true, "max": true, "min": true,
}

func (c *compiler) push(b binding) { c.scope = append(c.scope, b) }
func (c *compiler) pop()           { c.scope = c.scope[:len(c.scope)-1] }
func (c *compiler) newSlot() int   { s := c.nslots; c.nslots++; return s }
func (c *compiler) lookupScope(name string) *binding {
	for i := len(c.scope) - 1; i >= 0; i-- {
		if c.scope[i].name == name {
			return &c.scope[i]
		}
	}
	return nil
}

// scopeHas reports whether name is lexically bound — by a let, an iterator,
// or the implicit-iterator self alias. Lexically bound names are always
// bound at run time too, mirroring the interpreter's ev.vars.
func (c *compiler) scopeHas(name string) bool { return c.lookupScope(name) != nil }

// varLookup builds the run-time "is this name bound to a value?" probe used
// where the interpreter distinguishes variables from type names: declared
// variables check their slot first, then Env.Vars; undeclared names check
// Env.Vars only.
func (c *compiler) varLookup(name string) func(fr *Frame) (any, bool) {
	if slot, ok := c.extSlot[name]; ok {
		return func(fr *Frame) (any, bool) {
			if fr.bound[slot] {
				return fr.slots[slot], true
			}
			v, ok := fr.env.Vars[name]
			return v, ok
		}
	}
	return func(fr *Frame) (any, bool) {
		v, ok := fr.env.Vars[name]
		return v, ok
	}
}

// typeFallbackName compiles the "bare identifier as type name" fallback
// with the interpreter's unknown-variable-or-type error.
func (c *compiler) typeFallbackName(name string) code {
	if c.meta != nil {
		if cls, ok := c.meta.FindClass(name); ok {
			tr := typeRef{c: cls}
			return func(*Frame) (any, error) { return tr, nil }
		}
		err := fmt.Errorf("ocl: unknown variable or type %q", name)
		return func(*Frame) (any, error) { return nil, err }
	}
	return func(fr *Frame) (any, error) { return resolveTypeName(fr.env, name) }
}

// compile lowers one node, then wraps it in a per-evaluation cache when
// the CSE analysis marked it worth sharing.
func (c *compiler) compile(e Expr) compiled {
	cc := c.compileNode(e)
	return c.maybeCache(e, cc)
}

// maybeCache wraps a compiled subexpression in a generation-checked cache
// slot. Eligibility is re-checked against the compile-time scope at this
// occurrence: the same source text can mean different things inside an
// iterator that rebinds one of its variables, and such occurrences bypass
// the cache (analyzeCSE applied the same rule when counting).
func (c *compiler) maybeCache(e Expr, cc compiled) compiled {
	if cc.isConst || len(c.cseCand) == 0 || !cseCandidateKind(e) {
		return cc
	}
	key := e.String()
	if !c.cseCand[key] {
		return cc
	}
	for _, v := range FreeVars(e) {
		if c.scopeHas(v) {
			return cc
		}
	}
	if c.cseIdx == nil {
		c.cseIdx = make(map[string]int)
	}
	idx, ok := c.cseIdx[key]
	if !ok {
		idx = c.ncse
		c.ncse++
		c.cseIdx[key] = idx
	}
	run := cc.run
	return dyn(func(fr *Frame) (any, error) {
		if fr.cseGen[idx] == fr.gen {
			return fr.cseVal[idx], fr.cseErr[idx]
		}
		v, err := run(fr)
		fr.cseGen[idx] = fr.gen
		fr.cseVal[idx] = v
		fr.cseErr[idx] = err
		return v, err
	})
}

func (c *compiler) compileNode(e Expr) compiled {
	switch n := e.(type) {
	case *LitExpr:
		return constVal(n.Val)

	case *VarExpr:
		if b := c.lookupScope(n.Name); b != nil {
			slot := b.slot
			if b.isConst {
				return constVal(b.constVal)
			}
			if !b.condSelf {
				// Lexical binder: guaranteed written before the body runs.
				return dyn(func(fr *Frame) (any, error) { return fr.slots[slot], nil })
			}
			// Implicit-iterator self: an outer binding wins when present.
			selfSlot := c.extSlot["self"]
			return dyn(func(fr *Frame) (any, error) {
				if fr.bound[selfSlot] {
					return fr.slots[selfSlot], nil
				}
				if v, ok := fr.env.Vars["self"]; ok {
					return v, nil
				}
				return fr.slots[slot], nil
			})
		}
		name := n.Name
		fallback := c.typeFallbackName(name)
		if slot, ok := c.extSlot[name]; ok {
			return dyn(func(fr *Frame) (any, error) {
				if fr.bound[slot] {
					return fr.slots[slot], nil
				}
				if v, ok := fr.env.Vars[name]; ok {
					return v, nil
				}
				return fallback(fr)
			})
		}
		return dyn(func(fr *Frame) (any, error) {
			if v, ok := fr.env.Vars[name]; ok {
				return v, nil
			}
			return fallback(fr)
		})

	case *EnumExpr:
		if c.meta != nil {
			v, err := resolveEnumLit(&Env{Meta: c.meta}, n.Enum, n.Literal)
			if err != nil {
				return constErr(err)
			}
			return constVal(v)
		}
		enum, lit := n.Enum, n.Literal
		return dyn(func(fr *Frame) (any, error) { return resolveEnumLit(fr.env, enum, lit) })

	case *NavExpr:
		recv := c.compile(n.Recv)
		if recv.isConst && recv.err != nil {
			return recv
		}
		name := n.Name
		if recv.isConst {
			// Navigation on a constant scalar: the result is fixed.
			v, err := navigateValue(recv.val, name)
			if err != nil {
				return constErr(err)
			}
			if foldableScalar(v) {
				return constVal(v)
			}
		}
		rrun := recv.run
		return dyn(func(fr *Frame) (any, error) {
			rv, err := rrun(fr)
			if err != nil {
				return nil, err
			}
			return navigateValue(rv, name)
		})

	case *CallExpr:
		return c.compileCall(n)

	case *ArrowExpr:
		return c.compileArrow(n)

	case *UnExpr:
		op := n.Op
		operand := c.compile(n.E)
		if operand.isConst {
			if operand.err != nil {
				return operand
			}
			v, err := evalUnary(op, operand.val)
			if err != nil {
				return constErr(err)
			}
			return constVal(v)
		}
		orun := operand.run
		return dyn(func(fr *Frame) (any, error) {
			v, err := orun(fr)
			if err != nil {
				return nil, err
			}
			return evalUnary(op, v)
		})

	case *IfExpr:
		cond := c.compile(n.Cond)
		thenC := c.compile(n.Then)
		elseC := c.compile(n.Else)
		if cond.isConst {
			if cond.err != nil {
				return cond
			}
			b, ok := cond.val.(bool)
			if !ok {
				return constErr(fmt.Errorf("ocl: if-condition must be Boolean, got %s", typeName(cond.val)))
			}
			if b {
				return thenC
			}
			return elseC
		}
		crun, trun, erun := cond.run, thenC.run, elseC.run
		return dyn(func(fr *Frame) (any, error) {
			cv, err := crun(fr)
			if err != nil {
				return nil, err
			}
			b, ok := cv.(bool)
			if !ok {
				return nil, fmt.Errorf("ocl: if-condition must be Boolean, got %s", typeName(cv))
			}
			if b {
				return trun(fr)
			}
			return erun(fr)
		})

	case *CollectionExpr:
		items := make([]code, len(n.Items))
		for i, item := range n.Items {
			items[i] = c.compile(item).run
		}
		isSet := n.Kind == "Set"
		return dyn(func(fr *Frame) (any, error) {
			out := make([]any, 0, len(items))
			for _, item := range items {
				v, err := item(fr)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			}
			if isSet {
				return dedupe(out), nil
			}
			return out, nil
		})

	case *LetExpr:
		init := c.compile(n.Init)
		slot := c.newSlot()
		b := binding{name: n.Name, slot: slot}
		if init.isConst && init.err == nil && foldableScalar(init.val) {
			b.isConst, b.constVal = true, init.val
		}
		c.push(b)
		body := c.compile(n.Body)
		c.pop()
		if init.isConst && init.err != nil {
			return constErr(init.err)
		}
		if body.isConst && init.isConst {
			// Init cannot fail (checked above) and the body ignores the
			// frame entirely.
			return body
		}
		irun, brun := init.run, body.run
		return dyn(func(fr *Frame) (any, error) {
			v, err := irun(fr)
			if err != nil {
				return nil, err
			}
			fr.slots[slot] = v
			return brun(fr)
		})

	case *BinExpr:
		return c.compileBinary(n)

	default:
		err := fmt.Errorf("ocl: unhandled expression node %T", e)
		return constErr(err)
	}
}

func (c *compiler) compileBinary(n *BinExpr) compiled {
	op := n.Op
	switch op {
	case "and", "or", "implies":
		left, right := n.L, n.R
		// Cost-ordered conjunctions: evaluate the cheaper operand first so
		// the short-circuit skips the expensive one more often. and/or are
		// commutative over Booleans, so the swap preserves semantics only
		// when BOTH operands are provably total — an erroring operand pins
		// the original order, because `err and false` differs from
		// `false and err`. implies is not commutative and never reorders.
		if op != "implies" && c.totalBool(left) && c.totalBool(right) &&
			exprCost(right) < exprCost(left) {
			left, right = right, left
		}
		l := c.compile(left)
		if l.isConst {
			if l.err != nil {
				return l
			}
			lb, ok := l.val.(bool)
			if !ok {
				return constErr(fmt.Errorf("ocl: %q needs Boolean operands, got %s", op, typeName(l.val)))
			}
			// The left side decides: either the answer is fixed or the
			// whole expression reduces to the (bool-checked) right side.
			switch {
			case op == "and" && !lb:
				return constVal(false)
			case op == "or" && lb:
				return constVal(true)
			case op == "implies" && !lb:
				return constVal(true)
			}
			return c.boolChecked(op, c.compile(right))
		}
		r := c.compile(right)
		lrun, rrun := l.run, r.run
		// Specialized short-circuit closures, one per operator.
		evalRight := func(fr *Frame) (any, error) {
			rv, err := rrun(fr)
			if err != nil {
				return nil, err
			}
			rb, ok := rv.(bool)
			if !ok {
				return nil, fmt.Errorf("ocl: %q needs Boolean operands, got %s", op, typeName(rv))
			}
			return rb, nil
		}
		leftBool := func(fr *Frame) (bool, error) {
			lv, err := lrun(fr)
			if err != nil {
				return false, err
			}
			lb, ok := lv.(bool)
			if !ok {
				return false, fmt.Errorf("ocl: %q needs Boolean operands, got %s", op, typeName(lv))
			}
			return lb, nil
		}
		switch op {
		case "and":
			return dyn(func(fr *Frame) (any, error) {
				lb, err := leftBool(fr)
				if err != nil {
					return nil, err
				}
				if !lb {
					return false, nil
				}
				return evalRight(fr)
			})
		case "or":
			return dyn(func(fr *Frame) (any, error) {
				lb, err := leftBool(fr)
				if err != nil {
					return nil, err
				}
				if lb {
					return true, nil
				}
				return evalRight(fr)
			})
		default: // implies
			return dyn(func(fr *Frame) (any, error) {
				lb, err := leftBool(fr)
				if err != nil {
					return nil, err
				}
				if !lb {
					return true, nil
				}
				return evalRight(fr)
			})
		}
	}
	l := c.compile(n.L)
	r := c.compile(n.R)
	if l.isConst && l.err != nil {
		return l
	}
	if l.isConst && r.isConst {
		if r.err != nil {
			return constErr(r.err)
		}
		v, err := evalStrictBinary(op, l.val, r.val)
		if err != nil {
			return constErr(err)
		}
		if foldableScalar(v) {
			return constVal(v)
		}
	}
	lrun, rrun := l.run, r.run
	return dyn(func(fr *Frame) (any, error) {
		lv, err := lrun(fr)
		if err != nil {
			return nil, err
		}
		rv, err := rrun(fr)
		if err != nil {
			return nil, err
		}
		return evalStrictBinary(op, lv, rv)
	})
}

// boolChecked wraps a compiled expression with the short-circuit operators'
// Boolean result check.
func (c *compiler) boolChecked(op string, r compiled) compiled {
	if r.isConst {
		if r.err != nil {
			return r
		}
		rb, ok := r.val.(bool)
		if !ok {
			return constErr(fmt.Errorf("ocl: %q needs Boolean operands, got %s", op, typeName(r.val)))
		}
		return constVal(rb)
	}
	rrun := r.run
	return dyn(func(fr *Frame) (any, error) {
		rv, err := rrun(fr)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(bool)
		if !ok {
			return nil, fmt.Errorf("ocl: %q needs Boolean operands, got %s", op, typeName(rv))
		}
		return rb, nil
	})
}

func (c *compiler) compileCall(n *CallExpr) compiled {
	name := n.Name
	// Type-level T.allInstances(): the receiver is a bare identifier that is
	// not lexically bound. Whether it is a *variable* can still depend on
	// run-time bindings, so both paths are compiled and the probe picks one.
	if v, ok := n.Recv.(*VarExpr); ok && name == "allInstances" && !c.scopeHas(v.Name) {
		tname := v.Name
		lookup := c.varLookup(tname)
		typeLevel := c.compileAllInstances(tname)
		args := c.compileArgs(n.Args)
		return dyn(func(fr *Frame) (any, error) {
			if rv, bound := lookup(fr); bound {
				argv, err := evalArgs(fr, args)
				if err != nil {
					return nil, err
				}
				return dispatchCall(fr.env, rv, "allInstances", argv)
			}
			return typeLevel(fr)
		})
	}
	recv := c.compile(n.Recv)
	isTypeOp := name == "oclIsKindOf" || name == "oclIsTypeOf" || name == "oclAsType"
	args := make([]compiled, len(n.Args))
	for i, a := range n.Args {
		// Type arguments stay unevaluated names, resolved against the
		// metamodel — unless the name is lexically bound, in which case the
		// interpreter evaluates it as a variable.
		if v, ok := a.(*VarExpr); ok && isTypeOp && !c.scopeHas(v.Name) {
			args[i] = c.compileTypeArg(v.Name)
			continue
		}
		args[i] = c.compile(a)
	}
	// Constant folding for pure operations.
	if pureCallOps[name] && recv.isConst {
		if recv.err != nil {
			return recv
		}
		argv := make([]any, len(args))
		allConst := true
		for i, a := range args {
			if !a.isConst {
				allConst = false
				break
			}
			if a.err != nil {
				return constErr(a.err)
			}
			argv[i] = a.val
		}
		if allConst {
			v, err := dispatchCall(&Env{}, recv.val, name, argv)
			if err != nil {
				return constErr(err)
			}
			if foldableScalar(v) {
				return constVal(v)
			}
		}
	}
	rrun := recv.run
	return dyn(func(fr *Frame) (any, error) {
		rv, err := rrun(fr)
		if err != nil {
			return nil, err
		}
		argv, err := evalArgs(fr, args)
		if err != nil {
			return nil, err
		}
		return dispatchCall(fr.env, rv, name, argv)
	})
}

// compileAllInstances builds the type-level allInstances path, resolving
// the class at compile time when a metamodel is available.
func (c *compiler) compileAllInstances(name string) code {
	if c.meta != nil {
		cls, ok := c.meta.FindClass(name)
		if !ok {
			err := fmt.Errorf("ocl: unknown type %q", name)
			return func(*Frame) (any, error) { return nil, err }
		}
		return func(fr *Frame) (any, error) { return instancesOf(fr.env, cls, name) }
	}
	return func(fr *Frame) (any, error) { return evalAllInstances(fr.env, name) }
}

// compileTypeArg builds a type-argument operand: a run-time variable
// binding wins, otherwise the name resolves as a type.
func (c *compiler) compileTypeArg(name string) compiled {
	lookup := c.varLookup(name)
	var fallback code
	if c.meta != nil {
		if cls, ok := c.meta.FindClass(name); ok {
			tr := typeRef{c: cls}
			fallback = func(*Frame) (any, error) { return tr, nil }
		} else {
			err := fmt.Errorf("ocl: unknown type %q", name)
			fallback = func(*Frame) (any, error) { return nil, err }
		}
	} else {
		fallback = func(fr *Frame) (any, error) { return resolveTypeArg(fr.env, name) }
	}
	return dyn(func(fr *Frame) (any, error) {
		if v, ok := lookup(fr); ok {
			return v, nil
		}
		return fallback(fr)
	})
}

func (c *compiler) compileArgs(exprs []Expr) []compiled {
	args := make([]compiled, len(exprs))
	for i, a := range exprs {
		args[i] = c.compile(a)
	}
	return args
}

func evalArgs(fr *Frame, args []compiled) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	argv := make([]any, len(args))
	for i, a := range args {
		v, err := a.run(fr)
		if err != nil {
			return nil, err
		}
		argv[i] = v
	}
	return argv, nil
}

func (c *compiler) compileArrow(n *ArrowExpr) compiled {
	name := n.Name
	recv := c.compile(n.Recv)
	if recv.isConst && recv.err != nil {
		return recv
	}
	rrun := recv.run
	if iteratorOps[name] {
		slot := c.newSlot()
		iterName := n.Iter
		implicit := iterName == ""
		if implicit {
			iterName = "$implicit"
		}
		c.push(binding{name: iterName, slot: slot})
		// The implicit iterator also stands in for an unbound self, unless
		// an enclosing scope already binds self.
		aliasSelf := implicit && !c.scopeHas("self")
		if aliasSelf {
			c.push(binding{name: "self", slot: slot, condSelf: true})
		}
		body := c.compile(n.Body)
		if aliasSelf {
			c.pop()
		}
		c.pop()
		brun := body.run
		return dyn(func(fr *Frame) (any, error) {
			rv, err := rrun(fr)
			if err != nil {
				return nil, err
			}
			coll := asCollection(rv)
			return runIterator(name, coll, func(item any) (any, error) {
				fr.slots[slot] = item
				return brun(fr)
			})
		})
	}
	args := c.compileArgs(n.Args)
	nargs := len(args)
	return dyn(func(fr *Frame) (any, error) {
		rv, err := rrun(fr)
		if err != nil {
			return nil, err
		}
		coll := asCollection(rv)
		return evalArrowOp(name, coll, nargs, func(i int) (any, error) {
			return args[i].run(fr)
		})
	})
}

// FreeVars returns the sorted names a compiled expression expects to be
// supplied externally: variable references that are not bound by a let or
// an iterator and do not occupy a type-name position (allInstances
// receivers, oclIsKindOf/oclIsTypeOf/oclAsType arguments). Inside an
// implicit iterator body, "self" is satisfied by the iterated element and
// is therefore not free.
func FreeVars(expr Expr) []string {
	seen := map[string]bool{}
	var walk func(e Expr, scope []string)
	inScope := func(scope []string, name string) bool {
		for _, s := range scope {
			if s == name {
				return true
			}
		}
		return false
	}
	walk = func(e Expr, scope []string) {
		switch n := e.(type) {
		case *VarExpr:
			if !inScope(scope, n.Name) {
				seen[n.Name] = true
			}
		case *NavExpr:
			walk(n.Recv, scope)
		case *CallExpr:
			isTypeOp := n.Name == "oclIsKindOf" || n.Name == "oclIsTypeOf" || n.Name == "oclAsType"
			if v, ok := n.Recv.(*VarExpr); !(ok && n.Name == "allInstances" && !inScope(scope, v.Name)) {
				walk(n.Recv, scope)
			}
			for _, a := range n.Args {
				if v, ok := a.(*VarExpr); ok && isTypeOp && !inScope(scope, v.Name) {
					continue
				}
				walk(a, scope)
			}
		case *ArrowExpr:
			walk(n.Recv, scope)
			if n.Body != nil {
				inner := scope
				if n.Iter != "" {
					inner = append(inner, n.Iter)
				} else {
					inner = append(inner, "$implicit", "self")
				}
				walk(n.Body, inner)
			}
			for _, a := range n.Args {
				walk(a, scope)
			}
		case *LetExpr:
			walk(n.Init, scope)
			walk(n.Body, append(scope, n.Name))
		case *BinExpr:
			walk(n.L, scope)
			walk(n.R, scope)
		case *UnExpr:
			walk(n.E, scope)
		case *IfExpr:
			walk(n.Cond, scope)
			walk(n.Then, scope)
			walk(n.Else, scope)
		case *CollectionExpr:
			for _, item := range n.Items {
				walk(item, scope)
			}
		}
	}
	walk(expr, nil)
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
