package ocl

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed OCL expression node.
type Expr interface {
	// Pos returns the byte offset of the node in the source expression.
	Pos() int
	// String renders the node back to (normalized) OCL source.
	String() string
}

// LitExpr is a literal: integer, real, string, boolean or null.
type LitExpr struct {
	// Val holds int64, float64, string, bool or nil.
	Val any
	pos int
}

// Pos returns the source offset.
func (e *LitExpr) Pos() int { return e.pos }

// String renders the literal.
func (e *LitExpr) String() string {
	switch v := e.Val.(type) {
	case nil:
		return "null"
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	case float64:
		// %v would switch to exponent notation ("1e-05"), which the
		// lexer has no syntax for; reals print as digits with a dot.
		s := strconv.FormatFloat(v, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	default:
		return fmt.Sprintf("%v", v)
	}
}

// VarExpr references a variable: self, an iterator or a let binding. Bare
// identifiers that do not resolve to a variable are treated as type names
// by the evaluator (for allInstances and oclIsKindOf arguments).
type VarExpr struct {
	// Name is the variable or type name.
	Name string
	pos  int
}

// Pos returns the source offset.
func (e *VarExpr) Pos() int { return e.pos }

// String renders the name.
func (e *VarExpr) String() string { return e.Name }

// EnumExpr is an enumeration literal reference: Enum::Literal.
type EnumExpr struct {
	// Enum is the enumeration name.
	Enum string
	// Literal is the literal name.
	Literal string
	pos     int
}

// Pos returns the source offset.
func (e *EnumExpr) Pos() int { return e.pos }

// String renders Enum::Literal.
func (e *EnumExpr) String() string { return e.Enum + "::" + e.Literal }

// NavExpr is dot navigation: recv.name — a property access, with OCL's
// implicit-collect semantics when recv is a collection.
type NavExpr struct {
	// Recv is the receiver expression.
	Recv Expr
	// Name is the property name.
	Name string
	pos  int
}

// Pos returns the source offset.
func (e *NavExpr) Pos() int { return e.pos }

// String renders recv.name.
func (e *NavExpr) String() string { return e.Recv.String() + "." + e.Name }

// CallExpr is a dot call: recv.op(args...), covering oclIsKindOf,
// allInstances, string operations and the profile extensions.
type CallExpr struct {
	// Recv is the receiver expression.
	Recv Expr
	// Name is the operation name.
	Name string
	// Args are the argument expressions.
	Args []Expr
	pos  int
}

// Pos returns the source offset.
func (e *CallExpr) Pos() int { return e.pos }

// String renders recv.op(args).
func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s.%s(%s)", e.Recv.String(), e.Name, strings.Join(parts, ", "))
}

// ArrowExpr is a collection operation: recv->op(...) or
// recv->op(iter | body).
type ArrowExpr struct {
	// Recv is the collection expression.
	Recv Expr
	// Name is the collection operation name.
	Name string
	// Iter is the iterator variable name, "" when the op takes plain args.
	Iter string
	// Body is the iterator body, nil when the op takes plain args.
	Body Expr
	// Args are plain arguments for non-iterator ops (includes, count, ...).
	Args []Expr
	pos  int
}

// Pos returns the source offset.
func (e *ArrowExpr) Pos() int { return e.pos }

// String renders the arrow call.
func (e *ArrowExpr) String() string {
	if e.Body != nil {
		iter := ""
		if e.Iter != "" {
			iter = e.Iter + " | "
		}
		return fmt.Sprintf("%s->%s(%s%s)", e.Recv.String(), e.Name, iter, e.Body.String())
	}
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s->%s(%s)", e.Recv.String(), e.Name, strings.Join(parts, ", "))
}

// BinExpr is a binary operation.
type BinExpr struct {
	// Op is the operator text: "and", "or", "xor", "implies", "=", "<>",
	// "<", "<=", ">", ">=", "+", "-", "*", "/", "mod", "div".
	Op string
	// L and R are the operands.
	L, R Expr
	pos  int
}

// Pos returns the source offset.
func (e *BinExpr) Pos() int { return e.pos }

// String renders (l op r).
func (e *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op, e.R.String())
}

// UnExpr is a unary operation: "not" or "-".
type UnExpr struct {
	// Op is "not" or "-".
	Op string
	// E is the operand.
	E   Expr
	pos int
}

// Pos returns the source offset.
func (e *UnExpr) Pos() int { return e.pos }

// String renders op e.
func (e *UnExpr) String() string {
	if e.Op == "not" {
		return "not " + e.E.String()
	}
	s := e.E.String()
	if strings.HasPrefix(s, "-") {
		// Adjacent minuses would render "--", which lexes as a line
		// comment; keep the tokens apart.
		return e.Op + " " + s
	}
	return e.Op + s
}

// IfExpr is if-then-else-endif.
type IfExpr struct {
	// Cond, Then, Else are the three sub-expressions.
	Cond, Then, Else Expr
	pos              int
}

// Pos returns the source offset.
func (e *IfExpr) Pos() int { return e.pos }

// String renders the conditional.
func (e *IfExpr) String() string {
	return fmt.Sprintf("if %s then %s else %s endif",
		e.Cond.String(), e.Then.String(), e.Else.String())
}

// CollectionExpr is a collection literal: Set{...}, Sequence{...} or
// Bag{...}. Set deduplicates its elements at evaluation time.
type CollectionExpr struct {
	// Kind is "Set", "Sequence" or "Bag".
	Kind string
	// Items are the element expressions in order.
	Items []Expr
	pos   int
}

// Pos returns the source offset.
func (e *CollectionExpr) Pos() int { return e.pos }

// String renders Kind{items...}.
func (e *CollectionExpr) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return e.Kind + "{" + strings.Join(parts, ", ") + "}"
}

// LetExpr is let name = init in body.
type LetExpr struct {
	// Name is the bound variable.
	Name string
	// Init is the binding expression.
	Init Expr
	// Body is evaluated with the binding in scope.
	Body Expr
	pos  int
}

// Pos returns the source offset.
func (e *LetExpr) Pos() int { return e.pos }

// String renders the let binding.
func (e *LetExpr) String() string {
	return fmt.Sprintf("let %s = %s in %s", e.Name, e.Init.String(), e.Body.String())
}
