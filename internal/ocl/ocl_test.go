package ocl

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// library fixture:
//
//	package Lib
//	  enum Genre { Fiction, Science }
//	  class Book { title: String[1]; pages: Integer; genre: Genre; authors: Author[0..*] }
//	  class Author { name: String[1]; books: Book[0..*] }
//	  class Novel extends Book {}
func libFixture(t testing.TB) (*metamodel.Package, *metamodel.Model) {
	t.Helper()
	lib := metamodel.NewPackage("Lib")
	str := lib.AddDataType("String", metamodel.PrimString)
	intT := lib.AddDataType("Integer", metamodel.PrimInteger)
	genre := lib.AddEnumeration("Genre", "Fiction", "Science")

	author := lib.AddClass("Author")
	book := lib.AddClass("Book")
	book.AddProperty("title", str, 1, 1)
	book.AddAttr("pages", intT)
	book.AddAttr("genre", genre)
	book.AddRefs("authors", author)
	author.AddProperty("name", str, 1, 1)
	author.AddRefs("books", book)

	novel := lib.AddClass("Novel")
	novel.AddSuper(book)

	m := metamodel.NewModel("lib1", lib)
	return lib, m
}

func seedLibrary(t testing.TB, m *metamodel.Model) (*metamodel.Object, *metamodel.Object, *metamodel.Object) {
	t.Helper()
	a1 := m.MustCreate("Author")
	a1.MustSet("name", metamodel.String("Knuth"))
	b1 := m.MustCreate("Book")
	b1.MustSet("title", metamodel.String("TAOCP"))
	b1.MustSet("pages", metamodel.Int(650))
	b1.MustAppend("authors", metamodel.Ref{Target: a1})
	a1.MustAppend("books", metamodel.Ref{Target: b1})
	b2 := m.MustCreate("Novel")
	b2.MustSet("title", metamodel.String("Dune"))
	b2.MustSet("pages", metamodel.Int(412))
	return a1, b1, b2
}

func evalWith(t testing.TB, m *metamodel.Model, self any, src string) any {
	t.Helper()
	env := &Env{Model: m, Vars: map[string]any{"self": self}}
	v, err := EvalString(src, env)
	if err != nil {
		t.Fatalf("EvalString(%q): %v", src, err)
	}
	return v
}

func TestLiteralsAndArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 + 2", int64(3)},
		{"2 * 3 + 1", int64(7)},
		{"1 + 2 * 3", int64(7)},
		{"10 / 4", 2.5},
		{"10 div 4", int64(2)},
		{"10 mod 4", int64(2)},
		{"-5 + 2", int64(-3)},
		{"1.5 + 2.5", 4.0},
		{"2 < 3", true},
		{"2 >= 3", false},
		{"'a' < 'b'", true},
		{"'ab' + 'cd'", "abcd"},
		{"true and false", false},
		{"true or false", true},
		{"true xor true", false},
		{"false implies false", true},
		{"not false", true},
		{"1 = 1.0", true},
		{"1 <> 2", true},
		{"null = null", true},
		{"'x' = null", false},
		{"if 1 < 2 then 'yes' else 'no' endif", "yes"},
		{"let x = 3 in x * x", int64(9)},
		{"(1 + 2) * 3", int64(9)},
	}
	for _, c := range cases {
		v, err := EvalString(c.src, &Env{})
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if v != c.want {
			t.Errorf("%q = %v (%T), want %v (%T)", c.src, v, v, c.want, c.want)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	for _, src := range []string{"1 / 0", "1 mod 0", "1 div 0"} {
		if _, err := EvalString(src, &Env{}); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestStringOperations(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"'hello'.size()", int64(5)},
		{"'hello'.toUpper()", "HELLO"},
		{"'HELLO'.toLower()", "hello"},
		{"'hello'.concat(' world')", "hello world"},
		{"'hello'.substring(2, 4)", "ell"},
		{"'hello'.indexOf('ll')", int64(3)},
		{"'hello'.indexOf('z')", int64(0)},
		{"'hello'.contains('ell')", true},
		{"'hello'.startsWith('he')", true},
		{"5.abs()", int64(5)},
		{"(-5).abs()", int64(5)},
		{"3.max(7)", int64(7)},
		{"3.min(7)", int64(3)},
	}
	for _, c := range cases {
		v, err := EvalString(c.src, &Env{})
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if v != c.want {
			t.Errorf("%q = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestNavigationAndImplicitCollect(t *testing.T) {
	_, m := libFixture(t)
	a1, b1, _ := seedLibrary(t, m)

	if got := evalWith(t, m, b1, "self.title"); got != "TAOCP" {
		t.Fatalf("title = %v", got)
	}
	if got := evalWith(t, m, b1, "self.pages + 50"); got != int64(700) {
		t.Fatalf("pages+50 = %v", got)
	}
	// Implicit collect: author.books.title is a collection of strings.
	got := evalWith(t, m, a1, "self.books.title")
	coll, ok := got.([]any)
	if !ok || len(coll) != 1 || coll[0] != "TAOCP" {
		t.Fatalf("books.title = %v", got)
	}
	// Navigation over null yields null.
	if got := evalWith(t, m, b1, "self.genre"); got != nil {
		t.Fatalf("unset genre = %v, want nil", got)
	}
}

func TestCollectionOps(t *testing.T) {
	_, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)

	cases := []struct {
		src  string
		want any
	}{
		{"Book.allInstances()->size()", int64(2)}, // Novel conforms to Book
		{"Novel.allInstances()->size()", int64(1)},
		{"Book.allInstances()->isEmpty()", false},
		{"Book.allInstances()->notEmpty()", true},
		{"Book.allInstances()->select(b | b.pages > 500)->size()", int64(1)},
		{"Book.allInstances()->reject(b | b.pages > 500)->size()", int64(1)},
		{"Book.allInstances()->forAll(b | b.pages > 100)", true},
		{"Book.allInstances()->forAll(b | b.pages > 500)", false},
		{"Book.allInstances()->exists(b | b.title = 'Dune')", true},
		{"Book.allInstances()->exists(b | b.title = 'Ulysses')", false},
		{"Book.allInstances()->one(b | b.title = 'Dune')", true},
		{"Book.allInstances()->collect(b | b.pages)->sum()", int64(1062)},
		{"Book.allInstances()->count(null)", int64(0)},
		{"Book.allInstances()->isUnique(b | b.title)", true},
		{"Book.allInstances()->sortedBy(b | b.pages)->first().title", "Dune"},
		{"Book.allInstances()->sortedBy(b | b.title)->last().title", "TAOCP"},
		{"self.authors->size()", int64(1)},
		{"self.authors->first().name", "Knuth"},
		{"self.authors->notEmpty() implies self.authors->first().name.size() > 0", true},
	}
	for _, c := range cases {
		if got := evalWith(t, m, b1, c.src); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestSetAndBagOps(t *testing.T) {
	_, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)
	// union / intersection / includesAll on collected titles.
	cases := []struct {
		src  string
		want any
	}{
		{"Book.allInstances()->collect(b | b.title)->union(Novel.allInstances()->collect(b | b.title))->size()", int64(3)},
		{"Book.allInstances()->collect(b | b.title)->union(Novel.allInstances()->collect(b | b.title))->asSet()->size()", int64(2)},
		{"Book.allInstances()->collect(b | b.title)->intersection(Novel.allInstances()->collect(b | b.title))->size()", int64(1)},
		{"Book.allInstances()->includesAll(Novel.allInstances())", true},
		{"Novel.allInstances()->includesAll(Book.allInstances())", false},
		{"Novel.allInstances()->excludesAll(Book.allInstances())", false},
	}
	for _, c := range cases {
		if got := evalWith(t, m, b1, c.src); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestIncludesOnObjects(t *testing.T) {
	_, m := libFixture(t)
	a1, b1, b2 := seedLibrary(t, m)
	env := &Env{Model: m, Vars: map[string]any{"self": b1, "a": a1, "dune": b2}}
	v, err := EvalString("self.authors->includes(a)", env)
	if err != nil || v != true {
		t.Fatalf("includes = %v, %v", v, err)
	}
	v, err = EvalString("self.authors->excludes(dune)", env)
	if err != nil || v != true {
		t.Fatalf("excludes = %v, %v", v, err)
	}
}

func TestTypeOps(t *testing.T) {
	_, m := libFixture(t)
	_, b1, b2 := seedLibrary(t, m)
	env := &Env{Model: m, Vars: map[string]any{"b": b1, "n": b2}}
	cases := []struct {
		src  string
		want any
	}{
		{"b.oclIsKindOf(Book)", true},
		{"b.oclIsKindOf(Novel)", false},
		{"n.oclIsKindOf(Book)", true},
		{"n.oclIsTypeOf(Book)", false},
		{"n.oclIsTypeOf(Novel)", true},
		{"b.oclIsUndefined()", false},
		{"null.oclIsUndefined()", true},
		{"n.oclAsType(Book).title", "Dune"},
	}
	for _, c := range cases {
		v, err := EvalString(c.src, env)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if v != c.want {
			t.Errorf("%q = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestEnumLiterals(t *testing.T) {
	lib, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)
	genre, _ := lib.Enumeration("Genre")
	b1.MustSet("genre", metamodel.EnumLit{Enum: genre, Literal: "Science"})
	if got := evalWith(t, m, b1, "self.genre = Genre::Science"); got != true {
		t.Fatalf("enum eq = %v", got)
	}
	if got := evalWith(t, m, b1, "self.genre = Genre::Fiction"); got != false {
		t.Fatalf("enum neq = %v", got)
	}
	if _, err := EvalString("Genre::Romance", &Env{Model: m}); err == nil {
		t.Fatal("unknown literal should fail")
	}
	if _, err := EvalString("Nope::X", &Env{Model: m}); err == nil {
		t.Fatal("unknown enum should fail")
	}
	if _, err := EvalString("Book::X", &Env{Model: m}); err == nil {
		t.Fatal(":: on class should fail")
	}
}

func TestEvalBool(t *testing.T) {
	b, err := EvalBool("1 < 2", &Env{})
	if err != nil || !b {
		t.Fatalf("EvalBool = %v, %v", b, err)
	}
	b, err = EvalBool("null", &Env{})
	if err != nil || b {
		t.Fatalf("EvalBool(null) = %v, %v", b, err)
	}
	if _, err := EvalBool("1 + 1", &Env{}); err == nil {
		t.Fatal("non-boolean should error")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "1 +", "(1", "if true then 1 else 2", "let x = in 3",
		"'unterminated", "self.", "x->(y)", "1 @ 2", "a : b",
		"self->select(x | )", "self.foo(", "1 2",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	_, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)
	env := &Env{Model: m, Vars: map[string]any{"self": b1}}
	bad := []string{
		"self.nonexistent",
		"unknownVar",
		"UnknownType.allInstances()",
		"self.title->unknownOp()",
		"1 and true",
		"not 3",
		"-'s'",
		"if 3 then 1 else 2 endif",
		"'a' < 3",
		"self.oclIsKindOf(UnknownType)",
		"self.hasStereotype('X')", // no resolver in env
		"self.taggedValue('X')",   // no resolver in env
		"Book.allInstances()->forAll(b | b.pages)",
		"Book.allInstances()->collect(b | b.unknown)",
	}
	for _, src := range bad {
		if _, err := EvalString(src, env); err == nil {
			t.Errorf("EvalString(%q) should fail", src)
		}
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Parse("1 + + 2")
	if err == nil {
		t.Fatal("expected error")
	}
	var oe *Error
	if !asOCLError(err, &oe) {
		t.Fatalf("error type = %T", err)
	}
	if oe.Pos < 0 || !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error lacks position: %v", err)
	}
}

func asOCLError(err error, target **Error) bool {
	if e, ok := err.(*Error); ok {
		*target = e
		return true
	}
	return false
}

func TestCommentsSkipped(t *testing.T) {
	v, err := EvalString("1 + -- a comment\n 2", &Env{})
	if err != nil || v != int64(3) {
		t.Fatalf("comment handling: %v, %v", v, err)
	}
}

func TestStringEscapes(t *testing.T) {
	v, err := EvalString("'it''s'", &Env{})
	if err != nil || v != "it's" {
		t.Fatalf("escape: %v, %v", v, err)
	}
}

func TestArrowOnScalarWrapsSingleton(t *testing.T) {
	_, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)
	if got := evalWith(t, m, b1, "self->size()"); got != int64(1) {
		t.Fatalf("self->size() = %v", got)
	}
	if got := evalWith(t, m, nil, "self->size()"); got != int64(0) {
		t.Fatalf("null->size() = %v", got)
	}
}

func TestLetShadowingRestores(t *testing.T) {
	env := &Env{Vars: map[string]any{"x": int64(1)}}
	v, err := EvalString("(let x = 2 in x) + x", env)
	if err != nil || v != int64(3) {
		t.Fatalf("shadowing: %v, %v", v, err)
	}
}

func TestHasStereotypeExtension(t *testing.T) {
	_, m := libFixture(t)
	_, b1, b2 := seedLibrary(t, m)
	env := &Env{
		Model: m,
		Vars:  map[string]any{"self": b1, "other": b2},
		Stereotypes: func(o *metamodel.Object) []string {
			if o == b1 {
				return []string{"InformationCase"}
			}
			return nil
		},
	}
	v, err := EvalString("self.hasStereotype('InformationCase')", env)
	if err != nil || v != true {
		t.Fatalf("hasStereotype = %v, %v", v, err)
	}
	v, err = EvalString("other.hasStereotype('InformationCase')", env)
	if err != nil || v != false {
		t.Fatalf("hasStereotype(other) = %v, %v", v, err)
	}
}

func TestTaggedValueExtension(t *testing.T) {
	_, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)
	env := &Env{
		Model: m,
		Vars:  map[string]any{"self": b1},
		TaggedValue: func(o *metamodel.Object, name string) metamodel.Value {
			if name == "upper_bound" {
				return metamodel.Int(10)
			}
			return nil
		},
	}
	v, err := EvalString("self.taggedValue('upper_bound') = 10", env)
	if err != nil || v != true {
		t.Fatalf("taggedValue = %v, %v", v, err)
	}
	v, err = EvalString("self.taggedValue('missing').oclIsUndefined()", env)
	if err != nil || v != true {
		t.Fatalf("missing taggedValue = %v, %v", v, err)
	}
}

func TestASTStringRoundTrip(t *testing.T) {
	srcs := []string{
		"self.include->exists(i | i.addition.oclIsKindOf(InformationCase))",
		"let n = self.name in n.size() > 0",
		"if a then b else c endif",
		"1 + 2 * 3",
		"x->select(y | y > 1)->collect(z | z * 2)",
		"Genre::Fiction",
		"not a",
		"-1",
		"'it''s'",
	}
	for _, src := range srcs {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		rendered := e.String()
		// The rendering must itself parse, and to the same rendering (fixpoint).
		e2, err := Parse(rendered)
		if err != nil {
			t.Errorf("reparse of %q (%q): %v", src, rendered, err)
			continue
		}
		if e2.String() != rendered {
			t.Errorf("render not stable: %q -> %q", rendered, e2.String())
		}
	}
}

func TestCollectionLiterals(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"Sequence{1, 2, 3}->size()", int64(3)},
		{"Set{1, 2, 2, 3}->size()", int64(3)},
		{"Bag{1, 2, 2}->size()", int64(3)},
		{"Sequence{}->isEmpty()", true},
		{"Sequence{1, 2, 3}->sum()", int64(6)},
		{"Sequence{3, 1, 2}->sortedBy(x | x)->first()", int64(1)},
		{"Set{'a', 'b'}->includes('a')", true},
		{"Sequence{1, 2, 3}->at(2)", int64(2)},
		{"Sequence{1, 2, 3}->indexOf(3)", int64(3)},
		{"Sequence{1, 2, 3}->indexOf(9)", int64(0)},
		{"Sequence{1, 2, 3}->reverse()->first()", int64(3)},
		{"Sequence{1, 2}->including(3)->size()", int64(3)},
		{"Sequence{1, 2}->append(3)->last()", int64(3)},
		{"Sequence{1, 2}->prepend(0)->first()", int64(0)},
		{"Sequence{1, 2, 2, 3}->excluding(2)->size()", int64(2)},
		{"Sequence{3, 1, 2}->max()", int64(3)},
		{"Sequence{3, 1, 2}->min()", int64(1)},
		{"Sequence{1, 2, 3}->avg()", 2.0},
		{"Sequence{}->max().oclIsUndefined()", true},
		{"Sequence{1, 2} = Sequence{1, 2}", true},
		{"Sequence{1, 2} = Sequence{2, 1}", false},
	}
	for _, c := range cases {
		v, err := EvalString(c.src, &Env{})
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if !oclEqual(v, c.want) {
			t.Errorf("%q = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestCollectionLiteralErrors(t *testing.T) {
	bad := []string{
		"Sequence{1,",
		"Set{1 2}",
		"Sequence{1}->at(0)",
		"Sequence{1}->at(2)",
		"Sequence{1}->at('x')",
		"Sequence{'a'}->avg()",
		"Sequence{1, 'a'}->max()",
	}
	for _, src := range bad {
		if _, err := EvalString(src, &Env{}); err == nil {
			t.Errorf("%q should fail", src)
		}
	}
}

func TestCollectionLiteralRendering(t *testing.T) {
	e, err := Parse("Set{1, 2}->union(Sequence{3})")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "Set{1, 2}->union(Sequence{3})" {
		t.Fatalf("render = %q", e.String())
	}
}
