package ocl

import (
	"fmt"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// StaticType is the checker's abstraction of an expression's type.
type StaticType struct {
	// Kind classifies the type.
	Kind StaticKind
	// Class is set for object types.
	Class *metamodel.Class
	// Elem is set for collection types.
	Elem *StaticType
}

// StaticKind enumerates the checker's type kinds.
type StaticKind int

// Static type kinds. Unknown is the top type: expressions the checker
// cannot type (e.g. taggedValue results) check against anything.
const (
	StaticUnknown StaticKind = iota
	StaticBoolean
	StaticInteger
	StaticReal
	StaticString
	StaticEnum
	StaticObject
	StaticCollection
	StaticVoid
)

// String renders the type for diagnostics.
func (t StaticType) String() string {
	switch t.Kind {
	case StaticBoolean:
		return "Boolean"
	case StaticInteger:
		return "Integer"
	case StaticReal:
		return "Real"
	case StaticString:
		return "String"
	case StaticEnum:
		return "Enumeration"
	case StaticObject:
		if t.Class != nil {
			return t.Class.Name()
		}
		return "Object"
	case StaticCollection:
		if t.Elem != nil {
			return "Collection(" + t.Elem.String() + ")"
		}
		return "Collection"
	case StaticVoid:
		return "OclVoid"
	default:
		return "?"
	}
}

func objType(c *metamodel.Class) StaticType {
	return StaticType{Kind: StaticObject, Class: c}
}

func collOf(elem StaticType) StaticType {
	e := elem
	return StaticType{Kind: StaticCollection, Elem: &e}
}

var unknownType = StaticType{Kind: StaticUnknown}

// CheckContext statically checks an OCL expression against a metamodel:
// `self` is typed as the given context class, navigations must name
// existing properties, and iterator/arrow operations must be known. It
// returns the expression's static type. The checker is deliberately
// permissive where the dynamic semantics are (numeric widening, Unknown
// propagation); it exists to catch misspelled properties and operations in
// rule definitions before any instance exists.
func CheckContext(src string, context *metamodel.Class, meta *metamodel.Package) (StaticType, error) {
	expr, err := Parse(src)
	if err != nil {
		return unknownType, err
	}
	ck := &checker{meta: meta, vars: map[string]StaticType{}}
	if context != nil {
		ck.vars["self"] = objType(context)
	}
	return ck.check(expr)
}

type checker struct {
	meta *metamodel.Package
	vars map[string]StaticType
}

func (ck *checker) check(e Expr) (StaticType, error) {
	switch n := e.(type) {
	case *LitExpr:
		switch n.Val.(type) {
		case int64:
			return StaticType{Kind: StaticInteger}, nil
		case float64:
			return StaticType{Kind: StaticReal}, nil
		case string:
			return StaticType{Kind: StaticString}, nil
		case bool:
			return StaticType{Kind: StaticBoolean}, nil
		default:
			return StaticType{Kind: StaticVoid}, nil
		}
	case *VarExpr:
		if t, ok := ck.vars[n.Name]; ok {
			return t, nil
		}
		if ck.meta != nil {
			if c, ok := ck.meta.FindClass(n.Name); ok {
				// A bare type name; only meaningful as allInstances receiver
				// or type argument, both handled by CallExpr.
				return objType(c), nil
			}
		}
		return unknownType, fmt.Errorf("ocl: unknown variable or type %q", n.Name)
	case *EnumExpr:
		if ck.meta != nil {
			cl, ok := ck.meta.FindClassifier(n.Enum)
			if !ok {
				return unknownType, fmt.Errorf("ocl: unknown enumeration %q", n.Enum)
			}
			en, ok := cl.(*metamodel.Enumeration)
			if !ok {
				return unknownType, fmt.Errorf("ocl: %q is not an enumeration", n.Enum)
			}
			if !en.Has(n.Literal) {
				return unknownType, fmt.Errorf("ocl: %q is not a literal of %q", n.Literal, n.Enum)
			}
		}
		return StaticType{Kind: StaticEnum}, nil
	case *NavExpr:
		recv, err := ck.check(n.Recv)
		if err != nil {
			return unknownType, err
		}
		return ck.navType(recv, n.Name)
	case *CallExpr:
		return ck.checkCall(n)
	case *ArrowExpr:
		return ck.checkArrow(n)
	case *BinExpr:
		lt, err := ck.check(n.L)
		if err != nil {
			return unknownType, err
		}
		rt, err := ck.check(n.R)
		if err != nil {
			return unknownType, err
		}
		switch n.Op {
		case "and", "or", "xor", "implies":
			if !boolish(lt) || !boolish(rt) {
				return unknownType, fmt.Errorf("ocl: %q needs Boolean operands, got %s and %s", n.Op, lt, rt)
			}
			return StaticType{Kind: StaticBoolean}, nil
		case "=", "<>":
			return StaticType{Kind: StaticBoolean}, nil
		case "<", "<=", ">", ">=":
			if !orderable(lt) || !orderable(rt) {
				return unknownType, fmt.Errorf("ocl: %q needs numbers or strings, got %s and %s", n.Op, lt, rt)
			}
			return StaticType{Kind: StaticBoolean}, nil
		case "+", "-", "*", "/", "mod", "div":
			if n.Op == "+" && (lt.Kind == StaticString || rt.Kind == StaticString) {
				// '+' concatenates only when both sides are strings (or one
				// side is untypeable); a string mixed with a number is the
				// classic typo the checker exists to catch.
				lOK := lt.Kind == StaticString || lt.Kind == StaticUnknown
				rOK := rt.Kind == StaticString || rt.Kind == StaticUnknown
				if !lOK || !rOK {
					return unknownType, fmt.Errorf("ocl: '+' cannot mix %s and %s", lt, rt)
				}
				return StaticType{Kind: StaticString}, nil
			}
			if !numeric(lt) || !numeric(rt) {
				return unknownType, fmt.Errorf("ocl: %q needs numeric operands, got %s and %s", n.Op, lt, rt)
			}
			if n.Op == "/" {
				return StaticType{Kind: StaticReal}, nil
			}
			if lt.Kind == StaticReal || rt.Kind == StaticReal {
				return StaticType{Kind: StaticReal}, nil
			}
			return StaticType{Kind: StaticInteger}, nil
		}
		return unknownType, fmt.Errorf("ocl: unknown operator %q", n.Op)
	case *UnExpr:
		t, err := ck.check(n.E)
		if err != nil {
			return unknownType, err
		}
		if n.Op == "not" {
			if !boolish(t) {
				return unknownType, fmt.Errorf("ocl: 'not' needs Boolean, got %s", t)
			}
			return StaticType{Kind: StaticBoolean}, nil
		}
		if !numeric(t) {
			return unknownType, fmt.Errorf("ocl: unary '-' needs a number, got %s", t)
		}
		return t, nil
	case *IfExpr:
		ct, err := ck.check(n.Cond)
		if err != nil {
			return unknownType, err
		}
		if !boolish(ct) {
			return unknownType, fmt.Errorf("ocl: if-condition must be Boolean, got %s", ct)
		}
		tt, err := ck.check(n.Then)
		if err != nil {
			return unknownType, err
		}
		et, err := ck.check(n.Else)
		if err != nil {
			return unknownType, err
		}
		if tt.Kind == et.Kind {
			return tt, nil
		}
		return unknownType, nil
	case *LetExpr:
		it, err := ck.check(n.Init)
		if err != nil {
			return unknownType, err
		}
		old, had := ck.vars[n.Name]
		ck.vars[n.Name] = it
		out, err := ck.check(n.Body)
		if had {
			ck.vars[n.Name] = old
		} else {
			delete(ck.vars, n.Name)
		}
		return out, err
	case *CollectionExpr:
		var elem StaticType
		for i, item := range n.Items {
			t, err := ck.check(item)
			if err != nil {
				return unknownType, err
			}
			if i == 0 {
				elem = t
			} else if elem.Kind != t.Kind {
				elem = unknownType
			}
		}
		return collOf(elem), nil
	default:
		return unknownType, fmt.Errorf("ocl: unhandled node %T", e)
	}
}

func (ck *checker) navType(recv StaticType, name string) (StaticType, error) {
	switch recv.Kind {
	case StaticUnknown, StaticVoid:
		return unknownType, nil
	case StaticCollection:
		if recv.Elem == nil {
			return collOf(unknownType), nil
		}
		elem, err := ck.navType(*recv.Elem, name)
		if err != nil {
			return unknownType, err
		}
		if elem.Kind == StaticCollection {
			return elem, nil // implicit flatten
		}
		return collOf(elem), nil
	case StaticObject:
		if recv.Class == nil {
			return unknownType, nil
		}
		p, ok := recv.Class.Property(name)
		if !ok {
			return unknownType, fmt.Errorf("ocl: %s has no property %q", recv.Class.QualifiedName(), name)
		}
		t := typeOfClassifier(p.Type())
		if p.IsMany() {
			return collOf(t), nil
		}
		return t, nil
	default:
		return unknownType, fmt.Errorf("ocl: cannot navigate %q on %s", name, recv)
	}
}

func typeOfClassifier(c metamodel.Classifier) StaticType {
	switch t := c.(type) {
	case *metamodel.Class:
		return objType(t)
	case *metamodel.Enumeration:
		return StaticType{Kind: StaticEnum}
	case *metamodel.DataType:
		switch t.Base() {
		case metamodel.PrimString:
			return StaticType{Kind: StaticString}
		case metamodel.PrimInteger:
			return StaticType{Kind: StaticInteger}
		case metamodel.PrimBoolean:
			return StaticType{Kind: StaticBoolean}
		case metamodel.PrimReal:
			return StaticType{Kind: StaticReal}
		}
	}
	return unknownType
}

// dotOps lists the known dot operations and whether their receiver must be
// a string, number, object or anything.
var dotOps = map[string]struct {
	result StaticKind
}{
	"oclIsUndefined": {StaticBoolean},
	"oclIsKindOf":    {StaticBoolean},
	"oclIsTypeOf":    {StaticBoolean},
	"oclAsType":      {StaticObject},
	"hasStereotype":  {StaticBoolean},
	"taggedValue":    {StaticUnknown},
	"size":           {StaticInteger},
	"toUpper":        {StaticString},
	"toUpperCase":    {StaticString},
	"toLower":        {StaticString},
	"toLowerCase":    {StaticString},
	"concat":         {StaticString},
	"substring":      {StaticString},
	"indexOf":        {StaticInteger},
	"contains":       {StaticBoolean},
	"startsWith":     {StaticBoolean},
	"abs":            {StaticUnknown},
	"max":            {StaticUnknown},
	"min":            {StaticUnknown},
	"allInstances":   {StaticCollection},
}

func (ck *checker) checkCall(n *CallExpr) (StaticType, error) {
	op, known := dotOps[n.Name]
	if !known {
		return unknownType, fmt.Errorf("ocl: unknown operation %q", n.Name)
	}
	// Type-position receivers and arguments.
	if n.Name == "allInstances" {
		v, ok := n.Recv.(*VarExpr)
		if !ok {
			return unknownType, fmt.Errorf("ocl: allInstances needs a type name receiver")
		}
		if ck.meta != nil {
			c, found := ck.meta.FindClass(v.Name)
			if !found {
				return unknownType, fmt.Errorf("ocl: unknown type %q", v.Name)
			}
			return collOf(objType(c)), nil
		}
		return collOf(unknownType), nil
	}
	if _, err := ck.check(n.Recv); err != nil {
		return unknownType, err
	}
	for _, a := range n.Args {
		if v, ok := a.(*VarExpr); ok && (n.Name == "oclIsKindOf" || n.Name == "oclIsTypeOf" || n.Name == "oclAsType") {
			if ck.meta != nil {
				if c, found := ck.meta.FindClass(v.Name); found {
					if n.Name == "oclAsType" {
						return objType(c), nil
					}
					continue
				}
				return unknownType, fmt.Errorf("ocl: unknown type %q", v.Name)
			}
			continue
		}
		if _, err := ck.check(a); err != nil {
			return unknownType, err
		}
	}
	return StaticType{Kind: op.result}, nil
}

// arrowResult describes a known arrow operation's static result: either a
// fixed kind, the element type, or the collection itself.
var arrowOps = map[string]string{
	"size": "int", "isEmpty": "bool", "notEmpty": "bool",
	"first": "elem", "last": "elem", "sum": "num", "avg": "num",
	"max": "elem", "min": "elem",
	"asSet": "coll", "flatten": "coll", "reverse": "coll",
	"includes": "bool", "excludes": "bool", "count": "int",
	"includesAll": "bool", "excludesAll": "bool",
	"union": "coll", "intersection": "coll",
	"including": "coll", "excluding": "coll", "append": "coll", "prepend": "coll",
	"at": "elem", "indexOf": "int",
	"select": "coll", "reject": "coll", "sortedBy": "coll",
	"collect": "anycoll",
	"forAll":  "bool", "exists": "bool", "one": "bool", "isUnique": "bool",
	"any": "elem",
}

func (ck *checker) checkArrow(n *ArrowExpr) (StaticType, error) {
	kind, known := arrowOps[n.Name]
	if !known {
		return unknownType, fmt.Errorf("ocl: unknown collection operation %q", n.Name)
	}
	recv, err := ck.check(n.Recv)
	if err != nil {
		return unknownType, err
	}
	elem := unknownType
	if recv.Kind == StaticCollection && recv.Elem != nil {
		elem = *recv.Elem
	} else if recv.Kind == StaticObject {
		elem = recv // arrow on scalar wraps a singleton
	}
	// Iterator bodies are checked with the iterator typed as the element.
	if n.Body != nil {
		iter := n.Iter
		if iter == "" {
			iter = "$implicit"
		}
		old, had := ck.vars[iter]
		ck.vars[iter] = elem
		if n.Iter == "" {
			if _, selfBound := ck.vars["self"]; !selfBound {
				ck.vars["self"] = elem
				defer delete(ck.vars, "self")
			}
		}
		bodyT, err := ck.check(n.Body)
		if had {
			ck.vars[iter] = old
		} else {
			delete(ck.vars, iter)
		}
		if err != nil {
			return unknownType, err
		}
		switch n.Name {
		case "forAll", "exists", "one", "isUnique":
			if !boolish(bodyT) {
				return unknownType, fmt.Errorf("ocl: %s body must be Boolean, got %s", n.Name, bodyT)
			}
		case "select", "reject":
			if !boolish(bodyT) {
				return unknownType, fmt.Errorf("ocl: %s body must be Boolean, got %s", n.Name, bodyT)
			}
		case "collect":
			return collOf(bodyT), nil
		}
	}
	for _, a := range n.Args {
		if _, err := ck.check(a); err != nil {
			return unknownType, err
		}
	}
	switch kind {
	case "int":
		return StaticType{Kind: StaticInteger}, nil
	case "bool":
		return StaticType{Kind: StaticBoolean}, nil
	case "num":
		return unknownType, nil
	case "elem":
		return elem, nil
	case "coll":
		return collOf(elem), nil
	case "anycoll":
		return collOf(unknownType), nil
	default:
		return unknownType, nil
	}
}

func boolish(t StaticType) bool {
	return t.Kind == StaticBoolean || t.Kind == StaticUnknown || t.Kind == StaticVoid
}

func numeric(t StaticType) bool {
	return t.Kind == StaticInteger || t.Kind == StaticReal || t.Kind == StaticUnknown
}

func orderable(t StaticType) bool {
	return numeric(t) || t.Kind == StaticString
}
