// Benchmarks comparing the tree-walking interpreter against compiled
// Programs on the three shapes that dominate production evaluation: a
// simple attribute predicate, an iterator-heavy forAll, and a model-wide
// allInstances scan. scripts/bench.sh distills these into BENCH_ocl.json.
//
// Attribute values deliberately stay in 0..10: Go boxes small non-negative
// integers without allocating, so the simple-predicate benchmark isolates
// the evaluator's own allocations (which must be zero when compiled).
package ocl

import (
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

type benchFixture struct {
	meta *metamodel.Package
	mdl  *metamodel.Model
	rec  *metamodel.Object
	xs   []any
}

func newBenchFixture(b *testing.B) *benchFixture {
	b.Helper()
	pkg := metamodel.NewPackage("Bench")
	intT := pkg.AddDataType("Integer", metamodel.PrimInteger)
	rec := pkg.AddClass("Rec")
	rec.AddAttr("score", intT)
	mdl := metamodel.NewModel("bench", pkg)
	var first *metamodel.Object
	for i := 0; i < 100; i++ {
		o := mdl.MustCreate("Rec")
		o.MustSet("score", metamodel.Int(int64(i%11)))
		if first == nil {
			first = o
		}
	}
	xs := make([]any, 100)
	for i := range xs {
		xs[i] = int64(i % 11)
	}
	return &benchFixture{meta: pkg, mdl: mdl, rec: first, xs: xs}
}

const (
	benchSimpleSrc = "self.score >= 0 and self.score <= 10"
	benchForAllSrc = "xs->forAll(x | 0 <= x and x <= 10 and x * x <= 100)"
	benchScanSrc   = "Rec.allInstances()->forAll(r | r.score >= 0 and r.score <= 10)"
)

func benchEnv(f *benchFixture, withVars bool) *Env {
	env := &Env{Model: f.mdl}
	if withVars {
		env.Vars = map[string]any{"self": f.rec, "xs": f.xs}
	}
	return env
}

func mustTrue(b *testing.B, eval func() (any, error)) {
	v, err := eval()
	if err != nil {
		b.Fatal(err)
	}
	if v != true {
		b.Fatalf("benchmark expression yielded %#v, want true", v)
	}
}

func BenchmarkEvalInterpreted(b *testing.B) {
	f := newBenchFixture(b)
	cases := []struct {
		name string
		src  string
	}{
		{"Simple", benchSimpleSrc},
		{"ForAll", benchForAllSrc},
		{"AllInstances", benchScanSrc},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			expr := MustParse(tc.src)
			env := benchEnv(f, true)
			mustTrue(b, func() (any, error) { return Eval(expr, env) })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Eval(expr, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEvalCompiled(b *testing.B) {
	f := newBenchFixture(b)
	opts := CompileOptions{Meta: f.meta, Vars: []string{"xs"}}

	b.Run("Simple", func(b *testing.B) {
		prog, err := CompileWith(MustParse(benchSimpleSrc), opts)
		if err != nil {
			b.Fatal(err)
		}
		env := benchEnv(f, false) // hot path: shared Env, self via slot
		mustTrue(b, func() (any, error) { return prog.EvalSelf(f.rec, env) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prog.EvalSelf(f.rec, env); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("ForAll", func(b *testing.B) {
		prog, err := CompileWith(MustParse(benchForAllSrc), opts)
		if err != nil {
			b.Fatal(err)
		}
		env := benchEnv(f, true) // same Env shape as the interpreted run
		mustTrue(b, func() (any, error) { return prog.Eval(env) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prog.Eval(env); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("AllInstances", func(b *testing.B) {
		prog, err := CompileWith(MustParse(benchScanSrc), opts)
		if err != nil {
			b.Fatal(err)
		}
		env := benchEnv(f, false)
		mustTrue(b, func() (any, error) { return prog.Eval(env) })
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prog.Eval(env); err != nil {
				b.Fatal(err)
			}
		}
	})
}
