// Package ocl implements a small OCL 2.x expression language: enough of the
// standard to express and machine-check the well-formedness constraints of
// the WebRE and DQ_WebRE metamodels (paper Table 3), evaluated reflectively
// over metamodel.Object graphs.
//
// Supported constructs: boolean/integer/real/string literals, self and let
// variables, property navigation with implicit collect over collections,
// arrow operations (size, isEmpty, notEmpty, includes, excludes, count,
// first, sum, asSet, select, reject, collect, forAll, exists, any, one),
// comparison and arithmetic operators, and/or/xor/implies/not,
// if-then-else-endif, let-in, Type.allInstances(), oclIsKindOf/oclIsTypeOf,
// enumeration literals (Enum::Literal) and — as an extension for profile
// models — hasStereotype('Name') and taggedValue('Name').
//
// Two evaluators share these semantics. Eval walks the AST directly and is
// the reference implementation — the oracle: its behavior, including exact
// error text, defines the language. Compile lowers the AST to Go closures
// with slot-indexed variable frames, constant folding and pooled frames for
// the hot paths; compiled Programs must agree with Eval on every input,
// value or error, a contract enforced by the differential tests and the
// FuzzParse harness. CompileString adds a process-wide cache so every
// consumer of the same (source, options) pair shares one compiled Program.
package ocl

import "fmt"

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokArrow   // ->
	tokDot     // .
	tokDColon  // ::
	tokLParen  // (
	tokRParen  // )
	tokBar     // |
	tokComma   // ,
	tokEq      // =
	tokNe      // <>
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokKwAnd   // and
	tokKwOr    // or
	tokKwXor   // xor
	tokKwNot   // not
	tokKwImpl  // implies
	tokKwIf    // if
	tokKwThen  // then
	tokKwElse  // else
	tokKwEndif // endif
	tokKwLet   // let
	tokKwIn    // in
	tokKwTrue  // true
	tokKwFalse // false
	tokKwNull  // null
	tokKwSelf  // self
	tokKwMod   // mod
	tokKwDiv   // div
	tokLBrace  // {
	tokRBrace  // }
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of expression"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords maps reserved words to their token kinds.
var keywords = map[string]tokKind{
	"and":     tokKwAnd,
	"or":      tokKwOr,
	"xor":     tokKwXor,
	"not":     tokKwNot,
	"implies": tokKwImpl,
	"if":      tokKwIf,
	"then":    tokKwThen,
	"else":    tokKwElse,
	"endif":   tokKwEndif,
	"let":     tokKwLet,
	"in":      tokKwIn,
	"true":    tokKwTrue,
	"false":   tokKwFalse,
	"null":    tokKwNull,
	"self":    tokKwSelf,
	"mod":     tokKwMod,
	"div":     tokKwDiv,
}

// Error is a lexing, parsing or evaluation error with a byte position into
// the source expression.
type Error struct {
	// Pos is the byte offset into the expression, or -1 when unknown.
	Pos int
	// Msg describes the problem.
	Msg string
	// Expr is the offending source expression.
	Expr string
}

// Error renders the message with a position marker.
func (e *Error) Error() string {
	if e.Pos < 0 {
		return fmt.Sprintf("ocl: %s", e.Msg)
	}
	return fmt.Sprintf("ocl: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}

func errAt(expr string, pos int, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...), Expr: expr}
}
