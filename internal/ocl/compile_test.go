package ocl

import (
	"strings"
	"testing"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// newTestCompiler mirrors CompileWith's setup so tests can inspect the
// compiled{} result (constness) of individual nodes.
func newTestCompiler(opts CompileOptions) *compiler {
	c := &compiler{meta: opts.Meta, extSlot: map[string]int{"self": 0}, externs: []string{"self"}, nslots: 1}
	for _, v := range opts.Vars {
		if _, dup := c.extSlot[v]; !dup {
			c.extSlot[v] = c.nslots
			c.externs = append(c.externs, v)
			c.nslots++
		}
	}
	return c
}

func TestConstantFolding(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"1 + 2 * 3", int64(7)},
		{"10 / 4", 2.5},
		{"false and (1 / 0) > 0", false},
		{"true or (1 / 0) > 0", true},
		{"false implies (1 / 0) > 0", true},
		{"not (1 > 2)", true},
		{"if 1 < 2 then 'x' else 'y' endif", "x"},
		{"'ab'.concat('cd')", "abcd"},
		{"'Hello'.toUpper()", "HELLO"},
		{"'hello'.substring(2, 4)", "ell"},
		{"(3).max(9)", int64(9)},
		{"null.oclIsUndefined()", true},
		{"1 = 1.0", true},
		{"'a' < 'b'", true},
		{"let k = 2 in k * k + 1", int64(5)},
	}
	for _, tc := range cases {
		c := newTestCompiler(CompileOptions{})
		cc := c.compile(MustParse(tc.src))
		if !cc.isConst || cc.err != nil {
			t.Errorf("%q: expected constant fold, got isConst=%v err=%v", tc.src, cc.isConst, cc.err)
			continue
		}
		if !oclEqual(cc.val, tc.want) || cc.val != tc.want {
			t.Errorf("%q: folded to %#v, want %#v", tc.src, cc.val, tc.want)
		}
	}
}

func TestConstantFoldingDefersErrors(t *testing.T) {
	// A compile-time-detectable error must surface at RUN time (so a
	// short-circuiting parent can still skip it), with the interpreter's
	// exact message.
	c := newTestCompiler(CompileOptions{})
	cc := c.compile(MustParse("1 / 0"))
	if !cc.isConst || cc.err == nil {
		t.Fatalf("1/0: expected const error, got isConst=%v err=%v", cc.isConst, cc.err)
	}
	if got := cc.err.Error(); got != "ocl: division by zero" {
		t.Fatalf("1/0 folded error = %q", got)
	}
	// And the guarded form folds the error away entirely.
	guarded := c.compile(MustParse("false and (1 / 0) > 0"))
	if !guarded.isConst || guarded.err != nil || guarded.val != false {
		t.Fatalf("guarded const error: isConst=%v val=%#v err=%v", guarded.isConst, guarded.val, guarded.err)
	}
}

func TestNoFoldingForDynamicOrUnsafeNodes(t *testing.T) {
	for _, src := range []string{
		"self.name",           // frame-dependent
		"x + 1",               // variable
		"Set{1, 2}",           // collection literal: folding would share the slice
		"Sequence{1}->size()", // collection-typed intermediate
		"Genre::Fiction",      // metamodel-dependent without compile-time Meta
	} {
		c := newTestCompiler(CompileOptions{})
		if cc := c.compile(MustParse(src)); cc.isConst {
			t.Errorf("%q: folded (val=%#v err=%v) but must stay dynamic", src, cc.val, cc.err)
		}
	}
}

func TestCompileTimeTypeResolution(t *testing.T) {
	lib, m := libFixture(t)
	_, b1, _ := seedLibrary(t, m)

	// With Meta, enum literals become compile-time constants ...
	c := newTestCompiler(CompileOptions{Meta: lib})
	cc := c.compile(MustParse("Genre::Fiction"))
	if !cc.isConst || cc.err != nil {
		t.Fatalf("enum literal with Meta: isConst=%v err=%v", cc.isConst, cc.err)
	}
	// ... and unknown types fail deterministically at run time.
	prog, err := CompileWith(MustParse("self.oclIsKindOf(NoSuch)"), CompileOptions{Meta: lib})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.EvalSelf(b1, &Env{Model: m}); err == nil || !strings.Contains(err.Error(), `unknown type "NoSuch"`) {
		t.Fatalf("unknown type arg: err=%v", err)
	}

	// allInstances resolved against compile-time Meta works under an Env
	// that only supplies the Model.
	prog, err = CompileWith(MustParse("Book.allInstances()->size()"), CompileOptions{Meta: lib})
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.Eval(&Env{Model: m})
	if err != nil || v != int64(2) {
		t.Fatalf("allInstances: v=%v err=%v", v, err)
	}
}

func TestProgramSlotsAndFrames(t *testing.T) {
	prog, err := CompileWith(MustParse("x + y * self"), CompileOptions{Vars: []string{"y", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if slot, ok := prog.Slot("self"); !ok || slot != 0 {
		t.Fatalf("self slot = %d, %v; want 0, true", slot, ok)
	}
	for _, name := range []string{"x", "y"} {
		if _, ok := prog.Slot(name); !ok {
			t.Fatalf("declared var %q has no slot", name)
		}
	}
	fr := prog.NewFrame(&Env{})
	defer fr.Release()
	fr.SetVar("self", int64(2))
	fr.SetVar("x", int64(10))
	fr.SetVar("y", int64(3))
	v, err := fr.Eval()
	if err != nil || v != int64(16) {
		t.Fatalf("frame eval: v=%v err=%v", v, err)
	}
	// Reusing the same frame with one rebound slot re-evaluates correctly.
	fr.SetVar("x", int64(0))
	if v, err = fr.Eval(); err != nil || v != int64(6) {
		t.Fatalf("frame re-eval: v=%v err=%v", v, err)
	}
	if ok := fr.SetVar("nope", 1); ok {
		t.Fatal("SetVar accepted an undeclared variable")
	}
}

func TestUndeclaredVarsFallBackToEnv(t *testing.T) {
	// A program compiled without declaring "z" still sees it through
	// Env.Vars, mirroring the interpreter's run-time resolution.
	prog, err := CompileWith(MustParse("z * 2"), CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := prog.Eval(&Env{Vars: map[string]any{"z": int64(21)}})
	if err != nil || v != int64(42) {
		t.Fatalf("undeclared fallback: v=%v err=%v", v, err)
	}
	if _, err := prog.Eval(&Env{}); err == nil {
		t.Fatal("unbound undeclared variable should error")
	}
}

func TestCompileStringCache(t *testing.T) {
	lib, _ := libFixture(t)
	p1, err := CompileString("self.pages > 0", CompileOptions{Meta: lib})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompileString("self.pages > 0", CompileOptions{Meta: lib})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache miss for identical (src, meta, vars)")
	}
	p3, err := CompileString("self.pages > 0", CompileOptions{Meta: lib, Vars: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if p3 == p1 {
		t.Fatal("cache collided across different Vars")
	}
	p4, err := CompileString("self.pages > 0", CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p4 == p1 {
		t.Fatal("cache collided across different Meta")
	}
	if _, err := CompileString("1 +", CompileOptions{}); err == nil {
		t.Fatal("parse error must propagate through CompileString")
	}
}

// TestEvalAllocsEmptyVars is the regression test for the satellite fix:
// evaluating with a nil/empty Vars map must not copy or allocate a map.
// The only allocation budget is the evaluator struct itself.
func TestEvalAllocsEmptyVars(t *testing.T) {
	expr := MustParse("1 < 2 and 3 < 4")
	env := &Env{}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := Eval(expr, env); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Eval with empty Vars allocates %.1f objects/op, want <= 1", allocs)
	}
}

// TestCompiledEvalZeroAllocs pins the tentpole's steady-state guarantee: a
// simple compiled predicate over an object evaluates with zero allocations
// (pooled frame, slot-bound self, no map traffic). Property values stay in
// the interpreter's small-int range so interface boxing is free.
func TestCompiledEvalZeroAllocs(t *testing.T) {
	lib := metamodel.NewPackage("P")
	intT := lib.AddDataType("Integer", metamodel.PrimInteger)
	cls := lib.AddClass("Rec")
	cls.AddAttr("score", intT)
	m := metamodel.NewModel("m", lib)
	o := m.MustCreate("Rec")
	o.MustSet("score", metamodel.Int(7))

	prog, err := CompileWith(MustParse("self.score >= 0 and self.score <= 10"), CompileOptions{Meta: lib})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Model: m}
	// Warm the frame pool, then measure.
	if ok, err := prog.EvalBoolSelf(o, env); err != nil || !ok {
		t.Fatalf("warmup: ok=%v err=%v", ok, err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ok, err := prog.EvalBoolSelf(o, env)
		if err != nil || !ok {
			t.Fatal("evaluation changed result under AllocsPerRun")
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled steady-state evaluation allocates %.2f objects/op, want 0", allocs)
	}
}

func TestFreeVars(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"score >= 0 and score <= 10", "score"},
		{"self.name.size() > 0", "self"},
		{"let k = 2 in k * n", "n"},
		{"xs->forAll(x | x > lo and x < hi)", "hi,lo,xs"},
		{"Book.allInstances()->size() > 0", ""},
		{"self.oclIsKindOf(Book) and other.oclIsUndefined()", "other,self"},
		{"Sequence{1, 2}->exists(self > t)", "t"},
		{"Genre::Fiction = g", "g"},
	}
	for _, tc := range cases {
		got := strings.Join(FreeVars(MustParse(tc.src)), ",")
		if got != tc.want {
			t.Errorf("FreeVars(%q) = %q, want %q", tc.src, got, tc.want)
		}
	}
}

func TestProgramConcurrentUse(t *testing.T) {
	_, m := libFixture(t)
	_, b1, b2 := seedLibrary(t, m)
	prog, err := CompileWith(MustParse("self.pages > 0 and self.title.size() > 0"),
		CompileOptions{Meta: m.Metamodel()})
	if err != nil {
		t.Fatal(err)
	}
	env := &Env{Model: m}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 500; i++ {
				for _, self := range []any{b1, b2} {
					if ok, err := prog.EvalBoolSelf(self, env); err != nil || !ok {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent evaluation: %v", err)
		}
	}
}
