package ocl

import (
	"fmt"
	"sort"
	"strings"

	"github.com/modeldriven/dqwebre/internal/metamodel"
)

// Env supplies the evaluation context for an OCL expression: the model
// (for allInstances), the metamodel (for type-name resolution), variable
// bindings (at minimum "self") and optional profile hooks.
type Env struct {
	// Model provides class extents for Type.allInstances(). May be nil for
	// expressions that do not use allInstances.
	Model *metamodel.Model
	// Meta resolves type names in oclIsKindOf/allInstances; defaults to
	// Model.Metamodel() when nil.
	Meta *metamodel.Package
	// Vars holds variable bindings; Eval copies it, so shared Envs are safe.
	Vars map[string]any
	// Stereotypes, when non-nil, backs the hasStereotype('N') extension: it
	// returns the stereotype names applied to an object.
	Stereotypes func(*metamodel.Object) []string
	// TaggedValue, when non-nil, backs the taggedValue('N') extension: it
	// returns the tagged value of any applied stereotype, or nil.
	TaggedValue func(*metamodel.Object, string) metamodel.Value
	// Extent, when non-nil, overrides Model.AllInstances for
	// Type.allInstances() — validation engines inject a memoized extent so
	// repeated global scans over an unchanging model are paid once.
	Extent func(*metamodel.Class) []*metamodel.Object
}

func (e *Env) meta() *metamodel.Package {
	if e.Meta != nil {
		return e.Meta
	}
	if e.Model != nil {
		return e.Model.Metamodel()
	}
	return nil
}

// Eval evaluates a parsed expression. Results use the native domain:
// bool, int64, float64, string, *metamodel.Object, metamodel.EnumLit,
// []any (collections) and nil (OclVoid).
func Eval(expr Expr, env *Env) (any, error) {
	if env == nil {
		env = &Env{}
	}
	ev := &evaluator{env: env}
	// Copy the bindings so shared Envs stay safe under the evaluator's
	// let/iterator mutations — but only when there is something to copy; a
	// nil or empty Vars must not cost a map allocation per call.
	if len(env.Vars) > 0 {
		ev.vars = make(map[string]any, len(env.Vars))
		for k, v := range env.Vars {
			ev.vars[k] = v
		}
	}
	return ev.eval(expr)
}

// EvalString parses and evaluates src in one step.
func EvalString(src string, env *Env) (any, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(e, env)
}

// EvalBool evaluates src and requires a boolean result; OCL's null is
// treated as false with ok reporting, matching constraint-check semantics
// where an undefined constraint does not hold.
func EvalBool(src string, env *Env) (bool, error) {
	v, err := EvalString(src, env)
	if err != nil {
		return false, err
	}
	switch t := v.(type) {
	case bool:
		return t, nil
	case nil:
		return false, nil
	default:
		return false, fmt.Errorf("ocl: expression %q yields %T, not Boolean", src, v)
	}
}

type evaluator struct {
	env *Env
	// vars is lazily allocated: expressions without bindings never touch it.
	vars map[string]any
}

// setVar binds a variable, allocating the map on first write.
func (ev *evaluator) setVar(name string, v any) {
	if ev.vars == nil {
		ev.vars = make(map[string]any, 4)
	}
	ev.vars[name] = v
}

func (ev *evaluator) eval(e Expr) (any, error) {
	switch n := e.(type) {
	case *LitExpr:
		return n.Val, nil
	case *VarExpr:
		if v, ok := ev.vars[n.Name]; ok {
			return v, nil
		}
		// A bare identifier that is not a variable denotes a type.
		return resolveTypeName(ev.env, n.Name)
	case *EnumExpr:
		return resolveEnumLit(ev.env, n.Enum, n.Literal)
	case *NavExpr:
		recv, err := ev.eval(n.Recv)
		if err != nil {
			return nil, err
		}
		return navigateValue(recv, n.Name)
	case *CallExpr:
		return ev.call(n)
	case *ArrowExpr:
		return ev.arrow(n)
	case *UnExpr:
		v, err := ev.eval(n.E)
		if err != nil {
			return nil, err
		}
		return evalUnary(n.Op, v)
	case *IfExpr:
		c, err := ev.eval(n.Cond)
		if err != nil {
			return nil, err
		}
		b, ok := c.(bool)
		if !ok {
			return nil, fmt.Errorf("ocl: if-condition must be Boolean, got %s", typeName(c))
		}
		if b {
			return ev.eval(n.Then)
		}
		return ev.eval(n.Else)
	case *CollectionExpr:
		out := make([]any, 0, len(n.Items))
		for _, item := range n.Items {
			v, err := ev.eval(item)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		if n.Kind == "Set" {
			return dedupe(out), nil
		}
		return out, nil
	case *LetExpr:
		v, err := ev.eval(n.Init)
		if err != nil {
			return nil, err
		}
		old, had := ev.vars[n.Name]
		ev.setVar(n.Name, v)
		out, err := ev.eval(n.Body)
		if had {
			ev.vars[n.Name] = old
		} else {
			delete(ev.vars, n.Name)
		}
		return out, err
	case *BinExpr:
		return ev.binary(n)
	default:
		return nil, fmt.Errorf("ocl: unhandled expression node %T", e)
	}
}

// typeRef is the evaluation result of a bare type name.
type typeRef struct{ c *metamodel.Class }

// resolveTypeName resolves a bare identifier that is not a variable; the
// error message covers both readings.
func resolveTypeName(env *Env, name string) (any, error) {
	if mm := env.meta(); mm != nil {
		if c, ok := mm.FindClass(name); ok {
			return typeRef{c: c}, nil
		}
	}
	return nil, fmt.Errorf("ocl: unknown variable or type %q", name)
}

// resolveTypeArg resolves a type argument of oclIsKindOf/oclIsTypeOf/
// oclAsType.
func resolveTypeArg(env *Env, name string) (any, error) {
	if mm := env.meta(); mm != nil {
		if c, ok := mm.FindClass(name); ok {
			return typeRef{c: c}, nil
		}
	}
	return nil, fmt.Errorf("ocl: unknown type %q", name)
}

// resolveEnumLit resolves Enum::Literal against the env's metamodel.
func resolveEnumLit(env *Env, enum, literal string) (any, error) {
	mm := env.meta()
	if mm == nil {
		return nil, fmt.Errorf("ocl: no metamodel to resolve %s::%s", enum, literal)
	}
	cl, ok := mm.FindClassifier(enum)
	if !ok {
		return nil, fmt.Errorf("ocl: unknown enumeration %q", enum)
	}
	en, ok := cl.(*metamodel.Enumeration)
	if !ok {
		return nil, fmt.Errorf("ocl: %q is not an enumeration", enum)
	}
	if !en.Has(literal) {
		return nil, fmt.Errorf("ocl: %q is not a literal of %q", literal, enum)
	}
	return metamodel.EnumLit{Enum: en, Literal: literal}, nil
}

// evalAllInstances implements the type-level T.allInstances() call.
func evalAllInstances(env *Env, name string) (any, error) {
	mm := env.meta()
	if mm == nil {
		return nil, fmt.Errorf("ocl: no metamodel for %s.allInstances()", name)
	}
	c, ok := mm.FindClass(name)
	if !ok {
		return nil, fmt.Errorf("ocl: unknown type %q", name)
	}
	return instancesOf(env, c, name)
}

// instancesOf materializes a class extent through the env's Extent hook or
// model.
func instancesOf(env *Env, c *metamodel.Class, name string) (any, error) {
	if env.Extent != nil {
		objs := env.Extent(c)
		out := make([]any, len(objs))
		for i, o := range objs {
			out[i] = o
		}
		return out, nil
	}
	if env.Model == nil {
		return nil, fmt.Errorf("ocl: no model for %s.allInstances()", name)
	}
	objs := env.Model.AllInstances(c)
	out := make([]any, len(objs))
	for i, o := range objs {
		out[i] = o
	}
	return out, nil
}

// navigateValue implements dot navigation with implicit collect over
// collections.
func navigateValue(recv any, name string) (any, error) {
	switch r := recv.(type) {
	case nil:
		return nil, nil // navigation over null yields null
	case *metamodel.Object:
		return objectProperty(r, name)
	case []any:
		var out []any
		for _, item := range r {
			v, err := navigateValue(item, name)
			if err != nil {
				return nil, err
			}
			switch t := v.(type) {
			case nil:
				// skip nulls, as OCL collect over navigation flattens them away
			case []any:
				out = append(out, t...)
			default:
				out = append(out, t)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ocl: cannot navigate %q on %s", name, typeName(recv))
	}
}

// objectProperty reads a slot and converts to the native domain.
func objectProperty(o *metamodel.Object, name string) (any, error) {
	p, ok := o.Class().Property(name)
	if !ok {
		return nil, fmt.Errorf("ocl: %s has no property %q", o.Class().QualifiedName(), name)
	}
	v, set := o.Get(name)
	if !set {
		if p.IsMany() {
			return []any{}, nil
		}
		return nil, nil
	}
	return toNative(v), nil
}

// toNative converts a metamodel.Value to the evaluator's native domain.
func toNative(v metamodel.Value) any {
	switch t := v.(type) {
	case metamodel.String:
		return string(t)
	case metamodel.Int:
		return int64(t)
	case metamodel.Bool:
		return bool(t)
	case metamodel.Real:
		return float64(t)
	case metamodel.EnumLit:
		return t
	case metamodel.Ref:
		return t.Target
	case *metamodel.List:
		out := make([]any, 0, len(t.Items))
		for _, item := range t.Items {
			out = append(out, toNative(item))
		}
		return out
	default:
		return nil
	}
}

// call dispatches dot calls: type operations, object operations, string and
// numeric operations and the profile extensions.
func (ev *evaluator) call(n *CallExpr) (any, error) {
	// Type-level: T.allInstances()
	if v, ok := n.Recv.(*VarExpr); ok && n.Name == "allInstances" {
		if _, bound := ev.vars[v.Name]; !bound {
			return evalAllInstances(ev.env, v.Name)
		}
	}
	recv, err := ev.eval(n.Recv)
	if err != nil {
		return nil, err
	}
	argv := make([]any, len(n.Args))
	for i, a := range n.Args {
		// Type arguments to oclIsKindOf / oclIsTypeOf stay unevaluated names.
		if v, ok := a.(*VarExpr); ok && (n.Name == "oclIsKindOf" || n.Name == "oclIsTypeOf" || n.Name == "oclAsType") {
			if _, bound := ev.vars[v.Name]; !bound {
				tr, err := resolveTypeArg(ev.env, v.Name)
				if err != nil {
					return nil, err
				}
				argv[i] = tr
				continue
			}
		}
		val, err := ev.eval(a)
		if err != nil {
			return nil, err
		}
		argv[i] = val
	}
	return dispatchCall(ev.env, recv, n.Name, argv)
}

// dispatchCall executes a dot call on an evaluated receiver and arguments.
// It needs the env only for the hasStereotype/taggedValue profile hooks.
func dispatchCall(env *Env, recv any, name string, args []any) (any, error) {
	switch name {
	case "oclIsUndefined":
		return recv == nil, nil
	case "oclIsKindOf", "oclIsTypeOf":
		if len(args) != 1 {
			return nil, fmt.Errorf("ocl: %s takes one type argument", name)
		}
		tr, ok := args[0].(typeRef)
		if !ok {
			return nil, fmt.Errorf("ocl: %s needs a type argument", name)
		}
		o, ok := recv.(*metamodel.Object)
		if !ok {
			return false, nil
		}
		if name == "oclIsTypeOf" {
			return o.Class() == tr.c, nil
		}
		return o.IsA(tr.c), nil
	case "oclAsType":
		if len(args) != 1 {
			return nil, fmt.Errorf("ocl: oclAsType takes one type argument")
		}
		tr, ok := args[0].(typeRef)
		if !ok {
			return nil, fmt.Errorf("ocl: oclAsType needs a type argument")
		}
		o, ok := recv.(*metamodel.Object)
		if !ok || !o.IsA(tr.c) {
			return nil, nil
		}
		return o, nil
	case "hasStereotype":
		if env.Stereotypes == nil {
			return nil, fmt.Errorf("ocl: hasStereotype unavailable: no stereotype resolver in Env")
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("ocl: hasStereotype takes one string argument")
		}
		want, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("ocl: hasStereotype argument must be a string")
		}
		o, ok := recv.(*metamodel.Object)
		if !ok {
			return false, nil
		}
		for _, s := range env.Stereotypes(o) {
			if s == want {
				return true, nil
			}
		}
		return false, nil
	case "taggedValue":
		if env.TaggedValue == nil {
			return nil, fmt.Errorf("ocl: taggedValue unavailable: no tagged-value resolver in Env")
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("ocl: taggedValue takes one string argument")
		}
		want, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("ocl: taggedValue argument must be a string")
		}
		o, ok := recv.(*metamodel.Object)
		if !ok {
			return nil, nil
		}
		v := env.TaggedValue(o, want)
		if v == nil {
			return nil, nil
		}
		return toNative(v), nil
	}
	// String operations.
	if s, ok := recv.(string); ok {
		switch name {
		case "size":
			return int64(len(s)), nil
		case "toUpper", "toUpperCase":
			return strings.ToUpper(s), nil
		case "toLower", "toLowerCase":
			return strings.ToLower(s), nil
		case "concat":
			if len(args) == 1 {
				if t, ok := args[0].(string); ok {
					return s + t, nil
				}
			}
			return nil, fmt.Errorf("ocl: concat takes one string argument")
		case "substring":
			// OCL substring is 1-based and inclusive on both ends.
			if len(args) == 2 {
				lo, ok1 := args[0].(int64)
				hi, ok2 := args[1].(int64)
				if ok1 && ok2 && lo >= 1 && hi <= int64(len(s)) && lo <= hi {
					return s[lo-1 : hi], nil
				}
			}
			return nil, fmt.Errorf("ocl: substring(lower, upper) out of range")
		case "indexOf":
			if len(args) == 1 {
				if t, ok := args[0].(string); ok {
					return int64(strings.Index(s, t) + 1), nil
				}
			}
			return nil, fmt.Errorf("ocl: indexOf takes one string argument")
		case "contains":
			if len(args) == 1 {
				if t, ok := args[0].(string); ok {
					return strings.Contains(s, t), nil
				}
			}
			return nil, fmt.Errorf("ocl: contains takes one string argument")
		case "startsWith":
			if len(args) == 1 {
				if t, ok := args[0].(string); ok {
					return strings.HasPrefix(s, t), nil
				}
			}
			return nil, fmt.Errorf("ocl: startsWith takes one string argument")
		}
	}
	// Numeric operations.
	switch name {
	case "abs":
		switch t := recv.(type) {
		case int64:
			if t < 0 {
				return -t, nil
			}
			return t, nil
		case float64:
			if t < 0 {
				return -t, nil
			}
			return t, nil
		}
	case "max", "min":
		if len(args) == 1 {
			a, aok := numOf(recv)
			b, bok := numOf(args[0])
			if aok && bok {
				if (name == "max") == (a >= b) {
					return recv, nil
				}
				return args[0], nil
			}
		}
	}
	return nil, fmt.Errorf("ocl: unknown operation %q on %s", name, typeName(recv))
}

// arrow implements collection operations.
func (ev *evaluator) arrow(n *ArrowExpr) (any, error) {
	recv, err := ev.eval(n.Recv)
	if err != nil {
		return nil, err
	}
	coll := asCollection(recv)
	if iteratorOps[n.Name] {
		return ev.iterate(n, coll)
	}
	return evalArrowOp(n.Name, coll, len(n.Args), func(i int) (any, error) {
		return ev.eval(n.Args[i])
	})
}

// evalArrowOp executes a non-iterator arrow operation. nargs is the
// syntactic argument count and evalArg evaluates the i-th argument on
// demand — operations validate arity before touching any argument, and
// size/isEmpty/... never evaluate theirs, exactly like the tree-walker
// always has.
func evalArrowOp(name string, coll []any, nargs int, evalArg func(int) (any, error)) (any, error) {
	switch name {
	case "size":
		return int64(len(coll)), nil
	case "isEmpty":
		return len(coll) == 0, nil
	case "notEmpty":
		return len(coll) > 0, nil
	case "first":
		if len(coll) == 0 {
			return nil, nil
		}
		return coll[0], nil
	case "last":
		if len(coll) == 0 {
			return nil, nil
		}
		return coll[len(coll)-1], nil
	case "sum":
		var isum int64
		var fsum float64
		real := false
		for _, v := range coll {
			switch t := v.(type) {
			case int64:
				isum += t
				fsum += float64(t)
			case float64:
				real = true
				fsum += t
			default:
				return nil, fmt.Errorf("ocl: sum over non-numeric element %s", typeName(v))
			}
		}
		if real {
			return fsum, nil
		}
		return isum, nil
	case "asSet":
		return dedupe(coll), nil
	case "flatten":
		var out []any
		for _, v := range coll {
			if inner, ok := v.([]any); ok {
				out = append(out, inner...)
			} else {
				out = append(out, v)
			}
		}
		return out, nil
	case "includes", "excludes", "count":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: %s takes one argument", name)
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		cnt := int64(0)
		for _, v := range coll {
			if oclEqual(v, arg) {
				cnt++
			}
		}
		switch name {
		case "includes":
			return cnt > 0, nil
		case "excludes":
			return cnt == 0, nil
		default:
			return cnt, nil
		}
	case "includesAll", "excludesAll":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: %s takes one collection argument", name)
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		other := asCollection(arg)
		for _, want := range other {
			found := false
			for _, v := range coll {
				if oclEqual(v, want) {
					found = true
					break
				}
			}
			if (name == "includesAll") != found {
				return false, nil
			}
		}
		return true, nil
	case "union":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: union takes one collection argument")
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return append(append([]any{}, coll...), asCollection(arg)...), nil
	case "intersection":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: intersection takes one collection argument")
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		other := asCollection(arg)
		var out []any
		for _, v := range coll {
			for _, w := range other {
				if oclEqual(v, w) {
					out = append(out, v)
					break
				}
			}
		}
		return out, nil
	case "at":
		// OCL at() is 1-based.
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: at takes one index argument")
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		idx, ok := arg.(int64)
		if !ok || idx < 1 || idx > int64(len(coll)) {
			return nil, fmt.Errorf("ocl: at(%v) out of range 1..%d", arg, len(coll))
		}
		return coll[idx-1], nil
	case "indexOf":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: indexOf takes one argument")
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		for i, v := range coll {
			if oclEqual(v, arg) {
				return int64(i + 1), nil
			}
		}
		return int64(0), nil
	case "reverse":
		out := make([]any, len(coll))
		for i, v := range coll {
			out[len(coll)-1-i] = v
		}
		return out, nil
	case "including", "append":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: %s takes one argument", name)
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return append(append([]any{}, coll...), arg), nil
	case "prepend":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: prepend takes one argument")
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return append([]any{arg}, coll...), nil
	case "excluding":
		if nargs != 1 {
			return nil, fmt.Errorf("ocl: excluding takes one argument")
		}
		arg, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		var out []any
		for _, v := range coll {
			if !oclEqual(v, arg) {
				out = append(out, v)
			}
		}
		return out, nil
	case "max", "min":
		if len(coll) == 0 {
			return nil, nil
		}
		best := coll[0]
		for _, v := range coll[1:] {
			less, err := oclLess(v, best)
			if err != nil {
				return nil, err
			}
			if (name == "min") == less {
				best = v
			}
		}
		return best, nil
	case "avg":
		if len(coll) == 0 {
			return nil, nil
		}
		var sum float64
		for _, v := range coll {
			f, ok := numOf(v)
			if !ok {
				return nil, fmt.Errorf("ocl: avg over non-numeric element %s", typeName(v))
			}
			sum += f
		}
		return sum / float64(len(coll)), nil
	default:
		return nil, fmt.Errorf("ocl: unknown collection operation %q", name)
	}
}

// dedupe keeps the first occurrence of each distinct value, the shared
// semantics of asSet and Set{...} literals.
func dedupe(coll []any) []any {
	var out []any
	for _, v := range coll {
		dup := false
		for _, w := range out {
			if oclEqual(v, w) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

func (ev *evaluator) iterate(n *ArrowExpr, coll []any) (any, error) {
	iter := n.Iter
	if iter == "" {
		iter = "$implicit"
	}
	old, had := ev.vars[iter]
	defer func() {
		if had {
			ev.vars[iter] = old
		} else {
			delete(ev.vars, iter)
		}
	}()
	evalBody := func(item any) (any, error) {
		ev.setVar(iter, item)
		if n.Iter == "" {
			// Implicit iterator: body navigations start from the item via
			// "self"-like shadowing. OCL's real rule rewrites bare property
			// names; we approximate by also binding "self" when unbound.
			if _, selfBound := ev.vars["self"]; !selfBound {
				ev.setVar("self", item)
				defer delete(ev.vars, "self")
			}
		}
		return ev.eval(n.Body)
	}
	return runIterator(n.Name, coll, evalBody)
}

// runIterator executes one of the nine iterator operations over a
// collection, with the item binding abstracted behind evalBody. Both the
// tree-walking interpreter and compiled Programs funnel through this one
// implementation, so the two evaluation modes cannot drift apart.
func runIterator(name string, coll []any, evalBody func(item any) (any, error)) (any, error) {
	boolBody := func(item any) (bool, error) {
		v, err := evalBody(item)
		if err != nil {
			return false, err
		}
		b, ok := v.(bool)
		if !ok {
			return false, fmt.Errorf("ocl: %s body must be Boolean, got %s", name, typeName(v))
		}
		return b, nil
	}
	switch name {
	case "select", "reject":
		var out []any
		for _, item := range coll {
			b, err := boolBody(item)
			if err != nil {
				return nil, err
			}
			if b == (name == "select") {
				out = append(out, item)
			}
		}
		return out, nil
	case "forAll":
		for _, item := range coll {
			b, err := boolBody(item)
			if err != nil {
				return nil, err
			}
			if !b {
				return false, nil
			}
		}
		return true, nil
	case "exists":
		for _, item := range coll {
			b, err := boolBody(item)
			if err != nil {
				return nil, err
			}
			if b {
				return true, nil
			}
		}
		return false, nil
	case "one":
		cnt := 0
		for _, item := range coll {
			b, err := boolBody(item)
			if err != nil {
				return nil, err
			}
			if b {
				cnt++
			}
		}
		return cnt == 1, nil
	case "any":
		for _, item := range coll {
			b, err := boolBody(item)
			if err != nil {
				return nil, err
			}
			if b {
				return item, nil
			}
		}
		return nil, nil
	case "collect":
		var out []any
		for _, item := range coll {
			v, err := evalBody(item)
			if err != nil {
				return nil, err
			}
			if inner, ok := v.([]any); ok {
				out = append(out, inner...)
			} else if v != nil {
				out = append(out, v)
			}
		}
		return out, nil
	case "isUnique":
		var seen []any
		for _, item := range coll {
			v, err := evalBody(item)
			if err != nil {
				return nil, err
			}
			for _, w := range seen {
				if oclEqual(v, w) {
					return false, nil
				}
			}
			seen = append(seen, v)
		}
		return true, nil
	case "sortedBy":
		type pair struct {
			item any
			key  any
		}
		pairs := make([]pair, 0, len(coll))
		for _, item := range coll {
			v, err := evalBody(item)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, pair{item, v})
		}
		var sortErr error
		sort.SliceStable(pairs, func(i, j int) bool {
			less, err := oclLess(pairs[i].key, pairs[j].key)
			if err != nil && sortErr == nil {
				sortErr = err
			}
			return less
		})
		if sortErr != nil {
			return nil, sortErr
		}
		out := make([]any, len(pairs))
		for i, p := range pairs {
			out[i] = p.item
		}
		return out, nil
	}
	return nil, fmt.Errorf("ocl: unknown iterator %q", name)
}

// evalUnary applies "not" or unary "-" to an evaluated operand.
func evalUnary(op string, v any) (any, error) {
	switch op {
	case "not":
		b, ok := v.(bool)
		if !ok {
			return nil, fmt.Errorf("ocl: 'not' needs Boolean, got %s", typeName(v))
		}
		return !b, nil
	case "-":
		switch t := v.(type) {
		case int64:
			return -t, nil
		case float64:
			return -t, nil
		}
		return nil, fmt.Errorf("ocl: unary '-' needs a number, got %s", typeName(v))
	}
	return nil, fmt.Errorf("ocl: unknown unary operator %q", op)
}

func (ev *evaluator) binary(n *BinExpr) (any, error) {
	// Short-circuit booleans first.
	switch n.Op {
	case "and", "or", "implies":
		l, err := ev.eval(n.L)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			return nil, fmt.Errorf("ocl: %q needs Boolean operands, got %s", n.Op, typeName(l))
		}
		switch n.Op {
		case "and":
			if !lb {
				return false, nil
			}
		case "or":
			if lb {
				return true, nil
			}
		case "implies":
			if !lb {
				return true, nil
			}
		}
		r, err := ev.eval(n.R)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			return nil, fmt.Errorf("ocl: %q needs Boolean operands, got %s", n.Op, typeName(r))
		}
		return rb, nil
	}
	l, err := ev.eval(n.L)
	if err != nil {
		return nil, err
	}
	r, err := ev.eval(n.R)
	if err != nil {
		return nil, err
	}
	return evalStrictBinary(n.Op, l, r)
}

// evalStrictBinary applies a non-short-circuiting binary operator to two
// evaluated operands.
func evalStrictBinary(op string, l, r any) (any, error) {
	switch op {
	case "xor":
		lb, lok := l.(bool)
		rb, rok := r.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("ocl: 'xor' needs Boolean operands")
		}
		return lb != rb, nil
	case "=":
		return oclEqual(l, r), nil
	case "<>":
		return !oclEqual(l, r), nil
	case "<", "<=", ">", ">=":
		return oclCompare(op, l, r)
	case "+", "-", "*", "/", "mod", "div":
		return oclArith(op, l, r)
	}
	return nil, fmt.Errorf("ocl: unknown operator %q", op)
}

// asCollection wraps scalars into singleton collections, per OCL's implicit
// conversion for arrow calls on single objects; null becomes the empty
// collection.
func asCollection(v any) []any {
	switch t := v.(type) {
	case nil:
		return nil
	case []any:
		return t
	default:
		return []any{v}
	}
}

// oclEqual implements OCL value equality; objects compare by identity.
func oclEqual(a, b any) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *metamodel.Object:
		y, ok := b.(*metamodel.Object)
		return ok && x == y
	case metamodel.EnumLit:
		y, ok := b.(metamodel.EnumLit)
		return ok && x.Enum == y.Enum && x.Literal == y.Literal
	case []any:
		y, ok := b.([]any)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !oclEqual(x[i], y[i]) {
				return false
			}
		}
		return true
	case int64:
		if y, ok := b.(float64); ok {
			return float64(x) == y
		}
	case float64:
		if y, ok := b.(int64); ok {
			return x == float64(y)
		}
	}
	return a == b
}

func numOf(v any) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case float64:
		return t, true
	}
	return 0, false
}

func oclLess(a, b any) (bool, error) {
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return as < bs, nil
		}
	}
	an, aok := numOf(a)
	bn, bok := numOf(b)
	if aok && bok {
		return an < bn, nil
	}
	return false, fmt.Errorf("ocl: cannot order %s and %s", typeName(a), typeName(b))
}

func oclCompare(op string, l, r any) (any, error) {
	if ls, ok := l.(string); ok {
		if rs, ok := r.(string); ok {
			switch op {
			case "<":
				return ls < rs, nil
			case "<=":
				return ls <= rs, nil
			case ">":
				return ls > rs, nil
			case ">=":
				return ls >= rs, nil
			}
		}
	}
	ln, lok := numOf(l)
	rn, rok := numOf(r)
	if !lok || !rok {
		return nil, fmt.Errorf("ocl: %q needs two numbers or two strings, got %s and %s",
			op, typeName(l), typeName(r))
	}
	switch op {
	case "<":
		return ln < rn, nil
	case "<=":
		return ln <= rn, nil
	case ">":
		return ln > rn, nil
	case ">=":
		return ln >= rn, nil
	}
	return nil, fmt.Errorf("ocl: unknown comparison %q", op)
}

func oclArith(op string, l, r any) (any, error) {
	// String concatenation via '+', a common OCL dialect convenience.
	if op == "+" {
		if ls, ok := l.(string); ok {
			if rs, ok := r.(string); ok {
				return ls + rs, nil
			}
		}
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, fmt.Errorf("ocl: division by zero")
			}
			// OCL '/' yields a Real even on integers.
			return float64(li) / float64(ri), nil
		case "mod":
			if ri == 0 {
				return nil, fmt.Errorf("ocl: mod by zero")
			}
			return li % ri, nil
		case "div":
			if ri == 0 {
				return nil, fmt.Errorf("ocl: div by zero")
			}
			return li / ri, nil
		}
	}
	ln, lok := numOf(l)
	rn, rok := numOf(r)
	if !lok || !rok {
		return nil, fmt.Errorf("ocl: %q needs numeric operands, got %s and %s",
			op, typeName(l), typeName(r))
	}
	switch op {
	case "+":
		return ln + rn, nil
	case "-":
		return ln - rn, nil
	case "*":
		return ln * rn, nil
	case "/":
		if rn == 0 {
			return nil, fmt.Errorf("ocl: division by zero")
		}
		return ln / rn, nil
	case "mod", "div":
		return nil, fmt.Errorf("ocl: %q needs Integer operands", op)
	}
	return nil, fmt.Errorf("ocl: unknown arithmetic %q", op)
}

// typeName names a native value's OCL type for error messages.
func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "OclVoid"
	case bool:
		return "Boolean"
	case int64:
		return "Integer"
	case float64:
		return "Real"
	case string:
		return "String"
	case *metamodel.Object:
		return "Object"
	case metamodel.EnumLit:
		return "EnumLiteral"
	case []any:
		return "Collection"
	case typeRef:
		return "Type"
	default:
		return fmt.Sprintf("%T", v)
	}
}
