package ocl

// Vectorized evaluation: run one compiled Program over a whole batch of
// rows with a single reused Frame. Per row, the only work beyond the
// program body is one slot write per bound column and a generation bump —
// no frame pool round-trip, no map lookups, no per-row allocation. The
// semantics are exactly "EvalSelf per row": the differential tests pin
// EvalBatch against the per-record path and the interpreter.

// BoundColumn binds one frame slot to a column of per-row values. Slot
// comes from Program.Slot; Values must hold at least as many entries as
// the out slice passed to EvalBatch.
type BoundColumn struct {
	Slot   int
	Values []any
}

// BatchResult is one row's outcome from Program.EvalBatch.
type BatchResult struct {
	Val any
	Err error
}

// BoolResult is one row's outcome from Program.EvalBoolBatch.
type BoolResult struct {
	OK  bool
	Err error
}

// EvalBatch evaluates the program once per row of out, with each bound
// column's row value written into its slot first. Declared variables not
// covered by cols stay unbound and fall back to env.Vars lookups, exactly
// as in Eval. The frame is reused across rows; the CSE generation bump per
// row keeps cached subexpressions from leaking between rows.
func (p *Program) EvalBatch(env *Env, cols []BoundColumn, out []BatchResult) {
	if env == nil {
		env = &Env{}
	}
	fr := p.NewFrame(env)
	defer fr.Release()
	for _, bc := range cols {
		fr.bound[bc.Slot] = true
	}
	for row := range out {
		fr.gen++
		for _, bc := range cols {
			fr.slots[bc.Slot] = bc.Values[row]
		}
		v, err := p.run(fr)
		out[row] = BatchResult{Val: v, Err: err}
	}
}

// EvalBoolBatch is EvalBatch with the constraint-semantics Boolean
// coercion (null is false) applied per row — the batch sibling of
// Frame.EvalBool and the entry point OCLCheck's vectorized path uses.
func (p *Program) EvalBoolBatch(env *Env, cols []BoundColumn, out []BoolResult) {
	if env == nil {
		env = &Env{}
	}
	fr := p.NewFrame(env)
	defer fr.Release()
	for _, bc := range cols {
		fr.bound[bc.Slot] = true
	}
	for row := range out {
		fr.gen++
		for _, bc := range cols {
			fr.slots[bc.Slot] = bc.Values[row]
		}
		v, err := p.run(fr)
		if err != nil {
			out[row] = BoolResult{Err: err}
			continue
		}
		ok, err := coerceBool(p.src, v)
		out[row] = BoolResult{OK: ok, Err: err}
	}
}
