package ocl

// Compiler round 2: the analyses behind common-subexpression elimination
// and cost-ordered conjunctions. Both are purely additive over the closure
// compiler in compile.go — they never change what an expression computes,
// only how often and in which order its pure pieces run — and the
// differential harness holds them to the interpreter's exact values and
// error strings.
//
// CSE works at evaluation time, not compile time: a repeated pure
// subexpression compiles to a closure that consults a per-Frame cache
// keyed by a generation counter, so the first occurrence in an evaluation
// computes and later occurrences reuse. Because the cache is lazy, an
// occurrence that the interpreter never reaches (a short-circuited right
// operand, an untaken if-branch, a body over an empty collection) is never
// computed here either — evaluation order, and therefore which error
// surfaces first, is preserved bit for bit. The same mechanism hoists
// loop-invariant subexpressions out of iterator bodies: a body
// subexpression whose free variables are all bound outside the iterator is
// computed on the first item and reused for the rest.

// cseMinCost is the minimum estimated evaluation cost for a subexpression
// to be worth a cache slot; below it the generation check costs more than
// recomputing. A single property navigation (cost 4) qualifies.
const cseMinCost = 4

// exprCost estimates the relative evaluation cost of an expression, in
// arbitrary units (a variable reference is 1, a navigation 3, an iterator
// assumes ten items). It only steers caching and conjunction order, so
// being roughly right is enough.
func exprCost(e Expr) int {
	switch n := e.(type) {
	case *LitExpr:
		return 0
	case *VarExpr, *EnumExpr:
		return 1
	case *NavExpr:
		return exprCost(n.Recv) + 3
	case *UnExpr:
		return exprCost(n.E) + 1
	case *BinExpr:
		return exprCost(n.L) + exprCost(n.R) + 1
	case *IfExpr:
		thenCost, elseCost := exprCost(n.Then), exprCost(n.Else)
		if elseCost > thenCost {
			thenCost = elseCost
		}
		return exprCost(n.Cond) + thenCost + 1
	case *LetExpr:
		return exprCost(n.Init) + exprCost(n.Body) + 1
	case *CollectionExpr:
		cost := 1
		for _, item := range n.Items {
			cost += exprCost(item) + 1
		}
		return cost
	case *CallExpr:
		cost := exprCost(n.Recv) + 5
		if n.Name == "allInstances" {
			cost += 20
		}
		for _, a := range n.Args {
			cost += exprCost(a)
		}
		return cost
	case *ArrowExpr:
		cost := exprCost(n.Recv) + 5
		if n.Body != nil {
			cost += 10 * (exprCost(n.Body) + 1)
		}
		for _, a := range n.Args {
			cost += exprCost(a)
		}
		return cost
	default:
		return 1
	}
}

// containsImpure reports whether the expression calls an operation whose
// result depends on Env hooks that may not be pure functions
// (hasStereotype, taggedValue). Such expressions are never cached.
func containsImpure(e Expr) bool {
	impure := false
	walkExpr(e, func(sub Expr) {
		if c, ok := sub.(*CallExpr); ok {
			if c.Name == "hasStereotype" || c.Name == "taggedValue" {
				impure = true
			}
		}
	})
	return impure
}

// walkExpr visits every node of the expression tree.
func walkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch n := e.(type) {
	case *NavExpr:
		walkExpr(n.Recv, visit)
	case *CallExpr:
		walkExpr(n.Recv, visit)
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *ArrowExpr:
		walkExpr(n.Recv, visit)
		walkExpr(n.Body, visit)
		for _, a := range n.Args {
			walkExpr(a, visit)
		}
	case *LetExpr:
		walkExpr(n.Init, visit)
		walkExpr(n.Body, visit)
	case *BinExpr:
		walkExpr(n.L, visit)
		walkExpr(n.R, visit)
	case *UnExpr:
		walkExpr(n.E, visit)
	case *IfExpr:
		walkExpr(n.Cond, visit)
		walkExpr(n.Then, visit)
		walkExpr(n.Else, visit)
	case *CollectionExpr:
		for _, item := range n.Items {
			walkExpr(item, visit)
		}
	}
}

// analyzeCSE finds the subexpressions worth caching per evaluation: pure
// Nav/Call/Arrow nodes of at least cseMinCost whose free variables are not
// bound by an enclosing let or iterator at the occurrence, and that either
// occur at least twice or occur inside an iterator body (where caching is
// loop-invariant hoisting). The result maps each candidate's canonical
// source form to true; the compiler assigns cache slots to candidates it
// actually meets in cacheable positions.
func analyzeCSE(root Expr) map[string]bool {
	count := map[string]int{}
	inIter := map[string]bool{}
	var scope []string
	bound := func(name string) bool {
		for _, s := range scope {
			if s == name {
				return true
			}
		}
		return false
	}
	scopeFree := func(e Expr) bool {
		if len(scope) == 0 {
			return true
		}
		for _, v := range FreeVars(e) {
			if bound(v) {
				return false
			}
		}
		return true
	}
	var walk func(e Expr, iterDepth int)
	note := func(e Expr, iterDepth int) {
		if exprCost(e) < cseMinCost || !scopeFree(e) || containsImpure(e) {
			return
		}
		key := e.String()
		count[key]++
		if iterDepth > 0 {
			inIter[key] = true
		}
	}
	walk = func(e Expr, iterDepth int) {
		switch n := e.(type) {
		case *NavExpr:
			note(n, iterDepth)
			walk(n.Recv, iterDepth)
		case *CallExpr:
			note(n, iterDepth)
			// Mirror the compiler: an allInstances receiver and type-op
			// arguments are type-name positions, not subexpressions.
			if v, ok := n.Recv.(*VarExpr); !(ok && n.Name == "allInstances" && !bound(v.Name)) {
				walk(n.Recv, iterDepth)
			}
			isTypeOp := n.Name == "oclIsKindOf" || n.Name == "oclIsTypeOf" || n.Name == "oclAsType"
			for _, a := range n.Args {
				if v, ok := a.(*VarExpr); ok && isTypeOp && !bound(v.Name) {
					continue
				}
				walk(a, iterDepth)
			}
		case *ArrowExpr:
			note(n, iterDepth)
			walk(n.Recv, iterDepth)
			for _, a := range n.Args {
				walk(a, iterDepth)
			}
			if n.Body != nil {
				mark := len(scope)
				if n.Iter != "" {
					scope = append(scope, n.Iter)
				} else {
					scope = append(scope, "$implicit")
					if !bound("self") {
						scope = append(scope, "self")
					}
				}
				walk(n.Body, iterDepth+1)
				scope = scope[:mark]
			}
		case *LetExpr:
			walk(n.Init, iterDepth)
			scope = append(scope, n.Name)
			walk(n.Body, iterDepth)
			scope = scope[:len(scope)-1]
		case *BinExpr:
			walk(n.L, iterDepth)
			walk(n.R, iterDepth)
		case *UnExpr:
			walk(n.E, iterDepth)
		case *IfExpr:
			walk(n.Cond, iterDepth)
			walk(n.Then, iterDepth)
			walk(n.Else, iterDepth)
		case *CollectionExpr:
			for _, item := range n.Items {
				walk(item, iterDepth)
			}
		}
	}
	walk(root, 0)
	var out map[string]bool
	for key, c := range count {
		if c >= 2 || inIter[key] {
			if out == nil {
				out = make(map[string]bool)
			}
			out[key] = true
		}
	}
	return out
}

// cseCandidateKind reports whether a node kind participates in CSE at all;
// it gates the per-node String() rendering during compilation.
func cseCandidateKind(e Expr) bool {
	switch e.(type) {
	case *NavExpr, *CallExpr, *ArrowExpr:
		return true
	}
	return false
}

// totalBool reports whether the expression provably evaluates to a Boolean
// and cannot fail, under the compiler's current scope. Totality is what
// makes swapping `a and b` into `b and a` semantics-preserving: if either
// side could error, the swap could change which error surfaces (or turn an
// error into false), so only provably-total operands reorder.
func (c *compiler) totalBool(e Expr) bool {
	switch n := e.(type) {
	case *LitExpr:
		_, ok := n.Val.(bool)
		return ok
	case *UnExpr:
		return n.Op == "not" && c.totalBool(n.E)
	case *BinExpr:
		switch n.Op {
		case "and", "or", "implies", "xor":
			return c.totalBool(n.L) && c.totalBool(n.R)
		case "=", "<>":
			// oclEqual is total over all values.
			return c.total(n.L) && c.total(n.R)
		}
		return false
	case *CallExpr:
		// v.oclIsUndefined() is total for any total receiver.
		return n.Name == "oclIsUndefined" && len(n.Args) == 0 && c.total(n.Recv)
	case *ArrowExpr:
		// isEmpty/notEmpty never fail: asCollection is total.
		return (n.Name == "isEmpty" || n.Name == "notEmpty") &&
			len(n.Args) == 0 && n.Body == nil && c.total(n.Recv)
	}
	return false
}

// total reports whether the expression provably evaluates without error.
// Variable reads are total only when the name is lexically bound (written
// before the body runs) or — under AssumeBound — a declared extern, since
// an unbound name falls back to type resolution, which can fail.
func (c *compiler) total(e Expr) bool {
	switch n := e.(type) {
	case *LitExpr:
		return true
	case *VarExpr:
		if c.scopeHas(n.Name) {
			return true
		}
		if c.assumeBound {
			_, declared := c.extSlot[n.Name]
			return declared
		}
		return false
	case *CollectionExpr:
		for _, item := range n.Items {
			if !c.total(item) {
				return false
			}
		}
		return true
	}
	return c.totalBool(e)
}
