// Fuzzing for the OCL front end: whatever bytes arrive, the parser must
// return an error rather than panic, and the printer must be stable — a
// successfully parsed expression prints to a form that re-parses to the
// same printed form (print∘parse is idempotent on the printer's image).
package ocl

import "testing"

// fuzzSeeds covers every syntactic construct: literals, navigation,
// operations, arrow calls with iterators, enums, if/let, collections and
// the full operator precedence ladder. The checked-in corpus under
// testdata/fuzz/FuzzParse extends these with lexically nastier inputs.
var fuzzSeeds = []string{
	"1 + 2 * 3",
	"true and not false or 1 <> 2",
	"p implies q xor r",
	"self.name",
	"self.include->exists(i | i.addition = self)",
	"self.lower_bound.oclIsUndefined() or self.lower_bound <= self.upper_bound",
	"not self.text.oclIsUndefined() and self.text.size() > 0",
	"Sequence{1, 2, 3}->collect(x | x * x)->size()",
	"if a > 0 then 'pos' else 'neg' endif",
	"let x = 3 in x * x",
	"Color::red",
	"s.substring(1, 2).concat('x')",
	"Set{}->isEmpty()",
	"-3 < x and x < +3",
	"'it''s quoted'",
	"((((1))))",
	"x->forAll(y | y->select(z | z <> x)->notEmpty())",
	"",
	"   ",
	"1 +",
	"self..name",
	"Sequence{1,",
	"'unterminated",
	"@#$%",
	"\x00\xff",
}

func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src) // must never panic
		if err != nil {
			return
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse:\nsrc:     %q\nprinted: %q\nerr:     %v", src, printed, err)
		}
		if again := e2.String(); again != printed {
			t.Fatalf("printer is not stable:\nsrc:    %q\nfirst:  %q\nsecond: %q", src, printed, again)
		}
	})
}
