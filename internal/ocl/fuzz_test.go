// Fuzzing for the OCL front end: whatever bytes arrive, the parser must
// return an error rather than panic, and the printer must be stable — a
// successfully parsed expression prints to a form that re-parses to the
// same printed form (print∘parse is idempotent on the printer's image).
// Every parseable input additionally compiles and runs differentially:
// the compiler is fuzzed for free, with the interpreter as the oracle.
package ocl

import (
	"reflect"
	"testing"
)

// fuzzSeeds covers every syntactic construct: literals, navigation,
// operations, arrow calls with iterators, enums, if/let, collections and
// the full operator precedence ladder. The checked-in corpus under
// testdata/fuzz/FuzzParse extends these with lexically nastier inputs.
var fuzzSeeds = []string{
	"1 + 2 * 3",
	"true and not false or 1 <> 2",
	"p implies q xor r",
	"self.name",
	"self.include->exists(i | i.addition = self)",
	"self.lower_bound.oclIsUndefined() or self.lower_bound <= self.upper_bound",
	"not self.text.oclIsUndefined() and self.text.size() > 0",
	"Sequence{1, 2, 3}->collect(x | x * x)->size()",
	"if a > 0 then 'pos' else 'neg' endif",
	"let x = 3 in x * x",
	"Color::red",
	"s.substring(1, 2).concat('x')",
	"Set{}->isEmpty()",
	"-3 < x and x < +3",
	"'it''s quoted'",
	"((((1))))",
	"x->forAll(y | y->select(z | z <> x)->notEmpty())",
	"",
	"   ",
	"1 +",
	"self..name",
	"Sequence{1,",
	"'unterminated",
	"@#$%",
	"\x00\xff",
}

func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src) // must never panic
		if err != nil {
			return
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not re-parse:\nsrc:     %q\nprinted: %q\nerr:     %v", src, printed, err)
		}
		if again := e2.String(); again != printed {
			t.Fatalf("printer is not stable:\nsrc:    %q\nfirst:  %q\nsecond: %q", src, printed, again)
		}
		// Compilation must be total over parseable input ...
		prog, cerr := CompileWith(e, fuzzDiffOpts)
		if cerr != nil {
			t.Fatalf("Compile(%q): %v", printed, cerr)
		}
		// ... and compiled execution must agree with the interpreter, value
		// or error text, under a fixed scalar environment.
		iv, ierr := Eval(e, fuzzDiffEnv)
		cv, rerr := prog.Eval(fuzzDiffEnv)
		if (ierr != nil) != (rerr != nil) ||
			(ierr != nil && ierr.Error() != rerr.Error()) ||
			(ierr == nil && !reflect.DeepEqual(iv, cv)) {
			t.Fatalf("interpreter/compiler divergence on %q:\ninterpreted: v=%#v err=%v\ncompiled:    v=%#v err=%v",
				printed, iv, ierr, cv, rerr)
		}
	})
}

// fuzzDiffEnv supplies enough scalar bindings that fuzz inputs referencing
// common identifiers evaluate a real path instead of erroring immediately.
var fuzzDiffEnv = &Env{Vars: map[string]any{
	"p": true, "q": false, "r": true,
	"a": int64(1), "x": int64(3), "y": int64(-2),
	"s":  "abc",
	"xs": []any{int64(1), int64(2)},
}}

var fuzzDiffOpts = CompileOptions{Vars: []string{"a", "p", "q", "r", "s", "x", "xs", "y"}}
